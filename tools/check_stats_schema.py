#!/usr/bin/env python3
"""Validates msn-run-stats-v1 / msn-bench-stats-v1 / msn-batch-stats-v1 /
msn-service-stats-v2 / msn-sta-stats-v1 JSON files.

Usage:
    check_stats_schema.py STATS.json [STATS.json ...]

Exit code 0 when every file conforms, 1 otherwise (first problem printed
to stderr).  Pure stdlib; the schemas are documented in
docs/OBSERVABILITY.md (run/bench/service) and docs/RUNTIME.md (batch).
"""
import json
import numbers
import sys

RUN_SCHEMA = "msn-run-stats-v1"
BENCH_SCHEMA = "msn-bench-stats-v1"
MERGED_BENCH_SCHEMA = "msn-bench-stats-v1-merged"
BATCH_SCHEMA = "msn-batch-stats-v1"
SERVICE_SCHEMA = "msn-service-stats-v2"
STA_SCHEMA = "msn-sta-stats-v1"

# The service stats document's fixed integer fields
# (docs/OBSERVABILITY.md; emitted by src/service/server.cc).
REQUIRED_SERVICE_CACHE = (
    "shards", "entries", "bytes", "max_entries", "max_bytes",
    "hits", "misses", "evictions", "insertions", "collisions", "flushes",
    "segment_enabled", "segment_bytes", "segment_live_bytes",
    "segment_dead_bytes", "segment_appends", "segment_append_errors",
    "segment_replayed", "segment_skipped", "segment_truncations",
    "segment_header_resets", "segment_compactions",
)
REQUIRED_SERVICE_REQUESTS = (
    "received", "ok", "errors", "timeouts",
    "shed_queue", "shed_cost", "shed_connections", "cancelled",
    "dp_runs",
)
# Per-outcome latency classes of the v2 `latency` object, and the fields
# each class object must carry (docs/OBSERVABILITY.md).
SERVICE_LATENCY_CLASSES = ("hit", "miss", "cancelled", "shed", "error")
SERVICE_LATENCY_FIELDS = ("count", "window_count", "mean_us",
                          "p50_us", "p95_us", "p99_us", "buckets")

# Batch aggregate instruments the runtime engine always records.
REQUIRED_BATCH_HISTOGRAMS = (
    "batch.net_wall_ms",
    "batch.queue_wait_ms",
    "batch.pool_occupancy",
)
REQUIRED_BATCH_VALUES = ("batch.nets", "batch.errors", "batch.jobs")

# Every phase timer an `msn_cli optimize --stats` run must carry.
REQUIRED_MSRI_TIMERS = (
    "msri.leaf",
    "msri.augment",
    "msri.join",
    "msri.repeater",
    "msri.root",
    "msri.total",
)
TIMER_FIELDS = ("calls", "total_ms", "mean_us")
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "buckets")


class SchemaError(Exception):
    pass


def _number(value, where):
    # JSON null encodes a non-finite double (see stats.cc JsonNumber).
    if value is not None and not isinstance(value, numbers.Real):
        raise SchemaError(f"{where}: expected number or null, got {value!r}")


def _check_run(doc, where="run"):
    if not isinstance(doc, dict):
        raise SchemaError(f"{where}: not a JSON object")
    if doc.get("schema") != RUN_SCHEMA:
        raise SchemaError(f"{where}: schema is {doc.get('schema')!r},"
                          f" wanted {RUN_SCHEMA!r}")
    for section in ("labels", "values", "counters", "timers", "histograms"):
        if not isinstance(doc.get(section), dict):
            raise SchemaError(f"{where}: missing object section {section!r}")
    for name, v in doc["labels"].items():
        if not isinstance(v, str):
            raise SchemaError(f"{where}: label {name!r} is not a string")
    for name, v in doc["values"].items():
        _number(v, f"{where}: value {name!r}")
    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            raise SchemaError(f"{where}: counter {name!r} is not a"
                              " non-negative integer")
    for name, t in doc["timers"].items():
        if not isinstance(t, dict) or set(t) != set(TIMER_FIELDS):
            raise SchemaError(f"{where}: timer {name!r} must have exactly"
                              f" fields {TIMER_FIELDS}")
        if not isinstance(t["calls"], int) or t["calls"] < 0:
            raise SchemaError(f"{where}: timer {name!r} calls invalid")
        _number(t["total_ms"], f"{where}: timer {name!r} total_ms")
        _number(t["mean_us"], f"{where}: timer {name!r} mean_us")
    # Structural invariants of the DP pruning counters, checked whenever a
    # registry carries them (optimize runs, batch aggregates, bench
    # trajectories).  Predictive skips are tests the (cost, cap) sort
    # decided without running — each has a mirror test that did run, so
    # skips can never exceed comparisons; early-join prunes drop a subset
    # of the visited cross-product pairs.
    counters = doc["counters"]
    for small, big in (("mfs.predictive_skipped", "mfs.comparisons"),
                       ("msri.join_pruned_early", "msri.join_candidates")):
        if small in counters and counters[small] > counters.get(big, 0):
            raise SchemaError(f"{where}: counter {small!r}"
                              f" ({counters[small]}) exceeds {big!r}"
                              f" ({counters.get(big, 0)})")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or set(h) != set(HISTOGRAM_FIELDS):
            raise SchemaError(f"{where}: histogram {name!r} must have exactly"
                              f" fields {HISTOGRAM_FIELDS}")
        for field in ("sum", "min", "max", "mean"):
            _number(h[field], f"{where}: histogram {name!r} {field}")
        if not isinstance(h["count"], int) or h["count"] < 0:
            raise SchemaError(f"{where}: histogram {name!r} count invalid")
        for pair in h["buckets"]:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not isinstance(pair[1], int)):
                raise SchemaError(f"{where}: histogram {name!r} buckets must"
                                  " be [bound, count] pairs")


def _check_optimize_run(doc, where):
    """Extra requirements for msn_cli optimize output (full pipeline)."""
    _check_run(doc, where)
    timers = doc["timers"]
    for name in REQUIRED_MSRI_TIMERS:
        if name not in timers:
            raise SchemaError(f"{where}: missing DP phase timer {name!r}")
        if timers[name]["calls"] < 1:
            raise SchemaError(f"{where}: phase timer {name!r} never fired")
    if "mfs.prune_rate" not in doc["values"]:
        raise SchemaError(f"{where}: missing value 'mfs.prune_rate'")
    for name in ("mfs.candidates_in", "mfs.candidates_out"):
        if name not in doc["counters"]:
            raise SchemaError(f"{where}: missing counter {name!r}")
    segments = [name for name in doc["histograms"]
                if name.startswith("pwl.") and name.endswith(".segments")]
    if not segments:
        raise SchemaError(f"{where}: no pwl.*.segments histograms")


def _check_bench(doc, where):
    """msn-bench-stats-v1: bench name plus a list of run registries.
    Returns the run count so merged-doc callers can total it."""
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        raise SchemaError(f"{where}: bench trajectory missing 'bench'")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        raise SchemaError(f"{where}: bench trajectory missing 'runs' list")
    for i, run in enumerate(runs):
        _check_run(run, f"{where} runs[{i}]")
    return len(runs)


def _check_batch(doc, path):
    """msn-batch-stats-v1: batch header, per-net entries, aggregate."""
    if not isinstance(doc.get("jobs"), int) or doc["jobs"] < 1:
        raise SchemaError(f"{path}: batch 'jobs' must be a positive int")
    nets = doc.get("nets")
    if not isinstance(nets, list):
        raise SchemaError(f"{path}: batch missing 'nets' list")
    for i, net in enumerate(nets):
        where = f"{path} nets[{i}]"
        if not isinstance(net, dict):
            raise SchemaError(f"{where}: not a JSON object")
        if not isinstance(net.get("name"), str) or not net["name"]:
            raise SchemaError(f"{where}: missing 'name'")
        if not isinstance(net.get("ok"), bool):
            raise SchemaError(f"{where}: missing boolean 'ok'")
        if not net["ok"] and not isinstance(net.get("error"), str):
            raise SchemaError(f"{where}: failed net missing 'error'")
        for field in ("wall_ms", "queue_wait_ms"):
            _number(net.get(field), f"{where}: {field}")
        if not isinstance(net.get("pool_occupancy"), int):
            raise SchemaError(f"{where}: missing int 'pool_occupancy'")
        if net["ok"] and not isinstance(net.get("pareto_points"), int):
            raise SchemaError(f"{where}: ok net missing 'pareto_points'")
        if "stats" in net:
            _check_run(net["stats"], f"{where} stats")
    agg = doc.get("aggregate")
    _check_run(agg, f"{path} aggregate")
    for name in REQUIRED_BATCH_HISTOGRAMS:
        if name not in agg["histograms"]:
            raise SchemaError(f"{path}: aggregate missing histogram"
                              f" {name!r}")
    for name in REQUIRED_BATCH_VALUES:
        if name not in agg["values"]:
            raise SchemaError(f"{path}: aggregate missing value {name!r}")
    return f"{path}: ok ({BATCH_SCHEMA}, {len(nets)} nets)"


def _check_latency(latency, req, path):
    """The v2 `latency` object: per-class sliding-window histograms.

    Checks structural shape, quantile monotonicity (p50 <= p95 <= p99,
    all non-negative), window counts bounded by cumulative counts, and
    the class counts against the request counters they mirror (classes
    record strictly after their counter increments, so a live snapshot
    may lag but never lead).
    """
    if not isinstance(latency, dict):
        raise SchemaError(f"{path}: missing object section 'latency'")
    if set(latency) != set(SERVICE_LATENCY_CLASSES):
        raise SchemaError(f"{path}: latency classes must be exactly"
                          f" {SERVICE_LATENCY_CLASSES}, got"
                          f" {tuple(sorted(latency))}")
    for cls, h in latency.items():
        where = f"{path}: latency.{cls}"
        if not isinstance(h, dict) or set(h) != set(SERVICE_LATENCY_FIELDS):
            raise SchemaError(f"{where} must have exactly fields"
                              f" {SERVICE_LATENCY_FIELDS}")
        for field in ("count", "window_count"):
            if not isinstance(h[field], int) or h[field] < 0:
                raise SchemaError(f"{where}.{field} must be a non-negative"
                                  " integer")
        if h["window_count"] > h["count"]:
            raise SchemaError(f"{where}: window_count {h['window_count']}"
                              f" exceeds cumulative count {h['count']}")
        for field in ("mean_us", "p50_us", "p95_us", "p99_us"):
            _number(h[field], f"{where}.{field}")
            if h[field] is None:
                raise SchemaError(f"{where}.{field} is non-finite")
            if h[field] < 0:
                raise SchemaError(f"{where}.{field} is negative")
        if not (h["p50_us"] <= h["p95_us"] <= h["p99_us"]):
            raise SchemaError(f"{where}: quantiles not monotone"
                              f" (p50 {h['p50_us']}, p95 {h['p95_us']},"
                              f" p99 {h['p99_us']})")
        if h["count"] > 0 and h["p99_us"] <= 0:
            raise SchemaError(f"{where}: nonzero count with zero p99")
        bucket_total = 0
        for pair in h["buckets"]:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not isinstance(pair[1], int) or pair[1] < 0):
                raise SchemaError(f"{where}.buckets must be [bound, count]"
                                  " pairs")
            bucket_total += pair[1]
        if bucket_total != h["count"]:
            raise SchemaError(f"{where}: bucket counts sum to {bucket_total}"
                              f" but count is {h['count']}")
    # Class counts against the counters they mirror.
    checks = (
        ("hit+miss", latency["hit"]["count"] + latency["miss"]["count"],
         req["ok"]),
        ("cancelled", latency["cancelled"]["count"], req["cancelled"]),
        ("shed", latency["shed"]["count"],
         req["shed_queue"] + req["shed_cost"]),
        ("error", latency["error"]["count"],
         req["errors"] + req["timeouts"]),
    )
    for name, recorded, counter in checks:
        if recorded > counter:
            raise SchemaError(f"{path}: latency class {name} recorded"
                              f" {recorded} > counter {counter}")


def _check_service(doc, path):
    """msn-service-stats-v2: jobs, cache + request counters, latency
    histograms, registry."""
    if not isinstance(doc.get("jobs"), int) or doc["jobs"] < 1:
        raise SchemaError(f"{path}: service 'jobs' must be a positive int")
    for section, required in (("cache", REQUIRED_SERVICE_CACHE),
                              ("requests", REQUIRED_SERVICE_REQUESTS)):
        obj = doc.get(section)
        if not isinstance(obj, dict):
            raise SchemaError(f"{path}: missing object section {section!r}")
        for name in required:
            v = obj.get(name)
            if not isinstance(v, int) or v < 0:
                raise SchemaError(f"{path}: {section}.{name} must be a"
                                  " non-negative integer")
    cache = doc["cache"]
    if cache["entries"] > cache["max_entries"]:
        raise SchemaError(f"{path}: cache over entry budget"
                          f" ({cache['entries']} > {cache['max_entries']})")
    if cache["segment_enabled"] not in (0, 1):
        raise SchemaError(f"{path}: cache.segment_enabled must be 0 or 1")
    if cache["segment_enabled"]:
        # live + dead never exceed the file (the header is neither).
        if (cache["segment_live_bytes"] + cache["segment_dead_bytes"]
                > cache["segment_bytes"]):
            raise SchemaError(
                f"{path}: segment byte accounting inconsistent"
                f" (live {cache['segment_live_bytes']} + dead"
                f" {cache['segment_dead_bytes']} >"
                f" {cache['segment_bytes']})")
    else:
        for name in REQUIRED_SERVICE_CACHE:
            if name.startswith("segment_") and cache[name] != 0:
                raise SchemaError(f"{path}: cache.{name} nonzero while"
                                  " persistence is disabled")
    # Request lifecycle accounting (docs/SERVICE.md): every received
    # request resolves at most one way.  shed_connections is excluded —
    # a refused connection never contributes a received request line.
    req = doc["requests"]
    resolved = (req["ok"] + req["errors"] + req["timeouts"] +
                req["shed_queue"] + req["shed_cost"] + req["cancelled"])
    if resolved > req["received"]:
        raise SchemaError(
            f"{path}: request accounting inconsistent ({resolved}"
            f" resolved > {req['received']} received)")
    if req["dp_runs"] > req["received"]:
        raise SchemaError(
            f"{path}: dp_runs {req['dp_runs']} exceeds received"
            f" {req['received']}")
    _check_latency(doc.get("latency"), req, path)
    _check_run(doc.get("registry"), f"{path} registry")
    return (f"{path}: ok ({SERVICE_SCHEMA},"
            f" {doc['requests']['received']} requests)")


# Per-iteration counters of the closure stats document
# (docs/STA.md; emitted by src/sta/closure.cc WriteClosureStatsJson).
STA_ITERATION_COUNTERS = (
    "failing_endpoints", "failing_nets", "nets_examined",
    "nets_optimized", "cache_hits", "cache_misses", "dp_runs",
)
STA_CACHE_FIELDS = ("hits", "misses", "insertions", "evictions",
                    "collisions", "entries", "bytes")


def _check_sta(doc, path):
    """msn-sta-stats-v1: closure iterations, cache totals, slack
    histogram, registry.

    Beyond shape, this asserts the closure loop's contracts: the
    per-iteration worst slack is monotone non-decreasing (the loop only
    ever lowers net delays), DP runs are bounded by cache misses (every
    DP run was a miss first), the document totals equal the per-iteration
    sums, the cache object's hit/miss counters mirror them (lookups
    happen nowhere else), and the slack histogram partitions every
    endpoint exactly once under strictly increasing bucket bounds.
    """
    for name in ("nets", "endpoints"):
        if not isinstance(doc.get(name), int) or doc[name] < 0:
            raise SchemaError(f"{path}: {name!r} must be a non-negative int")
    for name in ("jobs", "max_iters"):
        if not isinstance(doc.get(name), int) or doc[name] < 1:
            raise SchemaError(f"{path}: {name!r} must be a positive int")
    if not isinstance(doc.get("design"), str):
        raise SchemaError(f"{path}: missing string 'design'")
    for name in ("converged", "timing_met"):
        if not isinstance(doc.get(name), bool):
            raise SchemaError(f"{path}: missing boolean {name!r}")
    _number(doc.get("final_worst_slack_ps"), f"{path}: final_worst_slack_ps")

    iterations = doc.get("iterations")
    if not isinstance(iterations, list) or not iterations:
        raise SchemaError(f"{path}: 'iterations' must be a non-empty list")
    if len(iterations) > doc["max_iters"]:
        raise SchemaError(f"{path}: {len(iterations)} iterations recorded"
                          f" with max_iters {doc['max_iters']}")
    prev_slack = None
    sums = dict.fromkeys(("cache_hits", "cache_misses", "dp_runs"), 0)
    for i, it in enumerate(iterations):
        where = f"{path} iterations[{i}]"
        if not isinstance(it, dict):
            raise SchemaError(f"{where}: not a JSON object")
        _number(it.get("worst_slack_ps"), f"{where}: worst_slack_ps")
        for name in STA_ITERATION_COUNTERS:
            if not isinstance(it.get(name), int) or it[name] < 0:
                raise SchemaError(f"{where}: {name!r} must be a"
                                  " non-negative integer")
        if it["dp_runs"] > it["cache_misses"]:
            raise SchemaError(f"{where}: dp_runs {it['dp_runs']} exceeds"
                              f" cache_misses {it['cache_misses']}")
        if it["nets_optimized"] > it["nets_examined"]:
            raise SchemaError(f"{where}: nets_optimized exceeds"
                              " nets_examined")
        if it["nets_examined"] > doc["nets"]:
            raise SchemaError(f"{where}: nets_examined exceeds design"
                              f" net count {doc['nets']}")
        if it["failing_endpoints"] > doc["endpoints"]:
            raise SchemaError(f"{where}: failing_endpoints exceeds"
                              f" endpoint count {doc['endpoints']}")
        for name in sums:
            sums[name] += it[name]
        slack = it["worst_slack_ps"]
        if slack is not None and prev_slack is not None:
            if slack < prev_slack:
                raise SchemaError(
                    f"{where}: worst slack regressed"
                    f" ({prev_slack} -> {slack}); the closure loop only"
                    " ever lowers net delays")
        if slack is not None:
            prev_slack = slack
    for name, total_name in (("cache_hits", "total_cache_hits"),
                             ("cache_misses", "total_cache_misses"),
                             ("dp_runs", "total_dp_runs")):
        total = doc.get(total_name)
        if not isinstance(total, int) or total != sums[name]:
            raise SchemaError(f"{path}: {total_name} is {total!r} but the"
                              f" iterations sum to {sums[name]}")

    cache = doc.get("cache")
    if not isinstance(cache, dict):
        raise SchemaError(f"{path}: missing object section 'cache'")
    for name in STA_CACHE_FIELDS:
        if not isinstance(cache.get(name), int) or cache[name] < 0:
            raise SchemaError(f"{path}: cache.{name} must be a"
                              " non-negative integer")
    for name in ("hits", "misses"):
        if cache[name] != sums[f"cache_{name}"]:
            raise SchemaError(f"{path}: cache.{name} {cache[name]} does not"
                              f" mirror the iteration total"
                              f" {sums[f'cache_{name}']}")

    hist = doc.get("slack_histogram")
    if not isinstance(hist, list):
        raise SchemaError(f"{path}: missing list 'slack_histogram'")
    if not hist and doc["endpoints"] > 0:
        raise SchemaError(f"{path}: empty slack_histogram with"
                          f" {doc['endpoints']} endpoints")
    prev_bound = None
    total = 0
    for pair in hist:
        if (not isinstance(pair, list) or len(pair) != 2
                or not isinstance(pair[1], int) or pair[1] < 0):
            raise SchemaError(f"{path}: slack_histogram must be"
                              " [bound, count] pairs")
        _number(pair[0], f"{path}: slack_histogram bound")
        if pair[0] is None:
            raise SchemaError(f"{path}: non-finite slack_histogram bound")
        if prev_bound is not None and pair[0] <= prev_bound:
            raise SchemaError(f"{path}: slack_histogram bounds not strictly"
                              f" increasing ({prev_bound} -> {pair[0]})")
        prev_bound = pair[0]
        total += pair[1]
    if total != doc["endpoints"]:
        raise SchemaError(f"{path}: slack_histogram counts sum to {total}"
                          f" but the design has {doc['endpoints']}"
                          " endpoints")

    _check_run(doc.get("registry"), f"{path} registry")
    return (f"{path}: ok ({STA_SCHEMA}, {len(iterations)} iterations,"
            f" {doc['nets']} nets)")


def check_file(path, strict_optimize=False):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict) and doc.get("schema") == BATCH_SCHEMA:
        return _check_batch(doc, path)
    if isinstance(doc, dict) and doc.get("schema") == SERVICE_SCHEMA:
        return _check_service(doc, path)
    if isinstance(doc, dict) and doc.get("schema") == STA_SCHEMA:
        return _check_sta(doc, path)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        n = _check_bench(doc, path)
        return f"{path}: ok ({BENCH_SCHEMA}, {n} runs)"
    if isinstance(doc, dict) and doc.get("schema") == MERGED_BENCH_SCHEMA:
        benches = doc.get("benches")
        if not isinstance(benches, list) or not benches:
            raise SchemaError(f"{path}: merged doc missing 'benches' list")
        total = 0
        for i, bench in enumerate(benches):
            if not isinstance(bench, dict) \
                    or bench.get("schema") != BENCH_SCHEMA:
                raise SchemaError(f"{path} benches[{i}]: schema is"
                                  f" {bench.get('schema')!r},"
                                  f" wanted {BENCH_SCHEMA!r}")
            total += _check_bench(bench, f"{path} benches[{i}]")
        return (f"{path}: ok ({MERGED_BENCH_SCHEMA},"
                f" {len(benches)} benches, {total} runs)")
    if strict_optimize:
        _check_optimize_run(doc, path)
    else:
        _check_run(doc, path)
    return f"{path}: ok ({RUN_SCHEMA})"


def main(argv):
    strict = "--optimize" in argv
    paths = [a for a in argv[1:] if a != "--optimize"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    for path in paths:
        try:
            print(check_file(path, strict_optimize=strict))
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
