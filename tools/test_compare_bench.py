#!/usr/bin/env python3
"""Unit tests for compare_bench.py over tiny fixture trajectory pairs.

Covers the degraded (non-crashing) paths: a baseline metric recorded as
zero time, a bench added since the baseline, and the ordinary
OK/regression verdicts.  Run directly or via ctest (compare_bench_unit).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

COMPARE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "compare_bench.py")


def trajectory(bench, runs):
    return {"schema": "msn-bench-stats-v1", "bench": bench, "runs": runs}


def run_pair(test, baseline, current, extra_args=()):
    """Writes the two documents to files and runs compare_bench on them."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(cur_path, "w") as f:
            json.dump(current, f)
        proc = subprocess.run(
            [sys.executable, COMPARE, base_path, cur_path] +
            list(extra_args),
            capture_output=True, text=True)
    test.assertNotIn("Traceback", proc.stderr)
    return proc


class CompareBenchTest(unittest.TestCase):
    def test_matching_runs_within_threshold_pass(self):
        base = trajectory("bench_line", [
            {"labels": {"mode": "repeaters"}, "values": {"time_s": 1.0}}])
        cur = trajectory("bench_line", [
            {"labels": {"mode": "repeaters"}, "values": {"time_s": 1.1}}])
        proc = run_pair(self, base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_regression_above_threshold_fails(self):
        base = trajectory("bench_line", [
            {"labels": {}, "values": {"time_s": 1.0}}])
        cur = trajectory("bench_line", [
            {"labels": {}, "values": {"time_s": 2.0}}])
        proc = run_pair(self, base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_zero_time_baseline_is_skipped_not_divided(self):
        # A metric the baseline recorded as 0 seconds must degrade to a
        # skip note (this used to divide by zero / report x-inf), and
        # must not mask the verdict on the healthy metric next to it.
        base = trajectory("bench_line", [
            {"labels": {}, "values": {"warm_s": 0.0, "time_s": 1.0}}])
        cur = trajectory("bench_line", [
            {"labels": {}, "values": {"warm_s": 5.0, "time_s": 1.0}}])
        proc = run_pair(self, base, cur, ["--min-seconds", "0"])
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("skipped", proc.stdout)
        self.assertIn("zero-time baseline", proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_bench_added_since_baseline_is_skipped(self):
        base = trajectory("bench_line", [
            {"labels": {}, "values": {"time_s": 1.0}}])
        cur = {"schema": "msn-bench-stats-v1-merged", "benches": [
            base,
            trajectory("bench_new", [
                {"labels": {}, "values": {"time_s": 9.9}}])]}
        proc = run_pair(self, base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("skipped bench_new", proc.stdout)
        self.assertIn("no baseline run", proc.stdout)

    def test_nothing_comparable_is_not_a_regression(self):
        base = trajectory("bench_a", [
            {"labels": {}, "values": {"time_s": 1.0}}])
        cur = trajectory("bench_b", [
            {"labels": {}, "values": {"time_s": 1.0}}])
        proc = run_pair(self, base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no comparable timing metrics", proc.stdout)

    def test_unreadable_input_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "bad.json")
            with open(bad, "w") as f:
                f.write("{not json")
            proc = subprocess.run(
                [sys.executable, COMPARE, bad, bad],
                capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
