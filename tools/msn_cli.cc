// msn_cli — command-line driver for the multisource-net optimizer.
//
//   msn_cli gen --terminals N [--seed S] [--grid UM] [--spacing UM] -o F
//       Generate a random experiment net and write it as .msn.
//   msn_cli ard NET.msn [SOLUTION.msn]
//       Report the augmented RC-diameter (optionally of a saved solution).
//   msn_cli optimize NET.msn [--spec PS] [--mode repeaters|sizing|joint]
//           [-o SOLUTION.msn]
//       Run the MSRI DP; print the tradeoff suite and the chosen point
//       (min-cost meeting --spec, else the min-ARD point).
//   msn_cli render NET.msn [SOLUTION.msn]
//       ASCII sketch of the net (with repeater markers if given).
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "io/report.h"
#include "io/table.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

namespace {

using namespace msn;

[[noreturn]] void Usage() {
  std::cerr <<
      "usage:\n"
      "  msn_cli gen --terminals N [--seed S] [--grid UM] [--spacing UM]"
      " -o FILE\n"
      "  msn_cli ard NET.msn [SOLUTION.msn]\n"
      "  msn_cli optimize NET.msn [--spec PS]"
      " [--mode repeaters|sizing|joint] [-o SOLUTION.msn]\n"
      "  msn_cli render NET.msn [SOLUTION.msn]\n";
  std::exit(2);
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first,
                                              std::vector<std::string>* pos) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 || arg == "-o") {
      MSN_CHECK_MSG(i + 1 < argc, "flag " << arg << " needs a value");
      flags[arg] = argv[++i];
    } else {
      pos->push_back(arg);
    }
  }
  return flags;
}

RcTree LoadNet(const std::string& path) {
  std::ifstream in(path);
  MSN_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return ReadNet(in);
}

SolutionFile LoadSolution(const std::string& path, const RcTree& tree) {
  std::ifstream in(path);
  MSN_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  // Skip the net section if the file carries one.
  std::string line;
  const auto start = in.tellg();
  bool has_net = false;
  if (std::getline(in, line) && line.rfind("msn-net", 0) == 0) {
    has_net = true;
    while (std::getline(in, line) && line != "end") {
    }
  }
  if (!has_net) in.seekg(start);
  return ReadSolution(in, tree);
}

int CmdGen(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags = ParseFlags(argc, argv, 2, &pos);
  MSN_CHECK_MSG(flags.count("--terminals") && flags.count("-o"),
                "gen requires --terminals and -o");
  NetConfig cfg;
  cfg.num_terminals = std::stoul(flags.at("--terminals"));
  if (flags.count("--seed")) cfg.seed = std::stoull(flags.at("--seed"));
  if (flags.count("--grid")) cfg.grid_um = std::stoll(flags.at("--grid"));
  if (flags.count("--spacing")) {
    cfg.insertion_spacing_um = std::stod(flags.at("--spacing"));
  }
  const Technology tech = DefaultTechnology();
  const RcTree tree = BuildExperimentNet(cfg, tech);
  std::ofstream out(flags.at("-o"));
  MSN_CHECK_MSG(out.good(), "cannot write '" << flags.at("-o") << "'");
  WriteNet(out, tree);
  DescribeNet(std::cout, tree);
  std::cout << "wrote " << flags.at("-o") << '\n';
  return 0;
}

int CmdArd(int argc, char** argv) {
  std::vector<std::string> pos;
  ParseFlags(argc, argv, 2, &pos);
  MSN_CHECK_MSG(!pos.empty(), "ard requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  const Technology tech = DefaultTechnology();
  DescribeNet(std::cout, tree);

  RepeaterAssignment repeaters(tree.NumNodes());
  DriverAssignment drivers(tree.NumTerminals());
  RcTree evaluated = tree;
  if (pos.size() > 1) {
    SolutionFile sol = LoadSolution(pos[1], tree);
    repeaters = sol.repeaters;
    drivers = std::move(sol.drivers);
    if (!sol.wire_widths.empty()) {
      evaluated = tree.WithWireWidths(sol.wire_widths);
    }
  }
  const ArdResult ard = ComputeArd(evaluated, repeaters, drivers, tech);
  std::cout << "ARD: " << ard.ard_ps << " ps";
  if (ard.HasPair()) {
    std::cout << "  (critical: terminal " << ard.critical_source << " -> "
              << ard.critical_sink << ')';
  }
  std::cout << '\n';
  return 0;
}

int CmdOptimize(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags = ParseFlags(argc, argv, 2, &pos);
  MSN_CHECK_MSG(!pos.empty(), "optimize requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  const Technology tech = DefaultTechnology();

  MsriOptions opt;
  const std::string mode =
      flags.count("--mode") ? flags.at("--mode") : "repeaters";
  if (mode == "sizing" || mode == "joint") {
    opt.size_drivers = true;
    opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
    opt.insert_repeaters = mode == "joint";
  } else {
    MSN_CHECK_MSG(mode == "repeaters", "unknown --mode '" << mode << "'");
  }

  DescribeNet(std::cout, tree);
  const double base = ComputeArd(tree, tech).ard_ps;
  const MsriResult result = RunMsri(tree, tech, opt);

  TablePrinter t({"cost", "#rep", "ARD (ps)", "vs base"});
  for (const TradeoffPoint& p : result.Pareto()) {
    t.AddRow({TablePrinter::Num(p.cost, 1), std::to_string(p.num_repeaters),
              TablePrinter::Num(p.ard_ps, 1),
              TablePrinter::Num(p.ard_ps / base, 2)});
  }
  t.Print(std::cout);

  const TradeoffPoint* pick =
      flags.count("--spec")
          ? result.MinCostFeasible(std::stod(flags.at("--spec")))
          : result.MinArd();
  if (pick == nullptr) {
    std::cout << "spec " << flags.at("--spec")
              << " ps is unachievable (best " << result.MinArd()->ard_ps
              << " ps)\n";
    return 1;
  }
  const ArdResult ard = ComputeArd(tree, pick->repeaters, pick->drivers,
                                   tech);
  std::cout << '\n';
  DescribeSolution(std::cout, tree, tech, *pick, ard);
  if (flags.count("-o")) {
    std::ofstream out(flags.at("-o"));
    MSN_CHECK_MSG(out.good(), "cannot write '" << flags.at("-o") << "'");
    WriteNet(out, tree);
    WriteSolution(out, tree, *pick);
    std::cout << "wrote " << flags.at("-o") << '\n';
  }
  return 0;
}

int CmdRender(int argc, char** argv) {
  std::vector<std::string> pos;
  ParseFlags(argc, argv, 2, &pos);
  MSN_CHECK_MSG(!pos.empty(), "render requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  RepeaterAssignment repeaters(tree.NumNodes());
  if (pos.size() > 1) {
    repeaters = LoadSolution(pos[1], tree).repeaters;
  }
  DescribeNet(std::cout, tree);
  std::cout << RenderAscii(tree, repeaters, 72, 30);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return CmdGen(argc, argv);
    if (cmd == "ard") return CmdArd(argc, argv);
    if (cmd == "optimize") return CmdOptimize(argc, argv);
    if (cmd == "render") return CmdRender(argc, argv);
  } catch (const msn::CheckError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  Usage();
}
