// msn_cli — command-line driver for the multisource-net optimizer.
//
//   msn_cli gen --terminals N [--seed S] [--grid UM] [--spacing UM] -o F
//       Generate a random experiment net and write it as .msn.
//   msn_cli ard NET.msn [SOLUTION.msn]
//       Report the augmented RC-diameter (optionally of a saved solution).
//   msn_cli optimize NET.msn [--spec PS] [--mode repeaters|sizing|joint]
//           [--stats[=FILE.json]] [-o SOLUTION.msn]
//       Run the MSRI DP; print the tradeoff suite and the chosen point
//       (min-cost meeting --spec, else the min-ARD point).  --stats prints
//       the instrumentation tables; --stats=FILE.json writes the
//       machine-readable run report (docs/OBSERVABILITY.md).
//   msn_cli optimize-batch DIR|MANIFEST [--jobs N] [--spec PS]
//           [--mode repeaters|sizing|joint] [--intra-net]
//           [--stats=FILE.json]
//       Optimize every .msn net of a directory (sorted) or manifest (one
//       path per line, # comments) on N pool threads with per-net error
//       containment.  The report on stdout is byte-identical at any
//       --jobs; --stats writes the msn-batch-stats-v1 aggregate document
//       (docs/RUNTIME.md).
//   msn_cli render NET.msn [SOLUTION.msn]
//       ASCII sketch of the net (with repeater markers if given).
//   msn_cli gen-design --nets N [--seed S] [--terminals-min A]
//           [--terminals-max B] [--grid UM] [--required-factor F]
//           [--multi-source F] -o DIR
//       Generate a seeded multi-net design: DIR/design.msd plus one .msn
//       per net (docs/STA.md).  Byte-identical for the same seed.
//   msn_cli close-timing DESIGN.msd [--jobs N] [--max-iters K]
//           [--nets-per-iter M] [--cache-dir DIR] [--stats=FILE.json]
//       Static-timing closure: propagate arrivals/requireds, derive
//       per-net ARD specs from slack, optimize critical nets through the
//       batch engine (frontiers cached by canonical fingerprint;
//       --cache-dir persists them across runs), iterate to convergence.
//       The report on stdout is byte-identical at any --jobs; --stats
//       writes the msn-sta-stats-v1 document (docs/STA.md).
//   msn_cli serve [--jobs N] [--cache-entries K] [--cache-bytes B]
//           [--cache-shards S] [--cache-dir DIR] [--deadline-ms D]
//           [--port P] [--max-connections C] [--max-queue Q] [--max-cost E]
//           [--trace-dir DIR] [--trace-sample N]
//       Long-running optimization service: line-delimited JSON requests on
//       stdin (or a loopback TCP port with --port, serving up to
//       --max-connections clients concurrently), responses on stdout,
//       answers cached by canonical net fingerprint (docs/SERVICE.md).
//       --cache-dir persists the cache to DIR/cache.msnseg and warms it
//       back on restart (crash-safe; docs/SERVICE.md).  --max-queue and
//       --max-cost shed excess load with structured `overloaded`
//       responses; expired deadlines cancel in-flight DP runs.
//       --trace-dir writes one Chrome trace-event JSON file per sampled
//       optimize request (load in Perfetto; summarize with
//       tools/trace_view.py); --trace-sample N traces 1 in N requests
//       (docs/OBSERVABILITY.md "Tracing").
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "io/report.h"
#include "io/table.h"
#include "netgen/design_gen.h"
#include "netgen/netgen.h"
#include "obs/stats.h"
#include "runtime/batch.h"
#include "service/server.h"
#include "sta/closure.h"
#include "sta/design.h"
#include "tech/tech.h"

namespace {

using namespace msn;

/// User-facing command-line mistakes: reported as a one-line `error: ...`
/// with exit code 1, without the MSN_CHECK internals prefix.
struct CliError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Malformed invocations (unknown flag, missing value): reported as a
/// one-line `error: ...` followed by the usage text, exit code 2 — so
/// scripts can tell "you called me wrong" (2) from "the run failed" (1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void Usage() {
  std::cerr <<
      "usage:\n"
      "  msn_cli gen --terminals N [--seed S] [--grid UM] [--spacing UM]"
      " -o FILE\n"
      "  msn_cli ard NET.msn [SOLUTION.msn]\n"
      "  msn_cli optimize NET.msn [--spec PS]"
      " [--mode repeaters|sizing|joint] [--stats[=FILE.json]]"
      " [-o SOLUTION.msn]\n"
      "  msn_cli optimize-batch DIR|MANIFEST [--jobs N] [--spec PS]"
      " [--mode repeaters|sizing|joint] [--intra-net]"
      " [--stats=FILE.json]\n"
      "  msn_cli render NET.msn [SOLUTION.msn]\n"
      "  msn_cli gen-design --nets N [--seed S] [--terminals-min A]"
      " [--terminals-max B] [--grid UM] [--required-factor F]"
      " [--multi-source F] -o DIR\n"
      "  msn_cli close-timing DESIGN.msd [--jobs N] [--max-iters K]"
      " [--nets-per-iter M] [--cache-dir DIR] [--stats=FILE.json]\n"
      "  msn_cli serve [--jobs N] [--cache-entries K] [--cache-bytes B]"
      " [--cache-shards S] [--cache-dir DIR] [--deadline-ms D]"
      " [--port P] [--max-connections C] [--max-queue Q]"
      " [--max-cost E] [--trace-dir DIR] [--trace-sample N]\n";
  std::exit(2);
}

/// Accepts `--flag VALUE`, `--flag=VALUE`, and the value-less `--stats`.
/// A flag outside `allowed` is a UsageError: every command declares its
/// flag set, so typos fail loudly (usage + exit 2) instead of being
/// silently ignored.
std::map<std::string, std::string> ParseFlags(
    int argc, char** argv, int first, std::vector<std::string>* pos,
    std::initializer_list<const char*> allowed) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 || arg == "-o") {
      const std::size_t eq = arg.find('=');
      const std::string name =
          eq == std::string::npos ? arg : arg.substr(0, eq);
      if (std::find(allowed.begin(), allowed.end(), name) ==
          allowed.end()) {
        throw UsageError("unknown flag '" + name + "' for " +
                         std::string(argv[1]));
      }
      if (eq != std::string::npos) {
        flags[name] = arg.substr(eq + 1);
      } else if (arg == "--stats" || arg == "--intra-net") {
        flags[arg] = "";  // Value-less flags.
      } else {
        if (i + 1 >= argc) {
          throw UsageError("flag " + arg + " needs a value");
        }
        flags[arg] = argv[++i];
      }
    } else {
      pos->push_back(arg);
    }
  }
  return flags;
}

/// std::stod & friends with a one-line diagnostic instead of a raw
/// std::invalid_argument escaping to the top.
double NumericFlag(const std::map<std::string, std::string>& flags,
                   const std::string& name) {
  const std::string& text = flags.at(name);
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw CliError("flag " + name + " expects a number, got '" + text + "'");
  }
}

RcTree LoadNet(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw CliError("cannot open '" + path + "'");
  try {
    return ReadNet(in);
  } catch (const ParseError& e) {
    // One line, with the offending line number from io/netfile.
    throw CliError(path + ": " + e.what());
  }
}

SolutionFile LoadSolution(const std::string& path, const RcTree& tree) {
  std::ifstream in(path);
  if (!in.good()) throw CliError("cannot open '" + path + "'");
  // Skip the net section if the file carries one.
  std::string line;
  const auto start = in.tellg();
  bool has_net = false;
  if (std::getline(in, line) && line.rfind("msn-net", 0) == 0) {
    has_net = true;
    while (std::getline(in, line) && line != "end") {
    }
  }
  if (!has_net) in.seekg(start);
  try {
    return ReadSolution(in, tree);
  } catch (const ParseError& e) {
    throw CliError(path + ": " + e.what());
  }
}

int CmdGen(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags =
      ParseFlags(argc, argv, 2, &pos,
                 {"--terminals", "--seed", "--grid", "--spacing", "-o"});
  MSN_CHECK_MSG(flags.count("--terminals") && flags.count("-o"),
                "gen requires --terminals and -o");
  NetConfig cfg;
  cfg.num_terminals =
      static_cast<std::size_t>(NumericFlag(flags, "--terminals"));
  if (flags.count("--seed")) {
    cfg.seed = static_cast<std::uint64_t>(NumericFlag(flags, "--seed"));
  }
  if (flags.count("--grid")) {
    cfg.grid_um = static_cast<std::int64_t>(NumericFlag(flags, "--grid"));
  }
  if (flags.count("--spacing")) {
    cfg.insertion_spacing_um = NumericFlag(flags, "--spacing");
  }
  const Technology tech = DefaultTechnology();
  const RcTree tree = BuildExperimentNet(cfg, tech);
  std::ofstream out(flags.at("-o"));
  MSN_CHECK_MSG(out.good(), "cannot write '" << flags.at("-o") << "'");
  WriteNet(out, tree);
  DescribeNet(std::cout, tree);
  std::cout << "wrote " << flags.at("-o") << '\n';
  return 0;
}

int CmdArd(int argc, char** argv) {
  std::vector<std::string> pos;
  ParseFlags(argc, argv, 2, &pos, {});
  MSN_CHECK_MSG(!pos.empty(), "ard requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  const Technology tech = DefaultTechnology();
  DescribeNet(std::cout, tree);

  RepeaterAssignment repeaters(tree.NumNodes());
  DriverAssignment drivers(tree.NumTerminals());
  RcTree evaluated = tree;
  if (pos.size() > 1) {
    SolutionFile sol = LoadSolution(pos[1], tree);
    repeaters = sol.repeaters;
    drivers = std::move(sol.drivers);
    if (!sol.wire_widths.empty()) {
      evaluated = tree.WithWireWidths(sol.wire_widths);
    }
  }
  const ArdResult ard = ComputeArd(evaluated, repeaters, drivers, tech);
  std::cout << "ARD: " << ard.ard_ps << " ps";
  if (ard.HasPair()) {
    std::cout << "  (critical: terminal " << ard.critical_source << " -> "
              << ard.critical_sink << ')';
  }
  std::cout << '\n';
  return 0;
}

/// The shared --mode handling of optimize / optimize-batch.
MsriOptions ModeOptions(const std::map<std::string, std::string>& flags,
                        const Technology& tech, std::string* mode_out) {
  MsriOptions opt;
  const std::string mode =
      flags.count("--mode") ? flags.at("--mode") : "repeaters";
  if (mode == "sizing" || mode == "joint") {
    opt.size_drivers = true;
    opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
    opt.insert_repeaters = mode == "joint";
  } else if (mode != "repeaters") {
    throw CliError("unknown --mode '" + mode + "'");
  }
  *mode_out = mode;
  return opt;
}

int CmdOptimize(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags = ParseFlags(argc, argv, 2, &pos,
                                {"--spec", "--mode", "--stats", "-o"});
  MSN_CHECK_MSG(!pos.empty(), "optimize requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  const Technology tech = DefaultTechnology();

  std::string mode;
  MsriOptions opt = ModeOptions(flags, tech, &mode);

  // --stats attaches the observability sink to every engine this command
  // runs; the bare form prints tables, --stats=FILE.json writes the
  // machine-readable report (docs/OBSERVABILITY.md).
  obs::RunStats run_stats;
  std::optional<obs::StatsSink> sink;
  if (flags.count("--stats")) {
    sink.emplace(&run_stats);
    opt.stats = &*sink;
    run_stats.SetLabel("tool", "msn_cli optimize");
    run_stats.SetLabel("net", pos[0]);
    run_stats.SetLabel("mode", mode);
    run_stats.SetValue("net.terminals",
                       static_cast<double>(tree.NumTerminals()));
    run_stats.SetValue("net.insertion_points",
                       static_cast<double>(tree.InsertionPoints().size()));
  }
  obs::StatsSink* sink_ptr = sink ? &*sink : nullptr;

  DescribeNet(std::cout, tree);
  const double base = ComputeArd(tree, tech, sink_ptr).ard_ps;
  const MsriResult result = RunMsri(tree, tech, opt);

  TablePrinter t({"cost", "#rep", "ARD (ps)", "vs base"});
  for (const TradeoffPoint& p : result.Pareto()) {
    t.AddRow({TablePrinter::Num(p.cost, 1), std::to_string(p.num_repeaters),
              TablePrinter::Num(p.ard_ps, 1),
              TablePrinter::Num(p.ard_ps / base, 2)});
  }
  t.Print(std::cout);

  const TradeoffPoint* pick =
      flags.count("--spec")
          ? result.MinCostFeasible(NumericFlag(flags, "--spec"))
          : result.MinArd();
  if (pick == nullptr) {
    std::cout << "spec " << flags.at("--spec")
              << " ps is unachievable (best " << result.MinArd()->ard_ps
              << " ps)\n";
    return 1;
  }
  const ArdResult ard = ComputeArd(tree, pick->repeaters, pick->drivers,
                                   tech, kNoNode, sink_ptr);
  std::cout << '\n';
  DescribeSolution(std::cout, tree, tech, *pick, ard);
  if (flags.count("-o")) {
    std::ofstream out(flags.at("-o"));
    MSN_CHECK_MSG(out.good(), "cannot write '" << flags.at("-o") << "'");
    WriteNet(out, tree);
    WriteSolution(out, tree, *pick);
    std::cout << "wrote " << flags.at("-o") << '\n';
  }
  if (sink) {
    run_stats.SetValue("result.base_ard_ps", base);
    run_stats.SetValue("result.picked_ard_ps", pick->ard_ps);
    run_stats.SetValue("result.picked_cost", pick->cost);
    run_stats.SetValue("result.picked_repeaters",
                       static_cast<double>(pick->num_repeaters));
    const std::string& stats_path = flags.at("--stats");
    if (stats_path.empty()) {
      std::cout << '\n';
      DescribeStats(std::cout, run_stats);
    } else {
      std::ofstream out(stats_path);
      if (!out.good()) {
        throw CliError("cannot write '" + stats_path + "'");
      }
      run_stats.RenderJson(out);
      out << '\n';
      std::cout << "wrote " << stats_path << '\n';
    }
  }
  return 0;
}

int CmdOptimizeBatch(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags =
      ParseFlags(argc, argv, 2, &pos,
                 {"--jobs", "--spec", "--mode", "--intra-net", "--stats"});
  MSN_CHECK_MSG(!pos.empty(),
                "optimize-batch requires a directory or manifest");
  const Technology tech = DefaultTechnology();

  std::string mode;
  const MsriOptions base = ModeOptions(flags, tech, &mode);

  runtime::BatchOptions batch_opt;
  if (flags.count("--jobs")) {
    const double jobs = NumericFlag(flags, "--jobs");
    if (jobs < 1) throw CliError("--jobs must be at least 1");
    batch_opt.jobs = static_cast<std::size_t>(jobs);
  }
  batch_opt.intra_net_parallelism = flags.count("--intra-net") > 0;
  const bool want_stats = flags.count("--stats") > 0;
  if (want_stats && flags.at("--stats").empty()) {
    throw CliError("optimize-batch --stats requires =FILE.json");
  }
  batch_opt.collect_stats = want_stats;

  std::vector<std::string> paths;
  try {
    paths = runtime::CollectNetPaths(pos[0]);
  } catch (const CheckError& e) {
    throw CliError(e.what());
  }

  const runtime::BatchResult batch =
      runtime::OptimizeBatchFiles(paths, tech, base, batch_opt);

  std::optional<double> spec;
  if (flags.count("--spec")) spec = NumericFlag(flags, "--spec");
  // The report is the determinism contract: byte-identical at any
  // --jobs (tests/runtime_test.cc and the CI matrix byte-compare it).
  runtime::WriteBatchReport(std::cout, batch, spec);

  if (want_stats) {
    const std::string& stats_path = flags.at("--stats");
    std::ofstream out(stats_path);
    if (!out.good()) throw CliError("cannot write '" + stats_path + "'");
    runtime::WriteBatchStatsJson(out, batch);
    // stderr, not stdout: stdout carries only the deterministic report,
    // so it stays byte-comparable across invocations with/without stats.
    std::cerr << "wrote " << stats_path << '\n';
  }
  return batch.AllOk() ? 0 : 1;
}

int CmdRender(int argc, char** argv) {
  std::vector<std::string> pos;
  ParseFlags(argc, argv, 2, &pos, {});
  MSN_CHECK_MSG(!pos.empty(), "render requires a net file");
  const RcTree tree = LoadNet(pos[0]);
  RepeaterAssignment repeaters(tree.NumNodes());
  if (pos.size() > 1) {
    repeaters = LoadSolution(pos[1], tree).repeaters;
  }
  DescribeNet(std::cout, tree);
  std::cout << RenderAscii(tree, repeaters, 72, 30);
  return 0;
}

int CmdGenDesign(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags =
      ParseFlags(argc, argv, 2, &pos,
                 {"--nets", "--seed", "--terminals-min", "--terminals-max",
                  "--grid", "--required-factor", "--multi-source", "-o"});
  if (!pos.empty()) {
    throw UsageError("gen-design takes no positional arguments");
  }
  MSN_CHECK_MSG(flags.count("--nets") && flags.count("-o"),
                "gen-design requires --nets and -o");
  DesignConfig cfg;
  const double nets = NumericFlag(flags, "--nets");
  if (nets < 1) throw CliError("--nets must be at least 1");
  cfg.num_nets = static_cast<std::size_t>(nets);
  if (flags.count("--seed")) {
    cfg.seed = static_cast<std::uint64_t>(NumericFlag(flags, "--seed"));
  }
  if (flags.count("--terminals-min")) {
    const double n = NumericFlag(flags, "--terminals-min");
    if (n < 2) throw CliError("--terminals-min must be at least 2");
    cfg.terminals_min = static_cast<std::size_t>(n);
  }
  if (flags.count("--terminals-max")) {
    cfg.terminals_max = static_cast<std::size_t>(
        NumericFlag(flags, "--terminals-max"));
    if (cfg.terminals_max < cfg.terminals_min) {
      throw CliError("--terminals-max must be >= --terminals-min");
    }
  }
  if (flags.count("--grid")) {
    cfg.net.grid_um =
        static_cast<std::int64_t>(NumericFlag(flags, "--grid"));
  }
  if (flags.count("--required-factor")) {
    const double f = NumericFlag(flags, "--required-factor");
    if (f <= 0) throw CliError("--required-factor must be positive");
    cfg.required_factor = f;
  }
  if (flags.count("--multi-source")) {
    const double f = NumericFlag(flags, "--multi-source");
    if (f < 0 || f > 1) throw CliError("--multi-source must be in [0, 1]");
    cfg.multi_source_fraction = f;
  }
  const Technology tech = DefaultTechnology();
  const sta::Design design = GenerateDesign(cfg, tech);
  const std::string msd = WriteDesignFiles(design, flags.at("-o"));
  std::size_t endpoints = 0;
  for (const sta::DesignPort& p : design.ports) {
    if (!p.is_input) ++endpoints;
  }
  std::cout << "wrote " << msd << ": " << design.nets.size() << " nets, "
            << design.components.size() << " components, " << endpoints
            << " endpoints\n";
  return 0;
}

int CmdCloseTiming(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags =
      ParseFlags(argc, argv, 2, &pos,
                 {"--jobs", "--max-iters", "--nets-per-iter",
                  "--cache-dir", "--stats"});
  MSN_CHECK_MSG(pos.size() == 1, "close-timing requires a .msd design");

  sta::ClosureOptions opt;
  if (flags.count("--jobs")) {
    const double jobs = NumericFlag(flags, "--jobs");
    if (jobs < 1) throw CliError("--jobs must be at least 1");
    opt.jobs = static_cast<std::size_t>(jobs);
  }
  if (flags.count("--max-iters")) {
    const double n = NumericFlag(flags, "--max-iters");
    if (n < 1) throw CliError("--max-iters must be at least 1");
    opt.max_iters = static_cast<std::size_t>(n);
  }
  if (flags.count("--nets-per-iter")) {
    const double n = NumericFlag(flags, "--nets-per-iter");
    if (n < 0) throw CliError("--nets-per-iter must be non-negative");
    opt.nets_per_iter = static_cast<std::size_t>(n);
  }
  if (flags.count("--cache-dir")) {
    const std::string& dir = flags.at("--cache-dir");
    if (dir.empty()) throw CliError("--cache-dir needs a directory");
    opt.cache_dir = dir;
  }
  const bool want_stats = flags.count("--stats") > 0;
  if (want_stats && flags.at("--stats").empty()) {
    throw CliError("close-timing --stats requires =FILE.json");
  }

  const Technology tech = DefaultTechnology();
  sta::Design design;
  try {
    design = sta::LoadDesign(pos[0]);
  } catch (const ParseError& e) {
    throw CliError(pos[0] + ": " + e.what());
  }

  const sta::ClosureResult result = sta::CloseTiming(design, tech, opt);
  // The report is the determinism contract: byte-identical at any
  // --jobs (tests/sta_test.cc and the CI smoke step byte-compare it).
  sta::WriteClosureReport(std::cout, result);

  if (want_stats) {
    const std::string& stats_path = flags.at("--stats");
    std::ofstream out(stats_path);
    if (!out.good()) throw CliError("cannot write '" + stats_path + "'");
    sta::WriteClosureStatsJson(out, result, pos[0]);
    // stderr, not stdout: stdout stays byte-comparable across runs.
    std::cerr << "wrote " << stats_path << '\n';
  }
  for (const sta::NetClosure& n : result.nets) {
    if (!n.error.empty()) return 1;  // Contained per-net DP failure.
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  std::vector<std::string> pos;
  const auto flags =
      ParseFlags(argc, argv, 2, &pos,
                 {"--jobs", "--cache-entries", "--cache-bytes",
                  "--cache-shards", "--cache-dir", "--deadline-ms",
                  "--port", "--max-connections", "--max-queue",
                  "--max-cost", "--trace-dir", "--trace-sample"});
  if (!pos.empty()) {
    throw UsageError("serve takes no positional arguments");
  }
  service::ServerOptions opt;
  if (flags.count("--jobs")) {
    const double jobs = NumericFlag(flags, "--jobs");
    if (jobs < 1) throw CliError("--jobs must be at least 1");
    opt.jobs = static_cast<std::size_t>(jobs);
  }
  if (flags.count("--cache-entries")) {
    const double n = NumericFlag(flags, "--cache-entries");
    if (n < 1) throw CliError("--cache-entries must be at least 1");
    opt.cache.max_entries = static_cast<std::size_t>(n);
  }
  if (flags.count("--cache-bytes")) {
    const double n = NumericFlag(flags, "--cache-bytes");
    if (n < 1) throw CliError("--cache-bytes must be at least 1");
    opt.cache.max_bytes = static_cast<std::size_t>(n);
  }
  if (flags.count("--cache-shards")) {
    const double n = NumericFlag(flags, "--cache-shards");
    if (n < 1) throw CliError("--cache-shards must be at least 1");
    opt.cache.shards = static_cast<std::size_t>(n);
  }
  if (flags.count("--cache-dir")) {
    const std::string& dir = flags.at("--cache-dir");
    if (dir.empty()) throw CliError("--cache-dir needs a directory");
    opt.persist.dir = dir;
  }
  if (flags.count("--deadline-ms")) {
    const double d = NumericFlag(flags, "--deadline-ms");
    if (d < 0) throw CliError("--deadline-ms must be non-negative");
    opt.default_deadline_ms = d;
  }
  if (flags.count("--max-connections")) {
    const double n = NumericFlag(flags, "--max-connections");
    if (n < 1) throw CliError("--max-connections must be at least 1");
    opt.max_connections = static_cast<std::size_t>(n);
  }
  if (flags.count("--max-queue")) {
    const double n = NumericFlag(flags, "--max-queue");
    if (n < 0) throw CliError("--max-queue must be non-negative");
    opt.max_queue_depth = static_cast<std::size_t>(n);
  }
  if (flags.count("--max-cost")) {
    const double n = NumericFlag(flags, "--max-cost");
    if (n < 0) throw CliError("--max-cost must be non-negative");
    opt.max_estimated_solutions = n;
  }
  if (flags.count("--trace-dir")) {
    const std::string& dir = flags.at("--trace-dir");
    if (dir.empty()) throw CliError("--trace-dir needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw CliError("--trace-dir " + dir + ": " + ec.message());
    }
    opt.trace_dir = dir;
  }
  if (flags.count("--trace-sample")) {
    const double n = NumericFlag(flags, "--trace-sample");
    if (n < 1) throw CliError("--trace-sample must be at least 1");
    opt.trace_sample = static_cast<std::size_t>(n);
  }
  const Technology tech = DefaultTechnology();
  service::Server server(tech, opt);
  if (flags.count("--port")) {
    const double port = NumericFlag(flags, "--port");
    if (port < 0 || port > 65535) {
      throw CliError("--port must be in [0, 65535]");
    }
    return server.ServeTcp(static_cast<std::uint16_t>(port), std::cerr);
  }
  server.Serve(std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return CmdGen(argc, argv);
    if (cmd == "ard") return CmdArd(argc, argv);
    if (cmd == "optimize") return CmdOptimize(argc, argv);
    if (cmd == "optimize-batch") return CmdOptimizeBatch(argc, argv);
    if (cmd == "render") return CmdRender(argc, argv);
    if (cmd == "gen-design") return CmdGenDesign(argc, argv);
    if (cmd == "close-timing") return CmdCloseTiming(argc, argv);
    if (cmd == "serve") return CmdServe(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << '\n';
    Usage();
  } catch (const CliError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const msn::ParseError& e) {
    // Malformed .msn reaching here bypassed LoadNet's wrapping (e.g. a
    // solution file); still one line, with the line number.
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const msn::CheckError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    // Anything else (bad_alloc, stream failures, ...): never a raw abort.
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  Usage();
}
