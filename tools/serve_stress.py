#!/usr/bin/env python3
"""Stress `msn_cli serve --port` with parallel, partly hostile clients.

serve_smoke.py walks the protocol over stdin; this driver hammers the
TCP front with the traffic docs/SERVICE.md promises to survive:

  * a storm of parallel clients submitting overlapping requests:
    every request gets exactly one response, duplicates are answered
    identically across connections (modulo the per-request trace_id),
    and the DP runs at most once per distinct net (in-flight
    coalescing + cache) — while a poller thread validates live
    `{"cmd":"stats"}` snapshots (schema + lifecycle inequality)
    mid-storm;
  * mid-request disconnects: clients that submit work and vanish
    without reading must not crash the server (SIGPIPE), wedge a
    worker, or leak their connection fd — the server keeps serving and
    the fd count settles back to its baseline;
  * deadlines expiring mid-DP on deliberately oversized nets: the
    answer is a structured `cancelled` (or pre-start `timeout`) line in
    bounded time, never a full multi-second run;
  * load shedding under a tiny --max-queue: ok + overloaded responses
    add up to the submitted count, nothing hangs, nothing is dropped;
  * slow-loris writers: a client trickling its request byte by byte
    stalls only itself — concurrent normal clients complete while the
    loris is still typing;
  * after all of that: the stats document is schema-valid and
    internally consistent, and one shutdown op drains every connection
    for a clean exit 0.

Every socket has a hard timeout and the whole run is bounded by the
CTest TIMEOUT, so a deadlock fails fast instead of hanging CI.

Usage: serve_stress.py /path/to/msn_cli [--jobs N] [--clients K]
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time


sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_stats_schema  # noqa: E402  (sibling module)

SOCKET_TIMEOUT_S = 120
# Deadline for the oversized-net request, and how long the cancelled
# answer may take to arrive.  The net itself needs far longer than
# ANSWER_BOUND_S to optimize, so meeting the bound proves mid-DP
# abandonment rather than a fast run.
CANCEL_DEADLINE_MS = 300
ANSWER_BOUND_S = 8


def fail(msg):
    print("serve_stress: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def gen_net(cli, seed, terminals=5):
    fd, net_path = tempfile.mkstemp(suffix=".msn")
    os.close(fd)
    try:
        gen = subprocess.run(
            [cli, "gen", "--terminals", str(terminals), "--seed",
             str(seed), "-o", net_path],
            capture_output=True, text=True, timeout=120)
        if gen.returncode != 0:
            fail("gen exited %d: %s" % (gen.returncode, gen.stderr))
        with open(net_path) as f:
            return f.read()
    finally:
        os.unlink(net_path)


class TcpServer:
    """`msn_cli serve --port 0` plus the port parsed from its stderr."""

    def __init__(self, cli, jobs, extra_flags=()):
        self.proc = subprocess.Popen(
            [cli, "serve", "--port", "0", "--jobs", str(jobs),
             "--cache-entries", "64"] + list(extra_flags),
            stdin=subprocess.DEVNULL, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        line = self.proc.stderr.readline()
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if not m:
            self.proc.kill()
            fail("no listening line on stderr, got: %r" % line)
        self.port = int(m.group(1))

    def fd_count(self):
        try:
            return len(os.listdir("/proc/%d/fd" % self.proc.pid))
        except OSError:
            return -1  # /proc not available; caller skips the check

    def shutdown(self):
        """Clean shutdown via the protocol; returns the exit code."""
        with Client(self.port) as c:
            c.send({"op": "shutdown", "id": "bye"})
            resp = c.recv()
            if not (resp.get("ok") and resp.get("shutdown")):
                fail("shutdown response: %r" % resp)
        try:
            return self.proc.wait(timeout=SOCKET_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("server did not exit after shutdown (leaked thread or"
                 " wedged drain)")

    def kill(self):
        self.proc.kill()
        self.proc.wait()


class Client:
    """One line-delimited JSON connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=SOCKET_TIMEOUT_S)
        self.buf = b""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def send_slowly(self, obj, chunk=1, delay_s=0.01, max_slow_bytes=64):
        """Slow-loris: trickle the first bytes, then finish the line."""
        data = (json.dumps(obj) + "\n").encode()
        slow, rest = data[:max_slow_bytes], data[max_slow_bytes:]
        for i in range(0, len(slow), chunk):
            self.sock.sendall(slow[i:i + chunk])
            time.sleep(delay_s)
        if rest:
            self.sock.sendall(rest)

    def recv_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def recv(self):
        line = self.recv_line()
        if line is None:
            fail("server closed the connection mid-conversation")
        return json.loads(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def run_thread_pool(thunks):
    """Runs every thunk on its own thread; propagates the first error."""
    errors = []

    def wrap(fn):
        try:
            fn()
        except BaseException as e:  # noqa: BLE001 - surfaced below
            errors.append(e)

    threads = [threading.Thread(target=wrap, args=(fn,)) for fn in thunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def check_live_stats(doc, where):
    """Validates one live `{"cmd":"stats"}` snapshot mid-storm."""
    try:
        check_stats_schema._check_service(doc, where)
    except check_stats_schema.SchemaError as e:
        return "%s schema violation: %s" % (where, e)
    req = doc["requests"]
    resolved = (req["ok"] + req["errors"] + req["timeouts"] +
                req["shed_queue"] + req["shed_cost"] + req["cancelled"])
    if resolved > req["received"]:
        return ("%s: %d resolved > %d received mid-storm"
                % (where, resolved, req["received"]))
    return None


def scenario_storm(server, nets, clients):
    """Parallel duplicate-heavy traffic: exactly-one, byte-identical.

    A poller thread hammers the non-draining `{"cmd":"stats"}` verb the
    whole time: every live snapshot must be schema-valid (including the
    latency histograms) and hold the lifecycle inequality even while
    requests are in flight — the live verb must never block behind the
    storm or expose a torn document.
    """
    responses = {}  # (client, req index) -> (net index, line)
    lock = threading.Lock()
    storm_done = threading.Event()
    poll_errors = []
    snaps = []

    def poller():
        try:
            with Client(server.port) as conn:
                while not storm_done.is_set():
                    conn.send({"cmd": "stats", "id": "live"})
                    doc = conn.recv()
                    err = check_live_stats(doc, "live stats")
                    if err:
                        poll_errors.append(err)
                        return
                    if snaps and (doc["requests"]["received"] <
                                  snaps[-1]["requests"]["received"]):
                        poll_errors.append("live received count went"
                                           " backwards")
                        return
                    snaps.append(doc)
                    time.sleep(0.02)
        except BaseException as e:  # noqa: BLE001 - surfaced below
            poll_errors.append("live stats poller died: %r" % e)

    def client_fn(c):
        def run():
            with Client(server.port) as conn:
                # Every client submits every net, ids unique per client.
                for i, net in enumerate(nets):
                    conn.send({"op": "optimize", "id": "c%d-n%d" % (c, i),
                               "net": net})
                got = {}
                for _ in nets:
                    resp = conn.recv()
                    if not resp.get("ok"):
                        fail("storm optimize failed: %r" % resp)
                    got[resp["id"]] = json.dumps(resp, sort_keys=True)
                with lock:
                    for i in range(len(nets)):
                        rid = "c%d-n%d" % (c, i)
                        if rid not in got:
                            fail("client %d got no response for %s"
                                 % (c, rid))
                        responses[(c, i)] = got[rid]
        return run

    poll_thread = threading.Thread(target=poller)
    poll_thread.start()
    try:
        run_thread_pool([client_fn(c) for c in range(clients)])
    finally:
        storm_done.set()
        poll_thread.join()
    if poll_errors:
        fail(poll_errors[0])
    if not snaps:
        fail("live stats poller produced no mid-storm snapshots")
    if len(responses) != clients * len(nets):
        fail("expected %d responses, got %d"
             % (clients * len(nets), len(responses)))
    # Identical net => identical payload across every connection (ids
    # and trace_ids differ by construction, so compare everything else).
    for i in range(len(nets)):
        payloads = set()
        for c in range(clients):
            doc = json.loads(responses[(c, i)])
            doc.pop("id")
            doc.pop("trace_id", None)
            payloads.add(json.dumps(doc, sort_keys=True))
        if len(payloads) != 1:
            fail("net %d answered %d distinct payloads across clients"
                 % (i, len(payloads)))
    print("serve_stress: storm OK (%d clients x %d nets, %d live"
          " snapshots)" % (clients, len(nets), len(snaps)))


def scenario_disconnects(server, big_net, clients):
    """Submit-and-vanish clients; the server must shrug them off."""
    fd_baseline = server.fd_count()

    def vanish(c):
        def run():
            conn = Client(server.port)
            conn.send({"op": "optimize", "id": "ghost%d" % c,
                       "net": big_net})
            # Half the ghosts die instantly, half mid-DP.
            if c % 2:
                time.sleep(0.1)
            conn.close()
        return run

    run_thread_pool([vanish(c) for c in range(clients)])

    # The server is still alive and serving...
    with Client(server.port) as probe:
        probe.send({"op": "stats", "id": "alive"})
        if probe.recv().get("schema") != "msn-service-stats-v2":
            fail("server unresponsive after disconnect storm")
    # ...and every ghost's fd is reclaimed once their cancelled DPs
    # unwind.  Reaping happens on the accept thread when a connection
    # arrives, so each poll makes a throwaway connection to trigger it;
    # that probe itself may sit unreaped, hence the +1 slack.
    if fd_baseline > 0:
        deadline = time.monotonic() + SOCKET_TIMEOUT_S
        while True:
            Client(server.port).close()
            time.sleep(0.05)
            if server.fd_count() <= fd_baseline + 1:
                break
            if time.monotonic() > deadline:
                fail("fd count stuck at %d (baseline %d): leaked"
                     " connections" % (server.fd_count(), fd_baseline))
    print("serve_stress: disconnects OK (%d ghosts, fds reclaimed)"
          % clients)


def scenario_deadline(server, big_net):
    """A deadline expiring mid-DP answers `cancelled` in bounded time."""
    start = time.monotonic()
    with Client(server.port) as conn:
        conn.send({"op": "optimize", "id": "doomed", "net": big_net,
                   "deadline_ms": CANCEL_DEADLINE_MS})
        resp = conn.recv()
    elapsed = time.monotonic() - start
    if resp.get("ok"):
        fail("oversized net finished under a %dms deadline: suspicious"
             % CANCEL_DEADLINE_MS)
    if not (resp.get("cancelled") or resp.get("timeout")):
        fail("expected cancelled/timeout, got: %r" % resp)
    if elapsed > ANSWER_BOUND_S:
        fail("cancelled answer took %.1fs (bound %ds): cancellation is"
             " not bounding the DP" % (elapsed, ANSWER_BOUND_S))
    print("serve_stress: deadline OK (%s in %.2fs)"
          % ("cancelled" if resp.get("cancelled") else "timeout",
             elapsed))


def scenario_shedding(cli, jobs, nets):
    """--max-queue 1: every burst request is answered ok or overloaded."""
    server = TcpServer(cli, jobs, ["--max-queue", "1"])
    try:
        with Client(server.port) as conn:
            for i, net in enumerate(nets):
                conn.send({"op": "optimize", "id": "burst%d" % i,
                           "net": net})
            ok = overloaded = 0
            for _ in nets:
                resp = conn.recv()
                if resp.get("ok"):
                    ok += 1
                elif resp.get("overloaded"):
                    overloaded += 1
                else:
                    fail("burst answer neither ok nor overloaded: %r"
                         % resp)
        if ok + overloaded != len(nets):
            fail("burst: %d ok + %d overloaded != %d submitted"
                 % (ok, overloaded, len(nets)))
        if ok < 1:
            fail("queue gate shed everything, even the first request")
        code = server.shutdown()
        if code != 0:
            fail("shedding server exited %d" % code)
        print("serve_stress: shedding OK (%d ok, %d overloaded)"
              % (ok, overloaded))
    finally:
        if server.proc.poll() is None:
            server.kill()


def scenario_slow_loris(server, nets):
    """A byte-at-a-time writer must not stall other connections."""
    loris_done = threading.Event()

    def loris():
        with Client(server.port) as conn:
            conn.send_slowly({"op": "optimize", "id": "loris",
                              "net": nets[0]})
            if not conn.recv().get("ok"):
                fail("slow-loris request was not served")
        loris_done.set()

    normal_finished = []

    def normal():
        with Client(server.port) as conn:
            conn.send({"op": "optimize", "id": "fast", "net": nets[1]})
            if not conn.recv().get("ok"):
                fail("normal client failed during slow-loris")
            # The loris is still mid-trickle: we were not serialized
            # behind it.
            normal_finished.append(not loris_done.is_set())

    t = threading.Thread(target=loris)
    t.start()
    time.sleep(0.05)  # let the loris start trickling
    run_thread_pool([normal])
    t.join()
    if not normal_finished or not normal_finished[0]:
        fail("normal client completed only after the slow-loris "
             "finished: slow writers serialize the server")
    print("serve_stress: slow-loris OK")


def final_stats(server):
    """Schema-valid, internally consistent stats after the abuse."""
    with Client(server.port) as conn:
        conn.send({"op": "stats", "id": "final"})
        doc = conn.recv()
    try:
        check_stats_schema._check_service(doc, "serve_stress")
    except check_stats_schema.SchemaError as e:
        fail("stats schema violation: %s" % e)
    req = doc["requests"]
    resolved = (req["ok"] + req["errors"] + req["timeouts"] +
                req["shed_queue"] + req["shed_cost"] + req["cancelled"])
    if resolved > req["received"]:
        fail("request accounting overflows: %d resolved > %d received"
             % (resolved, req["received"]))
    print("serve_stress: stats OK (received=%d ok=%d cancelled=%d"
          " shed_queue=%d)" % (req["received"], req["ok"],
                               req["cancelled"], req["shed_queue"]))


def main():
    if len(sys.argv) < 2:
        fail("usage: serve_stress.py /path/to/msn_cli"
             " [--jobs N] [--clients K]")
    cli = sys.argv[1]
    jobs = "4"
    clients = 8
    if "--jobs" in sys.argv:
        jobs = sys.argv[sys.argv.index("--jobs") + 1]
    if "--clients" in sys.argv:
        clients = int(sys.argv[sys.argv.index("--clients") + 1])

    nets = [gen_net(cli, seed=s) for s in (41, 42, 43)]
    # A full run of this net takes ~15s in a release build (far beyond
    # ANSWER_BOUND_S), so the deadline scenario can only pass by
    # abandoning the DP mid-run.
    big_net = gen_net(cli, seed=44, terminals=44)

    server = TcpServer(cli, jobs)
    try:
        scenario_storm(server, nets, clients)
        scenario_slow_loris(server, nets)
        scenario_deadline(server, big_net)
        scenario_disconnects(server, big_net, clients // 2)
        final_stats(server)
        code = server.shutdown()
        if code != 0:
            fail("server exited %d after shutdown" % code)
    finally:
        if server.proc.poll() is None:
            server.kill()
    scenario_shedding(cli, jobs, nets)
    print("serve_stress: OK")


if __name__ == "__main__":
    main()
