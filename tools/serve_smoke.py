#!/usr/bin/env python3
"""Smoke-test `msn_cli serve` end to end over stdin/stdout.

Drives one server process through the full protocol and asserts the
service contracts from docs/SERVICE.md:

  * the same net submitted twice returns byte-identical response lines,
    with the second answered from the cache (cache hits >= 1) and no DP
    re-execution (requests.dp_runs == 1, registry msri.total calls == 1);
  * malformed JSON and unknown ops are contained as {"ok":false,...}
    responses, not crashes;
  * an already-expired deadline yields a structured timeout;
  * flush empties the cache, so a re-submit runs the DP again;
  * shutdown stops the loop with exit code 0.

Usage: serve_smoke.py /path/to/msn_cli [--jobs N]
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print("serve_smoke: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: serve_smoke.py /path/to/msn_cli [--jobs N]")
    cli = sys.argv[1]
    jobs = "2"
    if "--jobs" in sys.argv:
        jobs = sys.argv[sys.argv.index("--jobs") + 1]

    fd, net_path = tempfile.mkstemp(suffix=".msn")
    os.close(fd)
    try:
        gen = subprocess.run(
            [cli, "gen", "--terminals", "5", "--seed", "11",
             "-o", net_path],
            capture_output=True, text=True, timeout=120)
        if gen.returncode != 0:
            fail("gen exited %d: %s" % (gen.returncode, gen.stderr))
        with open(net_path) as f:
            net = f.read()
    finally:
        os.unlink(net_path)

    opt = {"op": "optimize", "id": "r", "net": net, "spec_ps": 1000.0}
    requests = [
        json.dumps(opt),
        json.dumps(opt),
        json.dumps({"op": "stats", "id": "s1"}),
        "this is not json",
        json.dumps({"op": "frobnicate", "id": "u"}),
        json.dumps({"op": "optimize", "id": "t", "net": net,
                    "deadline_ms": 0}),
        json.dumps({"op": "flush", "id": "f"}),
        json.dumps(opt),
        json.dumps({"op": "stats", "id": "s2"}),
        json.dumps({"op": "shutdown", "id": "x"}),
    ]
    proc = subprocess.run(
        [cli, "serve", "--jobs", jobs, "--cache-entries", "64"],
        input="\n".join(requests) + "\n",
        capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        fail("serve exited %d: %s" % (proc.returncode, proc.stderr))
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(requests):
        fail("expected %d response lines, got %d" %
             (len(requests), len(lines)))

    def with_id(rid):
        return [l for l in lines if json.loads(l).get("id") == rid]

    # Byte-identical duplicate answered from cache, DP ran once.
    dup = with_id("r")[:2]
    if len(dup) != 2 or dup[0] != dup[1]:
        fail("duplicate optimize responses are not byte-identical")
    if not json.loads(dup[0])["ok"]:
        fail("optimize failed: %s" % dup[0])
    s1 = json.loads(with_id("s1")[0])
    if s1["cache"]["hits"] < 1:
        fail("second identical request did not hit the cache: %s"
             % s1["cache"])
    if s1["requests"]["dp_runs"] != 1:
        fail("expected exactly 1 DP run, got %d"
             % s1["requests"]["dp_runs"])
    if s1["registry"]["timers"]["msri.total"]["calls"] != 1:
        fail("registry reports %d msri.total calls, expected 1"
             % s1["registry"]["timers"]["msri.total"]["calls"])

    # Containment.
    bad = json.loads(lines[3])
    if bad.get("ok") or "error" not in bad:
        fail("malformed JSON was not contained: %s" % lines[3])
    unk = json.loads(with_id("u")[0])
    if unk.get("ok") or "unknown op" not in unk["error"]:
        fail("unknown op was not contained: %s" % unk)

    # Structured timeout for an already-expired deadline.
    tmo = json.loads(with_id("t")[0])
    if tmo.get("ok") or not tmo.get("timeout"):
        fail("deadline_ms=0 did not produce a structured timeout: %s"
             % tmo)

    # Flush forces a second DP run for the re-submitted net.
    s2 = json.loads(with_id("s2")[0])
    if s2["requests"]["dp_runs"] != 2:
        fail("expected 2 DP runs after flush + resubmit, got %d"
             % s2["requests"]["dp_runs"])
    if s2["cache"]["flushes"] != 1:
        fail("expected 1 flush, got %d" % s2["cache"]["flushes"])
    third = with_id("r")[2]
    if third != dup[0]:
        fail("post-flush recompute changed the response bytes")
    if s2.get("schema") != "msn-service-stats-v1":
        fail("stats schema is %r" % s2.get("schema"))

    print("serve_smoke: OK (%d responses, cache hits=%d, dp_runs=%d)"
          % (len(lines), s2["cache"]["hits"], s2["requests"]["dp_runs"]))


if __name__ == "__main__":
    main()
