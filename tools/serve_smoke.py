#!/usr/bin/env python3
"""Smoke-test `msn_cli serve` end to end over stdin/stdout.

Drives server processes through the full protocol and asserts the
service contracts from docs/SERVICE.md:

  * the same net submitted twice returns byte-identical response lines,
    with the second answered from the cache (cache hits >= 1) and no DP
    re-execution (requests.dp_runs == 1, registry msri.total calls == 1);
  * malformed JSON and unknown ops are contained as {"ok":false,...}
    responses, not crashes;
  * an already-expired deadline yields a structured timeout;
  * flush empties the cache, so a re-submit runs the DP again;
  * shutdown stops the loop with exit code 0;
  * with --cache-dir, a server KILLED without shutdown warms its
    successor from the on-disk segment: the same requests are answered
    byte-identically as cache hits, with zero DP runs;
  * a corrupted segment (bit flip + truncated tail) is recovered from
    cleanly — damaged records are recomputed, never served wrong;
  * with --trace-dir, every sampled optimize writes a Chrome trace-event
    JSON file named after the trace_id echoed in its response line, the
    file validates under trace_view.py --check, and the span tree nests
    server.request -> cache/DP spans down to the msri phases.

Responses carry a per-request trace_id, unique by design, so identity
checks compare lines with the trace_id stripped (strip_trace).

Usage: serve_smoke.py /path/to/msn_cli [--jobs N]
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile


sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_stats_schema  # noqa: E402  (sibling module)
import serve_stress  # noqa: E402  (sibling module: TCP client/server)
import trace_view  # noqa: E402  (sibling module: trace validation)


def fail(msg):
    print("serve_smoke: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def strip_trace(line_or_doc):
    """Canonical JSON with the (unique-per-request) trace_id removed."""
    doc = (json.loads(line_or_doc) if isinstance(line_or_doc, str)
           else dict(line_or_doc))
    doc.pop("trace_id", None)
    return json.dumps(doc, sort_keys=True)


def stats_doc(lines, rid):
    """Parses the stats response `rid` and schema-checks it."""
    doc = json.loads(by_id(lines, rid)[0])
    try:
        check_stats_schema._check_service(doc, "serve_smoke")
    except check_stats_schema.SchemaError as e:
        fail("stats schema violation: %s" % e)
    return doc


def gen_net(cli, seed):
    fd, net_path = tempfile.mkstemp(suffix=".msn")
    os.close(fd)
    try:
        gen = subprocess.run(
            [cli, "gen", "--terminals", "5", "--seed", str(seed),
             "-o", net_path],
            capture_output=True, text=True, timeout=120)
        if gen.returncode != 0:
            fail("gen exited %d: %s" % (gen.returncode, gen.stderr))
        with open(net_path) as f:
            return f.read()
    finally:
        os.unlink(net_path)


def run_server(cli, jobs, requests, extra_flags=(), kill_after=None):
    """Feeds `requests` line by line; returns the response lines.

    With `kill_after` set, SIGKILLs the server after that many responses
    (no shutdown op, simulating a crash); otherwise waits for a clean
    exit and checks the exit code.
    """
    proc = subprocess.Popen(
        [cli, "serve", "--jobs", jobs, "--cache-entries", "64"] +
        list(extra_flags),
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    lines = []
    try:
        for req in requests:
            proc.stdin.write(req + "\n")
            proc.stdin.flush()
        want = kill_after if kill_after is not None else len(requests)
        for _ in range(want):
            line = proc.stdout.readline()
            if not line:
                fail("server closed stdout after %d responses: %s"
                     % (len(lines), proc.stderr.read()))
            lines.append(line.rstrip("\n"))
    finally:
        if kill_after is not None:
            proc.kill()
            proc.wait()
        else:
            proc.stdin.close()
            err = proc.stderr.read()
            if proc.wait() != 0:
                fail("serve exited %d: %s" % (proc.returncode, err))
    return lines


def by_id(lines, rid):
    return [l for l in lines if json.loads(l).get("id") == rid]


def scenario_protocol(cli, jobs):
    """The original protocol walk: caching, containment, flush."""
    net = gen_net(cli, seed=11)
    opt = {"op": "optimize", "id": "r", "net": net, "spec_ps": 1000.0}
    requests = [
        json.dumps(opt),
        json.dumps(opt),
        json.dumps({"op": "stats", "id": "s1"}),
        "this is not json",
        json.dumps({"op": "frobnicate", "id": "u"}),
        json.dumps({"op": "optimize", "id": "t", "net": net,
                    "deadline_ms": 0}),
        json.dumps({"op": "flush", "id": "f"}),
        json.dumps(opt),
        json.dumps({"op": "stats", "id": "s2"}),
        json.dumps({"op": "shutdown", "id": "x"}),
    ]
    lines = run_server(cli, jobs, requests)
    if len(lines) != len(requests):
        fail("expected %d response lines, got %d" %
             (len(requests), len(lines)))

    # Identical duplicate (modulo trace_id) answered from cache, DP ran
    # once.  trace_id itself must be present and fresh per request.
    dup = by_id(lines, "r")[:2]
    if len(dup) != 2 or strip_trace(dup[0]) != strip_trace(dup[1]):
        fail("duplicate optimize responses differ beyond trace_id")
    tids = [json.loads(l).get("trace_id") for l in dup]
    if not all(isinstance(t, str) and len(t) == 16 for t in tids):
        fail("responses missing a 16-hex trace_id: %r" % tids)
    if tids[0] == tids[1]:
        fail("duplicate requests reused trace_id %s" % tids[0])
    if not json.loads(dup[0])["ok"]:
        fail("optimize failed: %s" % dup[0])
    s1 = stats_doc(lines, "s1")
    if s1["cache"]["hits"] < 1:
        fail("second identical request did not hit the cache: %s"
             % s1["cache"])
    if s1["requests"]["dp_runs"] != 1:
        fail("expected exactly 1 DP run, got %d"
             % s1["requests"]["dp_runs"])
    if s1["registry"]["timers"]["msri.total"]["calls"] != 1:
        fail("registry reports %d msri.total calls, expected 1"
             % s1["registry"]["timers"]["msri.total"]["calls"])
    if s1["cache"]["segment_enabled"] != 0:
        fail("persistence reported enabled without --cache-dir")

    # Containment.
    bad = json.loads(lines[3])
    if bad.get("ok") or "error" not in bad:
        fail("malformed JSON was not contained: %s" % lines[3])
    unk = json.loads(by_id(lines, "u")[0])
    if unk.get("ok") or "unknown op" not in unk["error"]:
        fail("unknown op was not contained: %s" % unk)

    # Structured timeout for an already-expired deadline.
    tmo = json.loads(by_id(lines, "t")[0])
    if tmo.get("ok") or not tmo.get("timeout"):
        fail("deadline_ms=0 did not produce a structured timeout: %s"
             % tmo)

    # Flush forces a second DP run for the re-submitted net.
    s2 = stats_doc(lines, "s2")
    if s2["requests"]["dp_runs"] != 2:
        fail("expected 2 DP runs after flush + resubmit, got %d"
             % s2["requests"]["dp_runs"])
    if s2["cache"]["flushes"] != 1:
        fail("expected 1 flush, got %d" % s2["cache"]["flushes"])
    third = by_id(lines, "r")[2]
    if strip_trace(third) != strip_trace(dup[0]):
        fail("post-flush recompute changed the response payload")
    if s2.get("schema") != "msn-service-stats-v2":
        fail("stats schema is %r" % s2.get("schema"))
    print("serve_smoke: protocol OK (%d responses, hits=%d, dp_runs=%d)"
          % (len(lines), s2["cache"]["hits"], s2["requests"]["dp_runs"]))
    return dup[0]


def persist_requests(nets):
    reqs = [json.dumps({"op": "optimize", "id": "n%d" % i, "net": net,
                        "spec_ps": 1000.0})
            for i, net in enumerate(nets)]
    return reqs + [json.dumps({"op": "stats", "id": "s"})]


def scenario_restart(cli, jobs):
    """Kill a --cache-dir server; its successor must warm from disk."""
    nets = [gen_net(cli, seed=21), gen_net(cli, seed=22)]
    requests = persist_requests(nets)
    cache_dir = tempfile.mkdtemp(prefix="msn_serve_smoke_")
    try:
        flags = ["--cache-dir", cache_dir]
        # First life: populate the cache, confirm the appends settled
        # (the stats op syncs the segment), then die without shutdown.
        first = run_server(cli, jobs, requests, flags,
                           kill_after=len(requests))
        s1 = stats_doc(first, "s")
        if s1["cache"]["segment_enabled"] != 1:
            fail("persistence not enabled under --cache-dir")
        if s1["cache"]["segment_appends"] != len(nets):
            fail("expected %d segment appends, got %d"
                 % (len(nets), s1["cache"]["segment_appends"]))
        if not os.path.exists(os.path.join(cache_dir, "cache.msnseg")):
            fail("no segment file in --cache-dir")

        # Second life: same requests must be cache hits with the exact
        # same bytes, and the DP must never run.
        second = run_server(
            cli, jobs, requests +
            [json.dumps({"op": "shutdown", "id": "x"})], flags)
        s2 = stats_doc(second, "s")
        if s2["cache"]["segment_replayed"] != len(nets):
            fail("expected %d replayed records, got %d"
                 % (len(nets), s2["cache"]["segment_replayed"]))
        if s2["requests"]["dp_runs"] != 0:
            fail("restarted server re-ran the DP %d time(s)"
                 % s2["requests"]["dp_runs"])
        if s2["cache"]["hits"] < len(nets):
            fail("restarted server missed the warmed cache: %s"
                 % s2["cache"])
        for i in range(len(nets)):
            a, b = by_id(first, "n%d" % i)[0], by_id(second, "n%d" % i)[0]
            if strip_trace(a) != strip_trace(b):
                fail("warmed response for net %d differs from the"
                     " original" % i)
        print("serve_smoke: restart OK (replayed=%d, hits=%d, dp_runs=0)"
              % (s2["cache"]["segment_replayed"], s2["cache"]["hits"]))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_corrupt(cli, jobs):
    """Bit-flip + truncate the segment; recovery must stay correct."""
    nets = [gen_net(cli, seed=31), gen_net(cli, seed=32),
            gen_net(cli, seed=33)]
    requests = persist_requests(nets)
    cache_dir = tempfile.mkdtemp(prefix="msn_serve_smoke_")
    try:
        flags = ["--cache-dir", cache_dir]
        first = run_server(cli, jobs, requests, flags,
                           kill_after=len(requests))
        seg_path = os.path.join(cache_dir, "cache.msnseg")
        with open(seg_path, "rb") as f:
            blob = bytearray(f.read())
        # Flip one bit a third of the way in (mid-record damage) and cut
        # the last 7 bytes (a crash mid-append).
        blob[len(blob) // 3] ^= 0x04
        blob = blob[:-7]
        with open(seg_path, "wb") as f:
            f.write(bytes(blob))

        second = run_server(
            cli, jobs, requests +
            [json.dumps({"op": "shutdown", "id": "x"})], flags)
        s2 = stats_doc(second, "s")
        damage = (s2["cache"]["segment_skipped"] +
                  s2["cache"]["segment_truncations"])
        if damage < 1:
            fail("corruption went unnoticed: %s" % s2["cache"])
        if s2["cache"]["segment_replayed"] >= len(nets):
            fail("replayed %d records from a damaged segment of %d"
                 % (s2["cache"]["segment_replayed"], len(nets)))
        # Every response — warmed or recomputed — must match the
        # original bytes exactly.
        for i in range(len(nets)):
            a, b = by_id(first, "n%d" % i)[0], by_id(second, "n%d" % i)[0]
            if strip_trace(a) != strip_trace(b):
                fail("post-corruption response for net %d differs" % i)
            if not json.loads(b)["ok"]:
                fail("post-corruption optimize failed: %s" % b)
        print("serve_smoke: corrupt-recovery OK (replayed=%d, skipped=%d,"
              " truncations=%d)"
              % (s2["cache"]["segment_replayed"],
                 s2["cache"]["segment_skipped"],
                 s2["cache"]["segment_truncations"]))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scenario_trace(cli, jobs):
    """--trace-dir: every sampled optimize writes a validating trace."""
    nets = [gen_net(cli, seed=71), gen_net(cli, seed=72)]
    requests = [
        json.dumps({"op": "optimize", "id": "a", "net": nets[0]}),
        json.dumps({"op": "optimize", "id": "b", "net": nets[1]}),
        json.dumps({"op": "optimize", "id": "a2", "net": nets[0]}),
        json.dumps({"op": "shutdown", "id": "x"}),
    ]
    trace_dir = tempfile.mkdtemp(prefix="msn_serve_trace_")
    try:
        lines = run_server(cli, jobs, requests, ["--trace-dir", trace_dir])
        docs = {json.loads(l)["id"]: json.loads(l) for l in lines}
        for rid in ("a", "b", "a2"):
            doc = docs[rid]
            if not doc.get("ok"):
                fail("traced optimize %s failed: %r" % (rid, doc))
            # The trace_id echoed to the client names the trace file.
            path = os.path.join(trace_dir,
                                "trace-%s.json" % doc["trace_id"])
            if not os.path.exists(path):
                fail("no trace file for %s (trace_id %s)"
                     % (rid, doc["trace_id"]))
            try:
                _, events = trace_view.load_trace(path)
            except trace_view.TraceError as e:
                fail("trace for %s is malformed: %s" % (rid, e))
            names = {ev["name"] for ev in events}
            spans = {ev["args"]["span_id"]: ev for ev in events}
            for want in ("server.request", "server.parse_net",
                         "cache.lookup"):
                if want not in names:
                    fail("trace %s missing %s span (got %s)"
                         % (rid, want, sorted(names)))
            if rid == "a2":
                if "dp.run" in names:
                    fail("cache-hit request a2 has a dp.run span")
                continue
            # Cache misses show the full nesting: server.request ->
            # dp.run -> msri.total -> per-phase spans.
            for want in ("dp.run", "msri.total", "msri.leaf",
                         "msri.root"):
                if want not in names:
                    fail("cache-miss trace %s missing %s span (got %s)"
                         % (rid, want, sorted(names)))
            dp = next(ev for ev in events if ev["name"] == "dp.run")
            if spans[dp["args"]["parent_id"]]["name"] != "server.request":
                fail("dp.run parent is %r, wanted server.request"
                     % spans[dp["args"]["parent_id"]]["name"])
            total = next(ev for ev in events
                         if ev["name"] == "msri.total")
            if spans[total["args"]["parent_id"]]["name"] != "dp.run":
                fail("msri.total parent is %r, wanted dp.run"
                     % spans[total["args"]["parent_id"]]["name"])
        # The directory as a whole passes the CI validator.
        if trace_view.main(["trace_view.py", trace_dir, "--check",
                            "--min-traces", "3"]) != 0:
            fail("trace_view --check rejected the trace directory")

        # --trace-sample N keeps every Nth optimize: 4 requests at
        # sample 2 leave exactly 2 trace files.
        sample_dir = tempfile.mkdtemp(prefix="msn_serve_trace_")
        try:
            sampled = [json.dumps({"op": "optimize", "id": "s%d" % i,
                                   "net": nets[i % 2]})
                       for i in range(4)]
            sampled.append(json.dumps({"op": "shutdown", "id": "x"}))
            run_server(cli, jobs, sampled,
                       ["--trace-dir", sample_dir, "--trace-sample", "2"])
            n_files = len(trace_view.trace_files(sample_dir))
            if n_files != 2:
                fail("--trace-sample 2 wrote %d traces for 4 requests"
                     % n_files)
        finally:
            shutil.rmtree(sample_dir, ignore_errors=True)
        print("serve_smoke: trace OK (3 traces validated, sampling"
              " honored)")
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)


def scenario_concurrent(cli, jobs):
    """TCP front under mixed parallel clients (docs/SERVICE.md
    "Concurrency & request lifecycle"): N well-behaved clients submit
    the same net at once (byte-identical answers, one DP run), a
    slow-loris trickles its request without stalling anyone, and a
    mid-response disconnector vanishes after submitting — the server
    keeps serving and still shuts down cleanly with exit code 0.
    """
    import threading

    net = gen_net(cli, seed=51)
    own_nets = [gen_net(cli, seed=60 + c) for c in range(4)]
    server = serve_stress.TcpServer(cli, jobs)
    try:
        payloads = [None] * len(own_nets)

        def normal(c):
            def run():
                with serve_stress.Client(server.port) as conn:
                    conn.send({"op": "optimize", "id": "shared",
                               "net": net})
                    conn.send({"op": "optimize", "id": "own",
                               "net": own_nets[c]})
                    for _ in range(2):
                        resp = conn.recv()
                        if not resp.get("ok"):
                            fail("concurrent optimize failed: %r" % resp)
                        if resp["id"] == "shared":
                            payloads[c] = strip_trace(resp)
            return run

        def loris():
            with serve_stress.Client(server.port) as conn:
                conn.send_slowly({"op": "optimize", "id": "loris",
                                  "net": net})
                if not conn.recv().get("ok"):
                    fail("slow-loris request failed")

        def disconnector():
            conn = serve_stress.Client(server.port)
            conn.send({"op": "optimize", "id": "ghost", "net": net})
            conn.close()  # never reads its response

        threads = [threading.Thread(target=f) for f in
                   [normal(c) for c in range(len(own_nets))] +
                   [loris, disconnector]]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if any(p is None for p in payloads):
            fail("a concurrent client is missing its shared response")
        if len(set(payloads)) != 1:
            fail("shared net answered %d distinct payloads across"
                 " connections" % len(set(payloads)))

        with serve_stress.Client(server.port) as conn:
            conn.send({"op": "stats", "id": "s"})
            doc = conn.recv()
        try:
            check_stats_schema._check_service(doc, "serve_smoke tcp")
        except check_stats_schema.SchemaError as e:
            fail("tcp stats schema violation: %s" % e)
        if doc["requests"]["dp_runs"] > 1 + len(own_nets):
            fail("coalescing failed under concurrency: %d DP runs for"
                 " %d distinct nets"
                 % (doc["requests"]["dp_runs"], 1 + len(own_nets)))

        code = server.shutdown()
        if code != 0:
            fail("tcp server exited %d after shutdown" % code)
        print("serve_smoke: concurrent OK (%d clients, dp_runs=%d)"
              % (len(own_nets) + 2, doc["requests"]["dp_runs"]))
    finally:
        if server.proc.poll() is None:
            server.kill()


def main():
    if len(sys.argv) < 2:
        fail("usage: serve_smoke.py /path/to/msn_cli [--jobs N]")
    cli = sys.argv[1]
    jobs = "2"
    if "--jobs" in sys.argv:
        jobs = sys.argv[sys.argv.index("--jobs") + 1]
    scenario_protocol(cli, jobs)
    scenario_restart(cli, jobs)
    scenario_corrupt(cli, jobs)
    scenario_trace(cli, jobs)
    scenario_concurrent(cli, jobs)
    print("serve_smoke: OK")


if __name__ == "__main__":
    main()
