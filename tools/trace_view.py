#!/usr/bin/env python3
"""Offline summarizer/validator for msn_cli serve trace directories.

A traced server (`msn_cli serve --trace-dir=DIR [--trace-sample=N]`)
writes one Chrome trace-event JSON file per sampled optimize request
(`trace-<trace_id>.json`; load any of them in Perfetto or
chrome://tracing).  This tool reads a whole directory of them:

    trace_view.py DIR [--slowest N]
        Per-phase time breakdown across every trace (total/mean/max per
        span name) plus the slowest-N requests by root-span duration.

    trace_view.py DIR --check [--min-traces K]
        CI validation mode: every trace-*.json must be well-formed
        Chrome trace-event JSON (traceEvents list of complete "X" events
        with name/cat/ph/ts/dur/pid/tid and span/parent args), span ids
        unique, parent links resolvable, every event's trace_id equal to
        the file's, and child spans contained within their parents.
        Exits 0 when everything holds (and at least --min-traces files
        were seen, default 1), 1 otherwise.

Pure stdlib.  The span taxonomy is documented in docs/OBSERVABILITY.md
("Tracing").
"""
import argparse
import glob
import json
import os
import sys

REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid",
                         "args")


class TraceError(Exception):
    pass


def load_trace(path):
    """Parses and validates one trace file; returns (trace_id, events)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        raise TraceError(f"{path}: missing traceEvents list")
    other = doc.get("otherData")
    if not isinstance(other, dict) or not isinstance(
            other.get("trace_id"), str):
        raise TraceError(f"{path}: missing otherData.trace_id")
    trace_id = other["trace_id"]
    if len(trace_id) != 16 or any(c not in "0123456789abcdef"
                                  for c in trace_id):
        raise TraceError(f"{path}: trace_id {trace_id!r} is not 16 hex"
                         " chars")
    dropped = other.get("dropped_spans")
    if not isinstance(dropped, int) or dropped < 0:
        raise TraceError(f"{path}: otherData.dropped_spans must be a"
                         " non-negative integer")
    events = []
    spans = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"{path} traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceError(f"{where}: not an object")
        for field in REQUIRED_EVENT_FIELDS:
            if field not in ev:
                raise TraceError(f"{where}: missing {field!r}")
        if ev["ph"] != "X":
            raise TraceError(f"{where}: ph {ev['ph']!r}, wanted complete"
                             " event 'X'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise TraceError(f"{where}: bad name")
        for field in ("ts", "dur"):
            if not isinstance(ev[field], (int, float)) or ev[field] < 0:
                raise TraceError(f"{where}: {field} must be a non-negative"
                                 " number")
        args = ev["args"]
        if not isinstance(args, dict):
            raise TraceError(f"{where}: args must be an object")
        if args.get("trace_id") != trace_id:
            raise TraceError(f"{where}: args.trace_id"
                             f" {args.get('trace_id')!r} != file trace_id"
                             f" {trace_id!r}")
        for field in ("span_id", "parent_id"):
            if not isinstance(args.get(field), int) or args[field] < 0:
                raise TraceError(f"{where}: args.{field} must be a"
                                 " non-negative integer")
        span_id = args["span_id"]
        if span_id == 0:
            raise TraceError(f"{where}: span_id 0 is reserved for 'no"
                             " parent'")
        if span_id in spans:
            raise TraceError(f"{where}: duplicate span_id {span_id}")
        spans[span_id] = ev
        events.append(ev)
    # Parent links resolve, and children nest within their parents
    # (small slack for clock reads straddling the scope boundary).
    for ev in events:
        parent_id = ev["args"]["parent_id"]
        if parent_id == 0:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            raise TraceError(f"{path}: span {ev['args']['span_id']}"
                             f" ({ev['name']}) has unknown parent"
                             f" {parent_id}")
        slack = 1.0  # microseconds
        if (ev["ts"] + slack < parent["ts"]
                or ev["ts"] + ev["dur"]
                > parent["ts"] + parent["dur"] + slack):
            raise TraceError(
                f"{path}: span {ev['name']} [{ev['ts']},"
                f" {ev['ts'] + ev['dur']}] escapes parent"
                f" {parent['name']} [{parent['ts']},"
                f" {parent['ts'] + parent['dur']}]")
    return trace_id, events


def trace_files(trace_dir):
    return sorted(glob.glob(os.path.join(trace_dir, "trace-*.json")))


def summarize(traces, slowest):
    """Per-span-name totals plus the slowest-N requests by root span."""
    phases = {}  # name -> [calls, total_us, max_us]
    roots = []   # (root_dur_us, trace_id, path)
    for path, (trace_id, events) in traces:
        for ev in events:
            entry = phases.setdefault(ev["name"], [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += ev["dur"]
            entry[2] = max(entry[2], ev["dur"])
        request = [ev for ev in events if ev["name"] == "server.request"]
        if request:
            roots.append((request[0]["dur"], trace_id, path))

    print(f"{len(traces)} traces")
    print(f"{'span':<22}{'calls':>8}{'total_ms':>12}{'mean_us':>12}"
          f"{'max_us':>12}")
    for name in sorted(phases, key=lambda n: -phases[n][1]):
        calls, total, peak = phases[name]
        print(f"{name:<22}{calls:>8}{total / 1000.0:>12.3f}"
              f"{total / calls:>12.1f}{peak:>12.1f}")
    if roots:
        print(f"\nslowest {min(slowest, len(roots))} requests:")
        roots.sort(reverse=True)
        for dur, trace_id, path in roots[:slowest]:
            print(f"  {trace_id}  {dur / 1000.0:10.3f} ms  {path}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Summarize or validate an msn_cli serve trace"
                    " directory.")
    parser.add_argument("trace_dir", help="directory of trace-*.json files")
    parser.add_argument("--check", action="store_true",
                        help="validate only (CI mode); exit 1 on any"
                             " malformed trace")
    parser.add_argument("--min-traces", type=int, default=1,
                        help="with --check, fail unless at least this many"
                             " trace files exist (default 1)")
    parser.add_argument("--slowest", type=int, default=10,
                        help="how many slowest requests to list"
                             " (default 10)")
    args = parser.parse_args(argv[1:])

    if not os.path.isdir(args.trace_dir):
        print(f"error: {args.trace_dir} is not a directory",
              file=sys.stderr)
        return 1
    paths = trace_files(args.trace_dir)
    traces = []
    for path in paths:
        try:
            traces.append((path, load_trace(path)))
        except (json.JSONDecodeError, TraceError, OSError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 1

    if args.check:
        if len(traces) < args.min_traces:
            print(f"error: {args.trace_dir}: found {len(traces)} traces,"
                  f" wanted at least {args.min_traces}", file=sys.stderr)
            return 1
        total_spans = sum(len(events) for _, (_, events) in traces)
        print(f"{args.trace_dir}: ok ({len(traces)} traces,"
              f" {total_spans} spans)")
        return 0

    if not traces:
        print(f"{args.trace_dir}: no trace-*.json files")
        return 0
    summarize(traces, args.slowest)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
