#!/usr/bin/env python3
"""Compare two bench trajectory files for performance regressions.

Accepts any of the tree's stats documents on either side:

  * msn-bench-stats-v1          (one bench, one run per configuration)
  * msn-bench-stats-v1-merged   ({"benches": [<trajectory>, ...]})
  * msn-run-stats-v1            (treated as a single-run trajectory)

Runs are matched by (bench name, labels, non-timing values) — the
configuration identity — and their timing metrics (value names ending in
`_s`/`_ms`/`_us` or containing `time`, e.g. `linear_s`, `time_s`)
compared as new/old ratios.  A matched metric whose baseline is at least
--min-seconds and whose ratio exceeds --threshold is a regression.

Exit codes: 0 = no regression, 1 = regression found, 2 = bad invocation
or unreadable input.  CI runs this as a non-blocking step: machine noise
makes timing ratios advisory, so a red result flags a PR for a human
look rather than failing the build.

Usage: compare_bench.py BASELINE.json CURRENT.json
           [--threshold 1.25] [--min-seconds 0.001]
"""

import argparse
import json
import sys


TIMING_SUFFIXES = ("_s", "_ms", "_us")


def is_timing_metric(name):
    return name.endswith(TIMING_SUFFIXES) or "time" in name


def to_seconds(name, value):
    if name.endswith("_ms"):
        return value / 1e3
    if name.endswith("_us"):
        return value / 1e6
    return value


def load_runs(path):
    """Yields (bench_name, run_document) for every run in `path`."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("compare_bench: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema", "")
    if schema == "msn-bench-stats-v1-merged":
        trajectories = doc.get("benches", [])
    elif schema == "msn-bench-stats-v1":
        trajectories = [doc]
    elif schema == "msn-run-stats-v1":
        return [("run", doc)]
    else:
        print("compare_bench: %s: unsupported schema %r" % (path, schema),
              file=sys.stderr)
        sys.exit(2)
    runs = []
    for t in trajectories:
        for run in t.get("runs", []):
            runs.append((t.get("bench", "?"), run))
    return runs


def config_key(bench, run):
    labels = tuple(sorted(run.get("labels", {}).items()))
    config_values = tuple(sorted(
        (k, v) for k, v in run.get("values", {}).items()
        if not is_timing_metric(k) and k != "speedup"))
    return (bench, labels, config_values)


def timing_metrics(run):
    return {k: to_seconds(k, v)
            for k, v in run.get("values", {}).items()
            if is_timing_metric(k) and isinstance(v, (int, float))}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="max allowed new/old ratio (default 1.25)")
    ap.add_argument("--min-seconds", type=float, default=0.001,
                    help="ignore metrics whose baseline is below this")
    args = ap.parse_args()
    if args.threshold <= 0:
        ap.error("--threshold must be positive")

    base = {}
    for bench, run in load_runs(args.baseline):
        base.setdefault(config_key(bench, run), run)

    compared = 0
    skipped = []
    regressions = []
    for bench, run in load_runs(args.current):
        key = config_key(bench, run)
        config = ", ".join("%s=%s" % (k, v) for k, v in key[1] + key[2])
        if key not in base:
            # A bench or configuration added since the baseline has
            # nothing to compare against; that is not a regression.
            skipped.append((bench, config, "no baseline run"))
            continue
        old = timing_metrics(base[key])
        new = timing_metrics(run)
        for name in sorted(set(old) & set(new)):
            if old[name] <= 0:
                # A zero (or negative) baseline time makes the ratio
                # meaningless — and used to divide by zero.
                skipped.append((bench, config,
                                "%s: zero-time baseline" % name))
                continue
            if old[name] < args.min_seconds:
                continue
            ratio = new[name] / old[name]
            compared += 1
            marker = ""
            if ratio > args.threshold:
                regressions.append((bench, config, name, ratio))
                marker = "  <-- REGRESSION"
            print("%-24s %-40s %-16s %8.3fs -> %8.3fs  x%.2f%s"
                  % (bench, config[:40], name, old[name], new[name],
                     ratio, marker))

    for bench, config, why in skipped:
        print("compare_bench: skipped %s [%s]: %s" % (bench, config, why))
    if compared == 0:
        print("compare_bench: no comparable timing metrics "
              "(different benches or configs?)")
        return 0
    if regressions:
        print("compare_bench: %d regression(s) above x%.2f:"
              % (len(regressions), args.threshold))
        for bench, config, name, ratio in regressions:
            print("  %s [%s] %s x%.2f" % (bench, config, name, ratio))
        return 1
    print("compare_bench: OK (%d metric(s) within x%.2f)"
          % (compared, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
