#include "core/ard.h"

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "common/rng.h"
#include "elmore/delay.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::RandomAssignment;
using testing::SmallRandomNet;

/// Core cross-engine property: the linear-time ARD (Fig. 2) must agree
/// with k single-source Elmore passes, over random nets, random repeater
/// assignments, and random driver sizings.
class ArdEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArdEquivalenceTest, LinearMatchesNaive) {
  const std::uint64_t seed = GetParam();
  for (const Technology& tech :
       {testing::SmallTech(), testing::AsymmetricTech(),
        testing::TwoRepeaterTech()}) {
    const RcTree tree = SmallRandomNet(tech, seed, 7, 8000, 700.0);
    Rng rng(seed * 1000 + 7);
    const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
    const DriverAssignment drivers(tree.NumTerminals());

    const ArdResult fast = ComputeArd(tree, assign, drivers, tech);
    const ArdResult slow = NaiveArd(tree, assign, drivers, tech);
    EXPECT_NEAR(fast.ard_ps, slow.ard_ps, 1e-6) << "seed " << seed;
  }
}

TEST_P(ArdEquivalenceTest, LinearMatchesNaiveWithSizing) {
  const std::uint64_t seed = GetParam();
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 6, 6000, 800.0);
  Rng rng(seed ^ 0xabcdef);
  const RepeaterAssignment assign = RandomAssignment(tree, tech, rng, 0.3);
  const auto lib = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  DriverAssignment drivers(tree.NumTerminals());
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    drivers.Choose(t, lib[static_cast<std::size_t>(rng.UniformInt(
                       0, static_cast<std::int64_t>(lib.size()) - 1))]);
  }
  const ArdResult fast = ComputeArd(tree, assign, drivers, tech);
  const ArdResult slow = NaiveArd(tree, assign, drivers, tech);
  EXPECT_NEAR(fast.ard_ps, slow.ard_ps, 1e-6);
}

TEST_P(ArdEquivalenceTest, RootInvariance) {
  const std::uint64_t seed = GetParam();
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 5, 5000, 900.0);
  Rng rng(seed + 99);
  const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
  const DriverAssignment drivers(tree.NumTerminals());

  const double reference =
      ComputeArd(tree, assign, drivers, tech, /*root=*/0).ard_ps;
  for (NodeId root = 1; root < tree.NumNodes(); ++root) {
    EXPECT_NEAR(ComputeArd(tree, assign, drivers, tech, root).ard_ps,
                reference, 1e-6)
        << "root " << root;
  }
}

TEST_P(ArdEquivalenceTest, CriticalPairIsConsistent) {
  const std::uint64_t seed = GetParam();
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 8, 9000, 800.0);
  Rng rng(seed * 31);
  const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
  const DriverAssignment drivers(tree.NumTerminals());

  const ArdResult ard = ComputeArd(tree, assign, drivers, tech);
  ASSERT_TRUE(ard.HasPair());
  // Recompute the reported pair's delay directly.
  const SourceDelays d = ComputeSourceDelays(tree, ard.critical_source,
                                             assign, drivers, tech);
  const double pair_delay =
      d.arrival[tree.TerminalNode(ard.critical_sink)] +
      drivers.Resolve(tree, ard.critical_sink).downstream_ps;
  EXPECT_NEAR(pair_delay, ard.ard_ps, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArdEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(Ard, SourceSinkRolesRespected) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams source_only = DefaultTerminal(tech);
  source_only.is_sink = false;
  TerminalParams sink_only = DefaultTerminal(tech);
  sink_only.is_source = false;
  const NodeId a = tree.AddTerminal(source_only, {0, 0});
  const NodeId b = tree.AddTerminal(sink_only, {1500, 0});
  tree.AddEdge(a, b, 1500.0);

  const ArdResult ard = ComputeArd(tree, tech);
  ASSERT_TRUE(ard.HasPair());
  EXPECT_EQ(ard.critical_source, 0u);
  EXPECT_EQ(ard.critical_sink, 1u);
}

TEST(Ard, NoPairYieldsNegInf) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams source_only = DefaultTerminal(tech);
  source_only.is_sink = false;
  const NodeId a = tree.AddTerminal(source_only, {0, 0});
  const NodeId b = tree.AddTerminal(source_only, {100, 0});
  tree.AddEdge(a, b, 100.0);
  const ArdResult ard = ComputeArd(tree, tech);
  EXPECT_FALSE(ard.HasPair());
  EXPECT_EQ(ard.ard_ps, -kInf);
}

TEST(Ard, AugmentationShiftsResult) {
  const Technology tech = DefaultTechnology();
  RcTree base(tech.wire);
  {
    const NodeId a = base.AddTerminal(DefaultTerminal(tech), {0, 0});
    const NodeId b = base.AddTerminal(DefaultTerminal(tech), {1000, 0});
    base.AddEdge(a, b, 1000.0);
  }
  RcTree augmented(tech.wire);
  {
    TerminalParams t0 = DefaultTerminal(tech);
    t0.arrival_ps = 100.0;
    TerminalParams t1 = DefaultTerminal(tech);
    t1.downstream_ps = 50.0;
    const NodeId a = augmented.AddTerminal(t0, {0, 0});
    const NodeId b = augmented.AddTerminal(t1, {1000, 0});
    augmented.AddEdge(a, b, 1000.0);
  }
  const double d0 = ComputeArd(base, tech).ard_ps;
  const double d1 = ComputeArd(augmented, tech).ard_ps;
  // The symmetric base has ARD = both directions equal; augmenting t0's
  // AT by 100 and t1's DD by 50 makes the 0->1 path critical with +150.
  EXPECT_NEAR(d1, d0 + 150.0, 1e-9);
}

TEST(Ard, ThreePinStarHandComputed) {
  // Star with centre s and three identical arms; by symmetry the ARD is
  // any cross-arm path delay.
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  const NodeId s = tree.AddNode(NodeKind::kSteiner, {0, 0});
  const double arm = 700.0;
  std::vector<NodeId> leaves;
  for (int i = 0; i < 3; ++i) {
    const NodeId t = tree.AddTerminal(
        DefaultTerminal(tech), {static_cast<std::int64_t>(arm), 0});
    tree.AddEdge(s, t, arm);
    leaves.push_back(t);
  }
  const ArdResult ard = ComputeArd(tree, tech);

  const EffectiveTerminal eff = ResolveTerminal(DefaultTerminal(tech));
  const double rw = arm * tech.wire.res_per_um;
  const double cw = arm * tech.wire.cap_per_um;
  const double total_cap = 3.0 * (cw + eff.pin_cap);
  const double expected = eff.arrival_ps + eff.driver_intrinsic_ps +
                          eff.driver_res * total_cap +
                          // Up the source arm: beyond it lie 2 arms.
                          rw * (cw / 2.0 + 2.0 * cw + 2.0 * eff.pin_cap) +
                          // Down the sink arm.
                          rw * (cw / 2.0 + eff.pin_cap) +
                          eff.downstream_ps;
  EXPECT_NEAR(ard.ard_ps, expected, 1e-9);
}

TEST(Ard, ConvenienceOverloadMatchesExplicit) {
  const Technology tech = DefaultTechnology();
  const RcTree tree = testing::TwoPinLine(tech, 2500.0, 2);
  EXPECT_DOUBLE_EQ(
      ComputeArd(tree, tech).ard_ps,
      ComputeArd(tree, RepeaterAssignment(tree.NumNodes()),
                 DriverAssignment(tree.NumTerminals()), tech)
          .ard_ps);
}

}  // namespace
}  // namespace msn
