#include <gtest/gtest.h>

#include "common/check.h"
#include "netgen/netgen.h"
#include "steiner/one_steiner.h"
#include "steiner/prim_dijkstra.h"
#include "steiner/ptree.h"
#include "steiner/spanning.h"
#include "steiner/topology.h"

namespace msn {
namespace {

TEST(Mst, SinglePoint) {
  const SteinerTree t = RectilinearMst({{5, 5}});
  EXPECT_EQ(t.points.size(), 1u);
  EXPECT_TRUE(t.edges.empty());
  t.Validate();
}

TEST(Mst, TwoPoints) {
  const SteinerTree t = RectilinearMst({{0, 0}, {3, 4}});
  ASSERT_EQ(t.edges.size(), 1u);
  EXPECT_EQ(t.TotalLength(), 7);
}

TEST(Mst, KnownFourPointSquare) {
  // Unit square scaled by 10: MST = 3 sides.
  const SteinerTree t =
      RectilinearMst({{0, 0}, {10, 0}, {0, 10}, {10, 10}});
  EXPECT_EQ(t.TotalLength(), 30);
  t.Validate();
}

TEST(Mst, CollinearChain) {
  const SteinerTree t = RectilinearMst({{0, 0}, {10, 0}, {4, 0}, {7, 0}});
  EXPECT_EQ(t.TotalLength(), 10);
}

TEST(Mst, EmptyThrows) {
  EXPECT_THROW(RectilinearMstEdges({}), CheckError);
}

TEST(SteinerTreeContainer, ValidateRejectsCycle) {
  SteinerTree t;
  t.points = {{0, 0}, {1, 0}, {0, 1}};
  t.num_terminals = 3;
  t.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_THROW(t.Validate(), CheckError);
}

TEST(SteinerTreeContainer, ValidateRejectsWrongEdgeCount) {
  SteinerTree t;
  t.points = {{0, 0}, {1, 0}, {0, 1}};
  t.num_terminals = 3;
  t.edges = {{0, 1}};
  EXPECT_THROW(t.Validate(), CheckError);
}

TEST(SteinerTreeContainer, ValidateRejectsSelfLoop) {
  SteinerTree t;
  t.points = {{0, 0}, {1, 0}};
  t.num_terminals = 2;
  t.edges = {{0, 0}};
  EXPECT_THROW(t.Validate(), CheckError);
}

TEST(OneSteiner, ClassicCrossGainsSteinerPoint) {
  // Four points in a plus-shape: the centre Hanan point saves length.
  // Terminals: (0,5),(10,5),(5,0),(5,10). MST = 3 * 10 = 30;
  // star through (5,5) = 20.
  const std::vector<Point> t{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  EXPECT_EQ(RectilinearMstLength(t), 30);
  const SteinerTree st = IteratedOneSteiner(t);
  EXPECT_EQ(st.TotalLength(), 20);
  EXPECT_EQ(st.points.size(), 5u);  // 4 terminals + centre.
  EXPECT_EQ(st.points[4], (Point{5, 5}));
}

TEST(OneSteiner, LShapedTripleGainsCorner) {
  // (0,0), (10,0) ... wait-free simple case: (0,0),(8,6),(8,0) is already
  // rectilinearly optimal through the corner (8,0) which is a terminal.
  const std::vector<Point> t{{0, 0}, {8, 6}, {8, 0}};
  const SteinerTree st = IteratedOneSteiner(t);
  EXPECT_EQ(st.TotalLength(), 14);
}

TEST(OneSteiner, ThreePointCornerSteiner) {
  // (0,0),(10,2),(4,8): a Steiner point can save wirelength vs MST.
  const std::vector<Point> t{{0, 0}, {10, 2}, {4, 8}};
  const SteinerTree st = IteratedOneSteiner(t);
  EXPECT_LE(st.TotalLength(), RectilinearMstLength(t));
  // Optimal RSMT for 3 points is the "median" star: length =
  // (xmax-xmin) + (ymax-ymin) = 10 + 8 = 18.
  EXPECT_EQ(st.TotalLength(), 18);
  st.Validate();
}

TEST(OneSteiner, NeverWorseThanMst) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<Point> t = RandomTerminals(seed, 9, 1000);
    const SteinerTree st = IteratedOneSteiner(t);
    EXPECT_LE(st.TotalLength(), RectilinearMstLength(t))
        << "seed " << seed;
    st.Validate();
  }
}

TEST(OneSteiner, TerminalsKeptInOrder) {
  const std::vector<Point> t = RandomTerminals(7, 12, 2000);
  const SteinerTree st = IteratedOneSteiner(t);
  ASSERT_GE(st.points.size(), t.size());
  EXPECT_EQ(st.num_terminals, t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(st.points[i], t[i]) << "terminal " << i << " moved";
  }
}

TEST(OneSteiner, NoUselessSteinerPoints) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::vector<Point> t = RandomTerminals(seed, 8, 1500);
    const SteinerTree st = IteratedOneSteiner(t);
    const std::vector<std::size_t> deg = st.Degrees();
    for (std::size_t i = st.num_terminals; i < st.points.size(); ++i) {
      EXPECT_GE(deg[i], 3u) << "seed " << seed << " Steiner point " << i;
    }
  }
}

TEST(OneSteiner, MaxSteinerPointsRespected) {
  const std::vector<Point> t = RandomTerminals(3, 10, 2000);
  OneSteinerOptions opt;
  opt.max_steiner_points = 1;
  const SteinerTree st = IteratedOneSteiner(t, opt);
  EXPECT_LE(st.points.size(), t.size() + 1);
}

/// Property sweep: structural invariants over random instances.
class SteinerPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteinerPropertyTest, TreeInvariants) {
  const std::uint64_t seed = GetParam();
  for (const std::size_t n : {2u, 5u, 10u, 20u}) {
    const std::vector<Point> t = RandomTerminals(seed, n, 10000);
    const SteinerTree st = IteratedOneSteiner(t);
    st.Validate();
    EXPECT_EQ(st.num_terminals, n);
    EXPECT_EQ(st.edges.size(), st.points.size() - 1);
    // Half-perimeter of the bounding box is a Steiner lower bound.
    EXPECT_GE(st.TotalLength(),
              ComputeBoundingBox(t).HalfPerimeter() * (n > 1 ? 1 : 0));
    EXPECT_LE(st.TotalLength(), RectilinearMstLength(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteinerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(PrimDijkstra, CZeroIsMst) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<Point> t = RandomTerminals(seed, 12, 5000);
    const SteinerTree pd = PrimDijkstra(t, 0, 0.0);
    EXPECT_EQ(pd.TotalLength(), RectilinearMstLength(t)) << "seed " << seed;
    pd.Validate();
  }
}

TEST(PrimDijkstra, COneIsShortestPathStar) {
  const std::vector<Point> t = RandomTerminals(3, 10, 5000);
  const SteinerTree pd = PrimDijkstra(t, 0, 1.0);
  // Under a metric, the Dijkstra tree from the root is the star: every
  // terminal's tree path equals its direct distance.
  std::vector<std::int64_t> pathlen(t.size(), -1);
  // Tree path lengths by BFS over the edge list.
  std::vector<std::vector<std::size_t>> adj(t.size());
  for (const SteinerEdge& e : pd.edges) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::vector<std::size_t> stack{0};
  pathlen[0] = 0;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (const std::size_t w : adj[v]) {
      if (pathlen[w] != -1) continue;
      pathlen[w] =
          pathlen[v] + ManhattanDistance(pd.points[v], pd.points[w]);
      stack.push_back(w);
    }
  }
  for (std::size_t v = 1; v < t.size(); ++v) {
    EXPECT_EQ(pathlen[v], ManhattanDistance(t[0], t[v])) << "terminal " << v;
  }
}

TEST(PrimDijkstra, TradeoffMonotoneAtEndpoints) {
  const std::vector<Point> t = RandomTerminals(9, 15, 8000);
  const SteinerTree mst = PrimDijkstra(t, 0, 0.0);
  const SteinerTree spt = PrimDijkstra(t, 0, 1.0);
  const SteinerTree mid = PrimDijkstra(t, 0, 0.5);
  EXPECT_LE(mst.TotalLength(), mid.TotalLength());
  EXPECT_LE(mst.TotalLength(), spt.TotalLength());
  mid.Validate();
}

TEST(PrimDijkstra, RejectsBadArguments) {
  const std::vector<Point> t{{0, 0}, {10, 10}};
  EXPECT_THROW(PrimDijkstra({}, 0, 0.5), CheckError);
  EXPECT_THROW(PrimDijkstra(t, 5, 0.5), CheckError);
  EXPECT_THROW(PrimDijkstra(t, 0, -0.1), CheckError);
  EXPECT_THROW(PrimDijkstra(t, 0, 1.5), CheckError);
}

TEST(PTree, SingleAndPairDegenerate) {
  const SteinerTree one = PTree({{5, 5}});
  EXPECT_EQ(one.points.size(), 1u);
  one.Validate();
  const SteinerTree two = PTree({{0, 0}, {30, 40}});
  two.Validate();
  EXPECT_EQ(two.TotalLength(), 70);
}

TEST(PTree, FindsTheOptimalCross) {
  // Plus-shape: the optimal RSMT is the star through (5,5), length 20.
  const std::vector<Point> t{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const SteinerTree pt = PTree(t);
  pt.Validate();
  EXPECT_EQ(pt.TotalLength(), 20);
}

TEST(PTree, ThreePointMedianStar) {
  const std::vector<Point> t{{0, 0}, {10, 2}, {4, 8}};
  const SteinerTree pt = PTree(t);
  EXPECT_EQ(pt.TotalLength(), 18);  // (xmax-xmin) + (ymax-ymin).
}

TEST(PTree, WirelengthStaysNearMst) {
  // The tour restriction can beat or lose to 1-Steiner, but stays within
  // a modest factor of the MST on random instances.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const std::size_t n : {5u, 10u}) {
      const std::vector<Point> t = RandomTerminals(seed, n, 10'000);
      const SteinerTree pt = PTree(t);
      pt.Validate();
      EXPECT_EQ(pt.num_terminals, n);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(pt.points[i], t[i]);
      EXPECT_LE(pt.TotalLength(),
                static_cast<std::int64_t>(
                    1.25 * static_cast<double>(RectilinearMstLength(t))))
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(PTree, ExplicitTourOverridesHeuristic) {
  const std::vector<Point> t = RandomTerminals(6, 6, 5000);
  PTreeOptions opt;
  opt.tour = {0, 1, 2, 3, 4, 5};
  const SteinerTree a = PTree(t, opt);
  a.Validate();
  // A different tour may give a different (valid) tree.
  opt.tour = {5, 3, 1, 0, 2, 4};
  const SteinerTree b = PTree(t, opt);
  b.Validate();
}

TEST(PTree, RejectsBadTours) {
  const std::vector<Point> t{{0, 0}, {10, 0}, {0, 10}};
  PTreeOptions opt;
  opt.tour = {0, 1};  // Wrong size.
  EXPECT_THROW(PTree(t, opt), CheckError);
  opt.tour = {0, 1, 1};  // Not a permutation.
  EXPECT_THROW(PTree(t, opt), CheckError);
  EXPECT_THROW(PTree({}, {}), CheckError);
}

}  // namespace
}  // namespace msn
