#include "core/mfs.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"

namespace msn {
namespace {

SolutionPtr Make(double cost, double cap, double delay, Pwl arr, Pwl diam) {
  auto s = std::make_shared<MsriSolution>();
  s->cost = cost;
  s->cap = cap;
  s->sink_delay = delay;
  s->arr = std::move(arr);
  s->diam = std::move(diam);
  return s;
}

MfsOptions Quadratic() {
  MfsOptions o;
  o.mode = MfsOptions::Mode::kQuadratic;
  return o;
}

TEST(Mfs, FullyDominatedSolutionRemoved) {
  SolutionSet set;
  set.push_back(Make(1.0, 1.0, 10.0, Pwl::Line(5.0, 1.0), Pwl::NegInf()));
  set.push_back(Make(2.0, 2.0, 20.0, Pwl::Line(9.0, 2.0), Pwl::NegInf()));
  const SolutionSet out = ComputeMfs(set, Quadratic());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0]->cost, 1.0);
}

TEST(Mfs, IncomparableScalarsBothSurvive) {
  SolutionSet set;
  set.push_back(Make(1.0, 5.0, 10.0, Pwl::Constant(0.0), Pwl::NegInf()));
  set.push_back(Make(5.0, 1.0, 10.0, Pwl::Constant(0.0), Pwl::NegInf()));
  EXPECT_EQ(ComputeMfs(set, Quadratic()).size(), 2u);
}

TEST(Mfs, PartialDomainPruning) {
  // s1 cheaper scalars; arr functions cross at x = 5: s1 wins for x > 5.
  SolutionSet set;
  set.push_back(Make(1.0, 1.0, 0.0, Pwl::Constant(10.0), Pwl::NegInf()));
  set.push_back(Make(1.0, 1.0, 0.0, Pwl::Line(0.0, 2.0), Pwl::NegInf()));
  const SolutionSet out = ComputeMfs(set, Quadratic());
  ASSERT_EQ(out.size(), 2u);
  // The constant one survives only where it's at most the line (x >= 5
  // minus eps effects), the line only where it's at most the constant.
  for (const SolutionPtr& s : out) {
    EXPECT_FALSE(s->valid.Empty());
    EXPECT_FALSE(s->valid == IntervalSet::NonNegativeReals());
  }
}

TEST(Mfs, IdenticalSolutionsKeepExactlyOne) {
  SolutionSet set;
  for (int i = 0; i < 4; ++i) {
    set.push_back(
        Make(3.0, 2.0, 7.0, Pwl::Line(1.0, 1.0), Pwl::Constant(5.0)));
  }
  EXPECT_EQ(ComputeMfs(set, Quadratic()).size(), 1u);
}

TEST(Mfs, OffModeKeepsEverything) {
  SolutionSet set;
  set.push_back(Make(1.0, 1.0, 1.0, Pwl::Constant(1.0), Pwl::NegInf()));
  set.push_back(Make(9.0, 9.0, 9.0, Pwl::Constant(9.0), Pwl::NegInf()));
  MfsOptions off;
  off.mode = MfsOptions::Mode::kOff;
  EXPECT_EQ(ComputeMfs(set, off).size(), 2u);
}

TEST(Mfs, BottomArrDominatesNothingButIsDominated) {
  // A sink-only solution (arr = -inf) is dominated by an identical
  // solution that also has -inf arr, but a source solution never prunes
  // a cheaper sink-only one.
  SolutionSet set;
  set.push_back(Make(1.0, 1.0, 5.0, Pwl::NegInf(), Pwl::NegInf()));
  set.push_back(Make(2.0, 1.0, 5.0, Pwl::Constant(3.0), Pwl::NegInf()));
  const SolutionSet out = ComputeMfs(set, Quadratic());
  // The -inf-arr solution dominates the other on every axis (cost lower,
  // arr -inf <= 3): only it survives.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0]->cost, 1.0);
}

TEST(Mfs, RespectsDominatorValidRegion) {
  // The dominator is only valid on [0, 2): it must not prune beyond.
  SolutionSet set;
  auto dom = Make(1.0, 1.0, 0.0, Pwl::Constant(0.0), Pwl::NegInf());
  dom->valid = IntervalSet(0.0, 2.0);
  auto victim = Make(2.0, 2.0, 0.0, Pwl::Constant(1.0), Pwl::NegInf());
  set.push_back(dom);
  set.push_back(victim);
  const SolutionSet out = ComputeMfs(set, Quadratic());
  ASSERT_EQ(out.size(), 2u);
  const SolutionPtr& v = out[0]->cost == 2.0 ? out[0] : out[1];
  EXPECT_FALSE(v->valid.Contains(1.0));
  EXPECT_TRUE(v->valid.Contains(2.0));
  EXPECT_TRUE(v->valid.Contains(100.0));
}

TEST(Mfs, DiamDimensionBlocksPruning) {
  // Better cost/cap/arr but worse diam somewhere: no full prune there.
  SolutionSet set;
  set.push_back(Make(1.0, 1.0, 0.0, Pwl::Constant(0.0),
                     Pwl::Line(0.0, 3.0)));
  set.push_back(Make(2.0, 2.0, 0.0, Pwl::Constant(1.0),
                     Pwl::Constant(10.0)));
  const SolutionSet out = ComputeMfs(set, Quadratic());
  ASSERT_EQ(out.size(), 2u);
  // Victim (cost 2) survives exactly where dominator's diam exceeds 10,
  // i.e. x > 10/3.
  const SolutionPtr& v = out[0]->cost == 2.0 ? out[0] : out[1];
  EXPECT_FALSE(v->valid.Contains(3.0));
  EXPECT_TRUE(v->valid.Contains(4.0));
}

TEST(Mfs, CrossPruneSkipsNulledSlotsRegression) {
  // Regression for the divide-and-conquer cross-prune early-exit: with
  // base_case = 2 the set {c1/p5, c2/p1, c3/p6, c4/p2} (cost/cap, all
  // other dimensions identical) splits into left {c1, c2} and right
  // {c3, c4}, neither half prunes internally, and the cross pass goes:
  //   c1 prunes c3 (cheaper, smaller cap)  -> right slot 0 nulled;
  //   c2 must then prune c4 — but the old scan hit the nulled slot 0
  //   first and aborted c2's whole row, so the dominated c4 survived.
  auto build = [] {
    SolutionSet set;
    set.push_back(Make(1.0, 5.0, 0.0, Pwl::Constant(1.0), Pwl::NegInf()));
    set.push_back(Make(2.0, 1.0, 0.0, Pwl::Constant(1.0), Pwl::NegInf()));
    set.push_back(Make(3.0, 6.0, 0.0, Pwl::Constant(1.0), Pwl::NegInf()));
    set.push_back(Make(4.0, 2.0, 0.0, Pwl::Constant(1.0), Pwl::NegInf()));
    return set;
  };
  MfsOptions dc;
  dc.mode = MfsOptions::Mode::kDivideConquer;
  dc.base_case = 2;
  const SolutionSet pruned = ComputeMfs(build(), dc);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_DOUBLE_EQ(pruned[0]->cost, 1.0);
  EXPECT_DOUBLE_EQ(pruned[1]->cost, 2.0);
  // The quadratic mode agrees.
  EXPECT_EQ(ComputeMfs(build(), Quadratic()).size(), 2u);
}

/// Asserts Definition 4.3 minimality: at no sampled external capacitance
/// is one survivor strictly better than another (beyond `margin`) in all
/// five dimensions while both claim validity there.  A violation means a
/// dominance test was skipped that should have run.
void ExpectMinimal(const SolutionSet& set, const std::vector<double>& xs,
                   double margin) {
  for (const SolutionPtr& a : set) {
    for (const SolutionPtr& b : set) {
      if (a == b) continue;
      for (const double x : xs) {
        if (!a->valid.Contains(x) || !b->valid.Contains(x)) continue;
        const bool strictly_dominated =
            a->cost <= b->cost - margin && a->cap <= b->cap - margin &&
            a->sink_delay <= b->sink_delay - margin &&
            a->arr.Eval(x) <= b->arr.Eval(x) - margin &&
            a->diam.Eval(x) <= b->diam.Eval(x) - margin;
        EXPECT_FALSE(strictly_dominated)
            << "survivor with cost " << b->cost
            << " is strictly dominated at x = " << x << " by cost "
            << a->cost;
      }
    }
  }
}

SolutionSet RandomSet(Rng& rng, int n) {
  SolutionSet set;
  for (int i = 0; i < n; ++i) {
    set.push_back(Make(rng.UniformReal(0.0, 4.0), rng.UniformReal(0.0, 2.0),
                       rng.UniformReal(0.0, 100.0),
                       Pwl::Line(rng.UniformReal(0.0, 200.0),
                                 rng.UniformReal(0.0, 30.0)),
                       Pwl::Line(rng.UniformReal(0.0, 300.0),
                                 rng.UniformReal(0.0, 30.0))));
  }
  return set;
}

class MfsMinimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MfsMinimality, NoSurvivorDominatedAtSampledLoads) {
  Rng rng(GetParam());
  const SolutionSet set = RandomSet(rng, 48);
  std::vector<double> xs = {0.0, 0.25, 1.0, 3.0, 10.0, 40.0};
  for (int i = 0; i < 24; ++i) xs.push_back(rng.UniformReal(0.0, 60.0));

  for (const MfsOptions::Mode mode :
       {MfsOptions::Mode::kQuadratic, MfsOptions::Mode::kDivideConquer}) {
    SolutionSet copy;
    for (const SolutionPtr& s : set) {
      copy.push_back(std::make_shared<MsriSolution>(*s));
    }
    MfsOptions options;
    options.mode = mode;
    MfsStats stats;
    const SolutionSet out = ComputeMfs(std::move(copy), options, &stats);
    ExpectMinimal(out, xs, 1e-6);
    // The predictive skip only ever avoids tests the sort already
    // decided; its mirror-pair bound must hold structurally.
    EXPECT_LE(stats.predictive_skipped, stats.comparisons);
    EXPECT_GT(stats.predictive_skipped, 0u);
  }
}

/// PairwisePrune (kQuadratic) and MfsRecurse (kDivideConquer) must agree:
/// identical pointwise-achievable frontier at sampled loads, each mode's
/// survivors covered by the other's, and both minimal.
TEST_P(MfsMinimality, PairwiseAndRecurseEquivalent) {
  Rng rng(GetParam() + 1000);
  const SolutionSet set = RandomSet(rng, 40);
  SolutionSet s1;
  SolutionSet s2;
  for (const SolutionPtr& s : set) {
    s1.push_back(std::make_shared<MsriSolution>(*s));
    s2.push_back(std::make_shared<MsriSolution>(*s));
  }
  MfsOptions quad = Quadratic();
  MfsOptions dc;
  dc.mode = MfsOptions::Mode::kDivideConquer;
  dc.base_case = 4;  // Deep recursion: many cross-prune passes.
  const SolutionSet a = ComputeMfs(std::move(s1), quad);
  const SolutionSet b = ComputeMfs(std::move(s2), dc);

  std::vector<double> xs;
  for (int i = 0; i < 32; ++i) xs.push_back(rng.UniformReal(0.0, 60.0));
  ExpectMinimal(a, xs, 1e-6);
  ExpectMinimal(b, xs, 1e-6);
  auto covered = [](const SolutionSet& by, const MsriSolution& s, double x) {
    for (const SolutionPtr& k : by) {
      if (!k->valid.Contains(x)) continue;
      if (k->cost <= s.cost + 1e-6 && k->cap <= s.cap + 1e-6 &&
          k->sink_delay <= s.sink_delay + 1e-6 &&
          k->arr.Eval(x) <= s.arr.Eval(x) + 1e-6 &&
          k->diam.Eval(x) <= s.diam.Eval(x) + 1e-6) {
        return true;
      }
    }
    return false;
  };
  for (const double x : xs) {
    for (const SolutionPtr& s : a) {
      if (s->valid.Contains(x)) {
        EXPECT_TRUE(covered(b, *s, x)) << "x=" << x;
      }
    }
    for (const SolutionPtr& s : b) {
      if (s->valid.Contains(x)) {
        EXPECT_TRUE(covered(a, *s, x)) << "x=" << x;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MfsMinimality,
                         ::testing::Range<std::uint64_t>(1, 16));

/// Divide-and-conquer agrees with quadratic pruning on the surviving
/// frontier (same minimal cover, possibly different tie-breaks — we check
/// coverage: for sampled x, the best achievable 5-tuple is preserved).
class MfsModeAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MfsModeAgreement, SameCoverage) {
  Rng rng(GetParam());
  SolutionSet set;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    set.push_back(Make(rng.UniformReal(0.0, 4.0), rng.UniformReal(0.0, 2.0),
                       rng.UniformReal(0.0, 100.0),
                       Pwl::Line(rng.UniformReal(0.0, 200.0),
                                 rng.UniformReal(0.0, 30.0)),
                       Pwl::Line(rng.UniformReal(0.0, 300.0),
                                 rng.UniformReal(0.0, 30.0))));
  }
  // Deep-copy for the second mode (ComputeMfs mutates valid regions).
  SolutionSet set2;
  for (const SolutionPtr& s : set) {
    set2.push_back(std::make_shared<MsriSolution>(*s));
  }

  MfsOptions quad = Quadratic();
  MfsOptions dc;
  dc.mode = MfsOptions::Mode::kDivideConquer;
  const SolutionSet a = ComputeMfs(set, quad);
  const SolutionSet b = ComputeMfs(set2, dc);

  // For sampled x, every solution valid at x in one survivor set must be
  // matched (in all 5 dims, up to eps) by some valid solution in the other.
  auto covered = [](const SolutionSet& by, const MsriSolution& s,
                    double x) {
    for (const SolutionPtr& k : by) {
      if (!k->valid.Contains(x)) continue;
      if (k->cost <= s.cost + 1e-6 && k->cap <= s.cap + 1e-6 &&
          k->sink_delay <= s.sink_delay + 1e-6 &&
          k->arr.Eval(x) <= s.arr.Eval(x) + 1e-6 &&
          k->diam.Eval(x) <= s.diam.Eval(x) + 1e-6) {
        return true;
      }
    }
    return false;
  };
  for (double x : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    for (const SolutionPtr& s : a) {
      if (s->valid.Contains(x)) {
        EXPECT_TRUE(covered(b, *s, x)) << "x=" << x;
      }
    }
    for (const SolutionPtr& s : b) {
      if (s->valid.Contains(x)) {
        EXPECT_TRUE(covered(a, *s, x)) << "x=" << x;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MfsModeAgreement,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace msn
