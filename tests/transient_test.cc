// Tests for the golden transient simulator and its relationship to the
// Elmore and D2M delay models.
#include "sim/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "core/ard.h"
#include "elmore/moments.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::RandomAssignment;
using testing::SmallRandomNet;
using testing::TwoPinLine;

TEST(Transient, SinglePoleMatchesClosedForm) {
  // One driver resistance into a lumped load: v(t) = 1 - exp(-t/RC),
  // 50% at ln2 * RC.  Use a short wire so the pin caps dominate.
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  const TerminalParams tp = DefaultTerminal(tech);
  const NodeId a = tree.AddTerminal(tp, {0, 0});
  const NodeId b = tree.AddTerminal(tp, {1, 0});
  tree.AddEdge(a, b, 1.0);

  const EffectiveTerminal eff = ResolveTerminal(tp);
  const double total_cap =
      2.0 * eff.pin_cap + 1.0 * tech.wire.cap_per_um;
  const double tau = eff.driver_res * total_cap;

  const TransientDelays sim = SimulateSource(
      tree, 0, RepeaterAssignment(tree.NumNodes()),
      DriverAssignment(tree.NumTerminals()), tech);
  const double base = eff.arrival_ps + eff.driver_intrinsic_ps;
  EXPECT_NEAR(sim.arrival_ps[b] - base, std::log(2.0) * tau,
              0.01 * tau);
}

TEST(Transient, ElmoreIsAnUpperBound) {
  // Classic result: for RC trees under a step, the Elmore delay bounds
  // the 50% delay from above, at every node.
  const Technology tech = testing::SmallTech();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 7000, 900.0);
    Rng rng(seed * 3);
    const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
    const DriverAssignment drivers(tree.NumTerminals());
    const TransientDelays sim =
        SimulateSource(tree, 0, assign, drivers, tech);
    const SourceDelays elmore =
        ComputeSourceDelays(tree, 0, assign, drivers, tech);
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      if (v == tree.TerminalNode(0)) continue;  // Input- vs output-side.
      EXPECT_LE(sim.arrival_ps[v], elmore.arrival[v] * (1.0 + 1e-3))
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(Transient, D2mTracksGoldenBetterThanElmore) {
  // The point of the two-moment metric: averaged over sinks, D2M lands
  // closer to the simulated 50% delay than Elmore does.
  const Technology tech = testing::SmallTech();
  double err_elmore = 0.0, err_d2m = 0.0;
  int sinks = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 8000, 800.0);
    const RepeaterAssignment none(tree.NumNodes());
    const DriverAssignment drivers(tree.NumTerminals());
    const TransientDelays sim =
        SimulateSource(tree, 0, none, drivers, tech);
    const SourceDelays elmore =
        ComputeSourceDelays(tree, 0, none, drivers, tech);
    const SourceMoments d2m =
        ComputeSourceMoments(tree, 0, none, drivers, tech);
    for (std::size_t t = 1; t < tree.NumTerminals(); ++t) {
      const NodeId v = tree.TerminalNode(t);
      err_elmore += std::fabs(elmore.arrival[v] - sim.arrival_ps[v]);
      err_d2m += std::fabs(d2m.delay_ps[v] - sim.arrival_ps[v]);
      ++sinks;
    }
  }
  ASSERT_GT(sinks, 0);
  EXPECT_LT(err_d2m, err_elmore)
      << "mean |D2M - golden| = " << err_d2m / sinks
      << " vs |Elmore - golden| = " << err_elmore / sinks;
}

TEST(Transient, RepeaterDecouplesDownstream) {
  const Technology tech = testing::SmallTech();
  std::vector<double> at_ip;
  for (const double tail : {600.0, 5000.0}) {
    RcTree tree(tech.wire);
    const TerminalParams tp = DefaultTerminal(tech);
    const NodeId a = tree.AddTerminal(tp, {0, 0});
    const NodeId ip = tree.AddNode(NodeKind::kInsertion, {500, 0});
    const NodeId b = tree.AddTerminal(
        tp, {500 + static_cast<std::int64_t>(tail), 0});
    tree.AddEdge(a, ip, 500.0);
    tree.AddEdge(ip, b, tail);
    RepeaterAssignment assign(tree.NumNodes());
    assign.Place(ip, PlacedRepeater{0, a});
    const TransientDelays sim = SimulateSource(
        tree, 0, assign, DriverAssignment(tree.NumTerminals()), tech);
    at_ip.push_back(sim.arrival_ps[ip]);
  }
  EXPECT_NEAR(at_ip[0], at_ip[1], 1e-6);
}

TEST(Transient, RefiningTimeStepConverges) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = TwoPinLine(tech, 6000.0, 3);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  TransientOptions coarse;
  coarse.resolution = 100.0;
  TransientOptions fine;
  fine.resolution = 1600.0;
  const double a =
      SimulateSource(tree, 0, none, drivers, tech, coarse)
          .arrival_ps[tree.TerminalNode(1)];
  const double b =
      SimulateSource(tree, 0, none, drivers, tech, fine)
          .arrival_ps[tree.TerminalNode(1)];
  EXPECT_NEAR(a, b, 0.01 * b);
}

TEST(Transient, ZeroLengthStubsHandled) {
  // Nets with non-leaf terminals carry zero-length stub edges; the
  // simulator must clamp the infinite conductance gracefully.
  const Technology tech = testing::SmallTech();
  SteinerTree st;
  st.points = {{0, 0}, {2000, 0}, {4000, 0}};
  st.num_terminals = 3;
  st.edges = {{0, 1}, {1, 2}};
  RcTree tree = RcTree::FromSteinerTree(
      st, tech.wire, std::vector<TerminalParams>(3, DefaultTerminal(tech)));
  tree.AddInsertionPoints(900.0);
  const TransientDelays sim = SimulateSource(
      tree, 0, RepeaterAssignment(tree.NumNodes()),
      DriverAssignment(tree.NumTerminals()), tech);
  for (std::size_t t = 1; t < 3; ++t) {
    EXPECT_GT(sim.arrival_ps[tree.TerminalNode(t)], 0.0);
    EXPECT_TRUE(std::isfinite(sim.arrival_ps[tree.TerminalNode(t)]));
  }
}

TEST(Transient, GoldenArdOrderingAndBounds) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, 9, 6, 8000, 800.0);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const ArdResult golden = ComputeArdGolden(tree, none, drivers, tech);
  const ArdResult elmore = ComputeArd(tree, none, drivers, tech);
  ASSERT_TRUE(golden.HasPair());
  EXPECT_LE(golden.ard_ps, elmore.ard_ps * (1.0 + 1e-3));
  EXPECT_GT(golden.ard_ps, 0.3 * elmore.ard_ps);
}

TEST(Transient, OptionValidation) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  TransientOptions bad;
  bad.threshold = 1.5;
  EXPECT_THROW(SimulateSource(tree, 0, RepeaterAssignment(tree.NumNodes()),
                              DriverAssignment(tree.NumTerminals()), tech,
                              bad),
               CheckError);
  bad = TransientOptions{};
  bad.resolution = 2.0;
  EXPECT_THROW(SimulateSource(tree, 0, RepeaterAssignment(tree.NumNodes()),
                              DriverAssignment(tree.NumTerminals()), tech,
                              bad),
               CheckError);
}

}  // namespace
}  // namespace msn
