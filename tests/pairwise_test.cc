#include "elmore/pairwise.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/numeric.h"
#include "common/rng.h"
#include "core/ard.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::RandomAssignment;
using testing::SmallRandomNet;

TEST(Pairwise, MatrixMaxEqualsArd) {
  // The ARD is by definition the maximum matrix entry.
  const Technology tech = testing::SmallTech();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 7, 8000, 800.0);
    Rng rng(seed * 17);
    const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
    const DriverAssignment drivers(tree.NumTerminals());
    const PairDelayMatrix m =
        AllPairDelays(tree, assign, drivers, tech);
    double max_entry = -kInf;
    for (const double d : m.delay_ps) max_entry = std::max(max_entry, d);
    EXPECT_NEAR(max_entry,
                ComputeArd(tree, assign, drivers, tech).ard_ps, 1e-6)
        << "seed " << seed;
  }
}

TEST(Pairwise, RolesLeaveHolesInMatrix) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams src_only = DefaultTerminal(tech);
  src_only.is_sink = false;
  TerminalParams snk_only = DefaultTerminal(tech);
  snk_only.is_source = false;
  const NodeId a = tree.AddTerminal(src_only, {0, 0});
  const NodeId b = tree.AddTerminal(snk_only, {2000, 0});
  tree.AddEdge(a, b, 2000.0);

  const PairDelayMatrix m = AllPairDelays(
      tree, RepeaterAssignment(tree.NumNodes()),
      DriverAssignment(tree.NumTerminals()), tech);
  EXPECT_GT(m.At(0, 1), 0.0);
  EXPECT_EQ(m.At(1, 0), -kInf);  // Terminal 1 cannot drive.
  EXPECT_EQ(m.At(0, 0), -kInf);  // Self pairs excluded.
}

TEST(Pairwise, ConstraintsReportedMostViolatedFirst) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, 4, 5, 7000, 900.0);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const PairDelayMatrix m = AllPairDelays(tree, none, drivers, tech);

  // Build constraints: one satisfied, two violated by different margins.
  std::vector<PairConstraint> cs;
  cs.push_back({0, 1, m.At(0, 1) + 100.0});  // Slack +100.
  cs.push_back({1, 2, m.At(1, 2) - 50.0});   // Violated by 50.
  cs.push_back({2, 3, m.At(2, 3) - 200.0});  // Violated by 200.
  const auto violations =
      CheckConstraints(tree, none, drivers, tech, cs);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].constraint.source, 2u);
  EXPECT_NEAR(violations[0].SlackPs(), -200.0, 1e-9);
  EXPECT_EQ(violations[1].constraint.source, 1u);
  EXPECT_NEAR(violations[1].SlackPs(), -50.0, 1e-9);
}

TEST(Pairwise, BadConstraintsRejected) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  EXPECT_THROW(CheckConstraints(tree, none, drivers, tech, {{0, 0, 1.0}}),
               CheckError);
  EXPECT_THROW(CheckConstraints(tree, none, drivers, tech, {{0, 9, 1.0}}),
               CheckError);
}

TEST(Pairwise, ArdSpecImpliesEveryPairBound) {
  // Problem 2.1's implicit pairwise bounds (paper Section II): if a
  // solution meets ARD <= spec, every pair's raw path delay meets its
  // implied bound — and conversely the critical pair's bound is tight.
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, 8, 6, 8000, 800.0);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const ArdResult ard = ComputeArd(tree, none, drivers, tech);
  const PairDelayMatrix m = AllPairDelays(tree, none, drivers, tech);

  const double spec = ard.ard_ps;  // Tight spec.
  for (std::size_t u = 0; u < tree.NumTerminals(); ++u) {
    for (std::size_t v = 0; v < tree.NumTerminals(); ++v) {
      if (m.At(u, v) == -kInf) continue;
      const EffectiveTerminal eu = drivers.Resolve(tree, u);
      const EffectiveTerminal ev = drivers.Resolve(tree, v);
      const double pd = m.At(u, v) - eu.arrival_ps - ev.downstream_ps;
      EXPECT_LE(pd, ArdImpliedBound(tree, u, v, spec) + 1e-9);
    }
  }
  // Tightness at the critical pair.
  const EffectiveTerminal eu = drivers.Resolve(tree, ard.critical_source);
  const EffectiveTerminal ev = drivers.Resolve(tree, ard.critical_sink);
  const double pd = m.At(ard.critical_source, ard.critical_sink) -
                    eu.arrival_ps - ev.downstream_ps;
  EXPECT_NEAR(
      pd,
      ArdImpliedBound(tree, ard.critical_source, ard.critical_sink, spec),
      1e-6);
}

}  // namespace
}  // namespace msn
