// Tests for the human-facing reporting paths (DescribeSolution content,
// driver-option naming) that the examples and CLI rely on.
#include <gtest/gtest.h>

#include <sstream>

#include "core/ard.h"
#include "core/msri.h"
#include "io/report.h"
#include "netgen/netgen.h"
#include "test_util.h"

namespace msn {
namespace {

TEST(Reporting, DescribeSolutionListsRepeatersAndDrivers) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 8;
  cfg.num_terminals = 6;
  const RcTree tree = BuildExperimentNet(cfg, tech);

  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = DriverSizingLibrary(tech, {1.0, 3.0});
  const MsriResult r = RunMsri(tree, tech, opt);
  const TradeoffPoint* best = r.MinArd();
  ASSERT_NE(best, nullptr);
  ASSERT_GE(best->num_repeaters, 1u);

  const ArdResult ard =
      ComputeArd(tree, best->repeaters, best->drivers, tech);
  std::ostringstream os;
  DescribeSolution(os, tree, tech, *best, ard);
  const std::string out = os.str();
  EXPECT_NE(out.find("repeaters placed: "), std::string::npos);
  EXPECT_NE(out.find("buf1x-pair"), std::string::npos);
  EXPECT_NE(out.find("critical source terminal"), std::string::npos);
  // At least one sized driver should be reported with a clean name.
  bool has_driver_line = out.find("driver option") != std::string::npos;
  if (has_driver_line) {
    EXPECT_NE(out.find("x/"), std::string::npos);
    EXPECT_EQ(out.find("1.000000"), std::string::npos)
        << "driver names must not carry raw double formatting";
  }
}

TEST(Reporting, SizingLibraryNamesAreClean) {
  const auto lib = DriverSizingLibrary(DefaultTechnology(), {1.0, 2.5});
  ASSERT_EQ(lib.size(), 4u);
  EXPECT_EQ(lib[0].name, "1x/1x");
  EXPECT_EQ(lib[1].name, "1x/2.5x");
  EXPECT_EQ(lib[3].name, "2.5x/2.5x");
}

TEST(Reporting, ScaledBufferNameIsClean) {
  EXPECT_EQ(ScaledBuffer(DefaultBuffer1X(), 3.0).name, "buf1x-3x");
}

}  // namespace
}  // namespace msn
