#include "common/interval_set.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/numeric.h"

namespace msn {
namespace {

TEST(Interval, EmptyAndLength) {
  EXPECT_TRUE((Interval{2.0, 2.0}).Empty());
  EXPECT_TRUE((Interval{3.0, 1.0}).Empty());
  EXPECT_FALSE((Interval{1.0, 3.0}).Empty());
  EXPECT_DOUBLE_EQ((Interval{1.0, 3.0}).Length(), 2.0);
  EXPECT_DOUBLE_EQ((Interval{3.0, 1.0}).Length(), 0.0);
}

TEST(Interval, ContainsHalfOpen) {
  const Interval i{1.0, 2.0};
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(1.5));
  EXPECT_FALSE(i.Contains(2.0));
  EXPECT_FALSE(i.Contains(0.99));
}

TEST(IntervalSet, DefaultIsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0u);
  EXPECT_FALSE(s.Contains(0.0));
  EXPECT_DOUBLE_EQ(s.TotalLength(), 0.0);
}

TEST(IntervalSet, SingletonConstructor) {
  IntervalSet s(1.0, 4.0);
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(1.0));
  EXPECT_TRUE(s.Contains(3.999));
  EXPECT_FALSE(s.Contains(4.0));
  EXPECT_DOUBLE_EQ(s.TotalLength(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
}

TEST(IntervalSet, EmptyIntervalYieldsEmptySet) {
  EXPECT_TRUE(IntervalSet(2.0, 2.0).Empty());
  EXPECT_TRUE(IntervalSet(5.0, 2.0).Empty());
}

TEST(IntervalSet, CanonicalizationMergesOverlaps) {
  IntervalSet s(std::vector<Interval>{
      Interval{0.0, 2.0}, Interval{1.0, 3.0}, Interval{5.0, 6.0}});
  EXPECT_EQ(s.Size(), 2u);
  EXPECT_EQ(s, IntervalSet(std::vector<Interval>{Interval{0.0, 3.0}, Interval{5.0, 6.0}}));
}

TEST(IntervalSet, CanonicalizationMergesAdjacent) {
  IntervalSet s(std::vector<Interval>{Interval{0.0, 1.0}, Interval{1.0, 2.0}});
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(1.0));
}

TEST(IntervalSet, NonNegativeRealsIsUnbounded) {
  const IntervalSet s = IntervalSet::NonNegativeReals();
  EXPECT_TRUE(s.Contains(0.0));
  EXPECT_TRUE(s.Contains(1e18));
  EXPECT_FALSE(s.Contains(-0.001));
  EXPECT_TRUE(std::isinf(s.TotalLength()));
}

TEST(IntervalSet, UnionDisjointAndOverlapping) {
  const IntervalSet a(0.0, 2.0);
  const IntervalSet b(5.0, 7.0);
  EXPECT_EQ(a.Union(b).Size(), 2u);
  const IntervalSet c(1.0, 6.0);
  EXPECT_EQ(a.Union(b).Union(c), IntervalSet(0.0, 7.0));
}

TEST(IntervalSet, IntersectBasic) {
  const IntervalSet a(
      std::vector<Interval>{Interval{0.0, 4.0}, Interval{6.0, 9.0}});
  const IntervalSet b(std::vector<Interval>{Interval{2.0, 7.0}});
  EXPECT_EQ(a.Intersect(b),
            IntervalSet(std::vector<Interval>{Interval{2.0, 4.0}, Interval{6.0, 7.0}}));
  EXPECT_EQ(b.Intersect(a), a.Intersect(b));
}

TEST(IntervalSet, IntersectWithEmpty) {
  EXPECT_TRUE(IntervalSet(0.0, 5.0).Intersect(IntervalSet()).Empty());
  EXPECT_TRUE(IntervalSet().Intersect(IntervalSet(0.0, 5.0)).Empty());
}

TEST(IntervalSet, IntersectUnbounded) {
  const IntervalSet all = IntervalSet::NonNegativeReals();
  const IntervalSet a(3.0, 8.0);
  EXPECT_EQ(all.Intersect(a), a);
}

TEST(IntervalSet, SubtractMiddle) {
  const IntervalSet a(0.0, 10.0);
  const IntervalSet hole(3.0, 4.0);
  const IntervalSet d = a.Subtract(hole);
  EXPECT_EQ(d, IntervalSet(std::vector<Interval>{Interval{0.0, 3.0}, Interval{4.0, 10.0}}));
}

TEST(IntervalSet, SubtractEverything) {
  EXPECT_TRUE(IntervalSet(1.0, 2.0)
                  .Subtract(IntervalSet::NonNegativeReals())
                  .Empty());
}

TEST(IntervalSet, SubtractNothing) {
  const IntervalSet a(1.0, 2.0);
  EXPECT_EQ(a.Subtract(IntervalSet()), a);
  EXPECT_EQ(a.Subtract(IntervalSet(5.0, 9.0)), a);
}

TEST(IntervalSet, SubtractMultipleHoles) {
  const IntervalSet a(0.0, 10.0);
  const IntervalSet holes(std::vector<Interval>{
      Interval{1.0, 2.0}, Interval{4.0, 5.0}, Interval{9.0, 20.0}});
  const IntervalSet d = a.Subtract(holes);
  EXPECT_EQ(d, IntervalSet(std::vector<Interval>{Interval{0.0, 1.0}, Interval{2.0, 4.0},
                             Interval{5.0, 9.0}}));
}

TEST(IntervalSet, SubtractFromUnbounded) {
  const IntervalSet all = IntervalSet::NonNegativeReals();
  const IntervalSet d = all.Subtract(IntervalSet(2.0, 3.0));
  EXPECT_TRUE(d.Contains(0.0));
  EXPECT_FALSE(d.Contains(2.5));
  EXPECT_TRUE(d.Contains(3.0));
  EXPECT_TRUE(d.Contains(1e12));
}

TEST(IntervalSet, ShiftPositive) {
  const IntervalSet a(1.0, 3.0);
  EXPECT_EQ(a.Shift(2.0), IntervalSet(3.0, 5.0));
}

TEST(IntervalSet, ShiftNegativeClipsAtZero) {
  const IntervalSet a(1.0, 3.0);
  EXPECT_EQ(a.Shift(-2.0), IntervalSet(0.0, 1.0));
  EXPECT_TRUE(a.Shift(-3.0).Empty());
}

TEST(IntervalSet, ShiftUnboundedStaysUnbounded) {
  const IntervalSet all = IntervalSet::NonNegativeReals();
  const IntervalSet s = all.Shift(-5.0);
  EXPECT_TRUE(s.Contains(0.0));
  EXPECT_TRUE(s.Contains(1e15));
}

TEST(IntervalSet, MinOfEmptyThrows) {
  EXPECT_THROW(IntervalSet().Min(), CheckError);
}

TEST(IntervalSet, ContainsBinarySearchManyIntervals) {
  std::vector<Interval> iv;
  for (int i = 0; i < 100; ++i) {
    iv.push_back({static_cast<double>(2 * i),
                  static_cast<double>(2 * i + 1)});
  }
  const IntervalSet s(std::move(iv));
  EXPECT_EQ(s.Size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(s.Contains(2.0 * i + 0.5));
    EXPECT_FALSE(s.Contains(2.0 * i + 1.5));
  }
}

}  // namespace
}  // namespace msn
