#include "baseline/greedy.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/ard.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

TEST(Greedy, TrajectoryIsStrictlyImproving) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 15'000.0, 10);
  const GreedyResult g = GreedyMsri(tree, tech);
  ASSERT_GE(g.ard_trajectory_ps.size(), 2u);
  for (std::size_t i = 1; i < g.ard_trajectory_ps.size(); ++i) {
    EXPECT_LT(g.ard_trajectory_ps[i], g.ard_trajectory_ps[i - 1]);
  }
  EXPECT_DOUBLE_EQ(g.ard_trajectory_ps.back(), g.best.ard_ps);
  EXPECT_GT(g.moves_evaluated, 0u);
}

TEST(Greedy, FinalStateVerifiesAgainstArdEngine) {
  const Technology tech = SmallTech();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 8000, 800.0);
    const GreedyResult g = GreedyMsri(tree, tech);
    const double check =
        ComputeArd(tree, g.best.repeaters,
                   DriverAssignment(tree.NumTerminals()), tech)
            .ard_ps;
    EXPECT_NEAR(check, g.best.ard_ps, 1e-9) << "seed " << seed;
    EXPECT_EQ(g.best.num_repeaters, g.best.repeaters.CountPlaced());
  }
}

TEST(Greedy, NeverBeatsTheOptimalDp) {
  const Technology tech = SmallTech();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 8000, 800.0);
    const GreedyResult g = GreedyMsri(tree, tech);
    const MsriResult dp = RunMsri(tree, tech);
    EXPECT_GE(g.best.ard_ps, dp.MinArd()->ard_ps - 1e-6)
        << "seed " << seed << ": a heuristic cannot beat the optimum";
    // And the DP can match the greedy diameter at most at greedy's cost.
    const TradeoffPoint* match = dp.MinCostFeasible(g.best.ard_ps + 1e-9);
    ASSERT_NE(match, nullptr);
    EXPECT_LE(match->cost, g.best.cost + 1e-9);
  }
}

TEST(Greedy, RespectsParityWithInverters) {
  Technology tech = DefaultTechnology();
  tech.repeaters = {Repeater::FromInverterPair(DefaultInverter1X())};
  const RcTree tree = TwoPinLine(tech, 12'000.0, 8);
  const GreedyResult g = GreedyMsri(tree, tech);
  EXPECT_TRUE(ParityFeasible(tree, g.best.repeaters, tech));
  EXPECT_EQ(g.best.num_repeaters % 2, 0u);
}

TEST(Greedy, EmptyLibraryRejected) {
  Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  tech.repeaters.clear();
  EXPECT_THROW(GreedyMsri(tree, tech), CheckError);
}

}  // namespace
}  // namespace msn
