// Randomized algebraic property tests for the small foundations the DP
// leans on: interval-set algebra and the quantized wire-cost helper.
#include <gtest/gtest.h>

#include "common/interval_set.h"
#include "common/rng.h"
#include "core/msri.h"

namespace msn {
namespace {

IntervalSet RandomSet(Rng& rng) {
  std::vector<Interval> iv;
  const int n = static_cast<int>(rng.UniformInt(0, 6));
  for (int i = 0; i < n; ++i) {
    const double lo = rng.UniformReal(0.0, 50.0);
    iv.push_back({lo, lo + rng.UniformReal(0.0, 10.0)});
  }
  if (rng.Chance(0.3)) iv.push_back({rng.UniformReal(0.0, 60.0), kInf});
  return IntervalSet(std::move(iv));
}

class IntervalAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalAlgebra, SetLawsHoldPointwise) {
  Rng rng(GetParam());
  const IntervalSet a = RandomSet(rng);
  const IntervalSet b = RandomSet(rng);
  const IntervalSet all = IntervalSet::NonNegativeReals();

  const IntervalSet a_union_b = a.Union(b);
  const IntervalSet a_inter_b = a.Intersect(b);
  const IntervalSet a_minus_b = a.Subtract(b);
  const IntervalSet compl_a = all.Subtract(a);
  const IntervalSet demorgan = all.Subtract(a_union_b);
  const IntervalSet compl_inter = compl_a.Intersect(all.Subtract(b));

  for (int i = 0; i < 400; ++i) {
    const double x = rng.UniformReal(0.0, 80.0);
    const bool in_a = a.Contains(x);
    const bool in_b = b.Contains(x);
    EXPECT_EQ(a_union_b.Contains(x), in_a || in_b) << x;
    EXPECT_EQ(a_inter_b.Contains(x), in_a && in_b) << x;
    EXPECT_EQ(a_minus_b.Contains(x), in_a && !in_b) << x;
    EXPECT_EQ(compl_a.Contains(x), !in_a) << x;
    // De Morgan: not(a or b) == (not a) and (not b).
    EXPECT_EQ(demorgan.Contains(x), compl_inter.Contains(x)) << x;
  }
}

TEST_P(IntervalAlgebra, ShiftCommutesWithMembership) {
  Rng rng(GetParam() + 1000);
  const IntervalSet a = RandomSet(rng);
  const double delta = rng.UniformReal(-20.0, 20.0);
  const IntervalSet shifted = a.Shift(delta);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformReal(0.0, 80.0);
    // shifted contains x iff a contains x - delta (and x - delta was not
    // clipped below zero membership — the clip only removes x < 0).
    EXPECT_EQ(shifted.Contains(x), a.Contains(x - delta)) << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebra,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(WireAreaCostHelper, QuantizationAndBaseWidth) {
  // Base width is free.
  EXPECT_DOUBLE_EQ(WireAreaCost(0.0005, 1234.0, 1.0, 0.05), 0.0);
  // Unquantized raw cost.
  EXPECT_DOUBLE_EQ(WireAreaCost(0.001, 500.0, 2.0, 0.0), 0.5);
  // Rounded to the quantum grid.
  EXPECT_DOUBLE_EQ(WireAreaCost(0.0005, 450.0, 2.0, 0.05), 0.25);  // 0.225.
  EXPECT_DOUBLE_EQ(WireAreaCost(0.0005, 450.0, 3.0, 0.05), 0.45);
  // Monotone in width at fixed length.
  EXPECT_LE(WireAreaCost(0.0005, 1000.0, 2.0, 0.05),
            WireAreaCost(0.0005, 1000.0, 3.0, 0.05));
}

}  // namespace
}  // namespace msn
