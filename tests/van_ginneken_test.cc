#include "baseline/van_ginneken.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "netgen/netgen.h"
#include "test_util.h"

namespace msn {
namespace {

/// A net where terminal 0 is the only source and all others are sinks.
RcTree SingleSourceNet(const Technology& tech, std::uint64_t seed,
                       std::size_t n, double spacing) {
  NetConfig cfg;
  cfg.seed = seed;
  cfg.num_terminals = n;
  cfg.grid_um = 8000;
  cfg.insertion_spacing_um = spacing;
  RcTree tree = BuildExperimentNet(cfg, tech);
  for (std::size_t t = 0; t < n; ++t) {
    TerminalParams& p = tree.MutableTerminal(t);
    if (t == 0) {
      p.is_sink = false;
    } else {
      p.is_source = false;
    }
  }
  return tree;
}

TEST(VanGinneken, ParetoPointsVerifyAgainstArdEngine) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SingleSourceNet(tech, 4, 5, 800.0);
  const VanGinnekenResult vg = RunVanGinneken(tree, tech, 0);
  ASSERT_FALSE(vg.pareto.empty());
  for (const TradeoffPoint& p : vg.pareto) {
    const ArdResult check = ComputeArd(
        tree, p.repeaters, DriverAssignment(tree.NumTerminals()), tech);
    EXPECT_NEAR(check.ard_ps, p.ard_ps, 1e-6);
  }
}

TEST(VanGinneken, RejectsNonSource) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SingleSourceNet(tech, 4, 5, 800.0);
  EXPECT_THROW(RunVanGinneken(tree, tech, 1), CheckError);
  EXPECT_THROW(RunVanGinneken(tree, tech, 99), CheckError);
}

TEST(VanGinneken, BuffersHelpOnLongLine) {
  const Technology tech = testing::SmallTech();
  RcTree tree = testing::TwoPinLine(tech, 20'000.0, 12);
  tree.MutableTerminal(0).is_sink = false;
  tree.MutableTerminal(1).is_source = false;
  const VanGinnekenResult vg = RunVanGinneken(tree, tech, 0);
  ASSERT_GE(vg.pareto.size(), 2u);
  EXPECT_LT(vg.pareto.back().ard_ps, 0.7 * vg.pareto.front().ard_ps);
}

/// On single-source nets, MSRI (rooted at the source) must reproduce the
/// van Ginneken frontier exactly: the multisource DP generalizes it.
class VgMsriAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VgMsriAgreement, FrontiersMatch) {
  const std::uint64_t seed = GetParam();
  for (const Technology& tech :
       {testing::SmallTech(), testing::AsymmetricTech(),
        testing::TwoRepeaterTech()}) {
    const RcTree tree = SingleSourceNet(tech, seed, 4, 900.0);
    const VanGinnekenResult vg = RunVanGinneken(tree, tech, 0);

    MsriOptions opt;
    opt.root = tree.TerminalNode(0);
    const MsriResult msri = RunMsri(tree, tech, opt);

    ASSERT_EQ(vg.pareto.size(), msri.Pareto().size()) << "seed " << seed;
    for (std::size_t i = 0; i < vg.pareto.size(); ++i) {
      EXPECT_NEAR(vg.pareto[i].cost, msri.Pareto()[i].cost, 1e-9);
      EXPECT_NEAR(vg.pareto[i].ard_ps, msri.Pareto()[i].ard_ps, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VgMsriAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace msn
