#include "tech/tech.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace msn {
namespace {

TEST(Tech, DefaultTechnologyIsValid) {
  const Technology tech = DefaultTechnology();
  EXPECT_GT(tech.wire.res_per_um, 0.0);
  EXPECT_GT(tech.wire.cap_per_um, 0.0);
  ASSERT_EQ(tech.repeaters.size(), 1u);
  EXPECT_TRUE(tech.repeaters[0].Symmetric());
  EXPECT_DOUBLE_EQ(tech.prev_stage_res, 400.0);
  EXPECT_DOUBLE_EQ(tech.next_stage_cap, 0.2);
}

TEST(Tech, RepeaterFromBufferPair) {
  const Buffer b = DefaultBuffer1X();
  const Repeater r = Repeater::FromBufferPair(b);
  EXPECT_DOUBLE_EQ(r.intrinsic_ab, b.intrinsic_ps);
  EXPECT_DOUBLE_EQ(r.intrinsic_ba, b.intrinsic_ps);
  EXPECT_DOUBLE_EQ(r.res_ab, b.output_res);
  EXPECT_DOUBLE_EQ(r.cap_a, b.input_cap);
  EXPECT_DOUBLE_EQ(r.cap_b, b.input_cap);
  EXPECT_DOUBLE_EQ(r.cost, 2.0 * b.cost);  // A *pair* of buffers.
  EXPECT_TRUE(r.Symmetric());
}

TEST(Tech, ScaledBufferLaw) {
  const Buffer b = DefaultBuffer1X();
  const Buffer b3 = ScaledBuffer(b, 3.0);
  EXPECT_DOUBLE_EQ(b3.output_res, b.output_res / 3.0);
  EXPECT_DOUBLE_EQ(b3.input_cap, b.input_cap * 3.0);
  EXPECT_DOUBLE_EQ(b3.cost, 3.0 * b.cost);
  EXPECT_DOUBLE_EQ(b3.intrinsic_ps, b.intrinsic_ps);
}

TEST(Tech, ScaledBufferRejectsNonPositive) {
  EXPECT_THROW(ScaledBuffer(DefaultBuffer1X(), 0.0), CheckError);
  EXPECT_THROW(ScaledBuffer(DefaultBuffer1X(), -2.0), CheckError);
}

TEST(Tech, OrientationAccessors) {
  Repeater r;
  r.intrinsic_ab = 1.0;
  r.res_ab = 2.0;
  r.intrinsic_ba = 3.0;
  r.res_ba = 4.0;
  r.cap_a = 5.0;
  r.cap_b = 6.0;
  // A-side up: down direction is A->B, up direction is B->A.
  EXPECT_DOUBLE_EQ(r.IntrinsicDown(RepeaterOrientation::kASideUp), 1.0);
  EXPECT_DOUBLE_EQ(r.ResDown(RepeaterOrientation::kASideUp), 2.0);
  EXPECT_DOUBLE_EQ(r.IntrinsicUp(RepeaterOrientation::kASideUp), 3.0);
  EXPECT_DOUBLE_EQ(r.ResUp(RepeaterOrientation::kASideUp), 4.0);
  EXPECT_DOUBLE_EQ(r.CapUp(RepeaterOrientation::kASideUp), 5.0);
  EXPECT_DOUBLE_EQ(r.CapDown(RepeaterOrientation::kASideUp), 6.0);
  // B-side up mirrors everything.
  EXPECT_DOUBLE_EQ(r.IntrinsicDown(RepeaterOrientation::kBSideUp), 3.0);
  EXPECT_DOUBLE_EQ(r.ResDown(RepeaterOrientation::kBSideUp), 4.0);
  EXPECT_DOUBLE_EQ(r.IntrinsicUp(RepeaterOrientation::kBSideUp), 1.0);
  EXPECT_DOUBLE_EQ(r.CapUp(RepeaterOrientation::kBSideUp), 6.0);
  EXPECT_DOUBLE_EQ(r.CapDown(RepeaterOrientation::kBSideUp), 5.0);
}

TEST(Tech, ResolveTerminalAddsStageDelays) {
  const Technology tech = DefaultTechnology();
  TerminalParams p = DefaultTerminal(tech);
  p.arrival_ps = 100.0;
  p.downstream_ps = 50.0;
  const EffectiveTerminal e = ResolveTerminal(p);
  const Buffer b = DefaultBuffer1X();
  EXPECT_DOUBLE_EQ(e.arrival_ps, 100.0 + 400.0 * b.input_cap);
  EXPECT_DOUBLE_EQ(e.downstream_ps,
                   50.0 + b.intrinsic_ps + b.output_res * 0.2);
  EXPECT_DOUBLE_EQ(e.pin_cap, b.input_cap);
  EXPECT_DOUBLE_EQ(e.driver_res, b.output_res);
}

TEST(Tech, DriverSizingLibraryCartesianProduct) {
  const Technology tech = DefaultTechnology();
  const auto lib = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(lib.size(), 16u);
  // The 1x/1x entry must match the default option.
  const TerminalOption def = Default1xOption(tech);
  EXPECT_DOUBLE_EQ(lib[0].cost, def.cost);
  EXPECT_DOUBLE_EQ(lib[0].driver_res, def.driver_res);
  EXPECT_DOUBLE_EQ(lib[0].pin_cap, def.pin_cap);
  EXPECT_DOUBLE_EQ(lib[0].arrival_extra_ps, def.arrival_extra_ps);
  EXPECT_DOUBLE_EQ(lib[0].downstream_extra_ps, def.downstream_extra_ps);
}

TEST(Tech, DriverSizingTradeoffsMonotone) {
  const Technology tech = DefaultTechnology();
  const auto lib = DriverSizingLibrary(tech, {1.0, 4.0});
  // Larger driver: lower bus resistance but more PI-side loading.
  const TerminalOption& small = lib[0];   // 1x/1x.
  const TerminalOption& big = lib[3];     // 4x/4x.
  EXPECT_LT(big.driver_res, small.driver_res);
  EXPECT_GT(big.arrival_extra_ps, small.arrival_extra_ps);
  EXPECT_GT(big.pin_cap, small.pin_cap);
  EXPECT_LT(big.downstream_extra_ps, small.downstream_extra_ps);
  EXPECT_GT(big.cost, small.cost);
}

TEST(Tech, ValidateRejectsBadWire) {
  Technology tech = DefaultTechnology();
  tech.wire.res_per_um = 0.0;
  EXPECT_THROW(tech.Validate(), CheckError);
  tech = DefaultTechnology();
  tech.wire.cap_per_um = -1.0;
  EXPECT_THROW(tech.Validate(), CheckError);
}

TEST(Tech, ValidateRejectsBadRepeater) {
  Technology tech = DefaultTechnology();
  tech.repeaters[0].res_ab = 0.0;
  EXPECT_THROW(tech.Validate(), CheckError);
  tech = DefaultTechnology();
  tech.repeaters[0].cap_b = -0.01;
  EXPECT_THROW(tech.Validate(), CheckError);
  tech = DefaultTechnology();
  tech.repeaters[0].cost = -1.0;
  EXPECT_THROW(tech.Validate(), CheckError);
}

TEST(Tech, SizingLibraryRequiresSizes) {
  EXPECT_THROW(DriverSizingLibrary(DefaultTechnology(), {}), CheckError);
}

}  // namespace
}  // namespace msn
