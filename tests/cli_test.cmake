# End-to-end test of the msn_cli binary: gen -> optimize -> ard -> render
# round-trip in a scratch directory.  Invoked by CTest with -DCLI=<path>.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to msn_cli>")
endif()

set(WORK ${CMAKE_CURRENT_BINARY_DIR}/cli_scratch)
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli expect_rc out_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    WORKING_DIRECTORY ${WORK}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "msn_cli ${ARGN} exited ${rc} (wanted"
                        " ${expect_rc}): ${out} ${err}")
  endif()
  # Diagnostics go to stderr; concatenate so callers can match either.
  set(${out_var} "${out}${err}" PARENT_SCOPE)
endfunction()

# Generate a net.
run_cli(0 out gen --terminals 6 --seed 5 -o net.msn)
if(NOT out MATCHES "6 terminals")
  message(FATAL_ERROR "gen output missing terminal count: ${out}")
endif()
if(NOT EXISTS ${WORK}/net.msn)
  message(FATAL_ERROR "gen did not write net.msn")
endif()

# Base diameter report.
run_cli(0 out ard net.msn)
if(NOT out MATCHES "ARD: ")
  message(FATAL_ERROR "ard output malformed: ${out}")
endif()

# Optimize with an achievable spec and persist the solution.
run_cli(0 out optimize net.msn --spec 950 -o sol.msn)
if(NOT out MATCHES "repeaters placed")
  message(FATAL_ERROR "optimize output missing solution: ${out}")
endif()
if(NOT EXISTS ${WORK}/sol.msn)
  message(FATAL_ERROR "optimize did not write sol.msn")
endif()

# Re-evaluating the saved solution must beat the spec.
run_cli(0 out ard net.msn sol.msn)
string(REGEX MATCH "ARD: ([0-9.]+)" _ "${out}")
if(NOT CMAKE_MATCH_1)
  message(FATAL_ERROR "could not parse ARD from: ${out}")
endif()
if(CMAKE_MATCH_1 GREATER 950)
  message(FATAL_ERROR "saved solution misses the spec: ${CMAKE_MATCH_1}")
endif()

# Render with repeater markers.
run_cli(0 out render net.msn sol.msn)
if(NOT out MATCHES "#")
  message(FATAL_ERROR "render shows no repeater markers: ${out}")
endif()

# An unachievable spec reports failure with exit code 1.
run_cli(1 out optimize net.msn --spec 1)

# Unknown subcommands and missing files fail cleanly.
run_cli(2 out bogus)
run_cli(1 out ard missing.msn)

# Malformed net files fail with exit code 1 and a one-line error naming
# the offending line, never an unhandled exception or CHECK abort.
file(WRITE ${WORK}/bad.msn "msn-net 1\nnode 0 terminal\nend\n")
run_cli(1 out optimize bad.msn)
if(NOT out MATCHES "error: .*line 2")
  message(FATAL_ERROR "malformed-net error lacks a line number: ${out}")
endif()

file(WRITE ${WORK}/noheader.msn "hello\n")
run_cli(1 out ard noheader.msn)
if(NOT out MATCHES "error: ")
  message(FATAL_ERROR "missing-header failure not reported: ${out}")
endif()

# Non-numeric flag values are a usage error, not an uncaught std::stod.
run_cli(1 out optimize net.msn --spec abc)
if(NOT out MATCHES "expects a number")
  message(FATAL_ERROR "bad --spec value not diagnosed: ${out}")
endif()

# Unknown flags print the usage text to stderr and exit 2 — they must
# never be silently ignored (a typo'd --mode would otherwise run the
# wrong optimization and exit 0).
run_cli(2 out optimize net.msn --bogus-flag 1)
if(NOT out MATCHES "unknown flag '--bogus-flag'" OR NOT out MATCHES "usage:")
  message(FATAL_ERROR "unknown flag not rejected with usage: ${out}")
endif()
run_cli(2 out gen --terminals 4 --stats -o x.msn)  # valid elsewhere only
run_cli(2 out serve --port)                        # flag missing a value
if(NOT out MATCHES "needs a value")
  message(FATAL_ERROR "valueless --port not diagnosed: ${out}")
endif()
run_cli(2 out serve extra-positional)

# --- gen-design / close-timing (docs/STA.md) -------------------------

# Generate a small design; the .msd and every referenced .msn appear.
run_cli(0 out gen-design --nets 4 --seed 11 -o d1)
if(NOT out MATCHES "4 nets")
  message(FATAL_ERROR "gen-design output missing net count: ${out}")
endif()
if(NOT EXISTS ${WORK}/d1/design.msd OR NOT EXISTS ${WORK}/d1/net_0003.msn)
  message(FATAL_ERROR "gen-design did not write the design files")
endif()

# Same seed, byte-identical files; different seed, different bytes.
run_cli(0 out gen-design --nets 4 --seed 11 -o d2)
file(SHA256 ${WORK}/d1/design.msd h1)
file(SHA256 ${WORK}/d2/design.msd h2)
if(NOT h1 STREQUAL h2)
  message(FATAL_ERROR "gen-design is not deterministic in the seed")
endif()
file(SHA256 ${WORK}/d1/net_0002.msn n1)
file(SHA256 ${WORK}/d2/net_0002.msn n2)
if(NOT n1 STREQUAL n2)
  message(FATAL_ERROR "gen-design nets are not deterministic in the seed")
endif()
run_cli(0 out gen-design --nets 4 --seed 12 -o d3)
file(SHA256 ${WORK}/d3/design.msd h3)
if(h1 STREQUAL h3)
  message(FATAL_ERROR "gen-design ignores the seed")
endif()

# Close timing on the generated design; the report ends in a verdict.
run_cli(0 out close-timing d1/design.msd --jobs 2 --max-iters 8)
if(NOT out MATCHES "converged: " OR NOT out MATCHES "final worst slack")
  message(FATAL_ERROR "close-timing report malformed: ${out}")
endif()

# Exit-code hygiene for the new subcommands: unknown flags are usage
# errors (stderr usage text + exit 2), runtime failures are exit 1.
run_cli(2 out close-timing d1/design.msd --bogus-flag 1)
if(NOT out MATCHES "unknown flag '--bogus-flag'" OR NOT out MATCHES "usage:")
  message(FATAL_ERROR "close-timing unknown flag not rejected: ${out}")
endif()
run_cli(2 out gen-design --nets 2 --port 7 -o dx)  # valid elsewhere only
run_cli(2 out gen-design --nets 2 -o dx extra-positional)
run_cli(1 out close-timing missing.msd)
run_cli(1 out close-timing d1/design.msd --jobs 0)
run_cli(1 out close-timing d1/design.msd --jobs abc)
if(NOT out MATCHES "expects a number")
  message(FATAL_ERROR "bad --jobs value not diagnosed: ${out}")
endif()

# Malformed .msd files fail with exit 1 and a line-numbered one-liner.
file(WRITE ${WORK}/bad.msd
     "msn-design 1\nnet n0 net.msn u0.a u0.b\nend\n")
run_cli(1 out close-timing bad.msd)
if(NOT out MATCHES "error: .*line 2")
  message(FATAL_ERROR "malformed-design error lacks a line number: ${out}")
endif()

# The serve loop answers on stdin/stdout and exits 0 on shutdown.
file(WRITE ${WORK}/serve_input.txt
     "{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n")
execute_process(
  COMMAND ${CLI} serve
  INPUT_FILE ${WORK}/serve_input.txt
  WORKING_DIRECTORY ${WORK}
  RESULT_VARIABLE serve_rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "serve exited ${serve_rc}: ${serve_out} ${serve_err}")
endif()
if(NOT serve_out MATCHES "msn-service-stats-v2")
  message(FATAL_ERROR "serve stats response malformed: ${serve_out}")
endif()

message(STATUS "msn_cli end-to-end test passed")
