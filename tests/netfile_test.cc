#include "io/netfile.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "netgen/netgen.h"
#include "test_util.h"

namespace msn {
namespace {

TEST(NetFile, RoundTripPreservesStructure) {
  const Technology tech = DefaultTechnology();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    NetConfig cfg;
    cfg.seed = seed;
    cfg.num_terminals = 7;
    const RcTree tree = BuildExperimentNet(cfg, tech);
    const RcTree copy = RoundTripNet(tree);
    ASSERT_EQ(copy.NumNodes(), tree.NumNodes());
    ASSERT_EQ(copy.NumEdges(), tree.NumEdges());
    ASSERT_EQ(copy.NumTerminals(), tree.NumTerminals());
    ASSERT_EQ(copy.InsertionPoints().size(),
              tree.InsertionPoints().size());
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      EXPECT_EQ(copy.Node(v).kind, tree.Node(v).kind);
      EXPECT_EQ(copy.Node(v).pos, tree.Node(v).pos);
      EXPECT_EQ(copy.Node(v).terminal_index, tree.Node(v).terminal_index);
    }
    for (std::size_t e = 0; e < tree.NumEdges(); ++e) {
      EXPECT_EQ(copy.Edge(e).a, tree.Edge(e).a);
      EXPECT_EQ(copy.Edge(e).b, tree.Edge(e).b);
      EXPECT_DOUBLE_EQ(copy.Edge(e).length_um, tree.Edge(e).length_um);
    }
  }
}

TEST(NetFile, RoundTripPreservesTiming) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 11;
  cfg.num_terminals = 8;
  RcTree tree = BuildExperimentNet(cfg, tech);
  tree.MutableTerminal(2).arrival_ps = 123.0;
  tree.MutableTerminal(5).is_source = false;
  const RcTree copy = RoundTripNet(tree);
  // Electrically identical nets yield bit-comparable ARD.
  EXPECT_NEAR(ComputeArd(copy, tech).ard_ps, ComputeArd(tree, tech).ard_ps,
              1e-9);
  EXPECT_DOUBLE_EQ(copy.Terminal(2).arrival_ps, 123.0);
  EXPECT_FALSE(copy.Terminal(5).is_source);
}

TEST(NetFile, SolutionRoundTrip) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 4;
  cfg.num_terminals = 6;
  const RcTree tree = BuildExperimentNet(cfg, tech);

  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0});
  const MsriResult result = RunMsri(tree, tech, opt);
  const TradeoffPoint* best = result.MinArd();
  ASSERT_NE(best, nullptr);

  std::stringstream ss;
  WriteSolution(ss, tree, *best);
  const SolutionFile sol = ReadSolution(ss, tree);

  const double orig =
      ComputeArd(tree, best->repeaters, best->drivers, tech).ard_ps;
  const double loaded =
      ComputeArd(tree, sol.repeaters, sol.drivers, tech).ard_ps;
  EXPECT_NEAR(loaded, orig, 1e-9);
  EXPECT_EQ(sol.repeaters.CountPlaced(), best->num_repeaters);
}

TEST(NetFile, WireWidthsRoundTrip) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = testing::TwoPinLine(tech, 4000.0, 3);
  TradeoffPoint p{0.0,
                  0.0,
                  RepeaterAssignment(tree.NumNodes()),
                  DriverAssignment(tree.NumTerminals()),
                  0,
                  std::vector<double>(tree.NumEdges(), 1.0)};
  p.wire_widths[1] = 2.0;
  p.wire_widths[3] = 3.0;
  std::stringstream ss;
  WriteSolution(ss, tree, p);
  const SolutionFile sol = ReadSolution(ss, tree);
  ASSERT_EQ(sol.wire_widths.size(), tree.NumEdges());
  EXPECT_DOUBLE_EQ(sol.wire_widths[0], 1.0);
  EXPECT_DOUBLE_EQ(sol.wire_widths[1], 2.0);
  EXPECT_DOUBLE_EQ(sol.wire_widths[3], 3.0);
}

TEST(NetFile, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a tiny two-pin net\n"
     << "msn-net 1\n\n"
     << "wire 0.04 0.000118  # ohm/um, pF/um\n"
     << "node 0 terminal 0 0\n"
     << "node 1 terminal 1000 0\n"
     << "terminal 0 0 0 1 1 0.05 180 36.4 20 72.4 2\n"
     << "terminal 1 0 0 1 1 0.05 180 36.4 20 72.4 2\n"
     << "edge 0 1 1000\n"
     << "end\n";
  const RcTree tree = ReadNet(ss);
  EXPECT_EQ(tree.NumTerminals(), 2u);
  EXPECT_DOUBLE_EQ(tree.Terminal(0).driver.driver_res, 180.0);
}

TEST(NetFile, MalformedInputsRejectedWithLineNumbers) {
  auto expect_throw = [](const std::string& text, const char* what) {
    std::stringstream ss(text);
    try {
      ReadNet(ss);
      FAIL() << "expected failure: " << what;
    } catch (const CheckError& e) {
      SUCCEED();
    }
  };
  expect_throw("node 0 terminal 0 0\n", "missing header");
  expect_throw("msn-net 2\nend\n", "bad version");
  expect_throw("msn-net 1\nwire 0.04 0.0001\nend\n", "no nodes");
  expect_throw(
      "msn-net 1\nwire 0.04 0.0001\nnode 0 bogus 0 0\nend\n",
      "bad kind");
  expect_throw(
      "msn-net 1\nwire 0.04 0.0001\nnode 0 steiner 0 0\n"
      "node 0 steiner 1 1\nend\n",
      "duplicate node");
  expect_throw(
      "msn-net 1\nwire 0.04 0.0001\nnode 0 steiner 0 0\n"
      "node 2 steiner 1 1\nend\n",
      "non-dense ids");
  expect_throw(
      "msn-net 1\nwire 0.04 0.0001\nnode 0 terminal 0 0\nend\n",
      "terminal without record");
}

TEST(NetFile, SolutionRejectsBadTargets) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  {
    std::stringstream ss("repeater 0 0 1\n");  // Node 0 is a terminal.
    EXPECT_THROW(ReadSolution(ss, tree), CheckError);
  }
  {
    std::stringstream ss("width 99 2.0\n");
    EXPECT_THROW(ReadSolution(ss, tree), CheckError);
  }
  {
    std::stringstream ss("driver 7 2 20 180 36.4 0.05 72.4 x\n");
    EXPECT_THROW(ReadSolution(ss, tree), CheckError);
  }
}

}  // namespace
}  // namespace msn
