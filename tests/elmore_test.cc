#include "elmore/delay.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::TwoPinLine;

/// Hand-computed Elmore delay on a bare two-pin net.
TEST(Elmore, TwoPinHandComputed) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  const TerminalParams tp = DefaultTerminal(tech);
  const NodeId a = tree.AddTerminal(tp, {0, 0});
  const NodeId b = tree.AddTerminal(tp, {1000, 0});
  tree.AddEdge(a, b, 1000.0);

  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const SourceDelays d = ComputeSourceDelays(tree, 0, none, drivers, tech);

  const EffectiveTerminal eff = ResolveTerminal(tp);
  const double rw = 1000.0 * tech.wire.res_per_um;
  const double cw = 1000.0 * tech.wire.cap_per_um;
  const double expected_arrival =
      eff.arrival_ps + eff.driver_intrinsic_ps +
      eff.driver_res * (eff.pin_cap + cw + eff.pin_cap) +  // Driver load.
      rw * (cw / 2.0 + eff.pin_cap);                       // Wire.
  EXPECT_NEAR(d.arrival[b], expected_arrival, 1e-9);

  const ArdResult radius = SourceRadius(tree, d, drivers);
  EXPECT_NEAR(radius.ard_ps, expected_arrival + eff.downstream_ps, 1e-9);
  EXPECT_EQ(radius.critical_source, 0u);
  EXPECT_EQ(radius.critical_sink, 1u);
}

/// Hand-computed delay through one repeater, checking decoupling.
TEST(Elmore, TwoPinThroughRepeaterHandComputed) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  const NodeId ip = tree.InsertionPoints()[0];
  const NodeId t0 = tree.TerminalNode(0);
  const NodeId t1 = tree.TerminalNode(1);

  RepeaterAssignment assign(tree.NumNodes());
  assign.Place(ip, PlacedRepeater{0, t0});  // A-side toward terminal 0.
  const DriverAssignment drivers(tree.NumTerminals());
  const SourceDelays d = ComputeSourceDelays(tree, 0, assign, drivers, tech);

  const Repeater& r = tech.repeaters[0];
  const EffectiveTerminal eff = ResolveTerminal(DefaultTerminal(tech));
  const double rw = 500.0 * tech.wire.res_per_um;
  const double cw = 500.0 * tech.wire.cap_per_um;

  const double at_ip = eff.arrival_ps + eff.driver_intrinsic_ps +
                       eff.driver_res * (eff.pin_cap + cw + r.cap_a) +
                       rw * (cw / 2.0 + r.cap_a);
  EXPECT_NEAR(d.arrival[ip], at_ip, 1e-9);

  const double at_t1 = at_ip + r.intrinsic_ab +
                       r.res_ab * (cw + eff.pin_cap) +
                       rw * (cw / 2.0 + eff.pin_cap);
  EXPECT_NEAR(d.arrival[t1], at_t1, 1e-9);
}

/// The repeater decouples: downstream changes must not affect the
/// upstream side of the buffer.
TEST(Elmore, RepeaterDecouplesDownstreamCap) {
  const Technology tech = testing::SmallTech();
  std::vector<double> arrivals_at_ip;
  for (const double tail : {500.0, 4000.0}) {
    RcTree tree(tech.wire);
    const TerminalParams tp = DefaultTerminal(tech);
    const NodeId a = tree.AddTerminal(tp, {0, 0});
    const NodeId ip = tree.AddNode(NodeKind::kInsertion, {500, 0});
    const NodeId b = tree.AddTerminal(
        tp, {500 + static_cast<std::int64_t>(tail), 0});
    tree.AddEdge(a, ip, 500.0);
    tree.AddEdge(ip, b, tail);

    RepeaterAssignment assign(tree.NumNodes());
    assign.Place(ip, PlacedRepeater{0, a});
    const DriverAssignment drivers(tree.NumTerminals());
    const SourceDelays d =
        ComputeSourceDelays(tree, 0, assign, drivers, tech);
    arrivals_at_ip.push_back(d.arrival[ip]);
  }
  // Arrival at the repeater input is independent of the tail length.
  ASSERT_EQ(arrivals_at_ip.size(), 2u);
  EXPECT_NEAR(arrivals_at_ip[0], arrivals_at_ip[1], 1e-9);
}

TEST(ElmoreCaps, TotalCapInvariantWithoutRepeaters) {
  const Technology tech = DefaultTechnology();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 5000, 900.0);
    const RepeaterAssignment none(tree.NumNodes());
    const DriverAssignment drivers(tree.NumTerminals());

    double total = 0.0;
    for (const RcEdge& e : tree.Edges()) total += e.cap;
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      total += drivers.Resolve(tree, t).pin_cap;
    }

    const RootedTree rooted(tree, tree.TerminalNode(0));
    const CapAnalysis caps = ComputeCaps(rooted, none, drivers, tech);
    // At every node: everything below + the parent edge + everything
    // above equals the net's total capacitance.
    for (const NodeId v : rooted.Preorder()) {
      const double up = rooted.Parent(v) == kNoNode
                            ? 0.0
                            : rooted.ParentCap(v) + caps.cup[v];
      EXPECT_NEAR(caps.down_load[v] + up, total, 1e-9)
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(ElmoreCaps, CdownAtBufferIsFacingCap) {
  const Technology tech = testing::AsymmetricTech();
  const RcTree tree = TwoPinLine(tech, 1200.0, 1);
  const NodeId ip = tree.InsertionPoints()[0];
  const NodeId t0 = tree.TerminalNode(0);
  const NodeId t1 = tree.TerminalNode(1);
  RepeaterAssignment assign(tree.NumNodes());
  assign.Place(ip, PlacedRepeater{0, t0});

  const RootedTree rooted(tree, t0);
  const CapAnalysis caps = ComputeCaps(
      rooted, assign, DriverAssignment(tree.NumTerminals()), tech);
  // Seen from the root side (t0), the insertion point presents cap_a.
  EXPECT_DOUBLE_EQ(caps.cdown[ip], tech.repeaters[0].cap_a);
  // Seen from below (t1 looking up), it presents cap_b.
  EXPECT_DOUBLE_EQ(caps.cup[t1], tech.repeaters[0].cap_b);
}

TEST(ElmoreCaps, CupAtRootChildSeesRootPin) {
  const Technology tech = DefaultTechnology();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  const RootedTree rooted(tree, tree.TerminalNode(0));
  const CapAnalysis caps = ComputeCaps(
      rooted, RepeaterAssignment(tree.NumNodes()),
      DriverAssignment(tree.NumTerminals()), tech);
  const NodeId ip = tree.InsertionPoints()[0];
  const EffectiveTerminal eff = ResolveTerminal(DefaultTerminal(tech));
  EXPECT_DOUBLE_EQ(caps.cup[ip], eff.pin_cap);
}

TEST(Elmore, NonSourceTerminalRejected) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams sink_only = DefaultTerminal(tech);
  sink_only.is_source = false;
  const NodeId a = tree.AddTerminal(sink_only, {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {100, 0});
  tree.AddEdge(a, b, 100.0);
  EXPECT_THROW(ComputeSourceDelays(tree, 0,
                                   RepeaterAssignment(tree.NumNodes()),
                                   DriverAssignment(tree.NumTerminals()),
                                   tech),
               CheckError);
}

TEST(Elmore, NaiveArdPicksWorstPair) {
  // Asymmetric arrival times: terminal 1 has a huge AT, so the critical
  // source must be terminal 1 regardless of geometry.
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams slow = DefaultTerminal(tech);
  slow.arrival_ps = 10'000.0;
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(slow, {2000, 0});
  tree.AddEdge(a, b, 2000.0);
  const ArdResult ard =
      NaiveArd(tree, RepeaterAssignment(tree.NumNodes()),
               DriverAssignment(tree.NumTerminals()), tech);
  EXPECT_EQ(ard.critical_source, 1u);
  EXPECT_EQ(ard.critical_sink, 0u);
  EXPECT_GT(ard.ard_ps, 10'000.0);
}

TEST(Elmore, DriverSizingChangesDelays) {
  // The net must be long enough that the 4x driver's resistance saving
  // (135 Ohm x ~1.2 pF) beats its extra prev-stage loading (+60 ps).
  const Technology tech = DefaultTechnology();
  const RcTree tree = TwoPinLine(tech, 9000.0, 2);
  const RepeaterAssignment none(tree.NumNodes());
  DriverAssignment big(tree.NumTerminals());
  // 4x driver, 1x receiver at both ends: both directions improve (a fat
  // receiver would instead load the wire and hurt the opposite path).
  const auto lib = DriverSizingLibrary(tech, {1.0, 4.0});
  big.Choose(0, lib[2]);
  big.Choose(1, lib[2]);
  const double base =
      NaiveArd(tree, none, DriverAssignment(tree.NumTerminals()), tech)
          .ard_ps;
  const double sized = NaiveArd(tree, none, big, tech).ard_ps;
  EXPECT_LT(sized, base);
}

TEST(CriticalPath, TraceMatchesArd) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, 7, 8, 9000, 800.0);
  Rng rng(71);
  const RepeaterAssignment assign =
      testing::RandomAssignment(tree, tech, rng);
  const DriverAssignment drivers(tree.NumTerminals());

  const ArdResult ard = NaiveArd(tree, assign, drivers, tech);
  ASSERT_TRUE(ard.HasPair());
  const CriticalPath path =
      TraceCriticalPath(tree, ard, assign, drivers, tech);

  EXPECT_EQ(path.source_terminal, ard.critical_source);
  EXPECT_EQ(path.sink_terminal, ard.critical_sink);
  EXPECT_NEAR(path.total_ps, ard.ard_ps, 1e-9);
  ASSERT_GE(path.nodes.size(), 2u);
  EXPECT_EQ(path.nodes.front(),
            tree.TerminalNode(ard.critical_source));
  EXPECT_EQ(path.nodes.back(), tree.TerminalNode(ard.critical_sink));
  // Arrivals increase monotonically along the path (all delays positive).
  for (std::size_t i = 1; i < path.arrival_ps.size(); ++i) {
    EXPECT_GE(path.arrival_ps[i], path.arrival_ps[i - 1] - 1e-9);
  }
  // Consecutive path nodes share an edge.
  for (std::size_t i = 1; i < path.nodes.size(); ++i) {
    bool adjacent = false;
    for (const std::size_t ei : tree.AdjacentEdges(path.nodes[i])) {
      const RcEdge& e = tree.Edge(ei);
      const NodeId other = e.a == path.nodes[i] ? e.b : e.a;
      if (other == path.nodes[i - 1]) adjacent = true;
    }
    EXPECT_TRUE(adjacent) << "gap at position " << i;
  }
}

TEST(CriticalPath, RejectsEmptyPair) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  ArdResult empty;
  EXPECT_THROW(TraceCriticalPath(tree, empty,
                                 RepeaterAssignment(tree.NumNodes()),
                                 DriverAssignment(tree.NumTerminals()),
                                 tech),
               CheckError);
}

}  // namespace
}  // namespace msn
