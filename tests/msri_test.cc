#include "core/msri.h"

#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "common/check.h"
#include "core/ard.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

TEST(Msri, TwoPinNoRepeaterPointMatchesPlainArd) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 2000.0, 1);
  const MsriResult result = RunMsri(tree, tech);
  ASSERT_FALSE(result.Pareto().empty());
  const TradeoffPoint* base = result.MinCost();
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->num_repeaters, 0u);
  EXPECT_DOUBLE_EQ(base->cost, 4.0);  // Two default 1X/1X terminals.
  EXPECT_NEAR(base->ard_ps, ComputeArd(tree, tech).ard_ps, 1e-9);
}

TEST(Msri, ParetoIsMonotone) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 5, 6, 9000, 800.0);
  const MsriResult result = RunMsri(tree, tech);
  const auto& pareto = result.Pareto();
  ASSERT_GE(pareto.size(), 2u);
  for (std::size_t i = 1; i < pareto.size(); ++i) {
    EXPECT_GT(pareto[i].cost, pareto[i - 1].cost);
    EXPECT_LT(pareto[i].ard_ps, pareto[i - 1].ard_ps);
  }
}

TEST(Msri, EveryParetoPointVerifiesAgainstArdEngine) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 3, 6, 9000, 800.0);
  const MsriResult result = RunMsri(tree, tech);
  ASSERT_FALSE(result.Pareto().empty());
  for (const TradeoffPoint& p : result.Pareto()) {
    const ArdResult check =
        ComputeArd(tree, p.repeaters, p.drivers, tech);
    EXPECT_NEAR(check.ard_ps, p.ard_ps, 1e-6)
        << "cost " << p.cost << " repeaters " << p.num_repeaters;
    // Cost must equal terminal driver costs + repeater costs.
    EXPECT_NEAR(p.cost, p.drivers.Cost(tree) + p.repeaters.Cost(tech),
                1e-9);
  }
}

TEST(Msri, RepeatersImproveLongLine) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 20'000.0, 12);
  const MsriResult result = RunMsri(tree, tech);
  ASSERT_GE(result.Pareto().size(), 2u);
  EXPECT_LT(result.MinArd()->ard_ps, 0.7 * result.MinCost()->ard_ps)
      << "repeaters should cut a 2 cm line's diameter substantially";
  EXPECT_GE(result.MinArd()->num_repeaters, 1u);
}

TEST(Msri, FeasibilityQueries) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 6000.0, 4);
  const MsriResult result = RunMsri(tree, tech);
  const double best = result.MinArd()->ard_ps;
  const double worst = result.MinCost()->ard_ps;
  EXPECT_EQ(result.MinCostFeasible(best - 1.0), nullptr);
  EXPECT_EQ(result.MinCostFeasible(best), result.MinArd());
  EXPECT_EQ(result.MinCostFeasible(worst + 1e9), result.MinCost());
  // Intermediate spec: feasible and costs at most the min-ard cost.
  const double mid = (best + worst) / 2.0;
  const TradeoffPoint* p = result.MinCostFeasible(mid);
  ASSERT_NE(p, nullptr);
  EXPECT_LE(p->ard_ps, mid);
  EXPECT_LE(p->cost, result.MinArd()->cost);
}

TEST(Msri, RootChoiceDoesNotChangeFrontier) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 9, 5, 6000, 900.0);
  MsriOptions opt;
  opt.root = tree.TerminalNode(0);
  const MsriResult a = RunMsri(tree, tech, opt);
  opt.root = tree.TerminalNode(tree.NumTerminals() - 1);
  const MsriResult b = RunMsri(tree, tech, opt);
  ASSERT_EQ(a.Pareto().size(), b.Pareto().size());
  for (std::size_t i = 0; i < a.Pareto().size(); ++i) {
    EXPECT_NEAR(a.Pareto()[i].cost, b.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(a.Pareto()[i].ard_ps, b.Pareto()[i].ard_ps, 1e-6);
  }
}

TEST(Msri, PruningOffMatchesPruningOn) {
  const Technology tech = SmallTech();
  // Keep the net tiny: MFS off grows exponentially in insertion points.
  const RcTree tree = TwoPinLine(tech, 3000.0, 3);
  MsriOptions on;
  MsriOptions off;
  off.mfs.mode = MfsOptions::Mode::kOff;
  const MsriResult with = RunMsri(tree, tech, on);
  const MsriResult without = RunMsri(tree, tech, off);
  ASSERT_EQ(with.Pareto().size(), without.Pareto().size());
  for (std::size_t i = 0; i < with.Pareto().size(); ++i) {
    EXPECT_NEAR(with.Pareto()[i].cost, without.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(with.Pareto()[i].ard_ps, without.Pareto()[i].ard_ps, 1e-6);
  }
  EXPECT_LE(with.Stats().max_set_size, without.Stats().max_set_size);
}

TEST(Msri, QuadraticAndDivideConquerAgree) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 21, 5, 7000, 800.0);
  MsriOptions quad;
  quad.mfs.mode = MfsOptions::Mode::kQuadratic;
  MsriOptions dc;
  dc.mfs.mode = MfsOptions::Mode::kDivideConquer;
  const MsriResult a = RunMsri(tree, tech, quad);
  const MsriResult b = RunMsri(tree, tech, dc);
  ASSERT_EQ(a.Pareto().size(), b.Pareto().size());
  for (std::size_t i = 0; i < a.Pareto().size(); ++i) {
    EXPECT_NEAR(a.Pareto()[i].cost, b.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(a.Pareto()[i].ard_ps, b.Pareto()[i].ard_ps, 1e-6);
  }
}

TEST(Msri, AsymmetricRepeaterOrientationChosenCorrectly) {
  // One pure source, one pure sink: signal flows only source -> sink, so
  // the DP should orient the asymmetric repeater with its fast direction
  // downstream and beat the no-repeater solution.
  const Technology tech = testing::AsymmetricTech();
  RcTree tree(tech.wire);
  TerminalParams src = DefaultTerminal(tech);
  src.is_sink = false;
  TerminalParams dst = DefaultTerminal(tech);
  dst.is_source = false;
  const NodeId a = tree.AddTerminal(src, {0, 0});
  const NodeId ip = tree.AddNode(NodeKind::kInsertion, {4000, 0});
  const NodeId b = tree.AddTerminal(dst, {8000, 0});
  tree.AddEdge(a, ip, 4000.0);
  tree.AddEdge(ip, b, 4000.0);
  tree.Validate();

  const MsriResult result = RunMsri(tree, tech);
  const TradeoffPoint* best = result.MinArd();
  ASSERT_NE(best, nullptr);
  ASSERT_EQ(best->num_repeaters, 1u);
  // Verify that flipping the chosen orientation is no better.
  const PlacedRepeater placed = *best->repeaters.At(ip);
  const NodeId other = placed.a_side_neighbor == a ? b : a;
  RepeaterAssignment flipped(tree.NumNodes());
  flipped.Place(ip, PlacedRepeater{placed.repeater_index, other});
  const double flipped_ard =
      ComputeArd(tree, flipped, DriverAssignment(tree.NumTerminals()), tech)
          .ard_ps;
  EXPECT_LE(best->ard_ps, flipped_ard + 1e-9);
}

TEST(Msri, RejectsDegenerateInputs) {
  const Technology tech = SmallTech();
  RcTree one(tech.wire);
  one.AddTerminal(DefaultTerminal(tech), {0, 0});
  EXPECT_THROW(RunMsri(one, tech), CheckError);

  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  MsriOptions opt;
  opt.size_drivers = true;  // ...but no library.
  EXPECT_THROW(RunMsri(tree, tech, opt), CheckError);

  Technology no_reps = tech;
  no_reps.repeaters.clear();
  EXPECT_THROW(RunMsri(tree, no_reps), CheckError);

  MsriOptions bad_root;
  bad_root.root = tree.InsertionPoints()[0];
  EXPECT_THROW(RunMsri(tree, tech, bad_root), CheckError);
}

/// Theorem 4.1: the DP frontier equals the exhaustive frontier.
class MsriOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void ExpectSameFrontier(const std::vector<TradeoffPoint>& dp,
                                 const std::vector<TradeoffPoint>& brute) {
    ASSERT_EQ(dp.size(), brute.size());
    for (std::size_t i = 0; i < dp.size(); ++i) {
      EXPECT_NEAR(dp[i].cost, brute[i].cost, 1e-9) << "point " << i;
      EXPECT_NEAR(dp[i].ard_ps, brute[i].ard_ps, 1e-6) << "point " << i;
    }
  }
};

TEST_P(MsriOptimalityTest, RepeaterInsertionMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 4, 4000, 1600.0);
  if (tree.InsertionPoints().size() > 10) GTEST_SKIP();
  const MsriResult dp = RunMsri(tree, tech);
  const BruteForceResult brute = BruteForceMsri(tree, tech);
  ExpectSameFrontier(dp.Pareto(), brute.pareto);
}

TEST_P(MsriOptimalityTest, AsymmetricRepeaterMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = testing::AsymmetricTech();
  const RcTree tree = SmallRandomNet(tech, seed, 3, 4000, 2000.0);
  if (tree.InsertionPoints().size() > 7) GTEST_SKIP();
  const MsriResult dp = RunMsri(tree, tech);
  const BruteForceResult brute = BruteForceMsri(tree, tech);
  ExpectSameFrontier(dp.Pareto(), brute.pareto);
}

TEST_P(MsriOptimalityTest, TwoRepeaterLibraryMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = testing::TwoRepeaterTech();
  const RcTree tree = SmallRandomNet(tech, seed, 3, 3500, 1800.0);
  if (tree.InsertionPoints().size() > 7) GTEST_SKIP();
  const MsriResult dp = RunMsri(tree, tech);
  const BruteForceResult brute = BruteForceMsri(tree, tech);
  ExpectSameFrontier(dp.Pareto(), brute.pareto);
}

TEST_P(MsriOptimalityTest, DriverSizingMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 3, 3000, 3000.0);
  const auto lib = DriverSizingLibrary(tech, {1.0, 2.0, 4.0});

  MsriOptions opt;
  opt.insert_repeaters = false;
  opt.size_drivers = true;
  opt.sizing_library = lib;
  const MsriResult dp = RunMsri(tree, tech, opt);

  BruteForceOptions bopt;
  bopt.insert_repeaters = false;
  bopt.size_drivers = true;
  bopt.sizing_library = lib;
  const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);
  ExpectSameFrontier(dp.Pareto(), brute.pareto);
}

TEST_P(MsriOptimalityTest, JointSizingAndRepeatersMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 3, 3000, 3000.0);
  if (tree.InsertionPoints().size() > 5) GTEST_SKIP();
  const auto lib = DriverSizingLibrary(tech, {1.0, 3.0});

  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = lib;
  const MsriResult dp = RunMsri(tree, tech, opt);

  BruteForceOptions bopt;
  bopt.size_drivers = true;
  bopt.sizing_library = lib;
  const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);
  ExpectSameFrontier(dp.Pareto(), brute.pareto);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsriOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace msn
