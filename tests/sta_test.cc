// The msn::sta subsystem (docs/STA.md): `.msd` parsing with
// line-numbered diagnostics, design validation, timing-graph
// propagation and spec derivation, the generator's determinism, and the
// closure loop's contracts — monotone worst slack, byte-identical
// reports at any thread count, and cache reuse across iterations and
// runs.  Labeled for the TSan CI leg: the closure loop drives the batch
// engine's thread pool.
#include "sta/closure.h"
#include "sta/design.h"
#include "sta/timing_graph.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/cancel.h"
#include "common/check.h"
#include "core/ard.h"
#include "io/netfile.h"
#include "obs/stats.h"
#include "netgen/design_gen.h"
#include "test_util.h"

namespace msn::sta {
namespace {

namespace fs = std::filesystem;
using msn::testing::SmallTech;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A scratch directory removed on scope exit.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("msn_sta_test_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

/// A directional two-terminal net: terminal 0 drives, terminal 1
/// receives.
RcTree LineNet(const Technology& tech) {
  RcTree tree = msn::testing::TwoPinLine(tech, 1000.0, 1);
  tree.MutableTerminal(0).is_sink = false;
  tree.MutableTerminal(1).is_source = false;
  return tree;
}

Design ParseDesign(const std::string& text) {
  std::istringstream in(text);
  return ReadDesign(in);
}

std::string Render(const Design& design) {
  std::ostringstream out;
  WriteDesign(out, design);
  return out.str();
}

// ---------------------------------------------------------------------
// `.msd` parsing.

TEST(DesignFormat, GoldenRoundTripIsByteIdentical) {
  const std::string text =
      "msn-design 1\n"
      "input a 10.5\n"
      "output z 500\n"
      "component u0\n"
      "pin u0 i0 in\n"
      "pin u0 t inout\n"
      "pin u0 o out\n"
      "arc u0 i0 o 25.25\n"
      "arc u0 i0 t 12\n"
      "net n0 net_0000.msn a u0.i0\n"
      "net n1 net_0001.msn u0.o z\n"
      "end\n";
  const Design design = ParseDesign(text);
  EXPECT_EQ(design.ports.size(), 2u);
  EXPECT_EQ(design.components.size(), 1u);
  EXPECT_EQ(design.nets.size(), 2u);
  EXPECT_EQ(design.FindComponent("u0"), 0u);
  EXPECT_EQ(design.components[0].FindPin("t"), 1u);
  EXPECT_EQ(design.EndpointName(design.nets[0].endpoints[1]), "u0.i0");

  const std::string once = Render(design);
  const std::string twice = Render(ParseDesign(once));
  EXPECT_EQ(once, twice);
  // Comments and blank lines do not survive, but the content does.
  const Design commented =
      ParseDesign("# header comment\n\n" + text + "# trailing\n");
  EXPECT_EQ(Render(commented), once);
}

TEST(DesignFormat, MissingNetReferenceNamesTheLine) {
  const std::string text =
      "msn-design 1\n"
      "input a 0\n"
      "component u0\n"
      "pin u0 i0 in\n"
      "net n0 net.msn a u0.i9\n"
      "end\n";
  try {
    ParseDesign(text);
    FAIL() << "unresolved endpoint accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 5u);
    EXPECT_NE(std::string(e.what()).find("u0.i9"), std::string::npos);
  }
  // Unknown port / component references likewise carry the line.
  try {
    ParseDesign(
        "msn-design 1\ninput a 0\nnet n0 f.msn a nowhere\nend\n");
    FAIL() << "unresolved port accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 3u);
  }
}

TEST(DesignFormat, MalformedRecordsCarryLineNumbers) {
  const struct {
    const char* text;
    std::size_t line;
  } kCases[] = {
      {"msn-design 2\n", 1},                            // Bad version.
      {"component u0\n", 1},                            // No header.
      {"msn-design 1\nbogus x\nend\n", 2},              // Unknown tag.
      {"msn-design 1\ncomponent u0\ncomponent u0\nend\n", 3},
      {"msn-design 1\npin u0 a in\nend\n", 2},          // Unknown comp.
      {"msn-design 1\ncomponent u0\npin u0 a sideways\nend\n", 3},
      {"msn-design 1\ncomponent u0\npin u0 a.b in\nend\n", 3},
      {"msn-design 1\ncomponent u0\npin u0 a in\n"
       "arc u0 a a 5\nend\n",
       4},                                              // Self arc.
      {"msn-design 1\ncomponent u0\npin u0 a in\npin u0 o out\n"
       "arc u0 a o -3\nend\n",
       5},                                              // Negative delay.
      {"msn-design 1\ninput a 0\nnet n0 f.msn a\nend\n", 3},  // 1 endpoint.
      {"msn-design 1\ninput a 0\ninput a 1\nend\n", 3},  // Duplicate port.
  };
  for (const auto& c : kCases) {
    try {
      ParseDesign(c.text);
      FAIL() << "accepted: " << c.text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.Line(), c.line) << c.text;
    }
  }
  // A missing `end` is a whole-file problem: line 0.
  try {
    ParseDesign("msn-design 1\ninput a 0\n");
    FAIL() << "missing end accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 0u);
  }
}

TEST(DesignFormat, DanglingPinFailsValidationAtItsLine) {
  Design design = ParseDesign(
      "msn-design 1\n"
      "input a 0\n"
      "output z 100\n"
      "component u0\n"
      "pin u0 i0 in\n"
      "pin u0 i1 in\n"  // Line 6: on no net.
      "pin u0 o out\n"
      "arc u0 i0 o 10\n"
      "arc u0 i1 o 10\n"
      "net n0 a.msn a u0.i0\n"
      "net n1 b.msn u0.o z\n"
      "end\n");
  const Technology tech = SmallTech();
  design.nets[0].tree = LineNet(tech);
  design.nets[1].tree = LineNet(tech);
  try {
    design.Validate();
    FAIL() << "dangling pin accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 6u);
    EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos);
  }
}

TEST(DesignFormat, MissingNetFileFailsAtTheNetLine) {
  ScratchDir dir("missing_msn");
  {
    std::ofstream out(dir.path / "design.msd");
    out << "msn-design 1\n"
           "input a 0\n"
           "output z 100\n"
           "net n0 does_not_exist.msn a z\n"
           "end\n";
  }
  try {
    LoadDesign((dir.path / "design.msd").string());
    FAIL() << "missing .msn accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.Line(), 4u);
    EXPECT_NE(std::string(e.what()).find("does_not_exist.msn"),
              std::string::npos);
  }
}

TEST(DesignFormat, CombinationalCycleIsALineNumberedError) {
  // u0.o -> n0 -> u1.i -> u1.o -> n1 -> u0.i -> u0.o: a combinational
  // loop through two components, written through the full file path so
  // the diagnostic reflects what the user typed.
  ScratchDir dir("cycle");
  const Technology tech = SmallTech();
  for (const char* name : {"n0.msn", "n1.msn"}) {
    std::ofstream out(dir.path / name);
    WriteNet(out, LineNet(tech));
  }
  {
    std::ofstream out(dir.path / "design.msd");
    out << "msn-design 1\n"
           "component u0\n"
           "pin u0 i in\n"
           "pin u0 o out\n"
           "arc u0 i o 5\n"
           "component u1\n"
           "pin u1 i in\n"
           "pin u1 o out\n"
           "arc u1 i o 5\n"
           "net n0 n0.msn u0.o u1.i\n"   // Line 10.
           "net n1 n1.msn u1.o u0.i\n"   // Line 11.
           "end\n";
  }
  const Design design = LoadDesign((dir.path / "design.msd").string());
  try {
    TimingGraph graph(design);
    FAIL() << "cycle accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("combinational cycle"),
              std::string::npos);
    EXPECT_TRUE(e.Line() == 10u || e.Line() == 11u || e.Line() == 5u ||
                e.Line() == 9u)
        << "unexpected line " << e.Line();
  }
}

// ---------------------------------------------------------------------
// Timing propagation and spec derivation.

/// input a --n0--> u.i --arc 25--> u.o --n1--> output z.
Design ChainDesign(const Technology& tech, double arrival = 10.0,
                   double required = 500.0) {
  Design d;
  d.AddInputPort("a", arrival);
  d.AddOutputPort("z", required);
  const std::size_t u = d.AddComponent("u");
  d.AddPin(u, "i", PinDir::kIn);
  d.AddPin(u, "o", PinDir::kOut);
  d.AddArc(u, "i", "o", 25.0);
  d.AddNet("n0", "n0.msn", {"a", "u.i"});
  d.AddNet("n1", "n1.msn", {"u.o", "z"});
  d.nets[0].tree = LineNet(tech);
  d.nets[1].tree = LineNet(tech);
  d.Validate();
  return d;
}

TEST(TimingGraph, PropagatesArrivalsAndRequireds) {
  const Technology tech = SmallTech();
  const Design d = ChainDesign(tech);
  TimingGraph g(d);
  ASSERT_EQ(g.NumNets(), 2u);
  g.SetNetDelayPs(0, 100.0);
  g.SetNetDelayPs(1, 50.0);
  g.Propagate();

  const std::vector<EndpointSlack> slacks = g.EndpointSlacks();
  ASSERT_EQ(slacks.size(), 1u);
  EXPECT_EQ(slacks[0].name, "z");
  EXPECT_DOUBLE_EQ(slacks[0].arrival_ps, 10.0 + 100.0 + 25.0 + 50.0);
  EXPECT_DOUBLE_EQ(slacks[0].required_ps, 500.0);
  EXPECT_DOUBLE_EQ(slacks[0].slack_ps, 315.0);
  EXPECT_DOUBLE_EQ(g.WorstSlackPs(), 315.0);

  // Specs: required downstream minus arrival upstream of each net.
  EXPECT_DOUBLE_EQ(g.NetSpecPs(0), (500.0 - 50.0 - 25.0) - 10.0);
  EXPECT_DOUBLE_EQ(g.NetSpecPs(1), 500.0 - (10.0 + 100.0 + 25.0));
  EXPECT_DOUBLE_EQ(g.NetWorstSlackPs(0), 415.0 - 100.0);
  EXPECT_DOUBLE_EQ(g.NetWorstSlackPs(1), 365.0 - 50.0);
}

TEST(TimingGraph, SpecIsIndependentOfTheNetsOwnDelay) {
  const Technology tech = SmallTech();
  const Design d = ChainDesign(tech);
  TimingGraph g(d);
  g.SetNetDelayPs(0, 100.0);
  g.SetNetDelayPs(1, 50.0);
  g.Propagate();
  const double spec0 = g.NetSpecPs(0);
  g.SetNetDelayPs(0, 9999.0);
  g.Propagate();
  // Arrival upstream and required downstream of n0 are unchanged.
  EXPECT_DOUBLE_EQ(g.NetSpecPs(0), spec0);
  // Its slack reflects the new delay, and the endpoint went negative.
  EXPECT_DOUBLE_EQ(g.NetWorstSlackPs(0), spec0 - 9999.0);
  EXPECT_LT(g.WorstSlackPs(), 0.0);
}

TEST(TimingGraph, MultiSourceNetSpecUsesTheLatestDriver) {
  const Technology tech = SmallTech();
  Design d;
  d.AddInputPort("a", 10.0);
  d.AddInputPort("b", 40.0);
  d.AddOutputPort("z", 500.0);
  const std::size_t u = d.AddComponent("u");
  d.AddPin(u, "i", PinDir::kIn);
  d.AddPin(u, "o", PinDir::kOut);
  d.AddArc(u, "i", "o", 25.0);
  d.AddNet("bus", "bus.msn", {"a", "b", "u.i"});
  d.AddNet("n1", "n1.msn", {"u.o", "z"});
  RcTree bus = msn::testing::TwoPinLine(tech, 1000.0, 1);
  bus.MutableTerminal(0).is_sink = false;
  bus.MutableTerminal(1).is_sink = false;  // Both ports drive the bus.
  {  // Third terminal: the sink.
    TerminalParams sink = DefaultTerminal(tech);
    sink.is_source = false;
    const NodeId node = bus.AddTerminal(sink, {500, 500});
    bus.AddEdge(bus.TerminalNode(0), node, 700.0);
  }
  d.nets[0].tree = std::move(bus);
  d.nets[1].tree = LineNet(tech);
  d.Validate();

  TimingGraph g(d);
  g.SetNetDelayPs(0, 100.0);
  g.SetNetDelayPs(1, 50.0);
  g.Propagate();
  // Arrival at u.i is driven by the later source b.
  const std::vector<EndpointSlack> slacks = g.EndpointSlacks();
  EXPECT_DOUBLE_EQ(slacks[0].arrival_ps, 40.0 + 100.0 + 25.0 + 50.0);
  // The spec is limited by the latest driver: req(sink) - arr(b).
  EXPECT_DOUBLE_EQ(g.NetSpecPs(0), (500.0 - 50.0 - 25.0) - 40.0);
}

TEST(TimingGraph, InOutPinSplitsIntoDriveAndReceiveNodes) {
  // A transceiver pin that receives one net and drives another must not
  // read as a self-loop: u.t receives n0 and (via the arc i -> t)
  // drives n1.
  const Technology tech = SmallTech();
  Design d;
  d.AddInputPort("a", 5.0);
  d.AddInputPort("b", 7.0);
  d.AddOutputPort("z", 400.0);
  const std::size_t u = d.AddComponent("u");
  d.AddPin(u, "i", PinDir::kIn);
  d.AddPin(u, "t", PinDir::kInOut);
  d.AddPin(u, "o", PinDir::kOut);
  d.AddArc(u, "i", "t", 11.0);  // Drives n1 through t.
  d.AddArc(u, "t", "o", 13.0);  // Forwards what t receives from n0.
  d.AddNet("n0", "n0.msn", {"a", "u.t"});  // t receives.
  d.AddNet("n1", "n1.msn", {"u.t", "z"});  // t drives.
  d.AddNet("n2", "n2.msn", {"b", "u.i"});
  d.AddNet("n3", "n3.msn", {"u.o", "z"});
  for (std::size_t n = 0; n < d.nets.size(); ++n) {
    d.nets[n].tree = LineNet(tech);
  }
  d.Validate();

  TimingGraph g(d);  // Must not throw: no false cycle through t.
  for (std::size_t n = 0; n < 4; ++n) {
    g.SetNetDelayPs(n, 10.0 * static_cast<double>(n + 1));
  }
  g.Propagate();
  // Through the drive half: b -> n2(30) -> i -> arc(11) -> t -> n1(20).
  // Through the receive half: a -> n0(10) -> t -> arc(13) -> o -> n3(40).
  const double via_drive = 7.0 + 30.0 + 11.0 + 20.0;
  const double via_receive = 5.0 + 10.0 + 13.0 + 40.0;
  const std::vector<EndpointSlack> slacks = g.EndpointSlacks();
  ASSERT_EQ(slacks.size(), 1u);
  EXPECT_DOUBLE_EQ(slacks[0].arrival_ps,
                   std::max(via_drive, via_receive));
}

TEST(TimingGraph, UnconstrainedNetHasInfiniteSpec) {
  const Technology tech = SmallTech();
  Design d;
  d.AddInputPort("a", 0.0);
  const std::size_t u = d.AddComponent("u");
  d.AddPin(u, "i", PinDir::kIn);
  d.AddPin(u, "o", PinDir::kOut);
  d.AddArc(u, "i", "o", 5.0);
  d.AddNet("n0", "n0.msn", {"a", "u.i"});
  d.nets[0].tree = LineNet(tech);
  d.Validate();
  TimingGraph g(d);
  g.SetNetDelayPs(0, 50.0);
  g.Propagate();
  // No output port anywhere downstream: no finite required.
  EXPECT_EQ(g.NetSpecPs(0), kInf);
  EXPECT_EQ(g.WorstSlackPs(), kInf);  // No endpoints at all.
}

// ---------------------------------------------------------------------
// Generator.

DesignConfig SmallDesignConfig(std::size_t nets, std::uint64_t seed,
                               double required_factor = 0.7) {
  DesignConfig cfg;
  cfg.seed = seed;
  cfg.num_nets = nets;
  cfg.net.grid_um = 3000;
  cfg.net.insertion_spacing_um = 1500.0;
  cfg.required_factor = required_factor;
  return cfg;
}

TEST(DesignGen, SameSeedIsByteIdentical) {
  const Technology tech = SmallTech();
  const DesignConfig cfg = SmallDesignConfig(10, 42);
  const std::string a = Render(GenerateDesign(cfg, tech));
  const std::string b = Render(GenerateDesign(cfg, tech));
  EXPECT_EQ(a, b);
  DesignConfig other = cfg;
  other.seed = 43;
  EXPECT_NE(Render(GenerateDesign(other, tech)), a);
}

TEST(DesignGen, WrittenFilesReloadAndRevalidate) {
  ScratchDir dir("gen_files");
  const Technology tech = SmallTech();
  const Design design = GenerateDesign(SmallDesignConfig(6, 3), tech);
  const std::string msd =
      WriteDesignFiles(design, dir.path.string(), "design");
  const Design reloaded = LoadDesign(msd);  // Parses + loads + validates.
  EXPECT_EQ(Render(reloaded), Render(design));
  ASSERT_EQ(reloaded.nets.size(), design.nets.size());
  for (std::size_t n = 0; n < reloaded.nets.size(); ++n) {
    EXPECT_EQ(reloaded.nets[n].tree->NumTerminals(),
              design.nets[n].tree->NumTerminals());
  }
  // Writing the same design twice produces byte-identical files.
  ScratchDir dir2("gen_files2");
  WriteDesignFiles(design, dir2.path.string(), "design");
  std::ifstream f1(dir.path / "net_0000.msn"), f2(dir2.path / "net_0000.msn");
  std::stringstream s1, s2;
  s1 << f1.rdbuf();
  s2 << f2.rdbuf();
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(DesignGen, TightRequiredFactorFailsTimingInitially) {
  const Technology tech = SmallTech();
  const Design design = GenerateDesign(SmallDesignConfig(8, 5, 0.5), tech);
  TimingGraph g(design);
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    g.SetNetDelayPs(n, ComputeArd(*design.nets[n].tree, tech).ard_ps);
  }
  g.Propagate();
  EXPECT_LT(g.WorstSlackPs(), 0.0);
}

// ---------------------------------------------------------------------
// Closure loop.

TEST(Closure, ConvergesWithMonotoneWorstSlack) {
  const Technology tech = SmallTech();
  const Design design = GenerateDesign(SmallDesignConfig(12, 9, 0.6), tech);
  ClosureOptions opt;
  opt.jobs = 2;
  opt.max_iters = 10;
  const ClosureResult result = CloseTiming(design, tech, opt);
  ASSERT_GE(result.iterations.size(), 1u);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_GE(result.iterations[i].worst_slack_ps,
              result.iterations[i - 1].worst_slack_ps)
        << "worst slack regressed at iteration " << i;
  }
  EXPECT_GE(result.final_worst_slack_ps,
            result.iterations.back().worst_slack_ps);
  for (const NetClosure& n : result.nets) EXPECT_TRUE(n.error.empty());
  // Optimized nets only ever got faster.
  for (const NetClosure& n : result.nets) {
    EXPECT_LE(n.final_delay_ps, n.initial_delay_ps);
  }
}

TEST(Closure, HundredNetDesignIsDeterministicAcrossJobsAndCachesWarm) {
  const Technology tech = SmallTech();
  const Design design =
      GenerateDesign(SmallDesignConfig(100, 17, 0.55), tech);
  ASSERT_GE(design.nets.size(), 100u);

  ScratchDir dir("closure_cache");
  ClosureOptions opt;
  opt.jobs = 1;
  opt.max_iters = 12;
  opt.cache_dir = (dir.path / "cache").string();
  const ClosureResult r1 = CloseTiming(design, tech, opt);

  EXPECT_TRUE(r1.converged);
  for (std::size_t i = 1; i < r1.iterations.size(); ++i) {
    EXPECT_GE(r1.iterations[i].worst_slack_ps,
              r1.iterations[i - 1].worst_slack_ps);
  }

  // Byte-identical report at --jobs 8 (fresh in-memory cache so the
  // hit/miss columns match the jobs-1 run).
  ClosureOptions opt8 = opt;
  opt8.jobs = 8;
  opt8.cache_dir.clear();
  ClosureOptions opt1 = opt;
  opt1.cache_dir.clear();
  const ClosureResult r8 = CloseTiming(design, tech, opt8);
  const ClosureResult r1mem = CloseTiming(design, tech, opt1);
  std::ostringstream rep1, rep8;
  WriteClosureReport(rep1, r1mem);
  WriteClosureReport(rep8, r8);
  EXPECT_EQ(rep1.str(), rep8.str());

  // Iterations past the first re-resolve re-selected nets from the
  // cache: nonzero hits within a single cold run.
  std::uint64_t hits1 = 0, misses1 = 0;
  for (const IterationStats& it : r1.iterations) {
    hits1 += it.cache_hits;
    misses1 += it.cache_misses;
  }
  EXPECT_GT(misses1, 0u);
  if (r1.iterations.size() > 1 &&
      r1.iterations[1].nets_examined > 0) {
    EXPECT_GT(hits1, 0u);
  }

  // A second run against the persisted cache is pure hits: zero misses,
  // zero DP runs.
  const ClosureResult r2 = CloseTiming(design, tech, opt);
  std::uint64_t hits2 = 0, misses2 = 0, dp2 = 0;
  for (const IterationStats& it : r2.iterations) {
    hits2 += it.cache_hits;
    misses2 += it.cache_misses;
    dp2 += it.dp_runs;
  }
  EXPECT_GT(hits2, 0u);
  EXPECT_EQ(misses2, 0u);
  EXPECT_EQ(dp2, 0u);
  // And it reaches the same answer.
  EXPECT_DOUBLE_EQ(r2.final_worst_slack_ps, r1.final_worst_slack_ps);

  // The stats document carries the schema, totals, and histogram.
  std::ostringstream json;
  WriteClosureStatsJson(json, r2, "design");
  EXPECT_NE(json.str().find("\"schema\":\"msn-sta-stats-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"slack_histogram\":[["), std::string::npos);
  EXPECT_NE(json.str().find("\"registry\":{"), std::string::npos);
}

TEST(Closure, MeetsTimingWhenRequirementsAreLoose) {
  const Technology tech = SmallTech();
  // required_factor > 1: the unoptimized design already meets timing.
  const Design design = GenerateDesign(SmallDesignConfig(6, 21, 1.5), tech);
  ClosureOptions opt;
  const ClosureResult result = CloseTiming(design, tech, opt);
  EXPECT_TRUE(result.timing_met);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.iterations.size(), 1u);
  EXPECT_EQ(result.iterations[0].dp_runs, 0u);
  EXPECT_GE(result.final_worst_slack_ps, 0.0);
}

TEST(Closure, HonorsCancellation) {
  const Technology tech = SmallTech();
  const Design design = GenerateDesign(SmallDesignConfig(6, 2, 0.6), tech);
  CancellationSource source;
  source.Cancel();
  ClosureOptions opt;
  opt.base.cancel = source.Token();
  EXPECT_THROW(CloseTiming(design, tech, opt), CancelledError);
}

TEST(Closure, RejectsInstrumentedBaseOptions) {
  const Technology tech = SmallTech();
  const Design design = GenerateDesign(SmallDesignConfig(3, 2, 0.8), tech);
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  ClosureOptions opt;
  opt.base.stats = &sink;
  EXPECT_THROW(CloseTiming(design, tech, opt), CheckError);
  ClosureOptions zero_jobs;
  zero_jobs.jobs = 0;
  EXPECT_THROW(CloseTiming(design, tech, zero_jobs), CheckError);
}

}  // namespace
}  // namespace msn::sta
