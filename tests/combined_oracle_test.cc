// The heaviest optimality oracle: every feature at once — mixed
// buffer/inverter repeater library with asymmetric entries, terminal
// driver sizing, and per-segment wire sizing — against exhaustive
// enumeration on tiny nets.  If the DP's five-dimensional characterization
// or any pruning rule were subtly wrong, the interactions here would
// expose it.
#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/ard.h"
#include "core/msri.h"
#include "test_util.h"

namespace msn {
namespace {

Technology KitchenSinkTech() {
  Technology tech = DefaultTechnology();
  Repeater asym = Repeater::FromBufferPair(DefaultBuffer1X());
  asym.name = "asym";
  asym.intrinsic_ab = 25.0;
  asym.res_ab = 140.0;
  asym.intrinsic_ba = 45.0;
  asym.res_ba = 220.0;
  asym.cap_a = 0.04;
  asym.cap_b = 0.07;
  tech.repeaters = {
      asym,
      Repeater::FromInverterPair(DefaultInverter1X()),
  };
  return tech;
}

class CombinedOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CombinedOracle, EverythingAtOnceMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = KitchenSinkTech();
  const RcTree tree =
      testing::SmallRandomNet(tech, seed, 3, 2500, 3000.0);
  // Keep the exhaustive space sane: <= 3 insertion points (5 choices
  // each: none, asym-2-orientations, inverter), <= 6 edges (2 widths),
  // 2 driver options per terminal.
  if (tree.InsertionPoints().size() > 3 || tree.NumEdges() > 6) {
    GTEST_SKIP();
  }
  const auto lib = DriverSizingLibrary(tech, {1.0, 3.0});
  const std::vector<TerminalOption> two_options{lib[0], lib[3]};

  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = two_options;
  opt.size_wires = true;
  opt.wire_width_choices = {1.0, 2.0};
  opt.wire_area_cost_per_um = 0.0005;
  const MsriResult dp = RunMsri(tree, tech, opt);

  BruteForceOptions bopt;
  bopt.size_drivers = true;
  bopt.sizing_library = two_options;
  bopt.size_wires = true;
  const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);

  ASSERT_EQ(dp.Pareto().size(), brute.pareto.size()) << "seed " << seed;
  for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
    EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9)
        << "point " << i;
    EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6)
        << "point " << i;
  }

  // Every DP point must verify end-to-end on the physically scaled tree.
  for (const TradeoffPoint& p : dp.Pareto()) {
    EXPECT_TRUE(ParityFeasible(tree, p.repeaters, tech));
    const RcTree scaled = tree.WithWireWidths(p.wire_widths);
    EXPECT_NEAR(ComputeArd(scaled, p.repeaters, p.drivers, tech).ard_ps,
                p.ard_ps, 1e-6);
  }
}

TEST_P(CombinedOracle, RootInvarianceWithAllFeatures) {
  const std::uint64_t seed = GetParam();
  const Technology tech = KitchenSinkTech();
  const RcTree tree =
      testing::SmallRandomNet(tech, seed, 4, 3000, 2000.0);
  const auto lib = DriverSizingLibrary(tech, {1.0, 2.0});

  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = {lib[0], lib[3]};
  opt.size_wires = true;
  opt.wire_width_choices = {1.0, 2.0};

  opt.root = tree.TerminalNode(0);
  const MsriResult a = RunMsri(tree, tech, opt);
  opt.root = tree.TerminalNode(tree.NumTerminals() - 1);
  const MsriResult b = RunMsri(tree, tech, opt);
  ASSERT_EQ(a.Pareto().size(), b.Pareto().size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.Pareto().size(); ++i) {
    EXPECT_NEAR(a.Pareto()[i].cost, b.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(a.Pareto()[i].ard_ps, b.Pareto()[i].ard_ps, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedOracle,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace msn
