// The msn::runtime batch engine (docs/RUNTIME.md): thread-pool and
// task-group semantics, batch determinism across thread counts (the
// byte-identical report contract), per-net error containment, intra-net
// parallel DP equivalence, and the degenerate-spec handling of
// MsriResult::MinCostFeasible.  This suite is the TSan gate for the
// thread pool (CI runs it under -DMSN_SANITIZE=thread).
#include "runtime/batch.h"
#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/check.h"
#include "common/executor.h"
#include "common/numeric.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "netgen/netgen.h"
#include "test_util.h"

namespace msn {
namespace {

namespace fs = std::filesystem;
using runtime::BatchJob;
using runtime::BatchOptions;
using runtime::BatchResult;
using runtime::OptimizeBatch;
using runtime::PoolExecutor;
using runtime::TaskGroup;
using runtime::ThreadPool;
using testing::SmallTech;

RcTree ExperimentNet(std::uint64_t seed, std::size_t terminals = 8) {
  NetConfig cfg;
  cfg.seed = seed;
  cfg.num_terminals = terminals;
  return BuildExperimentNet(cfg, SmallTech());
}

/// A scratch directory removed on scope exit.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("msn_runtime_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

void WriteNetFile(const fs::path& path, const RcTree& tree) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good());
  WriteNet(out, tree);
}

// ---------------------------------------------------------------------
// ThreadPool / TaskGroup.

TEST(ThreadPool, AsyncDeliversResultsAndExceptions) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  auto ok = pool.Async([] { return 6 * 7; });
  auto bad = pool.Async(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(TaskGroup, RunsEveryTaskWithMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  TaskGroup group(&pool);
  for (int i = 1; i <= 100; ++i) {
    group.Run([&sum, i] { sum.fetch_add(i); });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskGroup, NullPoolRunsInlineOnWait) {
  std::atomic<int> count{0};
  TaskGroup group(nullptr);
  for (int i = 0; i < 10; ++i) group.Run([&count] { ++count; });
  EXPECT_EQ(count.load(), 0);  // Nothing runs before Wait.
  group.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskGroup, WaitRethrowsFirstExceptionAfterAllTasksRan) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 20; ++i) {
    group.Run([&ran, i] {
      ++ran;
      if (i % 5 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);  // A throwing task never cancels siblings.
}

TEST(TaskGroup, NestedGroupsOnOneSaturatedPoolDoNotDeadlock) {
  // Every worker fans out a nested group onto the same 2-thread pool;
  // Wait() helping is what keeps this from deadlocking.
  ThreadPool pool(2);
  std::atomic<int> leaf_count{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Run([&pool, &leaf_count] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.Run([&leaf_count] { ++leaf_count; });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaf_count.load(), 64);
}

TEST(TaskGroup, DeadlineBoundsAdmissionNotCompletion) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<int> expired{0};
  TaskGroup group(&pool);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) {
    // A far-future deadline admits the task; an already-passed one runs
    // on_expired in its place.  Both count toward Wait().
    group.Run([&ran] { ++ran; }, now + std::chrono::hours(1),
              [&expired] { ++expired; });
    group.Run([&ran] { ++ran; }, now - std::chrono::milliseconds(1),
              [&expired] { ++expired; });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(expired.load(), 8);
}

TEST(Executors, PoolMatchesSerialSemantics) {
  std::vector<int> serial_out(16, 0);
  std::vector<int> pool_out(16, 0);
  auto make_tasks = [](std::vector<int>& out) {
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < out.size(); ++i) {
      tasks.push_back([&out, i] { out[i] = static_cast<int>(i * i); });
    }
    return tasks;
  };
  SerialExecutor serial;
  serial.RunAll(make_tasks(serial_out));
  ThreadPool pool(3);
  PoolExecutor pool_exec(&pool);
  pool_exec.RunAll(make_tasks(pool_out));
  EXPECT_EQ(serial_out, pool_out);

  EXPECT_THROW(
      pool_exec.RunAll({[] { throw std::runtime_error("boom"); }}),
      std::runtime_error);
}

// ---------------------------------------------------------------------
// Batch determinism and containment.

std::vector<BatchJob> MakeJobs(std::size_t count) {
  std::vector<BatchJob> jobs;
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    jobs.push_back(BatchJob{"net" + std::to_string(seed),
                            ExperimentNet(seed), MsriOptions{}});
  }
  return jobs;
}

std::string Report(const BatchResult& batch, double spec_ps) {
  std::ostringstream os;
  runtime::WriteBatchReport(os, batch, spec_ps);
  return os.str();
}

TEST(Batch, ReportIsByteIdenticalAcrossJobCounts) {
  const Technology tech = SmallTech();
  BatchOptions one;
  one.jobs = 1;
  BatchOptions eight;
  eight.jobs = 8;
  const BatchResult r1 = OptimizeBatch(MakeJobs(6), tech, one);
  const BatchResult r8 = OptimizeBatch(MakeJobs(6), tech, eight);
  EXPECT_EQ(Report(r1, 950.0), Report(r8, 950.0));

  // Beyond the rendered report: the Pareto frontiers themselves are
  // bit-identical, point by point.
  ASSERT_EQ(r1.nets.size(), r8.nets.size());
  for (std::size_t i = 0; i < r1.nets.size(); ++i) {
    const auto& p1 = r1.nets[i].result.Pareto();
    const auto& p8 = r8.nets[i].result.Pareto();
    ASSERT_EQ(p1.size(), p8.size());
    for (std::size_t k = 0; k < p1.size(); ++k) {
      EXPECT_EQ(p1[k].cost, p8[k].cost);
      EXPECT_EQ(p1[k].ard_ps, p8[k].ard_ps);
      EXPECT_EQ(p1[k].num_repeaters, p8[k].num_repeaters);
    }
  }
}

TEST(Batch, MoreJobsThanNetsAndMoreNetsThanJobs) {
  const Technology tech = SmallTech();
  BatchOptions opt;
  opt.jobs = 16;  // Stress: far more workers than the 3 nets.
  const BatchResult wide = OptimizeBatch(MakeJobs(3), tech, opt);
  EXPECT_TRUE(wide.AllOk());
  EXPECT_EQ(wide.nets.size(), 3u);

  opt.jobs = 2;
  const BatchResult narrow = OptimizeBatch(MakeJobs(9), tech, opt);
  EXPECT_TRUE(narrow.AllOk());
  EXPECT_EQ(narrow.nets.size(), 9u);
  for (const auto& net : narrow.nets) {
    EXPECT_TRUE(net.ok) << net.error;
    EXPECT_FALSE(net.result.Pareto().empty());
  }
}

TEST(Batch, MalformedNetIsContainedAndOthersSurvive) {
  ScratchDir dir("contain");
  WriteNetFile(dir.path / "a.msn", ExperimentNet(1));
  {
    std::ofstream bad(dir.path / "b.msn");
    bad << "msn-net 1\nnode 0 terminal\nend\n";  // Truncated node line.
  }
  WriteNetFile(dir.path / "c.msn", ExperimentNet(2));

  BatchOptions opt;
  opt.jobs = 4;
  const BatchResult batch = runtime::OptimizeBatchFiles(
      runtime::CollectNetPaths(dir.path.string()), SmallTech(),
      MsriOptions{}, opt);
  ASSERT_EQ(batch.nets.size(), 3u);
  EXPECT_TRUE(batch.nets[0].ok);
  EXPECT_FALSE(batch.nets[1].ok);
  EXPECT_NE(batch.nets[1].error.find("line 2"), std::string::npos)
      << batch.nets[1].error;
  EXPECT_TRUE(batch.nets[2].ok);
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].index, 1u);
}

TEST(Batch, CollectNetPathsDirectorySortedAndManifestResolved) {
  ScratchDir dir("paths");
  WriteNetFile(dir.path / "b.msn", ExperimentNet(1));
  WriteNetFile(dir.path / "a.msn", ExperimentNet(2));
  std::ofstream(dir.path / "notes.txt") << "ignored\n";
  const auto from_dir = runtime::CollectNetPaths(dir.path.string());
  ASSERT_EQ(from_dir.size(), 2u);
  EXPECT_EQ(fs::path(from_dir[0]).filename(), "a.msn");
  EXPECT_EQ(fs::path(from_dir[1]).filename(), "b.msn");

  {
    std::ofstream manifest(dir.path / "batch.list");
    manifest << "# comment\n\n  b.msn  \na.msn\n";
  }
  const auto from_manifest =
      runtime::CollectNetPaths((dir.path / "batch.list").string());
  ASSERT_EQ(from_manifest.size(), 2u);  // Manifest order, not sorted.
  EXPECT_EQ(fs::path(from_manifest[0]).filename(), "b.msn");
  EXPECT_TRUE(fs::exists(from_manifest[0]));

  EXPECT_THROW(runtime::CollectNetPaths(
                   (dir.path / "missing").string()),
               CheckError);
}

TEST(Batch, EmptyManifestIsAnExplicitError) {
  ScratchDir dir("empty_manifest");
  std::ofstream(dir.path / "empty.list") << "# nothing here\n\n";
  EXPECT_THROW(
      runtime::CollectNetPaths((dir.path / "empty.list").string()),
      CheckError);
  // An explicitly empty path vector, by contrast, is a no-op batch.
  const BatchResult batch = runtime::OptimizeBatchFiles(
      {}, SmallTech(), MsriOptions{}, BatchOptions{});
  EXPECT_TRUE(batch.AllOk());
  EXPECT_TRUE(batch.nets.empty());
}

TEST(Batch, DuplicateManifestPathsOptimizeIndependentlyInOrder) {
  ScratchDir dir("dup_paths");
  WriteNetFile(dir.path / "a.msn", ExperimentNet(3));
  std::ofstream(dir.path / "dup.list") << "a.msn\na.msn\na.msn\n";
  const auto paths =
      runtime::CollectNetPaths((dir.path / "dup.list").string());
  ASSERT_EQ(paths.size(), 3u);  // Duplicates preserved, not deduped.
  BatchOptions opt;
  opt.jobs = 3;
  const BatchResult batch = runtime::OptimizeBatchFiles(
      paths, SmallTech(), MsriOptions{}, opt);
  ASSERT_EQ(batch.nets.size(), 3u);
  for (const runtime::NetOutcome& net : batch.nets) {
    EXPECT_TRUE(net.ok);
    EXPECT_EQ(net.name, batch.nets[0].name);
    ASSERT_FALSE(net.result.Pareto().empty());
    EXPECT_DOUBLE_EQ(net.result.MinArd()->ard_ps,
                     batch.nets[0].result.MinArd()->ard_ps);
  }
}

TEST(Batch, MissingFileIsContainedAtItsIndex) {
  ScratchDir dir("missing_file");
  WriteNetFile(dir.path / "a.msn", ExperimentNet(4));
  const std::string good = (dir.path / "a.msn").string();
  const std::string gone = (dir.path / "nope.msn").string();
  BatchOptions opt;
  opt.jobs = 2;
  const BatchResult batch = runtime::OptimizeBatchFiles(
      {good, gone, good}, SmallTech(), MsriOptions{}, opt);
  ASSERT_EQ(batch.nets.size(), 3u);  // Input order preserved.
  EXPECT_TRUE(batch.nets[0].ok);
  EXPECT_FALSE(batch.nets[1].ok);
  EXPECT_FALSE(batch.nets[1].error.empty());
  EXPECT_TRUE(batch.nets[2].ok);
  ASSERT_EQ(batch.errors.size(), 1u);
  EXPECT_EQ(batch.errors[0].index, 1u);
  EXPECT_EQ(batch.errors[0].name, gone);
}

TEST(Batch, AggregateStatsMergePerNetRegistries) {
  const Technology tech = SmallTech();
  BatchOptions opt;
  opt.jobs = 4;
  opt.collect_stats = true;
  const BatchResult batch = OptimizeBatch(MakeJobs(4), tech, opt);

  std::uint64_t per_net_solutions = 0;
  for (const auto& net : batch.nets) {
    per_net_solutions +=
        net.stats.Counters().at("msri.solutions_generated").Value();
  }
  EXPECT_GT(per_net_solutions, 0u);
  EXPECT_EQ(batch.aggregate.Counters()
                .at("msri.solutions_generated")
                .Value(),
            per_net_solutions);
  EXPECT_EQ(batch.aggregate.Histograms().at("batch.net_wall_ms").Count(),
            4u);
  EXPECT_EQ(
      batch.aggregate.Histograms().at("batch.pool_occupancy").Count(),
      4u);
  EXPECT_DOUBLE_EQ(batch.aggregate.Values().at("batch.nets"), 4.0);

  // The batch JSON document round-trips through the renderer.
  std::ostringstream os;
  runtime::WriteBatchStatsJson(os, batch);
  EXPECT_NE(os.str().find("\"schema\":\"msn-batch-stats-v1\""),
            std::string::npos);
}

TEST(Batch, RejectsJobsCarryingObservabilityHooks) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  std::vector<BatchJob> jobs = MakeJobs(1);
  jobs[0].options.stats = &sink;
  EXPECT_THROW(OptimizeBatch(std::move(jobs), SmallTech(), BatchOptions{}),
               CheckError);
}

TEST(Batch, CancelledNetsAreContainedErrorEntries) {
  // A token that fired before the batch starts cancels every net that
  // carries it — each as a per-net "cancelled" error entry, exactly like
  // any other contained failure — while untokened nets still optimize.
  CancellationSource source;
  source.Cancel();
  std::vector<BatchJob> jobs = MakeJobs(3);
  jobs[0].options.cancel = source.Token();
  jobs[2].options.cancel = source.Token();
  BatchOptions options;
  options.jobs = 2;
  const BatchResult batch =
      OptimizeBatch(std::move(jobs), SmallTech(), options);
  ASSERT_EQ(batch.nets.size(), 3u);
  ASSERT_EQ(batch.errors.size(), 2u);
  EXPECT_FALSE(batch.nets[0].ok);
  EXPECT_NE(batch.nets[0].error.find("cancelled"), std::string::npos);
  EXPECT_TRUE(batch.nets[1].ok);
  EXPECT_GE(batch.nets[1].result.Pareto().size(), 1u);
  EXPECT_FALSE(batch.nets[2].ok);
}

// ---------------------------------------------------------------------
// Intra-net parallelism.

TEST(IntraNet, ParallelSubtreeSolvesMatchSerialExactly) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(3, /*terminals=*/12);

  const MsriResult serial = RunMsri(tree, tech, MsriOptions{});

  ThreadPool pool(4);
  PoolExecutor exec(&pool);
  MsriOptions par;
  par.executor = &exec;
  par.parallel_min_nodes = 1;  // Force fan-out at every branch.
  const MsriResult parallel = RunMsri(tree, tech, par);

  ASSERT_EQ(serial.Pareto().size(), parallel.Pareto().size());
  for (std::size_t i = 0; i < serial.Pareto().size(); ++i) {
    EXPECT_EQ(serial.Pareto()[i].cost, parallel.Pareto()[i].cost);
    EXPECT_EQ(serial.Pareto()[i].ard_ps, parallel.Pareto()[i].ard_ps);
    EXPECT_EQ(serial.Pareto()[i].num_repeaters,
              parallel.Pareto()[i].num_repeaters);
  }
  // Task-local stats merge back to the serial totals (sums and maxes).
  EXPECT_EQ(serial.Stats().solutions_generated,
            parallel.Stats().solutions_generated);
  EXPECT_EQ(serial.Stats().max_set_size, parallel.Stats().max_set_size);
  EXPECT_EQ(serial.Stats().mfs.candidates_in,
            parallel.Stats().mfs.candidates_in);
  EXPECT_EQ(serial.Stats().mfs.candidates_out,
            parallel.Stats().mfs.candidates_out);
}

TEST(IntraNet, BatchWithIntraNetParallelismStaysDeterministic) {
  const Technology tech = SmallTech();
  BatchOptions plain;
  plain.jobs = 1;
  BatchOptions intra;
  intra.jobs = 4;
  intra.intra_net_parallelism = true;
  intra.parallel_min_nodes = 1;
  const BatchResult r1 = OptimizeBatch(MakeJobs(4), tech, plain);
  const BatchResult r2 = OptimizeBatch(MakeJobs(4), tech, intra);
  EXPECT_EQ(Report(r1, 900.0), Report(r2, 900.0));
}

// ---------------------------------------------------------------------
// Degenerate ARD specs (explicit NaN/negative handling).

TEST(MinCostFeasible, DegenerateSpecsAreExplicit) {
  const Technology tech = SmallTech();
  const MsriResult result =
      RunMsri(ExperimentNet(1), tech, MsriOptions{});
  ASSERT_FALSE(result.Pareto().empty());

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(result.MinCostFeasible(nan), nullptr);
  EXPECT_EQ(result.MinCostFeasible(-kInf), nullptr);
  EXPECT_EQ(result.MinCostFeasible(-100.0), nullptr);
  // +inf admits everything: the cheapest point wins.
  EXPECT_EQ(result.MinCostFeasible(kInf), result.MinCost());
  // And a generous finite spec behaves identically.
  EXPECT_EQ(result.MinCostFeasible(1e12), result.MinCost());
}

}  // namespace
}  // namespace msn
