#include "obs/stats.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <string_view>

#include "core/ard.h"
#include "core/msri.h"
#include "obs/latency.h"
#include "obs/trace.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Timer, RecordAccumulatesAndConverts) {
  obs::Timer t;
  EXPECT_EQ(t.Calls(), 0u);
  t.Record(1'500'000);  // 1.5 ms.
  t.Record(500'000);
  EXPECT_EQ(t.Calls(), 2u);
  EXPECT_EQ(t.TotalNs(), 2'000'000u);
  EXPECT_DOUBLE_EQ(t.TotalMs(), 2.0);
  EXPECT_DOUBLE_EQ(t.MeanUs(), 1000.0);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  // Must not crash and must not read the clock.
  const obs::ScopedTimer t(nullptr);
}

TEST(ScopedTimer, RecordsOneCall) {
  obs::Timer timer;
  { const obs::ScopedTimer t(&timer); }
  EXPECT_EQ(timer.Calls(), 1u);
}

TEST(Histogram, TracksMomentsAndBuckets) {
  obs::Histogram h;
  h.Record(1.0);
  h.Record(3.0);
  h.Record(8.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 8.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(RunStats, InstrumentsRegisterOnFirstUse) {
  obs::RunStats stats;
  EXPECT_TRUE(stats.Empty());
  obs::Counter& c = stats.GetCounter("demo.count");
  obs::Timer& t = stats.GetTimer("demo.time");
  // Same name must return the same instrument (stable handles).
  EXPECT_EQ(&stats.GetCounter("demo.count"), &c);
  EXPECT_EQ(&stats.GetTimer("demo.time"), &t);
  EXPECT_FALSE(stats.Empty());
  EXPECT_EQ(stats.Counters().size(), 1u);
  EXPECT_EQ(stats.Timers().size(), 1u);
}

TEST(RunStats, SinkRegistersTheMsriInstrumentSet) {
  obs::RunStats stats;
  const obs::StatsSink sink(&stats);
  for (const char* name :
       {"msri.leaf", "msri.augment", "msri.join", "msri.repeater",
        "msri.root", "msri.total", "mfs.time", "ard.total"}) {
    EXPECT_EQ(stats.Timers().count(name), 1u) << name;
  }
  EXPECT_EQ(stats.Counters().count("mfs.candidates_in"), 1u);
  EXPECT_EQ(stats.Histograms().count("msri.set_size"), 1u);
}

TEST(RunStats, JsonContainsTheFiveDpPhases) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);

  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 5, 6, 9000, 800.0);
  MsriOptions opt;
  opt.stats = &sink;
  const MsriResult result = RunMsri(tree, tech, opt);
  ASSERT_FALSE(result.Pareto().empty());

  const std::string json = stats.JsonString();
  EXPECT_NE(json.find("\"schema\":\"msn-run-stats-v1\""), std::string::npos);
  for (const char* phase :
       {"\"msri.leaf\"", "\"msri.augment\"", "\"msri.join\"",
        "\"msri.repeater\"", "\"msri.root\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }

  // The DP actually passed through every phase at least once.
  EXPECT_GT(stats.GetTimer("msri.leaf").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.join").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.root").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.total").Calls(), 0u);
  EXPECT_GT(stats.GetCounter("mfs.candidates_in").Value(), 0u);
  EXPECT_GT(stats.GetHistogram("pwl.max.segments").Count(), 0u);
}

TEST(RunStats, DisabledSinkLeavesRegistryEmpty) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 2000.0, 1);

  obs::RunStats stats;  // Never attached to any sink.
  const MsriResult result = RunMsri(tree, tech);  // options.stats == nullptr.
  ASSERT_FALSE(result.Pareto().empty());
  ComputeArd(tree, tech);  // Default sink argument is nullptr too.
  EXPECT_TRUE(stats.Empty());
  EXPECT_NE(stats.JsonString().find("\"timers\":{}"), std::string::npos);
}

TEST(RunStats, MfsPruneCountersAreConsistent) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 4, 6, 9000, 800.0);
  MsriOptions opt;
  opt.stats = &sink;
  RunMsri(tree, tech, opt);

  const auto in = stats.GetCounter("mfs.candidates_in").Value();
  const auto out = stats.GetCounter("mfs.candidates_out").Value();
  const auto pruned = stats.GetCounter("mfs.pruned_full").Value();
  EXPECT_GT(in, 0u);
  EXPECT_LE(out, in);
  EXPECT_EQ(in - out, pruned);

  // The derived prune rate lands in [0, 1] and matches the counters.
  const auto it = stats.Values().find("mfs.prune_rate");
  ASSERT_NE(it, stats.Values().end());
  EXPECT_NEAR(it->second,
              1.0 - static_cast<double>(out) / static_cast<double>(in),
              1e-12);
}

TEST(RunStats, ArdPassTimersFireOncePerCall) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 2000.0, 1);
  ComputeArd(tree, tech, &sink);
  EXPECT_EQ(stats.GetTimer("ard.total").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.rooting").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.caps").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.combine").Calls(), 1u);
}

TEST(RunStats, RenderTextMentionsEveryInstrument) {
  obs::RunStats stats;
  stats.SetLabel("tool", "stats_test");
  stats.SetValue("answer", 42.0);
  stats.GetCounter("c.one").Add(7);
  stats.GetTimer("t.one").Record(1000);
  std::ostringstream os;
  stats.RenderText(os);
  const std::string text = os.str();
  for (const char* needle : {"tool", "stats_test", "answer", "c.one", "t.one"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(RunStats, JsonNumbersAreFiniteOrNull) {
  obs::RunStats stats;
  stats.SetValue("bad", std::nan(""));
  const std::string json = stats.JsonString();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
}

TEST(JsonBucketBound, PowerOfTwoBoundsRenderAsExactDistinctIntegers) {
  std::set<std::string> rendered;
  for (std::size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    const double bound = obs::LatencyHistogram::BucketBound(i);
    const std::string s = obs::JsonBucketBound(bound);
    // Exact decimal integer: no fraction, no scientific notation.
    EXPECT_EQ(s.find('.'), std::string::npos) << s;
    EXPECT_EQ(s.find('e'), std::string::npos) << s;
    rendered.insert(s);
  }
  // Every bound survives the round trip distinctly — setprecision-style
  // rendering would collapse the top buckets onto one mantissa.
  EXPECT_EQ(rendered.size(), obs::Histogram::kNumBuckets);
  EXPECT_EQ(obs::JsonBucketBound(std::pow(2.0, 60)),
            "1152921504606846976");
}

TEST(JsonBucketBound, NonIntegralValuesFallBackToJsonNumber) {
  EXPECT_EQ(obs::JsonBucketBound(1.5), obs::JsonNumber(1.5));
  EXPECT_EQ(obs::JsonBucketBound(-2.0), obs::JsonNumber(-2.0));
  EXPECT_EQ(obs::JsonBucketBound(std::nan("")), "null");
}

using LatencyClock = obs::LatencyHistogram::Clock;

LatencyClock::time_point LatencyEpoch() {
  return LatencyClock::time_point{} + std::chrono::seconds(1000);
}

TEST(LatencyHistogram, QuantilesAreExactAtBucketEdges) {
  const auto t0 = LatencyEpoch();
  obs::LatencyHistogram on_edge;
  on_edge.Record(1024.0, t0);
  const auto snap = on_edge.Snap(t0);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.window_count, 1u);
  EXPECT_DOUBLE_EQ(snap.p50_us, 1024.0);
  EXPECT_DOUBLE_EQ(snap.p99_us, 1024.0);

  // Just past the edge lands in the next bucket's bound.
  obs::LatencyHistogram past_edge;
  past_edge.Record(1024.5, t0);
  EXPECT_DOUBLE_EQ(past_edge.Snap(t0).p50_us, 2048.0);
}

TEST(LatencyHistogram, QuantilesAreMonotoneInQ) {
  const auto t0 = LatencyEpoch();
  obs::LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(static_cast<double>(i) * static_cast<double>(i), t0);
  }
  const auto snap = h.Snap(t0);
  EXPECT_GT(snap.p50_us, 0.0);
  EXPECT_LE(snap.p50_us, snap.p95_us);
  EXPECT_LE(snap.p95_us, snap.p99_us);
}

TEST(LatencyHistogram, MergedQuantileStaysBetweenPartQuantiles) {
  constexpr std::size_t kN = obs::LatencyHistogram::kNumBuckets;
  std::uint64_t low[kN] = {};
  std::uint64_t high[kN] = {};
  std::uint64_t merged[kN] = {};
  low[3] = 100;    // 100 observations in (4, 8].
  high[10] = 100;  // 100 observations in (512, 1024].
  for (std::size_t i = 0; i < kN; ++i) merged[i] = low[i] + high[i];
  for (const double q : {0.5, 0.95, 0.99}) {
    const double ql = obs::LatencyHistogram::QuantileFromBuckets(low, q);
    const double qh = obs::LatencyHistogram::QuantileFromBuckets(high, q);
    const double qm =
        obs::LatencyHistogram::QuantileFromBuckets(merged, q);
    EXPECT_GE(qm, std::min(ql, qh)) << q;
    EXPECT_LE(qm, std::max(ql, qh)) << q;
  }
  // The merged median sits in the low half, the tail in the high half.
  EXPECT_DOUBLE_EQ(obs::LatencyHistogram::QuantileFromBuckets(merged, 0.5),
                   8.0);
  EXPECT_DOUBLE_EQ(
      obs::LatencyHistogram::QuantileFromBuckets(merged, 0.99), 1024.0);
}

TEST(LatencyHistogram, WindowExpiresAndFallsBackToCumulative) {
  const auto t0 = LatencyEpoch();
  obs::LatencyHistogram h;
  h.Record(100.0, t0);  // (64, 128] -> bound 128.
  const auto fresh = h.Snap(t0 + std::chrono::seconds(30));
  EXPECT_EQ(fresh.window_count, 1u);
  EXPECT_DOUBLE_EQ(fresh.p50_us, 128.0);

  // Two minutes later the window is empty, but a shutdown-time snapshot
  // still reports the cumulative distribution.
  const auto stale = h.Snap(t0 + std::chrono::seconds(120));
  EXPECT_EQ(stale.window_count, 0u);
  EXPECT_EQ(stale.count, 1u);
  EXPECT_DOUBLE_EQ(stale.p50_us, 128.0);
}

TEST(LatencyHistogram, SliceReuseDropsStaleCountsFromTheWindow) {
  const auto t0 = LatencyEpoch();
  obs::LatencyHistogram h;
  h.Record(100.0, t0);
  // 60s later the same slice slot is reused for a new slice number; the
  // stale counts must not leak into the new window.
  h.Record(5000.0, t0 + std::chrono::seconds(60));
  const auto snap = h.Snap(t0 + std::chrono::seconds(60));
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.window_count, 1u);
  EXPECT_DOUBLE_EQ(snap.p50_us, 8192.0);  // 5000 -> (4096, 8192].
}

TEST(LatencyHistogram, WriteJsonEmitsExactIntegerBounds) {
  const auto t0 = LatencyEpoch();
  obs::LatencyHistogram h;
  h.Record(std::pow(2.0, 60), t0);
  std::ostringstream os;
  h.WriteJson(os, t0);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"window_count\":1"), std::string::npos);
  // Quantiles and bucket bounds are exact integers (mean_us is a plain
  // JsonNumber and may legitimately render scientifically).
  EXPECT_NE(json.find("\"p50_us\":1152921504606846976"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("[[1152921504606846976,1]]"), std::string::npos)
      << json;
}

TEST(Trace, NullScopedSpanIsANoOp) {
  // Must not crash and must not read the clock.
  const obs::ScopedSpan span(nullptr, "noop");
}

TEST(Trace, TraceIdsAreUniqueNonZero16Hex) {
  const std::uint64_t a = obs::NewTraceId();
  const std::uint64_t b = obs::NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  const std::string hex = obs::TraceIdHex(a);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Trace, SpansNestViaParentLinks) {
  obs::Trace trace(obs::NewTraceId());
  {
    const obs::ScopedSpan outer(&trace, "outer");
    { const obs::ScopedSpan inner(&trace, "inner"); }
  }
  // Spans record on destruction: inner first, outer second.
  ASSERT_EQ(trace.Spans().size(), 2u);
  const obs::TraceSpan& inner = trace.Spans()[0];
  const obs::TraceSpan& outer = trace.Spans()[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_LE(outer.start, inner.start);
  EXPECT_GE(outer.end, inner.end);
}

TEST(Trace, BufferIsBoundedAndCountsDrops) {
  obs::Trace trace(obs::NewTraceId(), /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    const obs::ScopedSpan span(&trace, "s");
  }
  EXPECT_EQ(trace.Spans().size(), 2u);
  EXPECT_EQ(trace.Dropped(), 3u);
}

TEST(Trace, ChromeTraceJsonCarriesIdentityAndCompleteEvents) {
  obs::Trace trace(obs::NewTraceId());
  { const obs::ScopedSpan span(&trace, "only"); }
  const std::string json = trace.ChromeTraceString();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"only\""), std::string::npos);
  EXPECT_NE(json.find(trace.TraceIdString()), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
}

TEST(Trace, RunMsriOpensPhaseSpansUnderTotal) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 5, 6, 9000, 800.0);
  obs::Trace trace(obs::NewTraceId());
  MsriOptions opt;
  opt.trace = &trace;
  const MsriResult result = RunMsri(tree, tech, opt);
  ASSERT_FALSE(result.Pareto().empty());

  std::uint64_t total_id = 0;
  for (const obs::TraceSpan& s : trace.Spans()) {
    if (std::string_view(s.name) == "msri.total") total_id = s.span_id;
  }
  ASSERT_NE(total_id, 0u);
  bool saw_leaf = false;
  bool saw_root = false;
  for (const obs::TraceSpan& s : trace.Spans()) {
    const std::string_view name(s.name);
    if (name == "msri.leaf") {
      saw_leaf = true;
      EXPECT_EQ(s.parent_id, total_id);
    }
    if (name == "msri.root") {
      saw_root = true;
      EXPECT_EQ(s.parent_id, total_id);
    }
  }
  EXPECT_TRUE(saw_leaf);
  EXPECT_TRUE(saw_root);
}

}  // namespace
}  // namespace msn
