#include "obs/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/ard.h"
#include "core/msri.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Timer, RecordAccumulatesAndConverts) {
  obs::Timer t;
  EXPECT_EQ(t.Calls(), 0u);
  t.Record(1'500'000);  // 1.5 ms.
  t.Record(500'000);
  EXPECT_EQ(t.Calls(), 2u);
  EXPECT_EQ(t.TotalNs(), 2'000'000u);
  EXPECT_DOUBLE_EQ(t.TotalMs(), 2.0);
  EXPECT_DOUBLE_EQ(t.MeanUs(), 1000.0);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  // Must not crash and must not read the clock.
  const obs::ScopedTimer t(nullptr);
}

TEST(ScopedTimer, RecordsOneCall) {
  obs::Timer timer;
  { const obs::ScopedTimer t(&timer); }
  EXPECT_EQ(timer.Calls(), 1u);
}

TEST(Histogram, TracksMomentsAndBuckets) {
  obs::Histogram h;
  h.Record(1.0);
  h.Record(3.0);
  h.Record(8.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 8.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(RunStats, InstrumentsRegisterOnFirstUse) {
  obs::RunStats stats;
  EXPECT_TRUE(stats.Empty());
  obs::Counter& c = stats.GetCounter("demo.count");
  obs::Timer& t = stats.GetTimer("demo.time");
  // Same name must return the same instrument (stable handles).
  EXPECT_EQ(&stats.GetCounter("demo.count"), &c);
  EXPECT_EQ(&stats.GetTimer("demo.time"), &t);
  EXPECT_FALSE(stats.Empty());
  EXPECT_EQ(stats.Counters().size(), 1u);
  EXPECT_EQ(stats.Timers().size(), 1u);
}

TEST(RunStats, SinkRegistersTheMsriInstrumentSet) {
  obs::RunStats stats;
  const obs::StatsSink sink(&stats);
  for (const char* name :
       {"msri.leaf", "msri.augment", "msri.join", "msri.repeater",
        "msri.root", "msri.total", "mfs.time", "ard.total"}) {
    EXPECT_EQ(stats.Timers().count(name), 1u) << name;
  }
  EXPECT_EQ(stats.Counters().count("mfs.candidates_in"), 1u);
  EXPECT_EQ(stats.Histograms().count("msri.set_size"), 1u);
}

TEST(RunStats, JsonContainsTheFiveDpPhases) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);

  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 5, 6, 9000, 800.0);
  MsriOptions opt;
  opt.stats = &sink;
  const MsriResult result = RunMsri(tree, tech, opt);
  ASSERT_FALSE(result.Pareto().empty());

  const std::string json = stats.JsonString();
  EXPECT_NE(json.find("\"schema\":\"msn-run-stats-v1\""), std::string::npos);
  for (const char* phase :
       {"\"msri.leaf\"", "\"msri.augment\"", "\"msri.join\"",
        "\"msri.repeater\"", "\"msri.root\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }

  // The DP actually passed through every phase at least once.
  EXPECT_GT(stats.GetTimer("msri.leaf").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.join").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.root").Calls(), 0u);
  EXPECT_GT(stats.GetTimer("msri.total").Calls(), 0u);
  EXPECT_GT(stats.GetCounter("mfs.candidates_in").Value(), 0u);
  EXPECT_GT(stats.GetHistogram("pwl.max.segments").Count(), 0u);
}

TEST(RunStats, DisabledSinkLeavesRegistryEmpty) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 2000.0, 1);

  obs::RunStats stats;  // Never attached to any sink.
  const MsriResult result = RunMsri(tree, tech);  // options.stats == nullptr.
  ASSERT_FALSE(result.Pareto().empty());
  ComputeArd(tree, tech);  // Default sink argument is nullptr too.
  EXPECT_TRUE(stats.Empty());
  EXPECT_NE(stats.JsonString().find("\"timers\":{}"), std::string::npos);
}

TEST(RunStats, MfsPruneCountersAreConsistent) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 4, 6, 9000, 800.0);
  MsriOptions opt;
  opt.stats = &sink;
  RunMsri(tree, tech, opt);

  const auto in = stats.GetCounter("mfs.candidates_in").Value();
  const auto out = stats.GetCounter("mfs.candidates_out").Value();
  const auto pruned = stats.GetCounter("mfs.pruned_full").Value();
  EXPECT_GT(in, 0u);
  EXPECT_LE(out, in);
  EXPECT_EQ(in - out, pruned);

  // The derived prune rate lands in [0, 1] and matches the counters.
  const auto it = stats.Values().find("mfs.prune_rate");
  ASSERT_NE(it, stats.Values().end());
  EXPECT_NEAR(it->second,
              1.0 - static_cast<double>(out) / static_cast<double>(in),
              1e-12);
}

TEST(RunStats, ArdPassTimersFireOncePerCall) {
  obs::RunStats stats;
  obs::StatsSink sink(&stats);
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 2000.0, 1);
  ComputeArd(tree, tech, &sink);
  EXPECT_EQ(stats.GetTimer("ard.total").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.rooting").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.caps").Calls(), 1u);
  EXPECT_EQ(stats.GetTimer("ard.combine").Calls(), 1u);
}

TEST(RunStats, RenderTextMentionsEveryInstrument) {
  obs::RunStats stats;
  stats.SetLabel("tool", "stats_test");
  stats.SetValue("answer", 42.0);
  stats.GetCounter("c.one").Add(7);
  stats.GetTimer("t.one").Record(1000);
  std::ostringstream os;
  stats.RenderText(os);
  const std::string text = os.str();
  for (const char* needle : {"tool", "stats_test", "answer", "c.one", "t.one"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(RunStats, JsonNumbersAreFiniteOrNull) {
  obs::RunStats stats;
  stats.SetValue("bad", std::nan(""));
  const std::string json = stats.JsonString();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
}

}  // namespace
}  // namespace msn
