// Concurrency and fault harness for the optimization service
// (docs/SERVICE.md "Concurrency & request lifecycle").  Runs in the CI
// TSan leg: the assertions here are half the point, the data-race-free
// execution under load is the other half.
//
// Covered contracts:
//   * cooperative cancellation (src/common/cancel.h): token semantics,
//     pre-start / mid-merge / post-completion firing against RunMsri,
//     partial-stats merge without double counting;
//   * a deadline expiring mid-DP answers `cancelled` in bounded time
//     (deliberately oversized net) instead of running to completion;
//   * per-connection TCP serving: >= 8 concurrent clients with mixed
//     normal / duplicate / malformed / deadline / mid-request-disconnect
//     traffic — every request on a surviving connection gets exactly one
//     parseable response, duplicates are byte-identical across
//     connections, and no fd leaks across a full server lifecycle;
//   * bounded connection count (structured `overloaded` refusal) and
//     load shedding by queue depth and by calibrated cost estimate;
//   * accept-loop fault handling: transient errno (EMFILE et al.) backs
//     off instead of spinning or dying, fatal errno stops the loop —
//     driven through the injectable accept fn (src/service/fdbuf.h).
#include "service/server.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "netgen/netgen.h"
#include "obs/stats.h"
#include "rctree/rctree.h"
#include "service/fdbuf.h"
#include "service/json.h"
#include "tech/tech.h"
#include "test_util.h"

namespace msn {
namespace {

using service::AcceptBackoffDelay;
using service::JsonValue;
using service::Server;
using service::ServerOptions;
using service::TransientAcceptError;
using testing::SmallTech;

RcTree ExperimentNet(std::uint64_t seed, std::size_t terminals = 5) {
  NetConfig cfg;
  cfg.seed = seed;
  cfg.num_terminals = terminals;
  return BuildExperimentNet(cfg, SmallTech());
}

std::string NetText(const RcTree& tree) {
  std::ostringstream os;
  WriteNet(os, tree);
  return os.str();
}

std::string OptimizeLine(const std::string& id, const std::string& net,
                         double deadline_ms = -1.0) {
  std::ostringstream os;
  os << "{\"op\":\"optimize\",\"id\":\"" << id << "\",\"net\":\""
     << obs::JsonEscape(net) << "\"";
  if (deadline_ms >= 0.0) os << ",\"deadline_ms\":" << deadline_ms;
  os << "}";
  return os.str();
}

/// A net whose DP takes several seconds at full tilt — orders of
/// magnitude past any deadline used here, so "the DP was abandoned" and
/// "the DP ran to completion" are unmistakably different wall times.
/// Removes the per-request `"trace_id":"<16 hex>",` fragment so response
/// lines can be byte-compared (the id is unique per request by design).
std::string StripTraceId(std::string line) {
  const std::string key = "\"trace_id\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return line;
  line.erase(at, key.size() + 18);
  return line;
}

std::string OversizedNet() {
  static const std::string net = NetText(ExperimentNet(99, 44));
  return net;
}

double StatsNumber(const JsonValue& stats, const char* section,
                   const char* field) {
  return stats.Find(section)->Find(field)->AsNumber();
}

JsonValue ServerStats(Server& server) {
  std::ostringstream os;
  server.WriteStatsJson(os);
  return JsonValue::Parse(os.str());
}

std::size_t OpenFdCount() {
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------
// TCP harness: ServeTcp on its own thread, line-based clients.

struct TcpServer {
  Server server;
  std::thread thread;
  std::ostringstream log;
  int rc = -1;

  TcpServer(const Technology& tech, const ServerOptions& options)
      : server(tech, options) {
    thread = std::thread([this] { rc = server.ServeTcp(0, log); });
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.BoundPort() == 0) {
      if (std::chrono::steady_clock::now() >= give_up) {
        ADD_FAILURE() << "server never bound: " << log.str();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~TcpServer() {
    if (thread.joinable()) thread.join();
  }

  /// Blocks until ServeTcp returned (a shutdown op must be in flight).
  int Join() {
    thread.join();
    return rc;
  }
};

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Line-oriented client over one TCP connection; the same FdStreamBuf
/// the server uses, pointed the other way.
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port)
      : fd_(ConnectLoopback(port)), buf_(fd_), in_(&buf_), out_(&buf_) {}
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connected() const { return fd_ >= 0; }

  void Send(const std::string& line) {
    out_ << line << '\n';
    out_.flush();
  }

  bool Recv(std::string* line) {
    return static_cast<bool>(std::getline(in_, *line));
  }

  /// Simulates a client dying mid-request: hard close, nothing read.
  void CloseAbruptly() {
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_;
  service::FdStreamBuf buf_;
  std::istream in_;
  std::ostream out_;
};

// ---------------------------------------------------------------------
// Cancellation token semantics.

TEST(Cancellation, TokenObservesSourceAndDeadline) {
  const CancellationToken never;
  EXPECT_FALSE(never.Valid());
  EXPECT_FALSE(never.Cancelled());
  never.Check();  // must not throw

  CancellationSource source;
  const CancellationToken token = source.Token();
  EXPECT_TRUE(token.Valid());
  EXPECT_FALSE(token.Cancelled());
  source.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_THROW(token.Check(), CancelledError);

  const CancellationSource expired(std::chrono::steady_clock::now() -
                                   std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.Token().Cancelled());
  EXPECT_FALSE(expired.CancelRequested());  // clock, not explicit
  const CancellationSource future(std::chrono::steady_clock::now() +
                                  std::chrono::hours(1));
  EXPECT_FALSE(future.Token().Cancelled());

  // A merged token fires when either constituent fires.
  CancellationSource a;
  const CancellationSource b;
  const CancellationToken merged =
      CancellationToken::Merged(a.Token(), b.Token());
  EXPECT_FALSE(merged.Cancelled());
  a.Cancel();
  EXPECT_TRUE(merged.Cancelled());
  EXPECT_FALSE(b.Token().Cancelled());
}

TEST(Cancellation, PreCancelledTokenAbortsBeforeAnyWork) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(1, 6);
  CancellationSource source;
  source.Cancel();
  MsriOptions opt;
  opt.cancel = source.Token();
  std::size_t observed = 0;
  opt.set_observer = [&observed](NodeId, const SolutionSet&) {
    ++observed;
  };
  EXPECT_THROW(RunMsri(tree, tech, opt), CancelledError);
  // The very first Solve() poll fired: no node was ever completed.
  EXPECT_EQ(observed, 0u);
}

TEST(Cancellation, MidRunCancelLeavesValidPartialStats) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(2, 8);
  obs::RunStats run;
  obs::StatsSink sink(&run);
  CancellationSource source;
  MsriOptions opt;
  opt.stats = &sink;
  opt.cancel = source.Token();
  // Deterministic mid-run trigger: the observer fires as the second
  // node's set completes (set_observer also forces a serial DP), so the
  // next Solve() poll cancels with real partial work behind it.
  std::size_t observed = 0;
  opt.set_observer = [&observed, &source](NodeId, const SolutionSet&) {
    if (++observed == 2) source.Cancel();
  };
  EXPECT_THROW(RunMsri(tree, tech, opt), CancelledError);
  EXPECT_EQ(observed, 2u);  // nothing completed after the cancel

  // The partially recorded registry is schema-valid and consistent: the
  // phase timers that ran were recorded on unwind, exactly once.
  const JsonValue doc = JsonValue::Parse(run.JsonString());
  const JsonValue& timers = *doc.Find("timers");
  EXPECT_DOUBLE_EQ(timers.Find("msri.total")->Find("calls")->AsNumber(),
                   1.0);
  EXPECT_GE(timers.Find("msri.leaf")->Find("calls")->AsNumber(), 1.0);
}

TEST(Cancellation, CancelAfterCompletionHasNoEffect) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(3, 6);
  CancellationSource source;
  MsriOptions opt;
  opt.cancel = source.Token();
  const MsriResult result = RunMsri(tree, tech, opt);
  source.Cancel();  // too late by design: the result is already ours
  EXPECT_GE(result.Pareto().size(), 1u);
  EXPECT_GT(result.Stats().solutions_generated, 0u);
}

// ---------------------------------------------------------------------
// Mid-DP deadline cancellation through the server (acceptance: bounded
// time on an oversized net, partial stats merged exactly once).

TEST(ServerCancellation, DeadlineExpiringMidDpAnswersCancelledInBoundedTime) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 1;
  Server server(tech, options);
  std::istringstream in(OptimizeLine("big", OversizedNet(), 200.0) + "\n" +
                        "{\"op\":\"shutdown\",\"id\":\"x\"}\n");
  std::ostringstream out;
  const auto started = std::chrono::steady_clock::now();
  EXPECT_TRUE(server.Serve(in, out));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  // Full-tilt this DP takes several seconds even in a release build; a
  // cancelled run must come back shortly after the 200ms deadline.  The
  // bound is generous for sanitizer builds yet far below the full run.
  EXPECT_LT(elapsed_ms, 4000.0);

  bool saw_cancelled = false;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) {
    if (line.find("\"id\":\"big\"") == std::string::npos) continue;
    saw_cancelled = true;
    const JsonValue v = JsonValue::Parse(line);
    EXPECT_FALSE(v.Find("ok")->AsBool()) << line;
    EXPECT_TRUE(v.Find("cancelled")->AsBool()) << line;
    EXPECT_NE(v.Find("error")->AsString().find("deadline exceeded"),
              std::string::npos)
        << line;
  }
  EXPECT_TRUE(saw_cancelled);

  const JsonValue stats = ServerStats(server);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "dp_runs"), 0.0);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "timeouts"), 0.0);
}

TEST(ServerCancellation, PartialStatsMergeExactlyOnceAcrossCancelAndRerun) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 1;
  Server server(tech, options);
  // Big enough that a 250ms deadline reliably fires mid-run, small
  // enough that the uncancelled rerun completes in test time.  The
  // stats op between the two is a drain barrier: it forces "cut" to
  // resolve (cancelled, as the sole DP owner) before "full" is even
  // read, so "full" re-runs the DP instead of coalescing with it.
  const std::string net = NetText(ExperimentNet(98, 26));
  std::istringstream in(OptimizeLine("cut", net, 250.0) + "\n" +
                        "{\"op\":\"stats\"}\n" +
                        OptimizeLine("full", net) + "\n" +
                        "{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(server.Serve(in, out));

  bool saw_cut = false;
  bool saw_full = false;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) {
    const JsonValue v = JsonValue::Parse(line);
    if (line.find("\"id\":\"cut\"") != std::string::npos) {
      saw_cut = true;
      EXPECT_TRUE(v.Find("cancelled")->AsBool()) << line;
    }
    if (line.find("\"id\":\"full\"") != std::string::npos) {
      saw_full = true;
      EXPECT_TRUE(v.Find("ok")->AsBool()) << line;
    }
  }
  EXPECT_TRUE(saw_cut);
  EXPECT_TRUE(saw_full);

  // One cancelled attempt + one completed run: the registry saw exactly
  // two msri.total invocations (the partial one merged once, not zero
  // times, not twice) while dp_runs counts only the completed one.
  const JsonValue stats = ServerStats(server);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "dp_runs"), 1.0);
  EXPECT_DOUBLE_EQ(stats.Find("registry")
                       ->Find("timers")
                       ->Find("msri.total")
                       ->Find("calls")
                       ->AsNumber(),
                   2.0);
}

// ---------------------------------------------------------------------
// Accept-loop fault handling (injectable accept fn).

struct EmfileThenServe {
  static std::atomic<int> calls;
  static int conn_fd;

  static int Accept(int listener_fd) {
    const int n = calls.fetch_add(1);
    if (n < 3) {
      errno = EMFILE;
      return -1;
    }
    if (n == 3) return conn_fd;
    // From here on behave like the real thing: block until the serve
    // thread processes the shutdown op and shuts the listener down.
    return ::accept(listener_fd, nullptr, nullptr);
  }
};
std::atomic<int> EmfileThenServe::calls{0};
int EmfileThenServe::conn_fd = -1;

TEST(AcceptBackoff, ClassifiesTransientAndFatalErrnos) {
  EXPECT_TRUE(TransientAcceptError(EMFILE));
  EXPECT_TRUE(TransientAcceptError(ENFILE));
  EXPECT_TRUE(TransientAcceptError(EAGAIN));
  EXPECT_TRUE(TransientAcceptError(ECONNABORTED));
  EXPECT_TRUE(TransientAcceptError(ENOBUFS));
  EXPECT_FALSE(TransientAcceptError(EBADF));
  EXPECT_FALSE(TransientAcceptError(EINVAL));
  EXPECT_FALSE(TransientAcceptError(ENOTSOCK));

  using std::chrono::milliseconds;
  EXPECT_EQ(AcceptBackoffDelay(0), milliseconds(0));
  EXPECT_EQ(AcceptBackoffDelay(1), milliseconds(2));
  EXPECT_EQ(AcceptBackoffDelay(2), milliseconds(4));
  EXPECT_EQ(AcceptBackoffDelay(3), milliseconds(8));
  // Capped, never runaway: a week of failures still polls.
  EXPECT_EQ(AcceptBackoffDelay(50), milliseconds(100));
  EXPECT_EQ(AcceptBackoffDelay(1'000'000), milliseconds(100));
}

TEST(AcceptBackoff, TransientAcceptFailureBacksOffThenServes) {
  const Technology tech = SmallTech();
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  // Preload the "connection" with a shutdown request; the response
  // arrives on the same socketpair after the backoff storm clears.
  const std::string request = "{\"op\":\"shutdown\",\"id\":\"bye\"}\n";
  ASSERT_TRUE(service::WriteFully(pair[1], request.data(), request.size()));

  EmfileThenServe::calls.store(0);
  EmfileThenServe::conn_fd = pair[0];
  ServerOptions options;
  options.accept_fn = &EmfileThenServe::Accept;
  Server server(tech, options);
  std::ostringstream log;
  const auto started = std::chrono::steady_clock::now();
  EXPECT_EQ(server.ServeTcp(0, log), 0);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  // Three transient failures, one served connection, one final accept
  // woken by the shutdown — no spin (call 5 would mean a retry storm).
  EXPECT_EQ(EmfileThenServe::calls.load(), 5);
  // The exponential schedule (2+4+8 ms) actually elapsed.
  EXPECT_GE(elapsed_ms, 12.0);
  EXPECT_NE(log.str().find("backing off"), std::string::npos) << log.str();

  service::FdStreamBuf buf(pair[1]);
  std::istream in(&buf);
  std::string response;
  ASSERT_TRUE(std::getline(in, response));
  const JsonValue v = JsonValue::Parse(response);
  EXPECT_TRUE(v.Find("ok")->AsBool()) << response;
  EXPECT_TRUE(v.Find("shutdown")->AsBool()) << response;
  ::close(pair[1]);  // pair[0] was closed by ServeTcp's reaper
}

struct AlwaysFatalAccept {
  static std::atomic<int> calls;
  static int Accept(int) {
    calls.fetch_add(1);
    errno = EBADF;
    return -1;
  }
};
std::atomic<int> AlwaysFatalAccept::calls{0};

TEST(AcceptBackoff, FatalAcceptErrnoStopsTheLoopOnce) {
  const Technology tech = SmallTech();
  AlwaysFatalAccept::calls.store(0);
  ServerOptions options;
  options.accept_fn = &AlwaysFatalAccept::Accept;
  Server server(tech, options);
  std::ostringstream log;
  EXPECT_EQ(server.ServeTcp(0, log), 1);
  EXPECT_EQ(AlwaysFatalAccept::calls.load(), 1);  // no retry, no spin
  EXPECT_NE(log.str().find("accept"), std::string::npos);
}

// ---------------------------------------------------------------------
// Concurrent TCP serving under mixed, partly hostile traffic.

TEST(ServerConcurrency, MixedParallelClientsEachGetExactlyOneResponse) {
  const Technology tech = SmallTech();
  const std::size_t fds_before = OpenFdCount();
  {
    ServerOptions options;
    options.jobs = 4;
    TcpServer tcp(tech, options);
    const std::uint16_t port = tcp.server.BoundPort();

    // One net shared by every well-behaved client (the cross-connection
    // duplicate), one distinct net per client.
    const std::string shared_net = NetText(ExperimentNet(50, 6));
    constexpr std::size_t kNormal = 5;
    std::vector<std::string> shared_responses(kNormal);
    std::vector<std::vector<std::string>> own_responses(kNormal);
    std::vector<std::thread> clients;

    // Clients 0..4: normal traffic — the shared duplicate plus a
    // distinct net, two responses expected, both parseable.
    for (std::size_t c = 0; c < kNormal; ++c) {
      clients.emplace_back([c, port, &shared_net, &shared_responses,
                            &own_responses] {
        TcpClient client(port);
        ASSERT_TRUE(client.Connected());
        const std::string own =
            NetText(ExperimentNet(60 + static_cast<std::uint64_t>(c), 5));
        client.Send(OptimizeLine("shared", shared_net));
        client.Send(OptimizeLine("own", own));
        std::string first;
        std::string second;
        ASSERT_TRUE(client.Recv(&first));
        ASSERT_TRUE(client.Recv(&second));
        for (const std::string* line : {&first, &second}) {
          const JsonValue v = JsonValue::Parse(*line);
          EXPECT_TRUE(v.Find("ok")->AsBool()) << *line;
        }
        // Responses come in completion order; match by id.
        if (first.find("\"id\":\"shared\"") != std::string::npos) {
          shared_responses[c] = first;
          own_responses[c].push_back(second);
        } else {
          shared_responses[c] = second;
          own_responses[c].push_back(first);
        }
      });
    }
    // Client 5: malformed line then a valid request — containment per
    // connection, the garbage answers with an error, the net with ok.
    clients.emplace_back([port] {
      TcpClient client(port);
      ASSERT_TRUE(client.Connected());
      client.Send("this is not json");
      client.Send(OptimizeLine("after", NetText(ExperimentNet(70, 5))));
      std::string bad;
      std::string good;
      ASSERT_TRUE(client.Recv(&bad));
      ASSERT_TRUE(client.Recv(&good));
      EXPECT_FALSE(JsonValue::Parse(bad).Find("ok")->AsBool()) << bad;
      EXPECT_TRUE(JsonValue::Parse(good).Find("ok")->AsBool()) << good;
    });
    // Client 6: oversized net with a tight deadline — answered either
    // `cancelled` (started, then killed mid-run) or `timeout` (expired
    // while queued behind the others); both are exactly-one structured
    // responses, never a hang and never a full multi-second run.
    clients.emplace_back([port] {
      TcpClient client(port);
      ASSERT_TRUE(client.Connected());
      client.Send(OptimizeLine("doomed", OversizedNet(), 150.0));
      std::string line;
      ASSERT_TRUE(client.Recv(&line));
      const JsonValue v = JsonValue::Parse(line);
      EXPECT_FALSE(v.Find("ok")->AsBool()) << line;
      const JsonValue* cancelled = v.Find("cancelled");
      const JsonValue* timeout = v.Find("timeout");
      EXPECT_TRUE((cancelled != nullptr && cancelled->AsBool()) ||
                  (timeout != nullptr && timeout->AsBool()))
          << line;
    });
    // Clients 7..8: mid-request disconnectors — submit expensive work,
    // vanish without reading.  The server must cancel their DPs, not
    // wedge a worker or crash writing to the dead socket.
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([c, port] {
        TcpClient client(port);
        ASSERT_TRUE(client.Connected());
        client.Send(OptimizeLine("ghost" + std::to_string(c),
                                 OversizedNet()));
        client.CloseAbruptly();
      });
    }
    for (std::thread& t : clients) t.join();

    // Duplicates answered byte-identically across connections.
    for (std::size_t c = 1; c < kNormal; ++c) {
      EXPECT_EQ(StripTraceId(shared_responses[0]),
                StripTraceId(shared_responses[c]))
          << "client " << c;
    }
    EXPECT_TRUE(
        JsonValue::Parse(shared_responses[0]).Find("ok")->AsBool());

    // Control connection: stats must be coherent mid-life, then a clean
    // shutdown that drains every serve thread.
    TcpClient control(port);
    ASSERT_TRUE(control.Connected());
    control.Send("{\"op\":\"stats\",\"id\":\"s\"}");
    std::string stats_line;
    ASSERT_TRUE(control.Recv(&stats_line));
    const JsonValue stats = JsonValue::Parse(stats_line);
    EXPECT_EQ(stats.Find("schema")->AsString(), "msn-service-stats-v2");
    const double received = StatsNumber(stats, "requests", "received");
    const double resolved = StatsNumber(stats, "requests", "ok") +
                            StatsNumber(stats, "requests", "errors") +
                            StatsNumber(stats, "requests", "timeouts") +
                            StatsNumber(stats, "requests", "shed_queue") +
                            StatsNumber(stats, "requests", "shed_cost") +
                            StatsNumber(stats, "requests", "cancelled");
    EXPECT_LE(resolved, received);
    control.Send("{\"op\":\"shutdown\",\"id\":\"x\"}");
    std::string bye;
    ASSERT_TRUE(control.Recv(&bye));
    EXPECT_TRUE(JsonValue::Parse(bye).Find("shutdown")->AsBool()) << bye;
    EXPECT_EQ(tcp.Join(), 0);
  }
  // Every connection fd, listener, and serve thread was reclaimed.
  EXPECT_EQ(OpenFdCount(), fds_before);
}

TEST(ServerConcurrency, DisconnectMidRequestCancelsTheInFlightDp) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 2;
  TcpServer tcp(tech, options);
  {
    TcpClient ghost(tcp.server.BoundPort());
    ASSERT_TRUE(ghost.Connected());
    ghost.Send(OptimizeLine("ghost", OversizedNet()));
    // Give the request a moment to reach the DP, then vanish.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ghost.CloseAbruptly();
  }
  // The disconnect must cancel the run long before it could finish.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const JsonValue stats = ServerStats(tcp.server);
    if (StatsNumber(stats, "requests", "cancelled") >= 1.0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "disconnect never cancelled the in-flight DP";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  TcpClient control(tcp.server.BoundPort());
  ASSERT_TRUE(control.Connected());
  control.Send("{\"op\":\"shutdown\"}");
  std::string bye;
  EXPECT_TRUE(control.Recv(&bye));
  EXPECT_EQ(tcp.Join(), 0);
}

TEST(ServerConcurrency, ConnectionCapacityRefusalIsStructured) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.max_connections = 1;
  TcpServer tcp(tech, options);
  TcpClient holder(tcp.server.BoundPort());
  ASSERT_TRUE(holder.Connected());
  holder.Send(OptimizeLine("hold", NetText(ExperimentNet(80, 5))));
  std::string held;
  ASSERT_TRUE(holder.Recv(&held));  // the serve thread is committed now
  EXPECT_TRUE(JsonValue::Parse(held).Find("ok")->AsBool());

  TcpClient refused(tcp.server.BoundPort());
  ASSERT_TRUE(refused.Connected());
  std::string line;
  ASSERT_TRUE(refused.Recv(&line));
  const JsonValue v = JsonValue::Parse(line);
  EXPECT_FALSE(v.Find("ok")->AsBool()) << line;
  EXPECT_TRUE(v.Find("overloaded")->AsBool()) << line;
  // ...and nothing more: the refused connection is closed.
  EXPECT_FALSE(refused.Recv(&line));

  holder.Send("{\"op\":\"shutdown\"}");
  std::string bye;
  EXPECT_TRUE(holder.Recv(&bye));
  EXPECT_EQ(tcp.Join(), 0);
  const JsonValue stats = ServerStats(tcp.server);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "shed_connections"),
                   1.0);
}

// ---------------------------------------------------------------------
// Live stats under storm: the non-draining `{"cmd":"stats"}` verb must
// return consistent snapshots while optimizes are in flight.  Runs in
// the TSan leg — the race-free execution is half the assertion.

TEST(ServerConcurrency, LiveStatsSnapshotsStayConsistentMidStorm) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 4;
  Server server(tech, options);

  constexpr std::size_t kClients = 4;
  constexpr int kPerClient = 5;
  std::vector<std::string> nets;
  for (std::uint64_t n = 0; n < 3; ++n) {
    nets.push_back(NetText(ExperimentNet(90 + n, 5)));
  }

  std::atomic<bool> storm_done{false};
  std::atomic<int> snapshots{0};
  std::thread poller([&server, &storm_done, &snapshots] {
    do {
      const std::string line =
          server.HandleLine("{\"cmd\":\"stats\",\"id\":\"live\"}");
      const JsonValue doc = JsonValue::Parse(line);
      EXPECT_EQ(doc.Find("schema")->AsString(), "msn-service-stats-v2")
          << line;
      const double received = StatsNumber(doc, "requests", "received");
      const double resolved = StatsNumber(doc, "requests", "ok") +
                              StatsNumber(doc, "requests", "errors") +
                              StatsNumber(doc, "requests", "timeouts") +
                              StatsNumber(doc, "requests", "shed_queue") +
                              StatsNumber(doc, "requests", "shed_cost") +
                              StatsNumber(doc, "requests", "cancelled");
      EXPECT_LE(resolved, received) << line;
      const JsonValue* latency = doc.Find("latency");
      if (latency == nullptr) {
        ADD_FAILURE() << "live stats lost the latency object: " << line;
        break;
      }
      // Latency classes record strictly after their lifecycle counter,
      // so class counts never exceed the counter in any snapshot.
      const double hit = latency->Find("hit")->Find("count")->AsNumber();
      const double miss =
          latency->Find("miss")->Find("count")->AsNumber();
      EXPECT_LE(hit + miss, StatsNumber(doc, "requests", "ok")) << line;
      EXPECT_LE(latency->Find("cancelled")->Find("count")->AsNumber(),
                StatsNumber(doc, "requests", "cancelled"))
          << line;
      for (const char* cls :
           {"hit", "miss", "cancelled", "shed", "error"}) {
        const JsonValue* h = latency->Find(cls);
        if (h == nullptr) {
          ADD_FAILURE() << "latency class missing: " << cls;
          continue;
        }
        EXPECT_LE(h->Find("window_count")->AsNumber(),
                  h->Find("count")->AsNumber())
            << cls;
      }
      snapshots.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } while (!storm_done.load(std::memory_order_relaxed));
  });

  std::vector<std::thread> storm;
  for (std::size_t c = 0; c < kClients; ++c) {
    storm.emplace_back([&server, &nets, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        const std::string resp = server.HandleLine(OptimizeLine(
            id, nets[static_cast<std::size_t>(i) % nets.size()]));
        EXPECT_TRUE(JsonValue::Parse(resp).Find("ok")->AsBool()) << resp;
      }
    });
  }
  for (std::thread& t : storm) t.join();
  storm_done.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_GE(snapshots.load(), 1);

  // Settled: every optimize resolved ok and was classified exactly once
  // as a hit (served without its own DP) or a miss (ran the DP).
  const JsonValue final_doc =
      JsonValue::Parse(server.HandleLine("{\"cmd\":\"stats\"}"));
  const JsonValue* latency = final_doc.Find("latency");
  ASSERT_NE(latency, nullptr);
  const double hit = latency->Find("hit")->Find("count")->AsNumber();
  const double miss = latency->Find("miss")->Find("count")->AsNumber();
  EXPECT_EQ(hit + miss, static_cast<double>(kClients * kPerClient));
  EXPECT_GE(miss, 1.0);

  // Every response line carries a trace_id for client-side correlation.
  const std::string one = server.HandleLine(OptimizeLine("last", nets[0]));
  EXPECT_NE(one.find("\"trace_id\":\""), std::string::npos) << one;
}

// ---------------------------------------------------------------------
// Load shedding.

TEST(ServerShedding, QueueDepthGateAnswersOverloaded) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 1;
  options.max_queue_depth = 1;
  Server server(tech, options);
  // The first request occupies the single admitted slot for hundreds of
  // milliseconds; the next two arrive (microseconds later) while it is
  // still in flight and must be shed, not queued.
  std::istringstream in(OptimizeLine("slow", NetText(ExperimentNet(97, 18))) +
                        "\n" +
                        OptimizeLine("shed1", NetText(ExperimentNet(81, 5))) +
                        "\n" +
                        OptimizeLine("shed2", NetText(ExperimentNet(82, 5))) +
                        "\n{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(server.Serve(in, out));

  int ok = 0;
  int overloaded = 0;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) {
    const JsonValue v = JsonValue::Parse(line);
    if (line.find("\"id\":\"slow\"") != std::string::npos) {
      EXPECT_TRUE(v.Find("ok")->AsBool()) << line;
      ++ok;
    }
    if (line.find("\"id\":\"shed") != std::string::npos) {
      EXPECT_FALSE(v.Find("ok")->AsBool()) << line;
      EXPECT_TRUE(v.Find("overloaded")->AsBool()) << line;
      ++overloaded;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(overloaded, 2);
  const JsonValue stats = ServerStats(server);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "shed_queue"), 2.0);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "dp_runs"), 1.0);
}

TEST(ServerShedding, CostGateShedsCalibratedMissesButServesHits) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.max_estimated_solutions = 1.0;  // any calibrated miss sheds
  Server server(tech, options);
  const std::string small = OptimizeLine("small", NetText(ExperimentNet(83, 5)));

  // Uncalibrated model estimates 0: the first request runs and becomes
  // the calibration sample.
  const JsonValue first = JsonValue::Parse(server.HandleLine(small));
  EXPECT_TRUE(first.Find("ok")->AsBool());

  // A different net misses the cache and the (now calibrated) estimate
  // dwarfs the 1-solution budget: shed with a structured refusal.
  const JsonValue shed = JsonValue::Parse(server.HandleLine(
      OptimizeLine("shed", NetText(ExperimentNet(84, 5)))));
  EXPECT_FALSE(shed.Find("ok")->AsBool());
  EXPECT_TRUE(shed.Find("overloaded")->AsBool());
  EXPECT_NE(shed.Find("error")->AsString().find("estimated cost"),
            std::string::npos);

  // The original request is a cache hit: hits are always served, even
  // with the gate this tight.
  const JsonValue again = JsonValue::Parse(server.HandleLine(small));
  EXPECT_TRUE(again.Find("ok")->AsBool());

  const JsonValue stats = ServerStats(server);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "shed_cost"), 1.0);
  EXPECT_DOUBLE_EQ(StatsNumber(stats, "requests", "dp_runs"), 1.0);
}

}  // namespace
}  // namespace msn
