#include <gtest/gtest.h>

#include <algorithm>

#include "geom/hanan.h"
#include "geom/point.h"

namespace msn {
namespace {

TEST(Point, ManhattanDistanceBasics) {
  EXPECT_EQ(ManhattanDistance({0, 0}, {0, 0}), 0);
  EXPECT_EQ(ManhattanDistance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(ManhattanDistance({-2, -3}, {2, 3}), 10);
  EXPECT_EQ(ManhattanDistance({5, 1}, {1, 5}), 8);
}

TEST(Point, ManhattanSymmetryAndTriangle) {
  const Point a{12, 7}, b{-3, 44}, c{100, -5};
  EXPECT_EQ(ManhattanDistance(a, b), ManhattanDistance(b, a));
  EXPECT_LE(ManhattanDistance(a, c),
            ManhattanDistance(a, b) + ManhattanDistance(b, c));
}

TEST(Point, LexicographicOrder) {
  EXPECT_LT((Point{1, 5}), (Point{2, 0}));
  EXPECT_LT((Point{1, 5}), (Point{1, 6}));
  EXPECT_EQ((Point{3, 3}), (Point{3, 3}));
}

TEST(BoundingBox, OfPointRange) {
  const std::vector<Point> pts{{3, 7}, {-1, 2}, {5, 0}};
  const BoundingBox box = ComputeBoundingBox(pts);
  EXPECT_EQ(box.lo, (Point{-1, 0}));
  EXPECT_EQ(box.hi, (Point{5, 7}));
  EXPECT_EQ(box.HalfPerimeter(), 6 + 7);
  EXPECT_TRUE(box.Contains({0, 3}));
  EXPECT_FALSE(box.Contains({6, 3}));
}

TEST(Hanan, GridOfTwoPoints) {
  const std::vector<Point> t{{0, 0}, {2, 3}};
  const std::vector<Point> grid = HananGrid(t);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_NE(std::find(grid.begin(), grid.end(), Point{0, 3}), grid.end());
  EXPECT_NE(std::find(grid.begin(), grid.end(), Point{2, 0}), grid.end());
}

TEST(Hanan, CandidatesExcludeTerminals) {
  const std::vector<Point> t{{0, 0}, {2, 3}, {5, 1}};
  const std::vector<Point> cands = HananCandidates(t);
  for (const Point& p : t) {
    EXPECT_EQ(std::find(cands.begin(), cands.end(), p), cands.end());
  }
  // 3x3 grid minus 3 terminals.
  EXPECT_EQ(cands.size(), 9u - 3u);
}

TEST(Hanan, CollinearPointsProduceNoCandidates) {
  const std::vector<Point> t{{0, 0}, {0, 5}, {0, 9}};
  EXPECT_TRUE(HananCandidates(t).empty());
}

TEST(Hanan, DuplicateCoordinatesDeduplicated) {
  const std::vector<Point> t{{1, 1}, {1, 4}, {3, 1}, {3, 4}};
  // All grid points are terminals: no candidates.
  EXPECT_TRUE(HananCandidates(t).empty());
  EXPECT_EQ(HananGrid(t).size(), 4u);
}

}  // namespace
}  // namespace msn
