#include "flow/refine.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/ard.h"
#include "netgen/netgen.h"
#include "steiner/one_steiner.h"
#include "steiner/prim_dijkstra.h"
#include "steiner/spanning.h"

namespace msn {
namespace {

std::vector<TerminalParams> Params(const Technology& tech, std::size_t n) {
  return std::vector<TerminalParams>(n, DefaultTerminal(tech));
}

TEST(Refine, NeverWorsensTheObjective) {
  const Technology tech = DefaultTechnology();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::vector<Point> pts = RandomTerminals(seed, 8, 8000);
    const SteinerTree initial = RectilinearMst(pts);
    const RefineResult r =
        RefineTopologyForArd(initial, tech, Params(tech, 8));
    EXPECT_LE(r.final_ard_ps, r.initial_ard_ps + 1e-9) << "seed " << seed;
    r.tree.Validate();
    EXPECT_EQ(r.tree.num_terminals, 8u);
    // Terminal coordinates untouched.
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(r.tree.points[t], pts[t]);
    }
  }
}

TEST(Refine, ResultScoreIsConsistent) {
  const Technology tech = DefaultTechnology();
  const std::vector<Point> pts = RandomTerminals(3, 7, 6000);
  const SteinerTree initial = RectilinearMst(pts);
  const RefineResult r =
      RefineTopologyForArd(initial, tech, Params(tech, 7));
  const RcTree rc =
      RcTree::FromSteinerTree(r.tree, tech.wire, Params(tech, 7));
  EXPECT_NEAR(ComputeArd(rc, tech).ard_ps, r.final_ard_ps, 1e-9);
}

TEST(Refine, ImprovesABadTopology) {
  // A Prim-Dijkstra c=1 tree rooted at a corner terminal is a star of
  // long direct edges — heavily suboptimal for the symmetric multisource
  // diameter.  Refinement must find improving re-attachments.
  const Technology tech = DefaultTechnology();
  const std::vector<Point> pts = RandomTerminals(5, 10, 10'000);
  const SteinerTree star = PrimDijkstra(pts, 0, 1.0);
  const RefineResult r =
      RefineTopologyForArd(star, tech, Params(tech, 10));
  EXPECT_LT(r.final_ard_ps, r.initial_ard_ps);
  EXPECT_GE(r.moves_accepted, 1u);
}

TEST(Refine, LocalOptimumOfGoodTopologyMovesLittle) {
  // 1-Steiner trees are already strong; refinement should accept at most
  // a few moves and never regress.
  const Technology tech = DefaultTechnology();
  const std::vector<Point> pts = RandomTerminals(11, 9, 9000);
  const SteinerTree good = IteratedOneSteiner(pts);
  const RefineResult r =
      RefineTopologyForArd(good, tech, Params(tech, 9));
  EXPECT_LE(r.final_ard_ps, r.initial_ard_ps + 1e-9);
  EXPECT_LE(r.moves_accepted, 5u);
}

TEST(Refine, MoveBudgetRespected) {
  const Technology tech = DefaultTechnology();
  const std::vector<Point> pts = RandomTerminals(5, 10, 10'000);
  const SteinerTree star = PrimDijkstra(pts, 0, 1.0);
  RefineOptions opt;
  opt.max_moves = 1;
  const RefineResult r =
      RefineTopologyForArd(star, tech, Params(tech, 10), opt);
  EXPECT_LE(r.moves_accepted, 1u);
}

TEST(Refine, RejectsMismatchedParams) {
  const Technology tech = DefaultTechnology();
  const std::vector<Point> pts = RandomTerminals(2, 5, 4000);
  const SteinerTree tree = RectilinearMst(pts);
  EXPECT_THROW(RefineTopologyForArd(tree, tech, Params(tech, 4)),
               CheckError);
}

}  // namespace
}  // namespace msn
