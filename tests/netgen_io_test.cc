#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "common/check.h"
#include "io/report.h"
#include "io/table.h"
#include "core/msri.h"
#include "netgen/netgen.h"
#include "steiner/one_steiner.h"

namespace msn {
namespace {

TEST(Netgen, DeterministicInSeed) {
  const auto a = RandomTerminals(42, 10, 10'000);
  const auto b = RandomTerminals(42, 10, 10'000);
  EXPECT_EQ(a, b);
  const auto c = RandomTerminals(43, 10, 10'000);
  EXPECT_NE(a, c);
}

TEST(Netgen, TerminalsUniqueAndInRange) {
  const auto pts = RandomTerminals(7, 50, 10'000);
  EXPECT_EQ(pts.size(), 50u);
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 10'000);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 10'000);
  }
  auto sorted = pts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Netgen, ExperimentNetStructure) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 1;
  cfg.num_terminals = 10;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  tree.Validate();
  EXPECT_EQ(tree.NumTerminals(), 10u);
  EXPECT_FALSE(tree.InsertionPoints().empty());
  // Average insertion spacing should be well under the 800 um bound
  // (paper footnote 14 reports ~450 um).
  const double avg = tree.TotalLengthUm() /
                     static_cast<double>(tree.NumEdges());
  EXPECT_LT(avg, 800.0);
}

TEST(Netgen, PTreeTopologyOptionWorksEndToEnd) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 4;
  cfg.num_terminals = 8;
  cfg.topology = TopologyKind::kPTree;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  tree.Validate();
  const MsriResult r = RunMsri(tree, tech);
  EXPECT_FALSE(r.Pareto().empty());
  EXPECT_LT(r.MinArd()->ard_ps, r.MinCost()->ard_ps);
}

TEST(Netgen, Fig11NetMatchesPaperScale) {
  const Technology tech = DefaultTechnology();
  const RcTree tree = BuildFig11Net(tech);
  EXPECT_EQ(tree.NumTerminals(), 8u);
  // Paper: total wirelength 19.6 kum; ours within 15%.
  EXPECT_NEAR(tree.TotalLengthUm(), 19'600.0, 3000.0);
}

TEST(Table, FormatsAlignedColumns) {
  TablePrinter t({"net", "diam", "cost"});
  t.AddRow({"10", "0.55", "2.41"});
  t.AddRow({"20", "0.50", "3.10"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("net"), std::string::npos);
  EXPECT_NE(out.find("0.55"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // 3 content lines + separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"1"}), CheckError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.2345, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(Report, AsciiRenderingShowsStructure) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 2;
  cfg.num_terminals = 5;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  // Pick the insertion point farthest from all terminals so its '#'
  // marker cannot share a canvas cell with a higher-priority terminal.
  NodeId best_ip = tree.InsertionPoints()[0];
  std::int64_t best_dist = -1;
  for (const NodeId ip : tree.InsertionPoints()) {
    std::int64_t nearest = std::numeric_limits<std::int64_t>::max();
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      nearest = std::min(nearest,
                         ManhattanDistance(tree.Node(ip).pos,
                                           tree.Node(tree.TerminalNode(t))
                                               .pos));
    }
    if (nearest > best_dist) {
      best_dist = nearest;
      best_ip = ip;
    }
  }
  RepeaterAssignment assign(tree.NumNodes());
  const RcEdge& adj = tree.Edge(tree.AdjacentEdges(best_ip)[0]);
  assign.Place(best_ip, PlacedRepeater{
                            0, adj.a == best_ip ? adj.b : adj.a});
  const std::string art = RenderAscii(tree, assign, 48, 24);
  // All five terminal digits, at least one repeater marker and wires.
  for (char d : {'0', '1', '2', '3', '4'}) {
    EXPECT_NE(art.find(d), std::string::npos) << d;
  }
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Netgen, BusLikeTerminalsStayNearTheSpine) {
  const auto pts = BusLikeTerminals(5, 12, 10'000, 400);
  EXPECT_EQ(pts.size(), 12u);
  for (const Point& p : pts) {
    EXPECT_GE(p.y, 5000 - 400);
    EXPECT_LE(p.y, 5000 + 400);
  }
  // Deterministic in the seed.
  EXPECT_EQ(pts, BusLikeTerminals(5, 12, 10'000, 400));
}

TEST(Netgen, ClusteredTerminalsRespectRadius) {
  const std::size_t clusters = 3;
  const auto pts = ClusteredTerminals(9, 12, 10'000, clusters, 600);
  EXPECT_EQ(pts.size(), 12u);
  // Points i, i+3, i+6, ... share a cluster: pairwise distance <= 4r
  // (L1 across a 2r x 2r box).
  for (std::size_t i = 0; i + clusters < pts.size(); ++i) {
    EXPECT_LE(ManhattanDistance(pts[i], pts[i + clusters]), 4 * 600)
        << "i=" << i;
  }
}

TEST(Netgen, WorkloadShapesDriveThePipeline) {
  // All three distributions must survive the full topology -> RC-tree ->
  // optimization pipeline.
  const Technology tech = DefaultTechnology();
  for (int shape = 0; shape < 3; ++shape) {
    const std::vector<Point> pts =
        shape == 0   ? RandomTerminals(3, 6, 10'000)
        : shape == 1 ? BusLikeTerminals(3, 6, 10'000)
                     : ClusteredTerminals(3, 6, 10'000);
    const SteinerTree topo = IteratedOneSteiner(pts);
    RcTree tree = RcTree::FromSteinerTree(
        topo, tech.wire,
        std::vector<TerminalParams>(6, DefaultTerminal(tech)));
    tree.AddInsertionPoints(800.0);
    const MsriResult r = RunMsri(tree, tech);
    EXPECT_FALSE(r.Pareto().empty()) << "shape " << shape;
    EXPECT_LE(r.MinArd()->ard_ps, r.MinCost()->ard_ps) << "shape " << shape;
  }
}

TEST(Report, DotExportHasExpectedStructure) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 6;
  cfg.num_terminals = 5;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  RepeaterAssignment assign(tree.NumNodes());
  const NodeId ip = tree.InsertionPoints()[0];
  const RcEdge& adj = tree.Edge(tree.AdjacentEdges(ip)[0]);
  assign.Place(ip, PlacedRepeater{0, adj.a == ip ? adj.b : adj.a});

  std::ostringstream os;
  WriteDot(os, tree, assign, tech);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph msn_net {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"t0\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=orange"), std::string::npos);  // Repeater.
  // One node statement per node, one edge statement per edge.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, tree.NumEdges());
}

TEST(Report, DescribeNetMentionsCounts) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 3;
  cfg.num_terminals = 6;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  std::ostringstream os;
  DescribeNet(os, tree);
  EXPECT_NE(os.str().find("6 terminals"), std::string::npos);
  EXPECT_NE(os.str().find("insertion points"), std::string::npos);
}

}  // namespace
}  // namespace msn
