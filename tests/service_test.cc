// The src/service optimization service (docs/SERVICE.md): canonical
// fingerprint stability / order-independence / sensitivity, sharded-LRU
// cache budgets and collision-checked equality, concurrent mixed
// hit/miss traffic (this suite is part of the TSan gate), and the
// request/response server contracts — byte-identical duplicate answers,
// error containment, structured deadline timeouts, flush semantics.
#include "service/cache.h"
#include "service/canonical.h"
#include "service/json.h"
#include "service/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "netgen/netgen.h"
#include "rctree/rctree.h"
#include "tech/tech.h"
#include "test_util.h"

namespace msn {
namespace {

using service::CacheConfig;
using service::CacheStats;
using service::CanonicalRequest;
using service::Canonicalize;
using service::Fingerprint;
using service::HashBytes;
using service::JsonValue;
using service::Server;
using service::ServerOptions;
using service::SolutionCache;
using testing::SmallTech;

RcTree ExperimentNet(std::uint64_t seed, std::size_t terminals = 5) {
  NetConfig cfg;
  cfg.seed = seed;
  cfg.num_terminals = terminals;
  return BuildExperimentNet(cfg, SmallTech());
}

std::string NetText(const RcTree& tree) {
  std::ostringstream os;
  WriteNet(os, tree);
  return os.str();
}

/// Removes the per-request `"trace_id":"<16 hex>",` fragment so response
/// lines can be byte-compared: the payload is deterministic, the trace id
/// is unique per request by design.
std::string StripTraceId(std::string line) {
  const std::string key = "\"trace_id\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return line;
  // 16 hex chars + closing quote + comma.
  line.erase(at, key.size() + 18);
  return line;
}

std::string OptimizeLine(const std::string& id, const std::string& net) {
  std::ostringstream os;
  os << "{\"op\":\"optimize\",\"id\":\"" << id << "\",\"net\":\""
     << obs::JsonEscape(net) << "\"}";
  return os.str();
}

/// A star: root terminal -- center Steiner -- two leaf terminals with
/// distinct arrivals.  `swap_leaves` flips the construction order of the
/// leaves (different node ids, different adjacency order — electrically
/// the same net).
RcTree StarNet(const Technology& tech, bool swap_leaves) {
  RcTree tree(tech.wire);
  TerminalParams root = DefaultTerminal(tech);
  root.arrival_ps = 10.0;
  TerminalParams leaf_b = DefaultTerminal(tech);
  leaf_b.arrival_ps = 20.0;
  leaf_b.is_source = false;
  TerminalParams leaf_c = DefaultTerminal(tech);
  leaf_c.arrival_ps = 30.0;
  leaf_c.is_source = false;

  const NodeId r = tree.AddTerminal(root, {0, 0});
  const NodeId center = tree.AddNode(NodeKind::kSteiner, {500, 0});
  if (swap_leaves) {
    const NodeId c = tree.AddTerminal(leaf_c, {1000, -400});
    const NodeId b = tree.AddTerminal(leaf_b, {1000, 400});
    tree.AddEdge(center, c, 700.0);
    tree.AddEdge(r, center, 500.0);
    tree.AddEdge(b, center, 600.0);
  } else {
    const NodeId b = tree.AddTerminal(leaf_b, {1000, 400});
    const NodeId c = tree.AddTerminal(leaf_c, {1000, -400});
    tree.AddEdge(r, center, 500.0);
    tree.AddEdge(center, b, 600.0);
    tree.AddEdge(center, c, 700.0);
  }
  tree.Validate();
  return tree;
}

/// A hand-forged request with a chosen fingerprint (collision tests).
CanonicalRequest Forged(const Fingerprint& fp, const std::string& text) {
  CanonicalRequest request;
  request.fingerprint = fp;
  request.text = text;
  return request;
}

// ---------------------------------------------------------------------
// Canonical fingerprints.

TEST(Canonical, StableAcrossIdenticalRequests) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(3);
  const MsriOptions opt;
  const CanonicalRequest a = Canonicalize(tree, tech, opt);
  const CanonicalRequest b = Canonicalize(tree, tech, opt);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.fingerprint.Hex(), b.fingerprint.Hex());
  EXPECT_EQ(a.fingerprint.Hex().size(), 32u);
  // Different nets fingerprint differently.
  const CanonicalRequest c = Canonicalize(ExperimentNet(4), tech, opt);
  EXPECT_FALSE(a.fingerprint == c.fingerprint);
}

TEST(Canonical, ConstructionOrderIndependent) {
  const Technology tech = SmallTech();
  const MsriOptions opt;
  const CanonicalRequest a = Canonicalize(StarNet(tech, false), tech, opt);
  const CanonicalRequest b = Canonicalize(StarNet(tech, true), tech, opt);
  EXPECT_EQ(a.text, b.text);
  EXPECT_TRUE(a.fingerprint == b.fingerprint);
}

TEST(Canonical, LibraryOrderIndependent) {
  Technology tech = testing::TwoRepeaterTech();
  const RcTree tree = ExperimentNet(5);
  MsriOptions opt;
  opt.size_drivers = true;
  opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0});
  const CanonicalRequest a = Canonicalize(tree, tech, opt);

  std::reverse(tech.repeaters.begin(), tech.repeaters.end());
  std::reverse(opt.sizing_library.begin(), opt.sizing_library.end());
  const CanonicalRequest b = Canonicalize(tree, tech, opt);
  EXPECT_EQ(a.text, b.text);
  EXPECT_TRUE(a.fingerprint == b.fingerprint);
}

TEST(Canonical, SensitiveToResultAffectingChanges) {
  const Technology tech = SmallTech();
  const RcTree base = ExperimentNet(6);
  const MsriOptions opt;
  const CanonicalRequest a = Canonicalize(base, tech, opt);

  RcTree perturbed = base;
  perturbed.MutableTerminal(1).arrival_ps += 1.0;
  EXPECT_FALSE(a.fingerprint ==
               Canonicalize(perturbed, tech, opt).fingerprint);

  Technology slower = tech;
  slower.repeaters[0].cost += 0.5;
  EXPECT_FALSE(a.fingerprint ==
               Canonicalize(base, slower, opt).fingerprint);

  MsriOptions no_rep = opt;
  no_rep.insert_repeaters = false;
  EXPECT_FALSE(a.fingerprint ==
               Canonicalize(base, tech, no_rep).fingerprint);

  MsriOptions eps = opt;
  eps.mfs.eps *= 2.0;
  EXPECT_FALSE(a.fingerprint ==
               Canonicalize(base, tech, eps).fingerprint);
}

TEST(Canonical, IgnoresNonSemanticOptions) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(7);
  const MsriOptions plain;
  obs::RunStats run;
  obs::StatsSink sink(&run);
  MsriOptions hooked;
  hooked.stats = &sink;
  hooked.parallel_min_nodes = 7;
  // A cancellation token is an execution concern, not a problem input:
  // cancellable and plain runs must share a cache fingerprint.
  CancellationSource source;
  hooked.cancel = source.Token();
  EXPECT_TRUE(Canonicalize(tree, tech, plain).fingerprint ==
              Canonicalize(tree, tech, hooked).fingerprint);
}

TEST(Canonical, NegativeZeroAndNanFold) {
  const Technology tech = SmallTech();
  RcTree a = StarNet(tech, false);
  RcTree b = StarNet(tech, false);
  a.MutableTerminal(1).downstream_ps = 0.0;
  b.MutableTerminal(1).downstream_ps = -0.0;
  const MsriOptions opt;
  EXPECT_TRUE(Canonicalize(a, tech, opt).fingerprint ==
              Canonicalize(b, tech, opt).fingerprint);
}

// ---------------------------------------------------------------------
// JSON parser.

TEST(Json, ParsesTheProtocolSubset) {
  const JsonValue v = JsonValue::Parse(
      "{\"op\":\"optimize\",\"id\":7,\"spec\":-1.5e2,\"flag\":true,"
      "\"none\":null,\"arr\":[1,\"two\\n\",{}]}");
  ASSERT_TRUE(v.IsObject());
  EXPECT_EQ(v.Find("op")->AsString(), "optimize");
  EXPECT_DOUBLE_EQ(v.Find("id")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(v.Find("spec")->AsNumber(), -150.0);
  EXPECT_TRUE(v.Find("flag")->AsBool());
  EXPECT_TRUE(v.Find("none")->IsNull());
  ASSERT_TRUE(v.Find("arr")->IsArray());
  EXPECT_EQ(v.Find("arr")->AsArray()[1].AsString(), "two\n");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::Parse(""), CheckError);
  EXPECT_THROW(JsonValue::Parse("{\"a\":}"), CheckError);
  EXPECT_THROW(JsonValue::Parse("[1,2"), CheckError);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), CheckError);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW(JsonValue::Parse(deep), CheckError);
}

// ---------------------------------------------------------------------
// Sharded LRU cache.

MsriSummary TinySummary(double cost) {
  MsriSummary s;
  s.pareto.push_back({cost, 100.0 - cost, 1});
  return s;
}

TEST(SolutionCache, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 3;
  SolutionCache cache(cfg);
  const auto req = [](char tag) {
    const std::string text(1, tag);
    return Forged(HashBytes(text), text);
  };
  cache.Insert(req('a'), TinySummary(1));
  cache.Insert(req('b'), TinySummary(2));
  cache.Insert(req('c'), TinySummary(3));
  ASSERT_TRUE(cache.Lookup(req('a')).has_value());  // refresh 'a'
  cache.Insert(req('d'), TinySummary(4));           // evicts 'b'
  EXPECT_TRUE(cache.Lookup(req('a')).has_value());
  EXPECT_FALSE(cache.Lookup(req('b')).has_value());
  EXPECT_TRUE(cache.Lookup(req('c')).has_value());
  EXPECT_TRUE(cache.Lookup(req('d')).has_value());
  const CacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SolutionCache, ByteBudgetEvictsButKeepsNewest) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 100;
  cfg.max_bytes = 600;  // each ~1KB entry alone busts the budget
  SolutionCache cache(cfg);
  const std::string big_a(1000, 'a');
  const std::string big_b(1000, 'b');
  cache.Insert(Forged(HashBytes(big_a), big_a), TinySummary(1));
  EXPECT_EQ(cache.Snapshot().entries, 1u);  // oversized newest survives
  cache.Insert(Forged(HashBytes(big_b), big_b), TinySummary(2));
  const CacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_FALSE(cache.Lookup(Forged(HashBytes(big_a), big_a)).has_value());
  EXPECT_TRUE(cache.Lookup(Forged(HashBytes(big_b), big_b)).has_value());
}

TEST(SolutionCache, CollisionCheckedEqualityNeverServesWrongEntry) {
  SolutionCache cache(CacheConfig{});
  const Fingerprint fp = HashBytes("whatever");
  const CanonicalRequest a = Forged(fp, "request A");
  const CanonicalRequest b = Forged(fp, "request B");  // forged collision
  cache.Insert(a, TinySummary(1));
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_GE(cache.Snapshot().collisions, 1u);
  ASSERT_TRUE(cache.Lookup(a).has_value());
  EXPECT_DOUBLE_EQ(cache.Lookup(a)->pareto[0].cost, 1.0);
  cache.Insert(b, TinySummary(2));  // takeover: latest wins
  EXPECT_FALSE(cache.Lookup(a).has_value());
  ASSERT_TRUE(cache.Lookup(b).has_value());
  EXPECT_DOUBLE_EQ(cache.Lookup(b)->pareto[0].cost, 2.0);
}

TEST(SolutionCache, FlushDropsEntriesKeepsCounters) {
  SolutionCache cache(CacheConfig{});
  const CanonicalRequest a = Forged(HashBytes("x"), "x");
  cache.Insert(a, TinySummary(1));
  ASSERT_TRUE(cache.Lookup(a).has_value());
  cache.Flush();
  EXPECT_FALSE(cache.Lookup(a).has_value());
  const CacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.hits, 1u);  // pre-flush hit survives
}

TEST(SolutionCache, IndexKeyCollisionTakeoverBetweenDistinctFingerprints) {
  // Two DIFFERENT full fingerprints engineered onto one 64-bit index
  // key: hi ^ (lo * K) collides when hi absorbs the multiplier.
  constexpr std::uint64_t kMult = 0x9e3779b97f4a7c15ull;
  const Fingerprint fp_a{7, 0};
  const Fingerprint fp_b{7 ^ kMult, 1};
  ASSERT_NE(fp_a.hi, fp_b.hi);
  CacheConfig cfg;
  cfg.shards = 1;  // both fingerprints must land in the same shard
  SolutionCache cache(cfg);
  const CanonicalRequest a = Forged(fp_a, "net A");
  const CanonicalRequest b = Forged(fp_b, "net B");
  cache.Insert(a, TinySummary(1));
  ASSERT_TRUE(cache.Lookup(a).has_value());
  // The colliding lookup is a counted collision, never a wrong answer.
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_EQ(cache.Snapshot().collisions, 1u);
  // Inserting the collider takes the slot over: latest wins, and the
  // displaced entry degrades to a miss (it was unservable anyway).
  cache.Insert(b, TinySummary(2));
  EXPECT_EQ(cache.Snapshot().collisions, 2u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  ASSERT_TRUE(cache.Lookup(b).has_value());
  EXPECT_DOUBLE_EQ(cache.Lookup(b)->pareto[0].cost, 2.0);
  // The shard's byte accounting followed the takeover (no leak): one
  // entry's worth, not two.
  EXPECT_EQ(cache.Snapshot().entries, 1u);
}

TEST(SolutionCache, EveryFlushCountsAndCountersSurvive) {
  SolutionCache cache(CacheConfig{});
  const CanonicalRequest a = Forged(HashBytes("y"), "y");
  cache.Insert(a, TinySummary(1));
  ASSERT_TRUE(cache.Lookup(a).has_value());
  cache.Flush();
  cache.Flush();  // flushing an already-empty cache still counts
  const CacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.flushes, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // Traffic counters are NOT reset by Flush — they describe the cache's
  // whole lifetime, and the stats op depends on that.
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // Re-inserting after a flush works normally.
  cache.Insert(a, TinySummary(2));
  ASSERT_TRUE(cache.Lookup(a).has_value());
  EXPECT_EQ(cache.Snapshot().insertions, 2u);
}

TEST(SolutionCache, HugeShardCountIsClampedNotLoopedOn) {
  // Regression: shards near SIZE_MAX used to drive the power-of-two
  // round-up into an overflow loop; now it clamps.
  CacheConfig cfg;
  cfg.shards = std::numeric_limits<std::size_t>::max();
  cfg.max_entries = 8;
  SolutionCache cache(cfg);
  EXPECT_LE(cache.NumShards(), 8u);
  const CanonicalRequest a = Forged(HashBytes("z"), "z");
  cache.Insert(a, TinySummary(1));
  EXPECT_TRUE(cache.Lookup(a).has_value());
}

TEST(SolutionCache, TinyByteBudgetCollapsesShardsInsteadOfDegenerating) {
  // Regression: max_bytes < shards used to split the byte budget into
  // ~1-byte slices, silently evicting everything but one entry per
  // shard.  The constructor now collapses the stripe count first.
  CacheConfig cfg;
  cfg.shards = 8;
  cfg.max_bytes = 6;  // fewer bytes than shards
  SolutionCache cache(cfg);
  EXPECT_EQ(cache.NumShards(), 1u);
  EXPECT_EQ(cache.Config().shards, 1u);
  // The keep-newest rule applies to the single shard as documented.
  const CanonicalRequest a = Forged(HashBytes("p"), "p");
  cache.Insert(a, TinySummary(1));
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_EQ(cache.Snapshot().entries, 1u);
}

TEST(SolutionCache, ZeroBudgetsAreRejectedUpFront) {
  CacheConfig no_entries;
  no_entries.max_entries = 0;
  EXPECT_THROW(SolutionCache{no_entries}, CheckError);
  CacheConfig no_bytes;
  no_bytes.max_bytes = 0;
  EXPECT_THROW(SolutionCache{no_bytes}, CheckError);
}

TEST(SolutionCache, ConcurrentMixedHitMissTraffic) {
  CacheConfig cfg;
  cfg.shards = 4;
  cfg.max_entries = 64;
  SolutionCache cache(cfg);
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string text =
            "key-" + std::to_string((t * 7 + i * 13) % 16);
        const CanonicalRequest req = Forged(HashBytes(text), text);
        if (!cache.Lookup(req).has_value()) {
          cache.Insert(req, TinySummary(static_cast<double>(i % 5)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_LE(stats.entries, 16u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.insertions, 16u);
}

// ---------------------------------------------------------------------
// MsriSummary.

TEST(MsriSummary, SummarizeMirrorsResultSelectors) {
  const Technology tech = SmallTech();
  const RcTree tree = ExperimentNet(8);
  const MsriResult result = RunMsri(tree, tech, MsriOptions{});
  const MsriSummary summary = Summarize(result);
  ASSERT_EQ(summary.pareto.size(), result.Pareto().size());
  ASSERT_FALSE(summary.pareto.empty());
  EXPECT_DOUBLE_EQ(summary.MinCost()->cost, result.MinCost()->cost);
  EXPECT_DOUBLE_EQ(summary.MinArd()->ard_ps, result.MinArd()->ard_ps);
  const double spec = summary.MinArd()->ard_ps + 1.0;
  ASSERT_NE(summary.MinCostFeasible(spec), nullptr);
  EXPECT_DOUBLE_EQ(summary.MinCostFeasible(spec)->cost,
                   result.MinCostFeasible(spec)->cost);
  EXPECT_EQ(summary.MinCostFeasible(
                std::numeric_limits<double>::quiet_NaN()),
            nullptr);
  EXPECT_EQ(summary.MinCostFeasible(summary.MinArd()->ard_ps - 1.0),
            nullptr);
  EXPECT_GT(summary.ApproxBytes(), sizeof(MsriSummary));
}

// ---------------------------------------------------------------------
// Server.

TEST(Server, DuplicateRequestIsByteIdenticalAndServedFromCache) {
  const Technology tech = SmallTech();
  Server server(tech, ServerOptions{});
  const std::string line = OptimizeLine("q", NetText(ExperimentNet(9)));
  const std::string first = server.HandleLine(line);
  const std::string second = server.HandleLine(line);
  EXPECT_NE(first, second);  // trace ids differ per request
  EXPECT_EQ(StripTraceId(first), StripTraceId(second));
  const JsonValue response = JsonValue::Parse(first);
  EXPECT_TRUE(response.Find("ok")->AsBool());
  EXPECT_EQ(response.Find("fingerprint")->AsString().size(), 32u);
  EXPECT_GE(response.Find("pareto")->AsArray().size(), 1u);

  EXPECT_EQ(server.Cache().Snapshot().hits, 1u);
  std::ostringstream stats_os;
  server.WriteStatsJson(stats_os);
  const JsonValue stats = JsonValue::Parse(stats_os.str());
  EXPECT_EQ(stats.Find("schema")->AsString(), "msn-service-stats-v2");
  // One DP execution for two requests — both by the service counter and
  // by the merged registry's msri.total invocation count.
  EXPECT_DOUBLE_EQ(stats.Find("requests")->Find("dp_runs")->AsNumber(),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.Find("cache")->Find("hits")->AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Find("registry")
                       ->Find("timers")
                       ->Find("msri.total")
                       ->Find("calls")
                       ->AsNumber(),
                   1.0);
}

TEST(Server, ContainsBadInputWithoutDying) {
  const Technology tech = SmallTech();
  Server server(tech, ServerOptions{});
  for (const std::string& line : {
           std::string("not json at all"),
           std::string("{\"id\":\"x\"}"),
           std::string("{\"op\":\"frobnicate\"}"),
           std::string("{\"op\":\"optimize\",\"net\":\"garbage\"}"),
           std::string("{\"op\":\"optimize\"}"),
       }) {
    const JsonValue response = JsonValue::Parse(server.HandleLine(line));
    EXPECT_FALSE(response.Find("ok")->AsBool()) << line;
    EXPECT_NE(response.Find("error"), nullptr) << line;
  }
  // The loop is still alive and serving.
  const JsonValue ok = JsonValue::Parse(
      server.HandleLine(OptimizeLine("ok", NetText(ExperimentNet(10)))));
  EXPECT_TRUE(ok.Find("ok")->AsBool());
  std::ostringstream stats_os;
  server.WriteStatsJson(stats_os);
  const JsonValue stats = JsonValue::Parse(stats_os.str());
  EXPECT_DOUBLE_EQ(stats.Find("requests")->Find("errors")->AsNumber(),
                   5.0);
  EXPECT_DOUBLE_EQ(stats.Find("requests")->Find("ok")->AsNumber(), 1.0);
}

TEST(Server, SpecPickMatchesMinCostFeasible) {
  const Technology tech = SmallTech();
  Server server(tech, ServerOptions{});
  const std::string net = NetText(ExperimentNet(11));
  const std::string loose = server.HandleLine(
      "{\"op\":\"optimize\",\"net\":\"" + obs::JsonEscape(net) +
      "\",\"spec_ps\":1e12}");
  const JsonValue v = JsonValue::Parse(loose);
  ASSERT_TRUE(v.Find("pick")->IsArray());
  // A spec met by every point picks the cheapest one.
  EXPECT_DOUBLE_EQ(v.Find("pick")->AsArray()[0].AsNumber(),
                   v.Find("min_cost")->AsArray()[0].AsNumber());
  const std::string tight = server.HandleLine(
      "{\"op\":\"optimize\",\"net\":\"" + obs::JsonEscape(net) +
      "\",\"spec_ps\":0.001}");
  EXPECT_TRUE(JsonValue::Parse(tight).Find("pick")->IsNull());
}

TEST(Server, ServeMixedTrafficConcurrently) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 4;
  Server server(tech, options);

  constexpr int kNets = 3;
  constexpr int kDup = 3;
  std::ostringstream in_os;
  for (int d = 0; d < kDup; ++d) {
    for (int n = 0; n < kNets; ++n) {
      in_os << OptimizeLine(
                   "n" + std::to_string(n),
                   NetText(ExperimentNet(
                       static_cast<std::uint64_t>(20 + n))))
            << '\n';
    }
  }
  in_os << "{\"op\":\"stats\",\"id\":\"s\"}\n"
        << "{\"op\":\"shutdown\",\"id\":\"x\"}\n";
  std::istringstream in(in_os.str());
  std::ostringstream out;
  EXPECT_TRUE(server.Serve(in, out));

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), kNets * kDup + 2u);

  // Every duplicate of a net answered byte-identically, regardless of
  // scheduling; each distinct net ran the DP exactly once.
  for (int n = 0; n < kNets; ++n) {
    const std::string tag = "\"id\":\"n" + std::to_string(n) + "\"";
    std::vector<std::string> group;
    for (const std::string& line : lines) {
      if (line.find(tag) != std::string::npos) group.push_back(line);
    }
    ASSERT_EQ(group.size(), static_cast<std::size_t>(kDup)) << tag;
    EXPECT_EQ(StripTraceId(group[0]), StripTraceId(group[1]));
    EXPECT_EQ(StripTraceId(group[0]), StripTraceId(group[2]));
    EXPECT_TRUE(JsonValue::Parse(group[0]).Find("ok")->AsBool());
  }
  for (const std::string& line : lines) {
    if (line.find("\"id\":\"s\"") == std::string::npos) continue;
    const JsonValue stats = JsonValue::Parse(line);
    EXPECT_DOUBLE_EQ(
        stats.Find("requests")->Find("dp_runs")->AsNumber(), kNets);
    EXPECT_DOUBLE_EQ(stats.Find("cache")->Find("hits")->AsNumber(),
                     kNets * (kDup - 1));
  }
}

TEST(Server, ExpiredDeadlineTimesOutWithoutDisturbingOthers) {
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 2;
  Server server(tech, options);
  const std::string net = NetText(ExperimentNet(30));
  std::istringstream in(
      OptimizeLine("live", net) + "\n" +
      "{\"op\":\"optimize\",\"id\":\"dead\",\"net\":\"" +
      obs::JsonEscape(net) + "\",\"deadline_ms\":0}\n" +
      "{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(server.Serve(in, out));
  bool saw_live = false;
  bool saw_dead = false;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) {
    if (line.find("\"id\":\"live\"") != std::string::npos) {
      saw_live = true;
      EXPECT_TRUE(JsonValue::Parse(line).Find("ok")->AsBool()) << line;
    }
    if (line.find("\"id\":\"dead\"") != std::string::npos) {
      saw_dead = true;
      const JsonValue v = JsonValue::Parse(line);
      EXPECT_FALSE(v.Find("ok")->AsBool());
      EXPECT_TRUE(v.Find("timeout")->AsBool());
    }
    if (line.find("\"id\":\"s\"") != std::string::npos) {
      const JsonValue stats = JsonValue::Parse(line);
      EXPECT_DOUBLE_EQ(
          stats.Find("requests")->Find("timeouts")->AsNumber(), 1.0);
    }
  }
  EXPECT_TRUE(saw_live);
  EXPECT_TRUE(saw_dead);
}

TEST(Server, CoalescesConcurrentDuplicatesIntoOneDpRun) {
  // The coalescing property under real concurrency: N threads (standing
  // in for N connections — HandleLine is the same shared entry the
  // per-connection serve threads use) submit the identical request at
  // once.  Exactly one DP may run; every caller must get byte-identical
  // bytes, whether it was the owner, a coalesced waiter, or a late
  // cache hit.
  const Technology tech = SmallTech();
  ServerOptions options;
  options.jobs = 4;
  Server server(tech, options);
  const std::string line = OptimizeLine("c", NetText(ExperimentNet(40, 6)));

  constexpr std::size_t kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&server, &responses, &line, i] {
          responses[i] = server.HandleLine(line);
        });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(JsonValue::Parse(responses[0]).Find("ok")->AsBool())
      << responses[0];
  for (std::size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(StripTraceId(responses[0]), StripTraceId(responses[i]))
        << "client " << i;
  }
  std::ostringstream stats_os;
  server.WriteStatsJson(stats_os);
  const JsonValue stats = JsonValue::Parse(stats_os.str());
  EXPECT_DOUBLE_EQ(stats.Find("requests")->Find("dp_runs")->AsNumber(),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.Find("registry")
                       ->Find("timers")
                       ->Find("msri.total")
                       ->Find("calls")
                       ->AsNumber(),
                   1.0);
}

TEST(Server, FlushForcesRecomputeWithIdenticalBytes) {
  const Technology tech = SmallTech();
  Server server(tech, ServerOptions{});
  const std::string line = OptimizeLine("f", NetText(ExperimentNet(31)));
  const std::string first = server.HandleLine(line);
  const JsonValue flushed =
      JsonValue::Parse(server.HandleLine("{\"op\":\"flush\"}"));
  EXPECT_TRUE(flushed.Find("ok")->AsBool());
  const std::string third = server.HandleLine(line);
  // recompute must reproduce the bytes (modulo the per-request trace id)
  EXPECT_EQ(StripTraceId(first), StripTraceId(third));
  std::ostringstream stats_os;
  server.WriteStatsJson(stats_os);
  const JsonValue stats = JsonValue::Parse(stats_os.str());
  EXPECT_DOUBLE_EQ(stats.Find("requests")->Find("dp_runs")->AsNumber(),
                   2.0);
  EXPECT_DOUBLE_EQ(stats.Find("cache")->Find("flushes")->AsNumber(), 1.0);
}

}  // namespace
}  // namespace msn
