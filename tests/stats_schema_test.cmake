# Tier-1 schema guard for the --stats JSON contract (msn-run-stats-v1):
# generate a 16-terminal net, optimize it with --stats=stats.json, and
# validate the file's structure.  Structural checks use CMake's string(JSON)
# parser; when python3 is on PATH, tools/check_stats_schema.py runs too for
# the stricter field-by-field validation.  Invoked by CTest with
# -DCLI=<path> -DCHECKER=<path to check_stats_schema.py>.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to msn_cli>")
endif()

set(WORK ${CMAKE_CURRENT_BINARY_DIR}/stats_scratch)
file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli expect_rc out_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    WORKING_DIRECTORY ${WORK}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "msn_cli ${ARGN} exited ${rc} (wanted"
                        " ${expect_rc}): ${out} ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# The acceptance workload: a 16-terminal net through the full pipeline.
run_cli(0 out gen --terminals 16 --seed 7 -o net.msn)
run_cli(0 out optimize net.msn --stats=stats.json)
if(NOT EXISTS ${WORK}/stats.json)
  message(FATAL_ERROR "optimize --stats=stats.json wrote no file: ${out}")
endif()

file(READ ${WORK}/stats.json doc)

# Parse failure in any string(JSON ...) call is a fatal error by default,
# so a malformed file fails the test on the first GET.
string(JSON schema GET "${doc}" schema)
if(NOT schema STREQUAL "msn-run-stats-v1")
  message(FATAL_ERROR "unexpected schema: ${schema}")
endif()

# All five DP phase timers must be present with at least one call, plus
# the whole-run rollup.
foreach(phase leaf augment join repeater root total)
  string(JSON calls GET "${doc}" timers "msri.${phase}" calls)
  if(calls LESS 1)
    message(FATAL_ERROR "timer msri.${phase} recorded no calls")
  endif()
  string(JSON ms GET "${doc}" timers "msri.${phase}" total_ms)
  string(JSON us GET "${doc}" timers "msri.${phase}" mean_us)
endforeach()

# MFS prune-rate accounting.
string(JSON in GET "${doc}" counters "mfs.candidates_in")
string(JSON outn GET "${doc}" counters "mfs.candidates_out")
if(in LESS 1 OR outn GREATER ${in})
  message(FATAL_ERROR "implausible MFS counters: in=${in} out=${outn}")
endif()
string(JSON rate GET "${doc}" values "mfs.prune_rate")
if(rate LESS 0 OR rate GREATER 1)
  message(FATAL_ERROR "mfs.prune_rate out of [0,1]: ${rate}")
endif()

# PWL breakpoint totals per primitive.
foreach(prim max add_scalar add_slope shift)
  string(JSON cnt GET "${doc}" histograms "pwl.${prim}.segments" count)
endforeach()
string(JSON maxcount GET "${doc}" histograms "pwl.max.segments" count)
if(maxcount LESS 1)
  message(FATAL_ERROR "pwl.max.segments histogram is empty")
endif()

# Result summary values written by the CLI.
foreach(key net.terminals result.base_ard_ps result.picked_ard_ps)
  string(JSON v GET "${doc}" values "${key}")
endforeach()

# Strict field-level validation through the reference checker when python3
# is available (it is in CI; skipping locally keeps the test hermetic).
if(DEFINED CHECKER)
  find_program(PYTHON3 python3)
  if(PYTHON3)
    execute_process(
      COMMAND ${PYTHON3} ${CHECKER} --optimize ${WORK}/stats.json
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "check_stats_schema.py failed: ${out} ${err}")
    endif()
  endif()
endif()

message(STATUS "stats schema test passed")
