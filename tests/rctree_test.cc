#include "rctree/rctree.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "rctree/rooted.h"
#include "steiner/one_steiner.h"
#include "tech/tech.h"
#include "test_util.h"

namespace msn {
namespace {

Technology Tech() { return DefaultTechnology(); }

TEST(RcTree, EdgeParasiticsDeriveFromWireParams) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {1000, 0});
  const std::size_t e = tree.AddEdge(a, b, 1000.0);
  EXPECT_DOUBLE_EQ(tree.Edge(e).res, 1000.0 * tech.wire.res_per_um);
  EXPECT_DOUBLE_EQ(tree.Edge(e).cap, 1000.0 * tech.wire.cap_per_um);
  EXPECT_DOUBLE_EQ(tree.TotalLengthUm(), 1000.0);
}

TEST(RcTree, FromSteinerKeepsTerminalOrdinals) {
  const Technology tech = Tech();
  const std::vector<Point> pts{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  const SteinerTree st = IteratedOneSteiner(pts);
  std::vector<TerminalParams> params(4, DefaultTerminal(tech));
  params[2].arrival_ps = 42.0;  // Marker.
  const RcTree tree = RcTree::FromSteinerTree(st, tech.wire, params);
  EXPECT_EQ(tree.NumTerminals(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    const NodeId v = tree.TerminalNode(t);
    EXPECT_EQ(tree.Node(v).kind, NodeKind::kTerminal);
    EXPECT_EQ(tree.Node(v).terminal_index, t);
    EXPECT_EQ(tree.Node(v).pos, pts[t]);
  }
  EXPECT_DOUBLE_EQ(tree.Terminal(2).arrival_ps, 42.0);
}

TEST(RcTree, NonLeafTerminalGetsZeroLengthStub) {
  const Technology tech = Tech();
  // A path a - b - c where b is a terminal with degree 2.
  SteinerTree st;
  st.points = {{0, 0}, {10, 0}, {20, 0}};
  st.num_terminals = 3;
  st.edges = {{0, 1}, {1, 2}};
  const RcTree tree = RcTree::FromSteinerTree(
      st, tech.wire, std::vector<TerminalParams>(3, DefaultTerminal(tech)));
  tree.Validate();
  // Terminal 1 must be a leaf; an extra Steiner node carries the path.
  const NodeId t1 = tree.TerminalNode(1);
  EXPECT_EQ(tree.Degree(t1), 1u);
  EXPECT_EQ(tree.NumNodes(), 4u);
  // Its stub edge has zero length.
  const RcEdge& stub = tree.Edge(tree.AdjacentEdges(t1)[0]);
  EXPECT_DOUBLE_EQ(stub.length_um, 0.0);
}

TEST(RcTree, InsertionPointSpacingGuarantee) {
  const Technology tech = Tech();
  for (const double spacing : {300.0, 450.0, 800.0}) {
    RcTree tree = testing::SmallRandomNet(tech, 11, 8, 9000, spacing);
    for (const RcEdge& e : tree.Edges()) {
      EXPECT_LE(e.length_um, spacing + 1e-9);
    }
    // Every insertion point has degree 2 (validated) and every original
    // segment carries at least one: equivalently no edge connects two
    // non-insertion nodes.
    for (const RcEdge& e : tree.Edges()) {
      const bool a_ip = tree.Node(e.a).kind == NodeKind::kInsertion;
      const bool b_ip = tree.Node(e.b).kind == NodeKind::kInsertion;
      EXPECT_TRUE(a_ip || b_ip);
    }
  }
}

TEST(RcTree, InsertionPointCountMatchesCeilRule) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {1700, 0});
  tree.AddEdge(a, b, 1700.0);
  tree.AddInsertionPoints(800.0);
  // ceil(1700/800) - 1 = 2 points -> 3 segments of 566.67 um.
  EXPECT_EQ(tree.InsertionPoints().size(), 2u);
  EXPECT_EQ(tree.NumEdges(), 3u);
  for (const RcEdge& e : tree.Edges()) {
    EXPECT_NEAR(e.length_um, 1700.0 / 3.0, 1e-9);
  }
}

TEST(RcTree, AtLeastOnePerWireEvenWhenShort) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {100, 0});
  tree.AddEdge(a, b, 100.0);
  tree.AddInsertionPoints(800.0, /*at_least_one_per_wire=*/true);
  EXPECT_EQ(tree.InsertionPoints().size(), 1u);
}

TEST(RcTree, NoForcedInsertionWhenDisabled) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {100, 0});
  tree.AddEdge(a, b, 100.0);
  tree.AddInsertionPoints(800.0, /*at_least_one_per_wire=*/false);
  EXPECT_TRUE(tree.InsertionPoints().empty());
}

TEST(RcTree, AddInsertionPointsTwiceThrows) {
  const Technology tech = Tech();
  RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  EXPECT_THROW(tree.AddInsertionPoints(500.0), CheckError);
}

TEST(RcTree, ValidateRejectsNonLeafTerminalBuiltManually) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {10, 0});
  const NodeId c = tree.AddTerminal(DefaultTerminal(tech), {20, 0});
  tree.AddEdge(a, b, 10.0);
  tree.AddEdge(b, c, 10.0);
  EXPECT_THROW(tree.Validate(), CheckError);
}

TEST(RcTree, ValidateRejectsDisconnected) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  tree.AddTerminal(DefaultTerminal(tech), {10, 0});
  EXPECT_THROW(tree.Validate(), CheckError);
}

TEST(RcTree, ValidateRejectsWrongDegreeInsertionPoint) {
  const Technology tech = Tech();
  RcTree tree(tech.wire);
  const NodeId a = tree.AddTerminal(DefaultTerminal(tech), {0, 0});
  const NodeId ip = tree.AddNode(NodeKind::kInsertion, {5, 0});
  tree.AddEdge(a, ip, 5.0);
  EXPECT_THROW(tree.Validate(), CheckError);
}

TEST(RootedTree, ParentsAndPreorder) {
  const Technology tech = Tech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 2);
  const NodeId root = tree.TerminalNode(0);
  const RootedTree rooted(tree, root);
  EXPECT_EQ(rooted.Root(), root);
  EXPECT_EQ(rooted.Parent(root), kNoNode);
  EXPECT_EQ(rooted.Preorder().size(), tree.NumNodes());
  EXPECT_EQ(rooted.Preorder().front(), root);
  // Every non-root node's parent appears earlier in preorder.
  std::vector<std::size_t> pos(tree.NumNodes());
  for (std::size_t i = 0; i < rooted.Preorder().size(); ++i) {
    pos[rooted.Preorder()[i]] = i;
  }
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    if (v == root) continue;
    EXPECT_LT(pos[rooted.Parent(v)], pos[v]);
  }
}

TEST(RootedTree, ParentEdgeAttributes) {
  const Technology tech = Tech();
  const RcTree tree = testing::TwoPinLine(tech, 900.0, 1);
  const RootedTree rooted(tree, tree.TerminalNode(0));
  const NodeId ip = tree.InsertionPoints()[0];
  EXPECT_NEAR(rooted.ParentLengthUm(ip), 450.0, 1e-9);
  EXPECT_NEAR(rooted.ParentRes(ip), 450.0 * tech.wire.res_per_um, 1e-12);
  EXPECT_NEAR(rooted.ParentCap(ip), 450.0 * tech.wire.cap_per_um, 1e-12);
}

TEST(Assignment, CostAndCount) {
  const Technology tech = testing::TwoRepeaterTech();
  const RcTree tree = testing::TwoPinLine(tech, 2000.0, 3);
  RepeaterAssignment assign(tree.NumNodes());
  EXPECT_EQ(assign.CountPlaced(), 0u);
  EXPECT_DOUBLE_EQ(assign.Cost(tech), 0.0);
  const NodeId ip0 = tree.InsertionPoints()[0];
  const NodeId ip1 = tree.InsertionPoints()[1];
  assign.Place(ip0, PlacedRepeater{0, tree.TerminalNode(0)});
  assign.Place(ip1, PlacedRepeater{1, ip0});
  EXPECT_EQ(assign.CountPlaced(), 2u);
  EXPECT_DOUBLE_EQ(assign.Cost(tech), 2.0 + 4.0);
  assign.Remove(ip0);
  EXPECT_EQ(assign.CountPlaced(), 1u);
}

TEST(Assignment, ResolveOrientationByNeighbor) {
  const Technology tech = testing::AsymmetricTech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  const NodeId ip = tree.InsertionPoints()[0];
  const NodeId t0 = tree.TerminalNode(0);
  const NodeId t1 = tree.TerminalNode(1);
  RepeaterAssignment assign(tree.NumNodes());
  assign.Place(ip, PlacedRepeater{0, t0});
  const ResolvedRepeater r = assign.Resolve(ip, tech);
  EXPECT_DOUBLE_EQ(r.CapToward(t0), tech.repeaters[0].cap_a);
  EXPECT_DOUBLE_EQ(r.CapToward(t1), tech.repeaters[0].cap_b);
  EXPECT_DOUBLE_EQ(r.IntrinsicFrom(t0), tech.repeaters[0].intrinsic_ab);
  EXPECT_DOUBLE_EQ(r.IntrinsicFrom(t1), tech.repeaters[0].intrinsic_ba);
  EXPECT_DOUBLE_EQ(r.ResFrom(t0), tech.repeaters[0].res_ab);
}

TEST(Assignment, DriverAssignmentResolution) {
  const Technology tech = Tech();
  const RcTree tree = testing::TwoPinLine(tech, 1000.0, 1);
  DriverAssignment drivers(tree.NumTerminals());
  const auto lib = DriverSizingLibrary(tech, {1.0, 2.0});
  drivers.Choose(1, lib[3]);  // 2x/2x.
  const EffectiveTerminal e0 = drivers.Resolve(tree, 0);
  const EffectiveTerminal e1 = drivers.Resolve(tree, 1);
  EXPECT_DOUBLE_EQ(e0.driver_res, DefaultBuffer1X().output_res);
  EXPECT_DOUBLE_EQ(e1.driver_res, DefaultBuffer1X().output_res / 2.0);
  EXPECT_DOUBLE_EQ(e1.pin_cap, DefaultBuffer1X().input_cap * 2.0);
  EXPECT_DOUBLE_EQ(drivers.Cost(tree), 2.0 + 4.0);
}

}  // namespace
}  // namespace msn
