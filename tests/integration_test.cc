// End-to-end pipeline tests at the paper's experimental scale.
#include <gtest/gtest.h>

#include "core/ard.h"
#include "core/msri.h"
#include "netgen/netgen.h"
#include "test_util.h"

namespace msn {
namespace {

class PipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineTest, TenPinExperimentRoundTrips) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = GetParam();
  cfg.num_terminals = 10;
  const RcTree tree = BuildExperimentNet(cfg, tech);

  const MsriResult repeaters = RunMsri(tree, tech);
  ASSERT_FALSE(repeaters.Pareto().empty());

  MsriOptions sizing;
  sizing.insert_repeaters = false;
  sizing.size_drivers = true;
  sizing.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  const MsriResult sized = RunMsri(tree, tech, sizing);
  ASSERT_FALSE(sized.Pareto().empty());

  const double base = ComputeArd(tree, tech).ard_ps;
  // The no-repeater / 1x-1x point is on both frontiers.
  EXPECT_NEAR(repeaters.MinCost()->ard_ps, base, 1e-6);
  EXPECT_NEAR(sized.MinCost()->ard_ps, base, 1e-6);
  EXPECT_NEAR(repeaters.MinCost()->cost,
              2.0 * static_cast<double>(tree.NumTerminals()), 1e-9);

  // Both techniques can only improve on the base diameter.
  EXPECT_LE(repeaters.MinArd()->ard_ps, base + 1e-9);
  EXPECT_LE(sized.MinArd()->ard_ps, base + 1e-9);

  // Spot-verify three points per frontier against the ARD engine.
  auto verify = [&](const MsriResult& r) {
    const auto& p = r.Pareto();
    for (std::size_t i : {std::size_t{0}, p.size() / 2, p.size() - 1}) {
      const ArdResult check =
          ComputeArd(tree, p[i].repeaters, p[i].drivers, tech);
      EXPECT_NEAR(check.ard_ps, p[i].ard_ps, 1e-6);
    }
  };
  verify(repeaters);
  verify(sized);
}

TEST_P(PipelineTest, MinCostSubjectToSizingDiameter) {
  // The paper's Table II column 5 workflow: use the best driver-sizing
  // diameter as the spec for min-cost repeater insertion.
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = GetParam() + 100;
  cfg.num_terminals = 10;
  const RcTree tree = BuildExperimentNet(cfg, tech);

  MsriOptions sizing;
  sizing.insert_repeaters = false;
  sizing.size_drivers = true;
  sizing.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  const double sizing_diam =
      RunMsri(tree, tech, sizing).MinArd()->ard_ps;

  const MsriResult repeaters = RunMsri(tree, tech);
  const TradeoffPoint* p = repeaters.MinCostFeasible(sizing_diam);
  // On cm-scale nets repeater insertion reaches (and beats) any
  // sizing-achievable diameter; if a pathological seed disproved that,
  // the sizing optimum would have to beat even the best repeater point.
  if (p == nullptr) {
    EXPECT_LT(sizing_diam, repeaters.MinArd()->ard_ps);
    return;
  }
  EXPECT_LE(p->ard_ps, sizing_diam + 1e-9);
  EXPECT_LE(p->cost, repeaters.MinArd()->cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(Pipeline, StatsArePopulated) {
  const Technology tech = DefaultTechnology();
  NetConfig cfg;
  cfg.seed = 12;
  cfg.num_terminals = 10;
  const RcTree tree = BuildExperimentNet(cfg, tech);
  const MsriResult r = RunMsri(tree, tech);
  EXPECT_GT(r.Stats().solutions_generated, 0u);
  EXPECT_GT(r.Stats().max_set_size, 0u);
  EXPECT_GT(r.Stats().max_pwl_segments, 0u);
  EXPECT_GT(r.Stats().mfs.comparisons, 0u);
}

}  // namespace
}  // namespace msn
