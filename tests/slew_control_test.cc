// Tests for the slew-control extension: bounding every unbuffered
// region's wire diameter (MsriOptions::max_stage_length_um).
#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "core/ard.h"
#include "core/msri.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

TEST(SlewControl, FeasibilityCheckerBasics) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 4000.0, 3);  // 4 x 1000 um pieces.
  RepeaterAssignment none(tree.NumNodes());
  EXPECT_TRUE(StageLengthFeasible(tree, none, 4000.0));
  EXPECT_FALSE(StageLengthFeasible(tree, none, 3999.0));
  EXPECT_TRUE(StageLengthFeasible(tree, none, 0.0));  // Disabled.

  // A repeater at the middle halves the worst region.
  RepeaterAssignment mid(tree.NumNodes());
  const NodeId ip = tree.InsertionPoints()[1];
  const RcEdge& adj = tree.Edge(tree.AdjacentEdges(ip)[0]);
  mid.Place(ip, PlacedRepeater{0, adj.a == ip ? adj.b : adj.a});
  EXPECT_TRUE(StageLengthFeasible(tree, mid, 2000.0));
  EXPECT_FALSE(StageLengthFeasible(tree, mid, 1999.0));
}

TEST(SlewControl, FeasibilityCheckerBranches) {
  // Star with three 1500 um arms: region diameter = 3000 um through the
  // centre.
  const Technology tech = SmallTech();
  RcTree tree(tech.wire);
  const NodeId s = tree.AddNode(NodeKind::kSteiner, {0, 0});
  std::vector<NodeId> ips;
  for (int i = 0; i < 3; ++i) {
    const NodeId t = tree.AddTerminal(DefaultTerminal(tech), {1500, 0});
    const NodeId ip = tree.AddNode(NodeKind::kInsertion, {750, 0});
    tree.AddEdge(s, ip, 750.0);
    tree.AddEdge(ip, t, 750.0);
    ips.push_back(ip);
  }
  RepeaterAssignment none(tree.NumNodes());
  EXPECT_TRUE(StageLengthFeasible(tree, none, 3000.0));
  EXPECT_FALSE(StageLengthFeasible(tree, none, 2999.0));
  // Repeaters on two arms shrink the worst region to one full arm plus
  // a buffered arm's stub: 1500 + 750 = 2250.
  RepeaterAssignment two(tree.NumNodes());
  two.Place(ips[0], PlacedRepeater{0, s});
  two.Place(ips[1], PlacedRepeater{0, s});
  EXPECT_TRUE(StageLengthFeasible(tree, two, 2250.0));
  EXPECT_FALSE(StageLengthFeasible(tree, two, 2249.0));
}

TEST(SlewControl, EveryParetoPointMeetsTheBound) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 2, 8, 9000, 800.0);
  MsriOptions opt;
  opt.max_stage_length_um = 2500.0;
  const MsriResult r = RunMsri(tree, tech, opt);
  ASSERT_FALSE(r.Pareto().empty());
  for (const TradeoffPoint& p : r.Pareto()) {
    EXPECT_TRUE(StageLengthFeasible(tree, p.repeaters, 2500.0))
        << "cost " << p.cost;
    EXPECT_NEAR(ComputeArd(tree, p.repeaters, p.drivers, tech).ard_ps,
                p.ard_ps, 1e-6);
  }
  // A tight bound forces repeaters even into the cheapest solution.
  EXPECT_GE(r.MinCost()->num_repeaters, 1u);
}

TEST(SlewControl, TightBoundRaisesMinimumCost) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 9000.0, 8);
  const double unconstrained_cost = RunMsri(tree, tech).MinCost()->cost;
  MsriOptions opt;
  opt.max_stage_length_um = 2000.0;
  const MsriResult r = RunMsri(tree, tech, opt);
  ASSERT_FALSE(r.Pareto().empty());
  EXPECT_GT(r.MinCost()->cost, unconstrained_cost);
  // 9 mm of wire with 2 mm stages needs at least 4 repeaters.
  EXPECT_GE(r.MinCost()->num_repeaters, 4u);
}

TEST(SlewControl, InfeasibleBoundYieldsEmptyFrontier) {
  // Insertion spacing ~1000 um: no assignment can make regions shorter
  // than one segment.
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 4000.0, 3);
  MsriOptions opt;
  opt.max_stage_length_um = 500.0;
  const MsriResult r = RunMsri(tree, tech, opt);
  EXPECT_TRUE(r.Pareto().empty());
  EXPECT_EQ(r.MinArd(), nullptr);
  EXPECT_EQ(r.MinCostFeasible(1e12), nullptr);
}

/// Oracle: the slew-constrained DP still matches exhaustive enumeration.
class SlewOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlewOracle, MatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 4, 4000, 1600.0);
  if (tree.InsertionPoints().size() > 10) GTEST_SKIP();

  for (const double bound : {1500.0, 2500.0, 4000.0}) {
    MsriOptions opt;
    opt.max_stage_length_um = bound;
    const MsriResult dp = RunMsri(tree, tech, opt);

    BruteForceOptions bopt;
    bopt.max_stage_length_um = bound;
    const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);
    ASSERT_EQ(dp.Pareto().size(), brute.pareto.size())
        << "seed " << seed << " bound " << bound;
    for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
      EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9);
      EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlewOracle,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace msn
