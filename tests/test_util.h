// Shared fixtures and builders for the msn test suite.
#ifndef MSN_TESTS_TEST_UTIL_H
#define MSN_TESTS_TEST_UTIL_H

#include <vector>

#include "common/rng.h"
#include "netgen/netgen.h"
#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn::testing {

/// A deliberately small technology for brute-force-comparable tests: one
/// symmetric repeater (two choices per insertion point).
inline Technology SmallTech() {
  Technology tech = DefaultTechnology();
  tech.repeaters = {Repeater::FromBufferPair(DefaultBuffer1X())};
  return tech;
}

/// A technology with an asymmetric repeater so orientation matters.
inline Technology AsymmetricTech() {
  Technology tech = DefaultTechnology();
  Repeater r = Repeater::FromBufferPair(DefaultBuffer1X());
  r.name = "asym";
  r.intrinsic_ab = 20.0;
  r.res_ab = 120.0;
  r.intrinsic_ba = 55.0;
  r.res_ba = 260.0;
  r.cap_a = 0.03;
  r.cap_b = 0.08;
  tech.repeaters = {r};
  return tech;
}

/// A two-repeater library (1X-pair and 2X-pair).
inline Technology TwoRepeaterTech() {
  Technology tech = DefaultTechnology();
  tech.repeaters = {
      Repeater::FromBufferPair(DefaultBuffer1X()),
      Repeater::FromBufferPair(ScaledBuffer(DefaultBuffer1X(), 2.0)),
  };
  return tech;
}

/// Small random experiment net (few insertion points so brute force is
/// feasible): n terminals on a small grid with wide insertion spacing.
inline RcTree SmallRandomNet(const Technology& tech, std::uint64_t seed,
                             std::size_t n = 4,
                             std::int64_t grid_um = 3000,
                             double spacing_um = 1500.0) {
  NetConfig cfg;
  cfg.seed = seed;
  cfg.num_terminals = n;
  cfg.grid_um = grid_um;
  cfg.insertion_spacing_um = spacing_um;
  return BuildExperimentNet(cfg, tech);
}

/// Two terminals joined by one wire with `ips` evenly spaced insertion
/// points.  The canonical hand-computable topology.
inline RcTree TwoPinLine(const Technology& tech, double length_um,
                         std::size_t ips = 1) {
  RcTree tree(tech.wire);
  const TerminalParams t = DefaultTerminal(tech);
  const NodeId a = tree.AddTerminal(t, {0, 0});
  const NodeId b = tree.AddTerminal(
      t, {static_cast<std::int64_t>(length_um), 0});
  NodeId prev = a;
  const double piece = length_um / static_cast<double>(ips + 1);
  for (std::size_t k = 1; k <= ips; ++k) {
    const NodeId ip = tree.AddNode(
        NodeKind::kInsertion,
        {static_cast<std::int64_t>(piece * static_cast<double>(k)), 0});
    tree.AddEdge(prev, ip, piece);
    prev = ip;
  }
  tree.AddEdge(prev, b, piece);
  tree.Validate();
  return tree;
}

/// Random repeater assignment over the tree's insertion points.
inline RepeaterAssignment RandomAssignment(const RcTree& tree,
                                           const Technology& tech, Rng& rng,
                                           double place_probability = 0.5) {
  RepeaterAssignment assign(tree.NumNodes());
  for (const NodeId ip : tree.InsertionPoints()) {
    if (!rng.Chance(place_probability)) continue;
    const auto& adj = tree.AdjacentEdges(ip);
    const RcEdge& e = tree.Edge(adj[rng.Chance(0.5) ? 0 : 1]);
    const NodeId neighbor = e.a == ip ? e.b : e.a;
    const auto idx = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(tech.repeaters.size()) - 1));
    assign.Place(ip, PlacedRepeater{idx, neighbor});
  }
  return assign;
}

}  // namespace msn::testing

#endif  // MSN_TESTS_TEST_UTIL_H
