// The src/service persistence layer (docs/SERVICE.md "Persistence &
// recovery"): segment record framing and CRC, adversarial-input replay
// (every truncation point, every single-bit flip), the segment writer's
// header/lock/truncate contracts, EINTR-safe fd I/O, and the
// PersistentCache warm-restart / durable-flush / compaction behavior.
#include "service/fdbuf.h"
#include "service/persist.h"
#include "service/segment.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "service/cache.h"
#include "service/canonical.h"

namespace msn {
namespace {

using service::CacheConfig;
using service::CanonicalRequest;
using service::Crc32;
using service::DecodeRecordPayload;
using service::EncodeFramedRecord;
using service::Fingerprint;
using service::HashBytes;
using service::kSegmentHeaderBytes;
using service::kSegmentMagic;
using service::PersistConfig;
using service::PersistentCache;
using service::ReplaySegment;
using service::ReplayStats;
using service::SegmentRecord;
using service::SegmentWriter;
using service::SolutionCache;

/// A fresh private directory under the test temp root, removed on
/// destruction (tests in this binary can run concurrently under ctest).
struct ScopedDir {
  ScopedDir() {
    std::string tmpl = ::testing::TempDir() + "msn_segment_XXXXXX";
    MSN_CHECK(::mkdtemp(tmpl.data()) != nullptr);
    path = tmpl;
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

SegmentRecord MakeRecord(const std::string& text, double cost) {
  SegmentRecord rec;
  rec.fingerprint = HashBytes(text);
  rec.text = text;
  rec.summary.solutions_generated = 42;
  rec.summary.max_set_size = 7;
  rec.summary.pareto.push_back({cost, 100.0 - cost, 1});
  rec.summary.pareto.push_back({cost * 2, 50.0 - cost, 3});
  return rec;
}

CanonicalRequest RequestOf(const SegmentRecord& rec) {
  CanonicalRequest request;
  request.fingerprint = rec.fingerprint;
  request.text = rec.text;
  return request;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  MSN_CHECK(out.good());
}

/// Replays collecting every delivered record.
std::vector<SegmentRecord> ReplayAll(const std::string& path,
                                     ReplayStats* stats = nullptr) {
  std::vector<SegmentRecord> out;
  const ReplayStats rs = ReplaySegment(
      path, 64u << 20,
      [&out](SegmentRecord&& rec, std::uint64_t) {
        out.push_back(std::move(rec));
      });
  if (stats != nullptr) *stats = rs;
  return out;
}

// ---------------------------------------------------------------------
// Record framing.

TEST(SegmentRecord, Crc32MatchesReferenceVector) {
  // The canonical IEEE CRC-32 check value.
  const std::string data = "123456789";
  EXPECT_EQ(Crc32(data.data(), data.size()), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(SegmentRecord, EncodeDecodeRoundTrip) {
  const SegmentRecord rec = MakeRecord("net v1\nS 0 0\n", 3.25);
  const std::string framed = EncodeFramedRecord(rec);
  ASSERT_GT(framed.size(), service::kRecordFrameBytes);
  SegmentRecord out;
  ASSERT_TRUE(DecodeRecordPayload(framed.data() + 8, framed.size() - 8,
                                  &out));
  EXPECT_EQ(out, rec);
}

TEST(SegmentRecord, DecodeRejectsStructuralDamage) {
  const SegmentRecord rec = MakeRecord("abc", 1.0);
  const std::string framed = EncodeFramedRecord(rec);
  const char* payload = framed.data() + 8;
  const std::size_t n = framed.size() - 8;
  SegmentRecord out;
  // Any strict prefix is a short buffer; any padded buffer has trailing
  // bytes; both must be rejected, never crash.
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_FALSE(DecodeRecordPayload(payload, k, &out));
  }
  std::string padded(payload, n);
  padded.push_back('\0');
  EXPECT_FALSE(DecodeRecordPayload(padded.data(), padded.size(), &out));
}

TEST(SegmentRecord, DecodeRejectsOversizedCountsWithoutAllocating) {
  // fingerprint + empty text + counters, then a pareto count far beyond
  // what the buffer holds: the adversarial-length guard must fire.
  std::string payload(16, '\0');           // fingerprint
  payload.append(4, '\0');                 // text_len = 0
  payload.append(16, '\0');                // counters
  payload.append({'\xff', '\xff', '\xff', '\x7f'});  // count
  SegmentRecord out;
  EXPECT_FALSE(DecodeRecordPayload(payload.data(), payload.size(), &out));
}

// ---------------------------------------------------------------------
// Replay recovery: every truncation point, every bit flip.

TEST(SegmentReplay, MissingFileAndBadHeader) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  ReplayStats rs;
  EXPECT_TRUE(ReplayAll(path, &rs).empty());
  EXPECT_FALSE(rs.file_exists);

  WriteFile(path, "BOGUS!!\n");
  EXPECT_TRUE(ReplayAll(path, &rs).empty());
  EXPECT_TRUE(rs.file_exists);
  EXPECT_FALSE(rs.header_ok);
}

TEST(SegmentReplay, EveryTruncationPointRecoversAPrefix) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  const std::vector<SegmentRecord> recs = {
      MakeRecord("alpha", 1.0), MakeRecord("beta", 2.0),
      MakeRecord("gamma", 3.0)};
  std::string file(kSegmentMagic, kSegmentHeaderBytes);
  std::vector<std::size_t> ends;  // file offset after each record
  for (const SegmentRecord& rec : recs) {
    file += EncodeFramedRecord(rec);
    ends.push_back(file.size());
  }
  for (std::size_t cut = 0; cut <= file.size(); ++cut) {
    WriteFile(path, file.substr(0, cut));
    ReplayStats rs;
    const std::vector<SegmentRecord> got = ReplayAll(path, &rs);
    // The recovered records are exactly the whole-record prefix.
    std::size_t whole = 0;
    while (whole < ends.size() && ends[whole] <= cut) ++whole;
    ASSERT_EQ(got.size(), whole) << "cut=" << cut;
    for (std::size_t i = 0; i < whole; ++i) EXPECT_EQ(got[i], recs[i]);
    if (cut < kSegmentHeaderBytes) {
      EXPECT_FALSE(rs.header_ok) << "cut=" << cut;
    } else {
      EXPECT_TRUE(rs.header_ok);
      // A cut mid-record is reported so the writer can cut the tail; a
      // cut on a record (or header) boundary is a clean end of file.
      const bool clean = cut == kSegmentHeaderBytes ||
                         (whole > 0 && ends[whole - 1] == cut);
      EXPECT_EQ(rs.truncations, clean ? 0u : 1u) << "cut=" << cut;
      EXPECT_EQ(rs.valid_bytes,
                whole == 0 ? kSegmentHeaderBytes : ends[whole - 1]);
    }
  }
}

TEST(SegmentReplay, EveryBitFlipIsSkippedOrTruncatedNeverWrong) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  const std::vector<SegmentRecord> recs = {
      MakeRecord("alpha", 1.0), MakeRecord("beta", 2.0),
      MakeRecord("gamma", 3.0)};
  std::string file(kSegmentMagic, kSegmentHeaderBytes);
  for (const SegmentRecord& rec : recs) file += EncodeFramedRecord(rec);
  std::set<std::string> valid_texts;
  for (const SegmentRecord& rec : recs) valid_texts.insert(rec.text);

  for (std::size_t byte = 0; byte < file.size(); ++byte) {
    std::string damaged = file;
    damaged[byte] = static_cast<char>(damaged[byte] ^ 0x10);
    WriteFile(path, damaged);
    ReplayStats rs;
    const std::vector<SegmentRecord> got = ReplayAll(path, &rs);
    if (byte < kSegmentHeaderBytes) {
      EXPECT_FALSE(rs.header_ok);
      EXPECT_TRUE(got.empty());
      continue;
    }
    // Whatever survives must be a genuine record, and exactly the other
    // two can survive a flip confined to one record's bytes.
    EXPECT_LT(got.size(), recs.size()) << "byte=" << byte;
    for (const SegmentRecord& rec : got) {
      EXPECT_TRUE(valid_texts.count(rec.text)) << "byte=" << byte;
      SegmentRecord original;
      for (const SegmentRecord& r : recs) {
        if (r.text == rec.text) original = r;
      }
      EXPECT_EQ(rec, original) << "byte=" << byte;
    }
    EXPECT_GE(rs.skipped + rs.truncations, 1u) << "byte=" << byte;
  }
}

// ---------------------------------------------------------------------
// Segment writer.

TEST(SegmentWriter, CreatesHeaderAppendsAndReplays) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  const SegmentRecord rec = MakeRecord("hello", 1.0);
  {
    SegmentWriter writer;
    ASSERT_TRUE(writer.Open(path));
    EXPECT_EQ(writer.FileBytes(), kSegmentHeaderBytes);
    ASSERT_TRUE(writer.Append(rec));
    ASSERT_TRUE(writer.Sync());
  }
  ReplayStats rs;
  const std::vector<SegmentRecord> got = ReplayAll(path, &rs);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], rec);
  EXPECT_EQ(rs.truncations, 0u);
}

TEST(SegmentWriter, SecondWriterOnLiveFileFails) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  SegmentWriter first;
  ASSERT_TRUE(first.Open(path));
  SegmentWriter second;
  EXPECT_FALSE(second.Open(path));
  first.Close();
  EXPECT_TRUE(second.Open(path));
}

TEST(SegmentWriter, KeepBytesCutsCorruptTailBeforeAppending) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  const SegmentRecord good = MakeRecord("good", 1.0);
  std::string file(kSegmentMagic, kSegmentHeaderBytes);
  file += EncodeFramedRecord(good);
  const std::size_t valid = file.size();
  file += "partial garbage tail";
  WriteFile(path, file);

  SegmentWriter writer;
  ASSERT_TRUE(writer.Open(path, valid));
  EXPECT_EQ(writer.FileBytes(), valid);
  const SegmentRecord next = MakeRecord("next", 2.0);
  ASSERT_TRUE(writer.Append(next));
  writer.Close();

  const std::vector<SegmentRecord> got = ReplayAll(path);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], good);
  EXPECT_EQ(got[1], next);
}

TEST(SegmentWriter, TruncateToHeaderDropsEveryRecord) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  SegmentWriter writer;
  ASSERT_TRUE(writer.Open(path));
  ASSERT_TRUE(writer.Append(MakeRecord("a", 1.0)));
  ASSERT_TRUE(writer.TruncateToHeader());
  EXPECT_EQ(writer.FileBytes(), kSegmentHeaderBytes);
  ASSERT_TRUE(writer.Append(MakeRecord("b", 2.0)));
  writer.Close();
  const std::vector<SegmentRecord> got = ReplayAll(path);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].text, "b");
}

TEST(SegmentWriter, ForeignFileIsResetToEmptySegment) {
  ScopedDir dir;
  const std::string path = dir.path + "/seg";
  WriteFile(path, "not a segment at all, much longer than the magic");
  SegmentWriter writer;
  ASSERT_TRUE(writer.Open(path));
  EXPECT_EQ(writer.FileBytes(), kSegmentHeaderBytes);
  writer.Close();
  EXPECT_EQ(ReadFile(path),
            std::string(kSegmentMagic, kSegmentHeaderBytes));
}

// ---------------------------------------------------------------------
// EINTR-safe fd I/O (the server stream flush bugfix).

/// Scripted write fault: every other call raises EINTR, and successful
/// calls write at most 3 bytes (a stubborn short-writing fd).
int g_write_calls = 0;
ssize_t ShortEintrWrite(int fd, const void* buf, std::size_t n) {
  ++g_write_calls;
  if (g_write_calls % 2 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::write(fd, buf, std::min<std::size_t>(n, 3));
}

ssize_t BrokenWrite(int, const void*, std::size_t) {
  errno = EPIPE;
  return -1;
}

TEST(FdIo, WriteFullyRetriesEintrAndShortWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  g_write_calls = 0;
  ASSERT_TRUE(
      service::WriteFully(fds[1], msg.data(), msg.size(), ShortEintrWrite));
  EXPECT_GT(g_write_calls, 2);  // it really was fed 3 bytes at a time
  std::string got(msg.size(), '\0');
  ASSERT_TRUE(service::ReadFully(fds[0], got.data(), got.size()));
  EXPECT_EQ(got, msg);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FdIo, WriteFullyFailsOnHardError) {
  EXPECT_FALSE(service::WriteFully(1, "x", 1, BrokenWrite));
}

TEST(FdIo, StreamBufDeliversEveryByteThroughFaultyWrites) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A payload larger than the pipe's atomic write size, flushed through
  // the scripted 3-bytes-per-call EINTR-raising fd: the reader must see
  // every byte in order (the pre-fix loop dropped the unwritten suffix).
  std::string msg;
  for (int i = 0; i < 500; ++i) {
    msg += "response line ";
    msg += std::to_string(i);
    msg += "\n";
  }
  g_write_calls = 0;
  std::thread writer([&] {
    service::FdStreamBuf buf(fds[1], nullptr, ShortEintrWrite);
    std::ostream out(&buf);
    out << msg << std::flush;
    ::close(fds[1]);
  });
  std::string got(msg.size(), '\0');
  EXPECT_TRUE(service::ReadFully(fds[0], got.data(), got.size()));
  writer.join();
  EXPECT_EQ(got, msg);
  ::close(fds[0]);
}

// ---------------------------------------------------------------------
// PersistentCache.

CacheConfig SmallCache() {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 64;
  cfg.max_bytes = 1u << 20;
  return cfg;
}

PersistConfig PersistIn(const std::string& dir) {
  PersistConfig cfg;
  cfg.dir = dir;
  return cfg;
}

TEST(PersistentCache, DisabledModeIsAPassThrough) {
  PersistentCache cache(SmallCache(), PersistConfig{});
  EXPECT_FALSE(cache.PersistenceEnabled());
  const SegmentRecord rec = MakeRecord("only in memory", 1.0);
  cache.Insert(RequestOf(rec), rec.summary);
  EXPECT_TRUE(cache.Lookup(RequestOf(rec)).has_value());
  cache.Sync();  // no-ops, must not hang
  const service::SegmentStats seg = cache.Segment();
  EXPECT_FALSE(seg.enabled);
  EXPECT_EQ(seg.appends, 0u);
  EXPECT_EQ(seg.file_bytes, 0u);
}

TEST(PersistentCache, WarmRestartServesPredecessorsInserts) {
  ScopedDir dir;
  const std::vector<SegmentRecord> recs = {
      MakeRecord("net one", 1.0), MakeRecord("net two", 2.0),
      MakeRecord("net three", 3.0)};
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    EXPECT_TRUE(cache.PersistenceEnabled());
    for (const SegmentRecord& rec : recs) {
      cache.Insert(RequestOf(rec), rec.summary);
    }
    cache.Sync();
    const service::SegmentStats seg = cache.Segment();
    EXPECT_EQ(seg.appends, recs.size());
    EXPECT_EQ(seg.append_errors, 0u);
    EXPECT_GT(seg.live_bytes, 0u);
  }
  PersistentCache warmed(SmallCache(), PersistIn(dir.path));
  const service::SegmentStats seg = warmed.Segment();
  EXPECT_EQ(seg.replayed, recs.size());
  EXPECT_EQ(seg.skipped, 0u);
  EXPECT_EQ(seg.truncations, 0u);
  for (const SegmentRecord& rec : recs) {
    const auto hit = warmed.Lookup(RequestOf(rec));
    ASSERT_TRUE(hit.has_value()) << rec.text;
    EXPECT_EQ(*hit, rec.summary);
  }
  EXPECT_EQ(warmed.Snapshot().hits, recs.size());
}

TEST(PersistentCache, ReplayIsBudgetAwareNewestWin) {
  ScopedDir dir;
  std::vector<SegmentRecord> recs;
  for (int i = 0; i < 8; ++i) {
    recs.push_back(
        MakeRecord("net " + std::to_string(i), static_cast<double>(i)));
  }
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    for (const SegmentRecord& rec : recs) {
      cache.Insert(RequestOf(rec), rec.summary);
    }
  }
  // Restart with room for only 2 entries: the 2 newest must win.
  CacheConfig tiny = SmallCache();
  tiny.max_entries = 2;
  PersistentCache warmed(tiny, PersistIn(dir.path));
  EXPECT_EQ(warmed.Segment().replayed, recs.size());
  EXPECT_EQ(warmed.Snapshot().entries, 2u);
  EXPECT_TRUE(warmed.Lookup(RequestOf(recs[7])).has_value());
  EXPECT_TRUE(warmed.Lookup(RequestOf(recs[6])).has_value());
  EXPECT_FALSE(warmed.Lookup(RequestOf(recs[0])).has_value());
}

TEST(PersistentCache, OversizedRecordIsSkippedOnWarm) {
  ScopedDir dir;
  const SegmentRecord small = MakeRecord("small", 1.0);
  const SegmentRecord huge = MakeRecord(std::string(8192, 'x'), 2.0);
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    cache.Insert(RequestOf(small), small.summary);
    cache.Insert(RequestOf(huge), huge.summary);
  }
  CacheConfig tiny = SmallCache();
  tiny.max_bytes = 4096;  // the huge record can never fit
  PersistentCache warmed(tiny, PersistIn(dir.path));
  const service::SegmentStats seg = warmed.Segment();
  EXPECT_EQ(seg.replayed, 1u);
  EXPECT_EQ(seg.skipped, 1u);
  EXPECT_TRUE(warmed.Lookup(RequestOf(small)).has_value());
  EXPECT_FALSE(warmed.Lookup(RequestOf(huge)).has_value());
}

TEST(PersistentCache, FlushIsDurableAcrossRestart) {
  ScopedDir dir;
  const SegmentRecord rec = MakeRecord("flushed", 1.0);
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    cache.Insert(RequestOf(rec), rec.summary);
    cache.Flush();
    EXPECT_FALSE(cache.Lookup(RequestOf(rec)).has_value());
    EXPECT_EQ(cache.Segment().file_bytes, kSegmentHeaderBytes);
  }
  PersistentCache warmed(SmallCache(), PersistIn(dir.path));
  EXPECT_EQ(warmed.Segment().replayed, 0u);
  EXPECT_FALSE(warmed.Lookup(RequestOf(rec)).has_value());
}

TEST(PersistentCache, SecondServerOnSameDirThrows) {
  ScopedDir dir;
  PersistentCache first(SmallCache(), PersistIn(dir.path));
  EXPECT_THROW(PersistentCache(SmallCache(), PersistIn(dir.path)),
               CheckError);
}

TEST(PersistentCache, SupersededRecordsTriggerCompaction) {
  ScopedDir dir;
  PersistConfig pcfg = PersistIn(dir.path);
  pcfg.compact_min_dead_bytes = 256;  // compact almost immediately
  const SegmentRecord rec = MakeRecord("rewritten", 1.0);
  {
    PersistentCache cache(SmallCache(), pcfg);
    for (int i = 0; i < 64; ++i) {
      // Same fingerprint re-inserted: each append supersedes the last.
      cache.Insert(RequestOf(rec), rec.summary);
    }
    cache.Sync();
    const service::SegmentStats seg = cache.Segment();
    EXPECT_GE(seg.compactions, 1u);
    EXPECT_LT(seg.dead_bytes, 256u + seg.live_bytes);
  }
  PersistentCache warmed(SmallCache(), pcfg);
  EXPECT_TRUE(warmed.Lookup(RequestOf(rec)).has_value());
}

TEST(PersistentCache, CorruptSegmentBitFlipRecoversCleanly) {
  ScopedDir dir;
  const std::vector<SegmentRecord> recs = {
      MakeRecord("first", 1.0), MakeRecord("second", 2.0),
      MakeRecord("third", 3.0)};
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    for (const SegmentRecord& rec : recs) {
      cache.Insert(RequestOf(rec), rec.summary);
    }
  }
  // Flip one bit in the middle record's payload.
  const std::string path = PersistentCache::SegmentPath(dir.path);
  std::string bytes = ReadFile(path);
  const std::size_t mid =
      kSegmentHeaderBytes + EncodeFramedRecord(recs[0]).size() + 12;
  ASSERT_LT(mid, bytes.size());
  bytes[mid] = static_cast<char>(bytes[mid] ^ 0x01);
  WriteFile(path, bytes);

  PersistentCache warmed(SmallCache(), PersistIn(dir.path));
  const service::SegmentStats seg = warmed.Segment();
  EXPECT_EQ(seg.replayed, 2u);
  EXPECT_EQ(seg.skipped, 1u);
  EXPECT_TRUE(warmed.Lookup(RequestOf(recs[0])).has_value());
  EXPECT_FALSE(warmed.Lookup(RequestOf(recs[1])).has_value());
  EXPECT_TRUE(warmed.Lookup(RequestOf(recs[2])).has_value());
  // And the survivor still answers with the exact original summary.
  EXPECT_EQ(*warmed.Lookup(RequestOf(recs[2])), recs[2].summary);
}

TEST(PersistentCache, TruncatedTailIsCutAndAppendsResume) {
  ScopedDir dir;
  const SegmentRecord keep = MakeRecord("kept", 1.0);
  const SegmentRecord lost = MakeRecord("lost mid-crash", 2.0);
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    cache.Insert(RequestOf(keep), keep.summary);
    cache.Insert(RequestOf(lost), lost.summary);
  }
  // Simulate a crash mid-append: chop the last 5 bytes.
  const std::string path = PersistentCache::SegmentPath(dir.path);
  std::string bytes = ReadFile(path);
  WriteFile(path, bytes.substr(0, bytes.size() - 5));

  const SegmentRecord fresh = MakeRecord("fresh", 3.0);
  {
    PersistentCache warmed(SmallCache(), PersistIn(dir.path));
    const service::SegmentStats seg = warmed.Segment();
    EXPECT_EQ(seg.replayed, 1u);
    EXPECT_EQ(seg.truncations, 1u);
    EXPECT_TRUE(warmed.Lookup(RequestOf(keep)).has_value());
    EXPECT_FALSE(warmed.Lookup(RequestOf(lost)).has_value());
    warmed.Insert(RequestOf(fresh), fresh.summary);
  }
  // The cut tail must not shadow the record appended after it.
  PersistentCache again(SmallCache(), PersistIn(dir.path));
  EXPECT_EQ(again.Segment().replayed, 2u);
  EXPECT_TRUE(again.Lookup(RequestOf(keep)).has_value());
  EXPECT_TRUE(again.Lookup(RequestOf(fresh)).has_value());
}

TEST(PersistentCache, ForeignSegmentFileIsResetNotTrusted) {
  ScopedDir dir;
  const std::string path = PersistentCache::SegmentPath(dir.path);
  std::filesystem::create_directories(dir.path);
  WriteFile(path, "some other tool's file\n");
  const SegmentRecord rec = MakeRecord("after reset", 1.0);
  {
    PersistentCache cache(SmallCache(), PersistIn(dir.path));
    EXPECT_EQ(cache.Segment().header_resets, 1u);
    EXPECT_EQ(cache.Segment().replayed, 0u);
    cache.Insert(RequestOf(rec), rec.summary);
  }
  PersistentCache warmed(SmallCache(), PersistIn(dir.path));
  EXPECT_EQ(warmed.Segment().replayed, 1u);
  EXPECT_TRUE(warmed.Lookup(RequestOf(rec)).has_value());
}

}  // namespace
}  // namespace msn
