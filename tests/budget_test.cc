#include "flow/budget.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "netgen/netgen.h"

namespace msn {
namespace {

Frontier F(std::initializer_list<CostDelay> pts) { return Frontier(pts); }

TEST(BudgetMinMax, PicksCheapestMeetingBestTarget) {
  const std::vector<Frontier> nets = {
      F({{4, 100}, {6, 70}, {8, 50}}),
      F({{4, 90}, {6, 60}}),
  };
  // Budget 12: 6+6 buys delays 70/60 -> worst 70.
  const auto a = AllocateMinMax(nets, 12.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->worst_delay_ps, 70.0);
  EXPECT_DOUBLE_EQ(a->total_cost, 12.0);

  // Budget 14: 8+6 buys delays 50/60 -> worst 60 (net 1's floor).
  const auto b = AllocateMinMax(nets, 14.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(b->worst_delay_ps, 60.0);

  // More budget cannot help: 60 is net 1's minimum delay.
  const auto c = AllocateMinMax(nets, 16.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->worst_delay_ps, 60.0);
  EXPECT_LE(c->total_cost, 16.0);
}

TEST(BudgetMinMax, InfeasibleBudget) {
  const std::vector<Frontier> nets = {F({{4, 100}}), F({{4, 90}})};
  EXPECT_FALSE(AllocateMinMax(nets, 7.0).has_value());
  EXPECT_TRUE(AllocateMinMax(nets, 8.0).has_value());
}

TEST(BudgetMinMax, UnmeetableTargetStopsAtBestAchievable) {
  const std::vector<Frontier> nets = {F({{4, 100}, {10, 95}}),
                                      F({{4, 20}})};
  // Net 0 can never get below 95; with a huge budget worst = 95.
  const auto a = AllocateMinMax(nets, 1000.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->worst_delay_ps, 95.0);
}

TEST(BudgetMinSum, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    // Random instance: 3 nets, <= 4 points each, integer costs.
    std::vector<Frontier> nets;
    for (int k = 0; k < 3; ++k) {
      Frontier f;
      double cost = static_cast<double>(rng.UniformInt(2, 5));
      double delay = rng.UniformReal(50.0, 200.0);
      const int pts = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < pts; ++i) {
        f.push_back({cost, delay});
        cost += static_cast<double>(rng.UniformInt(1, 3));
        delay -= rng.UniformReal(1.0, 40.0);
      }
      nets.push_back(std::move(f));
    }
    const double budget = static_cast<double>(rng.UniformInt(6, 25));

    const auto dp = AllocateMinSum(nets, budget);

    // Brute force over all choice tuples.
    double best = -1.0;
    for (std::size_t i = 0; i < nets[0].size(); ++i) {
      for (std::size_t j = 0; j < nets[1].size(); ++j) {
        for (std::size_t k = 0; k < nets[2].size(); ++k) {
          const double cost = nets[0][i].cost + nets[1][j].cost +
                              nets[2][k].cost;
          if (cost > budget + 1e-9) continue;
          const double sum = nets[0][i].delay_ps + nets[1][j].delay_ps +
                             nets[2][k].delay_ps;
          if (best < 0.0 || sum < best) best = sum;
        }
      }
    }
    if (best < 0.0) {
      EXPECT_FALSE(dp.has_value()) << "trial " << trial;
    } else {
      ASSERT_TRUE(dp.has_value()) << "trial " << trial;
      EXPECT_NEAR(dp->sum_delay_ps, best, 1e-9) << "trial " << trial;
      EXPECT_LE(dp->total_cost, budget + 1e-9);
    }
  }
}

TEST(BudgetMinSum, RejectsOffGridCosts) {
  const std::vector<Frontier> nets = {F({{4.37, 100}})};
  EXPECT_THROW(AllocateMinSum(nets, 10.0, 1.0), CheckError);
  // The same cost is fine on a 0.01 grid.
  EXPECT_TRUE(AllocateMinSum(nets, 10.0, 0.01).has_value());
}

TEST(Budget, ValidatesFrontiers) {
  EXPECT_THROW(AllocateMinMax({}, 10.0), CheckError);
  EXPECT_THROW(AllocateMinMax({Frontier{}}, 10.0), CheckError);
  // Non-monotone frontier.
  EXPECT_THROW(AllocateMinMax({F({{4, 100}, {6, 100}})}, 10.0), CheckError);
}

TEST(Budget, EndToEndWithRealNets) {
  const Technology tech = DefaultTechnology();
  std::vector<MsriResult> results;
  std::vector<Frontier> frontiers;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    NetConfig cfg;
    cfg.seed = seed;
    cfg.num_terminals = 6;
    const RcTree tree = BuildExperimentNet(cfg, tech);
    results.push_back(RunMsri(tree, tech));
    frontiers.push_back(FrontierOf(results.back()));
  }
  const double min_cost = frontiers[0].front().cost +
                          frontiers[1].front().cost +
                          frontiers[2].front().cost;

  // Min-max improves monotonically with budget.
  double prev = kInf;
  for (double extra : {0.0, 4.0, 8.0, 16.0, 64.0}) {
    const auto a = AllocateMinMax(frontiers, min_cost + extra);
    ASSERT_TRUE(a.has_value()) << "extra " << extra;
    EXPECT_LE(a->worst_delay_ps, prev + 1e-9);
    EXPECT_LE(a->total_cost, min_cost + extra + 1e-9);
    prev = a->worst_delay_ps;
  }

  // Min-sum never exceeds min-max's sum at the same budget (it optimizes
  // the sum), and vice versa for the worst delay.
  const double budget = min_cost + 12.0;
  const auto mm = AllocateMinMax(frontiers, budget);
  const auto ms = AllocateMinSum(frontiers, budget);
  ASSERT_TRUE(mm && ms);
  EXPECT_LE(ms->sum_delay_ps, mm->sum_delay_ps + 1e-9);
  EXPECT_LE(mm->worst_delay_ps, ms->worst_delay_ps + 1e-9);
}

}  // namespace
}  // namespace msn
