// Failure injection and API-contract tests across modules: malformed
// structures must be rejected loudly, and debug hooks must behave.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallTech;
using testing::TwoPinLine;

TEST(Robustness, RepeaterOnNonInsertionNodeRejected) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  RepeaterAssignment assign(tree.NumNodes());
  // Node 0 is a terminal; placing a repeater there must be caught by the
  // capacitance engine.
  assign.Place(tree.TerminalNode(0), PlacedRepeater{0, 1});
  EXPECT_THROW(
      ComputeArd(tree, assign, DriverAssignment(tree.NumTerminals()), tech),
      CheckError);
}

TEST(Robustness, OrientationMustNameANeighbor) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 2);
  RepeaterAssignment assign(tree.NumNodes());
  const NodeId ip = tree.InsertionPoints()[0];
  // Terminal 1 is not adjacent to the first insertion point.
  assign.Place(ip, PlacedRepeater{0, tree.TerminalNode(1)});
  EXPECT_THROW(
      ComputeArd(tree, assign, DriverAssignment(tree.NumTerminals()), tech),
      CheckError);
}

TEST(Robustness, RepeaterIndexOutOfLibraryRange) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  RepeaterAssignment assign(tree.NumNodes());
  const NodeId ip = tree.InsertionPoints()[0];
  assign.Place(ip, PlacedRepeater{99, tree.TerminalNode(0)});
  EXPECT_THROW(assign.Cost(tech), CheckError);
  EXPECT_THROW(assign.Resolve(ip, tech), CheckError);
}

TEST(Robustness, MismatchedAssignmentSizesRejected) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  // Assignment sized for a different tree (this one has 3 nodes).
  const RepeaterAssignment wrong(2);
  EXPECT_THROW(
      ComputeArd(tree, wrong, DriverAssignment(tree.NumTerminals()), tech),
      CheckError);
  const DriverAssignment wrong_drivers(7);
  EXPECT_THROW(ComputeArd(tree, RepeaterAssignment(tree.NumNodes()),
                          wrong_drivers, tech),
               CheckError);
}

TEST(Robustness, RootedTreeRejectsBadRoot) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  EXPECT_THROW(RootedTree(tree, 999), CheckError);
}

TEST(Robustness, ObserverSeesEveryNonRootNodeOnce) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 3000.0, 3);
  std::vector<int> seen(tree.NumNodes(), 0);
  MsriOptions opt;
  opt.set_observer = [&](NodeId v, const SolutionSet& set) {
    ASSERT_LT(v, tree.NumNodes());
    ++seen[v];
    EXPECT_FALSE(set.empty());
    for (const SolutionPtr& s : set) {
      EXPECT_TRUE(s->arr.IsConvexNonDecreasing(1e-6));
      EXPECT_TRUE(s->diam.IsConvexNonDecreasing(1e-6));
      EXPECT_FALSE(s->valid.Empty());
    }
  };
  RunMsri(tree, tech, opt);
  const NodeId root = tree.TerminalNode(0);
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    EXPECT_EQ(seen[v], v == root ? 0 : 1) << "node " << v;
  }
}

TEST(Robustness, CheckMacrosCarryContext) {
  try {
    MSN_CHECK_MSG(false, "ctx " << 42);
    FAIL();
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ctx 42"), std::string::npos);
    EXPECT_NE(what.find("robustness_test.cc"), std::string::npos);
  }
}

TEST(Robustness, TechnologyValidationInRunMsri) {
  Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  tech.wire.res_per_um = -1.0;
  EXPECT_THROW(RunMsri(tree, tech), CheckError);
}

}  // namespace
}  // namespace msn
