// Tests for the two-moment (D2M) delay engine.
#include "elmore/moments.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/ard.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::RandomAssignment;
using testing::SmallRandomNet;
using testing::TwoPinLine;

TEST(Moments, SingleStageHandComputed) {
  // Two pins joined by one wire: pi-lumped model with node caps
  // (pin + C/2) at each end.
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  const TerminalParams tp = DefaultTerminal(tech);
  const NodeId a = tree.AddTerminal(tp, {0, 0});
  const NodeId b = tree.AddTerminal(tp, {2000, 0});
  tree.AddEdge(a, b, 2000.0);

  const EffectiveTerminal eff = ResolveTerminal(tp);
  const double R = 2000.0 * tech.wire.res_per_um;
  const double C = 2000.0 * tech.wire.cap_per_um;
  const double rd = eff.driver_res;
  const double ca = eff.pin_cap + C / 2.0;
  const double cb = eff.pin_cap + C / 2.0;

  const double m1a = rd * (ca + cb);
  const double m1b = m1a + R * cb;
  const double mu_b = cb * m1b;
  const double mu_a = ca * m1a + mu_b;
  const double m2a = rd * mu_a;
  const double m2b = m2a + R * mu_b;

  const SourceMoments m = ComputeSourceMoments(
      tree, 0, RepeaterAssignment(tree.NumNodes()),
      DriverAssignment(tree.NumTerminals()), tech);
  EXPECT_NEAR(m.m1[a], m1a, 1e-9);
  EXPECT_NEAR(m.m1[b], m1b, 1e-9);
  EXPECT_NEAR(m.m2[a], m2a, 1e-9);
  EXPECT_NEAR(m.m2[b], m2b, 1e-9);
  EXPECT_NEAR(m.delay_ps[b],
              eff.arrival_ps + eff.driver_intrinsic_ps +
                  D2mDelay(m1b, m2b),
              1e-9);
}

TEST(Moments, D2mOfFirstOrderIsLn2Tau) {
  // A single-pole system (m2 == m1^2) has exact 50% delay ln2 * tau.
  EXPECT_NEAR(D2mDelay(100.0, 100.0 * 100.0), 0.6931471805599453 * 100.0,
              1e-9);
  // Zero-resistance degenerate case falls back to ln2 * m1.
  EXPECT_NEAR(D2mDelay(5.0, 0.0), 0.6931471805599453 * 5.0, 1e-12);
}

TEST(Moments, StageM1MatchesElmoreArrival) {
  // Without repeaters there is a single stage, so AT + intrinsic + m1
  // must equal the Elmore engine's arrival at every node.
  const Technology tech = testing::SmallTech();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 7000, 900.0);
    const RepeaterAssignment none(tree.NumNodes());
    const DriverAssignment drivers(tree.NumTerminals());
    const SourceMoments m =
        ComputeSourceMoments(tree, 0, none, drivers, tech);
    const SourceDelays d =
        ComputeSourceDelays(tree, 0, none, drivers, tech);
    const EffectiveTerminal eff = drivers.Resolve(tree, 0);
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      if (v == tree.TerminalNode(0)) continue;  // Source holds the
      // driver-output moments; arrival[source] is the input-side AT.
      EXPECT_NEAR(eff.arrival_ps + eff.driver_intrinsic_ps + m.m1[v],
                  d.arrival[v], 1e-9)
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(Moments, JensenBoundHolds) {
  // h(t) of an RC stage is a positive mix of exponentials, so
  // E[t^2] >= E[t]^2 (Jensen); in circuit-moment convention (m2 is the
  // s^2 transfer coefficient = E[t^2]/2) that reads 2*m2 >= m1^2.
  const Technology tech = testing::SmallTech();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 7, 8000, 700.0);
    Rng rng(seed * 13);
    const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
    const DriverAssignment drivers(tree.NumTerminals());
    const SourceMoments m =
        ComputeSourceMoments(tree, 0, assign, drivers, tech);
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      EXPECT_GE(2.0 * m.m2[v], m.m1[v] * m.m1[v] * (1.0 - 1e-9))
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(Moments, D2mNeverExceedsElmore) {
  // Jensen => sqrt(m2) >= m1/sqrt(2) => D2M <= ln2*sqrt(2)*m1 < m1, per
  // stage; stage sums preserve the inequality against Elmore arrivals.
  const Technology tech = testing::SmallTech();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RcTree tree = SmallRandomNet(tech, seed, 6, 8000, 800.0);
    Rng rng(seed + 5);
    const RepeaterAssignment assign = RandomAssignment(tree, tech, rng);
    const DriverAssignment drivers(tree.NumTerminals());
    const SourceMoments m =
        ComputeSourceMoments(tree, 0, assign, drivers, tech);
    const SourceDelays d =
        ComputeSourceDelays(tree, 0, assign, drivers, tech);
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      if (v == tree.TerminalNode(0)) continue;  // Input-side vs output.
      EXPECT_LE(m.delay_ps[v], d.arrival[v] + 1e-9)
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(Moments, FarSinkRatioIsInKnownBand) {
  // On a long unbuffered line the distributed response is Elmore-like;
  // D2M should sit between ~60% and 100% of the Elmore estimate.
  const Technology tech = testing::SmallTech();
  const RcTree tree = TwoPinLine(tech, 15'000.0, 10);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const SourceMoments m = ComputeSourceMoments(tree, 0, none, drivers, tech);
  const SourceDelays d = ComputeSourceDelays(tree, 0, none, drivers, tech);
  const NodeId sink = tree.TerminalNode(1);
  const double ratio = m.delay_ps[sink] / d.arrival[sink];
  EXPECT_GT(ratio, 0.55);
  EXPECT_LT(ratio, 1.0);
}

TEST(Moments, RepeaterDecouplesDownstream) {
  const Technology tech = testing::SmallTech();
  std::vector<double> at_ip;
  for (const double tail : {600.0, 5000.0}) {
    RcTree tree(tech.wire);
    const TerminalParams tp = DefaultTerminal(tech);
    const NodeId a = tree.AddTerminal(tp, {0, 0});
    const NodeId ip = tree.AddNode(NodeKind::kInsertion, {500, 0});
    const NodeId b = tree.AddTerminal(
        tp, {500 + static_cast<std::int64_t>(tail), 0});
    tree.AddEdge(a, ip, 500.0);
    tree.AddEdge(ip, b, tail);
    RepeaterAssignment assign(tree.NumNodes());
    assign.Place(ip, PlacedRepeater{0, a});
    const SourceMoments m = ComputeSourceMoments(
        tree, 0, assign, DriverAssignment(tree.NumTerminals()), tech);
    at_ip.push_back(m.delay_ps[ip]);
  }
  EXPECT_NEAR(at_ip[0], at_ip[1], 1e-9);
}

TEST(Moments, ArdD2mShapesMatchElmore) {
  const Technology tech = testing::SmallTech();
  const RcTree tree = SmallRandomNet(tech, 12, 8, 9000, 800.0);
  const RepeaterAssignment none(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());
  const ArdResult d2m = ComputeArdD2M(tree, none, drivers, tech);
  const ArdResult elmore = ComputeArd(tree, none, drivers, tech);
  ASSERT_TRUE(d2m.HasPair());
  EXPECT_LE(d2m.ard_ps, elmore.ard_ps + 1e-9);
  EXPECT_GT(d2m.ard_ps, 0.5 * elmore.ard_ps);
}

TEST(Moments, SlewOfSinglePoleIsLn9Tau) {
  // sigma of a single-pole response equals tau; 10-90 slew = ln9 * tau.
  EXPECT_NEAR(SlewEstimate(100.0, 100.0 * 100.0),
              2.1972245773362196 * 100.0, 1e-9);
  // Degenerate zero-variance input clamps to zero.
  EXPECT_DOUBLE_EQ(SlewEstimate(10.0, 50.0), 0.0);
}

TEST(Moments, SlewGrowsAlongUnbufferedLineAndResetsAtRepeaters) {
  const Technology tech = testing::SmallTech();
  // Unbuffered 12 mm line: slew at the far end exceeds slew mid-line.
  {
    const RcTree tree = TwoPinLine(tech, 12'000.0, 3);
    const SourceMoments m = ComputeSourceMoments(
        tree, 0, RepeaterAssignment(tree.NumNodes()),
        DriverAssignment(tree.NumTerminals()), tech);
    const NodeId mid = tree.InsertionPoints()[1];
    const NodeId far = tree.TerminalNode(1);
    EXPECT_GT(SlewEstimate(m.m1[far], m.m2[far]),
              SlewEstimate(m.m1[mid], m.m2[mid]));
  }
  // Same line with a repeater at the middle: the slew at the far end is
  // the *new stage's* slew, far below the unbuffered line's.
  {
    const RcTree tree = TwoPinLine(tech, 12'000.0, 3);
    RepeaterAssignment assign(tree.NumNodes());
    const NodeId mid = tree.InsertionPoints()[1];
    const RcEdge& adj = tree.Edge(tree.AdjacentEdges(mid)[0]);
    assign.Place(mid,
                 PlacedRepeater{0, adj.a == mid ? adj.b : adj.a});
    const SourceMoments buffered = ComputeSourceMoments(
        tree, 0, assign, DriverAssignment(tree.NumTerminals()), tech);
    const SourceMoments plain = ComputeSourceMoments(
        tree, 0, RepeaterAssignment(tree.NumNodes()),
        DriverAssignment(tree.NumTerminals()), tech);
    const NodeId far = tree.TerminalNode(1);
    EXPECT_LT(SlewEstimate(buffered.m1[far], buffered.m2[far]),
              SlewEstimate(plain.m1[far], plain.m2[far]));
  }
}

TEST(Moments, RejectsNonSource) {
  const Technology tech = DefaultTechnology();
  RcTree tree(tech.wire);
  TerminalParams sink_only = DefaultTerminal(tech);
  sink_only.is_source = false;
  const NodeId a = tree.AddTerminal(sink_only, {0, 0});
  const NodeId b = tree.AddTerminal(DefaultTerminal(tech), {100, 0});
  tree.AddEdge(a, b, 100.0);
  EXPECT_THROW(
      ComputeSourceMoments(tree, 0, RepeaterAssignment(tree.NumNodes()),
                           DriverAssignment(tree.NumTerminals()), tech),
      CheckError);
}

}  // namespace
}  // namespace msn
