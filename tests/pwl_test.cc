#include "core/pwl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace msn {
namespace {

TEST(Pwl, DefaultIsNegInf) {
  Pwl f;
  EXPECT_TRUE(f.IsNegInf());
  EXPECT_EQ(f.Eval(0.0), -kInf);
  EXPECT_EQ(f.Eval(123.0), -kInf);
}

TEST(Pwl, ConstantAndLineEval) {
  const Pwl c = Pwl::Constant(5.0);
  EXPECT_DOUBLE_EQ(c.Eval(0.0), 5.0);
  EXPECT_DOUBLE_EQ(c.Eval(100.0), 5.0);
  const Pwl l = Pwl::Line(2.0, 3.0);
  EXPECT_DOUBLE_EQ(l.Eval(0.0), 2.0);
  EXPECT_DOUBLE_EQ(l.Eval(4.0), 14.0);
}

TEST(Pwl, EvalNegativeThrows) {
  EXPECT_THROW(Pwl::Constant(1.0).Eval(-0.5), CheckError);
}

TEST(Pwl, AddScalarAndSlope) {
  Pwl f = Pwl::Line(1.0, 2.0);
  f.AddScalar(10.0);
  EXPECT_DOUBLE_EQ(f.Eval(0.0), 11.0);
  f.AddSlope(0.5);
  EXPECT_DOUBLE_EQ(f.Eval(2.0), 11.0 + 2.5 * 2.0);
}

TEST(Pwl, AddScalarOnNegInfIsNoop) {
  Pwl f;
  f.AddScalar(5.0);
  f.AddSlope(2.0);
  EXPECT_TRUE(f.IsNegInf());
}

TEST(Pwl, ShiftLine) {
  const Pwl f = Pwl::Line(1.0, 2.0);
  const Pwl g = f.Shifted(3.0);
  // g(x) = f(x+3) = 1 + 2(x+3) = 7 + 2x.
  EXPECT_DOUBLE_EQ(g.Eval(0.0), 7.0);
  EXPECT_DOUBLE_EQ(g.Eval(1.0), 9.0);
}

TEST(Pwl, ShiftByZeroIsIdentity) {
  const Pwl f = Pwl::Max(Pwl::Line(0.0, 2.0), Pwl::Line(5.0, 1.0));
  EXPECT_TRUE(Pwl::ApproxEqual(f, f.Shifted(0.0)));
}

TEST(Pwl, ShiftNegativeThrows) {
  EXPECT_THROW(Pwl::Line(0.0, 1.0).Shifted(-1.0), CheckError);
}

TEST(Pwl, ShiftDropsLeftSegments) {
  // max(5 + 0x, 0 + 1x): breakpoint at x = 5.
  const Pwl f = Pwl::Max(Pwl::Constant(5.0), Pwl::Line(0.0, 1.0));
  ASSERT_EQ(f.NumSegments(), 2u);
  // Shift by 10: only the steep segment remains.
  const Pwl g = f.Shifted(10.0);
  EXPECT_EQ(g.NumSegments(), 1u);
  EXPECT_DOUBLE_EQ(g.Eval(0.0), 10.0);
  EXPECT_DOUBLE_EQ(g.Eval(2.0), 12.0);
}

TEST(Pwl, MaxOfTwoLinesCrossing) {
  // f = 10 + 0x, g = 0 + 2x; cross at x = 5.
  const Pwl m = Pwl::Max(Pwl::Constant(10.0), Pwl::Line(0.0, 2.0));
  ASSERT_EQ(m.NumSegments(), 2u);
  EXPECT_DOUBLE_EQ(m.Eval(0.0), 10.0);
  EXPECT_DOUBLE_EQ(m.Eval(5.0), 10.0);
  EXPECT_DOUBLE_EQ(m.Eval(7.0), 14.0);
  EXPECT_TRUE(m.IsConvexNonDecreasing());
}

TEST(Pwl, MaxOfParallelLines) {
  const Pwl m = Pwl::Max(Pwl::Line(1.0, 2.0), Pwl::Line(3.0, 2.0));
  EXPECT_EQ(m.NumSegments(), 1u);
  EXPECT_DOUBLE_EQ(m.Eval(10.0), 23.0);
}

TEST(Pwl, MaxWithNegInf) {
  const Pwl f = Pwl::Line(1.0, 2.0);
  EXPECT_TRUE(Pwl::ApproxEqual(Pwl::Max(f, Pwl::NegInf()), f));
  EXPECT_TRUE(Pwl::ApproxEqual(Pwl::Max(Pwl::NegInf(), f), f));
  EXPECT_TRUE(Pwl::Max(Pwl::NegInf(), Pwl::NegInf()).IsNegInf());
}

TEST(Pwl, MaxOfIdenticalFunctions) {
  const Pwl f = Pwl::Max(Pwl::Constant(4.0), Pwl::Line(0.0, 1.0));
  const Pwl m = Pwl::Max(f, f);
  EXPECT_TRUE(Pwl::ApproxEqual(m, f));
}

TEST(Pwl, MaxThreeWayCriticalSourceSwap) {
  // Mirrors the paper's Fig. 3: two arrival lines with slopes 7 and 12
  // whose max switches the critical source at the crossing.
  const Pwl au = Pwl::Line(100.0, 12.0);  // Closer source, more resistance.
  const Pwl aw = Pwl::Line(130.0, 7.0);
  const Pwl m = Pwl::Max(au, aw);
  ASSERT_EQ(m.NumSegments(), 2u);
  // Crossing at x = 30/5 = 6: below, aw wins; above, au wins.
  EXPECT_DOUBLE_EQ(m.Eval(0.0), 130.0);
  EXPECT_DOUBLE_EQ(m.Eval(6.0), 172.0);
  EXPECT_DOUBLE_EQ(m.Eval(10.0), 220.0);
  EXPECT_EQ(m.Segments()[0].slope, 7.0);
  EXPECT_EQ(m.Segments()[1].slope, 12.0);
}

TEST(Pwl, RegionLessEqualConstant) {
  const Pwl f = Pwl::Constant(5.0);
  const Pwl g = Pwl::Constant(7.0);
  EXPECT_EQ(f.RegionLessEqual(g), IntervalSet::NonNegativeReals());
  EXPECT_TRUE(g.RegionLessEqual(f).Empty());
}

TEST(Pwl, RegionLessEqualCrossing) {
  // f = 10, g = 2x: f <= g for x >= 5.
  const Pwl f = Pwl::Constant(10.0);
  const Pwl g = Pwl::Line(0.0, 2.0);
  const IntervalSet r = f.RegionLessEqual(g);
  EXPECT_FALSE(r.Contains(4.9));
  EXPECT_TRUE(r.Contains(5.0));
  EXPECT_TRUE(r.Contains(1e9));
  // The mirrored region is half-open at the crossing ([0, 5)): losing the
  // single boundary point only makes MFS pruning slightly conservative.
  const IntervalSet r2 = g.RegionLessEqual(f);
  EXPECT_TRUE(r2.Contains(0.0));
  EXPECT_TRUE(r2.Contains(4.999));
  EXPECT_FALSE(r2.Contains(5.1));
}

TEST(Pwl, RegionLessEqualWithBottom) {
  const Pwl f;
  const Pwl g = Pwl::Constant(0.0);
  EXPECT_EQ(f.RegionLessEqual(g), IntervalSet::NonNegativeReals());
  EXPECT_TRUE(g.RegionLessEqual(f).Empty());
  EXPECT_EQ(f.RegionLessEqual(f), IntervalSet::NonNegativeReals());
}

TEST(Pwl, RegionLessEqualEps) {
  const Pwl f = Pwl::Constant(5.0);
  const Pwl g = Pwl::Constant(4.9999999);
  EXPECT_TRUE(f.RegionLessEqual(g, 1e-3).Contains(1.0));
  EXPECT_TRUE(f.RegionLessEqual(g, 0.0).Empty());
}

TEST(Pwl, SimplifyMergesEqualSegments) {
  // Construct a 2-segment function whose pieces are actually collinear by
  // max of identical lines with an artificial breakpoint via shift.
  Pwl f = Pwl::Max(Pwl::Line(0.0, 1.0), Pwl::Line(-1.0, 1.0));
  EXPECT_EQ(f.NumSegments(), 1u);
  f.Simplify();
  EXPECT_EQ(f.NumSegments(), 1u);
}

TEST(Pwl, EpsilonCloseBreakpointsDoNotInflateSegments) {
  // Regression for segment-count stability: breakpoints that drift apart
  // by rounding noise used to survive the exact-equality dedup as
  // near-zero-width segments and inflate counts through the whole DP.
  const Pwl f = Pwl::Max(Pwl::Constant(5.0), Pwl::Line(0.0, 1.0));
  ASSERT_EQ(f.NumSegments(), 2u);
  // The same function, its crossover shifted by ~1 ulp-scale noise.
  const Pwl g =
      Pwl::Max(Pwl::Constant(5.0 * (1.0 + 1e-13)), Pwl::Line(0.0, 1.0));
  ASSERT_EQ(g.NumSegments(), 2u);
  const Pwl m = Pwl::Max(f, g);
  EXPECT_EQ(m.NumSegments(), 2u);

  // Stability under accumulation: maxing in many noise-perturbed copies
  // must not grow the representation.
  Pwl acc = m;
  for (int i = 0; i < 50; ++i) {
    const Pwl noisy = Pwl::Max(
        Pwl::Constant(5.0 + static_cast<double>(i) * 1e-14),
        Pwl::Line(static_cast<double>(i) * 1e-15, 1.0));
    acc = Pwl::Max(acc, noisy);
  }
  EXPECT_LE(acc.NumSegments(), 3u);
  EXPECT_NEAR(acc.Eval(0.0), 5.0, 1e-9);
  EXPECT_NEAR(acc.Eval(10.0), 10.0, 1e-9);
}

TEST(Pwl, ManySegmentsSpillAndCopySemantics) {
  // Upper envelope of 8 lines (slope i, intercept 100 - i^2): every line
  // appears, with crossovers at x = 1, 3, 5, ... — more segments than
  // the inline arena holds, so this exercises the heap-spill path and
  // the copy/move transitions between inline and heap storage.
  Pwl f = Pwl::NegInf();
  for (int i = 0; i < 8; ++i) {
    f = Pwl::Max(f, Pwl::Line(100.0 - static_cast<double>(i * i),
                              static_cast<double>(i)));
  }
  ASSERT_EQ(f.NumSegments(), 8u);
  EXPECT_TRUE(f.IsConvexNonDecreasing());
  EXPECT_DOUBLE_EQ(f.Eval(0.0), 100.0);
  EXPECT_DOUBLE_EQ(f.Eval(4.0), 104.0);   // Line i = 2: 96 + 2x.
  EXPECT_DOUBLE_EQ(f.Eval(20.0), 191.0);  // Line i = 7: 51 + 7x.

  Pwl copy = f;  // heap -> heap copy
  EXPECT_TRUE(Pwl::ApproxEqual(copy, f));
  copy = Pwl::Line(1.0, 1.0);  // heap -> inline assignment
  EXPECT_EQ(copy.NumSegments(), 1u);
  copy = f;  // inline -> heap assignment
  EXPECT_TRUE(Pwl::ApproxEqual(copy, f));
  const Pwl moved = std::move(copy);
  EXPECT_TRUE(Pwl::ApproxEqual(moved, f));
  Pwl small = Pwl::Line(2.0, 3.0);
  const Pwl small_moved = std::move(small);
  EXPECT_DOUBLE_EQ(small_moved.Eval(1.0), 5.0);
}

TEST(Pwl, ConvexityDetection) {
  EXPECT_TRUE(Pwl::Constant(3.0).IsConvexNonDecreasing());
  EXPECT_TRUE(Pwl::Line(0.0, 5.0).IsConvexNonDecreasing());
  EXPECT_FALSE(Pwl::Line(0.0, -1.0).IsConvexNonDecreasing());
}

/// Property: Max agrees with pointwise eval on random convex inputs built
/// the way the DP builds them (max of random lines, shifted and offset).
class PwlRandomProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Pwl RandomConvex(Rng& rng) {
    Pwl f = Pwl::NegInf();
    const int lines = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < lines; ++i) {
      f = Pwl::Max(
          f, Pwl::Line(rng.UniformReal(0.0, 200.0),
                       rng.UniformReal(0.0, 20.0)));
    }
    return f;
  }
};

TEST_P(PwlRandomProperty, MaxMatchesPointwise) {
  Rng rng(GetParam());
  const Pwl f = RandomConvex(rng);
  const Pwl g = RandomConvex(rng);
  const Pwl m = Pwl::Max(f, g);
  EXPECT_TRUE(m.IsConvexNonDecreasing(1e-6));
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformReal(0.0, 50.0);
    EXPECT_NEAR(m.Eval(x), std::max(f.Eval(x), g.Eval(x)), 1e-9)
        << "x = " << x;
  }
}

TEST_P(PwlRandomProperty, ShiftCommutesWithEval) {
  Rng rng(GetParam());
  const Pwl f = RandomConvex(rng);
  const double delta = rng.UniformReal(0.0, 10.0);
  const Pwl g = f.Shifted(delta);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.UniformReal(0.0, 40.0);
    EXPECT_NEAR(g.Eval(x), f.Eval(x + delta), 1e-9);
  }
}

TEST_P(PwlRandomProperty, MaxIsCommutativeAndAssociative) {
  Rng rng(GetParam());
  const Pwl f = RandomConvex(rng);
  const Pwl g = RandomConvex(rng);
  const Pwl h = RandomConvex(rng);
  EXPECT_TRUE(Pwl::ApproxEqual(Pwl::Max(f, g), Pwl::Max(g, f), 1e-9));
  EXPECT_TRUE(Pwl::ApproxEqual(Pwl::Max(Pwl::Max(f, g), h),
                               Pwl::Max(f, Pwl::Max(g, h)), 1e-9));
}

TEST_P(PwlRandomProperty, ShiftDistributesOverMax) {
  Rng rng(GetParam());
  const Pwl f = RandomConvex(rng);
  const Pwl g = RandomConvex(rng);
  const double d = rng.UniformReal(0.0, 8.0);
  EXPECT_TRUE(Pwl::ApproxEqual(Pwl::Max(f, g).Shifted(d),
                               Pwl::Max(f.Shifted(d), g.Shifted(d)), 1e-9));
}

TEST_P(PwlRandomProperty, RegionLessEqualMatchesPointwise) {
  Rng rng(GetParam());
  const Pwl f = RandomConvex(rng);
  const Pwl g = RandomConvex(rng);
  const IntervalSet region = f.RegionLessEqual(g, 1e-12);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformReal(0.0, 60.0);
    const bool leq = f.Eval(x) <= g.Eval(x) + 1e-9;
    const bool in = region.Contains(x);
    // Allow disagreement only within eps of a boundary.
    if (in != leq) {
      EXPECT_NEAR(f.Eval(x), g.Eval(x), 1e-6) << "x = " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PwlRandomProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace msn
