// Tests for simultaneous discrete wire sizing (the paper conclusions'
// extension, after refs [15],[20]): every wire segment independently
// chooses a width factor; resistance divides by it, capacitance
// multiplies, and the extra metal area is charged to the cost.
#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "common/check.h"
#include "core/ard.h"
#include "core/msri.h"
#include "test_util.h"

namespace msn {
namespace {

using testing::SmallRandomNet;
using testing::SmallTech;
using testing::TwoPinLine;

MsriOptions WireOptions(bool repeaters = true) {
  MsriOptions opt;
  opt.insert_repeaters = repeaters;
  opt.size_wires = true;
  opt.wire_width_choices = {1.0, 2.0};
  opt.wire_area_cost_per_um = 0.0005;
  return opt;
}

TEST(WireSizing, ScaledTreeHasScaledParasitics) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  std::vector<double> widths(tree.NumEdges(), 2.0);
  const RcTree wide = tree.WithWireWidths(widths);
  for (std::size_t e = 0; e < tree.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(wide.Edge(e).res, tree.Edge(e).res / 2.0);
    EXPECT_DOUBLE_EQ(wide.Edge(e).cap, tree.Edge(e).cap * 2.0);
    EXPECT_DOUBLE_EQ(wide.Edge(e).length_um, tree.Edge(e).length_um);
  }
}

TEST(WireSizing, ScaledTreeRejectsBadInput) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  EXPECT_THROW(tree.WithWireWidths({1.0}), CheckError);  // Wrong size.
  std::vector<double> narrow(tree.NumEdges(), 0.5);
  EXPECT_THROW(tree.WithWireWidths(narrow), CheckError);
}

TEST(WireSizing, OptionsValidated) {
  const Technology tech = SmallTech();
  const RcTree tree = TwoPinLine(tech, 1000.0, 1);
  MsriOptions opt = WireOptions();
  opt.wire_width_choices = {2.0};  // Missing the minimum width.
  EXPECT_THROW(RunMsri(tree, tech, opt), CheckError);
  opt = WireOptions();
  opt.wire_width_choices = {0.5, 1.0};
  EXPECT_THROW(RunMsri(tree, tech, opt), CheckError);
  opt = WireOptions();
  opt.wire_area_cost_per_um = -1.0;
  EXPECT_THROW(RunMsri(tree, tech, opt), CheckError);
}

TEST(WireSizing, MinWidthOnlyMatchesPlainRun) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 4, 5, 6000, 900.0);
  MsriOptions opt = WireOptions();
  opt.wire_width_choices = {1.0};
  const MsriResult sized = RunMsri(tree, tech, opt);
  const MsriResult plain = RunMsri(tree, tech);
  ASSERT_EQ(sized.Pareto().size(), plain.Pareto().size());
  for (std::size_t i = 0; i < sized.Pareto().size(); ++i) {
    EXPECT_NEAR(sized.Pareto()[i].cost, plain.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(sized.Pareto()[i].ard_ps, plain.Pareto()[i].ard_ps, 1e-6);
  }
}

TEST(WireSizing, WideningHelpsWhenWireResistanceDominates) {
  // Under the classic width model the wire's self-delay (RC/2) is
  // width-invariant: widening trades less downstream-driving resistance
  // (R_wire·C_load / w) against more upstream loading (R_drv·C_wire·w).
  // It pays iff r_wire·C_load/2 > R_drv·c_wire, so build exactly that
  // regime: a strong driver into a resistive wire feeding a fat sink.
  Technology tech = SmallTech();
  tech.wire = WireParams{.res_per_um = 0.2, .cap_per_um = 0.00005};
  RcTree tree(tech.wire);
  TerminalParams src = DefaultTerminal(tech);
  src.is_sink = false;
  src.driver.driver_res = 20.0;  // Strong driver.
  TerminalParams dst = DefaultTerminal(tech);
  dst.is_source = false;
  dst.driver.pin_cap = 0.5;  // Fat receiver.
  const NodeId a = tree.AddTerminal(src, {0, 0});
  const NodeId ip = tree.AddNode(NodeKind::kInsertion, {2500, 0});
  const NodeId b = tree.AddTerminal(dst, {5000, 0});
  tree.AddEdge(a, ip, 2500.0);
  tree.AddEdge(ip, b, 2500.0);
  tree.Validate();

  const double base = ComputeArd(tree, tech).ard_ps;
  const MsriResult sized = RunMsri(tree, tech, WireOptions(false));
  EXPECT_LT(sized.MinArd()->ard_ps, base);
  // And its realization must actually widen some segment.
  double max_width = 1.0;
  for (const double w : sized.MinArd()->wire_widths) {
    max_width = std::max(max_width, w);
  }
  EXPECT_GT(max_width, 1.0);
}

TEST(WireSizing, ParetoPointsVerifyOnScaledTree) {
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, 6, 5, 6000, 900.0);
  const MsriResult sized = RunMsri(tree, tech, WireOptions());
  ASSERT_FALSE(sized.Pareto().empty());
  for (const TradeoffPoint& p : sized.Pareto()) {
    ASSERT_EQ(p.wire_widths.size(), tree.NumEdges());
    const RcTree scaled = tree.WithWireWidths(p.wire_widths);
    const ArdResult check =
        ComputeArd(scaled, p.repeaters, p.drivers, tech);
    EXPECT_NEAR(check.ard_ps, p.ard_ps, 1e-6) << "cost " << p.cost;
    // Cost must decompose into drivers + repeaters + metal area.
    double metal = 0.0;
    for (std::size_t e = 0; e < tree.NumEdges(); ++e) {
      metal += WireAreaCost(0.0005, tree.Edge(e).length_um,
                            p.wire_widths[e], 0.05);
    }
    EXPECT_NEAR(p.cost,
                p.drivers.Cost(tree) + p.repeaters.Cost(tech) + metal,
                1e-9);
  }
}

/// Optimality against exhaustive enumeration, joint with repeaters.
class WireSizingOptimality
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireSizingOptimality, WiresOnlyMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 4, 4000, 2000.0);
  if (tree.NumEdges() > 14) GTEST_SKIP();

  MsriOptions opt = WireOptions(/*repeaters=*/false);
  const MsriResult dp = RunMsri(tree, tech, opt);

  BruteForceOptions bopt;
  bopt.insert_repeaters = false;
  bopt.size_wires = true;
  const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);
  ASSERT_EQ(dp.Pareto().size(), brute.pareto.size());
  for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
    EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9);
    EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6);
  }
}

TEST_P(WireSizingOptimality, JointWiresAndRepeatersMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = SmallTech();
  const RcTree tree = SmallRandomNet(tech, seed, 3, 3000, 2500.0);
  if (tree.NumEdges() > 8 || tree.InsertionPoints().size() > 4) {
    GTEST_SKIP();
  }
  const MsriResult dp = RunMsri(tree, tech, WireOptions());

  BruteForceOptions bopt;
  bopt.size_wires = true;
  const BruteForceResult brute = BruteForceMsri(tree, tech, bopt);
  ASSERT_EQ(dp.Pareto().size(), brute.pareto.size());
  for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
    EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9);
    EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireSizingOptimality,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace msn
