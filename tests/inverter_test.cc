// Tests for the inverting-repeater extension (paper Section V: "An
// extension allowing the use of inverters as repeaters is possible and
// straightforward").  Feasibility requires every source-to-sink path to
// cross an even number of inverting repeaters; the DP tracks a parity bit
// per subsolution.
#include <gtest/gtest.h>

#include "baseline/brute_force.h"
#include "baseline/van_ginneken.h"
#include "core/ard.h"
#include "core/msri.h"
#include "test_util.h"

namespace msn {
namespace {

Technology InverterTech() {
  Technology tech = DefaultTechnology();
  tech.repeaters = {Repeater::FromInverterPair(DefaultInverter1X())};
  return tech;
}

Technology MixedTech() {
  Technology tech = DefaultTechnology();
  tech.repeaters = {
      Repeater::FromBufferPair(DefaultBuffer1X()),
      Repeater::FromInverterPair(DefaultInverter1X()),
  };
  return tech;
}

TEST(Inverter, FactorySetsFlagAndHalvedCost) {
  const Repeater inv = Repeater::FromInverterPair(DefaultInverter1X());
  EXPECT_TRUE(inv.inverting);
  EXPECT_LT(inv.cost, Repeater::FromBufferPair(DefaultBuffer1X()).cost);
  EXPECT_FALSE(Repeater::FromBufferPair(DefaultBuffer1X()).inverting);
}

TEST(Inverter, ParityFeasibleBasics) {
  const Technology tech = InverterTech();
  const RcTree tree = testing::TwoPinLine(tech, 3000.0, 3);
  RepeaterAssignment assign(tree.NumNodes());
  EXPECT_TRUE(ParityFeasible(tree, assign, tech));

  const auto& ips = tree.InsertionPoints();
  auto neighbor = [&](NodeId ip) {
    const RcEdge& e = tree.Edge(tree.AdjacentEdges(ip)[0]);
    return e.a == ip ? e.b : e.a;
  };
  assign.Place(ips[0], PlacedRepeater{0, neighbor(ips[0])});
  EXPECT_FALSE(ParityFeasible(tree, assign, tech))
      << "one inverter on the only path is infeasible";
  assign.Place(ips[1], PlacedRepeater{0, neighbor(ips[1])});
  EXPECT_TRUE(ParityFeasible(tree, assign, tech))
      << "two inverters restore polarity";
}

TEST(Inverter, ParityFeasibleBranch) {
  // Star: inverter on ONE arm breaks pairs across arms; inverters on all
  // three arms make every cross-arm path even?  No: paths cross two arms,
  // so one inverter per arm gives parity 1+1 = even.  Check both cases.
  const Technology tech = InverterTech();
  RcTree tree(tech.wire);
  const NodeId s = tree.AddNode(NodeKind::kSteiner, {0, 0});
  std::vector<NodeId> ips;
  for (int i = 0; i < 3; ++i) {
    const NodeId t = tree.AddTerminal(DefaultTerminal(tech), {1000, 0});
    const NodeId ip = tree.AddNode(NodeKind::kInsertion, {500, 0});
    tree.AddEdge(s, ip, 500.0);
    tree.AddEdge(ip, t, 500.0);
    ips.push_back(ip);
  }
  tree.Validate();

  RepeaterAssignment assign(tree.NumNodes());
  assign.Place(ips[0], PlacedRepeater{0, s});
  EXPECT_FALSE(ParityFeasible(tree, assign, tech));
  assign.Place(ips[1], PlacedRepeater{0, s});
  EXPECT_FALSE(ParityFeasible(tree, assign, tech))
      << "arm 2's terminal still differs from arms 0/1";
  assign.Place(ips[2], PlacedRepeater{0, s});
  EXPECT_TRUE(ParityFeasible(tree, assign, tech))
      << "every cross-arm path now crosses exactly two inverters";
}

TEST(Inverter, MsriPlacesInvertersInPairsOnTwoPinNet) {
  const Technology tech = InverterTech();
  const RcTree tree = testing::TwoPinLine(tech, 12'000.0, 8);
  const MsriResult result = RunMsri(tree, tech);
  ASSERT_GE(result.Pareto().size(), 2u);
  for (const TradeoffPoint& p : result.Pareto()) {
    EXPECT_EQ(p.num_repeaters % 2, 0u)
        << "odd inverter count on a two-pin path";
    EXPECT_TRUE(ParityFeasible(tree, p.repeaters, tech));
  }
  // Inverters must still help on a long line.
  EXPECT_LT(result.MinArd()->ard_ps, result.MinCost()->ard_ps);
}

TEST(Inverter, AllParetoPointsParityFeasibleOnRandomNets) {
  const Technology tech = MixedTech();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const RcTree tree = testing::SmallRandomNet(tech, seed, 6, 8000, 700.0);
    const MsriResult result = RunMsri(tree, tech);
    for (const TradeoffPoint& p : result.Pareto()) {
      EXPECT_TRUE(ParityFeasible(tree, p.repeaters, tech))
          << "seed " << seed << " cost " << p.cost;
      const ArdResult check =
          ComputeArd(tree, p.repeaters, p.drivers, tech);
      EXPECT_NEAR(check.ard_ps, p.ard_ps, 1e-6);
    }
  }
}

TEST(Inverter, CheaperThanBuffersWhenPairsFit) {
  // On a long 2-pin line, a pair of inverting repeaters (cost 2*1.2) can
  // replace two buffer repeaters (cost 2*2) with comparable delay, so the
  // mixed-library frontier must weakly dominate the buffer-only one.
  const Technology buffers = testing::SmallTech();
  const Technology mixed = MixedTech();
  const RcTree tree = testing::TwoPinLine(buffers, 16'000.0, 10);
  const MsriResult b = RunMsri(tree, buffers);
  const MsriResult m = RunMsri(tree, mixed);
  // For every buffer-only point there is a mixed point at most as
  // expensive with at most the same ARD.
  for (const TradeoffPoint& pb : b.Pareto()) {
    const TradeoffPoint* pm = m.MinCostFeasible(pb.ard_ps + 1e-9);
    ASSERT_NE(pm, nullptr);
    EXPECT_LE(pm->cost, pb.cost + 1e-9);
  }
  // And the inverter library actually gets used somewhere on the frontier.
  bool used_inverter = false;
  for (const TradeoffPoint& p : m.Pareto()) {
    for (NodeId v = 0; v < tree.NumNodes(); ++v) {
      if (p.repeaters.Has(v) &&
          mixed.repeaters[p.repeaters.At(v)->repeater_index].inverting) {
        used_inverter = true;
      }
    }
  }
  EXPECT_TRUE(used_inverter);
}

/// Optimality of the parity-constrained DP against brute force.
class InverterOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InverterOptimality, InverterOnlyMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = InverterTech();
  const RcTree tree = testing::SmallRandomNet(tech, seed, 4, 4000, 1600.0);
  if (tree.InsertionPoints().size() > 10) GTEST_SKIP();
  const MsriResult dp = RunMsri(tree, tech);
  const BruteForceResult brute = BruteForceMsri(tree, tech);
  ASSERT_EQ(dp.Pareto().size(), brute.pareto.size());
  for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
    EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9);
    EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6);
  }
}

TEST_P(InverterOptimality, MixedLibraryMatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  const Technology tech = MixedTech();
  const RcTree tree = testing::SmallRandomNet(tech, seed, 3, 3500, 1800.0);
  if (tree.InsertionPoints().size() > 7) GTEST_SKIP();
  const MsriResult dp = RunMsri(tree, tech);
  const BruteForceResult brute = BruteForceMsri(tree, tech);
  ASSERT_EQ(dp.Pareto().size(), brute.pareto.size());
  for (std::size_t i = 0; i < dp.Pareto().size(); ++i) {
    EXPECT_NEAR(dp.Pareto()[i].cost, brute.pareto[i].cost, 1e-9);
    EXPECT_NEAR(dp.Pareto()[i].ard_ps, brute.pareto[i].ard_ps, 1e-6);
  }
}

TEST_P(InverterOptimality, VanGinnekenAgreesWithInverters) {
  const std::uint64_t seed = GetParam();
  const Technology tech = MixedTech();
  RcTree tree = testing::SmallRandomNet(tech, seed, 4, 6000, 900.0);
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    if (t == 0) {
      tree.MutableTerminal(t).is_sink = false;
    } else {
      tree.MutableTerminal(t).is_source = false;
    }
  }
  const VanGinnekenResult vg = RunVanGinneken(tree, tech, 0);
  MsriOptions opt;
  opt.root = tree.TerminalNode(0);
  const MsriResult msri = RunMsri(tree, tech, opt);
  ASSERT_EQ(vg.pareto.size(), msri.Pareto().size());
  for (std::size_t i = 0; i < vg.pareto.size(); ++i) {
    EXPECT_NEAR(vg.pareto[i].cost, msri.Pareto()[i].cost, 1e-9);
    EXPECT_NEAR(vg.pareto[i].ard_ps, msri.Pareto()[i].ard_ps, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InverterOptimality,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace msn
