#include "core/pareto.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace msn {
namespace {

struct P {
  double cost;
  double delay;
};

std::vector<P> Filter(std::vector<P> pts) {
  return ParetoByCostDelay(
      std::move(pts), [](const P& p) { return p.cost; },
      [](const P& p) { return p.delay; });
}

TEST(Pareto, BasicFrontier) {
  const auto out = Filter({{1, 100}, {2, 80}, {3, 90}, {4, 50}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].cost, 1);
  EXPECT_DOUBLE_EQ(out[1].cost, 2);
  EXPECT_DOUBLE_EQ(out[2].cost, 4);  // (3, 90) dominated by (2, 80).
}

TEST(Pareto, EmptyAndSingleton) {
  EXPECT_TRUE(Filter({}).empty());
  const auto one = Filter({{5, 7}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].delay, 7);
}

TEST(Pareto, FloatingPointCostNoiseRegression) {
  // Regression for the bug the inverter oracle exposed: two candidates
  // with the "same" cost accumulated in different orders differ in final
  // bits.  A keep-first-per-cost filter sorted by exact cost can keep the
  // WORSE delay.  The shared filter must keep the better one regardless
  // of which bit-pattern sorts first.
  const double noisy_low = 6.0 + 3 * 1.2 - 1e-15;   // 9.5999999999999988
  const double noisy_high = 6.0 + 1.2 * 3 + 1e-15;  // 9.6000000000000014
  for (const auto& [first, second] :
       {std::pair<P, P>{{noisy_low, 429.3}, {noisy_high, 422.2}},
        std::pair<P, P>{{noisy_high, 429.3}, {noisy_low, 422.2}}}) {
    const auto out = Filter({{8.0, 459.7}, first, second});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(out[1].delay, 422.2, 1e-9)
        << "kept the worse member of the eps-equal cost class";
  }
}

TEST(Pareto, EqualCostKeepsBestDelay) {
  const auto out = Filter({{2, 50}, {2, 40}, {2, 60}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].delay, 40);
}

TEST(Pareto, NonImprovingTailDropped) {
  const auto out = Filter({{1, 10}, {5, 10}, {9, 9.999999999}});
  // Within kEps of the previous delay: not an improvement.
  ASSERT_EQ(out.size(), 1u);
}

TEST(Pareto, RandomizedInvariants) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<P> pts;
    const int n = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < n; ++i) {
      pts.push_back({static_cast<double>(rng.UniformInt(0, 10)),
                     rng.UniformReal(0.0, 100.0)});
    }
    const auto out = Filter(pts);
    ASSERT_FALSE(out.empty());
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_GT(out[i].cost, out[i - 1].cost);
      EXPECT_LT(out[i].delay, out[i - 1].delay);
    }
    // Every input point is covered by some frontier point.
    for (const P& p : pts) {
      bool covered = false;
      for (const P& f : out) {
        if (f.cost <= p.cost + 1e-9 && f.delay <= p.delay + 1e-9) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "(" << p.cost << ", " << p.delay << ")";
    }
  }
}

}  // namespace
}  // namespace msn
