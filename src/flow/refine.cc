#include "flow/refine.h"

#include "common/check.h"
#include "common/numeric.h"
#include "core/ard.h"
#include "rctree/rctree.h"

namespace msn {
namespace {

/// Unbuffered ARD of a geometric tree (the refinement objective).
double ScoreArd(const SteinerTree& tree, const Technology& tech,
                const std::vector<TerminalParams>& terminals) {
  const RcTree rc = RcTree::FromSteinerTree(tree, tech.wire, terminals);
  return ComputeArd(rc, tech).ard_ps;
}

}  // namespace

RefineResult RefineTopologyForArd(
    const SteinerTree& initial, const Technology& tech,
    const std::vector<TerminalParams>& terminals,
    const RefineOptions& options) {
  initial.Validate();
  MSN_CHECK_MSG(terminals.size() == initial.num_terminals,
                "terminal parameter count mismatch");

  RefineResult result;
  result.tree = initial;
  result.initial_ard_ps = ScoreArd(initial, tech, terminals);
  result.final_ard_ps = result.initial_ard_ps;

  while (result.moves_accepted < options.max_moves) {
    const std::vector<std::size_t> deg = result.tree.Degrees();
    double best_ard = result.final_ard_ps;
    SteinerTree best_tree;

    // Candidate moves: re-attach each degree-1 terminal elsewhere.
    for (std::size_t t = 0; t < result.tree.num_terminals; ++t) {
      if (deg[t] != 1) continue;
      std::size_t edge_idx = result.tree.edges.size();
      for (std::size_t e = 0; e < result.tree.edges.size(); ++e) {
        if (result.tree.edges[e].a == t || result.tree.edges[e].b == t) {
          edge_idx = e;
          break;
        }
      }
      MSN_DCHECK(edge_idx < result.tree.edges.size());
      const SteinerEdge old_edge = result.tree.edges[edge_idx];
      const std::size_t old_anchor =
          old_edge.a == t ? old_edge.b : old_edge.a;

      for (std::size_t anchor = 0; anchor < result.tree.NumPoints();
           ++anchor) {
        if (anchor == t || anchor == old_anchor) continue;
        SteinerTree candidate = result.tree;
        candidate.edges[edge_idx] = SteinerEdge{anchor, t};
        ++result.moves_evaluated;
        // Re-attaching a leaf always yields a tree; no validity check
        // needed beyond the anchor exclusions above.
        const double ard = ScoreArd(candidate, tech, terminals);
        if (ard < best_ard - kEps) {
          best_ard = ard;
          best_tree = std::move(candidate);
        }
      }
    }

    if (best_ard >= result.final_ard_ps - kEps) break;
    result.tree = std::move(best_tree);
    result.final_ard_ps = best_ard;
    ++result.moves_accepted;
  }
  result.tree.Validate();
  return result;
}

}  // namespace msn
