#include "flow/budget.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/numeric.h"

namespace msn {
namespace {

void ValidateFrontiers(const std::vector<Frontier>& nets) {
  MSN_CHECK_MSG(!nets.empty(), "no nets to budget");
  for (std::size_t k = 0; k < nets.size(); ++k) {
    MSN_CHECK_MSG(!nets[k].empty(), "net " << k << " has an empty frontier");
    for (std::size_t i = 1; i < nets[k].size(); ++i) {
      MSN_CHECK_MSG(nets[k][i].cost > nets[k][i - 1].cost,
                    "net " << k << " frontier costs must increase");
      MSN_CHECK_MSG(nets[k][i].delay_ps < nets[k][i - 1].delay_ps,
                    "net " << k << " frontier delays must decrease");
    }
  }
}

Allocation Summarize(const std::vector<Frontier>& nets,
                     std::vector<std::size_t> choice) {
  Allocation a;
  a.choice = std::move(choice);
  for (std::size_t k = 0; k < nets.size(); ++k) {
    const CostDelay& p = nets[k][a.choice[k]];
    a.total_cost += p.cost;
    a.sum_delay_ps += p.delay_ps;
    a.worst_delay_ps = std::max(a.worst_delay_ps, p.delay_ps);
  }
  return a;
}

}  // namespace

Frontier FrontierOf(const MsriResult& result) {
  Frontier f;
  f.reserve(result.Pareto().size());
  for (const TradeoffPoint& p : result.Pareto()) {
    f.push_back(CostDelay{p.cost, p.ard_ps});
  }
  return f;
}

std::optional<Allocation> AllocateMinMax(
    const std::vector<Frontier>& nets, double budget) {
  ValidateFrontiers(nets);

  // Cheapest cost at which net k meets delay target T (or nullopt).
  auto cost_for = [](const Frontier& f, double target) -> std::optional<double> {
    for (const CostDelay& p : f) {
      if (LessOrApprox(p.delay_ps, target)) return p.cost;
    }
    return std::nullopt;
  };

  // Candidate targets: every delay on any frontier.  Feasibility of a
  // target is monotone, so take the smallest feasible candidate.
  std::vector<double> targets;
  for (const Frontier& f : nets) {
    for (const CostDelay& p : f) targets.push_back(p.delay_ps);
  }
  std::sort(targets.begin(), targets.end());

  // Binary search the first feasible target.
  std::size_t lo = 0, hi = targets.size();
  auto feasible = [&](double target) {
    double total = 0.0;
    for (const Frontier& f : nets) {
      const auto c = cost_for(f, target);
      if (!c) return false;
      total += *c;
    }
    return LessOrApprox(total, budget);
  };
  if (!feasible(targets.back())) return std::nullopt;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (feasible(targets[mid])) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double target = feasible(targets[lo]) ? targets[lo] : targets[hi];

  std::vector<std::size_t> choice(nets.size(), 0);
  for (std::size_t k = 0; k < nets.size(); ++k) {
    for (std::size_t i = 0; i < nets[k].size(); ++i) {
      if (LessOrApprox(nets[k][i].delay_ps, target)) {
        choice[k] = i;
        break;
      }
    }
  }
  return Summarize(nets, std::move(choice));
}

std::optional<Allocation> AllocateMinSum(
    const std::vector<Frontier>& nets, double budget,
    double cost_quantum) {
  ValidateFrontiers(nets);
  MSN_CHECK_MSG(cost_quantum > 0.0, "cost quantum must be positive");

  auto quantize = [&](double cost) {
    const double q = cost / cost_quantum;
    const auto iq = static_cast<long long>(std::llround(q));
    MSN_CHECK_MSG(std::fabs(q - static_cast<double>(iq)) < 1e-6,
                  "cost " << cost << " is off the " << cost_quantum
                          << " quantum grid");
    return iq;
  };

  long long min_total = 0;
  for (const Frontier& f : nets) min_total += quantize(f.front().cost);
  const auto budget_q =
      static_cast<long long>(std::floor(budget / cost_quantum + 1e-9));
  if (budget_q < min_total) return std::nullopt;

  // Shift each net's costs by its minimum so the DP budget axis only
  // carries the *discretionary* spending.
  const long long slack = budget_q - min_total;
  MSN_CHECK_MSG(slack <= 1'000'000,
                "budget DP would need " << slack << " cells; quantize "
                                           "coarser or lower the budget");
  const auto width = static_cast<std::size_t>(slack) + 1;

  constexpr double kBig = std::numeric_limits<double>::infinity();
  std::vector<double> best(width, 0.0);
  // choice_table[k][b] = frontier index chosen for net k at budget b.
  std::vector<std::vector<std::size_t>> choice_table(
      nets.size(), std::vector<std::size_t>(width, 0));

  for (std::size_t k = 0; k < nets.size(); ++k) {
    const Frontier& f = nets[k];
    const long long base = quantize(f.front().cost);
    std::vector<double> next(width, kBig);
    for (std::size_t b = 0; b < width; ++b) {
      if (best[b] == kBig) continue;
      for (std::size_t i = 0; i < f.size(); ++i) {
        const auto extra =
            static_cast<std::size_t>(quantize(f[i].cost) - base);
        if (b + extra >= width) break;  // Frontier costs increase.
        const double sum = best[b] + f[i].delay_ps;
        if (sum < next[b + extra]) {
          next[b + extra] = sum;
          choice_table[k][b + extra] = i;
        }
      }
    }
    // A bigger budget is never worse: make the row monotone, keeping the
    // realizing choice.
    for (std::size_t b = 1; b < width; ++b) {
      if (next[b - 1] < next[b]) {
        next[b] = next[b - 1];
        choice_table[k][b] = std::numeric_limits<std::size_t>::max();
      }
    }
    best = std::move(next);
  }

  // Reconstruct from the last column.
  std::vector<std::size_t> choice(nets.size(), 0);
  std::size_t b = width - 1;
  for (std::size_t k = nets.size(); k-- > 0;) {
    // Resolve "inherited from smaller budget" markers.
    while (choice_table[k][b] == std::numeric_limits<std::size_t>::max()) {
      MSN_DCHECK(b > 0);
      --b;
    }
    const std::size_t i = choice_table[k][b];
    choice[k] = i;
    const long long base = quantize(nets[k].front().cost);
    b -= static_cast<std::size_t>(quantize(nets[k][i].cost) - base);
  }
  return Summarize(nets, std::move(choice));
}

}  // namespace msn
