// Chip-level repeater budgeting across many nets.
//
// A physical-design flow rarely optimizes one bus in isolation: a block
// has a total repeater-area budget to split across its nets.  Because
// RunMsri returns each net's full cost-vs-ARD Pareto frontier
// (the paper's "suite of solutions" — exactly what this layer needs),
// budgeting reduces to picking one frontier point per net:
//
//   min-max:  minimize the worst ARD over all nets subject to
//             Σ cost <= budget — solved exactly by searching the
//             candidate ARD levels (feasibility is monotone in the
//             target);
//   min-sum:  minimize Σ ARD subject to Σ cost <= budget — solved
//             exactly by a grouped knapsack over quantized costs
//             (library costs are multiples of the 1X buffer).
#ifndef MSN_FLOW_BUDGET_H
#define MSN_FLOW_BUDGET_H

#include <optional>
#include <vector>

#include "core/msri.h"

namespace msn {

/// One frontier point (cost strictly increasing, delay strictly
/// decreasing within a net's frontier).
struct CostDelay {
  double cost = 0.0;
  double delay_ps = 0.0;
};

/// A net's frontier in allocator form.
using Frontier = std::vector<CostDelay>;

/// Extracts the allocator view of an optimizer result.
Frontier FrontierOf(const MsriResult& result);

/// A budget split: `choice[k]` indexes net k's frontier.
struct Allocation {
  std::vector<std::size_t> choice;
  double total_cost = 0.0;
  double worst_delay_ps = 0.0;
  double sum_delay_ps = 0.0;
};

/// Minimizes the worst per-net delay subject to Σ cost <= budget.
/// Returns nullopt when even the cheapest points exceed the budget.
/// Every frontier must be non-empty and strictly monotone (checked).
std::optional<Allocation> AllocateMinMax(
    const std::vector<Frontier>& nets, double budget);

/// Minimizes the sum of per-net delays subject to Σ cost <= budget,
/// exactly, over costs quantized to `cost_quantum` (costs must land on
/// the quantum grid within 1e-6 — checked; the default matches repeater
/// libraries priced in whole 1X buffers).
std::optional<Allocation> AllocateMinSum(
    const std::vector<Frontier>& nets, double budget,
    double cost_quantum = 1.0);

}  // namespace msn

#endif  // MSN_FLOW_BUDGET_H
