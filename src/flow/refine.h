// ARD-driven topology refinement.
//
// The paper's conclusions call out that "a multisource version of the
// P-Tree timing-driven Steiner router is now possible" given the ARD
// machinery.  This module is the first practical step: local search over
// the routing topology itself, using the linear-time unbuffered ARD as
// the objective.  Moves re-attach one degree-1 terminal to a different
// tree node; each candidate is scored with one O(n) ARD evaluation, and
// the best improving move per pass is accepted until a local optimum.
//
// Geometry stays honest: a re-attached edge is embedded at the
// rectilinear distance between its endpoints, so wirelength may grow
// when that buys diameter — exactly the wirelength-versus-delay tradeoff
// a timing-driven router navigates.
#ifndef MSN_FLOW_REFINE_H
#define MSN_FLOW_REFINE_H

#include <cstddef>
#include <vector>

#include "steiner/topology.h"
#include "tech/tech.h"

namespace msn {

struct RefineOptions {
  /// Upper bound on accepted moves (each pass accepts at most one).
  std::size_t max_moves = 32;
};

struct RefineResult {
  SteinerTree tree;
  double initial_ard_ps = 0.0;
  double final_ard_ps = 0.0;
  std::size_t moves_accepted = 0;
  std::size_t moves_evaluated = 0;
};

/// Refines `initial` for the unbuffered ARD under `tech`, with one
/// TerminalParams per Steiner-tree terminal (checked).
RefineResult RefineTopologyForArd(
    const SteinerTree& initial, const Technology& tech,
    const std::vector<TerminalParams>& terminals,
    const RefineOptions& options = {});

}  // namespace msn

#endif  // MSN_FLOW_REFINE_H
