// Technology and library parameters (paper Section II, Table I).
//
// Unit system (see DESIGN.md §4): resistance in Ω, capacitance in pF,
// length in µm, time in Ω·pF = 1 ps.
//
// A *repeater* is a bidirectional buffer with an A-side and a B-side
// (paper footnote 1).  Signal direction is A-to-B or B-to-A and each
// direction has its own intrinsic delay and output resistance; each side
// presents its own input capacitance.  The paper's experiments build
// repeaters from a pair of antiparallel unidirectional buffers
// (Table I caption), which `Repeater::FromBufferPair` reproduces.
#ifndef MSN_TECH_TECH_H
#define MSN_TECH_TECH_H

#include <string>
#include <vector>

namespace msn {

/// Per-unit-length wire parasitics.
struct WireParams {
  double res_per_um = 0.0;  ///< Ω per µm.
  double cap_per_um = 0.0;  ///< pF per µm.
};

/// A unidirectional buffer (used for single-source baselines and as the
/// building block of repeaters and sized drivers).
struct Buffer {
  std::string name;
  double intrinsic_ps = 0.0;  ///< Intrinsic delay, ps.
  double output_res = 0.0;    ///< Output resistance, Ω.
  double input_cap = 0.0;     ///< Input capacitance, pF.
  double cost = 0.0;          ///< Cost (e.g. area, in equivalent 1X buffers).
};

/// Which side of a repeater faces the tree root (the "up" direction).
enum class RepeaterOrientation {
  kASideUp,  ///< A-side connects toward the root; B-side toward the leaves.
  kBSideUp,  ///< B-side connects toward the root.
};

/// A bidirectional repeater.
struct Repeater {
  std::string name;
  // Signal direction A -> B.
  double intrinsic_ab = 0.0;  ///< ps.
  double res_ab = 0.0;        ///< Ω, output resistance driving the B side.
  // Signal direction B -> A.
  double intrinsic_ba = 0.0;  ///< ps.
  double res_ba = 0.0;        ///< Ω.
  double cap_a = 0.0;         ///< pF, input capacitance presented at A.
  double cap_b = 0.0;         ///< pF, input capacitance presented at B.
  double cost = 0.0;
  /// True for a repeater built from inverters: it flips signal polarity
  /// in both directions.  Every source-to-sink path must then cross an
  /// even number of inverting repeaters (paper Section V extension); the
  /// DP tracks this as a parity bit per subsolution.
  bool inverting = false;

  /// Builds the paper's repeater: two antiparallel copies of `b`
  /// (cost = 2·b.cost, symmetric in both directions).
  static Repeater FromBufferPair(const Buffer& b);

  /// Builds an *inverting* repeater from two antiparallel copies of the
  /// inverter `inv` (typically cheaper and faster than a buffer, which is
  /// internally a two-stage inverter pair).
  static Repeater FromInverterPair(const Buffer& inv);

  /// True iff both directions have identical parameters, so the two
  /// orientations of this repeater are interchangeable.
  bool Symmetric() const;

  // Orientation-resolved accessors: "up" faces the tree root.
  double CapUp(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? cap_a : cap_b;
  }
  double CapDown(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? cap_b : cap_a;
  }
  /// Intrinsic delay for a signal travelling downward (root -> leaves).
  double IntrinsicDown(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? intrinsic_ab : intrinsic_ba;
  }
  double ResDown(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? res_ab : res_ba;
  }
  /// Intrinsic delay for a signal travelling upward (leaves -> root).
  double IntrinsicUp(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? intrinsic_ba : intrinsic_ab;
  }
  double ResUp(RepeaterOrientation o) const {
    return o == RepeaterOrientation::kASideUp ? res_ba : res_ab;
  }
};

/// One electrical realization of a terminal's driver/receiver pair.
///
/// The terminal's input buffer (driver) drives the bus with output
/// resistance `driver_res` and intrinsic delay `driver_intrinsic_ps`, and
/// loads the preceding logic stage with its input capacitance
/// (`arrival_extra_ps` = prev-stage R × driver input cap).  The output
/// buffer (receiver) presents `pin_cap` to the bus and adds
/// `downstream_extra_ps` (receiver intrinsic + receiver R × next-stage C)
/// on the way to a primary output (paper footnote 5).
///
/// Driver sizing (paper Section V/VI) is the problem of picking one
/// TerminalOption per terminal from a library; the default realization is
/// itself an option (the 1X/1X pair).
struct TerminalOption {
  std::string name;
  double cost = 0.0;  ///< Equivalent 1X buffers (driver + receiver size).
  double arrival_extra_ps = 0.0;
  double driver_res = 0.0;           ///< R(v), Ω.
  double driver_intrinsic_ps = 0.0;  ///< ps.
  double pin_cap = 0.0;              ///< c(v), pF, seen by the bus.
  double downstream_extra_ps = 0.0;
};

/// Timing role and parameters of a net terminal (paper Fig. 1).
///
/// `arrival_ps` and `downstream_ps` are the *net-specific* AT(v)/DD(v)
/// (zero in the paper's experiments, making the measure the unaugmented
/// RC-diameter); the stage delays of the chosen TerminalOption are added
/// on top.
struct TerminalParams {
  double arrival_ps = 0.0;     ///< AT(v): max PI-to-input-buffer delay.
  double downstream_ps = 0.0;  ///< DD(v): max output-buffer-to-PO delay.
  bool is_source = true;  ///< May the terminal drive the bus?
  bool is_sink = true;    ///< May the terminal receive from the bus?
  TerminalOption driver;  ///< Default electrical realization.
};

/// Fully resolved terminal electricals after a driver-sizing choice.
struct EffectiveTerminal {
  double arrival_ps = 0.0;     ///< AT + option's prev-stage loading.
  double downstream_ps = 0.0;  ///< DD + option's receiver delay.
  double driver_res = 0.0;
  double driver_intrinsic_ps = 0.0;
  double pin_cap = 0.0;
  bool is_source = true;
  bool is_sink = true;
};

/// Resolves `params` with the electrical realization `opt`.
EffectiveTerminal ResolveTerminal(const TerminalParams& params,
                                  const TerminalOption& opt);

/// Resolves `params` with its own default realization.
inline EffectiveTerminal ResolveTerminal(const TerminalParams& params) {
  return ResolveTerminal(params, params.driver);
}

/// A complete technology description.
struct Technology {
  WireParams wire;
  std::vector<Repeater> repeaters;  ///< Inline repeater library.
  /// Prev-stage output resistance loading each terminal driver's input, Ω
  /// (Table I: 400 Ω) and next-stage capacitance driven by each terminal
  /// receiver, pF (Table I: 0.2 pF); used by the sizing library generator.
  double prev_stage_res = 0.0;
  double next_stage_cap = 0.0;

  /// Throws msn::CheckError on non-physical parameters.
  void Validate() const;
};

/// The base 1X buffer of the experiments (paper fixes input_cap = 0.05 pF
/// per 1X; remaining values are representative — DESIGN.md §5).
Buffer DefaultBuffer1X();

/// A 1X inverter: a buffer is two cascaded inverters, so the single
/// inverter has roughly half the intrinsic delay and cost of
/// DefaultBuffer1X() with the same drive strength.
Buffer DefaultInverter1X();

/// An `a`X scaled copy of `base`: cost a·cost, resistance R/a,
/// capacitance a·C, same intrinsic delay (paper Section VI).
Buffer ScaledBuffer(const Buffer& base, double a);

/// Default technology of Table I: representative submicron wire
/// parasitics, one repeater built from a pair of 1X buffers,
/// prev-stage R = 400 Ω, next-stage C = 0.2 pF.
Technology DefaultTechnology();

/// The 1X/1X driver/receiver realization with Table-I stage loading.
TerminalOption Default1xOption(const Technology& tech);

/// Terminal params used throughout the experiments: all terminals are both
/// sources and sinks, AT = DD = 0 (unaugmented RC-diameter), 1X driver and
/// 1X receiver with the Table-I prev/next-stage loading.
TerminalParams DefaultTerminal(const Technology& tech);

/// Driver-sizing library (Section VI): every (driver size, receiver size)
/// pair from `sizes`, each size drawn from scaled copies of
/// `DefaultBuffer1X()`.  Cost of an option = driver size + receiver size
/// (equivalent 1X buffers).
std::vector<TerminalOption> DriverSizingLibrary(
    const Technology& tech, const std::vector<double>& sizes);

}  // namespace msn

#endif  // MSN_TECH_TECH_H
