#include "tech/tech.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/numeric.h"

namespace msn {

Repeater Repeater::FromBufferPair(const Buffer& b) {
  Repeater r;
  r.name = b.name + "-pair";
  r.intrinsic_ab = b.intrinsic_ps;
  r.res_ab = b.output_res;
  r.intrinsic_ba = b.intrinsic_ps;
  r.res_ba = b.output_res;
  r.cap_a = b.input_cap;
  r.cap_b = b.input_cap;
  r.cost = 2.0 * b.cost;
  return r;
}

Repeater Repeater::FromInverterPair(const Buffer& inv) {
  Repeater r = FromBufferPair(inv);
  r.name = inv.name + "-invpair";
  r.inverting = true;
  return r;
}

bool Repeater::Symmetric() const {
  return ApproxEq(intrinsic_ab, intrinsic_ba) && ApproxEq(res_ab, res_ba) &&
         ApproxEq(cap_a, cap_b);
}

void Technology::Validate() const {
  MSN_CHECK_MSG(wire.res_per_um > 0.0, "wire resistance must be positive");
  MSN_CHECK_MSG(wire.cap_per_um > 0.0, "wire capacitance must be positive");
  MSN_CHECK_MSG(prev_stage_res >= 0.0, "negative prev-stage resistance");
  MSN_CHECK_MSG(next_stage_cap >= 0.0, "negative next-stage capacitance");
  for (const Repeater& r : repeaters) {
    MSN_CHECK_MSG(r.res_ab > 0.0 && r.res_ba > 0.0,
                  "repeater '" << r.name << "' has non-positive resistance");
    MSN_CHECK_MSG(r.cap_a >= 0.0 && r.cap_b >= 0.0,
                  "repeater '" << r.name << "' has negative capacitance");
    MSN_CHECK_MSG(r.intrinsic_ab >= 0.0 && r.intrinsic_ba >= 0.0,
                  "repeater '" << r.name << "' has negative intrinsic delay");
    MSN_CHECK_MSG(r.cost >= 0.0,
                  "repeater '" << r.name << "' has negative cost");
  }
}

Buffer DefaultBuffer1X() {
  return Buffer{
      .name = "buf1x",
      .intrinsic_ps = 36.4,
      .output_res = 180.0,
      .input_cap = 0.05,
      .cost = 1.0,
  };
}

Buffer DefaultInverter1X() {
  return Buffer{
      .name = "inv1x",
      .intrinsic_ps = 18.2,  // Half of the two-stage buffer.
      .output_res = 180.0,
      .input_cap = 0.05,
      .cost = 0.6,
  };
}

namespace {

/// "2x", "2.5x" — no trailing zeros.
std::string SizeLabel(double a) {
  std::ostringstream os;
  os << a << 'x';
  return os.str();
}

}  // namespace

Buffer ScaledBuffer(const Buffer& base, double a) {
  MSN_CHECK_MSG(a > 0.0, "buffer scale factor must be positive");
  Buffer b = base;
  b.name = base.name + "-" + SizeLabel(a);
  b.output_res = base.output_res / a;
  b.input_cap = base.input_cap * a;
  b.cost = base.cost * a;
  return b;
}

Technology DefaultTechnology() {
  Technology tech;
  tech.wire = WireParams{.res_per_um = 0.040, .cap_per_um = 0.000118};
  tech.repeaters = {Repeater::FromBufferPair(DefaultBuffer1X())};
  tech.prev_stage_res = 400.0;
  tech.next_stage_cap = 0.2;
  tech.Validate();
  return tech;
}

EffectiveTerminal ResolveTerminal(const TerminalParams& params,
                                  const TerminalOption& opt) {
  EffectiveTerminal e;
  e.arrival_ps = params.arrival_ps + opt.arrival_extra_ps;
  e.downstream_ps = params.downstream_ps + opt.downstream_extra_ps;
  e.driver_res = opt.driver_res;
  e.driver_intrinsic_ps = opt.driver_intrinsic_ps;
  e.pin_cap = opt.pin_cap;
  e.is_source = params.is_source;
  e.is_sink = params.is_sink;
  return e;
}

TerminalOption Default1xOption(const Technology& tech) {
  const Buffer b = DefaultBuffer1X();
  TerminalOption opt;
  opt.name = "1x/1x";
  opt.cost = 2.0 * b.cost;
  opt.arrival_extra_ps = tech.prev_stage_res * b.input_cap;
  opt.driver_res = b.output_res;
  opt.driver_intrinsic_ps = b.intrinsic_ps;
  opt.pin_cap = b.input_cap;
  opt.downstream_extra_ps = b.intrinsic_ps + b.output_res * tech.next_stage_cap;
  return opt;
}

TerminalParams DefaultTerminal(const Technology& tech) {
  TerminalParams t;
  t.driver = Default1xOption(tech);
  return t;
}

std::vector<TerminalOption> DriverSizingLibrary(
    const Technology& tech, const std::vector<double>& sizes) {
  MSN_CHECK_MSG(!sizes.empty(), "empty size list for driver sizing library");
  const Buffer base = DefaultBuffer1X();
  std::vector<TerminalOption> lib;
  lib.reserve(sizes.size() * sizes.size());
  for (double drv : sizes) {
    const Buffer d = ScaledBuffer(base, drv);
    for (double rcv : sizes) {
      const Buffer r = ScaledBuffer(base, rcv);
      TerminalOption opt;
      opt.name = SizeLabel(drv) + "/" + SizeLabel(rcv);
      opt.cost = d.cost + r.cost;
      opt.arrival_extra_ps = tech.prev_stage_res * d.input_cap;
      opt.driver_res = d.output_res;
      opt.driver_intrinsic_ps = d.intrinsic_ps;
      opt.pin_cap = r.input_cap;
      opt.downstream_extra_ps =
          r.intrinsic_ps + r.output_res * tech.next_stage_cap;
      lib.push_back(std::move(opt));
    }
  }
  return lib;
}

}  // namespace msn
