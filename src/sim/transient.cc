#include "sim/transient.h"

#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"

namespace msn {
namespace {

/// Dense LU with partial pivoting — stages have at most a few hundred
/// nodes, so a dependency-free direct solver is the right tool.
class LuSolver {
 public:
  explicit LuSolver(std::vector<std::vector<double>> a)
      : n_(a.size()), lu_(std::move(a)), perm_(n_) {
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    for (std::size_t k = 0; k < n_; ++k) {
      std::size_t pivot = k;
      for (std::size_t i = k + 1; i < n_; ++i) {
        if (std::fabs(lu_[i][k]) > std::fabs(lu_[pivot][k])) pivot = i;
      }
      MSN_CHECK_MSG(std::fabs(lu_[pivot][k]) > 1e-30,
                    "singular stage matrix");
      std::swap(lu_[k], lu_[pivot]);
      std::swap(perm_[k], perm_[pivot]);
      for (std::size_t i = k + 1; i < n_; ++i) {
        lu_[i][k] /= lu_[k][k];
        for (std::size_t j = k + 1; j < n_; ++j) {
          lu_[i][j] -= lu_[i][k] * lu_[k][j];
        }
      }
    }
  }

  std::vector<double> Solve(const std::vector<double>& b) const {
    std::vector<double> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 1; i < n_; ++i) {
      for (std::size_t j = 0; j < i; ++j) x[i] -= lu_[i][j] * x[j];
    }
    for (std::size_t i = n_; i-- > 0;) {
      for (std::size_t j = i + 1; j < n_; ++j) x[i] -= lu_[i][j] * x[j];
      x[i] /= lu_[i][i];
    }
    return x;
  }

 private:
  std::size_t n_;
  std::vector<std::vector<double>> lu_;
  std::vector<std::size_t> perm_;
};

struct SimEngine {
  const RcTree& tree;
  const RootedTree& rooted;
  const RepeaterAssignment& repeaters;
  const Technology& tech;
  const CapAnalysis& caps;
  const std::vector<EffectiveTerminal>& terms;
  const TransientOptions& options;
  TransientDelays& out;

  bool IsBoundary(NodeId v, NodeId start) const {
    return v != start && repeaters.Has(v);
  }

  double CapAt(NodeId v, NodeId start) const {
    double cap = 0.0;
    if (v != start) cap += rooted.ParentCap(v) / 2.0;
    if (IsBoundary(v, start)) {
      return cap + repeaters.Resolve(v, tech).CapToward(rooted.Parent(v));
    }
    const RcNode& node = tree.Node(v);
    if (node.kind == NodeKind::kTerminal) {
      cap += terms[node.terminal_index].pin_cap;
    }
    for (const NodeId c : rooted.Children(v)) {
      cap += rooted.ParentCap(c) / 2.0;
    }
    return cap;
  }

  /// Simulates the stage rooted at `start` driven by a unit step through
  /// `driver_res`; writes crossings (base_ps + t50) and recurses.
  void ProcessStage(NodeId start, double driver_res, double base_ps,
                    bool write_start) {
    // Stage members, preorder.
    std::vector<NodeId> members;
    std::vector<NodeId> stack{start};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      members.push_back(v);
      if (IsBoundary(v, start)) continue;
      for (const NodeId c : rooted.Children(v)) stack.push_back(c);
    }
    const std::size_t n = members.size();
    std::vector<std::size_t> local(tree.NumNodes(),
                                   static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < n; ++i) local[members[i]] = i;

    // Assemble G (with the driver conductance at the start node) and the
    // diagonal C.
    std::vector<std::vector<double>> g(n, std::vector<double>(n, 0.0));
    std::vector<double> c(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = CapAt(members[i], start);
    }
    g[0][0] += 1.0 / driver_res;  // members[0] == start.
    for (const NodeId v : members) {
      if (v == start) continue;
      const std::size_t i = local[v];
      const std::size_t p = local[rooted.Parent(v)];
      // Zero-length stub edges have zero resistance; clamp to a value
      // far below any real wire (backward Euler is unconditionally
      // stable, so the stiff branch is harmless).
      const double cond = 1.0 / std::max(rooted.ParentRes(v), 1e-9);
      g[i][i] += cond;
      g[p][p] += cond;
      g[i][p] -= cond;
      g[p][i] -= cond;
    }

    // Stage Elmore constant sets the horizon and the step.
    const double tau = driver_res * caps.down_load[start];
    const double dt = std::max(tau, 1e-6) / options.resolution;

    // Backward Euler: (C/dt + G) v_{k+1} = (C/dt) v_k + b.
    std::vector<std::vector<double>> a = g;
    for (std::size_t i = 0; i < n; ++i) a[i][i] += c[i] / dt;
    const LuSolver solver(std::move(a));

    std::vector<double> v(n, 0.0);
    std::vector<double> crossing(n, -1.0);
    std::size_t remaining = n;
    const double t_end = options.max_horizon * std::max(tau, 1e-6);
    double t = 0.0;
    while (remaining > 0) {
      MSN_CHECK_MSG(t <= t_end,
                    "transient simulation did not settle; stage at node "
                        << start);
      std::vector<double> rhs(n);
      for (std::size_t i = 0; i < n; ++i) rhs[i] = c[i] / dt * v[i];
      rhs[0] += 1.0 / driver_res;  // Unit step source.
      std::vector<double> next = solver.Solve(rhs);
      for (std::size_t i = 0; i < n; ++i) {
        if (crossing[i] < 0.0 && next[i] >= options.threshold) {
          // Linear interpolation inside the step.
          const double f = (options.threshold - v[i]) / (next[i] - v[i]);
          crossing[i] = t + f * dt;
          --remaining;
        }
      }
      v = std::move(next);
      t += dt;
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (members[i] == start && !write_start) continue;
      out.arrival_ps[members[i]] = base_ps + crossing[i];
    }

    for (const NodeId w : members) {
      if (!IsBoundary(w, start)) continue;
      const ResolvedRepeater r = repeaters.Resolve(w, tech);
      const NodeId from = rooted.Parent(w);
      ProcessStage(w, r.ResFrom(from),
                   base_ps + crossing[local[w]] + r.IntrinsicFrom(from),
                   /*write_start=*/false);
    }
  }
};

}  // namespace

TransientDelays SimulateSource(const RcTree& tree,
                               std::size_t source_terminal,
                               const RepeaterAssignment& repeaters,
                               const DriverAssignment& drivers,
                               const Technology& tech,
                               const TransientOptions& options) {
  MSN_CHECK_MSG(source_terminal < tree.NumTerminals(),
                "source terminal out of range");
  MSN_CHECK_MSG(options.threshold > 0.0 && options.threshold < 1.0,
                "threshold must be in (0, 1)");
  MSN_CHECK_MSG(options.resolution >= 10.0, "resolution too coarse");
  const EffectiveTerminal src = drivers.Resolve(tree, source_terminal);
  MSN_CHECK_MSG(src.is_source,
                "terminal " << source_terminal << " is not a source");

  const NodeId root = tree.TerminalNode(source_terminal);
  const RootedTree rooted(tree, root);
  const CapAnalysis caps = ComputeCaps(rooted, repeaters, drivers, tech);
  const std::vector<EffectiveTerminal> terms =
      ResolveTerminals(tree, drivers);

  TransientDelays out;
  out.source_terminal = source_terminal;
  out.arrival_ps.assign(tree.NumNodes(), -kInf);

  SimEngine engine{tree, rooted, repeaters, tech,
                   caps, terms,  options,   out};
  engine.ProcessStage(root, src.driver_res,
                      src.arrival_ps + src.driver_intrinsic_ps,
                      /*write_start=*/true);
  return out;
}

ArdResult ComputeArdGolden(const RcTree& tree,
                           const RepeaterAssignment& repeaters,
                           const DriverAssignment& drivers,
                           const Technology& tech,
                           const TransientOptions& options) {
  ArdResult best;
  best.ard_ps = -kInf;
  for (std::size_t u = 0; u < tree.NumTerminals(); ++u) {
    if (!drivers.Resolve(tree, u).is_source) continue;
    const TransientDelays sim =
        SimulateSource(tree, u, repeaters, drivers, tech, options);
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      if (t == u) continue;
      const EffectiveTerminal term = drivers.Resolve(tree, t);
      if (!term.is_sink) continue;
      const double d =
          sim.arrival_ps[tree.TerminalNode(t)] + term.downstream_ps;
      if (d > best.ard_ps) {
        best.ard_ps = d;
        best.critical_source = u;
        best.critical_sink = t;
      }
    }
  }
  return best;
}

}  // namespace msn
