// Golden-reference transient simulation of the buffered RC tree.
//
// The Elmore delay the paper optimizes is a provable *upper bound* on the
// true 50% step-response delay of an RC tree; D2M (elmore/moments.*)
// sharpens it.  To judge both, this module numerically integrates each
// buffered stage's exact pi-lumped RC network:
//
//   C dv/dt = -G v + G_src · u(t)
//
// with backward Euler (unconditionally stable), measuring the 50%
// crossing at every node.  Buffered stages are independent first-order
// systems under the ideal-switch buffer model the whole paper uses: a
// repeater's output starts its own step when its input crosses 50%, plus
// the intrinsic delay — mirroring the stage recursion of the moment
// engine, so all three engines (Elmore, D2M, golden) are directly
// comparable per node.
//
// This is a simulator substrate, not a delay *model*: O(n³) factorization
// plus O(n²) per time step per stage.  Use it to validate, not to
// optimize.
#ifndef MSN_SIM_TRANSIENT_H
#define MSN_SIM_TRANSIENT_H

#include <vector>

#include "elmore/delay.h"
#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct TransientOptions {
  /// Threshold crossing defining "delay" (0.5 = the 50% point).
  double threshold = 0.5;
  /// Time step = (stage Elmore time constant) / resolution.
  double resolution = 400.0;
  /// Give up if a node hasn't crossed by this many stage Elmore
  /// constants (checked; indicates a modelling bug).
  double max_horizon = 50.0;
};

/// 50% arrival times (ps) from one source, comparable with
/// SourceDelays::arrival (the source node reports the driver-output
/// crossing, like SourceMoments::delay_ps).
struct TransientDelays {
  std::size_t source_terminal = 0;
  std::vector<double> arrival_ps;
};

/// Simulates the net driven from `source_terminal`.
TransientDelays SimulateSource(const RcTree& tree,
                               std::size_t source_terminal,
                               const RepeaterAssignment& repeaters,
                               const DriverAssignment& drivers,
                               const Technology& tech,
                               const TransientOptions& options = {});

/// Augmented RC-diameter under simulated 50% delays: O(k · sim).
ArdResult ComputeArdGolden(const RcTree& tree,
                           const RepeaterAssignment& repeaters,
                           const DriverAssignment& drivers,
                           const Technology& tech,
                           const TransientOptions& options = {});

}  // namespace msn

#endif  // MSN_SIM_TRANSIENT_H
