#include "runtime/thread_pool.h"

#include <algorithm>

namespace msn::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // Queued thunks are discarded (see header).
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Submit-level thunks have nowhere to report; TaskGroup/Async
      // capture exceptions before they reach here.
    }
  }
}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    state_->pending.push_back(std::move(fn));
  }
  if (pool_ != nullptr) {
    // A drain *hint*: whichever of (some worker, the waiting thread)
    // gets to the group's queue first runs the task.  The hint holds the
    // state alive, so it is harmless after the group is destroyed.
    pool_->Submit([state = state_] { DrainOne(state); });
  }
}

void TaskGroup::Run(std::function<void()> fn,
                    std::chrono::steady_clock::time_point deadline,
                    std::function<void()> on_expired) {
  Run([fn = std::move(fn), on_expired = std::move(on_expired), deadline] {
    if (std::chrono::steady_clock::now() >= deadline) {
      if (on_expired) on_expired();
    } else {
      fn();
    }
  });
}

void TaskGroup::DrainOne(const std::shared_ptr<State>& state) {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(state->mu);
    if (state->pending.empty()) return;  // The waiter beat us to it.
    task = std::move(state->pending.front());
    state->pending.pop_front();
    ++state->running;
  }
  try {
    task();
  } catch (...) {
    const std::lock_guard<std::mutex> lock(state->mu);
    if (!state->first_error) state->first_error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(state->mu);
    --state->running;
    if (state->running == 0 && state->pending.empty()) {
      state->cv.notify_all();
    }
  }
}

void TaskGroup::Wait() {
  for (;;) {
    bool have_task = false;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      if (!state_->pending.empty()) {
        have_task = true;
      } else if (state_->running > 0) {
        state_->cv.wait(lock, [this] {
          return state_->running == 0 && state_->pending.empty();
        });
        continue;  // Re-check under a fresh lock acquisition.
      } else {
        break;
      }
    }
    if (have_task) DrainOne(state_);
  }
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    std::swap(error, state_->first_error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace msn::runtime
