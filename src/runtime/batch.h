// Deterministic multi-net batch optimization (docs/RUNTIME.md).
//
// OptimizeBatch fans a vector of per-net jobs across a fixed ThreadPool,
// running RunMsri once per net with per-net error containment: a net
// whose parse or DP throws produces a structured error entry instead of
// sinking the batch.  Results are collected into index-addressed slots
// and reported in input order, so the batch report rendered by
// WriteBatchReport is byte-identical at any `jobs` count — the
// determinism contract tests/runtime_test.cc byte-compares.
//
// Observability: each net gets its own thread-confined obs::StatsSink;
// after the join barrier the per-net registries are merged into one
// aggregate RunStats carrying batch-level histograms (per-net wall time,
// queue wait, pool occupancy).  WriteBatchStatsJson renders the whole
// thing as an `msn-batch-stats-v1` document (schema in
// docs/OBSERVABILITY.md, validated by tools/check_stats_schema.py).
#ifndef MSN_RUNTIME_BATCH_H
#define MSN_RUNTIME_BATCH_H

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/msri.h"
#include "obs/stats.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn::runtime {

/// One net to optimize.  `options.stats`, `options.set_observer`, and
/// `options.executor` must be unset — the batch engine owns per-net
/// sinks and the pool (checked).
struct BatchJob {
  std::string name;  ///< Report key (file path or a synthetic label).
  RcTree tree;
  /// Per-net DP options.  `options.cancel` is honored: a token that
  /// fires mid-run abandons that net with a contained "cancelled" error
  /// entry (like any other per-net failure) while the rest of the batch
  /// proceeds — one shared token cancels the whole batch cooperatively.
  /// stats/executor/set_observer must stay null (the engine owns them).
  MsriOptions options;
};

struct BatchOptions {
  /// Worker threads (>= 1).  Any value yields bit-identical reports.
  std::size_t jobs = 1;
  /// Collect per-net run stats and the merged aggregate.  Off keeps the
  /// obs zero-cost-when-null contract: no sinks are created at all.
  bool collect_stats = false;
  /// Also parallelize inside each net (MsriOptions::executor) on the
  /// same pool.  Worth it for a few heavy nets; for large batches the
  /// cross-net fan-out already saturates the pool.
  bool intra_net_parallelism = false;
  std::size_t parallel_min_nodes = 64;
};

/// Outcome of one net, in input order.  Exactly one of `result` /
/// `error` is meaningful, discriminated by `ok`.
struct NetOutcome {
  std::string name;
  bool ok = false;
  std::string error;  ///< One-line parse/DP failure message when !ok.
  MsriResult result;
  /// Per-net run stats (empty unless BatchOptions::collect_stats).
  obs::RunStats stats;
  // Scheduling telemetry (nondeterministic; never in the batch report).
  double wall_ms = 0.0;        ///< RunMsri wall time inside the task.
  double queue_wait_ms = 0.0;  ///< Submit-to-start latency.
  std::size_t pool_occupancy = 0;  ///< Concurrently running nets at start.
};

/// A contained per-net failure, also summarized out of NetOutcome for
/// callers that only care about what went wrong.
struct BatchError {
  std::size_t index = 0;
  std::string name;
  std::string message;
};

struct BatchResult {
  std::vector<NetOutcome> nets;     ///< Input order, one per job.
  std::vector<BatchError> errors;   ///< Failures, in input order.
  std::size_t jobs = 1;             ///< Thread count actually used.
  /// Merged per-net registries plus batch.* instruments (only populated
  /// when BatchOptions::collect_stats).
  obs::RunStats aggregate;

  bool AllOk() const { return errors.empty(); }
};

/// Optimizes every job on a pool of `options.jobs` threads.  Throws only
/// on precondition violations (a job carrying stats/executor hooks);
/// per-net failures are contained into NetOutcome/BatchError entries.
BatchResult OptimizeBatch(std::vector<BatchJob> jobs,
                          const Technology& tech,
                          const BatchOptions& options);

/// File-based variant: each path is parsed (src/io `.msn` reader) and
/// optimized inside its task, so a malformed file is contained exactly
/// like a DP failure.  `base_options` applies to every net.
BatchResult OptimizeBatchFiles(const std::vector<std::string>& paths,
                               const Technology& tech,
                               const MsriOptions& base_options,
                               const BatchOptions& options);

/// Expands a batch input path: a directory yields every `*.msn` inside
/// it (non-recursive), sorted by name; a manifest file yields the paths
/// it lists one per line ('#' comments and blank lines skipped),
/// resolved relative to the manifest's directory.  Throws CheckError
/// when the path does not exist or yields no nets.
std::vector<std::string> CollectNetPaths(const std::string& dir_or_manifest);

/// Deterministic per-net report (input order; no timing, no thread
/// count): byte-identical across `jobs` values.  `spec_ps` selects each
/// net's reported pick the way `msn_cli optimize --spec` does.
void WriteBatchReport(std::ostream& os, const BatchResult& batch,
                      std::optional<double> spec_ps = std::nullopt);

/// The `msn-batch-stats-v1` JSON document: batch values, the aggregate
/// registry, and one entry per net (docs/OBSERVABILITY.md).
void WriteBatchStatsJson(std::ostream& os, const BatchResult& batch);

}  // namespace msn::runtime

#endif  // MSN_RUNTIME_BATCH_H
