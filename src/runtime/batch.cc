#include "runtime/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "io/netfile.h"
#include "io/table.h"
#include "runtime/thread_pool.h"

namespace msn::runtime {
namespace {

/// One unit of the shared batch loop: either an in-memory tree or a path
/// parsed inside the task (so parse failures are contained per net).
struct PreparedJob {
  std::string name;
  const RcTree* tree = nullptr;
  const std::string* path = nullptr;
  const MsriOptions* options = nullptr;
};

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

BatchResult RunBatch(const std::vector<PreparedJob>& prepared,
                     const Technology& tech, const BatchOptions& options) {
  BatchResult batch;
  batch.jobs = std::max<std::size_t>(1, options.jobs);
  batch.nets.resize(prepared.size());

  ThreadPool pool(batch.jobs);
  PoolExecutor intra(&pool);
  // Occupancy telemetry only; results never depend on it.
  std::atomic<std::size_t> running{0};
  {
    TaskGroup group(&pool);
    for (std::size_t i = 0; i < prepared.size(); ++i) {
      const auto submitted = std::chrono::steady_clock::now();
      group.Run([&batch, &prepared, &tech, &options, &intra, &running, i,
                 submitted] {
        const PreparedJob& job = prepared[i];
        NetOutcome& out = batch.nets[i];
        out.name = job.name;
        const auto started = std::chrono::steady_clock::now();
        out.queue_wait_ms = MsBetween(submitted, started);
        out.pool_occupancy = running.fetch_add(1) + 1;

        // The sink lives in the outcome slot: thread-confined until the
        // group barrier, merged into the aggregate afterwards.
        std::optional<obs::StatsSink> sink;
        MsriOptions opt = *job.options;
        if (options.collect_stats) {
          sink.emplace(&out.stats);
          opt.stats = &*sink;
          out.stats.SetLabel("net", out.name);
        }
        if (options.intra_net_parallelism) {
          opt.executor = &intra;
          opt.parallel_min_nodes = options.parallel_min_nodes;
        }
        try {
          if (job.path != nullptr) {
            std::ifstream in(*job.path);
            MSN_CHECK_MSG(in.good(), "cannot open '" << *job.path << "'");
            const RcTree tree = ReadNet(in);
            out.result = RunMsri(tree, tech, opt);
          } else {
            out.result = RunMsri(*job.tree, tech, opt);
          }
          out.ok = true;
        } catch (const std::exception& e) {
          // Containment: this net reports a structured error, the rest
          // of the batch is unaffected.
          out.error = e.what();
        }
        out.wall_ms = MsBetween(started, std::chrono::steady_clock::now());
        running.fetch_sub(1);
      });
    }
    group.Wait();
  }

  for (std::size_t i = 0; i < batch.nets.size(); ++i) {
    const NetOutcome& out = batch.nets[i];
    if (!out.ok) batch.errors.push_back({i, out.name, out.error});
  }

  // Aggregate registry: merged per-net instruments plus batch-level
  // scheduling telemetry.  Post-barrier, single-threaded.
  obs::RunStats& agg = batch.aggregate;
  obs::Histogram& wall = agg.GetHistogram("batch.net_wall_ms");
  obs::Histogram& wait = agg.GetHistogram("batch.queue_wait_ms");
  obs::Histogram& occupancy = agg.GetHistogram("batch.pool_occupancy");
  for (const NetOutcome& out : batch.nets) {
    wall.Record(out.wall_ms);
    wait.Record(out.queue_wait_ms);
    occupancy.Record(static_cast<double>(out.pool_occupancy));
    if (options.collect_stats) agg.MergeFrom(out.stats);
  }
  agg.SetValue("batch.nets", static_cast<double>(batch.nets.size()));
  agg.SetValue("batch.errors", static_cast<double>(batch.errors.size()));
  agg.SetValue("batch.jobs", static_cast<double>(batch.jobs));
  return batch;
}

void CheckJobOptions(const MsriOptions& options) {
  MSN_CHECK_MSG(options.stats == nullptr,
                "batch jobs must not carry a stats sink — the batch "
                "engine owns per-net sinks (BatchOptions::collect_stats)");
  MSN_CHECK_MSG(options.executor == nullptr,
                "batch jobs must not carry an executor — the batch "
                "engine owns the pool (BatchOptions::intra_net_parallelism)");
  MSN_CHECK_MSG(!options.set_observer,
                "batch jobs must not carry a set_observer (the callback "
                "would run on pool threads)");
}

/// Fixed-precision number for the deterministic report.
std::string Num(double v, int precision = 1) {
  return TablePrinter::Num(v, precision);
}

}  // namespace

BatchResult OptimizeBatch(std::vector<BatchJob> jobs,
                          const Technology& tech,
                          const BatchOptions& options) {
  std::vector<PreparedJob> prepared;
  prepared.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    CheckJobOptions(job.options);
    prepared.push_back({job.name, &job.tree, nullptr, &job.options});
  }
  return RunBatch(prepared, tech, options);
}

BatchResult OptimizeBatchFiles(const std::vector<std::string>& paths,
                               const Technology& tech,
                               const MsriOptions& base_options,
                               const BatchOptions& options) {
  CheckJobOptions(base_options);
  std::vector<PreparedJob> prepared;
  prepared.reserve(paths.size());
  for (const std::string& path : paths) {
    prepared.push_back({path, nullptr, &path, &base_options});
  }
  return RunBatch(prepared, tech, options);
}

std::vector<std::string> CollectNetPaths(
    const std::string& dir_or_manifest) {
  namespace fs = std::filesystem;
  const fs::path input(dir_or_manifest);
  std::vector<std::string> paths;
  if (fs::is_directory(input)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(input)) {
      if (entry.is_regular_file() && entry.path().extension() == ".msn") {
        paths.push_back(entry.path().string());
      }
    }
    // Directory iteration order is unspecified; the batch order (and so
    // the report) must not depend on it.
    std::sort(paths.begin(), paths.end());
  } else if (fs::is_regular_file(input)) {
    std::ifstream in(input);
    // User-input errors throw CheckError with a bare message (no
    // MSN_CHECK expression/location decoration) — the CLI surfaces
    // these verbatim.
    if (!in.good()) {
      throw CheckError("cannot open manifest '" + dir_or_manifest + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      const std::size_t end = line.find_last_not_of(" \t\r");
      const fs::path entry(line.substr(start, end - start + 1));
      // Relative entries resolve against the manifest's directory so a
      // manifest works from any cwd.
      paths.push_back(entry.is_absolute()
                          ? entry.string()
                          : (input.parent_path() / entry).string());
    }
  } else {
    throw CheckError("batch input '" + dir_or_manifest +
                     "' is neither a directory nor a manifest file");
  }
  if (paths.empty()) {
    throw CheckError("batch input '" + dir_or_manifest +
                     "' yields no .msn nets");
  }
  return paths;
}

void WriteBatchReport(std::ostream& os, const BatchResult& batch,
                      std::optional<double> spec_ps) {
  // Determinism contract: input order only, fixed-precision numbers, no
  // wall times, no thread counts (tests byte-compare across --jobs).
  for (const NetOutcome& out : batch.nets) {
    if (!out.ok) {
      os << "net " << out.name << ": error: " << out.error << '\n';
      continue;
    }
    const std::vector<TradeoffPoint>& pareto = out.result.Pareto();
    os << "net " << out.name << ": " << pareto.size() << " pareto points";
    if (const TradeoffPoint* p = out.result.MinCost()) {
      os << ", min-cost " << Num(p->cost) << " / " << Num(p->ard_ps)
         << " ps";
    }
    if (const TradeoffPoint* p = out.result.MinArd()) {
      os << ", min-ARD " << Num(p->cost) << " / " << Num(p->ard_ps)
         << " ps";
    }
    if (spec_ps.has_value()) {
      if (const TradeoffPoint* p = out.result.MinCostFeasible(*spec_ps)) {
        os << ", pick(spec " << Num(*spec_ps) << " ps) " << Num(p->cost)
           << " / " << Num(p->ard_ps) << " ps, " << p->num_repeaters
           << " repeaters";
      } else {
        os << ", spec " << Num(*spec_ps) << " ps unachievable";
      }
    }
    os << '\n';
  }
  os << "batch: " << batch.nets.size() << " nets, "
     << batch.errors.size() << " errors\n";
}

void WriteBatchStatsJson(std::ostream& os, const BatchResult& batch) {
  os << "{\"schema\":\"msn-batch-stats-v1\",\"jobs\":" << batch.jobs
     << ",\"nets\":[";
  for (std::size_t i = 0; i < batch.nets.size(); ++i) {
    const NetOutcome& out = batch.nets[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << obs::JsonEscape(out.name) << '"';
    if (!out.error.empty()) {
      os << ",\"error\":\"" << obs::JsonEscape(out.error) << '"';
    }
    os << ",\"ok\":" << (out.ok ? "true" : "false")
       << ",\"wall_ms\":" << out.wall_ms
       << ",\"queue_wait_ms\":" << out.queue_wait_ms
       << ",\"pool_occupancy\":" << out.pool_occupancy;
    if (out.ok) {
      os << ",\"pareto_points\":" << out.result.Pareto().size();
    }
    if (!out.stats.Empty()) {
      os << ",\"stats\":" << out.stats.JsonString();
    }
    os << '}';
  }
  os << "],\"aggregate\":" << batch.aggregate.JsonString() << "}\n";
}

}  // namespace msn::runtime
