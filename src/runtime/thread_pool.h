// Fixed-size thread pool and deterministic fan-out/join primitives for
// the batch optimization engine (docs/RUNTIME.md).
//
// Design constraints, in order:
//   1. Determinism.  Nothing here hands out completion order: callers
//      fan out thunks that write results into index-addressed slots and
//      join at a barrier, so outputs are identical at any thread count.
//      There is no work stealing between groups — a task runs either on
//      a pool worker or on the thread waiting for its group, never
//      migrates, and sees a happens-before edge to the joiner.
//   2. Deadlock-free nesting.  TaskGroup::Wait *helps*: the waiting
//      thread drains its own group's pending tasks instead of blocking,
//      so a pool worker may itself fan out a nested group onto the same
//      pool (batch-level and intra-net parallelism share one pool) and
//      always makes progress even when every worker is busy.
//   3. Exception capture.  The first exception a group task throws is
//      rethrown from Wait(); Async() delivers exceptions through its
//      std::future.  A throwing task never takes down a worker thread.
#ifndef MSN_RUNTIME_THREAD_POOL_H
#define MSN_RUNTIME_THREAD_POOL_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/executor.h"

namespace msn::runtime {

/// Fixed set of worker threads draining a FIFO queue of thunks.
/// Destruction waits for already-running thunks and discards queued ones
/// (safe for TaskGroup hints, see below; don't Submit fire-and-forget
/// work you cannot afford to lose right before destruction).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t NumThreads() const { return threads_.size(); }

  /// Enqueues a thunk for some worker.  Exceptions escaping `fn` are
  /// swallowed (workers must survive); use Async or TaskGroup for work
  /// whose failure matters.
  void Submit(std::function<void()> fn);

  /// Packaged-task convenience: runs `fn` on the pool, exceptions and
  /// result delivered through the returned future.
  template <typename Fn>
  auto Async(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Submit([task] { (*task)(); });
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// One fan-out/join scope: Run() registers tasks, Wait() returns once
/// all of them completed, rethrowing the first captured exception.
/// Pool workers only *help* with a group (each Run posts one drain hint
/// to the pool); the waiting thread drains whatever the pool has not
/// picked up, so Wait() always terminates — even on a saturated pool or
/// with a null pool (then Wait runs everything inline, in Run order).
/// The pool must outlive the group.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// Waits for stragglers (exceptions are dropped here; call Wait()
  /// yourself to observe them).
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> fn);

  /// Deadline-aware variant for request/response engines (the service
  /// layer's per-request deadlines): if the task has not *started* by
  /// `deadline`, `on_expired` runs in its place — on whichever thread
  /// would have run `fn`, still inside the group (Wait() covers it).
  /// The deadline bounds admission only: a task that starts in time is
  /// never aborted by this layer, so expiry is deterministic for a
  /// given dequeue time.  Mid-flight interruption is the cooperative
  /// cancellation layer's job (src/common/cancel.h — the service
  /// threads the same deadline into MsriOptions::cancel, so a started
  /// DP still abandons itself shortly after expiry).
  void Run(std::function<void()> fn,
           std::chrono::steady_clock::time_point deadline,
           std::function<void()> on_expired);

  void Wait();

 private:
  /// Shared with pool-submitted drain hints, which may fire after the
  /// group object is gone (the caller drained the queue first).
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> pending;
    std::size_t running = 0;
    std::exception_ptr first_error;
  };
  static void DrainOne(const std::shared_ptr<State>& state);

  ThreadPool* pool_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

/// Adapter running the core DP's intra-net fan-outs (see
/// MsriOptions::executor) on a pool via one TaskGroup per RunAll.
class PoolExecutor final : public Executor {
 public:
  explicit PoolExecutor(ThreadPool* pool) : pool_(pool) {}

  void RunAll(std::vector<std::function<void()>> tasks) override {
    TaskGroup group(pool_);
    for (std::function<void()>& task : tasks) group.Run(std::move(task));
    group.Wait();
  }

 private:
  ThreadPool* pool_;
};

}  // namespace msn::runtime

#endif  // MSN_RUNTIME_THREAD_POOL_H
