// Hanan grid construction.
//
// The Hanan grid of a terminal set is the set of intersection points of the
// horizontal and vertical lines through the terminals.  Hanan's theorem
// guarantees an optimal rectilinear Steiner minimal tree exists whose
// Steiner points all lie on this grid, so the iterated 1-Steiner heuristic
// (src/steiner/one_steiner.*) only ever considers Hanan candidates.
#ifndef MSN_GEOM_HANAN_H
#define MSN_GEOM_HANAN_H

#include <vector>

#include "geom/point.h"

namespace msn {

/// Returns all Hanan grid points of `terminals`, excluding the terminals
/// themselves.  Result is sorted lexicographically and duplicate-free.
std::vector<Point> HananCandidates(const std::vector<Point>& terminals);

/// Returns the full Hanan grid (terminals included), sorted and unique.
std::vector<Point> HananGrid(const std::vector<Point>& terminals);

}  // namespace msn

#endif  // MSN_GEOM_HANAN_H
