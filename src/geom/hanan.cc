#include "geom/hanan.h"

#include <algorithm>
#include <ostream>

namespace msn {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::vector<Point> HananGrid(const std::vector<Point>& terminals) {
  std::vector<std::int64_t> xs, ys;
  xs.reserve(terminals.size());
  ys.reserve(terminals.size());
  for (const Point& t : terminals) {
    xs.push_back(t.x);
    ys.push_back(t.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Point> grid;
  grid.reserve(xs.size() * ys.size());
  for (std::int64_t x : xs) {
    for (std::int64_t y : ys) grid.push_back({x, y});
  }
  std::sort(grid.begin(), grid.end());
  return grid;
}

std::vector<Point> HananCandidates(const std::vector<Point>& terminals) {
  std::vector<Point> grid = HananGrid(terminals);
  std::vector<Point> sorted_terminals = terminals;
  std::sort(sorted_terminals.begin(), sorted_terminals.end());
  sorted_terminals.erase(
      std::unique(sorted_terminals.begin(), sorted_terminals.end()),
      sorted_terminals.end());

  std::vector<Point> candidates;
  candidates.reserve(grid.size());
  std::set_difference(grid.begin(), grid.end(), sorted_terminals.begin(),
                      sorted_terminals.end(),
                      std::back_inserter(candidates));
  return candidates;
}

}  // namespace msn
