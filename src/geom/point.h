// Planar geometry primitives on the routing grid.
//
// Coordinates are integer micrometres; the paper's experiments place
// terminals on a 1 cm × 1 cm grid, i.e. coordinates in [0, 10000].
// Integer coordinates make Hanan-grid and Steiner constructions exact.
#ifndef MSN_GEOM_POINT_H
#define MSN_GEOM_POINT_H

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace msn {

/// A point on the routing plane, in micrometres.
struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  /// Lexicographic order (x, then y); used for canonical sorting.
  friend auto operator<=>(const Point&, const Point&) = default;
};

/// Rectilinear (Manhattan, L1) distance between two points, in µm.
inline std::int64_t ManhattanDistance(const Point& a, const Point& b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Axis-aligned bounding box.
struct BoundingBox {
  Point lo;  ///< Minimum corner.
  Point hi;  ///< Maximum corner.

  /// Half-perimeter wirelength lower bound of the box.
  std::int64_t HalfPerimeter() const {
    return (hi.x - lo.x) + (hi.y - lo.y);
  }
  bool Contains(const Point& p) const {
    return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y;
  }
};

/// Bounding box of a range of points (range must be non-empty — checked).
template <typename Range>
BoundingBox ComputeBoundingBox(const Range& points) {
  auto it = std::begin(points);
  BoundingBox box{*it, *it};
  for (; it != std::end(points); ++it) {
    box.lo.x = it->x < box.lo.x ? it->x : box.lo.x;
    box.lo.y = it->y < box.lo.y ? it->y : box.lo.y;
    box.hi.x = it->x > box.hi.x ? it->x : box.hi.x;
    box.hi.y = it->y > box.hi.y ? it->y : box.hi.y;
  }
  return box;
}

}  // namespace msn

template <>
struct std::hash<msn::Point> {
  std::size_t operator()(const msn::Point& p) const noexcept {
    // Splitmix-style mixing of the two coordinates.
    std::uint64_t h = static_cast<std::uint64_t>(p.x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<std::uint64_t>(p.y) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

#endif  // MSN_GEOM_POINT_H
