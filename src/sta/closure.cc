#include "sta/closure.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "core/ard.h"
#include "runtime/batch.h"
#include "service/persist.h"

namespace msn::sta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FmtPs(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

ClosureResult CloseTiming(const Design& design, const Technology& tech,
                          const ClosureOptions& options) {
  MSN_CHECK_MSG(options.jobs >= 1, "jobs must be >= 1");
  MSN_CHECK_MSG(options.max_iters >= 1, "max_iters must be >= 1");
  MSN_CHECK_MSG(options.base.stats == nullptr &&
                    options.base.trace == nullptr &&
                    options.base.executor == nullptr &&
                    !options.base.set_observer,
                "closure owns instrumentation; base options must not "
                "carry stats/trace/executor/set_observer hooks");

  ClosureResult result;
  result.jobs = options.jobs;
  result.max_iters = options.max_iters;

  TimingGraph graph(design);

  // Initial delay annotation: each net's unoptimized ARD.
  result.nets.resize(design.nets.size());
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    const double ard = ComputeArd(*design.nets[n].tree, tech).ard_ps;
    result.nets[n].name = design.nets[n].name;
    result.nets[n].initial_delay_ps = ard;
    result.nets[n].spec_ps = kInf;
    graph.SetNetDelayPs(n, ard);
  }

  // One canonical request per net, computed once: the DP input never
  // changes across iterations (the derived spec only selects a frontier
  // point), so repeated iterations and repeat processes share
  // fingerprints.
  std::vector<service::CanonicalRequest> canon;
  canon.reserve(design.nets.size());
  for (const DesignNet& net : design.nets) {
    canon.push_back(service::Canonicalize(*net.tree, tech, options.base));
  }

  service::PersistConfig persist;
  persist.dir = options.cache_dir;
  service::PersistentCache cache(options.cache, persist);

  std::vector<bool> errored(design.nets.size(), false);
  std::size_t effective_k = options.nets_per_iter;

  for (std::size_t iter = 0; iter < options.max_iters; ++iter) {
    options.base.cancel.Check();
    graph.Propagate();

    IterationStats it;
    it.worst_slack_ps = graph.WorstSlackPs();
    for (const EndpointSlack& s : graph.EndpointSlacks()) {
      if (s.slack_ps < 0.0) ++it.failing_endpoints;
    }
    // Failing nets, most critical first (selectable = not errored).
    struct Ranked {
      double slack;
      std::size_t net;
    };
    std::vector<Ranked> selectable;
    for (std::size_t n = 0; n < design.nets.size(); ++n) {
      const double slack = graph.NetWorstSlackPs(n);
      if (slack >= 0.0) continue;
      ++it.failing_nets;
      if (!errored[n]) selectable.push_back(Ranked{slack, n});
    }

    if (it.worst_slack_ps >= 0.0) {
      result.timing_met = true;
      result.converged = true;
      result.iterations.push_back(it);
      break;
    }
    if (selectable.empty()) {
      // Endpoints still fail but no net can improve (all clean or all
      // errored): nothing more to do.
      result.converged = true;
      result.iterations.push_back(it);
      break;
    }

    std::sort(selectable.begin(), selectable.end(),
              [](const Ranked& a, const Ranked& b) {
                if (a.slack != b.slack) return a.slack < b.slack;
                return a.net < b.net;
              });
    const std::size_t k =
        effective_k == 0 ? selectable.size()
                         : std::min(effective_k, selectable.size());
    std::vector<std::size_t> selected;
    selected.reserve(k);
    for (std::size_t i = 0; i < k; ++i) selected.push_back(selectable[i].net);
    // Cache traffic and delay updates run on this thread in net-index
    // order — the determinism contract.
    std::sort(selected.begin(), selected.end());
    it.nets_examined = selected.size();

    // Resolve each selected net's frontier: warm lookup or batch DP.
    std::map<std::size_t, MsriSummary> frontier;
    std::vector<std::size_t> misses;
    for (const std::size_t n : selected) {
      if (auto warm = cache.Lookup(canon[n])) {
        frontier.emplace(n, std::move(*warm));
        ++it.cache_hits;
      } else {
        ++it.cache_misses;
        misses.push_back(n);
      }
    }
    if (!misses.empty()) {
      std::vector<runtime::BatchJob> jobs;
      jobs.reserve(misses.size());
      for (const std::size_t n : misses) {
        jobs.push_back(runtime::BatchJob{design.nets[n].name,
                                         *design.nets[n].tree,
                                         options.base});
      }
      runtime::BatchOptions bopts;
      bopts.jobs = options.jobs;
      bopts.collect_stats = true;
      runtime::BatchResult batch =
          runtime::OptimizeBatch(std::move(jobs), tech, bopts);
      it.dp_runs = misses.size();
      result.registry.MergeFrom(batch.aggregate);
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const std::size_t n = misses[i];
        if (batch.nets[i].ok) {
          MsriSummary summary = Summarize(batch.nets[i].result);
          cache.Insert(canon[n], summary);
          frontier.emplace(n, std::move(summary));
        } else {
          errored[n] = true;
          result.nets[n].error = batch.nets[i].error;
        }
      }
    }

    // Pick a frontier point per net and lower its delay annotation.
    // Monotone by construction: new = min(old, pick.ard).
    for (const std::size_t n : selected) {
      const auto found = frontier.find(n);
      if (found == frontier.end()) continue;  // Contained DP failure.
      const MsriSummary& summary = found->second;
      const double spec = graph.NetSpecPs(n);
      const TradeoffSummary* pick = summary.MinCostFeasible(spec);
      if (pick == nullptr) pick = summary.MinArd();
      if (pick == nullptr) {
        errored[n] = true;
        result.nets[n].error = "empty tradeoff frontier";
        continue;
      }
      result.nets[n].spec_ps = spec;
      if (pick->ard_ps < graph.NetDelayPs(n)) {
        graph.SetNetDelayPs(n, pick->ard_ps);
        result.nets[n].optimized = true;
        ++it.nets_optimized;
      }
    }

    result.iterations.push_back(it);
    if (it.nets_optimized == 0) {
      if (k >= selectable.size()) {
        // Every failing net was examined and none improved: the loop
        // has extracted everything the frontiers offer.
        result.converged = true;
        break;
      }
      // Widen the window before giving up on the remaining nets.
      effective_k *= 2;
    }
  }

  graph.Propagate();
  result.final_worst_slack_ps = graph.WorstSlackPs();
  result.endpoint_slacks = graph.EndpointSlacks();
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    result.nets[n].final_delay_ps = graph.NetDelayPs(n);
    result.nets[n].slack_ps = graph.NetWorstSlackPs(n);
  }

  cache.Sync();
  result.cache = cache.Snapshot();
  cache.ExportStats(&result.registry);

  obs::RunStats& reg = result.registry;
  std::uint64_t hits = 0, misses = 0, dp_runs = 0, optimized = 0;
  for (const IterationStats& it : result.iterations) {
    hits += it.cache_hits;
    misses += it.cache_misses;
    dp_runs += it.dp_runs;
    optimized += it.nets_optimized;
  }
  reg.GetCounter("sta.iterations").Add(result.iterations.size());
  reg.GetCounter("sta.cache_hits").Add(hits);
  reg.GetCounter("sta.cache_misses").Add(misses);
  reg.GetCounter("sta.dp_runs").Add(dp_runs);
  reg.GetCounter("sta.nets_optimized").Add(optimized);
  reg.SetValue("sta.final_worst_slack_ps", result.final_worst_slack_ps);
  reg.SetValue("sta.converged", result.converged ? 1.0 : 0.0);
  reg.SetValue("sta.timing_met", result.timing_met ? 1.0 : 0.0);
  return result;
}

void WriteClosureReport(std::ostream& os, const ClosureResult& result) {
  std::size_t endpoints = result.endpoint_slacks.size();
  os << "timing closure: " << result.nets.size() << " nets, " << endpoints
     << " endpoints, " << result.iterations.size() << " iterations (cap "
     << result.max_iters << ")\n\n";

  os << std::setw(4) << "iter" << std::setw(16) << "worst_slack_ps"
     << std::setw(12) << "failing_ep" << std::setw(14) << "failing_nets"
     << std::setw(10) << "examined" << std::setw(10) << "optimized"
     << std::setw(8) << "hits" << std::setw(8) << "misses" << std::setw(9)
     << "dp_runs" << '\n';
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const IterationStats& it = result.iterations[i];
    os << std::setw(4) << i << std::setw(16) << FmtPs(it.worst_slack_ps)
       << std::setw(12) << it.failing_endpoints << std::setw(14)
       << it.failing_nets << std::setw(10) << it.nets_examined
       << std::setw(10) << it.nets_optimized << std::setw(8)
       << it.cache_hits << std::setw(8) << it.cache_misses << std::setw(9)
       << it.dp_runs << '\n';
  }
  os << "\nconverged: " << (result.converged ? "yes" : "no")
     << "  timing met: " << (result.timing_met ? "yes" : "no")
     << "  final worst slack: " << FmtPs(result.final_worst_slack_ps)
     << " ps\n\n";

  os << "endpoints:\n";
  os << std::setw(20) << "endpoint" << std::setw(14) << "arrival_ps"
     << std::setw(14) << "required_ps" << std::setw(14) << "slack_ps"
     << '\n';
  for (const EndpointSlack& s : result.endpoint_slacks) {
    os << std::setw(20) << s.name << std::setw(14) << FmtPs(s.arrival_ps)
       << std::setw(14) << FmtPs(s.required_ps) << std::setw(14)
       << FmtPs(s.slack_ps) << '\n';
  }

  os << "\nnets:\n";
  os << std::setw(20) << "net" << std::setw(14) << "initial_ps"
     << std::setw(14) << "final_ps" << std::setw(14) << "spec_ps"
     << std::setw(14) << "slack_ps" << "  note\n";
  for (const NetClosure& n : result.nets) {
    os << std::setw(20) << n.name << std::setw(14)
       << FmtPs(n.initial_delay_ps) << std::setw(14)
       << FmtPs(n.final_delay_ps) << std::setw(14) << FmtPs(n.spec_ps)
       << std::setw(14) << FmtPs(n.slack_ps) << "  ";
    if (!n.error.empty()) {
      os << "error: " << n.error;
    } else if (n.optimized) {
      os << "optimized";
    } else {
      os << "-";
    }
    os << '\n';
  }
}

void WriteClosureStatsJson(std::ostream& os, const ClosureResult& result,
                           const std::string& design_label) {
  using obs::JsonEscape;
  using obs::JsonNumber;

  std::uint64_t hits = 0, misses = 0, dp_runs = 0;
  for (const IterationStats& it : result.iterations) {
    hits += it.cache_hits;
    misses += it.cache_misses;
    dp_runs += it.dp_runs;
  }

  os << "{\"schema\":\"msn-sta-stats-v1\"";
  os << ",\"design\":\"" << JsonEscape(design_label) << '"';
  os << ",\"jobs\":" << result.jobs;
  os << ",\"nets\":" << result.nets.size();
  os << ",\"endpoints\":" << result.endpoint_slacks.size();
  os << ",\"max_iters\":" << result.max_iters;
  os << ",\"iterations\":[";
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const IterationStats& it = result.iterations[i];
    if (i != 0) os << ',';
    os << "{\"worst_slack_ps\":" << JsonNumber(it.worst_slack_ps)
       << ",\"failing_endpoints\":" << it.failing_endpoints
       << ",\"failing_nets\":" << it.failing_nets
       << ",\"nets_examined\":" << it.nets_examined
       << ",\"nets_optimized\":" << it.nets_optimized
       << ",\"cache_hits\":" << it.cache_hits
       << ",\"cache_misses\":" << it.cache_misses
       << ",\"dp_runs\":" << it.dp_runs << '}';
  }
  os << ']';
  os << ",\"converged\":" << (result.converged ? "true" : "false");
  os << ",\"timing_met\":" << (result.timing_met ? "true" : "false");
  os << ",\"final_worst_slack_ps\":"
     << JsonNumber(result.final_worst_slack_ps);
  os << ",\"total_cache_hits\":" << hits;
  os << ",\"total_cache_misses\":" << misses;
  os << ",\"total_dp_runs\":" << dp_runs;
  os << ",\"cache\":{\"hits\":" << result.cache.hits
     << ",\"misses\":" << result.cache.misses
     << ",\"insertions\":" << result.cache.insertions
     << ",\"evictions\":" << result.cache.evictions
     << ",\"collisions\":" << result.cache.collisions
     << ",\"entries\":" << result.cache.entries
     << ",\"bytes\":" << result.cache.bytes << '}';

  // Final endpoint slack histogram: fixed equal-width buckets spanning
  // the finite slacks ([bound, count] pairs, bounds strictly increasing,
  // counts summing to the endpoint total; +inf slacks clamp into the
  // last bucket).
  os << ",\"slack_histogram\":[";
  if (!result.endpoint_slacks.empty()) {
    double lo = kInf, hi = -kInf;
    for (const EndpointSlack& s : result.endpoint_slacks) {
      if (!std::isfinite(s.slack_ps)) continue;
      lo = std::min(lo, s.slack_ps);
      hi = std::max(hi, s.slack_ps);
    }
    if (lo == kInf) {  // No finite slack at all.
      lo = 0.0;
      hi = 1.0;
    }
    lo = std::floor(lo);
    hi = std::ceil(hi);
    if (hi <= lo) hi = lo + 1.0;
    constexpr std::size_t kBuckets = 8;
    const double width = (hi - lo) / static_cast<double>(kBuckets);
    std::uint64_t counts[kBuckets] = {};
    for (const EndpointSlack& s : result.endpoint_slacks) {
      std::size_t b = kBuckets - 1;
      if (std::isfinite(s.slack_ps)) {
        const double raw = std::floor((s.slack_ps - lo) / width);
        if (raw < 0.0) {
          b = 0;
        } else if (raw < static_cast<double>(kBuckets)) {
          b = static_cast<std::size_t>(raw);
        }
      }
      ++counts[b];
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (b != 0) os << ',';
      os << '[' << JsonNumber(lo + width * static_cast<double>(b + 1))
         << ',' << counts[b] << ']';
    }
  }
  os << ']';
  os << ",\"registry\":" << result.registry.JsonString();
  os << "}\n";
}

}  // namespace msn::sta
