#include "sta/timing_graph.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "io/netfile.h"

namespace msn::sta {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::size_t TimingGraph::DriveNode(const Design& design,
                                   const Endpoint& e) const {
  if (e.IsPort()) return port_node_[e.pin];
  const std::size_t base = pin_node_[e.component][e.pin];
  // An inout pin's drive node is its first node (fed by arcs).
  (void)design;
  return base;
}

std::size_t TimingGraph::ReceiveNode(const Design& design,
                                     const Endpoint& e) const {
  if (e.IsPort()) return port_node_[e.pin];
  const std::size_t base = pin_node_[e.component][e.pin];
  const PinDir dir = design.components[e.component].pins[e.pin].dir;
  return dir == PinDir::kInOut ? base + 1 : base;
}

TimingGraph::TimingGraph(const Design& design) : design_(&design) {
  // ---- Node numbering: ports first, then component pins in
  // declaration order (inout pins take two consecutive nodes:
  // drive, then receive).
  port_node_.resize(design.ports.size());
  endpoint_node_.assign(design.ports.size(), kNoIndex);
  for (std::size_t p = 0; p < design.ports.size(); ++p) {
    port_node_[p] = node_name_.size();
    node_name_.push_back(design.ports[p].name);
    if (!design.ports[p].is_input) endpoint_node_[p] = port_node_[p];
  }
  pin_node_.resize(design.components.size());
  for (std::size_t c = 0; c < design.components.size(); ++c) {
    const DesignComponent& comp = design.components[c];
    pin_node_[c].resize(comp.pins.size());
    for (std::size_t p = 0; p < comp.pins.size(); ++p) {
      pin_node_[c][p] = node_name_.size();
      const std::string full = comp.name + "." + comp.pins[p].name;
      if (comp.pins[p].dir == PinDir::kInOut) {
        node_name_.push_back(full + ":drive");
        node_name_.push_back(full + ":receive");
      } else {
        node_name_.push_back(full);
      }
    }
  }

  // ---- Edges.  Arcs start at the from-pin's receive side and end at
  // the to-pin's drive side; net edges connect every source terminal's
  // drive node to every sink terminal's receive node.
  for (std::size_t c = 0; c < design.components.size(); ++c) {
    const DesignComponent& comp = design.components[c];
    for (const DesignArc& arc : comp.arcs) {
      Edge e;
      e.from = ReceiveNode(design, Endpoint{c, arc.from_pin});
      e.to = DriveNode(design, Endpoint{c, arc.to_pin});
      e.delay_ps = arc.delay_ps;
      e.line = arc.line;
      edges_.push_back(e);
    }
  }
  net_delay_ps_.assign(design.nets.size(), 0.0);
  net_edge_index_.resize(design.nets.size());
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    const DesignNet& net = design.nets[n];
    MSN_CHECK_MSG(net.tree.has_value(),
                  "net '" << net.name << "' has no loaded topology");
    const RcTree& tree = *net.tree;
    for (std::size_t s = 0; s < tree.NumTerminals(); ++s) {
      if (!tree.Terminal(s).is_source) continue;
      for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
        if (!tree.Terminal(t).is_sink || t == s) continue;
        Edge e;
        e.from = DriveNode(design, net.endpoints[s]);
        e.to = ReceiveNode(design, net.endpoints[t]);
        e.net = n;
        e.line = net.line;
        net_edge_index_[n].push_back(edges_.size());
        edges_.push_back(e);
      }
    }
  }

  // ---- Adjacency + Kahn topological order with cycle detection.
  const std::size_t num_nodes = node_name_.size();
  out_edges_.resize(num_nodes);
  in_edges_.resize(num_nodes);
  std::vector<std::size_t> in_degree(num_nodes, 0);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    out_edges_[edges_[i].from].push_back(i);
    in_edges_[edges_[i].to].push_back(i);
    ++in_degree[edges_[i].to];
  }
  topo_order_.reserve(num_nodes);
  std::vector<std::size_t> frontier;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (in_degree[v] == 0) frontier.push_back(v);
  }
  // Pop smallest-index first so the order (and hence nothing — the
  // propagation result is order-independent) is at least reproducible
  // for debugging.
  std::make_heap(frontier.begin(), frontier.end(),
                 std::greater<std::size_t>());
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(),
                  std::greater<std::size_t>());
    const std::size_t v = frontier.back();
    frontier.pop_back();
    topo_order_.push_back(v);
    for (const std::size_t ei : out_edges_[v]) {
      const std::size_t w = edges_[ei].to;
      if (--in_degree[w] == 0) {
        frontier.push_back(w);
        std::push_heap(frontier.begin(), frontier.end(),
                       std::greater<std::size_t>());
      }
    }
  }
  if (topo_order_.size() != num_nodes) {
    // Every remaining node with nonzero in-degree sits on or downstream
    // of a cycle; name the first one and cite the line of an incident
    // unresolved edge.
    for (std::size_t v = 0; v < num_nodes; ++v) {
      if (in_degree[v] == 0) continue;
      std::size_t line = 0;
      for (const std::size_t ei : in_edges_[v]) {
        if (in_degree[edges_[ei].from] != 0) {
          line = edges_[ei].line;
          break;
        }
      }
      throw ParseError(line, "combinational cycle through '" +
                                 node_name_[v] + "'");
    }
    MSN_CHECK_MSG(false, "cycle detected but no cyclic node found");
  }

  arrival_ps_.assign(num_nodes, -kInf);
  required_ps_.assign(num_nodes, kInf);
}

void TimingGraph::Propagate() {
  const Design& design = *design_;
  std::fill(arrival_ps_.begin(), arrival_ps_.end(), -kInf);
  std::fill(required_ps_.begin(), required_ps_.end(), kInf);
  for (std::size_t p = 0; p < design.ports.size(); ++p) {
    if (design.ports[p].is_input) {
      arrival_ps_[port_node_[p]] = design.ports[p].time_ps;
    } else {
      required_ps_[port_node_[p]] = design.ports[p].time_ps;
    }
  }
  for (const std::size_t v : topo_order_) {
    const double a = arrival_ps_[v];
    if (a == -kInf) continue;
    for (const std::size_t ei : out_edges_[v]) {
      const Edge& e = edges_[ei];
      arrival_ps_[e.to] =
          std::max(arrival_ps_[e.to], a + EdgeDelayPs(e));
    }
  }
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const double r = required_ps_[*it];
    if (r == kInf) continue;
    for (const std::size_t ei : in_edges_[*it]) {
      const Edge& e = edges_[ei];
      required_ps_[e.from] =
          std::min(required_ps_[e.from], r - EdgeDelayPs(e));
    }
  }
}

double TimingGraph::NetSpecPs(std::size_t net) const {
  double spec = kInf;
  for (const std::size_t ei : net_edge_index_[net]) {
    const Edge& e = edges_[ei];
    const double a = arrival_ps_[e.from];
    const double r = required_ps_[e.to];
    if (a == -kInf || r == kInf) continue;
    spec = std::min(spec, r - a);
  }
  return spec;
}

std::vector<EndpointSlack> TimingGraph::EndpointSlacks() const {
  const Design& design = *design_;
  std::vector<EndpointSlack> slacks;
  for (std::size_t p = 0; p < design.ports.size(); ++p) {
    if (endpoint_node_[p] == kNoIndex) continue;
    const std::size_t v = endpoint_node_[p];
    EndpointSlack s;
    s.name = design.ports[p].name;
    s.arrival_ps = arrival_ps_[v];
    s.required_ps = design.ports[p].time_ps;
    s.slack_ps =
        arrival_ps_[v] == -kInf ? kInf : s.required_ps - s.arrival_ps;
    slacks.push_back(std::move(s));
  }
  return slacks;
}

double TimingGraph::WorstSlackPs() const {
  double worst = kInf;
  for (const EndpointSlack& s : EndpointSlacks()) {
    worst = std::min(worst, s.slack_ps);
  }
  return worst;
}

}  // namespace msn::sta
