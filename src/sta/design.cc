#include "sta/design.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace msn::sta {

namespace {

[[noreturn]] void FailAt(std::size_t line, const std::string& message) {
  throw ParseError(line, message);
}

const char* DirName(PinDir dir) {
  switch (dir) {
    case PinDir::kIn: return "in";
    case PinDir::kOut: return "out";
    case PinDir::kInOut: return "inout";
  }
  return "?";
}

PinDir ParseDir(const std::string& token, std::size_t line) {
  if (token == "in") return PinDir::kIn;
  if (token == "out") return PinDir::kOut;
  if (token == "inout") return PinDir::kInOut;
  FailAt(line, "unknown pin direction '" + token + "'");
}

/// Names become endpoint tokens, so they must be non-empty and '.'-free
/// (a dot would make `component.pin` ambiguous).
void CheckName(const std::string& name, const char* what,
               std::size_t line) {
  if (name.empty()) FailAt(line, std::string(what) + " name is empty");
  if (name.find('.') != std::string::npos) {
    FailAt(line, std::string(what) + " name '" + name +
                     "' must not contain '.'");
  }
}

}  // namespace

std::size_t DesignComponent::FindPin(const std::string& pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return i;
  }
  return kNoIndex;
}

std::size_t Design::AddComponent(const std::string& name,
                                 std::size_t line) {
  CheckName(name, "component", line);
  if (port_index_.count(name) != 0) {
    FailAt(line, "component '" + name + "' clashes with a port name");
  }
  if (!component_index_.emplace(name, components.size()).second) {
    FailAt(line, "duplicate component '" + name + "'");
  }
  components.push_back(DesignComponent{name, {}, {}, line});
  return components.size() - 1;
}

std::size_t Design::AddPin(std::size_t component, const std::string& name,
                           PinDir dir, std::size_t line) {
  MSN_CHECK(component < components.size());
  CheckName(name, "pin", line);
  DesignComponent& c = components[component];
  if (c.FindPin(name) != kNoIndex) {
    FailAt(line, "duplicate pin '" + c.name + "." + name + "'");
  }
  c.pins.push_back(DesignPin{name, dir, line});
  return c.pins.size() - 1;
}

void Design::AddArc(std::size_t component, const std::string& from,
                    const std::string& to, double delay_ps,
                    std::size_t line) {
  MSN_CHECK(component < components.size());
  DesignComponent& c = components[component];
  const std::size_t f = c.FindPin(from);
  const std::size_t t = c.FindPin(to);
  if (f == kNoIndex) {
    FailAt(line, "arc references unknown pin '" + c.name + "." + from + "'");
  }
  if (t == kNoIndex) {
    FailAt(line, "arc references unknown pin '" + c.name + "." + to + "'");
  }
  if (f == t) FailAt(line, "arc from a pin to itself");
  if (c.pins[f].dir == PinDir::kOut) {
    FailAt(line, "arc must start at an in or inout pin, not '" + c.name +
                     "." + from + "'");
  }
  if (c.pins[t].dir == PinDir::kIn) {
    FailAt(line, "arc must end at an out or inout pin, not '" + c.name +
                     "." + to + "'");
  }
  if (!(delay_ps >= 0.0)) {
    FailAt(line, "arc delay must be non-negative");
  }
  c.arcs.push_back(DesignArc{f, t, delay_ps, line});
}

std::size_t Design::AddInputPort(const std::string& name,
                                 double arrival_ps, std::size_t line) {
  CheckName(name, "port", line);
  if (component_index_.count(name) != 0) {
    FailAt(line, "port '" + name + "' clashes with a component name");
  }
  if (!port_index_.emplace(name, ports.size()).second) {
    FailAt(line, "duplicate port '" + name + "'");
  }
  ports.push_back(DesignPort{name, true, arrival_ps, line});
  return ports.size() - 1;
}

std::size_t Design::AddOutputPort(const std::string& name,
                                  double required_ps, std::size_t line) {
  const std::size_t index = AddInputPort(name, required_ps, line);
  ports[index].is_input = false;
  return index;
}

std::size_t Design::AddNet(const std::string& name,
                           const std::string& msn_path,
                           const std::vector<std::string>& endpoint_tokens,
                           std::size_t line) {
  CheckName(name, "net", line);
  if (msn_path.empty()) FailAt(line, "net '" + name + "' has no .msn path");
  if (endpoint_tokens.size() < 2) {
    FailAt(line, "net '" + name + "' needs at least two endpoints");
  }
  if (!net_index_.emplace(name, nets.size()).second) {
    FailAt(line, "duplicate net '" + name + "'");
  }
  DesignNet net;
  net.name = name;
  net.msn_path = msn_path;
  net.line = line;
  for (const std::string& token : endpoint_tokens) {
    const Endpoint e = ResolveEndpoint(token, line);
    for (const Endpoint& seen : net.endpoints) {
      if (seen == e) {
        FailAt(line, "net '" + name + "' lists endpoint '" + token +
                         "' twice");
      }
    }
    net.endpoints.push_back(e);
  }
  nets.push_back(std::move(net));
  return nets.size() - 1;
}

std::size_t Design::FindComponent(const std::string& name) const {
  const auto it = component_index_.find(name);
  return it == component_index_.end() ? kNoIndex : it->second;
}

std::size_t Design::FindPort(const std::string& name) const {
  const auto it = port_index_.find(name);
  return it == port_index_.end() ? kNoIndex : it->second;
}

Endpoint Design::ResolveEndpoint(const std::string& token,
                                 std::size_t line) const {
  const std::size_t dot = token.find('.');
  if (dot == std::string::npos) {
    const std::size_t port = FindPort(token);
    if (port == kNoIndex) {
      FailAt(line, "endpoint references unknown port '" + token + "'");
    }
    return Endpoint{kNoIndex, port};
  }
  const std::string comp_name = token.substr(0, dot);
  const std::string pin_name = token.substr(dot + 1);
  const std::size_t comp = FindComponent(comp_name);
  if (comp == kNoIndex) {
    FailAt(line,
           "endpoint references unknown component '" + comp_name + "'");
  }
  const std::size_t pin = components[comp].FindPin(pin_name);
  if (pin == kNoIndex) {
    FailAt(line, "endpoint references unknown pin '" + token + "'");
  }
  return Endpoint{comp, pin};
}

std::string Design::EndpointName(const Endpoint& e) const {
  if (e.IsPort()) return ports[e.pin].name;
  return components[e.component].name + "." +
         components[e.component].pins[e.pin].name;
}

void Design::Validate() const {
  // Per-pin net usage: how many nets use the pin as a sink / source
  // endpoint (indexed by component, then pin).
  struct PinUse {
    std::size_t as_sink = 0;
    std::size_t as_source = 0;
  };
  std::vector<std::vector<PinUse>> use(components.size());
  for (std::size_t c = 0; c < components.size(); ++c) {
    use[c].resize(components[c].pins.size());
  }

  for (const DesignNet& net : nets) {
    MSN_CHECK_MSG(net.tree.has_value(),
                  "net '" << net.name << "' has no loaded topology");
    const RcTree& tree = *net.tree;
    std::size_t sources = 0, sinks = 0;
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      const TerminalParams& p = tree.Terminal(t);
      if (p.is_source) ++sources;
      if (p.is_sink) ++sinks;
      const Endpoint& e = net.endpoints[t];
      if (e.IsPort()) continue;
      if (p.is_source) ++use[e.component][e.pin].as_source;
      if (p.is_sink) ++use[e.component][e.pin].as_sink;
    }
    if (sources == 0) {
      FailAt(net.line, "net '" + net.name + "' has no source terminal");
    }
    if (sinks == 0) {
      FailAt(net.line, "net '" + net.name + "' has no sink terminal");
    }
  }

  for (std::size_t c = 0; c < components.size(); ++c) {
    const DesignComponent& comp = components[c];
    // Which pins source an arc / are targeted by an arc.
    std::vector<bool> arc_into(comp.pins.size(), false);
    std::vector<bool> arc_from(comp.pins.size(), false);
    for (const DesignArc& arc : comp.arcs) {
      arc_from[arc.from_pin] = true;
      arc_into[arc.to_pin] = true;
    }
    for (std::size_t p = 0; p < comp.pins.size(); ++p) {
      const DesignPin& pin = comp.pins[p];
      const std::string full = comp.name + "." + pin.name;
      const PinUse& u = use[c][p];
      switch (pin.dir) {
        case PinDir::kIn:
          // An input pin with no net has an undefined arrival; one on
          // several nets has several drivers.
          if (u.as_sink == 0) {
            FailAt(pin.line, "dangling input pin '" + full +
                                 "' (driven by no net)");
          }
          if (u.as_sink > 1) {
            FailAt(pin.line,
                   "input pin '" + full + "' is driven by several nets");
          }
          break;
        case PinDir::kOut:
          // An output pin needs a delay arc to define its arrival; it
          // may fan out to any number of nets (or none).
          if (!arc_into[p]) {
            FailAt(pin.line,
                   "output pin '" + full + "' is driven by no arc");
          }
          break;
        case PinDir::kInOut:
          if (u.as_sink + u.as_source == 0) {
            FailAt(pin.line,
                   "dangling inout pin '" + full + "' (on no net)");
          }
          if (u.as_sink > 1) {
            FailAt(pin.line,
                   "inout pin '" + full + "' is driven by several nets");
          }
          // Driving the net requires an internal path onto the pin;
          // forwarding off the net requires the pin to receive.
          if (u.as_source > 0 && !arc_into[p]) {
            FailAt(pin.line, "inout pin '" + full +
                                 "' drives a net but no arc reaches it");
          }
          if (arc_from[p] && u.as_sink == 0) {
            FailAt(pin.line, "inout pin '" + full +
                                 "' feeds an arc but receives no net");
          }
          break;
      }
    }
  }
}

Design ReadDesign(std::istream& is) {
  Design design;
  bool saw_header = false;
  bool saw_end = false;

  std::string line;
  std::size_t line_no = 0;
  while (!saw_end && std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // Blank or comment-only.

    if (tag == "msn-design") {
      int version = 0;
      if (!(ls >> version) || version != 1) {
        FailAt(line_no, "unsupported msn-design version");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) FailAt(line_no, "missing 'msn-design 1' header");
    if (tag == "component") {
      std::string name;
      if (!(ls >> name)) FailAt(line_no, "malformed component record");
      design.AddComponent(name, line_no);
    } else if (tag == "pin") {
      std::string comp_name, pin_name, dir;
      if (!(ls >> comp_name >> pin_name >> dir)) {
        FailAt(line_no, "malformed pin record");
      }
      const std::size_t comp = design.FindComponent(comp_name);
      if (comp == kNoIndex) {
        FailAt(line_no, "pin references unknown component '" + comp_name +
                            "'");
      }
      design.AddPin(comp, pin_name, ParseDir(dir, line_no), line_no);
    } else if (tag == "arc") {
      std::string comp_name, from, to;
      double delay = 0.0;
      if (!(ls >> comp_name >> from >> to >> delay)) {
        FailAt(line_no, "malformed arc record");
      }
      const std::size_t comp = design.FindComponent(comp_name);
      if (comp == kNoIndex) {
        FailAt(line_no, "arc references unknown component '" + comp_name +
                            "'");
      }
      design.AddArc(comp, from, to, delay, line_no);
    } else if (tag == "input" || tag == "output") {
      std::string name;
      double time_ps = 0.0;
      if (!(ls >> name >> time_ps)) {
        FailAt(line_no, "malformed " + tag + " record");
      }
      if (tag == "input") {
        design.AddInputPort(name, time_ps, line_no);
      } else {
        design.AddOutputPort(name, time_ps, line_no);
      }
    } else if (tag == "net") {
      std::string name, path;
      if (!(ls >> name >> path)) FailAt(line_no, "malformed net record");
      std::vector<std::string> endpoints;
      std::string token;
      while (ls >> token) endpoints.push_back(token);
      design.AddNet(name, path, endpoints, line_no);
    } else if (tag == "end") {
      saw_end = true;
    } else {
      FailAt(line_no, "unknown record '" + tag + "'");
    }
  }
  if (!saw_end) FailAt(0, "missing 'end' record");
  return design;
}

void LoadDesignNets(Design* design, const std::string& base_dir) {
  namespace fs = std::filesystem;
  for (DesignNet& net : design->nets) {
    fs::path path(net.msn_path);
    if (path.is_relative() && !base_dir.empty()) {
      path = fs::path(base_dir) / path;
    }
    std::ifstream in(path);
    if (!in.good()) {
      FailAt(net.line, "net '" + net.name + "' references missing file '" +
                           path.string() + "'");
    }
    RcTree tree(WireParams{});
    try {
      tree = ReadNet(in);
    } catch (const ParseError& e) {
      FailAt(net.line, "net '" + net.name + "' (" + path.string() +
                           "): " + e.what());
    }
    if (tree.NumTerminals() != net.endpoints.size()) {
      FailAt(net.line, "net '" + net.name + "' lists " +
                           std::to_string(net.endpoints.size()) +
                           " endpoints but its topology has " +
                           std::to_string(tree.NumTerminals()) +
                           " terminals");
    }
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      const TerminalParams& p = tree.Terminal(t);
      const Endpoint& e = net.endpoints[t];
      const std::string where = design->EndpointName(e);
      bool source_capable, sink_capable;
      if (e.IsPort()) {
        source_capable = design->ports[e.pin].is_input;
        sink_capable = !design->ports[e.pin].is_input;
      } else {
        const PinDir dir = design->components[e.component].pins[e.pin].dir;
        source_capable = dir != PinDir::kIn;
        sink_capable = dir != PinDir::kOut;
      }
      if (p.is_source && !source_capable) {
        FailAt(net.line, "net '" + net.name + "' terminal " +
                             std::to_string(t) +
                             " is a source but endpoint '" + where +
                             "' cannot drive");
      }
      if (p.is_sink && !sink_capable) {
        FailAt(net.line, "net '" + net.name + "' terminal " +
                             std::to_string(t) +
                             " is a sink but endpoint '" + where +
                             "' cannot receive");
      }
    }
    net.tree = std::move(tree);
  }
}

Design LoadDesign(const std::string& path) {
  std::ifstream in(path);
  MSN_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  Design design = ReadDesign(in);
  LoadDesignNets(&design, std::filesystem::path(path).parent_path());
  design.Validate();
  return design;
}

void WriteDesign(std::ostream& os, const Design& design) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "msn-design 1\n";
  for (const DesignPort& port : design.ports) {
    os << (port.is_input ? "input " : "output ") << port.name << ' '
       << port.time_ps << '\n';
  }
  for (const DesignComponent& comp : design.components) {
    os << "component " << comp.name << '\n';
    for (const DesignPin& pin : comp.pins) {
      os << "pin " << comp.name << ' ' << pin.name << ' '
         << DirName(pin.dir) << '\n';
    }
    for (const DesignArc& arc : comp.arcs) {
      os << "arc " << comp.name << ' ' << comp.pins[arc.from_pin].name
         << ' ' << comp.pins[arc.to_pin].name << ' ' << arc.delay_ps
         << '\n';
    }
  }
  for (const DesignNet& net : design.nets) {
    os << "net " << net.name << ' ' << net.msn_path;
    for (const Endpoint& e : net.endpoints) {
      os << ' ' << design.EndpointName(e);
    }
    os << '\n';
  }
  os << "end\n";
  os.precision(old_precision);
}

}  // namespace msn::sta
