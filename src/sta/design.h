// Multi-net design description — the static-timing layer's input
// (docs/STA.md).
//
// The `.msd` format is a line-oriented, whitespace-separated description
// of a whole design: components with pin-to-pin delay arcs, primary I/O
// constraints, and nets that reference `.msn` routing topologies:
//
//   msn-design 1
//   input <port> <arrival_ps>
//   output <port> <required_ps>
//   component <name>
//   pin <component> <pin> in|out|inout
//   arc <component> <from_pin> <to_pin> <delay_ps>
//   net <name> <file.msn> <endpoint>...
//   end
//
// An endpoint is `component.pin` or a bare port name (names therefore
// must not contain '.').  A net's endpoints map to its `.msn` terminals
// in terminal-ordinal order; the terminal's source/sink roles determine
// signal direction (a multi-source net simply has several source
// terminals).  Declarations must precede use.  Comments start with '#'.
//
// Malformed input throws the same line-numbered msn::ParseError the
// `.msn` reader uses, so one diagnostic style covers both formats.
#ifndef MSN_STA_DESIGN_H
#define MSN_STA_DESIGN_H

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/netfile.h"
#include "rctree/rctree.h"

namespace msn::sta {

/// Sentinel for "no index".
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Direction of a component pin.  `kInOut` models a transceiver pin that
/// both drives and receives its net; the timing graph splits it into a
/// drive node (fed by arcs, feeding the net) and a receive node (fed by
/// the net, feeding arcs) so a bidirectional net is not a false cycle.
enum class PinDir { kIn, kOut, kInOut };

struct DesignPin {
  std::string name;
  PinDir dir = PinDir::kIn;
  std::size_t line = 0;  ///< Declaration line (0 = programmatic).
};

/// A pin-to-pin delay arc inside one component (in/inout -> out/inout).
struct DesignArc {
  std::size_t from_pin = kNoIndex;
  std::size_t to_pin = kNoIndex;
  double delay_ps = 0.0;
  std::size_t line = 0;
};

struct DesignComponent {
  std::string name;
  std::vector<DesignPin> pins;
  std::vector<DesignArc> arcs;
  std::size_t line = 0;

  /// Pin index by name; kNoIndex when absent.
  std::size_t FindPin(const std::string& pin_name) const;
};

/// A primary input (arrival constraint) or output (required constraint).
struct DesignPort {
  std::string name;
  bool is_input = true;
  double time_ps = 0.0;  ///< Arrival for inputs, required for outputs.
  std::size_t line = 0;
};

/// One net endpoint: a component pin or a primary port.
struct Endpoint {
  std::size_t component = kNoIndex;  ///< kNoIndex: `pin` indexes a port.
  std::size_t pin = kNoIndex;

  bool IsPort() const { return component == kNoIndex; }
  bool operator==(const Endpoint&) const = default;
};

struct DesignNet {
  std::string name;
  std::string msn_path;  ///< As written; resolved against the .msd's dir.
  /// One endpoint per `.msn` terminal, in terminal-ordinal order.
  std::vector<Endpoint> endpoints;
  /// The routing topology; loaded by LoadDesignNets.
  std::optional<RcTree> tree;
  std::size_t line = 0;
};

/// The in-memory design.  Built either by the `.msd` parser or
/// programmatically through the Add* mutators (the netgen design
/// generator uses the latter); both paths share the same validation, so
/// a generated design is valid by construction.
struct Design {
  std::vector<DesignComponent> components;
  std::vector<DesignPort> ports;
  std::vector<DesignNet> nets;

  // -- Construction (throws ParseError carrying `line`; 0 = whole file).

  std::size_t AddComponent(const std::string& name, std::size_t line = 0);
  std::size_t AddPin(std::size_t component, const std::string& name,
                     PinDir dir, std::size_t line = 0);
  void AddArc(std::size_t component, const std::string& from,
              const std::string& to, double delay_ps, std::size_t line = 0);
  std::size_t AddInputPort(const std::string& name, double arrival_ps,
                           std::size_t line = 0);
  std::size_t AddOutputPort(const std::string& name, double required_ps,
                            std::size_t line = 0);
  /// Adds a net whose endpoints are given as `.msd` tokens
  /// (`component.pin` or port name); every reference must already be
  /// declared — an unresolved token is the "missing net reference"
  /// diagnostic.
  std::size_t AddNet(const std::string& name, const std::string& msn_path,
                     const std::vector<std::string>& endpoint_tokens,
                     std::size_t line = 0);

  // -- Lookup.

  std::size_t FindComponent(const std::string& name) const;
  std::size_t FindPort(const std::string& name) const;
  /// Resolves an endpoint token; throws ParseError at `line` when the
  /// component, pin, or port does not exist.
  Endpoint ResolveEndpoint(const std::string& token,
                           std::size_t line) const;
  /// Renders an endpoint back to its token form.
  std::string EndpointName(const Endpoint& e) const;

  /// Whole-design validation, run after nets are loaded: terminal/
  /// endpoint role compatibility, dangling input pins (driven by no
  /// net), input pins on several nets, undriven output pins, nets
  /// without a source or sink terminal.  Throws ParseError carrying the
  /// offending declaration's line.
  void Validate() const;

 private:
  std::map<std::string, std::size_t> component_index_;
  std::map<std::string, std::size_t> port_index_;
  std::map<std::string, std::size_t> net_index_;
};

/// Parses a `.msd` stream (text only; net trees stay unloaded).  Throws
/// msn::ParseError with the offending line number on malformed input.
Design ReadDesign(std::istream& is);

/// Loads every net's `.msn` topology (paths resolved relative to
/// `base_dir`) and checks endpoint/terminal compatibility: endpoint
/// count must equal the terminal count, source terminals need
/// source-capable endpoints (out/inout pins, input ports), sink
/// terminals need sink-capable ones.  Throws ParseError at the net's
/// declaration line.
void LoadDesignNets(Design* design, const std::string& base_dir);

/// Read + load + validate, resolving net paths against the `.msd`'s own
/// directory.  Throws CheckError when the file cannot be opened and
/// ParseError on malformed content.
Design LoadDesign(const std::string& path);

/// Writes the design in `.msd` form (net trees are referenced by path,
/// not embedded).  Round-trips through ReadDesign byte-identically.
void WriteDesign(std::ostream& os, const Design& design);

}  // namespace msn::sta

#endif  // MSN_STA_DESIGN_H
