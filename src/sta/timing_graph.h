// Design-wide static timing: topological arrival/required propagation and
// per-net spec derivation over a loaded Design (docs/STA.md).
//
// The graph has one timing node per primary port and per component pin
// (an inout pin becomes two nodes — drive and receive — so a
// bidirectional net never reads as a combinational cycle), and one edge
// per component arc plus one edge per (source terminal, sink terminal)
// pair of every net.  Arc edges carry the component's fixed pin-to-pin
// delay; all of a net's edges share one mutable delay annotation
// (SetNetDelayPs) that the closure loop updates from chosen repeater
// solutions.
//
// Propagate() runs the classic two passes over a topological order fixed
// at construction: arrivals forward (max over incoming edges; primary
// inputs seed their arrival_ps) and required times backward (min over
// outgoing edges; primary outputs seed their required_ps).  Slack is
// required minus arrival; endpoints are the primary-output ports.
//
// NetSpecPs derives the per-net ARD spec the paper's DP consumes:
// min over (source s, sink t) pairs of required(t) - arrival(s).  The
// spec deliberately excludes the net's own delay — arrival is upstream
// of the net and required downstream — so it answers "how slow may this
// net be before some endpoint goes negative".
#ifndef MSN_STA_TIMING_GRAPH_H
#define MSN_STA_TIMING_GRAPH_H

#include <cstddef>
#include <string>
#include <vector>

#include "sta/design.h"

namespace msn::sta {

/// One primary-output endpoint's slack after Propagate().
struct EndpointSlack {
  std::string name;
  double arrival_ps = 0.0;
  double required_ps = 0.0;
  double slack_ps = 0.0;  ///< required - arrival; +inf if unreached.
};

class TimingGraph {
 public:
  /// Builds nodes/edges from a loaded design and fixes the topological
  /// order.  Net delays start at 0; annotate with SetNetDelayPs before
  /// the first Propagate().  Throws ParseError (carrying the line of an
  /// involved arc or net) when the design has a combinational cycle.
  explicit TimingGraph(const Design& design);

  std::size_t NumNodes() const { return node_name_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }
  std::size_t NumNets() const { return net_delay_ps_.size(); }
  const std::string& NodeName(std::size_t node) const {
    return node_name_[node];
  }

  double NetDelayPs(std::size_t net) const { return net_delay_ps_[net]; }
  void SetNetDelayPs(std::size_t net, double delay_ps) {
    net_delay_ps_[net] = delay_ps;
  }

  /// Forward arrival + backward required propagation.  Call after any
  /// SetNetDelayPs change; results are read by the accessors below.
  void Propagate();

  double ArrivalPs(std::size_t node) const { return arrival_ps_[node]; }
  double RequiredPs(std::size_t node) const { return required_ps_[node]; }

  /// The derived ARD spec for `net`: min over (source, sink) terminal
  /// pairs of required(sink) - arrival(source).  +inf when the net is
  /// unconstrained (no finite required downstream or arrival upstream).
  double NetSpecPs(std::size_t net) const;

  /// spec - annotated delay: how much slack the net's current delay
  /// leaves its tightest through-path.
  double NetWorstSlackPs(std::size_t net) const {
    return NetSpecPs(net) - net_delay_ps_[net];
  }

  /// Per-endpoint (primary-output port) slacks, in port declaration
  /// order.
  std::vector<EndpointSlack> EndpointSlacks() const;

  /// min over endpoints of slack; +inf when no endpoint is both reached
  /// and constrained.
  double WorstSlackPs() const;

 private:
  struct Edge {
    std::size_t from = 0;
    std::size_t to = 0;
    /// Fixed arc delay; ignored (net_delay_ps_[net] applies) when
    /// `net != kNoIndex`.
    double delay_ps = 0.0;
    std::size_t net = kNoIndex;
    std::size_t line = 0;  ///< Arc or net declaration line.
  };

  double EdgeDelayPs(const Edge& e) const {
    return e.net == kNoIndex ? e.delay_ps : net_delay_ps_[e.net];
  }

  // Construction-time node numbering (see timing_graph.cc) — resolved
  // drive/receive node of an endpoint.
  std::size_t DriveNode(const Design& design, const Endpoint& e) const;
  std::size_t ReceiveNode(const Design& design, const Endpoint& e) const;

  std::vector<std::string> node_name_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;  ///< Edge indices.
  std::vector<std::vector<std::size_t>> in_edges_;
  std::vector<std::size_t> topo_order_;

  /// First node of each port (one node per port).
  std::vector<std::size_t> port_node_;
  /// Per component: first node of each pin (in/out: one node; inout: the
  /// drive node, receive node is +1).
  std::vector<std::vector<std::size_t>> pin_node_;

  /// Per net: the shared delay annotation and the (source node, sink
  /// node) pairs its edges connect.
  std::vector<double> net_delay_ps_;
  std::vector<std::vector<std::size_t>> net_edge_index_;

  /// Primary-output endpoint node per port index (kNoIndex for inputs).
  std::vector<std::size_t> endpoint_node_;

  std::vector<double> arrival_ps_;
  std::vector<double> required_ps_;

  const Design* design_;
};

}  // namespace msn::sta

#endif  // MSN_STA_TIMING_GRAPH_H
