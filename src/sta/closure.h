// Timing-closure loop: iterate static timing and per-net repeater
// insertion until the design's slack converges (docs/STA.md).
//
// Each iteration propagates arrivals/requireds over the TimingGraph,
// ranks nets by worst slack, and optimizes the most critical ones
// through the runtime batch engine.  A net's DP request (tree + tech +
// options) never changes across iterations — only the *derived spec*
// used to pick a frontier point does — so every net is canonicalized
// once (service::Canonicalize) and its frontier is fetched through a
// service-style solution cache: the DP runs at most once per net per
// process, and a warm --cache-dir makes repeat runs pure cache hits.
//
// Convergence is by construction monotone: a net's annotated delay only
// ever decreases (new = min(old, chosen point's ARD)), so arrivals only
// decrease, requireds only increase, and the per-iteration worst slack
// is non-decreasing — the invariant tests/sta_test.cc asserts.  The
// loop stops when timing is met, when an iteration changes nothing
// while already examining every failing net, or at the iteration cap.
//
// Determinism: cache lookups, insertions, and delay updates happen on
// the calling thread in net-index order, and the batch engine is
// byte-deterministic at any thread count, so WriteClosureReport output
// is byte-identical at any `jobs`.
#ifndef MSN_STA_CLOSURE_H
#define MSN_STA_CLOSURE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/msri.h"
#include "obs/stats.h"
#include "service/cache.h"
#include "sta/design.h"
#include "sta/timing_graph.h"

namespace msn::sta {

struct ClosureOptions {
  /// Worker threads for the per-iteration DP batch (>= 1).  Any value
  /// yields a byte-identical report.
  std::size_t jobs = 1;
  /// Iteration cap (>= 1).
  std::size_t max_iters = 20;
  /// Failing nets optimized per iteration, most critical first
  /// (0 = all).  When an iteration improves nothing, the window doubles
  /// before the loop may declare convergence.
  std::size_t nets_per_iter = 0;
  /// Per-net DP options; stats/trace/executor/set_observer must be
  /// unset (the closure owns instrumentation).  `base.cancel` is
  /// honored both between iterations and inside the batch.
  MsriOptions base;
  /// Solution-cache budget for the per-net frontiers.
  service::CacheConfig cache;
  /// When non-empty, the cache persists to this directory
  /// (service::PersistentCache), so a second run starts warm.
  std::string cache_dir;
};

/// Per-iteration telemetry; `worst_slack_ps` is measured at the start of
/// the iteration and is monotonically non-decreasing across entries.
struct IterationStats {
  double worst_slack_ps = 0.0;
  std::size_t failing_endpoints = 0;
  std::size_t failing_nets = 0;
  std::size_t nets_examined = 0;   ///< Selected this iteration.
  std::size_t nets_optimized = 0;  ///< Delay actually lowered.
  std::uint64_t cache_hits = 0;    ///< Frontier lookups served warm.
  std::uint64_t cache_misses = 0;
  std::uint64_t dp_runs = 0;       ///< DP executions (batch jobs).
};

/// Final per-net account, in design declaration order.
struct NetClosure {
  std::string name;
  double initial_delay_ps = 0.0;  ///< Unoptimized ARD annotation.
  double final_delay_ps = 0.0;
  double spec_ps = 0.0;   ///< Last derived spec (+inf: unconstrained).
  double slack_ps = 0.0;  ///< Final spec - final delay.
  bool optimized = false;  ///< Delay was lowered at least once.
  std::string error;       ///< Contained DP failure, if any.
};

struct ClosureResult {
  std::vector<IterationStats> iterations;
  bool timing_met = false;   ///< Worst slack reached >= 0.
  bool converged = false;    ///< No further improvement possible.
  double final_worst_slack_ps = 0.0;
  std::vector<NetClosure> nets;
  std::vector<EndpointSlack> endpoint_slacks;  ///< Final, port order.
  std::size_t jobs = 1;
  std::size_t max_iters = 0;
  /// Merged DP run stats plus sta.* and service.cache.* instruments.
  obs::RunStats registry;
  service::CacheStats cache;  ///< Final snapshot.
};

/// Runs the closure loop on a loaded design.  Throws CheckError on
/// precondition violations (options carrying instrument hooks, jobs or
/// max_iters of 0, unloaded nets) and CancelledError when
/// `options.base.cancel` fires between iterations; per-net DP failures
/// are contained into NetClosure::error like any batch failure.
ClosureResult CloseTiming(const Design& design, const Technology& tech,
                          const ClosureOptions& options);

/// Deterministic human-readable report: iteration table, per-net and
/// per-endpoint slack tables.  Byte-identical at any `jobs` (no timing,
/// no cache bytes, no thread counts).
void WriteClosureReport(std::ostream& os, const ClosureResult& result);

/// The `msn-sta-stats-v1` JSON document (docs/OBSERVABILITY.md):
/// iteration array, totals, cache counters, final slack histogram, and
/// the embedded msn-run-stats-v1 registry.
void WriteClosureStatsJson(std::ostream& os, const ClosureResult& result,
                           const std::string& design_label);

}  // namespace msn::sta

#endif  // MSN_STA_CLOSURE_H
