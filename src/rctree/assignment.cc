#include "rctree/assignment.h"

#include "common/check.h"

namespace msn {

std::size_t RepeaterAssignment::CountPlaced() const {
  std::size_t count = 0;
  for (const auto& p : placed_) {
    if (p.has_value()) ++count;
  }
  return count;
}

ResolvedRepeater RepeaterAssignment::Resolve(NodeId v,
                                             const Technology& tech) const {
  MSN_CHECK_MSG(placed_[v].has_value(), "no repeater placed at node " << v);
  MSN_CHECK_MSG(placed_[v]->repeater_index < tech.repeaters.size(),
                "repeater index out of library range");
  return ResolvedRepeater{&tech.repeaters[placed_[v]->repeater_index],
                          placed_[v]->a_side_neighbor};
}

double RepeaterAssignment::Cost(const Technology& tech) const {
  double cost = 0.0;
  for (const auto& p : placed_) {
    if (!p.has_value()) continue;
    MSN_CHECK_MSG(p->repeater_index < tech.repeaters.size(),
                  "repeater index out of library range");
    cost += tech.repeaters[p->repeater_index].cost;
  }
  return cost;
}

bool ParityFeasible(const RcTree& tree, const RepeaterAssignment& assignment,
                    const Technology& tech) {
  // DFS accumulating inversion parity; all terminals must end up in the
  // same class.  Start at a terminal: it can never hold a repeater, so
  // "leaving a buffered node flips" is well-defined at every expansion
  // (a buffered node is degree 2 and was entered from its other side).
  std::vector<int> parity(tree.NumNodes(), -1);
  const NodeId start = tree.TerminalNode(0);
  std::vector<NodeId> stack{start};
  parity[start] = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const int flip =
        assignment.Has(v) &&
                tech.repeaters[assignment.At(v)->repeater_index].inverting
            ? 1
            : 0;
    for (const std::size_t ei : tree.AdjacentEdges(v)) {
      const RcEdge& e = tree.Edge(ei);
      const NodeId w = e.a == v ? e.b : e.a;
      if (parity[w] != -1) continue;
      // Crossing node v's repeater happens when we *leave* v, so a child
      // inherits v's parity XOR v's flip.
      parity[w] = parity[v] ^ flip;
      stack.push_back(w);
    }
  }
  int expected = -1;
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    const int p = parity[tree.TerminalNode(t)];
    if (expected == -1) expected = p;
    if (p != expected) return false;
  }
  return true;
}

bool StageLengthFeasible(const RcTree& tree,
                         const RepeaterAssignment& assignment,
                         double max_stage_length_um) {
  if (max_stage_length_um <= 0.0) return true;
  // For every node, the longest unbuffered wire path starting there and
  // heading away from each neighbor; computed by DFS per node (nets are
  // small).  A region's diameter is realized at some node, so checking
  // the two-sided sum at every node covers all regions.
  const std::size_t n = tree.NumNodes();
  for (NodeId v = 0; v < n; ++v) {
    // Longest unbuffered path from v into each incident edge.
    std::vector<double> arm;
    for (const std::size_t ei : tree.AdjacentEdges(v)) {
      const RcEdge& e0 = tree.Edge(ei);
      const NodeId first = e0.a == v ? e0.b : e0.a;
      double best = 0.0;
      // DFS (node, from, length) staying inside the unbuffered region.
      std::vector<std::pair<std::pair<NodeId, NodeId>, double>> stack{
          {{first, v}, e0.length_um}};
      while (!stack.empty()) {
        const auto [nodes, len] = stack.back();
        stack.pop_back();
        const auto [w, from] = nodes;
        best = std::max(best, len);
        if (assignment.Has(w)) continue;  // Region boundary.
        for (const std::size_t ej : tree.AdjacentEdges(w)) {
          const RcEdge& e = tree.Edge(ej);
          const NodeId next = e.a == w ? e.b : e.a;
          if (next == from) continue;
          stack.push_back({{next, w}, len + e.length_um});
        }
      }
      arm.push_back(best);
    }
    if (assignment.Has(v)) {
      // Regions end at v: each arm is a span on its own.
      for (const double a : arm) {
        if (a > max_stage_length_um) return false;
      }
      continue;
    }
    // Largest and second-largest arms meet at v.
    double first = 0.0, second = 0.0;
    for (const double a : arm) {
      if (a > first) {
        second = first;
        first = a;
      } else if (a > second) {
        second = a;
      }
    }
    if (first + second > max_stage_length_um) return false;
  }
  return true;
}

double DriverAssignment::Cost(const RcTree& tree) const {
  MSN_CHECK_MSG(choice_.size() == tree.NumTerminals(),
                "driver assignment size mismatch");
  double cost = 0.0;
  for (std::size_t t = 0; t < choice_.size(); ++t) {
    cost += choice_[t] ? choice_[t]->cost : tree.Terminal(t).driver.cost;
  }
  return cost;
}

}  // namespace msn
