#include "rctree/rctree.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace msn {
namespace {

/// Position at fraction `t` ∈ [0,1] along the L-shaped (x-then-y) embedding
/// of the segment a→b.  Used only for rendering and reporting.
Point LShapePosition(const Point& a, const Point& b, double t) {
  const double dx = static_cast<double>(b.x - a.x);
  const double dy = static_cast<double>(b.y - a.y);
  const double total = std::fabs(dx) + std::fabs(dy);
  if (total == 0.0) return a;
  const double dist = t * total;
  if (dist <= std::fabs(dx)) {
    const double step = dx >= 0 ? dist : -dist;
    return Point{a.x + static_cast<std::int64_t>(std::llround(step)), a.y};
  }
  const double rest = dist - std::fabs(dx);
  const double step = dy >= 0 ? rest : -rest;
  return Point{b.x, a.y + static_cast<std::int64_t>(std::llround(step))};
}

}  // namespace

NodeId RcTree::AddNode(NodeKind kind, Point pos) {
  MSN_CHECK_MSG(kind != NodeKind::kTerminal,
                "use AddTerminal for terminal nodes");
  nodes_.push_back(RcNode{kind, static_cast<std::size_t>(-1), pos});
  adj_.emplace_back();
  if (kind == NodeKind::kInsertion) insertion_points_.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

NodeId RcTree::AddTerminal(const TerminalParams& params, Point pos) {
  nodes_.push_back(RcNode{NodeKind::kTerminal, terminals_.size(), pos});
  adj_.emplace_back();
  terminals_.push_back(params);
  terminal_node_.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

std::size_t RcTree::AddEdge(NodeId a, NodeId b, double length_um) {
  MSN_CHECK_MSG(a < nodes_.size() && b < nodes_.size() && a != b,
                "bad edge endpoints");
  MSN_CHECK_MSG(length_um >= 0.0, "negative wire length");
  RcEdge e;
  e.a = a;
  e.b = b;
  e.length_um = length_um;
  e.res = length_um * wire_.res_per_um;
  e.cap = length_um * wire_.cap_per_um;
  edges_.push_back(e);
  adj_[a].push_back(edges_.size() - 1);
  adj_[b].push_back(edges_.size() - 1);
  return edges_.size() - 1;
}

RcTree RcTree::FromSteinerTree(const SteinerTree& tree,
                               const WireParams& wire,
                               std::vector<TerminalParams> terminals) {
  tree.Validate();
  MSN_CHECK_MSG(terminals.size() == tree.num_terminals,
                "terminal parameter count ("
                    << terminals.size() << ") must match Steiner terminals ("
                    << tree.num_terminals << ")");

  RcTree rc(wire);
  const std::vector<std::size_t> deg = tree.Degrees();

  // All terminals first, in input order, so ordinals match the caller's.
  std::vector<NodeId> terminal_node(tree.num_terminals);
  for (std::size_t i = 0; i < tree.num_terminals; ++i) {
    terminal_node[i] = rc.AddTerminal(terminals[i], tree.points[i]);
  }
  // node_of[i]: the node carrying Steiner-tree point i's connectivity.  A
  // non-leaf terminal keeps its branching on a coincident Steiner node and
  // hangs off it by a zero-length stub.
  std::vector<NodeId> node_of(tree.points.size());
  for (std::size_t i = 0; i < tree.points.size(); ++i) {
    if (tree.IsTerminal(i) && deg[i] <= 1) {
      node_of[i] = terminal_node[i];
    } else if (tree.IsTerminal(i)) {
      node_of[i] = rc.AddNode(NodeKind::kSteiner, tree.points[i]);
      rc.AddEdge(node_of[i], terminal_node[i], 0.0);
    } else {
      node_of[i] = rc.AddNode(NodeKind::kSteiner, tree.points[i]);
    }
  }
  for (const SteinerEdge& e : tree.edges) {
    rc.AddEdge(node_of[e.a], node_of[e.b],
               static_cast<double>(tree.EdgeLength(e)));
  }
  rc.Validate();
  return rc;
}

void RcTree::AddInsertionPoints(double max_spacing_um,
                                bool at_least_one_per_wire) {
  MSN_CHECK_MSG(max_spacing_um > 0.0, "insertion spacing must be positive");
  MSN_CHECK_MSG(insertion_points_.empty(),
                "AddInsertionPoints may only be called once");

  const std::vector<RcEdge> original = std::move(edges_);
  edges_.clear();
  for (auto& a : adj_) a.clear();

  for (const RcEdge& e : original) {
    std::size_t count = 0;
    if (e.length_um > 0.0) {
      // Split into count+1 equal pieces, each at most max_spacing_um.
      count = static_cast<std::size_t>(
          std::ceil(e.length_um / max_spacing_um)) - 1;
    }
    if (at_least_one_per_wire && count == 0) count = 1;

    NodeId prev = e.a;
    const double piece = e.length_um / static_cast<double>(count + 1);
    for (std::size_t k = 1; k <= count; ++k) {
      const double t =
          static_cast<double>(k) / static_cast<double>(count + 1);
      const NodeId ip = AddNode(
          NodeKind::kInsertion,
          LShapePosition(nodes_[e.a].pos, nodes_[e.b].pos, t));
      AddEdge(prev, ip, piece);
      prev = ip;
    }
    AddEdge(prev, e.b, piece);
  }
}

RcTree RcTree::WithWireWidths(const std::vector<double>& widths) const {
  MSN_CHECK_MSG(widths.size() == edges_.size(),
                "width vector sized " << widths.size() << ", tree has "
                                      << edges_.size() << " edges");
  RcTree scaled = *this;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    MSN_CHECK_MSG(widths[e] >= 1.0, "wire width factor below minimum");
    scaled.edges_[e].res /= widths[e];
    scaled.edges_[e].cap *= widths[e];
  }
  return scaled;
}

double RcTree::TotalLengthUm() const {
  double total = 0.0;
  for (const RcEdge& e : edges_) total += e.length_um;
  return total;
}

void RcTree::Validate() const {
  MSN_CHECK_MSG(!nodes_.empty(), "empty RcTree");
  MSN_CHECK_MSG(edges_.size() + 1 == nodes_.size(),
                "RcTree must be a tree: |E| = |V| - 1");
  // Acyclicity/connectivity via union-find.
  std::vector<NodeId> parent(nodes_.size());
  std::iota(parent.begin(), parent.end(), NodeId{0});
  auto find = [&parent](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const RcEdge& e : edges_) {
    const NodeId ra = find(e.a);
    const NodeId rb = find(e.b);
    MSN_CHECK_MSG(ra != rb, "cycle in RcTree");
    parent[ra] = rb;
  }
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    switch (nodes_[v].kind) {
      case NodeKind::kTerminal:
        MSN_CHECK_MSG(Degree(v) <= 1,
                      "terminal node " << v << " must be a leaf");
        MSN_CHECK_MSG(nodes_[v].terminal_index < terminals_.size(),
                      "terminal node with bad ordinal");
        break;
      case NodeKind::kInsertion:
        MSN_CHECK_MSG(Degree(v) == 2,
                      "insertion point " << v << " must have degree 2");
        break;
      case NodeKind::kSteiner:
        break;
    }
  }
  for (std::size_t t = 0; t < terminals_.size(); ++t) {
    MSN_CHECK_MSG(terminal_node_[t] < nodes_.size() &&
                      nodes_[terminal_node_[t]].terminal_index == t,
                  "terminal_node_ mapping corrupt");
  }
}

}  // namespace msn
