// The electrical routing-tree substrate.
//
// An RcTree is a rectilinear routing tree annotated with wire parasitics,
// terminal electrical parameters, and degree-2 candidate repeater insertion
// points (paper Section II).  Structural conventions enforced by Validate():
//   * terminals are leaves (FromSteinerTree adds zero-length stubs for
//     non-leaf terminals, as the paper's Section III suggests);
//   * insertion points have degree exactly two (paper footnote 6);
//   * the edge set forms a tree.
#ifndef MSN_RCTREE_RCTREE_H
#define MSN_RCTREE_RCTREE_H

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "steiner/topology.h"
#include "tech/tech.h"

namespace msn {

/// Role of a node in the routing tree.
enum class NodeKind {
  kTerminal,   ///< A net terminal (leaf); may source and/or sink.
  kSteiner,    ///< A branch or structural point, no pin.
  kInsertion,  ///< A degree-2 candidate repeater insertion point.
};

/// Index type for nodes within an RcTree.
using NodeId = std::size_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct RcNode {
  NodeKind kind = NodeKind::kSteiner;
  /// Terminal ordinal (index into Terminals()) if kind == kTerminal.
  std::size_t terminal_index = static_cast<std::size_t>(-1);
  Point pos;  ///< Plane location (rendering + insertion-point placement).
};

/// Undirected wire segment between nodes `a` and `b`.
struct RcEdge {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double length_um = 0.0;
  double res = 0.0;  ///< Total segment resistance, Ω.
  double cap = 0.0;  ///< Total segment capacitance, pF.
};

class RcTree {
 public:
  /// Builds an RcTree from a geometric Steiner tree.  `terminals` supplies
  /// one TerminalParams per Steiner-tree terminal, in the same order.
  /// Non-leaf terminals are split: the branch stays as a Steiner node and
  /// the terminal hangs off it by a zero-length edge.
  static RcTree FromSteinerTree(const SteinerTree& tree,
                                const WireParams& wire,
                                std::vector<TerminalParams> terminals);

  /// Subdivides every wire segment with insertion points such that
  /// consecutive candidate points are at most `max_spacing_um` apart and —
  /// when `at_least_one_per_wire` (paper footnote 14) — every original
  /// segment carries at least one point.  Call once, before rooting.
  void AddInsertionPoints(double max_spacing_um,
                          bool at_least_one_per_wire = true);

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }
  std::size_t NumTerminals() const { return terminals_.size(); }

  const RcNode& Node(NodeId id) const { return nodes_[id]; }
  const RcEdge& Edge(std::size_t e) const { return edges_[e]; }
  const std::vector<RcEdge>& Edges() const { return edges_; }

  /// Edge indices incident to `id`.
  const std::vector<std::size_t>& AdjacentEdges(NodeId id) const {
    return adj_[id];
  }
  std::size_t Degree(NodeId id) const { return adj_[id].size(); }

  /// Node carrying terminal ordinal `t`.
  NodeId TerminalNode(std::size_t t) const { return terminal_node_[t]; }
  const TerminalParams& Terminal(std::size_t t) const {
    return terminals_[t];
  }
  TerminalParams& MutableTerminal(std::size_t t) { return terminals_[t]; }
  const std::vector<TerminalParams>& Terminals() const { return terminals_; }

  /// All insertion-point node ids, in creation order.
  const std::vector<NodeId>& InsertionPoints() const {
    return insertion_points_;
  }

  const WireParams& Wire() const { return wire_; }

  /// Total wirelength in µm.
  double TotalLengthUm() const;

  /// Copy of this tree with edge `e` driven at `widths[e]` times minimum
  /// width: resistance divides by the factor, capacitance multiplies
  /// (classic wire-sizing model).  `widths` is indexed like Edges() and
  /// every factor must be >= 1 (checked).  Used to verify wire-sizing
  /// solutions with the unmodified ARD engines.
  RcTree WithWireWidths(const std::vector<double>& widths) const;

  /// Throws msn::CheckError if structural conventions are violated.
  void Validate() const;

  // -- Low-level construction API (used by tests and hand-built nets). ----

  /// Appends a node; returns its id.  Terminal nodes must be added through
  /// AddTerminal.
  NodeId AddNode(NodeKind kind, Point pos = {});

  /// Appends a terminal node with parameters `params`; returns its id.
  NodeId AddTerminal(const TerminalParams& params, Point pos = {});

  /// Connects `a` and `b` with a wire of `length_um`; parasitics derive
  /// from the wire parameters given at construction.
  std::size_t AddEdge(NodeId a, NodeId b, double length_um);

  /// Creates an empty tree with the given wire parameters.
  explicit RcTree(const WireParams& wire) : wire_(wire) {}

 private:
  std::vector<RcNode> nodes_;
  std::vector<RcEdge> edges_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<TerminalParams> terminals_;
  std::vector<NodeId> terminal_node_;
  std::vector<NodeId> insertion_points_;
  WireParams wire_;
};

}  // namespace msn

#endif  // MSN_RCTREE_RCTREE_H
