// Rooted (oriented) view of an RcTree.
//
// Both the linear-time ARD algorithm (paper Section III) and the repeater
// insertion DP (Section IV) operate on the tree re-oriented with respect to
// an arbitrary root; the paper roots at a terminal for the DP.  The rooted
// view precomputes parent pointers, per-node parent-edge parasitics, child
// lists and a topological (preorder) sequence so algorithms can run
// iteratively without recursion.
#ifndef MSN_RCTREE_ROOTED_H
#define MSN_RCTREE_ROOTED_H

#include <vector>

#include "rctree/rctree.h"

namespace msn {

class RootedTree {
 public:
  /// Orients `tree` away from `root`.  The RcTree must outlive this view.
  RootedTree(const RcTree& tree, NodeId root);

  const RcTree& Tree() const { return *tree_; }
  NodeId Root() const { return root_; }

  NodeId Parent(NodeId v) const { return parent_[v]; }
  const std::vector<NodeId>& Children(NodeId v) const { return children_[v]; }

  /// Resistance/capacitance/length of the edge (Parent(v), v).
  /// Zero for the root.
  double ParentRes(NodeId v) const { return parent_res_[v]; }
  double ParentCap(NodeId v) const { return parent_cap_[v]; }
  double ParentLengthUm(NodeId v) const { return parent_len_[v]; }
  /// Index (into Tree().Edges()) of the edge (Parent(v), v); undefined
  /// for the root.
  std::size_t ParentEdgeIndex(NodeId v) const { return parent_edge_[v]; }

  /// Nodes in preorder (root first); reverse iteration is a valid
  /// bottom-up (children before parents) order.
  const std::vector<NodeId>& Preorder() const { return preorder_; }

  bool IsLeaf(NodeId v) const { return children_[v].empty(); }

 private:
  const RcTree* tree_;
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<double> parent_res_;
  std::vector<double> parent_cap_;
  std::vector<double> parent_len_;
  std::vector<std::size_t> parent_edge_;
  std::vector<NodeId> preorder_;
};

}  // namespace msn

#endif  // MSN_RCTREE_ROOTED_H
