#include "rctree/rooted.h"

#include "common/check.h"

namespace msn {

RootedTree::RootedTree(const RcTree& tree, NodeId root)
    : tree_(&tree),
      root_(root),
      parent_(tree.NumNodes(), kNoNode),
      children_(tree.NumNodes()),
      parent_res_(tree.NumNodes(), 0.0),
      parent_cap_(tree.NumNodes(), 0.0),
      parent_len_(tree.NumNodes(), 0.0),
      parent_edge_(tree.NumNodes(), static_cast<std::size_t>(-1)) {
  MSN_CHECK_MSG(root < tree.NumNodes(), "root out of range");
  preorder_.reserve(tree.NumNodes());

  // Iterative DFS from the root.
  std::vector<NodeId> stack{root};
  std::vector<bool> visited(tree.NumNodes(), false);
  visited[root] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    preorder_.push_back(v);
    for (std::size_t ei : tree.AdjacentEdges(v)) {
      const RcEdge& e = tree.Edge(ei);
      const NodeId w = e.a == v ? e.b : e.a;
      if (visited[w]) continue;
      visited[w] = true;
      parent_[w] = v;
      parent_res_[w] = e.res;
      parent_cap_[w] = e.cap;
      parent_len_[w] = e.length_um;
      parent_edge_[w] = ei;
      children_[v].push_back(w);
      stack.push_back(w);
    }
  }
  MSN_CHECK_MSG(preorder_.size() == tree.NumNodes(),
                "tree is disconnected; rooted traversal reached "
                    << preorder_.size() << " of " << tree.NumNodes()
                    << " nodes");
}

}  // namespace msn
