// Repeater and driver-sizing assignments over an RcTree.
//
// A RepeaterAssignment maps insertion-point nodes to (library repeater,
// orientation) pairs; a DriverAssignment maps terminals to TerminalOptions.
// Together they fully determine the electrical state the ARD engines
// evaluate, and they are what the MSRI dynamic program outputs.
#ifndef MSN_RCTREE_ASSIGNMENT_H
#define MSN_RCTREE_ASSIGNMENT_H

#include <optional>
#include <vector>

#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// A repeater placed at an insertion point.
///
/// Orientation is stored rooting-independently: `a_side_neighbor` is the
/// neighbor node the repeater's A-side faces (an insertion point has
/// exactly two neighbors).  Algorithms that orient the tree convert
/// to/from RepeaterOrientation via the rooted parent pointer.
struct PlacedRepeater {
  std::size_t repeater_index = 0;  ///< Index into the Technology library.
  NodeId a_side_neighbor = kNoNode;

  friend bool operator==(const PlacedRepeater&,
                         const PlacedRepeater&) = default;
};

/// View of a placed repeater resolved against the library, exposing
/// direction-of-travel accessors keyed by the neighbor the signal comes
/// from or goes to.
struct ResolvedRepeater {
  const Repeater* repeater = nullptr;
  NodeId a_side_neighbor = kNoNode;

  /// Input capacitance presented to the wire on the side facing `n`.
  double CapToward(NodeId n) const {
    return n == a_side_neighbor ? repeater->cap_a : repeater->cap_b;
  }
  /// Intrinsic delay for a signal entering from the side facing `from`.
  double IntrinsicFrom(NodeId from) const {
    return from == a_side_neighbor ? repeater->intrinsic_ab
                                   : repeater->intrinsic_ba;
  }
  /// Output resistance for a signal entering from the side facing `from`.
  double ResFrom(NodeId from) const {
    return from == a_side_neighbor ? repeater->res_ab : repeater->res_ba;
  }
};

/// Sparse map node -> placed repeater (empty everywhere by default).
class RepeaterAssignment {
 public:
  /// Empty assignment over zero nodes (placeholder; resize by copy).
  RepeaterAssignment() = default;

  explicit RepeaterAssignment(std::size_t num_nodes)
      : placed_(num_nodes) {}

  /// Places `r` at node `v`; `v` must be an insertion point in the tree
  /// the assignment is later evaluated on (checked by the engines).
  void Place(NodeId v, PlacedRepeater r) { placed_[v] = r; }
  void Remove(NodeId v) { placed_[v].reset(); }

  const std::optional<PlacedRepeater>& At(NodeId v) const {
    return placed_[v];
  }
  bool Has(NodeId v) const { return placed_[v].has_value(); }

  /// Resolves the repeater at `v` against `tech`'s library; `v` must hold
  /// a repeater.
  ResolvedRepeater Resolve(NodeId v, const Technology& tech) const;

  std::size_t NumNodes() const { return placed_.size(); }
  std::size_t CountPlaced() const;

  /// Total cost of the placed repeaters under `tech`'s library.
  double Cost(const Technology& tech) const;

  friend bool operator==(const RepeaterAssignment&,
                         const RepeaterAssignment&) = default;

 private:
  std::vector<std::optional<PlacedRepeater>> placed_;
};

/// True iff every source-to-sink terminal pair crosses an even number of
/// inverting repeaters under `assignment` — the feasibility condition of
/// the paper's Section V inverter extension.  (Equivalently: all terminals
/// share one polarity parity relative to an arbitrary root.)
bool ParityFeasible(const RcTree& tree, const RepeaterAssignment& assignment,
                    const Technology& tech);

/// True iff every maximal unbuffered region of `tree` under `assignment`
/// has wire diameter (longest wirelength path not crossing a repeater) at
/// most `max_stage_length_um` — the slew-control feasibility the MSRI
/// option of the same name enforces.
bool StageLengthFeasible(const RcTree& tree,
                         const RepeaterAssignment& assignment,
                         double max_stage_length_um);

/// Per-terminal driver-sizing choices; a terminal without a choice uses its
/// TerminalParams default realization.
class DriverAssignment {
 public:
  /// Empty assignment over zero terminals (placeholder; resize by copy).
  DriverAssignment() = default;

  explicit DriverAssignment(std::size_t num_terminals)
      : choice_(num_terminals) {}

  void Choose(std::size_t terminal, TerminalOption opt) {
    choice_[terminal] = std::move(opt);
  }

  const std::optional<TerminalOption>& At(std::size_t terminal) const {
    return choice_[terminal];
  }

  std::size_t NumTerminals() const { return choice_.size(); }

  /// Resolved electricals for terminal `t` of `tree`.
  EffectiveTerminal Resolve(const RcTree& tree, std::size_t t) const {
    const TerminalParams& p = tree.Terminal(t);
    return choice_[t] ? ResolveTerminal(p, *choice_[t]) : ResolveTerminal(p);
  }

  /// Total cost of the chosen options; unchosen terminals contribute their
  /// default realization's cost.
  double Cost(const RcTree& tree) const;

 private:
  std::vector<std::optional<TerminalOption>> choice_;
};

}  // namespace msn

#endif  // MSN_RCTREE_ASSIGNMENT_H
