// Greedy local-optimization baseline for repeater insertion.
//
// In the spirit of the prior art the paper positions itself against
// ([24] Tsai, Kao, Cheng: heuristic bus buffer insertion via local
// optimization): starting from the unbuffered net, repeatedly apply the
// single move — add, remove, reorient or swap one repeater at one
// insertion point — that most reduces the ARD, until no move helps.
// Each candidate move is evaluated with the linear-time ARD engine, so
// one pass costs O(#ips · |library| · n).
//
// The DP (RunMsri) is provably optimal; this baseline quantifies how much
// a practical heuristic leaves on the table (bench_heuristic) and serves
// as an independent upper bound in tests.
#ifndef MSN_BASELINE_GREEDY_H
#define MSN_BASELINE_GREEDY_H

#include <vector>

#include "core/msri.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct GreedyResult {
  /// Trajectory of accepted moves: ARD after 0, 1, 2, ... moves.
  std::vector<double> ard_trajectory_ps;
  /// Final local optimum.
  TradeoffPoint best;
  std::size_t moves_evaluated = 0;
};

/// Runs greedy descent on `tree` with `tech`'s repeater library.
/// Inverting repeaters are supported (parity-infeasible intermediate
/// states are skipped).
GreedyResult GreedyMsri(const RcTree& tree, const Technology& tech);

}  // namespace msn

#endif  // MSN_BASELINE_GREEDY_H
