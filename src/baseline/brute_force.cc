#include "baseline/brute_force.h"

#include <algorithm>

#include "common/check.h"
#include "common/numeric.h"
#include "core/ard.h"
#include "core/msri.h"
#include "core/pareto.h"

namespace msn {
namespace {

/// One choice at an insertion point: no repeater, or (library index,
/// A-side neighbor).
struct IpChoice {
  bool place = false;
  std::size_t repeater_index = 0;
  NodeId a_side_neighbor = kNoNode;
};

std::vector<IpChoice> ChoicesForInsertionPoint(const RcTree& tree,
                                               const Technology& tech,
                                               NodeId ip) {
  std::vector<IpChoice> choices{IpChoice{}};  // "no repeater".
  const auto& adj = tree.AdjacentEdges(ip);
  MSN_CHECK_MSG(adj.size() == 2, "insertion point must have degree 2");
  const RcEdge& e0 = tree.Edge(adj[0]);
  const NodeId n0 = e0.a == ip ? e0.b : e0.a;
  const RcEdge& e1 = tree.Edge(adj[1]);
  const NodeId n1 = e1.a == ip ? e1.b : e1.a;
  for (std::size_t ri = 0; ri < tech.repeaters.size(); ++ri) {
    choices.push_back(IpChoice{true, ri, n0});
    if (!tech.repeaters[ri].Symmetric()) {
      choices.push_back(IpChoice{true, ri, n1});
    }
  }
  return choices;
}

}  // namespace

BruteForceResult BruteForceMsri(const RcTree& tree, const Technology& tech,
                                const BruteForceOptions& options) {
  tree.Validate();
  const std::vector<NodeId>& ips = tree.InsertionPoints();

  std::vector<std::vector<IpChoice>> ip_choices;
  if (options.insert_repeaters) {
    ip_choices.reserve(ips.size());
    for (const NodeId ip : ips) {
      ip_choices.push_back(ChoicesForInsertionPoint(tree, tech, ip));
    }
  }
  const std::size_t driver_choices =
      options.size_drivers ? options.sizing_library.size() : 1;
  MSN_CHECK_MSG(!options.size_drivers || driver_choices > 0,
                "size_drivers set with empty sizing_library");
  const std::size_t width_choices =
      options.size_wires ? options.wire_width_choices.size() : 1;
  MSN_CHECK_MSG(!options.size_wires || width_choices > 0,
                "size_wires set with empty wire_width_choices");

  // Total combination count, with overflow-safe limit checking.
  double total = 1.0;
  for (const auto& c : ip_choices) total *= static_cast<double>(c.size());
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    total *= static_cast<double>(driver_choices);
  }
  for (std::size_t e = 0; options.size_wires && e < tree.NumEdges(); ++e) {
    total *= static_cast<double>(width_choices);
  }
  MSN_CHECK_MSG(total <= static_cast<double>(options.max_combinations),
                "brute force would enumerate " << total
                    << " assignments; limit is "
                    << options.max_combinations);

  // Odometer over insertion-point, terminal, then wire-width choices.
  std::vector<std::size_t> ip_idx(ip_choices.size(), 0);
  std::vector<std::size_t> drv_idx(tree.NumTerminals(), 0);
  std::vector<std::size_t> wid_idx(options.size_wires ? tree.NumEdges() : 0,
                                   0);

  BruteForceResult result;
  std::vector<TradeoffPoint> all;

  bool done = false;
  while (!done) {
    RepeaterAssignment repeaters(tree.NumNodes());
    double cost = 0.0;
    for (std::size_t i = 0; i < ip_choices.size(); ++i) {
      const IpChoice& c = ip_choices[i][ip_idx[i]];
      if (c.place) {
        repeaters.Place(ips[i],
                        PlacedRepeater{c.repeater_index, c.a_side_neighbor});
        cost += tech.repeaters[c.repeater_index].cost;
      }
    }
    DriverAssignment drivers(tree.NumTerminals());
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      if (options.size_drivers) {
        drivers.Choose(t, options.sizing_library[drv_idx[t]]);
        cost += options.sizing_library[drv_idx[t]].cost;
      } else {
        cost += tree.Terminal(t).driver.cost;
      }
    }

    std::vector<double> widths;
    if (options.size_wires) {
      widths.reserve(tree.NumEdges());
      for (std::size_t e = 0; e < tree.NumEdges(); ++e) {
        const double w = options.wire_width_choices[wid_idx[e]];
        widths.push_back(w);
        cost += WireAreaCost(options.wire_area_cost_per_um,
                             tree.Edge(e).length_um, w,
                             options.wire_cost_quantum);
      }
    }

    ++result.enumerated;
    // The inverter extension: assignments delivering inverted polarity to
    // some source/sink pair are infeasible.
    if (ParityFeasible(tree, repeaters, tech) &&
        StageLengthFeasible(tree, repeaters,
                            options.max_stage_length_um)) {
      const ArdResult ard =
          options.size_wires
              ? ComputeArd(tree.WithWireWidths(widths), repeaters, drivers,
                           tech)
              : ComputeArd(tree, repeaters, drivers, tech);
      all.push_back(TradeoffPoint{cost, ard.ard_ps, repeaters, drivers,
                                  repeaters.CountPlaced(),
                                  std::move(widths)});
    }

    // Advance the odometer.
    done = true;
    for (std::size_t i = 0; i < ip_idx.size(); ++i) {
      if (++ip_idx[i] < ip_choices[i].size()) {
        done = false;
        break;
      }
      ip_idx[i] = 0;
    }
    if (done) {
      for (std::size_t t = 0; t < drv_idx.size(); ++t) {
        if (++drv_idx[t] < driver_choices) {
          done = false;
          break;
        }
        drv_idx[t] = 0;
      }
    }
    if (done) {
      for (std::size_t e = 0; e < wid_idx.size(); ++e) {
        if (++wid_idx[e] < width_choices) {
          done = false;
          break;
        }
        wid_idx[e] = 0;
      }
    }
  }

  result.pareto = ParetoByCostDelay(
      std::move(all), [](const TradeoffPoint& p) { return p.cost; },
      [](const TradeoffPoint& p) { return p.ard_ps; });
  return result;
}

}  // namespace msn
