#include "baseline/van_ginneken.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/numeric.h"
#include "core/pareto.h"
#include "rctree/rooted.h"

namespace msn {
namespace {

/// A van Ginneken subsolution: scalar triple plus provenance.
struct VgSolution {
  double cost = 0.0;
  double cap = 0.0;
  double delay = -kInf;  ///< Max augmented delay to a sink below.
  int parity = 0;  ///< Inversion parity of sinks below (inverter ext.).

  enum class Kind { kLeaf, kAugment, kJoin, kBuffer } kind = Kind::kLeaf;
  NodeId node = kNoNode;
  std::size_t repeater_index = 0;
  RepeaterOrientation orientation = RepeaterOrientation::kASideUp;
  std::shared_ptr<const VgSolution> pred1, pred2;
};

using VgPtr = std::shared_ptr<VgSolution>;
using VgSet = std::vector<VgPtr>;

/// 3-D dominance prune: keep s unless another has cost<=, cap<=, delay<=.
VgSet Prune(VgSet set) {
  std::sort(set.begin(), set.end(), [](const VgPtr& a, const VgPtr& b) {
    if (a->cost != b->cost) return a->cost < b->cost;
    if (a->cap != b->cap) return a->cap < b->cap;
    return a->delay < b->delay;
  });
  VgSet out;
  for (VgPtr& s : set) {
    bool dominated = false;
    for (const VgPtr& k : out) {
      if (k->parity == s->parity && k->cost <= s->cost + kEps &&
          k->cap <= s->cap + kEps && k->delay <= s->delay + kEps) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(std::move(s));
  }
  return out;
}

struct Context {
  const RcTree& tree;
  const RootedTree& rooted;
  const Technology& tech;
};

VgSet Solve(Context& ctx, NodeId v) {
  const RcNode& node = ctx.tree.Node(v);
  VgSet set;
  if (ctx.rooted.IsLeaf(v)) {
    MSN_CHECK_MSG(node.kind == NodeKind::kTerminal,
                  "non-terminal leaf in van Ginneken traversal");
    const EffectiveTerminal eff =
        ResolveTerminal(ctx.tree.Terminal(node.terminal_index));
    auto s = std::make_shared<VgSolution>();
    s->cost = ctx.tree.Terminal(node.terminal_index).driver.cost;
    s->cap = eff.pin_cap;
    s->delay = eff.is_sink ? eff.downstream_ps : -kInf;
    s->kind = VgSolution::Kind::kLeaf;
    s->node = v;
    set.push_back(std::move(s));
  } else {
    // Children solutions, each augmented through its parent edge, joined.
    bool first = true;
    for (const NodeId c : ctx.rooted.Children(v)) {
      VgSet below = Solve(ctx, c);
      VgSet augmented;
      augmented.reserve(below.size());
      const double re = ctx.rooted.ParentRes(c);
      const double ce = ctx.rooted.ParentCap(c);
      for (const VgPtr& s : below) {
        auto a = std::make_shared<VgSolution>();
        a->cost = s->cost;
        a->cap = s->cap + ce;
        a->delay = re * (ce / 2.0 + s->cap) + s->delay;
        a->parity = s->parity;
        a->kind = VgSolution::Kind::kAugment;
        a->node = c;
        a->pred1 = s;
        augmented.push_back(std::move(a));
      }
      if (first) {
        set = std::move(augmented);
        first = false;
        continue;
      }
      VgSet joined;
      joined.reserve(set.size() * augmented.size());
      for (const VgPtr& s1 : set) {
        for (const VgPtr& s2 : augmented) {
          if (s1->parity != s2->parity) continue;
          auto j = std::make_shared<VgSolution>();
          j->cost = s1->cost + s2->cost;
          j->cap = s1->cap + s2->cap;
          j->delay = std::max(s1->delay, s2->delay);
          j->parity = s1->parity;
          j->kind = VgSolution::Kind::kJoin;
          j->node = v;
          j->pred1 = s1;
          j->pred2 = s2;
          joined.push_back(std::move(j));
        }
      }
      set = Prune(std::move(joined));
    }
    if (node.kind == NodeKind::kInsertion) {
      VgSet buffered;
      for (const VgPtr& s : set) {
        for (std::size_t ri = 0; ri < ctx.tech.repeaters.size(); ++ri) {
          const Repeater& r = ctx.tech.repeaters[ri];
          for (const RepeaterOrientation o :
               {RepeaterOrientation::kASideUp,
                RepeaterOrientation::kBSideUp}) {
            if (o == RepeaterOrientation::kBSideUp && r.Symmetric()) break;
            auto b = std::make_shared<VgSolution>();
            b->cost = s->cost + r.cost;
            b->cap = r.CapUp(o);
            b->delay =
                r.IntrinsicDown(o) + r.ResDown(o) * s->cap + s->delay;
            b->parity = r.inverting ? 1 - s->parity : s->parity;
            b->kind = VgSolution::Kind::kBuffer;
            b->node = v;
            b->repeater_index = ri;
            b->orientation = o;
            b->pred1 = s;
            buffered.push_back(std::move(b));
          }
        }
      }
      set.insert(set.end(), buffered.begin(), buffered.end());
    }
  }
  return Prune(std::move(set));
}

TradeoffPoint Materialize(Context& ctx, const VgSolution& closed,
                          double cost, double delay) {
  TradeoffPoint p{cost,
                  delay,
                  RepeaterAssignment(ctx.tree.NumNodes()),
                  DriverAssignment(ctx.tree.NumTerminals()),
                  0,
                  {}};
  std::vector<const VgSolution*> stack{&closed};
  while (!stack.empty()) {
    const VgSolution* s = stack.back();
    stack.pop_back();
    if (s->kind == VgSolution::Kind::kBuffer) {
      const NodeId a_side = s->orientation == RepeaterOrientation::kASideUp
                                ? ctx.rooted.Parent(s->node)
                                : ctx.rooted.Children(s->node)[0];
      p.repeaters.Place(s->node,
                        PlacedRepeater{s->repeater_index, a_side});
      ++p.num_repeaters;
    }
    if (s->pred1) stack.push_back(s->pred1.get());
    if (s->pred2) stack.push_back(s->pred2.get());
  }
  p.num_repeaters = p.repeaters.CountPlaced();
  return p;
}

}  // namespace

VanGinnekenResult RunVanGinneken(const RcTree& tree, const Technology& tech,
                                 std::size_t source_terminal) {
  tree.Validate();
  MSN_CHECK_MSG(source_terminal < tree.NumTerminals(),
                "source terminal out of range");
  const EffectiveTerminal src =
      ResolveTerminal(tree.Terminal(source_terminal));
  MSN_CHECK_MSG(src.is_source, "selected terminal is not a source");

  const RootedTree rooted(tree, tree.TerminalNode(source_terminal));
  Context ctx{tree, rooted, tech};

  VgSet below;
  {
    // Combine the source's child subtrees (a leaf terminal root has one).
    bool first = true;
    const NodeId root = rooted.Root();
    for (const NodeId c : rooted.Children(root)) {
      VgSet sub = Solve(ctx, c);
      VgSet augmented;
      const double re = rooted.ParentRes(c);
      const double ce = rooted.ParentCap(c);
      for (const VgPtr& s : sub) {
        auto a = std::make_shared<VgSolution>();
        a->cost = s->cost;
        a->cap = s->cap + ce;
        a->delay = re * (ce / 2.0 + s->cap) + s->delay;
        a->parity = s->parity;
        a->kind = VgSolution::Kind::kAugment;
        a->node = c;
        a->pred1 = s;
        augmented.push_back(std::move(a));
      }
      if (first) {
        below = std::move(augmented);
        first = false;
        continue;
      }
      VgSet joined;
      for (const VgPtr& s1 : below) {
        for (const VgPtr& s2 : augmented) {
          if (s1->parity != s2->parity) continue;
          auto j = std::make_shared<VgSolution>();
          j->cost = s1->cost + s2->cost;
          j->cap = s1->cap + s2->cap;
          j->delay = std::max(s1->delay, s2->delay);
          j->parity = s1->parity;
          j->kind = VgSolution::Kind::kJoin;
          j->pred1 = s1;
          j->pred2 = s2;
          joined.push_back(std::move(j));
        }
      }
      below = Prune(std::move(joined));
    }
  }

  std::vector<TradeoffPoint> all;
  for (const VgPtr& s : below) {
    if (s->parity != 0) continue;  // Inverted polarity at some sink.
    const double cost = s->cost + tree.Terminal(source_terminal).driver.cost;
    const double delay =
        src.arrival_ps + src.driver_intrinsic_ps +
        src.driver_res * (src.pin_cap + s->cap) + s->delay;
    all.push_back(Materialize(ctx, *s, cost, delay));
  }

  VanGinnekenResult result;
  result.pareto = ParetoByCostDelay(
      std::move(all), [](const TradeoffPoint& p) { return p.cost; },
      [](const TradeoffPoint& p) { return p.ard_ps; });
  return result;
}

}  // namespace msn
