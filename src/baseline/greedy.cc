#include "baseline/greedy.h"

#include "common/check.h"
#include "common/numeric.h"
#include "core/ard.h"

namespace msn {
namespace {

/// All placement options at one insertion point (excluding "empty").
std::vector<PlacedRepeater> PlacementsAt(const RcTree& tree,
                                         const Technology& tech,
                                         NodeId ip) {
  const auto& adj = tree.AdjacentEdges(ip);
  const RcEdge& e0 = tree.Edge(adj[0]);
  const NodeId n0 = e0.a == ip ? e0.b : e0.a;
  const RcEdge& e1 = tree.Edge(adj[1]);
  const NodeId n1 = e1.a == ip ? e1.b : e1.a;
  std::vector<PlacedRepeater> out;
  for (std::size_t ri = 0; ri < tech.repeaters.size(); ++ri) {
    out.push_back(PlacedRepeater{ri, n0});
    if (!tech.repeaters[ri].Symmetric()) {
      out.push_back(PlacedRepeater{ri, n1});
    }
  }
  return out;
}

}  // namespace

GreedyResult GreedyMsri(const RcTree& tree, const Technology& tech) {
  tree.Validate();
  MSN_CHECK_MSG(!tech.repeaters.empty(), "empty repeater library");

  GreedyResult result;
  RepeaterAssignment current(tree.NumNodes());
  const DriverAssignment drivers(tree.NumTerminals());

  double current_ard = ComputeArd(tree, current, drivers, tech).ard_ps;
  result.ard_trajectory_ps.push_back(current_ard);

  bool improved = true;
  while (improved) {
    improved = false;
    RepeaterAssignment best_next = current;
    double best_ard = current_ard;

    for (const NodeId ip : tree.InsertionPoints()) {
      // Candidate states at this point: empty plus every placement; skip
      // the one we already have.
      std::vector<std::optional<PlacedRepeater>> states;
      states.emplace_back(std::nullopt);
      for (const PlacedRepeater& p : PlacementsAt(tree, tech, ip)) {
        states.emplace_back(p);
      }
      for (const auto& state : states) {
        if (state == current.At(ip)) continue;
        RepeaterAssignment candidate = current;
        if (state) {
          candidate.Place(ip, *state);
        } else {
          candidate.Remove(ip);
        }
        ++result.moves_evaluated;
        if (!ParityFeasible(tree, candidate, tech)) continue;
        const double ard =
            ComputeArd(tree, candidate, drivers, tech).ard_ps;
        if (ard < best_ard - kEps) {
          best_ard = ard;
          best_next = candidate;
        }
      }
    }
    if (best_ard < current_ard - kEps) {
      current = best_next;
      current_ard = best_ard;
      result.ard_trajectory_ps.push_back(current_ard);
      improved = true;
    }
  }

  double cost = current.Cost(tech);
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    cost += tree.Terminal(t).driver.cost;
  }
  result.best = TradeoffPoint{cost,
                              current_ard,
                              current,
                              DriverAssignment(tree.NumTerminals()),
                              current.CountPlaced(),
                              {}};
  return result;
}

}  // namespace msn
