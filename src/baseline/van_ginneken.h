// Van Ginneken-style single-source buffer insertion (paper refs [26],[15]).
//
// The classic bottom-up DP over (cost, cap, delay) triples: for a net with
// ONE source, compute the Pareto set of buffer assignments minimizing the
// maximum augmented source-to-sink delay at each cost.  It is both a
// comparator substrate (the single-source ancestor the paper generalizes)
// and a strong cross-check: on a single-source net, MSRI's five-dimensional
// solutions collapse to these triples and the two algorithms must produce
// identical cost/delay frontiers (tests/van_ginneken_test.cc).
//
// Candidate buffers are the technology's repeaters used in their
// source-to-sink direction (both orientations of asymmetric repeaters).
#ifndef MSN_BASELINE_VAN_GINNEKEN_H
#define MSN_BASELINE_VAN_GINNEKEN_H

#include <vector>

#include "core/msri.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct VanGinnekenResult {
  /// Pareto frontier of (cost, max augmented source-to-sink delay),
  /// sorted by increasing cost; assignments materialized.
  std::vector<TradeoffPoint> pareto;
};

/// Runs the DP from `source_terminal` (must be a source; every other
/// terminal with is_sink participates as a sink).  Cost accounting matches
/// RunMsri: terminal default driver costs are included.
VanGinnekenResult RunVanGinneken(const RcTree& tree, const Technology& tech,
                                 std::size_t source_terminal);

}  // namespace msn

#endif  // MSN_BASELINE_VAN_GINNEKEN_H
