// Exhaustive enumeration baseline.
//
// Enumerates every repeater assignment (and, optionally, every driver
// sizing) over a small net, evaluates each with the linear-time ARD
// engine, and returns the exact cost-vs-ARD Pareto frontier.  This is the
// optimality oracle Theorem 4.1 is tested against
// (tests/msri_optimality_test.cc) — it is exponential and guarded by an
// explicit combination limit.
#ifndef MSN_BASELINE_BRUTE_FORCE_H
#define MSN_BASELINE_BRUTE_FORCE_H

#include <cstddef>
#include <vector>

#include "core/msri.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct BruteForceOptions {
  bool insert_repeaters = true;
  bool size_drivers = false;
  std::vector<TerminalOption> sizing_library;
  /// Enumerate wire widths per edge (match MsriOptions wire sizing).
  bool size_wires = false;
  std::vector<double> wire_width_choices = {1.0, 2.0};
  double wire_area_cost_per_um = 0.0005;
  double wire_cost_quantum = 0.05;  ///< Must match MsriOptions.
  /// Slew control: match MsriOptions::max_stage_length_um (0 = off).
  double max_stage_length_um = 0.0;
  /// Hard cap on the number of enumerated assignments (checked).
  std::size_t max_combinations = 2'000'000;
};

struct BruteForceResult {
  /// Pareto frontier, sorted by increasing cost (ARD strictly decreasing).
  std::vector<TradeoffPoint> pareto;
  std::size_t enumerated = 0;
};

/// Exhaustively solves Problem 2.1 on `tree`.
BruteForceResult BruteForceMsri(const RcTree& tree, const Technology& tech,
                                const BruteForceOptions& options = {});

}  // namespace msn

#endif  // MSN_BASELINE_BRUTE_FORCE_H
