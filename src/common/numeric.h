// Floating-point comparison helpers and shared numeric constants.
//
// All electrical quantities in msn use doubles with the unit system
// documented in DESIGN.md §4: Ω, pF, µm, and Ω·pF (= 1 ps) for time.
// Comparisons between derived delays therefore operate at magnitudes of
// roughly 1e-3..1e5 ps, for which a mixed absolute/relative epsilon works
// well.
#ifndef MSN_COMMON_NUMERIC_H
#define MSN_COMMON_NUMERIC_H

#include <algorithm>
#include <cmath>
#include <limits>

namespace msn {

/// Default absolute tolerance for delay/capacitance comparisons (in the
/// native unit of the compared quantity).
inline constexpr double kEps = 1e-9;

/// Positive infinity shorthand used for "no solution / unreachable".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// True iff |a - b| is within `eps` absolutely or relatively.
inline bool ApproxEq(double a, double b, double eps = kEps) {
  const double diff = std::fabs(a - b);
  if (diff <= eps) return true;
  return diff <= eps * std::max(std::fabs(a), std::fabs(b));
}

/// True iff a < b by more than tolerance (strictly less, eps-aware).
inline bool DefinitelyLess(double a, double b, double eps = kEps) {
  return a < b && !ApproxEq(a, b, eps);
}

/// True iff a <= b up to tolerance.
inline bool LessOrApprox(double a, double b, double eps = kEps) {
  return a <= b || ApproxEq(a, b, eps);
}

}  // namespace msn

#endif  // MSN_COMMON_NUMERIC_H
