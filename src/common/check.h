// Checked-assertion macros for the msn library.
//
// MSN_CHECK fires in all build types and throws msn::CheckError; the library
// uses it to validate user-supplied structures (trees, libraries, specs)
// whose violation would otherwise corrupt results silently.  MSN_DCHECK is
// for internal invariants and compiles out in NDEBUG builds.
#ifndef MSN_COMMON_CHECK_H
#define MSN_COMMON_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace msn {

/// Thrown when a MSN_CHECK-validated precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "MSN_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace msn

#define MSN_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::msn::detail::CheckFail(#expr, __FILE__, __LINE__, \
                                          std::string());            \
  } while (false)

#define MSN_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream msn_check_os;                            \
      msn_check_os << msg;                                        \
      ::msn::detail::CheckFail(#expr, __FILE__, __LINE__,         \
                               msn_check_os.str());               \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define MSN_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define MSN_DCHECK(expr) MSN_CHECK(expr)
#endif

#endif  // MSN_COMMON_CHECK_H
