// IntervalSet: a finite union of disjoint half-open real intervals [lo, hi).
//
// Used by the MFS pruner (src/core/mfs.*) to track the region of the
// external-capacitance axis on which a dynamic-programming solution is still
// potentially optimal.  Intervals may extend to +infinity on the right.
//
// The representation is a sorted vector of non-overlapping, non-adjacent
// intervals; all operations restore that canonical form.
#ifndef MSN_COMMON_INTERVAL_SET_H
#define MSN_COMMON_INTERVAL_SET_H

#include <iosfwd>
#include <vector>

namespace msn {

/// Half-open interval [lo, hi); hi may be +infinity.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Empty() const { return !(lo < hi); }
  double Length() const { return Empty() ? 0.0 : hi - lo; }
  bool Contains(double x) const { return lo <= x && x < hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A canonical union of disjoint intervals supporting the set algebra the
/// MFS pruner needs: union, intersection, difference, shift and queries.
class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  /// Singleton set {[lo, hi)}; an empty interval yields the empty set.
  IntervalSet(double lo, double hi);

  /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// The whole domain used by MFS: [0, +inf).
  static IntervalSet NonNegativeReals();

  bool Empty() const { return intervals_.empty(); }
  std::size_t Size() const { return intervals_.size(); }
  const std::vector<Interval>& Intervals() const { return intervals_; }

  bool Contains(double x) const;

  /// Total measure; +inf if any interval is unbounded.
  double TotalLength() const;

  /// Smallest point of the set (undefined on empty set — checked).
  double Min() const;

  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersect(const IntervalSet& other) const;
  /// Set difference: *this minus `other`.
  IntervalSet Subtract(const IntervalSet& other) const;

  /// Translates every interval by `delta` (negative deltas allowed); the
  /// result is clipped to [clip_lo, +inf).  MFS uses delta = -cap_shift with
  /// clip_lo = 0 when re-expressing a child's validity domain in the
  /// parent's external-capacitance coordinate.
  IntervalSet Shift(double delta, double clip_lo = 0.0) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void Canonicalize();

  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace msn

#endif  // MSN_COMMON_INTERVAL_SET_H
