// Cooperative cancellation for long-running work (the MSRI dynamic
// program above all).  A CancellationSource owns the cancel state; the
// CancellationTokens it hands out are cheap value types that workers
// poll at loop granularity.  Cancellation is level-triggered and
// one-way: once a source is cancelled (explicitly or by its deadline
// passing) every token observing it reports cancelled forever.
//
// Thread safety: Cancel() may race freely with Cancelled()/Check() on
// any number of threads.  The deadline is immutable after construction
// precisely so the polling side never reads a mutating field — the only
// cross-thread write is the atomic flag.
//
// A default-constructed token observes nothing and never cancels, so
// call sites can take a token unconditionally and pay one null check
// when cancellation is not in play.
#ifndef MSN_COMMON_CANCEL_H
#define MSN_COMMON_CANCEL_H

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

namespace msn {

/// Thrown by CancellationToken::Check().  Catching this (and only this)
/// is how callers distinguish "abandoned on request" from a real error.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace internal {
struct CancelState {
  explicit CancelState(
      std::chrono::steady_clock::time_point deadline_at =
          std::chrono::steady_clock::time_point{},
      bool has_deadline_at = false)
      : deadline(deadline_at), has_deadline(has_deadline_at) {}
  std::atomic<bool> flag{false};
  const std::chrono::steady_clock::time_point deadline;
  const bool has_deadline;

  bool Expired() const {
    return flag.load(std::memory_order_relaxed) ||
           (has_deadline && std::chrono::steady_clock::now() >= deadline);
  }
};
}  // namespace internal

class CancellationToken {
 public:
  /// Observes nothing; Cancelled() is always false.
  CancellationToken() = default;

  /// True when this token can ever fire (it observes at least one
  /// source).  A cheap pre-check for "is cancellation in play at all".
  bool Valid() const { return !states_.empty(); }

  /// True once any observed source was cancelled or timed out.
  bool Cancelled() const {
    for (const auto& s : states_) {
      if (s->Expired()) return true;
    }
    return false;
  }

  /// Throws CancelledError when Cancelled().  The message is generic;
  /// layers with more context (which deadline, whose connection) catch
  /// and rephrase.
  void Check() const {
    if (Cancelled()) throw CancelledError("cancelled");
  }

  /// A token that fires when either input fires.  Used by the service
  /// to combine a per-connection token with a per-request deadline.
  static CancellationToken Merged(const CancellationToken& a,
                                  const CancellationToken& b) {
    CancellationToken t;
    t.states_.reserve(a.states_.size() + b.states_.size());
    t.states_.insert(t.states_.end(), a.states_.begin(), a.states_.end());
    t.states_.insert(t.states_.end(), b.states_.begin(), b.states_.end());
    return t;
  }

 private:
  friend class CancellationSource;
  std::vector<std::shared_ptr<const internal::CancelState>> states_;
};

class CancellationSource {
 public:
  /// A source that fires only on explicit Cancel().
  CancellationSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// A source that also fires once `deadline` passes.
  explicit CancellationSource(std::chrono::steady_clock::time_point deadline)
      : state_(std::make_shared<internal::CancelState>(deadline, true)) {}

  void Cancel() { state_->flag.store(true, std::memory_order_relaxed); }

  /// True when Cancel() was called (deadline expiry does not count —
  /// use Token().Cancelled() for the combined view).
  bool CancelRequested() const {
    return state_->flag.load(std::memory_order_relaxed);
  }

  CancellationToken Token() const {
    CancellationToken t;
    t.states_.push_back(state_);
    return t;
  }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace msn

#endif  // MSN_COMMON_CANCEL_H
