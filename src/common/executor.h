// Minimal fan-out/join abstraction the core DP can parallelize through
// without depending on the runtime layer (dependency order: common ->
// core -> runtime; see src/CMakeLists.txt).
//
// RunAll executes every thunk and returns only when all of them have
// completed.  Implementations may run thunks concurrently in any order;
// callers that need deterministic output must therefore collect results
// by index (write into a pre-sized slot per thunk), never by completion
// order.  The first exception thrown by a thunk is rethrown from RunAll
// after the remaining thunks finish.
//
// src/runtime/thread_pool.h provides the concurrent implementation
// (PoolExecutor); SerialExecutor below is the inline reference
// implementation and the semantic spec the parallel one must match.
#ifndef MSN_COMMON_EXECUTOR_H
#define MSN_COMMON_EXECUTOR_H

#include <exception>
#include <functional>
#include <vector>

namespace msn {

class Executor {
 public:
  virtual ~Executor() = default;
  /// Runs every task; returns after all completed.  Rethrows the first
  /// task exception (all tasks still run to completion).
  virtual void RunAll(std::vector<std::function<void()>> tasks) = 0;
};

/// Runs everything inline on the calling thread, in order.
class SerialExecutor final : public Executor {
 public:
  void RunAll(std::vector<std::function<void()>> tasks) override {
    std::exception_ptr first;
    for (std::function<void()>& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }
};

}  // namespace msn

#endif  // MSN_COMMON_EXECUTOR_H
