// Seeded random-number wrapper used by workload generation and tests.
//
// All experiments in the benchmark harness are reproducible because every
// random quantity flows through an Rng constructed from a documented seed.
#ifndef MSN_COMMON_RNG_H
#define MSN_COMMON_RNG_H

#include <cstdint>
#include <random>

namespace msn {

/// Thin deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& Engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace msn

#endif  // MSN_COMMON_RNG_H
