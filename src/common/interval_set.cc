#include "common/interval_set.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "common/numeric.h"

namespace msn {

IntervalSet::IntervalSet(double lo, double hi) {
  if (lo < hi) intervals_.push_back({lo, hi});
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Canonicalize();
}

IntervalSet IntervalSet::NonNegativeReals() { return IntervalSet(0.0, kInf); }

void IntervalSet::Canonicalize() {
  std::erase_if(intervals_, [](const Interval& i) { return i.Empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const Interval& i : intervals_) {
    if (!merged.empty() && i.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, i.hi);
    } else {
      merged.push_back(i);
    }
  }
  intervals_ = std::move(merged);
}

bool IntervalSet::Contains(double x) const {
  // Binary search for the first interval with lo > x, then check its
  // predecessor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](double v, const Interval& i) { return v < i.lo; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->Contains(x);
}

double IntervalSet::TotalLength() const {
  double total = 0.0;
  for (const Interval& i : intervals_) total += i.Length();
  return total;
}

double IntervalSet::Min() const {
  MSN_CHECK_MSG(!Empty(), "Min() of empty IntervalSet");
  return intervals_.front().lo;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const double lo = std::max(a->lo, b->lo);
    const double hi = std::min(a->hi, b->hi);
    if (lo < hi) out.push_back({lo, hi});
    // Advance whichever interval ends first.
    if (a->hi < b->hi) {
      ++a;
    } else {
      ++b;
    }
  }
  IntervalSet result;
  result.intervals_ = std::move(out);  // Already disjoint and sorted.
  return result;
}

IntervalSet IntervalSet::Subtract(const IntervalSet& other) const {
  std::vector<Interval> out;
  auto b = other.intervals_.begin();
  for (Interval rem : intervals_) {
    while (!rem.Empty()) {
      // Skip subtrahend intervals entirely to the left of `rem`.
      while (b != other.intervals_.end() && b->hi <= rem.lo) ++b;
      if (b == other.intervals_.end() || b->lo >= rem.hi) {
        out.push_back(rem);
        break;
      }
      if (b->lo > rem.lo) out.push_back({rem.lo, b->lo});
      rem.lo = b->hi;  // Continue with the part right of the subtrahend.
    }
  }
  IntervalSet result;
  result.intervals_ = std::move(out);
  return result;
}

IntervalSet IntervalSet::Shift(double delta, double clip_lo) const {
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const Interval& i : intervals_) {
    const double lo = std::max(i.lo + delta, clip_lo);
    const double hi = std::isinf(i.hi) ? i.hi : i.hi + delta;
    if (lo < hi) out.push_back({lo, hi});
  }
  IntervalSet result;
  result.intervals_ = std::move(out);
  return result;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << '{';
  bool first = true;
  for (const Interval& i : s.Intervals()) {
    if (!first) os << ", ";
    first = false;
    os << '[' << i.lo << ", " << i.hi << ')';
  }
  return os << '}';
}

}  // namespace msn
