// Geometric tree container shared by the Steiner constructions.
//
// A SteinerTree is an undirected tree over a point set whose first
// `num_terminals` points are the net's terminals (in caller order); any
// further points are Steiner (branch) points introduced by the heuristics.
// Edge lengths are rectilinear distances; the electrical layer
// (src/rctree/) converts lengths to RC values.
#ifndef MSN_STEINER_TOPOLOGY_H
#define MSN_STEINER_TOPOLOGY_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace msn {

/// Undirected edge between point indices `a` and `b`.
struct SteinerEdge {
  std::size_t a = 0;
  std::size_t b = 0;

  friend bool operator==(const SteinerEdge&, const SteinerEdge&) = default;
};

/// A geometric routing tree (terminals + optional Steiner points + edges).
struct SteinerTree {
  std::vector<Point> points;
  std::size_t num_terminals = 0;
  std::vector<SteinerEdge> edges;

  std::size_t NumPoints() const { return points.size(); }
  bool IsTerminal(std::size_t idx) const { return idx < num_terminals; }

  /// Rectilinear length of edge `e`, in µm.
  std::int64_t EdgeLength(const SteinerEdge& e) const {
    return ManhattanDistance(points[e.a], points[e.b]);
  }

  /// Total rectilinear wirelength, in µm.
  std::int64_t TotalLength() const;

  /// Degree of each point (indexed like `points`).
  std::vector<std::size_t> Degrees() const;

  /// Throws msn::CheckError unless the edge set forms a spanning tree over
  /// all points (connected, acyclic, |E| = |V| - 1, indices in range).
  void Validate() const;
};

/// Removes degree-1 Steiner points and splices degree-2 Steiner points
/// out of `tree`, in place.  Both transformations never increase
/// wirelength under the Manhattan metric (triangle inequality for the
/// splice).  Shared by the 1-Steiner and P-Tree constructions.
void SpliceAndPruneSteinerPoints(SteinerTree& tree);

}  // namespace msn

#endif  // MSN_STEINER_TOPOLOGY_H
