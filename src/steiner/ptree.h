// P-Tree-style topology generation (the paper's ref [16], Lillis, Cheng,
// Lin, Ho: "New performance driven routing techniques with explicit
// area/delay tradeoff...").
//
// P-Tree fixes a permutation of the terminals (a tour) and then, by
// dynamic programming over contiguous intervals of that tour, chooses the
// best *binary* abstract routing tree together with an embedding of its
// internal nodes onto Hanan-grid candidates:
//
//   cost[i..j][p] = min over split k in [i, j) and child embeddings q1,q2
//                   of cost[i..k][q1] + d(p, q1) +
//                      cost[k+1..j][q2] + d(p, q2)
//
// This implementation optimizes total rectilinear wirelength (the
// classic P-Tree "area" objective); the tour comes from an angular sweep
// around the terminal centroid (the hull-like tours the P-Tree paper
// recommends).  Complexity O(n² · |H|²) with |H| = O(n²) Hanan points —
// comfortably within the paper's 10–20-terminal experiments.
//
// Replaces the iterated-1-Steiner stand-in for topology generation where
// fidelity to the paper's setup matters (see DESIGN.md §5).
#ifndef MSN_STEINER_PTREE_H
#define MSN_STEINER_PTREE_H

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "steiner/topology.h"

namespace msn {

struct PTreeOptions {
  /// Optional explicit tour (a permutation of [0, n)); empty = angular
  /// sweep around the centroid.
  std::vector<std::size_t> tour;
};

/// Builds the minimum-wirelength P-Tree over `terminals` (>= 1 — checked).
/// Terminals keep their input order at indices [0, n); embedded internal
/// nodes follow as Steiner points.
SteinerTree PTree(const std::vector<Point>& terminals,
                  const PTreeOptions& options = {});

}  // namespace msn

#endif  // MSN_STEINER_PTREE_H
