#include "steiner/one_steiner.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "geom/hanan.h"
#include "steiner/spanning.h"

namespace msn {
namespace {

}  // namespace

SteinerTree IteratedOneSteiner(const std::vector<Point>& terminals,
                               const OneSteinerOptions& options) {
  MSN_CHECK_MSG(!terminals.empty(), "Steiner tree of empty terminal set");

  std::vector<Point> pts = terminals;
  std::unordered_set<Point> present(pts.begin(), pts.end());
  std::vector<Point> candidates = HananCandidates(terminals);

  const std::size_t max_added =
      options.max_steiner_points == 0
          ? (terminals.size() >= 2 ? terminals.size() - 2 : 0)
          : options.max_steiner_points;

  std::int64_t base = RectilinearMstLength(pts);
  for (std::size_t added = 0; added < max_added; ++added) {
    std::int64_t best_gain = 0;
    std::size_t best_idx = candidates.size();
    pts.push_back({});  // Scratch slot for candidate evaluation.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (present.contains(candidates[i])) continue;
      pts.back() = candidates[i];
      const std::int64_t gain = base - RectilinearMstLength(pts);
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) {
      pts.pop_back();
      break;  // No improving candidate.
    }
    pts.back() = candidates[best_idx];
    present.insert(candidates[best_idx]);
    base -= best_gain;
  }

  SteinerTree tree;
  tree.points = std::move(pts);
  tree.num_terminals = terminals.size();
  tree.edges = RectilinearMstEdges(tree.points);
  SpliceAndPruneSteinerPoints(tree);
  tree.Validate();
  return tree;
}

}  // namespace msn
