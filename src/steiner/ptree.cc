#include "steiner/ptree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geom/hanan.h"

namespace msn {
namespace {

/// Angular sweep around the centroid — the hull-like tour the P-Tree
/// paper recommends as the permutation heuristic.
std::vector<std::size_t> AngularTour(const std::vector<Point>& terminals) {
  double cx = 0.0, cy = 0.0;
  for (const Point& p : terminals) {
    cx += static_cast<double>(p.x);
    cy += static_cast<double>(p.y);
  }
  cx /= static_cast<double>(terminals.size());
  cy /= static_cast<double>(terminals.size());

  std::vector<std::size_t> tour(terminals.size());
  for (std::size_t i = 0; i < tour.size(); ++i) tour[i] = i;
  std::sort(tour.begin(), tour.end(), [&](std::size_t a, std::size_t b) {
    const double aa = std::atan2(static_cast<double>(terminals[a].y) - cy,
                                 static_cast<double>(terminals[a].x) - cx);
    const double ab = std::atan2(static_cast<double>(terminals[b].y) - cy,
                                 static_cast<double>(terminals[b].x) - cx);
    if (aa != ab) return aa < ab;
    return terminals[a] < terminals[b];
  });
  return tour;
}

}  // namespace

SteinerTree PTree(const std::vector<Point>& terminals,
                  const PTreeOptions& options) {
  MSN_CHECK_MSG(!terminals.empty(), "P-Tree over empty terminal set");
  const std::size_t n = terminals.size();

  SteinerTree tree;
  tree.points = terminals;
  tree.num_terminals = n;
  if (n == 1) return tree;

  std::vector<std::size_t> tour =
      options.tour.empty() ? AngularTour(terminals) : options.tour;
  MSN_CHECK_MSG(tour.size() == n, "tour must permute all terminals");
  {
    std::vector<bool> seen(n, false);
    for (const std::size_t t : tour) {
      MSN_CHECK_MSG(t < n && !seen[t], "tour is not a permutation");
      seen[t] = true;
    }
  }

  const std::vector<Point> hanan = HananGrid(terminals);
  const std::size_t m = hanan.size();

  // Interval indexing: id(i, j) for 0 <= i <= j < n.
  auto interval = [n](std::size_t i, std::size_t j) {
    return i * n + j;
  };

  constexpr double kFar = std::numeric_limits<double>::max();
  // C[iv][p]: min wirelength of a tree spanning tour[i..j] whose root is
  // embedded at hanan[p].
  // A[iv][p]: min over q of C[iv][q] + d(p, q) ("attached below p"),
  // with the realizing q recorded for reconstruction.
  std::vector<std::vector<double>> c(n * n);
  std::vector<std::vector<double>> attach(n * n);
  std::vector<std::vector<std::uint32_t>> attach_q(n * n);
  std::vector<std::vector<std::uint32_t>> split_k(n * n);

  auto build_attach = [&](std::size_t iv) {
    attach[iv].assign(m, kFar);
    attach_q[iv].assign(m, 0);
    for (std::size_t p = 0; p < m; ++p) {
      double best = kFar;
      std::uint32_t best_q = 0;
      for (std::size_t q = 0; q < m; ++q) {
        const double v =
            c[iv][q] +
            static_cast<double>(ManhattanDistance(hanan[p], hanan[q]));
        if (v < best) {
          best = v;
          best_q = static_cast<std::uint32_t>(q);
        }
      }
      attach[iv][p] = best;
      attach_q[iv][p] = best_q;
    }
  };

  // Base intervals.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t iv = interval(i, i);
    c[iv].assign(m, 0.0);
    for (std::size_t p = 0; p < m; ++p) {
      c[iv][p] = static_cast<double>(
          ManhattanDistance(hanan[p], terminals[tour[i]]));
    }
    build_attach(iv);
  }

  // Longer intervals, increasing length.
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      const std::size_t j = i + len - 1;
      const std::size_t iv = interval(i, j);
      c[iv].assign(m, kFar);
      split_k[iv].assign(m, 0);
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t k = i; k < j; ++k) {
          const double v = attach[interval(i, k)][p] +
                           attach[interval(k + 1, j)][p];
          if (v < c[iv][p]) {
            c[iv][p] = v;
            split_k[iv][p] = static_cast<std::uint32_t>(k);
          }
        }
      }
      build_attach(iv);
    }
  }

  // Best overall root embedding.
  const std::size_t top = interval(0, n - 1);
  std::size_t root_p = 0;
  for (std::size_t p = 1; p < m; ++p) {
    if (c[top][p] < c[top][root_p]) root_p = p;
  }

  // Reconstruction: emit Steiner points for embedded internal nodes.
  struct Frame {
    std::size_t i, j, p;     ///< Interval and embedding.
    std::size_t parent;      ///< Tree node to connect to.
  };
  auto add_steiner = [&tree, &hanan](std::size_t p) {
    tree.points.push_back(hanan[p]);
    return tree.points.size() - 1;
  };
  const std::size_t root_node = add_steiner(root_p);
  std::vector<Frame> stack{{0, n - 1, root_p, root_node}};
  // The first frame's node is the root itself (no parent edge), marked by
  // parent == its own index; expand splits below it.
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.i == f.j) {
      tree.edges.push_back({f.parent, tour[f.i]});
      continue;
    }
    const std::size_t iv = interval(f.i, f.j);
    const std::size_t k = split_k[iv][f.p];
    for (const auto& [lo, hi] :
         {std::pair<std::size_t, std::size_t>{f.i, k},
          std::pair<std::size_t, std::size_t>{k + 1, f.j}}) {
      const std::size_t q = attach_q[interval(lo, hi)][f.p];
      if (lo == hi) {
        // Child is a bare terminal; connect it through its embedding q
        // only if that differs from the terminal itself (it never pays
        // to detour, and C[ii][q] already includes d(q, terminal)).
        const std::size_t child = add_steiner(q);
        tree.edges.push_back({f.parent, child});
        tree.edges.push_back({child, tour[lo]});
        continue;
      }
      const std::size_t child = add_steiner(q);
      tree.edges.push_back({f.parent, child});
      stack.push_back({lo, hi, q, child});
    }
  }

  SpliceAndPruneSteinerPoints(tree);
  tree.Validate();
  return tree;
}

}  // namespace msn
