#include "steiner/topology.h"

#include <numeric>
#include <vector>

#include "common/check.h"

namespace msn {
namespace {

/// Union-find over point indices, used for the spanning-tree check.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  /// Returns false if x and y were already in the same set.
  bool Union(std::size_t x, std::size_t y) {
    x = Find(x);
    y = Find(y);
    if (x == y) return false;
    parent_[x] = y;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::int64_t SteinerTree::TotalLength() const {
  std::int64_t total = 0;
  for (const SteinerEdge& e : edges) total += EdgeLength(e);
  return total;
}

std::vector<std::size_t> SteinerTree::Degrees() const {
  std::vector<std::size_t> deg(points.size(), 0);
  for (const SteinerEdge& e : edges) {
    ++deg[e.a];
    ++deg[e.b];
  }
  return deg;
}

void SteinerTree::Validate() const {
  MSN_CHECK_MSG(num_terminals >= 1, "tree must span at least one terminal");
  MSN_CHECK_MSG(num_terminals <= points.size(),
                "num_terminals exceeds point count");
  MSN_CHECK_MSG(points.size() == edges.size() + 1,
                "edge count must be |V|-1 for a tree; got |V|="
                    << points.size() << " |E|=" << edges.size());
  DisjointSets dsu(points.size());
  for (const SteinerEdge& e : edges) {
    MSN_CHECK_MSG(e.a < points.size() && e.b < points.size(),
                  "edge index out of range");
    MSN_CHECK_MSG(e.a != e.b, "self-loop edge");
    MSN_CHECK_MSG(dsu.Union(e.a, e.b), "cycle detected in Steiner tree");
  }
  // |E| = |V|-1 and acyclic imply connected.
}

void SpliceAndPruneSteinerPoints(SteinerTree& tree) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::size_t> deg = tree.Degrees();

    // Splice degree-2 Steiner points: (a,s),(s,b) -> (a,b).
    for (std::size_t s = tree.num_terminals; s < tree.points.size(); ++s) {
      if (deg[s] != 2) continue;
      std::size_t nbr[2];
      std::size_t found = 0;
      for (const SteinerEdge& e : tree.edges) {
        if (e.a == s) nbr[found++] = e.b;
        else if (e.b == s) nbr[found++] = e.a;
      }
      MSN_DCHECK(found == 2);
      std::erase_if(tree.edges, [s](const SteinerEdge& e) {
        return e.a == s || e.b == s;
      });
      tree.edges.push_back({nbr[0], nbr[1]});
      deg[s] = 0;  // Now isolated; removed below.
      changed = true;
    }

    // Drop isolated or degree-1 Steiner points (deg 0 arises from splices).
    std::vector<std::size_t> remap(tree.points.size());
    std::vector<Point> kept_points;
    kept_points.reserve(tree.points.size());
    bool dropped = false;
    for (std::size_t i = 0; i < tree.points.size(); ++i) {
      const bool steiner = i >= tree.num_terminals;
      if (steiner && deg[i] <= 1) {
        remap[i] = static_cast<std::size_t>(-1);
        dropped = true;
        continue;
      }
      remap[i] = kept_points.size();
      kept_points.push_back(tree.points[i]);
    }
    if (dropped) {
      std::vector<SteinerEdge> kept_edges;
      kept_edges.reserve(tree.edges.size());
      for (const SteinerEdge& e : tree.edges) {
        if (remap[e.a] == static_cast<std::size_t>(-1) ||
            remap[e.b] == static_cast<std::size_t>(-1)) {
          continue;  // Edge incident to a dropped degree-1 Steiner point.
        }
        kept_edges.push_back({remap[e.a], remap[e.b]});
      }
      tree.points = std::move(kept_points);
      tree.edges = std::move(kept_edges);
      changed = true;
    }
  }
}

}  // namespace msn
