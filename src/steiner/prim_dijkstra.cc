#include "steiner/prim_dijkstra.h"

#include <limits>

#include "common/check.h"

namespace msn {

SteinerTree PrimDijkstra(const std::vector<Point>& terminals,
                         std::size_t root_index, double c) {
  MSN_CHECK_MSG(!terminals.empty(), "Prim-Dijkstra over empty terminals");
  MSN_CHECK_MSG(root_index < terminals.size(), "root index out of range");
  MSN_CHECK_MSG(c >= 0.0 && c <= 1.0,
                "Prim-Dijkstra parameter must be in [0, 1]; got " << c);
  const std::size_t n = terminals.size();
  constexpr double kFar = std::numeric_limits<double>::max();

  std::vector<bool> in_tree(n, false);
  std::vector<double> pathlen(n, 0.0);  // Root-to-vertex tree path length.
  std::vector<double> best_score(n, kFar);
  std::vector<std::size_t> best_from(n, root_index);

  SteinerTree tree;
  tree.points = terminals;
  tree.num_terminals = n;
  tree.edges.reserve(n - 1);

  std::size_t current = root_index;
  in_tree[current] = true;
  for (std::size_t added = 1; added < n; ++added) {
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double score =
          c * pathlen[current] +
          static_cast<double>(ManhattanDistance(terminals[current],
                                                terminals[v]));
      if (score < best_score[v]) {
        best_score[v] = score;
        best_from[v] = current;
      }
    }
    std::size_t next = n;
    double next_score = kFar;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best_score[v] < next_score) {
        next = v;
        next_score = best_score[v];
      }
    }
    MSN_DCHECK(next < n);
    in_tree[next] = true;
    pathlen[next] =
        pathlen[best_from[next]] +
        static_cast<double>(
            ManhattanDistance(terminals[best_from[next]], terminals[next]));
    tree.edges.push_back({best_from[next], next});
    current = next;
  }
  tree.Validate();
  return tree;
}

}  // namespace msn
