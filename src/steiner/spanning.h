// Rectilinear minimum spanning tree (Prim's algorithm).
//
// The MST is both the fallback topology and the inner evaluation of the
// iterated 1-Steiner heuristic.  O(n²) Prim on the complete graph under the
// Manhattan metric, which is the right complexity regime for the paper's
// 10–20-terminal nets (and comfortably handles hundreds of points).
#ifndef MSN_STEINER_SPANNING_H
#define MSN_STEINER_SPANNING_H

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "steiner/topology.h"

namespace msn {

/// Edges of a rectilinear MST over `points` (at least one point — checked).
std::vector<SteinerEdge> RectilinearMstEdges(const std::vector<Point>& points);

/// Total rectilinear MST length over `points`, in µm.
std::int64_t RectilinearMstLength(const std::vector<Point>& points);

/// Convenience: full SteinerTree whose points are exactly `terminals` and
/// whose edges form the rectilinear MST.
SteinerTree RectilinearMst(const std::vector<Point>& terminals);

}  // namespace msn

#endif  // MSN_STEINER_SPANNING_H
