// Iterated 1-Steiner heuristic for rectilinear Steiner trees.
//
// Kahng–Robins style: repeatedly add the Hanan-grid candidate point whose
// inclusion most reduces the MST length over the current point set; stop
// when no candidate improves.  Finish by pruning degree-1 Steiner points
// and splicing out degree-2 Steiner points (the direct edge is never longer
// under the Manhattan metric, so both clean-ups are cost-non-increasing).
//
// This is the stand-in for the paper's P-Tree topology generator (see
// DESIGN.md §5): the repeater-insertion DP is topology-agnostic, and
// iterated 1-Steiner trees are within a few percent of optimal at the
// paper's net sizes.
#ifndef MSN_STEINER_ONE_STEINER_H
#define MSN_STEINER_ONE_STEINER_H

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "steiner/topology.h"

namespace msn {

/// Options for the iterated 1-Steiner construction.
struct OneSteinerOptions {
  /// Upper bound on the number of Steiner points added (0 = no limit
  /// beyond the natural n-2 maximum for n terminals).
  std::size_t max_steiner_points = 0;
};

/// Builds a rectilinear Steiner tree over `terminals` (≥1 — checked).
/// Resulting tree keeps terminals at indices [0, n) in input order.
SteinerTree IteratedOneSteiner(const std::vector<Point>& terminals,
                               const OneSteinerOptions& options = {});

}  // namespace msn

#endif  // MSN_STEINER_ONE_STEINER_H
