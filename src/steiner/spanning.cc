#include "steiner/spanning.h"

#include <limits>

#include "common/check.h"

namespace msn {

std::vector<SteinerEdge> RectilinearMstEdges(
    const std::vector<Point>& points) {
  MSN_CHECK_MSG(!points.empty(), "MST of empty point set");
  const std::size_t n = points.size();
  constexpr std::int64_t kFar = std::numeric_limits<std::int64_t>::max();

  std::vector<bool> in_tree(n, false);
  std::vector<std::int64_t> best_dist(n, kFar);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<SteinerEdge> edges;
  edges.reserve(n - 1);

  std::size_t current = 0;
  in_tree[0] = true;
  for (std::size_t added = 1; added < n; ++added) {
    // Relax distances from the vertex added last.
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const std::int64_t d = ManhattanDistance(points[current], points[v]);
      if (d < best_dist[v]) {
        best_dist[v] = d;
        best_from[v] = current;
      }
    }
    // Pick the closest outside vertex.
    std::size_t next = n;
    std::int64_t next_dist = kFar;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best_dist[v] < next_dist) {
        next = v;
        next_dist = best_dist[v];
      }
    }
    MSN_DCHECK(next < n);
    in_tree[next] = true;
    edges.push_back({best_from[next], next});
    current = next;
  }
  return edges;
}

std::int64_t RectilinearMstLength(const std::vector<Point>& points) {
  std::int64_t total = 0;
  for (const SteinerEdge& e : RectilinearMstEdges(points)) {
    total += ManhattanDistance(points[e.a], points[e.b]);
  }
  return total;
}

SteinerTree RectilinearMst(const std::vector<Point>& terminals) {
  SteinerTree tree;
  tree.points = terminals;
  tree.num_terminals = terminals.size();
  tree.edges = RectilinearMstEdges(terminals);
  return tree;
}

}  // namespace msn
