// Prim–Dijkstra spanning-tree tradeoff (Alpert et al. style).
//
// Grows a tree from a designated root; vertex v is attached through the
// frontier edge minimizing
//
//     c · pathlength(root -> u)  +  dist(u, v)
//
// with c in [0, 1]: c = 0 reproduces Prim's MST (minimum wirelength),
// c = 1 reproduces Dijkstra's shortest-path tree (minimum source
// eccentricity, more wire).  Intermediate c trades wirelength against
// path directness — a lightweight timing-driven topology generator, the
// spanning-tree stand-in for the P-Tree router the paper uses, and the
// substrate for studying how topology choice affects the optimizer
// (bench_topology).
#ifndef MSN_STEINER_PRIM_DIJKSTRA_H
#define MSN_STEINER_PRIM_DIJKSTRA_H

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "steiner/topology.h"

namespace msn {

/// Builds the Prim–Dijkstra tree over `terminals` rooted at index
/// `root_index` with tradeoff parameter `c` in [0, 1] (checked).
SteinerTree PrimDijkstra(const std::vector<Point>& terminals,
                         std::size_t root_index, double c);

}  // namespace msn

#endif  // MSN_STEINER_PRIM_DIJKSTRA_H
