// Shared 2-D (cost, delay) Pareto filtering.
//
// Costs are sums of library prices accumulated in different orders by
// different candidates, so "equal cost" means equal up to floating-point
// noise; an exact-compare sort may interleave approximately-equal costs
// arbitrarily.  The filter below therefore treats eps-equal costs as one
// class and keeps the best delay within the class — a plain
// sort-then-keep-first scheme can keep the *worse* representative.
#ifndef MSN_CORE_PARETO_H
#define MSN_CORE_PARETO_H

#include <algorithm>
#include <vector>

#include "common/numeric.h"

namespace msn {

/// Reduces `items` to the (cost, delay) Pareto frontier: strictly
/// increasing cost, strictly decreasing delay, one representative per
/// eps-equal cost class.  `cost` and `delay` are projections.
template <typename T, typename CostFn, typename DelayFn>
std::vector<T> ParetoByCostDelay(std::vector<T> items, CostFn cost,
                                 DelayFn delay) {
  // Exact comparisons keep the comparator a strict weak ordering
  // (eps-equality is not transitive); eps-equal cost classes are then
  // grouped in the linear pass, keeping the best delay per class.
  std::sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    if (cost(a) != cost(b)) return cost(a) < cost(b);
    return delay(a) < delay(b);
  });
  std::vector<T> pareto;
  for (T& item : items) {
    if (!pareto.empty() && ApproxEq(cost(pareto.back()), cost(item))) {
      if (delay(item) < delay(pareto.back()) - kEps) {
        pareto.back() = std::move(item);
      }
      continue;
    }
    if (!pareto.empty() && delay(item) >= delay(pareto.back()) - kEps) {
      continue;
    }
    pareto.push_back(std::move(item));
  }
  // A replacement above can make an entry non-improving relative to its
  // predecessor; squeeze once more.
  std::vector<T> out;
  for (T& item : pareto) {
    if (!out.empty() && delay(item) >= delay(out.back()) - kEps) continue;
    out.push_back(std::move(item));
  }
  return out;
}

}  // namespace msn

#endif  // MSN_CORE_PARETO_H
