// Optimal repeater insertion for multisource nets — the paper's primary
// contribution (Problem 2.1, Section IV, Figs. 5–10).
//
// Given a routing topology with degree-2 insertion points, a repeater
// library, and terminal parameters, RunMsri performs bottom-up dynamic
// programming over the tree re-oriented at a root terminal.  Each subtree
// maintains a minimal functional subset of solutions characterized by
// (cost, cap, sink_delay, arr(c_E), diam(c_E)) — see src/core/solution.h.
// The subroutines map one-to-one to the paper's figures:
//
//   LeafSolutions     (Fig. 6)  — one solution per terminal driver option;
//   Augment           (Fig. 10) — extend a subtree by the wire to its
//                                 parent (shift + add-slope + add-scalar);
//   JoinSets          (Fig. 7)  — merge sibling subtrees at a branch;
//   RepeaterSolutions (Fig. 8)  — optionally place each library repeater,
//                                 in both orientations, at an insertion
//                                 point (decouples: arr becomes a fresh
//                                 line, diam becomes a constant);
//   RootSolutions     (Fig. 9)  — close the recursion at the root terminal
//                                 and emit (cost, ARD) tradeoff points.
//
// The result is the full cost-versus-ARD Pareto frontier with materialized
// assignments; MinCostFeasible answers the paper's "min cost subject to
// ARD <= spec" formulation, and setting spec = MinArd() recovers the
// cost-oblivious minimum-diameter solution.
//
// Theorem 4.1 (optimality) is exercised against an exhaustive enumerator
// in tests/msri_optimality_test.cc.
#ifndef MSN_CORE_MSRI_H
#define MSN_CORE_MSRI_H

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/cancel.h"
#include "common/executor.h"
#include "core/mfs.h"
#include "core/solution.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct MsriOptions {
  /// Consider placing library repeaters at insertion points.
  bool insert_repeaters = true;
  /// Consider re-sizing terminal drivers from `sizing_library`.
  bool size_drivers = false;
  /// Driver/receiver realizations offered to every terminal when
  /// size_drivers is set (see DriverSizingLibrary()).
  std::vector<TerminalOption> sizing_library;
  /// Simultaneous discrete wire sizing (paper conclusions, after
  /// [15],[20]): every wire segment independently picks a width factor
  /// from `wire_width_choices` (resistance divides by the factor,
  /// capacitance multiplies), paying `wire_area_cost_per_um` × length ×
  /// (factor - 1) of extra cost.  Factors must be >= 1 and include the
  /// minimum width 1.0 (checked).
  bool size_wires = false;
  std::vector<double> wire_width_choices = {1.0, 2.0};
  double wire_area_cost_per_um = 0.0005;
  /// Slew control: when positive, every unbuffered stage (a maximal
  /// region not cut by repeaters) must have wire diameter at most this
  /// many µm — the standard practical proxy for bounding transition
  /// times ([15]'s slew-aware models motivate it; see
  /// elmore/moments.h::SlewEstimate for the physical link).  Solutions
  /// that can no longer be closed within the bound are discarded.
  double max_stage_length_um = 0.0;
  /// Wire-area cost increments are rounded to multiples of this quantum.
  /// Without it nearly every width combination has a distinct cost and
  /// dominance pruning collapses (the classic wire-sizing blowup the
  /// paper's pseudopolynomial remark alludes to); with it the DP is exact
  /// for the quantized objective.  0 disables rounding.
  double wire_cost_quantum = 0.05;
  /// Root node; kNoNode roots at terminal 0's node.  Rooting at a terminal
  /// is required (paper Section IV).
  NodeId root = kNoNode;
  MfsOptions mfs;
  /// Observability sink (see src/obs/stats.h and docs/OBSERVABILITY.md):
  /// when non-null, the DP records per-phase wall time and invocation
  /// counts (Figs. 6-10), MFS candidate flow and prune events, per-node
  /// set sizes, and PWL breakpoint growth into the sink's registry.
  /// Null (the default) disables instrumentation at zero cost.
  obs::StatsSink* stats = nullptr;
  /// Request-scoped tracing (src/obs/trace.h): when non-null, the DP
  /// opens one span per phase invocation next to the phase timers, so a
  /// per-request trace attributes DP time to LeafSolutions / Augment /
  /// JoinSets / RepeaterSolutions / RootSolutions.  Thread-confined like
  /// `stats`: parallel worker tasks trace nothing.  Null (the default)
  /// costs one pointer compare per phase.  Non-semantic: excluded from
  /// service::Canonicalize like `cancel`.
  obs::Trace* trace = nullptr;
  /// Intra-net parallelism (docs/RUNTIME.md): when non-null, independent
  /// sibling subtrees at branch nodes are solved as separate executor
  /// tasks before the sequential JoinSets fold — the fan-out the paper's
  /// Section IV structure makes embarrassingly parallel.  Deterministic:
  /// per-child sets are computed exactly as in a serial run and folded in
  /// child order, and worker tasks accumulate into task-local MsriStats
  /// merged after the barrier, so results and DP counters are identical
  /// at any thread count.  `stats` detail recorded on worker threads
  /// (phase timers, PWL histograms) is skipped — obs instruments are
  /// thread-confined by design.  Ignored when `set_observer` is set (the
  /// callback is not required to be thread-safe).  Null (the default)
  /// keeps the DP fully serial.
  Executor* executor = nullptr;
  /// Fan-out guard: a branch parallelizes only when at least two of its
  /// child subtrees span this many nodes, so small nets stay serial and
  /// task overhead cannot dominate.
  std::size_t parallel_min_nodes = 64;
  /// Debug/teaching hook: invoked with every node's finalized solution
  /// set as the bottom-up pass completes it (after MFS pruning).
  std::function<void(NodeId, const SolutionSet&)> set_observer;
  /// Cooperative cancellation (src/common/cancel.h): the DP polls this
  /// token at node granularity and inside the expensive per-solution
  /// loops (JoinSets' merge above all), so an expired deadline or a
  /// disconnected client abandons the run in bounded time.  On firing,
  /// RunMsri throws CancelledError; any partial work is discarded but
  /// stats recorded so far remain valid (monotonic counters, no
  /// double counting).  The default token never fires.  Non-semantic:
  /// excluded from service::Canonicalize, so cancellable and
  /// non-cancellable runs share a cache fingerprint.
  CancellationToken cancel;
};

/// One point of the cost-vs-ARD tradeoff suite, with its realization.
struct TradeoffPoint {
  double cost = 0.0;
  double ard_ps = 0.0;
  RepeaterAssignment repeaters;
  DriverAssignment drivers;
  std::size_t num_repeaters = 0;
  /// Width factor per edge (indexed like RcTree::Edges()); empty unless
  /// the run sized wires.  Verify with RcTree::WithWireWidths.
  std::vector<double> wire_widths;
};

struct MsriStats {
  std::size_t solutions_generated = 0;
  /// (s1, s2) pairs the JoinSets cross product visited.
  std::size_t join_candidates = 0;
  /// Pairs discarded before their PWL curves were materialized: parity
  /// mismatch, provably-empty validity overlap (bounding-range reject),
  /// empty validity intersection, or stage-length violation.  Always
  /// <= join_candidates.
  std::size_t join_pruned_early = 0;
  std::size_t max_set_size = 0;       ///< Largest per-node set after MFS.
  std::size_t max_pwl_segments = 0;   ///< Largest PWL encountered.
  MfsStats mfs;
};

/// One Pareto point condensed to its scalar coordinates — the part of a
/// TradeoffPoint that survives summarization (no materialized
/// assignments).
struct TradeoffSummary {
  double cost = 0.0;
  double ard_ps = 0.0;
  std::size_t num_repeaters = 0;

  bool operator==(const TradeoffSummary&) const = default;
};

/// Value-type condensation of a completed MsriResult: the cost-vs-ARD
/// frontier without the per-point repeater/driver/width assignments.
/// This is what the optimization service caches and serves — small,
/// copyable, and sufficient to answer every frontier query
/// (MinCostFeasible / MinArd / MinCost mirror MsriResult exactly, so a
/// cached answer is indistinguishable from a fresh one).
struct MsriSummary {
  /// Sorted by increasing cost (ARD strictly decreasing), like
  /// MsriResult::Pareto().
  std::vector<TradeoffSummary> pareto;
  std::size_t solutions_generated = 0;
  std::size_t max_set_size = 0;

  const TradeoffSummary* MinCostFeasible(double spec_ps) const;
  const TradeoffSummary* MinArd() const;
  const TradeoffSummary* MinCost() const;

  /// Rough heap footprint, used for cache byte budgeting.
  std::size_t ApproxBytes() const;

  bool operator==(const MsriSummary&) const = default;
};

class MsriResult {
 public:
  /// Pareto frontier, sorted by increasing cost (ARD strictly decreasing).
  const std::vector<TradeoffPoint>& Pareto() const { return pareto_; }

  /// Cheapest point with ARD <= spec_ps; nullptr if the spec is
  /// unachievable.  Degenerate specs are handled explicitly rather than
  /// through comparison fallthrough: a NaN spec is no spec at all and
  /// returns nullptr; -inf likewise; a negative finite spec is simply
  /// unachievable (ARD is non-negative) and returns nullptr; +inf is
  /// achievable by every point and returns MinCost().
  const TradeoffPoint* MinCostFeasible(double spec_ps) const;

  /// The minimum-ARD point (cost-oblivious optimum); nullptr if empty.
  const TradeoffPoint* MinArd() const;

  /// The cheapest point (typically the no-repeater solution).
  const TradeoffPoint* MinCost() const;

  const MsriStats& Stats() const { return stats_; }

 private:
  friend MsriResult RunMsri(const RcTree&, const Technology&,
                            const MsriOptions&);
  std::vector<TradeoffPoint> pareto_;
  MsriStats stats_;
};

/// Cost charged for driving a wire of `length_um` at width factor `w`
/// (extra metal over minimum width), rounded to `quantum` when positive.
/// Shared by the DP and the exhaustive baseline so both optimize the same
/// objective.
inline double WireAreaCost(double rate_per_um, double length_um, double w,
                           double quantum) {
  const double raw = rate_per_um * length_um * (w - 1.0);
  if (quantum <= 0.0) return raw;
  return std::round(raw / quantum) * quantum;
}

/// Runs the optimal repeater insertion / driver sizing DP.
MsriResult RunMsri(const RcTree& tree, const Technology& tech,
                   const MsriOptions& options = {});

/// Condenses a completed result into its cacheable summary.
MsriSummary Summarize(const MsriResult& result);

}  // namespace msn

#endif  // MSN_CORE_MSRI_H
