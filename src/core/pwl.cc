#include "core/pwl.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

#include "common/check.h"
#include "obs/stats.h"

namespace msn {
namespace {

/// Relative tolerance for merging segments whose parameters (or widths)
/// differ only by accumulated rounding noise.  Deliberately far tighter
/// than kEps (1e-9, the dominance slack): merging is a representation
/// choice, not an approximation, so it must stay well below anything the
/// DP's comparisons can see.  Doubles carry ~2.2e-16 of relative error
/// per operation; 1e-12 absorbs thousands of accumulated ulps while
/// staying three orders of magnitude below the decision epsilons.
constexpr double kMergeEps = 1e-12;

bool MergeEq(double a, double b) {
  return std::fabs(a - b) <=
         kMergeEps * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Appends a segment, merging noise: parameters equal to the previous
/// segment's within kMergeEps extend it, and a breakpoint epsilon-close
/// to the previous one collapses the near-zero-width sliver the previous
/// segment would have been (the new parameters win, the earlier x_lo is
/// kept — so the leading x_lo == 0 invariant is preserved).  Slivers
/// arise when two inputs carry breakpoints that drifted apart by
/// rounding; merging them exactly (the old std::unique behaviour) let
/// segment counts inflate through the whole DP.
void AppendTo(PwlStore& out, double x_lo, double intercept, double slope) {
  if (!out.Empty()) {
    const std::size_t last = out.Size() - 1;
    if (MergeEq(out.Intercept()[last], intercept) &&
        MergeEq(out.Slope()[last], slope)) {
      return;  // Extends the previous segment; nothing to add.
    }
    if (MergeEq(out.XLo()[last], x_lo)) {
      out.ReplaceBackParams(intercept, slope);
      return;
    }
  }
  out.Append(x_lo, intercept, slope);
}

}  // namespace

Pwl Pwl::Constant(double v) { return Line(v, 0.0); }

Pwl Pwl::Line(double intercept, double slope) {
  Pwl f;
  f.store_.Append(0.0, intercept, slope);
  return f;
}

std::size_t Pwl::SegmentIndexAt(double x) const {
  MSN_DCHECK(!store_.Empty());
  // Last segment whose x_lo <= x; only the x column is touched.
  const double* first = store_.XLo();
  const double* last = first + store_.Size();
  const double* it = std::upper_bound(first, last, x);
  MSN_DCHECK(it != first);
  return static_cast<std::size_t>(it - first) - 1;
}

double Pwl::Eval(double x) const {
  MSN_CHECK_MSG(x >= 0.0, "Pwl evaluated at negative x = " << x);
  if (store_.Empty()) return -kInf;
  const std::size_t i = SegmentIndexAt(x);
  return store_.Intercept()[i] + store_.Slope()[i] * x;
}

Pwl& Pwl::AddScalar(double s) {
  double* b = store_.MutableIntercept();
  const std::size_t n = store_.Size();
  for (std::size_t i = 0; i < n; ++i) b[i] += s;
  obs::RecordPwl(obs::PwlPrimitive::kAddScalar, n);
  return *this;
}

Pwl& Pwl::AddSlope(double m) {
  double* s = store_.MutableSlope();
  const std::size_t n = store_.Size();
  for (std::size_t i = 0; i < n; ++i) s[i] += m;
  obs::RecordPwl(obs::PwlPrimitive::kAddSlope, n);
  return *this;
}

Pwl Pwl::Shifted(double delta) const {
  MSN_CHECK_MSG(delta >= 0.0, "Pwl shift by negative delta = " << delta);
  if (store_.Empty() || delta == 0.0) {
    obs::RecordPwl(obs::PwlPrimitive::kShift, store_.Size());
    return *this;
  }
  const std::size_t n = store_.Size();
  const double* x = store_.XLo();
  const double* b = store_.Intercept();
  const double* m = store_.Slope();
  Pwl out;
  out.store_.Reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x_hi = i + 1 < n ? x[i + 1] : kInf;
    if (x_hi <= delta) continue;  // Entirely left of the new origin.
    // g(x) = f(x + delta) = (intercept + slope*delta) + slope*x.
    AppendTo(out.store_, std::max(0.0, x[i] - delta), b[i] + m[i] * delta,
             m[i]);
  }
  MSN_DCHECK(!out.store_.Empty() && out.store_.XLo()[0] == 0.0);
  obs::RecordPwl(obs::PwlPrimitive::kShift, out.store_.Size());
  return out;
}

Pwl Pwl::Max(const Pwl& f, const Pwl& g) {
  if (f.IsNegInf()) {
    obs::RecordPwl(obs::PwlPrimitive::kMax, g.NumSegments());
    return g;
  }
  if (g.IsNegInf()) {
    obs::RecordPwl(obs::PwlPrimitive::kMax, f.NumSegments());
    return f;
  }

  const std::size_t nf = f.store_.Size();
  const std::size_t ng = g.store_.Size();
  const double* fx = f.store_.XLo();
  const double* fb = f.store_.Intercept();
  const double* fm = f.store_.Slope();
  const double* gx = g.store_.XLo();
  const double* gb = g.store_.Intercept();
  const double* gm = g.store_.Slope();

  Pwl out;
  out.store_.Reserve(nf + ng + 2);

  // Two-pointer sweep over the union of breakpoints: [a, b) is always an
  // interval on which both inputs are single lines (i and j index the
  // covering segments).  Both functions start at x_lo == 0.
  std::size_t i = 0;
  std::size_t j = 0;
  double a = 0.0;
  for (;;) {
    const double next_f = i + 1 < nf ? fx[i + 1] : kInf;
    const double next_g = j + 1 < ng ? gx[j + 1] : kInf;
    const double b = std::min(next_f, next_g);

    const double di = fb[i] - gb[j];
    const double ds = fm[i] - gm[j];
    // d(x) = di + ds*x is f - g on [a, b).
    double xc = kInf;
    if (ds != 0.0) xc = -di / ds;

    const auto append_winner_at = [&](double x0, double x1, double from) {
      // Decide by the value at the midpoint (or at x0 + 1 when unbounded).
      const double mid = std::isinf(x1) ? x0 + 1.0 : (x0 + x1) / 2.0;
      if (di + ds * mid >= 0.0) {
        AppendTo(out.store_, from, fb[i], fm[i]);
      } else {
        AppendTo(out.store_, from, gb[j], gm[j]);
      }
    };

    if (xc > a && xc < b) {
      append_winner_at(a, xc, a);
      append_winner_at(xc, b, xc);
    } else {
      append_winner_at(a, b, a);
    }

    if (std::isinf(b)) break;
    a = b;
    if (next_f == b) ++i;
    if (next_g == b) ++j;
  }
  obs::RecordPwl(obs::PwlPrimitive::kMax, out.store_.Size());
  return out;
}

IntervalSet Pwl::RegionLessEqual(const Pwl& g, double eps) const {
  if (IsNegInf()) return IntervalSet::NonNegativeReals();
  if (g.IsNegInf()) return IntervalSet();

  const std::size_t nf = store_.Size();
  const std::size_t ng = g.store_.Size();
  const double* fx = store_.XLo();
  const double* fb = store_.Intercept();
  const double* fm = store_.Slope();
  const double* gx = g.store_.XLo();
  const double* gb = g.store_.Intercept();
  const double* gm = g.store_.Slope();

  std::vector<Interval> where;
  // Same two-pointer sweep as Max; the region endpoints must stay exactly
  // the crossover coordinates dominance pruning computed before the SoA
  // rework, so no merge epsilon is applied here.
  std::size_t i = 0;
  std::size_t j = 0;
  double a = 0.0;
  for (;;) {
    const double next_f = i + 1 < nf ? fx[i + 1] : kInf;
    const double next_g = j + 1 < ng ? gx[j + 1] : kInf;
    const double b = std::min(next_f, next_g);

    // Condition: (f - g - eps)(x) = di + ds*x <= 0 on [a, b).
    const double di = fb[i] - gb[j] - eps;
    const double ds = fm[i] - gm[j];
    if (ds == 0.0) {
      if (di <= 0.0) where.push_back({a, b});
    } else {
      const double xc = -di / ds;
      if (ds > 0.0) {
        // Satisfied for x <= xc.
        const double hi = std::min(b, xc);
        if (a < hi) where.push_back({a, hi});
      } else {
        // Satisfied for x >= xc.
        const double lo = std::max(a, xc);
        if (lo < b) where.push_back({lo, b});
      }
    }

    if (std::isinf(b)) break;
    a = b;
    if (next_f == b) ++i;
    if (next_g == b) ++j;
  }
  return IntervalSet(std::move(where));
}

void Pwl::Simplify(double eps) {
  if (store_.Size() < 2) return;
  const std::size_t n = store_.Size();
  const double* x = store_.XLo();
  const double* b = store_.Intercept();
  const double* m = store_.Slope();
  PwlStore out;
  out.Reserve(n);
  out.Append(x[0], b[0], m[0]);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t last = out.Size() - 1;
    if (ApproxEq(out.Intercept()[last], b[i], eps) &&
        ApproxEq(out.Slope()[last], m[i], eps)) {
      continue;
    }
    out.Append(x[i], b[i], m[i]);
  }
  store_ = std::move(out);
}

bool Pwl::IsConvexNonDecreasing(double eps) const {
  const std::size_t n = store_.Size();
  const double* x = store_.XLo();
  const double* b = store_.Intercept();
  const double* m = store_.Slope();
  for (std::size_t i = 0; i < n; ++i) {
    if (m[i] < -eps) return false;
    if (i == 0) continue;
    // Convexity: slopes non-decreasing.
    if (m[i] < m[i - 1] - eps) return false;
    // Continuity at the breakpoint.
    if (!ApproxEq(b[i] + m[i] * x[i], b[i - 1] + m[i - 1] * x[i],
                  std::max(eps, eps * std::fabs(x[i])))) {
      return false;
    }
  }
  return true;
}

bool Pwl::ApproxEqual(const Pwl& f, const Pwl& g, double eps) {
  if (f.IsNegInf() || g.IsNegInf()) return f.IsNegInf() == g.IsNegInf();
  std::vector<double> xs;
  xs.reserve(f.NumSegments() + g.NumSegments());
  xs.insert(xs.end(), f.store_.XLo(), f.store_.XLo() + f.store_.Size());
  xs.insert(xs.end(), g.store_.XLo(), g.store_.XLo() + g.store_.Size());
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double a = xs[k];
    const double b = k + 1 < xs.size() ? xs[k + 1] : a + 2.0;
    const double mid = (a + b) / 2.0;
    if (!ApproxEq(f.Eval(a), g.Eval(a), eps)) return false;
    if (!ApproxEq(f.Eval(mid), g.Eval(mid), eps)) return false;
  }
  // Tail behaviour: slopes of the last segments must agree.
  return ApproxEq(f.store_.Slope()[f.store_.Size() - 1],
                  g.store_.Slope()[g.store_.Size() - 1], eps);
}

std::ostream& operator<<(std::ostream& os, const Pwl& f) {
  if (f.IsNegInf()) return os << "{-inf}";
  os << '{';
  const Pwl::SegmentView segs = f.Segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i) os << ", ";
    const PwlSegment s = segs[i];
    os << "x>=" << s.x_lo << ": " << s.intercept << '+' << s.slope << "x";
  }
  return os << '}';
}

}  // namespace msn
