#include "core/pwl.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "obs/stats.h"

namespace msn {
namespace {

/// Merged, deduplicated breakpoints of two non-bottom functions.
std::vector<double> MergedBreakpoints(const Pwl& f, const Pwl& g) {
  std::vector<double> xs;
  xs.reserve(f.NumSegments() + g.NumSegments());
  for (const PwlSegment& s : f.Segments()) xs.push_back(s.x_lo);
  for (const PwlSegment& s : g.Segments()) xs.push_back(s.x_lo);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

void AppendSegment(std::vector<PwlSegment>& out, PwlSegment seg) {
  if (!out.empty() && out.back().intercept == seg.intercept &&
      out.back().slope == seg.slope) {
    return;  // Extends the previous segment; nothing to add.
  }
  out.push_back(seg);
}

}  // namespace

Pwl Pwl::Constant(double v) { return Line(v, 0.0); }

Pwl Pwl::Line(double intercept, double slope) {
  return Pwl({PwlSegment{0.0, intercept, slope}});
}

std::size_t Pwl::SegmentIndexAt(double x) const {
  MSN_DCHECK(!segments_.empty());
  // Last segment whose x_lo <= x.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), x,
      [](double v, const PwlSegment& s) { return v < s.x_lo; });
  MSN_DCHECK(it != segments_.begin());
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

double Pwl::Eval(double x) const {
  MSN_CHECK_MSG(x >= 0.0, "Pwl evaluated at negative x = " << x);
  if (segments_.empty()) return -kInf;
  return segments_[SegmentIndexAt(x)].ValueAt(x);
}

Pwl& Pwl::AddScalar(double s) {
  for (PwlSegment& seg : segments_) seg.intercept += s;
  obs::RecordPwl(obs::PwlPrimitive::kAddScalar, segments_.size());
  return *this;
}

Pwl& Pwl::AddSlope(double m) {
  for (PwlSegment& seg : segments_) seg.slope += m;
  obs::RecordPwl(obs::PwlPrimitive::kAddSlope, segments_.size());
  return *this;
}

Pwl Pwl::Shifted(double delta) const {
  MSN_CHECK_MSG(delta >= 0.0, "Pwl shift by negative delta = " << delta);
  if (segments_.empty() || delta == 0.0) {
    obs::RecordPwl(obs::PwlPrimitive::kShift, segments_.size());
    return *this;
  }
  std::vector<PwlSegment> out;
  out.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const PwlSegment& s = segments_[i];
    const double x_hi =
        i + 1 < segments_.size() ? segments_[i + 1].x_lo : kInf;
    if (x_hi <= delta) continue;  // Entirely left of the new origin.
    PwlSegment t;
    t.x_lo = std::max(0.0, s.x_lo - delta);
    // g(x) = f(x + delta) = (intercept + slope*delta) + slope*x.
    t.intercept = s.intercept + s.slope * delta;
    t.slope = s.slope;
    AppendSegment(out, t);
  }
  MSN_DCHECK(!out.empty() && out.front().x_lo == 0.0);
  obs::RecordPwl(obs::PwlPrimitive::kShift, out.size());
  return Pwl(std::move(out));
}

Pwl Pwl::Max(const Pwl& f, const Pwl& g) {
  if (f.IsNegInf()) {
    obs::RecordPwl(obs::PwlPrimitive::kMax, g.NumSegments());
    return g;
  }
  if (g.IsNegInf()) {
    obs::RecordPwl(obs::PwlPrimitive::kMax, f.NumSegments());
    return f;
  }

  const std::vector<double> xs = MergedBreakpoints(f, g);
  std::vector<PwlSegment> out;
  out.reserve(xs.size() + 2);

  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double a = xs[k];
    const double b = k + 1 < xs.size() ? xs[k + 1] : kInf;
    const PwlSegment& sf = f.segments_[f.SegmentIndexAt(a)];
    const PwlSegment& sg = g.segments_[g.SegmentIndexAt(a)];
    const double di = sf.intercept - sg.intercept;
    const double ds = sf.slope - sg.slope;
    // d(x) = di + ds*x is f - g on [a, b).
    double xc = kInf;
    if (ds != 0.0) xc = -di / ds;

    auto winner_at = [&](double x0, double x1) -> const PwlSegment& {
      // Decide by the value at the midpoint (or at x0 + 1 when unbounded).
      const double mid = std::isinf(x1) ? x0 + 1.0 : (x0 + x1) / 2.0;
      return di + ds * mid >= 0.0 ? sf : sg;
    };

    if (xc > a && xc < b) {
      const PwlSegment& w1 = winner_at(a, xc);
      AppendSegment(out, {a, w1.intercept, w1.slope});
      const PwlSegment& w2 = winner_at(xc, b);
      AppendSegment(out, {xc, w2.intercept, w2.slope});
    } else {
      const PwlSegment& w = winner_at(a, b);
      AppendSegment(out, {a, w.intercept, w.slope});
    }
  }
  obs::RecordPwl(obs::PwlPrimitive::kMax, out.size());
  return Pwl(std::move(out));
}

IntervalSet Pwl::RegionLessEqual(const Pwl& g, double eps) const {
  if (IsNegInf()) return IntervalSet::NonNegativeReals();
  if (g.IsNegInf()) return IntervalSet();

  std::vector<Interval> where;
  const std::vector<double> xs = MergedBreakpoints(*this, g);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double a = xs[k];
    const double b = k + 1 < xs.size() ? xs[k + 1] : kInf;
    const PwlSegment& sf = segments_[SegmentIndexAt(a)];
    const PwlSegment& sg = g.segments_[g.SegmentIndexAt(a)];
    // Condition: (f - g - eps)(x) = di + ds*x <= 0 on [a, b).
    const double di = sf.intercept - sg.intercept - eps;
    const double ds = sf.slope - sg.slope;
    if (ds == 0.0) {
      if (di <= 0.0) where.push_back({a, b});
      continue;
    }
    const double xc = -di / ds;
    if (ds > 0.0) {
      // Satisfied for x <= xc.
      const double hi = std::min(b, xc);
      if (a < hi) where.push_back({a, hi});
    } else {
      // Satisfied for x >= xc.
      const double lo = std::max(a, xc);
      if (lo < b) where.push_back({lo, b});
    }
  }
  return IntervalSet(std::move(where));
}

void Pwl::Simplify(double eps) {
  if (segments_.size() < 2) return;
  std::vector<PwlSegment> out;
  out.reserve(segments_.size());
  out.push_back(segments_.front());
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    const PwlSegment& s = segments_[i];
    if (ApproxEq(out.back().intercept, s.intercept, eps) &&
        ApproxEq(out.back().slope, s.slope, eps)) {
      continue;
    }
    out.push_back(s);
  }
  segments_ = std::move(out);
}

bool Pwl::IsConvexNonDecreasing(double eps) const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].slope < -eps) return false;
    if (i == 0) continue;
    // Convexity: slopes non-decreasing.
    if (segments_[i].slope < segments_[i - 1].slope - eps) return false;
    // Continuity at the breakpoint.
    const double x = segments_[i].x_lo;
    if (!ApproxEq(segments_[i].ValueAt(x), segments_[i - 1].ValueAt(x),
                  std::max(eps, eps * std::fabs(x)))) {
      return false;
    }
  }
  return true;
}

bool Pwl::ApproxEqual(const Pwl& f, const Pwl& g, double eps) {
  if (f.IsNegInf() || g.IsNegInf()) return f.IsNegInf() == g.IsNegInf();
  const std::vector<double> xs = MergedBreakpoints(f, g);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double a = xs[k];
    const double b = k + 1 < xs.size() ? xs[k + 1] : a + 2.0;
    const double mid = (a + b) / 2.0;
    if (!ApproxEq(f.Eval(a), g.Eval(a), eps)) return false;
    if (!ApproxEq(f.Eval(mid), g.Eval(mid), eps)) return false;
  }
  // Tail behaviour: slopes of the last segments must agree.
  return ApproxEq(f.segments_.back().slope, g.segments_.back().slope, eps);
}

std::ostream& operator<<(std::ostream& os, const Pwl& f) {
  if (f.IsNegInf()) return os << "{-inf}";
  os << '{';
  const auto& segs = f.Segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i) os << ", ";
    os << "x>=" << segs[i].x_lo << ": " << segs[i].intercept << '+'
       << segs[i].slope << "x";
  }
  return os << '}';
}

}  // namespace msn
