// The dynamic-programming solution characterization of paper Section IV-B.
//
// A candidate repeater assignment to a subtree T_v is summarized by five
// quantities (three scalars, two PWL functions of the external capacitance
// c_E seen at the subtree's top interface):
//
//   cost        — total cost of repeaters and driver choices inside T_v;
//   cap         — capacitance T_v presents to its parent;
//   sink_delay  — max augmented delay from the top interface to a sink in
//                 T_v (scalar: depends only on caps inside T_v);
//   arr(c_E)    — max augmented arrival time at the top interface from
//                 sources in T_v (slope = undecoupled upstream resistance);
//   diam(c_E)   — augmented RC-diameter over source/sink pairs internal to
//                 T_v (internal paths still see c_E until a repeater above
//                 their apex decouples them).
//
// `valid` is the region of the c_E axis on which the solution has not been
// proven dominated (the minimal functional subset of Definition 4.3 —
// pruning may invalidate a solution on part of the domain only).
//
// Solutions carry provenance links so a chosen root solution can be
// materialized into a RepeaterAssignment / DriverAssignment.
#ifndef MSN_CORE_SOLUTION_H
#define MSN_CORE_SOLUTION_H

#include <memory>
#include <vector>

#include "common/interval_set.h"
#include "common/numeric.h"
#include "core/pwl.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

struct MsriSolution {
  // -- The five-dimensional characterization. -----------------------------
  double cost = 0.0;
  double cap = 0.0;
  double sink_delay = -kInf;
  Pwl arr;   // Bottom (-inf) when T_v holds no source.
  Pwl diam;  // Bottom when T_v holds no internal source/sink pair.
  IntervalSet valid = IntervalSet::NonNegativeReals();
  /// Slew-control bookkeeping (MsriOptions::max_stage_length_um): the
  /// longest unbuffered wirelength from the top interface down to a
  /// decoupled point (`stage_span_um`), and the longest unbuffered path
  /// between any two decoupled points inside the open top region
  /// (`stage_diam_um`).  Placing a repeater closes the region and must
  /// find both within the bound; both are monotone, so they join the
  /// dominance comparison as plain scalars.
  double stage_span_um = 0.0;
  double stage_diam_um = 0.0;

  /// Signal-polarity parity of the subtree's terminals relative to the
  /// top interface (paper Section V inverter extension).  Every terminal
  /// in a feasible subsolution shares one parity — a mixed join is
  /// discarded because no inverter above the join can repair it.  An
  /// inverting repeater at the subtree root flips the bit; the root of
  /// the whole net requires parity 0.  Solutions of different parity are
  /// incomparable under MFS dominance.
  int parity = 0;

  // -- Provenance. ---------------------------------------------------------
  enum class Kind {
    kLeaf,      ///< Terminal leaf; `detail` = sizing-library index or npos.
    kAugment,   ///< Subtree extended by the wire to its parent.
    kJoin,      ///< Two sibling subtrees merged at a branch point.
    kRepeater,  ///< Repeater placed at insertion point `node`.
  };
  static constexpr std::size_t kNoDetail = static_cast<std::size_t>(-1);

  Kind kind = Kind::kLeaf;
  NodeId node = kNoNode;
  std::size_t detail = kNoDetail;
  RepeaterOrientation orientation = RepeaterOrientation::kASideUp;
  std::shared_ptr<const MsriSolution> pred1;
  std::shared_ptr<const MsriSolution> pred2;  ///< Second operand of kJoin.
};

using SolutionPtr = std::shared_ptr<MsriSolution>;
using SolutionSet = std::vector<SolutionPtr>;

}  // namespace msn

#endif  // MSN_CORE_SOLUTION_H
