// Flat structure-of-arrays breakpoint storage backing Pwl (see pwl.h).
//
// A PwlStore holds the n segments of one piece-wise linear function as
// three contiguous coordinate arrays — x_lo[0..n), intercept[0..n),
// slope[0..n) — inside a single allocation, instead of the former
// std::vector<PwlSegment> array-of-structs.  The layout is chosen for the
// eq. (3) primitives, the DP's innermost hot loop:
//
//   * AddScalar touches only the intercept span and AddSlope only the
//     slope span: unit-stride streaming loops over doubles that the
//     compiler auto-vectorizes (the AoS layout strode over 24-byte
//     structs and could not).
//   * Eval binary-searches only the x_lo span — 3x the useful
//     breakpoints per cache line compared to the AoS layout.
//   * Max and RegionLessEqual walk two functions with two pointers over
//     the x_lo spans and never binary-search (see pwl.cc).
//
// Functions with at most kInlineSegments segments — the overwhelmingly
// common case in this DP: arrival lines from leaves and repeaters,
// constant diameters, and the few-segment maxima that convexity keeps
// small — live entirely inside the object (an inline arena) and never
// touch the heap.  Larger functions spill into one malloc'd block laid
// out [x | intercept | slope].  The former representation paid one heap
// vector per Pwl unconditionally, plus two transient allocations per
// Pwl::Max call.
#ifndef MSN_CORE_PWL_ARENA_H
#define MSN_CORE_PWL_ARENA_H

#include <algorithm>
#include <cstddef>
#include <new>

namespace msn {

class PwlStore {
 public:
  /// Segments stored inline, without heap involvement.  Four covers
  /// every line/constant plus the small maxima convexity produces.
  static constexpr std::size_t kInlineSegments = 4;

  // User-provided (not `= default`) so `const Pwl f;` stays legal: the
  // inline buffer is deliberately left uninitialized (only [0, size_)
  // is ever read), which would otherwise make the class not
  // const-default-constructible.
  PwlStore() {}

  PwlStore(const PwlStore& other) { CopyFrom(other); }

  PwlStore(PwlStore&& other) noexcept { MoveFrom(other); }

  PwlStore& operator=(const PwlStore& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  PwlStore& operator=(PwlStore&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  ~PwlStore() { Release(); }

  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  // The three coordinate spans, each `Size()` long and contiguous.
  const double* XLo() const { return x_; }
  const double* Intercept() const { return b_; }
  const double* Slope() const { return m_; }
  double* MutableIntercept() { return b_; }
  double* MutableSlope() { return m_; }

  void Clear() { size_ = 0; }

  /// Pre-sizes the backing block so subsequent Append calls up to `n`
  /// segments never reallocate (hot paths reserve the worst case once).
  void Reserve(std::size_t n) {
    if (n > cap_) Grow(n);
  }

  void Append(double x_lo, double intercept, double slope) {
    if (size_ == cap_) Grow(size_ + 1);
    x_[size_] = x_lo;
    b_[size_] = intercept;
    m_[size_] = slope;
    ++size_;
  }

  /// Rewrites the last segment's line parameters in place, keeping its
  /// x_lo — the sliver-collapse path of pwl.cc's AppendSegment.
  void ReplaceBackParams(double intercept, double slope) {
    b_[size_ - 1] = intercept;
    m_[size_ - 1] = slope;
  }

  void PopBack() { --size_; }

 private:
  void CopyFrom(const PwlStore& other) {
    size_ = other.size_;
    if (other.heap_ != nullptr && other.size_ > kInlineSegments) {
      cap_ = other.size_;
      heap_ = new double[3 * cap_];
      x_ = heap_;
      b_ = heap_ + cap_;
      m_ = heap_ + 2 * cap_;
    } else {
      cap_ = kInlineSegments;
      heap_ = nullptr;
      x_ = inline_;
      b_ = inline_ + kInlineSegments;
      m_ = inline_ + 2 * kInlineSegments;
    }
    std::copy_n(other.x_, size_, x_);
    std::copy_n(other.b_, size_, b_);
    std::copy_n(other.m_, size_, m_);
  }

  void MoveFrom(PwlStore& other) noexcept {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      cap_ = other.cap_;
      heap_ = other.heap_;
      x_ = other.x_;
      b_ = other.b_;
      m_ = other.m_;
      other.heap_ = nullptr;
      other.cap_ = kInlineSegments;
      other.x_ = other.inline_;
      other.b_ = other.inline_ + kInlineSegments;
      other.m_ = other.inline_ + 2 * kInlineSegments;
      other.size_ = 0;
    } else {
      cap_ = kInlineSegments;
      heap_ = nullptr;
      x_ = inline_;
      b_ = inline_ + kInlineSegments;
      m_ = inline_ + 2 * kInlineSegments;
      std::copy_n(other.x_, size_, x_);
      std::copy_n(other.b_, size_, b_);
      std::copy_n(other.m_, size_, m_);
      other.size_ = 0;
    }
  }

  void Release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = kInlineSegments;
    x_ = inline_;
    b_ = inline_ + kInlineSegments;
    m_ = inline_ + 2 * kInlineSegments;
    size_ = 0;
  }

  void Grow(std::size_t min_cap) {
    const std::size_t new_cap = std::max(min_cap, 2 * cap_);
    double* block = new double[3 * new_cap];
    std::copy_n(x_, size_, block);
    std::copy_n(b_, size_, block + new_cap);
    std::copy_n(m_, size_, block + 2 * new_cap);
    delete[] heap_;
    heap_ = block;
    cap_ = new_cap;
    x_ = block;
    b_ = block + new_cap;
    m_ = block + 2 * new_cap;
  }

  std::size_t size_ = 0;
  std::size_t cap_ = kInlineSegments;
  double* x_ = inline_;
  double* b_ = inline_ + kInlineSegments;
  double* m_ = inline_ + 2 * kInlineSegments;
  double* heap_ = nullptr;
  double inline_[3 * kInlineSegments];
};

}  // namespace msn

#endif  // MSN_CORE_PWL_ARENA_H
