#include "core/msri.h"

#include <algorithm>

#include "common/check.h"
#include "common/numeric.h"
#include "core/pareto.h"
#include "obs/trace.h"
#include "rctree/rooted.h"

namespace msn {
namespace {

/// Shared DP context.
struct Context {
  const RcTree& tree;
  const RootedTree& rooted;
  const Technology& tech;
  const MsriOptions& options;
  MsriStats* stats;
  /// Observability sink; null disables all recording (see MsriOptions).
  obs::StatsSink* sink;
  /// Request-scoped trace; null disables span recording (see
  /// MsriOptions::trace).  Thread-confined like the sink: worker
  /// sub-contexts carry null.
  obs::Trace* trace = nullptr;
  /// Intra-net fan-out executor; null keeps the traversal serial (see
  /// MsriOptions::executor).  Worker sub-contexts carry the executor on
  /// so deep branches keep fanning out — TaskGroup's helping Wait makes
  /// nested fan-out on a shared pool deadlock-free.
  Executor* executor = nullptr;
  /// Node count of every rooted subtree; only populated (non-null) when
  /// the executor is set.  Guards the fan-out threshold.
  const std::vector<std::size_t>* subtree_nodes = nullptr;
  /// Upper bound on any reachable external capacitance: the whole net's
  /// capacitance (wires at maximum width, fattest pins, every insertion
  /// point buffered with the fattest repeater side).  Solutions only need
  /// to be characterized on [0, x_max]; clipping the validity domains
  /// there lets dominance kill solutions that would only win at
  /// unreachable loads — essential for wire sizing, where wide variants
  /// otherwise survive forever on large-x slivers.
  double x_max = kInf;

  void Record(const SolutionSet& set) {
    stats->max_set_size = std::max(stats->max_set_size, set.size());
    for (const SolutionPtr& s : set) {
      stats->max_pwl_segments =
          std::max({stats->max_pwl_segments, s->arr.NumSegments(),
                    s->diam.NumSegments()});
    }
    if (sink != nullptr) {
      sink->msri_set_size->Record(static_cast<double>(set.size()));
    }
  }

  /// The phase's timer when instrumentation is on, else null (ScopedTimer
  /// then skips the clock entirely).
  obs::Timer* PhaseTimer(obs::Timer* obs::StatsSink::* member) const {
    return sink != nullptr ? sink->*member : nullptr;
  }
};

/// Fig. 6: one solution per driver option of the terminal at leaf `v`.
SolutionSet LeafSolutions(Context& ctx, NodeId v) {
  const obs::ScopedTimer timer(ctx.PhaseTimer(&obs::StatsSink::msri_leaf));
  const obs::ScopedSpan span(ctx.trace, "msri.leaf");
  const std::size_t t = ctx.tree.Node(v).terminal_index;
  const TerminalParams& params = ctx.tree.Terminal(t);

  // Candidate realizations: either the whole sizing library or just the
  // terminal's default driver (detail = kNoDetail marks the default).
  std::vector<std::pair<std::size_t, const TerminalOption*>> choices;
  if (ctx.options.size_drivers) {
    for (std::size_t i = 0; i < ctx.options.sizing_library.size(); ++i) {
      choices.emplace_back(i, &ctx.options.sizing_library[i]);
    }
  } else {
    choices.emplace_back(MsriSolution::kNoDetail, &params.driver);
  }

  SolutionSet set;
  set.reserve(choices.size());
  for (const auto& [detail, opt] : choices) {
    const EffectiveTerminal eff = ResolveTerminal(params, *opt);
    auto s = std::make_shared<MsriSolution>();
    s->cost = opt->cost;
    s->cap = eff.pin_cap;
    s->sink_delay = eff.is_sink ? eff.downstream_ps : -kInf;
    if (eff.is_source) {
      // The driver's resistance sees its own pin capacitance plus all of
      // c_E (DESIGN.md §4 load convention).
      s->arr = Pwl::Line(eff.arrival_ps + eff.driver_intrinsic_ps +
                             eff.driver_res * eff.pin_cap,
                         eff.driver_res);
    }
    s->valid = IntervalSet(0.0, ctx.x_max);
    s->kind = MsriSolution::Kind::kLeaf;
    s->node = v;
    s->detail = detail;
    set.push_back(std::move(s));
    ++ctx.stats->solutions_generated;
  }
  return set;
}

/// Fig. 10: extend every solution by the wire (Parent(v), v).  With wire
/// sizing, every width choice of the segment is a separate solution
/// (resistance /w, capacitance ·w, extra area cost — the paper's
/// conclusions' extension after [15],[20]).
SolutionSet Augment(Context& ctx, NodeId v, const SolutionSet& below) {
  const obs::ScopedTimer timer(
      ctx.PhaseTimer(&obs::StatsSink::msri_augment));
  const obs::ScopedSpan span(ctx.trace, "msri.augment");
  const double base_re = ctx.rooted.ParentRes(v);
  const double base_ce = ctx.rooted.ParentCap(v);
  const double len = ctx.rooted.ParentLengthUm(v);

  std::vector<std::pair<std::size_t, double>> widths;
  if (ctx.options.size_wires) {
    for (std::size_t i = 0; i < ctx.options.wire_width_choices.size(); ++i) {
      widths.emplace_back(i, ctx.options.wire_width_choices[i]);
    }
  } else {
    widths.emplace_back(MsriSolution::kNoDetail, 1.0);
  }

  SolutionSet out;
  out.reserve(below.size() * widths.size());
  for (const SolutionPtr& s : below) {
    ctx.options.cancel.Check();
    for (const auto& [detail, w] : widths) {
      const double re = base_re / w;
      const double ce = base_ce * w;
      auto a = std::make_shared<MsriSolution>();
      a->cost = s->cost + WireAreaCost(ctx.options.wire_area_cost_per_um,
                                       len, w, ctx.options.wire_cost_quantum);
      a->cap = s->cap + ce;
      a->sink_delay = re * (ce / 2.0 + s->cap) + s->sink_delay;
      a->arr = s->arr.Shifted(ce);
      a->arr.AddScalar(re * ce / 2.0);
      a->arr.AddSlope(re);
      a->diam = s->diam.Shifted(ce);
      a->valid = s->valid.Shift(-ce);
      // Slew bookkeeping only when the constraint is live: the extra
      // dominance dimensions would otherwise weaken pruning for nothing.
      if (ctx.options.max_stage_length_um > 0.0) {
        a->stage_span_um = s->stage_span_um + len;
        a->stage_diam_um = s->stage_diam_um;
        // Even a repeater directly above cannot close this region within
        // the bound anymore: discard.
        if (std::max(a->stage_span_um, a->stage_diam_um) >
            ctx.options.max_stage_length_um) {
          ++ctx.stats->solutions_generated;
          continue;
        }
      }
      a->parity = s->parity;
      a->kind = MsriSolution::Kind::kAugment;
      a->node = v;
      a->detail = detail;
      a->pred1 = s;
      if (!a->valid.Empty()) out.push_back(std::move(a));
      ++ctx.stats->solutions_generated;
    }
  }
  return out;
}

/// Fig. 7: merge the solution sets of two sibling subtrees at a branch.
/// The raw product can dwarf its own Pareto frontier (wire sizing
/// especially), so the product is pruned in bounded chunks instead of
/// being materialized whole — early pruning is sound (dominance is
/// monotone) and keeps peak memory proportional to the survivors.
SolutionSet JoinSets(Context& ctx, NodeId v, const SolutionSet& s1set,
                     const SolutionSet& s2set) {
  const obs::ScopedTimer timer(ctx.PhaseTimer(&obs::StatsSink::msri_join));
  const obs::ScopedSpan span(ctx.trace, "msri.join");
  std::size_t prune_at =
      std::max<std::size_t>(4096, 4 * (s1set.size() + s2set.size()));
  SolutionSet out;
  for (const SolutionPtr& s1 : s1set) {
    // The merge is the DP's quadratic kernel, so this is the check that
    // bounds cancellation latency on big nets (one s2 sweep at most).
    ctx.options.cancel.Check();
    for (const SolutionPtr& s2 : s2set) {
      ++ctx.stats->join_candidates;
      // Terminals across the two subtrees would pair with odd polarity;
      // no repeater above the join can fix that, so drop immediately.
      if (s1->parity != s2->parity) {
        ++ctx.stats->join_pruned_early;
        continue;
      }
      // Bounding-range reject: both shifted validity sets live inside
      // [max(0, lo - cap), hi - cap).  If those ranges miss each other (or
      // clip away entirely), the full Shift/Intersect below — two interval
      // vectors plus a merge — is guaranteed to come back empty, so skip
      // it.  Same pair outcome and the same solutions_generated bump the
      // materialized empty intersection would have produced.
      const double a_hi = s1->valid.Intervals().back().hi - s2->cap;
      const double b_hi = s2->valid.Intervals().back().hi - s1->cap;
      const double a_lo =
          std::max(0.0, s1->valid.Intervals().front().lo - s2->cap);
      const double b_lo =
          std::max(0.0, s2->valid.Intervals().front().lo - s1->cap);
      if (a_hi <= a_lo || b_hi <= b_lo || a_hi <= b_lo || b_hi <= a_lo) {
        ++ctx.stats->solutions_generated;
        ++ctx.stats->join_pruned_early;
        continue;
      }
      IntervalSet valid =
          s1->valid.Shift(-s2->cap).Intersect(s2->valid.Shift(-s1->cap));
      ++ctx.stats->solutions_generated;
      if (valid.Empty()) {
        ++ctx.stats->join_pruned_early;
        continue;
      }
      // Stage-length feasibility needs only the predecessors' scalars, so
      // test it before the expensive PWL max/cross-term construction.
      double stage_span = 0.0;
      double stage_diam = 0.0;
      if (ctx.options.max_stage_length_um > 0.0) {
        stage_span = std::max(s1->stage_span_um, s2->stage_span_um);
        stage_diam = std::max({s1->stage_diam_um, s2->stage_diam_um,
                               s1->stage_span_um + s2->stage_span_um});
        if (std::max(stage_span, stage_diam) >
            ctx.options.max_stage_length_um) {
          ++ctx.stats->join_pruned_early;
          continue;
        }
      }

      auto j = std::make_shared<MsriSolution>();
      j->cost = s1->cost + s2->cost;
      j->cap = s1->cap + s2->cap;
      j->sink_delay = std::max(s1->sink_delay, s2->sink_delay);
      // Sources in T1 see the sibling's capacitance as part of their
      // external world, and vice versa.
      const Pwl arr1 = s1->arr.Shifted(s2->cap);
      const Pwl arr2 = s2->arr.Shifted(s1->cap);
      j->arr = Pwl::Max(arr1, arr2);
      // Internal diameter: each side's internal pairs, plus the new cross
      // pairs source-in-T1 -> sink-in-T2 and symmetrically.
      Pwl diam = Pwl::Max(s1->diam.Shifted(s2->cap),
                          s2->diam.Shifted(s1->cap));
      if (!arr1.IsNegInf() && s2->sink_delay != -kInf) {
        Pwl cross = arr1;
        cross.AddScalar(s2->sink_delay);
        diam = Pwl::Max(diam, cross);
      }
      if (!arr2.IsNegInf() && s1->sink_delay != -kInf) {
        Pwl cross = arr2;
        cross.AddScalar(s1->sink_delay);
        diam = Pwl::Max(diam, cross);
      }
      j->diam = std::move(diam);
      j->valid = std::move(valid);
      j->stage_span_um = stage_span;
      j->stage_diam_um = stage_diam;
      j->parity = s1->parity;
      j->kind = MsriSolution::Kind::kJoin;
      j->node = v;
      j->pred1 = s1;
      j->pred2 = s2;
      out.push_back(std::move(j));
      if (out.size() >= prune_at) {
        out = ComputeMfs(std::move(out), ctx.options.mfs, &ctx.stats->mfs,
                         ctx.sink);
        // Double the threshold relative to the survivors so a poorly
        // pruning set cannot trigger quadratic re-pruning.
        prune_at = std::max(prune_at, 2 * out.size());
      }
    }
  }
  return out;
}

/// Fig. 8: at insertion point `v`, optionally cap each unbuffered solution
/// with every library repeater in both orientations.  The unbuffered
/// solutions remain candidates (insertion is optional).
SolutionSet RepeaterSolutions(Context& ctx, NodeId v, SolutionSet set) {
  if (!ctx.options.insert_repeaters) return set;
  const obs::ScopedTimer timer(
      ctx.PhaseTimer(&obs::StatsSink::msri_repeater));
  const obs::ScopedSpan span(ctx.trace, "msri.repeater");
  SolutionSet buffered;
  for (const SolutionPtr& s : set) {
    ctx.options.cancel.Check();
    for (std::size_t ri = 0; ri < ctx.tech.repeaters.size(); ++ri) {
      const Repeater& r = ctx.tech.repeaters[ri];
      for (const RepeaterOrientation o :
           {RepeaterOrientation::kASideUp, RepeaterOrientation::kBSideUp}) {
        if (o == RepeaterOrientation::kBSideUp && r.Symmetric()) break;
        ++ctx.stats->solutions_generated;
        const double c_down = r.CapDown(o);
        // The subtree below now sees exactly the repeater's down-side
        // input capacitance as its whole external world.
        if (!s->valid.Contains(c_down)) continue;

        auto b = std::make_shared<MsriSolution>();
        b->cost = s->cost + r.cost;
        b->cap = r.CapUp(o);
        b->sink_delay =
            r.IntrinsicDown(o) + r.ResDown(o) * s->cap + s->sink_delay;
        const double arr_in = s->arr.Eval(c_down);
        if (arr_in != -kInf) {
          b->arr = Pwl::Line(arr_in + r.IntrinsicUp(o), r.ResUp(o));
        }
        const double diam_in = s->diam.Eval(c_down);
        if (diam_in != -kInf) b->diam = Pwl::Constant(diam_in);
        b->valid = IntervalSet(0.0, ctx.x_max);
        b->stage_span_um = 0.0;
        b->stage_diam_um = 0.0;
        b->parity = r.inverting ? 1 - s->parity : s->parity;
        b->kind = MsriSolution::Kind::kRepeater;
        b->node = v;
        b->detail = ri;
        b->orientation = o;
        b->pred1 = s;
        buffered.push_back(std::move(b));
      }
    }
  }
  set.insert(set.end(), buffered.begin(), buffered.end());
  return set;
}

/// Joined solutions of all children of `v`, each child set augmented
/// through its parent edge.  `Solve` is the recursive driver.
SolutionSet Solve(Context& ctx, NodeId v);

/// Per-child unit shared by the serial fold and the parallel fan-out:
/// solve the subtree, augment through the parent edge, prune.  Pruning
/// the augmented set before the join keeps the pairwise product small —
/// essential once wire sizing multiplies each set by the number of width
/// choices.
SolutionSet ChildSolutions(Context& ctx, NodeId c) {
  return ComputeMfs(Augment(ctx, c, Solve(ctx, c)), ctx.options.mfs,
                    &ctx.stats->mfs, ctx.sink);
}

/// Accumulates a worker task's thread-local stats into the run's.  Every
/// field is a sum or max, so the merge is order-insensitive and the
/// totals are identical to a serial run's.
void MergeStats(MsriStats& into, const MsriStats& from) {
  into.solutions_generated += from.solutions_generated;
  into.join_candidates += from.join_candidates;
  into.join_pruned_early += from.join_pruned_early;
  into.max_set_size = std::max(into.max_set_size, from.max_set_size);
  into.max_pwl_segments =
      std::max(into.max_pwl_segments, from.max_pwl_segments);
  into.mfs.calls += from.mfs.calls;
  into.mfs.candidates_in += from.mfs.candidates_in;
  into.mfs.candidates_out += from.mfs.candidates_out;
  into.mfs.comparisons += from.mfs.comparisons;
  into.mfs.predictive_skipped += from.mfs.predictive_skipped;
  into.mfs.pruned += from.mfs.pruned;
  into.mfs.pruned_partial += from.mfs.pruned_partial;
}

/// The fan-out is worth its overhead only when at least two siblings
/// carry substantial subtrees (MsriOptions::parallel_min_nodes).
bool ShouldParallelize(const Context& ctx,
                       const std::vector<NodeId>& children) {
  if (ctx.executor == nullptr || children.size() < 2) return false;
  std::size_t heavy = 0;
  for (const NodeId c : children) {
    if ((*ctx.subtree_nodes)[c] >= ctx.options.parallel_min_nodes) ++heavy;
  }
  return heavy >= 2;
}

SolutionSet CombineChildren(Context& ctx, NodeId v) {
  const std::vector<NodeId>& children = ctx.rooted.Children(v);
  if (ShouldParallelize(ctx, children)) {
    // Independent sibling subtrees (the JoinSets inputs of Fig. 7) as
    // separate tasks.  Results land in index-addressed slots and worker
    // stats in task-local structs, so output is deterministic at any
    // thread count; obs sinks are thread-confined and therefore off on
    // workers (MsriOptions::executor documents the reduced detail).
    std::vector<SolutionSet> sets(children.size());
    std::vector<MsriStats> local(children.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
      tasks.push_back([&ctx, &sets, &local, &children, i] {
        Context sub{ctx.tree,    ctx.rooted,   ctx.tech,
                    ctx.options, &local[i],    /*sink=*/nullptr,
                    /*trace=*/nullptr, ctx.executor, ctx.subtree_nodes,
                    ctx.x_max};
        sets[i] = ChildSolutions(sub, children[i]);
      });
    }
    ctx.executor->RunAll(std::move(tasks));
    for (const MsriStats& s : local) MergeStats(*ctx.stats, s);
    // The sequential fold, identical to the serial path below.
    SolutionSet acc = std::move(sets[0]);
    for (std::size_t i = 1; i < sets.size(); ++i) {
      acc = ComputeMfs(JoinSets(ctx, v, acc, sets[i]), ctx.options.mfs,
                       &ctx.stats->mfs, ctx.sink);
    }
    return acc;
  }

  SolutionSet acc;
  bool first = true;
  for (const NodeId c : children) {
    SolutionSet augmented = ChildSolutions(ctx, c);
    if (first) {
      acc = std::move(augmented);
      first = false;
    } else {
      acc = ComputeMfs(JoinSets(ctx, v, acc, augmented), ctx.options.mfs,
                       &ctx.stats->mfs, ctx.sink);
    }
  }
  return acc;
}

SolutionSet Solve(Context& ctx, NodeId v) {
  ctx.options.cancel.Check();
  const RcNode& node = ctx.tree.Node(v);
  SolutionSet set;
  if (ctx.rooted.IsLeaf(v)) {
    MSN_CHECK_MSG(node.kind == NodeKind::kTerminal,
                  "non-terminal leaf node " << v << " in MSRI traversal");
    set = LeafSolutions(ctx, v);
  } else {
    set = CombineChildren(ctx, v);
    if (node.kind == NodeKind::kInsertion) {
      set = RepeaterSolutions(ctx, v, std::move(set));
    }
  }
  set = ComputeMfs(std::move(set), ctx.options.mfs, &ctx.stats->mfs,
                   ctx.sink);
  ctx.Record(set);
  if (ctx.options.set_observer) ctx.options.set_observer(v, set);
  return set;
}

/// A closed solution at the root, pre-materialization.
struct RootCandidate {
  double cost = 0.0;
  double ard = 0.0;
  SolutionPtr below;
  std::size_t root_detail = MsriSolution::kNoDetail;
};

/// Fig. 9: close the recursion at the root terminal.
std::vector<RootCandidate> RootSolutions(Context& ctx, NodeId root,
                                         const SolutionSet& below) {
  const obs::ScopedTimer timer(ctx.PhaseTimer(&obs::StatsSink::msri_root));
  const obs::ScopedSpan span(ctx.trace, "msri.root");
  const RcNode& node = ctx.tree.Node(root);
  MSN_CHECK_MSG(node.kind == NodeKind::kTerminal,
                "MSRI must be rooted at a terminal (paper Section IV)");
  const TerminalParams& params = ctx.tree.Terminal(node.terminal_index);

  std::vector<std::pair<std::size_t, const TerminalOption*>> choices;
  if (ctx.options.size_drivers) {
    for (std::size_t i = 0; i < ctx.options.sizing_library.size(); ++i) {
      choices.emplace_back(i, &ctx.options.sizing_library[i]);
    }
  } else {
    choices.emplace_back(MsriSolution::kNoDetail, &params.driver);
  }

  std::vector<RootCandidate> out;
  for (const auto& [detail, opt] : choices) {
    const EffectiveTerminal eff = ResolveTerminal(params, *opt);
    for (const SolutionPtr& s : below) {
      // Terminals below must deliver/receive true polarity at the root.
      if (s->parity != 0) continue;
      // The root closes the top unbuffered region.
      if (ctx.options.max_stage_length_um > 0.0 &&
          std::max(s->stage_span_um, s->stage_diam_um) >
              ctx.options.max_stage_length_um) {
        continue;
      }
      // The subtree's whole external world is the root's pin.
      if (!s->valid.Contains(eff.pin_cap)) continue;
      double ard = s->diam.Eval(eff.pin_cap);
      if (eff.is_sink) {
        const double via_root_sink = s->arr.Eval(eff.pin_cap) +
                                     eff.downstream_ps;
        ard = std::max(ard, via_root_sink);
      }
      if (eff.is_source && s->sink_delay != -kInf) {
        const double via_root_source =
            eff.arrival_ps + eff.driver_intrinsic_ps +
            eff.driver_res * (eff.pin_cap + s->cap) + s->sink_delay;
        ard = std::max(ard, via_root_source);
      }
      out.push_back(RootCandidate{s->cost + opt->cost, ard, s, detail});
    }
  }
  return out;
}

/// Walks provenance links and materializes the assignment.
TradeoffPoint Materialize(Context& ctx, const RootCandidate& cand) {
  TradeoffPoint p{cand.cost,
                  cand.ard,
                  RepeaterAssignment(ctx.tree.NumNodes()),
                  DriverAssignment(ctx.tree.NumTerminals()),
                  0,
                  {}};
  if (ctx.options.size_wires) {
    p.wire_widths.assign(ctx.tree.NumEdges(), 1.0);
  }
  const NodeId root = ctx.rooted.Root();
  if (cand.root_detail != MsriSolution::kNoDetail) {
    p.drivers.Choose(ctx.tree.Node(root).terminal_index,
                     ctx.options.sizing_library[cand.root_detail]);
  }
  std::vector<const MsriSolution*> stack{cand.below.get()};
  while (!stack.empty()) {
    const MsriSolution* s = stack.back();
    stack.pop_back();
    switch (s->kind) {
      case MsriSolution::Kind::kLeaf:
        if (s->detail != MsriSolution::kNoDetail) {
          p.drivers.Choose(ctx.tree.Node(s->node).terminal_index,
                           ctx.options.sizing_library[s->detail]);
        }
        break;
      case MsriSolution::Kind::kRepeater: {
        const NodeId a_side =
            s->orientation == RepeaterOrientation::kASideUp
                ? ctx.rooted.Parent(s->node)
                : ctx.rooted.Children(s->node)[0];
        p.repeaters.Place(s->node, PlacedRepeater{s->detail, a_side});
        ++p.num_repeaters;
        break;
      }
      case MsriSolution::Kind::kAugment:
        if (s->detail != MsriSolution::kNoDetail) {
          p.wire_widths[ctx.rooted.ParentEdgeIndex(s->node)] =
              ctx.options.wire_width_choices[s->detail];
        }
        break;
      case MsriSolution::Kind::kJoin:
        break;
    }
    if (s->pred1) stack.push_back(s->pred1.get());
    if (s->pred2) stack.push_back(s->pred2.get());
  }
  return p;
}

}  // namespace

const TradeoffPoint* MsriResult::MinCostFeasible(double spec_ps) const {
  // A NaN spec is "no spec" — reject it explicitly instead of relying on
  // NaN comparisons all being false (which happens to give the same
  // answer today but is fragile under refactoring; the batch report
  // paths depend on this being deterministic).  -inf must also be
  // explicit: ApproxEq's relative tolerance is eps*max(|a|,|b|), which is
  // infinite at an infinite spec, so LessOrApprox(ard, -inf) would
  // spuriously hold.  Negative finite specs fall out naturally: ARD is
  // non-negative, so no point is feasible.
  if (std::isnan(spec_ps) || spec_ps == -kInf) return nullptr;
  for (const TradeoffPoint& p : pareto_) {
    if (LessOrApprox(p.ard_ps, spec_ps)) return &p;
  }
  return nullptr;
}

const TradeoffPoint* MsriResult::MinArd() const {
  return pareto_.empty() ? nullptr : &pareto_.back();
}

const TradeoffPoint* MsriResult::MinCost() const {
  return pareto_.empty() ? nullptr : &pareto_.front();
}

const TradeoffSummary* MsriSummary::MinCostFeasible(double spec_ps) const {
  // Mirrors MsriResult::MinCostFeasible — the explicit NaN/-inf handling
  // included — so a cached summary answers spec queries identically to
  // the result it condensed.
  if (std::isnan(spec_ps) || spec_ps == -kInf) return nullptr;
  for (const TradeoffSummary& p : pareto) {
    if (LessOrApprox(p.ard_ps, spec_ps)) return &p;
  }
  return nullptr;
}

const TradeoffSummary* MsriSummary::MinArd() const {
  return pareto.empty() ? nullptr : &pareto.back();
}

const TradeoffSummary* MsriSummary::MinCost() const {
  return pareto.empty() ? nullptr : &pareto.front();
}

std::size_t MsriSummary::ApproxBytes() const {
  return sizeof(MsriSummary) + pareto.capacity() * sizeof(TradeoffSummary);
}

MsriSummary Summarize(const MsriResult& result) {
  MsriSummary summary;
  summary.pareto.reserve(result.Pareto().size());
  for (const TradeoffPoint& p : result.Pareto()) {
    summary.pareto.push_back({p.cost, p.ard_ps, p.num_repeaters});
  }
  summary.solutions_generated = result.Stats().solutions_generated;
  summary.max_set_size = result.Stats().max_set_size;
  return summary;
}

MsriResult RunMsri(const RcTree& tree, const Technology& tech,
                   const MsriOptions& options) {
  tree.Validate();
  tech.Validate();
  MSN_CHECK_MSG(tree.NumTerminals() >= 2,
                "repeater insertion needs at least two terminals");
  MSN_CHECK_MSG(!options.size_drivers || !options.sizing_library.empty(),
                "size_drivers set but sizing_library is empty");
  MSN_CHECK_MSG(!options.insert_repeaters || !tech.repeaters.empty(),
                "insert_repeaters set but the repeater library is empty");
  if (options.size_wires) {
    MSN_CHECK_MSG(!options.wire_width_choices.empty(),
                  "size_wires set but wire_width_choices is empty");
    bool has_min = false;
    for (const double w : options.wire_width_choices) {
      MSN_CHECK_MSG(w >= 1.0, "wire width factor " << w
                                  << " is below minimum width");
      if (w == 1.0) has_min = true;
    }
    MSN_CHECK_MSG(has_min,
                  "wire_width_choices must include the minimum width 1.0");
    MSN_CHECK_MSG(options.wire_area_cost_per_um >= 0.0,
                  "negative wire area cost");
  }

  const NodeId root =
      options.root == kNoNode ? tree.TerminalNode(0) : options.root;
  const RootedTree rooted(tree, root);

  // Conservative bound on any external capacitance a subsolution can see.
  double max_width = 1.0;
  if (options.size_wires) {
    for (const double w : options.wire_width_choices) {
      max_width = std::max(max_width, w);
    }
  }
  double x_max = 0.0;
  for (const RcEdge& e : tree.Edges()) x_max += e.cap * max_width;
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    double pin = tree.Terminal(t).driver.pin_cap;
    if (options.size_drivers) {
      for (const TerminalOption& opt : options.sizing_library) {
        pin = std::max(pin, opt.pin_cap);
      }
    }
    x_max += pin;
  }
  if (options.insert_repeaters) {
    double max_side = 0.0;
    for (const Repeater& r : tech.repeaters) {
      max_side = std::max({max_side, r.cap_a, r.cap_b});
    }
    x_max += max_side * static_cast<double>(tree.InsertionPoints().size());
  }
  x_max *= 1.0 + 1e-9;  // Guard the boundary against rounding.

  // The set_observer callback has no thread-safety contract, so its
  // presence forces the serial traversal.
  Executor* executor =
      options.set_observer ? nullptr : options.executor;
  std::vector<std::size_t> subtree_nodes;
  if (executor != nullptr) {
    // Bottom-up subtree node counts gate the fan-out threshold.
    subtree_nodes.assign(tree.NumNodes(), 1);
    const std::vector<NodeId>& pre = rooted.Preorder();
    for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
      if (*it != root) subtree_nodes[rooted.Parent(*it)] += subtree_nodes[*it];
    }
  }

  MsriResult result;
  Context ctx{tree,     rooted,   tech,
              options,  &result.stats_, options.stats,
              options.trace,
              executor, executor != nullptr ? &subtree_nodes : nullptr,
              x_max};

  {
    // While the DP runs, the PWL primitives report breakpoint counts to
    // this run's sink (no-op scope when instrumentation is off).
    const obs::PwlStatsScope pwl_scope(ctx.sink);
    const obs::ScopedTimer total(
        ctx.PhaseTimer(&obs::StatsSink::msri_total));
    const obs::ScopedSpan total_span(ctx.trace, "msri.total");
    const SolutionSet below = CombineChildren(ctx, root);
    const std::vector<RootCandidate> pareto = ParetoByCostDelay(
        RootSolutions(ctx, root, below),
        [](const RootCandidate& c) { return c.cost; },
        [](const RootCandidate& c) { return c.ard; });
    result.pareto_.reserve(pareto.size());
    for (const RootCandidate& c : pareto) {
      result.pareto_.push_back(Materialize(ctx, c));
    }
  }
  if (ctx.sink != nullptr) {
    ctx.sink->msri_solutions->Add(result.stats_.solutions_generated);
    ctx.sink->msri_join_candidates->Add(result.stats_.join_candidates);
    ctx.sink->msri_join_pruned_early->Add(result.stats_.join_pruned_early);
    obs::RunStats& reg = ctx.sink->Registry();
    reg.SetValue("msri.pareto_points",
                 static_cast<double>(result.pareto_.size()));
    reg.SetValue("msri.max_set_size",
                 static_cast<double>(result.stats_.max_set_size));
    reg.SetValue("msri.max_pwl_segments",
                 static_cast<double>(result.stats_.max_pwl_segments));
    const MfsStats& mfs = result.stats_.mfs;
    reg.SetValue("mfs.prune_rate",
                 mfs.candidates_in == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(mfs.candidates_out) /
                                 static_cast<double>(mfs.candidates_in));
  }
  return result;
}

}  // namespace msn
