#include "core/ard.h"

#include "common/check.h"
#include "common/numeric.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"

namespace msn {
namespace {

constexpr std::size_t kNoTerminal = static_cast<std::size_t>(-1);

/// Per-subtree accumulator of Fig. 2: max augmented arrival at the
/// subtree's top interface (S), max augmented delay from the top interface
/// to an internal sink (t), and the internal diameter (D), each with the
/// terminal(s) realizing it.
struct SubtreeTiming {
  double arrival = -kInf;  ///< S_v.
  std::size_t arrival_source = kNoTerminal;
  double sink_delay = -kInf;  ///< t_v.
  std::size_t sink_terminal = kNoTerminal;
  double diameter = -kInf;  ///< D_v.
  std::size_t diameter_source = kNoTerminal;
  std::size_t diameter_sink = kNoTerminal;
};

}  // namespace

ArdResult ComputeArd(const RcTree& tree, const RepeaterAssignment& repeaters,
                     const DriverAssignment& drivers, const Technology& tech,
                     NodeId root, obs::StatsSink* sink) {
  const obs::ScopedTimer total_timer(sink != nullptr ? sink->ard_total
                                                     : nullptr);
  if (root == kNoNode) root = 0;
  // Pass 1 (rooting): orient the tree.  A buffered insertion point cannot
  // serve as the orientation root (the decoupling logic needs the repeater
  // between a parent and a child); walk to the nearest unbuffered node —
  // the ARD is root-independent and terminals are never buffered, so the
  // walk terminates.
  const RootedTree rooted = [&] {
    const obs::ScopedTimer timer(sink != nullptr ? sink->ard_rooting
                                                 : nullptr);
    NodeId prev = kNoNode;
    while (repeaters.Has(root)) {
      const auto& adj = tree.AdjacentEdges(root);
      const RcEdge& e0 = tree.Edge(adj[0]);
      const NodeId n0 = e0.a == root ? e0.b : e0.a;
      const RcEdge& e1 = tree.Edge(adj[1]);
      const NodeId n1 = e1.a == root ? e1.b : e1.a;
      const NodeId next = n0 == prev ? n1 : n0;
      prev = root;
      root = next;
    }
    return RootedTree(tree, root);
  }();
  // Pass 2 (capacitance): eqs. (1)-(2) up/down capacitances per node.
  const CapAnalysis caps = [&] {
    const obs::ScopedTimer timer(sink != nullptr ? sink->ard_caps
                                                 : nullptr);
    return ComputeCaps(rooted, repeaters, drivers, tech);
  }();
  const std::vector<EffectiveTerminal> terms =
      ResolveTerminals(tree, drivers);

  // Pass 3 (combine): the single depth-first accumulation of Fig. 2.
  const obs::ScopedTimer combine_timer(sink != nullptr ? sink->ard_combine
                                                       : nullptr);
  std::vector<SubtreeTiming> acc(tree.NumNodes());
  const std::vector<NodeId>& pre = rooted.Preorder();

  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const NodeId v = *it;
    SubtreeTiming& a = acc[v];
    const RcNode& node = tree.Node(v);

    // Load the parent side presents to a driver at v (zero at the root).
    const double up_load =
        rooted.Parent(v) == kNoNode
            ? 0.0
            : rooted.ParentCap(v) + caps.cup[v];

    // The terminal at v acts as a "virtual child": its source arrival and
    // sink delay seed S_v / t_v but are never paired with each other
    // (u ≠ v in Definition 2.1).
    if (node.kind == NodeKind::kTerminal) {
      const EffectiveTerminal& term = terms[node.terminal_index];
      if (term.is_source) {
        // Elmore: the driver's resistance sees every capacitance of the
        // net (with repeater decoupling), in both directions.
        a.arrival = term.arrival_ps + term.driver_intrinsic_ps +
                    term.driver_res * (caps.down_load[v] + up_load);
        a.arrival_source = node.terminal_index;
      }
      if (term.is_sink) {
        a.sink_delay = term.downstream_ps;
        a.sink_terminal = node.terminal_index;
      }
    }

    for (const NodeId c : rooted.Children(v)) {
      const SubtreeTiming& child = acc[c];
      const double wire_up =
          rooted.ParentRes(c) * (rooted.ParentCap(c) / 2.0 + caps.cup[c]);
      const double wire_down =
          rooted.ParentRes(c) * (rooted.ParentCap(c) / 2.0 + caps.cdown[c]);
      const double arrival_in = child.arrival + wire_up;
      const double sink_in = wire_down + child.sink_delay;

      // Cross pairs between this child and everything accumulated so far
      // (earlier children and the terminal at v).
      if (child.diameter > a.diameter) {
        a.diameter = child.diameter;
        a.diameter_source = child.diameter_source;
        a.diameter_sink = child.diameter_sink;
      }
      if (a.arrival + sink_in > a.diameter) {
        a.diameter = a.arrival + sink_in;
        a.diameter_source = a.arrival_source;
        a.diameter_sink = child.sink_terminal;
      }
      if (arrival_in + a.sink_delay > a.diameter) {
        a.diameter = arrival_in + a.sink_delay;
        a.diameter_source = child.arrival_source;
        a.diameter_sink = a.sink_terminal;
      }
      if (arrival_in > a.arrival) {
        a.arrival = arrival_in;
        a.arrival_source = child.arrival_source;
      }
      if (sink_in > a.sink_delay) {
        a.sink_delay = sink_in;
        a.sink_terminal = child.sink_terminal;
      }
    }

    // A repeater at v re-drives both directions and decouples them.
    if (repeaters.Has(v)) {
      const ResolvedRepeater r = repeaters.Resolve(v, tech);
      const NodeId parent = rooted.Parent(v);
      MSN_CHECK_MSG(rooted.Children(v).size() == 1 && parent != kNoNode,
                    "repeater must sit on a degree-2 insertion point");
      const NodeId child = rooted.Children(v)[0];
      a.arrival += r.IntrinsicFrom(child) + r.ResFrom(child) * up_load;
      a.sink_delay = r.IntrinsicFrom(parent) +
                     r.ResFrom(parent) * caps.down_load[v] + a.sink_delay;
    }
  }

  const SubtreeTiming& top = acc[root];
  ArdResult result;
  result.ard_ps = top.diameter;
  result.critical_source = top.diameter_source;
  result.critical_sink = top.diameter_sink;
  if (top.diameter == -kInf) {
    result.critical_source = kNoTerminal;
    result.critical_sink = kNoTerminal;
  }
  return result;
}

ArdResult ComputeArd(const RcTree& tree, const Technology& tech,
                     obs::StatsSink* sink) {
  return ComputeArd(tree, RepeaterAssignment(tree.NumNodes()),
                    DriverAssignment(tree.NumTerminals()), tech, kNoNode,
                    sink);
}

}  // namespace msn
