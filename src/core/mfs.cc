#include "core/mfs.h"

#include <algorithm>
#include <vector>

#include "common/numeric.h"

namespace msn {
namespace {

bool ScalarLeq(double a, double b, double eps) { return a <= b + eps; }

void SortByCostCap(SolutionSet& set) {
  std::sort(set.begin(), set.end(),
            [](const SolutionPtr& a, const SolutionPtr& b) {
              if (a->cost != b->cost) return a->cost < b->cost;
              return a->cap < b->cap;
            });
}

/// All-pairs pruning over `set`, in place; dead entries become nullptr.
/// Precondition: entries are non-null and sorted by (cost, cap) — callers
/// sort before pruning, and divide-and-conquer slices of a sorted set
/// stay sorted.  PruneByDominance tests cost before anything else, so a
/// dominator i can never prune a victim j with cost[j] < cost[i] - eps;
/// the sort makes those victims a prefix of each row, skipped wholesale
/// without running the test (predictive pruning — the skip is decided
/// from the sort invariant, not from the comparison itself).
void PairwisePrune(SolutionSet& set, const MfsOptions& options,
                   MfsStats* stats) {
  const std::size_t n = set.size();
  // Cost column snapshot: victims nulled mid-loop keep their slot's role
  // in the ordering, so the prefix threshold stays well defined.
  std::vector<double> cost(n);
  for (std::size_t i = 0; i < n; ++i) cost[i] = set[i]->cost;
  const double cost_eps = options.CostEps();
  std::size_t lo = 0;  // first j that row i could possibly prune
  for (std::size_t i = 0; i < n; ++i) {
    while (lo < n && cost[lo] < cost[i] - cost_eps) ++lo;
    if (!set[i]) continue;
    if (stats) {
      // Tests the unsorted all-pairs loop would have run and lost on the
      // cost check.  lo <= i, so j == i never lands in this prefix.
      for (std::size_t j = 0; j < lo; ++j) {
        if (set[j]) ++stats->predictive_skipped;
      }
    }
    for (std::size_t j = lo; j < n; ++j) {
      if (i == j || !set[j]) continue;
      if (stats) ++stats->comparisons;
      if (PruneByDominance(*set[i], *set[j], options, stats)) {
        if (stats) ++stats->pruned;
        set[j] = nullptr;
      }
    }
  }
}

void CrossPrune(SolutionSet& left, SolutionSet& right,
                const MfsOptions& options, MfsStats* stats) {
  const double cost_eps = options.CostEps();
  for (SolutionPtr& l : left) {
    if (!l) continue;
    for (SolutionPtr& r : right) {
      if (!l) break;       // l was just pruned by some r; row is done
      if (!r) continue;    // already-pruned slot; later slots may be live
      if (stats) ++stats->comparisons;
      if (PruneByDominance(*l, *r, options, stats)) {
        if (stats) ++stats->pruned;
        r = nullptr;
        continue;
      }
      // Every left cost <= every right cost (the recursion splits a
      // (cost, cap)-sorted set and never reorders), so r can undercut l
      // on cost only inside the eps band; outside it the reverse test is
      // decided by the sort invariant without running.
      if (r->cost > l->cost + cost_eps) {
        if (stats) ++stats->predictive_skipped;
        continue;
      }
      if (stats) ++stats->comparisons;
      if (PruneByDominance(*r, *l, options, stats)) {
        if (stats) ++stats->pruned;
        l = nullptr;
      }
    }
  }
}

void Compact(SolutionSet& set) {
  std::erase_if(set, [](const SolutionPtr& s) { return s == nullptr; });
}

void MfsRecurse(SolutionSet& set, const MfsOptions& options,
                MfsStats* stats) {
  if (set.size() <= options.base_case) {
    PairwisePrune(set, options, stats);
    Compact(set);
    return;
  }
  const std::size_t mid = set.size() / 2;
  SolutionSet left(set.begin(), set.begin() + static_cast<std::ptrdiff_t>(mid));
  SolutionSet right(set.begin() + static_cast<std::ptrdiff_t>(mid),
                    set.end());
  MfsRecurse(left, options, stats);
  MfsRecurse(right, options, stats);
  CrossPrune(left, right, options, stats);
  Compact(left);
  Compact(right);
  set.clear();
  set.insert(set.end(), left.begin(), left.end());
  set.insert(set.end(), right.begin(), right.end());
}

}  // namespace

bool PruneByDominance(const MsriSolution& dominator, MsriSolution& victim,
                      const MfsOptions& options, MfsStats* stats) {
  if (victim.valid.Empty()) return true;
  if (&dominator == &victim) return false;
  // Parity classes are incomparable: a later inverter turns one into the
  // feasible class and the other into the infeasible one.
  if (dominator.parity != victim.parity) return false;
  if (!ScalarLeq(dominator.cost, victim.cost, options.CostEps())) {
    return false;
  }
  if (!ScalarLeq(dominator.cap, victim.cap, options.CapEps())) return false;
  if (!ScalarLeq(dominator.stage_span_um, victim.stage_span_um, 1e-6)) {
    return false;
  }
  if (!ScalarLeq(dominator.stage_diam_um, victim.stage_diam_um, 1e-6)) {
    return false;
  }
  if (!ScalarLeq(dominator.sink_delay, victim.sink_delay,
                 options.DelayEps())) {
    return false;
  }
  if (dominator.valid.Empty()) return false;

  const double delay_eps = options.DelayEps();
  IntervalSet region = dominator.arr.RegionLessEqual(victim.arr, delay_eps)
                           .Intersect(dominator.diam.RegionLessEqual(
                               victim.diam, delay_eps))
                           .Intersect(dominator.valid);
  if (region.Empty()) return false;
  victim.valid = victim.valid.Subtract(region);
  if (!victim.valid.Empty()) {
    if (stats) ++stats->pruned_partial;
    return false;
  }
  return true;
}

SolutionSet ComputeMfs(SolutionSet set, const MfsOptions& options,
                       MfsStats* stats, obs::StatsSink* sink) {
  const obs::ScopedTimer timer(sink != nullptr ? sink->mfs_time : nullptr);
  // The sink needs per-call deltas even when the caller passes no stats.
  MfsStats local;
  if (stats == nullptr && sink != nullptr) stats = &local;
  const MfsStats before = stats != nullptr ? *stats : MfsStats{};
  const std::size_t candidates_in = set.size();
  if (stats) {
    ++stats->calls;
    stats->candidates_in += candidates_in;
  }

  std::erase_if(set,
                [](const SolutionPtr& s) { return !s || s->valid.Empty(); });
  if (options.mode == MfsOptions::Mode::kOff || set.size() < 2) {
    SortByCostCap(set);
  } else {
    // Sorting by (cost, cap) first puts likely dominators early, making
    // the divide-and-conquer discard suboptimal solutions deep in the
    // recursion (the paper's Section V implementation note).
    SortByCostCap(set);
    if (options.mode == MfsOptions::Mode::kQuadratic) {
      PairwisePrune(set, options, stats);
      Compact(set);
    } else {
      MfsRecurse(set, options, stats);
    }
    SortByCostCap(set);
  }

  if (stats) stats->candidates_out += set.size();
  if (sink != nullptr) {
    sink->mfs_calls->Add(1);
    sink->mfs_candidates_in->Add(candidates_in);
    sink->mfs_candidates_out->Add(set.size());
    sink->mfs_comparisons->Add(stats->comparisons - before.comparisons);
    sink->mfs_predictive_skipped->Add(stats->predictive_skipped -
                                      before.predictive_skipped);
    sink->mfs_pruned_full->Add(stats->pruned - before.pruned);
    sink->mfs_pruned_partial->Add(stats->pruned_partial -
                                  before.pruned_partial);
  }
  return set;
}

}  // namespace msn
