// Piece-wise linear functions of the external capacitance c_E
// (paper Section IV-C, Definition 4.1 and the primitives of eq. (3)).
//
// A Pwl represents a total function on [0, +inf) as a sorted list of line
// segments (x_lo, intercept, slope); segment i covers
// [x_lo_i, x_lo_{i+1}) and the last segment extends to +inf.  The empty
// segment list represents the identically -inf function ("bottom"), used
// for the arrival function of a sink-only subtree and the diameter of a
// subtree with no internal source/sink pair.
//
// The four primitives the repeater-insertion DP needs (eq. (3)):
//   Max        — pointwise maximum (JoinSets; critical-source selection),
//   AddScalar  — add a constant (wire and intrinsic delays),
//   AddSlope   — add m·x (accumulating upstream resistance),
//   Shifted    — substitute x -> x + delta (re-expressing a child's
//                function after the external world gains delta pF).
// All run in time linear in the number of participating segments: Max and
// RegionLessEqual walk both inputs with two pointers instead of
// binary-searching per merged breakpoint.
//
// Storage is a flat structure-of-arrays arena (PwlStore, pwl_arena.h):
// the x_lo / intercept / slope coordinates live in three contiguous
// spans, small functions entirely inline.  AddScalar and AddSlope are
// unit-stride loops over one span; Segments() adapts the columns back
// into PwlSegment values for tests and printing.
//
// In this DP every Pwl is convex and non-decreasing (maxima of lines under
// the primitives above stay convex), which keeps segment counts small in
// practice; the operations below are nevertheless correct for arbitrary
// piece-wise linear inputs.
#ifndef MSN_CORE_PWL_H
#define MSN_CORE_PWL_H

#include <cstddef>
#include <iosfwd>

#include "common/interval_set.h"
#include "common/numeric.h"
#include "core/pwl_arena.h"

namespace msn {

/// One line segment: f(x) = intercept + slope * x for x in
/// [x_lo, next segment's x_lo).
struct PwlSegment {
  double x_lo = 0.0;
  double intercept = 0.0;
  double slope = 0.0;

  double ValueAt(double x) const { return intercept + slope * x; }

  friend bool operator==(const PwlSegment&, const PwlSegment&) = default;
};

class Pwl {
 public:
  /// Indexable view adapting the SoA columns back into PwlSegment values
  /// (tests and printing; the hot paths read the columns directly).
  class SegmentView {
   public:
    explicit SegmentView(const PwlStore* store) : store_(store) {}
    std::size_t size() const { return store_->Size(); }
    PwlSegment operator[](std::size_t i) const {
      return {store_->XLo()[i], store_->Intercept()[i], store_->Slope()[i]};
    }

   private:
    const PwlStore* store_;
  };

  /// The identically -inf function.
  Pwl() = default;

  /// The constant function v on [0, inf).
  static Pwl Constant(double v);

  /// The line intercept + slope·x on [0, inf).
  static Pwl Line(double intercept, double slope);

  static Pwl NegInf() { return Pwl(); }

  bool IsNegInf() const { return store_.Empty(); }
  std::size_t NumSegments() const { return store_.Size(); }
  SegmentView Segments() const { return SegmentView(&store_); }

  /// f(x); x must be >= 0 (checked).  -inf for the bottom function.
  double Eval(double x) const;

  /// f(x) += s.  No-op on bottom.
  Pwl& AddScalar(double s);

  /// f(x) += m·x.  No-op on bottom.
  Pwl& AddSlope(double m);

  /// Returns g with g(x) = f(x + delta); delta must be >= 0 (checked).
  Pwl Shifted(double delta) const;

  /// Pointwise maximum.
  static Pwl Max(const Pwl& f, const Pwl& g);

  /// {x >= 0 : f(x) <= g(x) + eps}.  A bottom f yields [0, inf); a bottom
  /// g (with f not bottom) yields the empty set.
  IntervalSet RegionLessEqual(const Pwl& g, double eps = 0.0) const;

  /// Merges adjacent segments whose line parameters agree within eps.
  void Simplify(double eps = kEps);

  /// True iff slopes are non-decreasing and the function is continuous —
  /// the invariant the repeater-insertion DP maintains (used in tests).
  bool IsConvexNonDecreasing(double eps = kEps) const;

  /// Value-wise approximate equality (same function up to eps at all
  /// breakpoints and segment midpoints).
  static bool ApproxEqual(const Pwl& f, const Pwl& g, double eps = kEps);

 private:
  /// The segment covering x (index).  Requires non-empty.
  std::size_t SegmentIndexAt(double x) const;

  PwlStore store_;
};

std::ostream& operator<<(std::ostream& os, const Pwl& f);

}  // namespace msn

#endif  // MSN_CORE_PWL_H
