// Minimal functional subset (MFS) pruning — paper Definition 4.3, Fig. 4.
//
// A solution s2 is dominated at external capacitance x by s1 when s1 is no
// worse in all five dimensions: cost, cap, sink_delay (scalars) and
// arr(x), diam(x) (functions).  Because every upward DP combination is
// monotone non-decreasing in all five coordinates, s2 can be discarded on
// exactly the x-region where some valid s1 dominates it; `valid` interval
// sets record the surviving region per solution.
//
// ComputeMfs supports three modes for the ablation study
// (bench_mfs_ablation):
//   kOff           — no pruning (exponential growth; small nets only);
//   kQuadratic     — all-pairs pruning;
//   kDivideConquer — Fig. 4: split, recurse, cross-prune the survivors,
//                    targeting fewer pairwise comparisons in practice with
//                    the same O(n²) worst case.
#ifndef MSN_CORE_MFS_H
#define MSN_CORE_MFS_H

#include <cstddef>

#include "core/solution.h"
#include "obs/stats.h"

namespace msn {

struct MfsOptions {
  enum class Mode { kOff, kQuadratic, kDivideConquer };
  Mode mode = Mode::kDivideConquer;
  /// Dominance slack: s1 may be up to eps worse per dimension and still
  /// prune (bounds the suboptimality of the surviving set by O(eps)).
  /// The default keeps the DP exact to numerical noise.
  double eps = 1e-9;
  /// Per-dimension slacks for *approximate* pruning.  Raising these above
  /// `eps` trades bounded suboptimality (roughly the slack times the tree
  /// depth) for much smaller solution sets — the practical escape from
  /// the pseudopolynomial blowup the paper's Section V notes, needed when
  /// wire sizing multiplies the per-node state space.  Values <= 0 fall
  /// back to `eps`.
  double cost_eps = 0.0;
  double cap_eps = 0.0;    ///< pF.
  double delay_eps = 0.0;  ///< ps; applies to sink_delay, arr and diam.
  /// Divide-and-conquer recursion switches to all-pairs below this size.
  std::size_t base_case = 8;

  double CostEps() const { return cost_eps > 0.0 ? cost_eps : eps; }
  double CapEps() const { return cap_eps > 0.0 ? cap_eps : eps; }
  double DelayEps() const { return delay_eps > 0.0 ? delay_eps : eps; }

  /// A preset that keeps wire-sizing runs tractable on paper-scale nets
  /// (10 fF / 2 ps / 0.1-cost granularity; the accumulated slack is a few
  /// percent of the total delay at the paper's tree depths).
  static MfsOptions Approximate() {
    MfsOptions o;
    o.cost_eps = 0.1;
    o.cap_eps = 0.01;
    o.delay_eps = 2.0;
    return o;
  }
};

/// Statistics of one ComputeMfs call (accumulated across a DP run).
struct MfsStats {
  std::size_t calls = 0;           ///< ComputeMfs invocations.
  std::size_t candidates_in = 0;   ///< Solutions entering the pruner.
  std::size_t candidates_out = 0;  ///< Survivors after pruning.
  std::size_t comparisons = 0;  ///< Pairwise dominance tests performed.
  /// Dominance tests decided by the (cost, cap) sort invariant alone —
  /// the would-be dominator out-costs the victim beyond eps — and
  /// therefore skipped without running.  Always <= comparisons: each
  /// skipped (i, j) has its mirror test (j, i) performed while both
  /// entries were still alive, and at most one orientation of a pair can
  /// ever be skipped.
  std::size_t predictive_skipped = 0;
  std::size_t pruned = 0;       ///< Solutions fully invalidated.
  std::size_t pruned_partial = 0;  ///< Partial-domain prunes (valid shrank
                                   ///< without emptying).
};

/// Prunes `set` to (a superset of) its minimal functional subset.
/// Solutions whose valid region empties are removed; others may come back
/// with a reduced `valid`.  Order of survivors: sorted by (cost, cap).
/// A non-null `sink` additionally records wall time and the candidate
/// in/out flow into the shared observability registry.
SolutionSet ComputeMfs(SolutionSet set, const MfsOptions& options,
                       MfsStats* stats = nullptr,
                       obs::StatsSink* sink = nullptr);

/// Single dominance test: shrinks victim->valid by the region where
/// `dominator` (on its own valid region) is no worse in all five
/// dimensions (up to the per-dimension slacks).  Returns true if the
/// victim became fully invalid; partial-domain prunes are counted into
/// `stats` when given.
bool PruneByDominance(const MsriSolution& dominator, MsriSolution& victim,
                      const MfsOptions& options, MfsStats* stats = nullptr);

}  // namespace msn

#endif  // MSN_CORE_MFS_H
