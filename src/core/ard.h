// Linear-time computation of the augmented RC-diameter (paper Section III).
//
// ARD(T) = max over source u, sink v (u ≠ v) of AT(u) + PD(u,v) + DD(v),
// where PD is the Elmore path delay including the source's driver and any
// repeaters on the path (Definition 2.1).
//
// One bottom-up/top-down capacitance pass (eqs. (1)–(2), src/elmore/caps.*)
// followed by a single depth-first combine carrying three values per
// subtree — max augmented arrival S_v, max augmented sink delay t_v, and
// internal diameter D_v (Fig. 2) — yields ARD in O(n), demonstrating the
// paper's second contribution: the multisource measure is asymptotically no
// harder than a single-source RC radius.
#ifndef MSN_CORE_ARD_H
#define MSN_CORE_ARD_H

#include "elmore/delay.h"
#include "obs/stats.h"
#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Computes ARD(T) with the linear-time algorithm.  `root` may be any
/// node (kNoNode picks node 0); the result is root-independent.
/// Returns ard_ps = -inf and no pair when the net has no source/sink pair.
/// A non-null `sink` records the wall time of the three passes (rooting,
/// capacitance analysis, bottom-up combine) into the shared observability
/// registry; null (the default) disables instrumentation at zero cost.
ArdResult ComputeArd(const RcTree& tree, const RepeaterAssignment& repeaters,
                     const DriverAssignment& drivers, const Technology& tech,
                     NodeId root = kNoNode, obs::StatsSink* sink = nullptr);

/// Convenience overload: no repeaters, default drivers.
ArdResult ComputeArd(const RcTree& tree, const Technology& tech,
                     obs::StatsSink* sink = nullptr);

}  // namespace msn

#endif  // MSN_CORE_ARD_H
