#include "service/json.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace msn::service {
namespace {

[[noreturn]] void Fail(std::size_t pos, const std::string& what) {
  throw CheckError("json: " + what + " at byte " + std::to_string(pos));
}

/// Appends the UTF-8 encoding of `cp` (already validated <= 0x10FFFF).
void AppendUtf8(std::string* out, unsigned long cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

class JsonParser {
 public:
  static constexpr std::size_t kMaxDepth = 64;

  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue(0);
    SkipSpace();
    if (pos_ != text_.size()) Fail(pos_, "trailing characters");
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue ParseValue(std::size_t depth) {
    if (depth > kMaxDepth) Fail(pos_, "nesting too deep");
    SkipSpace();
    const char c = Peek();
    JsonValue v;
    if (c == '{') {
      v.kind_ = JsonValue::Kind::kObject;
      ++pos_;
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        SkipSpace();
        if (Peek() != '"') Fail(pos_, "expected object key string");
        std::string key = ParseString();
        SkipSpace();
        Expect(':');
        v.object_[std::move(key)] = ParseValue(depth + 1);
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind_ = JsonValue::Kind::kArray;
      ++pos_;
      SkipSpace();
      if (Peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array_.push_back(ParseValue(depth + 1));
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind_ = JsonValue::Kind::kString;
      v.string_ = ParseString();
      return v;
    }
    if (Literal("true")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (Literal("false")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (Literal("null")) return v;
    return ParseNumber();
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail(pos_, "expected a value");
    const std::string slice = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) Fail(start, "bad number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  unsigned long ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail(pos_, "truncated \\u escape");
    unsigned long cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned long>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned long>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned long>(c - 'A' + 10);
      } else {
        Fail(pos_ - 1, "bad \\u escape digit");
      }
    }
    return cp;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail(pos_, "truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned long cp = ParseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              Fail(pos_, "unpaired high surrogate");
            }
            pos_ += 2;
            const unsigned long low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail(pos_, "bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail(pos_, "unpaired low surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          Fail(pos_ - 1, "unknown escape");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  MSN_CHECK_MSG(IsBool(), "json value is not a bool");
  return bool_;
}

double JsonValue::AsNumber() const {
  MSN_CHECK_MSG(IsNumber(), "json value is not a number");
  return number_;
}

const std::string& JsonValue::AsString() const {
  MSN_CHECK_MSG(IsString(), "json value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  MSN_CHECK_MSG(IsArray(), "json value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  MSN_CHECK_MSG(IsObject(), "json value is not an object");
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

}  // namespace msn::service
