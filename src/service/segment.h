// Append-only on-disk segment of solution-cache records
// (docs/SERVICE.md "Persistence & recovery").
//
// File layout:
//
//   [8-byte magic "MSNSEG1\n"]
//   [record]*
//
// where each record is
//
//   u32 payload_len   (little-endian)
//   u32 crc32         (IEEE CRC-32 of the payload bytes)
//   payload:
//     u64 fingerprint.hi, u64 fingerprint.lo
//     u32 text_len, text bytes        (the canonical request text)
//     u64 solutions_generated, u64 max_set_size
//     u32 pareto_count, then per point:
//       u64 cost bits, u64 ard_ps bits (IEEE-754), u64 num_repeaters
//
// The format is deliberately dumb: fixed little-endian integers, length
// prefix, CRC.  A re-insert of a fingerprint appends a new record; replay
// is "last record wins".  Recovery is adversarial-input-safe: a record is
// delivered to the caller only when its length is sane, its CRC matches,
// and it decodes exactly — anything else is skipped (mid-file damage) or
// treated as a truncated tail (the normal crash shape: the file simply
// ends early, and `valid_bytes` marks where the intact prefix ends so the
// writer can cut the garbage before appending again).  Replay never
// throws on file content and never yields a corrupted record; serving
// still re-verifies canonical-text equality on every cache hit.
#ifndef MSN_SERVICE_SEGMENT_H
#define MSN_SERVICE_SEGMENT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/msri.h"
#include "service/canonical.h"

namespace msn::service {

/// The 8-byte file magic; the trailing byte doubles as a format version.
inline constexpr char kSegmentMagic[8] = {'M', 'S', 'N', 'S',
                                          'E', 'G', '1', '\n'};
inline constexpr std::size_t kSegmentHeaderBytes = sizeof(kSegmentMagic);
/// Bytes of framing (length + CRC) preceding every payload.
inline constexpr std::size_t kRecordFrameBytes = 8;

/// IEEE CRC-32 (the zlib polynomial), table-driven.
std::uint32_t Crc32(const char* data, std::size_t n);

/// One cache entry as stored on disk.
struct SegmentRecord {
  Fingerprint fingerprint;
  std::string text;  ///< Canonical request text (collision check).
  MsriSummary summary;

  bool operator==(const SegmentRecord&) const = default;
};

/// Serializes `record` with its frame (length + CRC + payload), ready to
/// append to a segment file.
std::string EncodeFramedRecord(const SegmentRecord& record);

/// Decodes one payload (no frame).  Returns false on any structural
/// mismatch (short buffer, inconsistent lengths, trailing bytes) without
/// touching `out` state the caller relies on.
bool DecodeRecordPayload(const char* data, std::size_t n,
                         SegmentRecord* out);

struct ReplayStats {
  std::uint64_t replayed = 0;        ///< Records delivered to the handler.
  std::uint64_t skipped = 0;         ///< CRC or decode failures skipped.
  std::uint64_t truncations = 0;     ///< 1 if a corrupt tail was cut short.
  bool header_ok = false;            ///< Magic matched (false: reset file).
  bool file_exists = false;
  /// End of the intact prefix: byte offset after the last record that was
  /// either delivered or cleanly skipped.  The writer truncates here
  /// before appending when `truncations` is set.
  std::uint64_t valid_bytes = 0;
};

/// Replays `path` front to back, invoking `handler(record, framed_bytes)`
/// for every intact record in file order (oldest first; the caller
/// implements last-record-wins).  `framed_bytes` is the on-disk size of
/// the record including its frame, for the caller's byte accounting.
/// `max_record_bytes` bounds a credible payload length: a larger length
/// field is indistinguishable from corruption and ends the replay as a
/// truncated tail.  Never throws on file content.
ReplayStats ReplaySegment(
    const std::string& path, std::size_t max_record_bytes,
    const std::function<void(SegmentRecord&&, std::uint64_t)>& handler);

/// Append handle on a segment file.  Open() validates or writes the
/// header; Append() writes one framed record (EINTR-safe, short-write
/// safe); Sync() fsyncs.  All methods report failure by return value —
/// persistence is best-effort and must never take the service down.
class SegmentWriter {
 public:
  SegmentWriter() = default;
  ~SegmentWriter() { Close(); }
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Opens `path` for appending, creating it (with header) if missing or
  /// empty, and truncating it to `keep_bytes` first when `keep_bytes` is
  /// non-zero (cutting a corrupt tail found by replay).  Takes a
  /// non-blocking flock: a second writer on the same live file fails.
  bool Open(const std::string& path, std::uint64_t keep_bytes = 0);

  bool IsOpen() const { return fd_ >= 0; }
  bool Append(const SegmentRecord& record);
  /// Appends pre-encoded frame+payload bytes (EncodeFramedRecord).
  bool AppendFramed(const std::string& framed);
  bool Sync();
  /// Drops every record, leaving just the header (durable flush).
  bool TruncateToHeader();
  void Close();

  std::uint64_t FileBytes() const { return file_bytes_; }
  const std::string& Path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t file_bytes_ = 0;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_SEGMENT_H
