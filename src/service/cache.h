// Sharded LRU cache of completed optimization results, keyed by
// canonical request fingerprints (docs/SERVICE.md).
//
// Design constraints, in order:
//   1. Never serve the wrong frontier.  A 128-bit fingerprint match is
//      not trusted alone: every entry keeps its canonical text and a hit
//      requires text equality too.  A real collision is counted and
//      degrades to a miss.
//   2. Bounded.  Each shard enforces its slice of the entry and byte
//      budgets with LRU eviction; the whole cache can never exceed
//      max_entries / max_bytes (plus one in-flight insertion per shard).
//   3. Concurrent.  N-way mutex striping by fingerprint: requests for
//      different nets contend only within their shard; there is no
//      global lock on the lookup/insert path (Snapshot sums shard
//      counters without stopping the world).
#ifndef MSN_SERVICE_CACHE_H
#define MSN_SERVICE_CACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/msri.h"
#include "obs/stats.h"
#include "service/canonical.h"

namespace msn::service {

struct CacheConfig {
  /// Mutex stripes; rounded to a power of two, at least 1.  The
  /// constructor clamps the effective count so every shard's slice of
  /// the entry and byte budgets stays meaningful: more shards than
  /// budgeted entries (or fewer than ~4KB of byte budget per shard)
  /// would silently degenerate to one-entry shards that evict on every
  /// insert.
  std::size_t shards = 8;
  /// Whole-cache entry budget (split evenly across shards, min 1 each).
  std::size_t max_entries = 4096;
  /// Whole-cache byte budget for canonical texts + summaries.
  std::size_t max_bytes = 64u << 20;
};

/// Point-in-time counter snapshot, summed across shards.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t collisions = 0;  ///< Fingerprint matched, text did not.
  std::uint64_t flushes = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class SolutionCache {
 public:
  explicit SolutionCache(const CacheConfig& config);

  /// Returns the cached summary for `request`, refreshing its LRU
  /// position; nullopt on miss.  Counts exactly one hit or miss.
  std::optional<MsriSummary> Lookup(const CanonicalRequest& request);

  /// Inserts (or refreshes) the summary for `request`, then evicts LRU
  /// entries until the shard is back under its entry and byte budgets.
  void Insert(const CanonicalRequest& request, MsriSummary summary);

  /// Drops every entry (counters survive; flushes increments).
  void Flush();

  /// One entry copied out of the cache (persistence compaction).
  struct DumpedEntry {
    Fingerprint fingerprint;
    std::string text;
    MsriSummary summary;
  };
  /// Copies every entry, most-recently-used first within each shard
  /// (shards concatenated) — callers preserving recency write the
  /// reverse order.
  std::vector<DumpedEntry> Dump() const;

  /// The byte charge an entry with this text/summary carries against
  /// the budget (texts + summaries + bookkeeping overhead).
  static std::size_t EntryCost(const std::string& text,
                               const MsriSummary& summary);

  CacheStats Snapshot() const;

  std::size_t NumShards() const { return shards_.size(); }
  const CacheConfig& Config() const { return config_; }

  /// Exports the snapshot as `service.cache.*` counters and values into
  /// a RunStats registry (the msn-service-stats-v2 building block).
  void ExportStats(obs::RunStats* registry) const;

 private:
  struct Entry {
    std::string text;  ///< Canonical text; the collision check.
    MsriSummary summary;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Fingerprint, Entry>> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<Fingerprint, Entry>>::iterator>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t collisions = 0;
  };

  Shard& ShardFor(const Fingerprint& fp) {
    return *shards_[fp.hi & (shards_.size() - 1)];
  }
  static std::uint64_t IndexKey(const Fingerprint& fp) {
    return fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull);
  }
  void EvictOverBudgetLocked(Shard& shard);

  CacheConfig config_;
  std::size_t per_shard_entries_ = 0;
  std::size_t per_shard_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex flush_mu_;
  std::uint64_t flushes_ = 0;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_CACHE_H
