// Long-running optimization service: a request/response engine layered
// on the runtime thread pool with a canonical-fingerprint solution cache
// (docs/SERVICE.md).
//
// Protocol: line-delimited JSON, one request per line, one response per
// line.  Ops:
//   {"op":"optimize","id":"r1","net":"<.msn text>","mode":"repeaters",
//    "spec_ps":950,"deadline_ms":50}
//   {"op":"stats"}     -> msn-service-stats-v1 document
//   {"op":"flush"}     -> drops every cache entry (and, with
//                         persistence on, durably truncates the segment)
//   {"op":"shutdown"}  -> drains in-flight work and stops the loop
//
// Contracts:
//   * Error containment: a malformed line, unknown op, bad net, or
//     throwing DP yields a structured {"ok":false,"error":...} response;
//     nothing kills the loop.
//   * Determinism per request: the optimize response payload is a pure
//     function of the request (no timing, no cache-state markers), so an
//     identical request answered from cache is byte-identical to the
//     first answer.  Whether it WAS cached is visible only through the
//     stats op (hit counters, DP invocation counters).
//   * Ordering: optimize requests fan out onto the pool and respond as
//     they complete (match responses by id); stats/flush/shutdown are
//     barriers — they drain in-flight optimizes first, so their answers
//     are deterministic.
//   * Deadlines: a request whose deadline passes before it starts is
//     answered {"ok":false,"timeout":true,...} without running; other
//     in-flight requests are untouched (see TaskGroup's deadline Run).
#ifndef MSN_SERVICE_SERVER_H
#define MSN_SERVICE_SERVER_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "obs/stats.h"
#include "runtime/thread_pool.h"
#include "service/cache.h"
#include "service/persist.h"
#include "tech/tech.h"

namespace msn::service {

struct ServerOptions {
  /// Pool threads serving optimize requests (>= 1).
  std::size_t jobs = 1;
  CacheConfig cache;
  /// On-disk cache persistence; `persist.dir` empty keeps the cache
  /// memory-only (docs/SERVICE.md "Persistence & recovery").
  PersistConfig persist;
  /// Applied to optimize requests that carry no deadline_ms of their
  /// own; <= 0 means no deadline.
  double default_deadline_ms = 0.0;
};

class Server {
 public:
  Server(const Technology& tech, const ServerOptions& options);

  /// Processes one request line synchronously and returns the response
  /// line (without trailing newline).  Never throws on bad input — the
  /// response carries the error.  Deadlines do not apply on this path
  /// (there is no queue to wait in); the serve loop enforces them.
  std::string HandleLine(const std::string& line);

  /// The serve loop: reads request lines from `in` until EOF or a
  /// shutdown op, writing one response line per request to `out`
  /// (completion order; match by id).  Returns true when stopped by
  /// shutdown, false on EOF.
  bool Serve(std::istream& in, std::ostream& out);

  /// TCP front: accepts loopback connections on `port` (0 lets the
  /// kernel pick; the chosen port is logged to `log`), servicing one
  /// connection at a time with Serve.  Returns 0 after a shutdown op,
  /// 1 on a socket-layer failure.
  int ServeTcp(std::uint16_t port, std::ostream& log);

  /// The msn-service-stats-v1 document: service counters, cache
  /// snapshot, and the merged per-request DP registry.
  void WriteStatsJson(std::ostream& os) const;

  const SolutionCache& Cache() const { return cache_.Memory(); }
  const PersistentCache& Persistence() const { return cache_; }

 private:
  struct RequestCounters {
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t dp_runs = 0;
  };

  std::string Dispatch(const std::string& line, bool* shutdown);
  std::string HandleOptimize(const class JsonValue& request,
                             const std::string& id_field);
  std::string ErrorResponse(const std::string& id_field,
                            const std::string& message, bool timeout);

  const Technology tech_;
  const ServerOptions options_;
  PersistentCache cache_;
  runtime::ThreadPool pool_;

  mutable std::mutex stats_mu_;
  obs::RunStats aggregate_;  ///< Merged per-request DP registries.
  RequestCounters counters_;

  /// In-flight miss coalescing: identical concurrent requests wait for
  /// the first one's insert instead of running the DP in parallel, so
  /// "submit the same net twice" runs the DP exactly once at any --jobs.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> inflight_;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_SERVER_H
