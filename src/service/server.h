// Long-running optimization service: a request/response engine layered
// on the runtime thread pool with a canonical-fingerprint solution cache
// (docs/SERVICE.md).
//
// Protocol: line-delimited JSON, one request per line, one response per
// line.  Ops:
//   {"op":"optimize","id":"r1","net":"<.msn text>","mode":"repeaters",
//    "spec_ps":950,"deadline_ms":50}
//   {"op":"stats"}     -> msn-service-stats-v2 document
//   {"op":"flush"}     -> drops every cache entry (and, with
//                         persistence on, durably truncates the segment)
//   {"op":"shutdown"}  -> drains in-flight work and stops the loop
//   {"cmd":"stats"}    -> the same stats document, live: answered
//                         immediately, no in-flight drain barrier and no
//                         segment sync, so a storm can be observed
//                         mid-flight (segment_* counters may lag the
//                         write-behind thread)
//
// Contracts:
//   * Error containment: a malformed line, unknown op, bad net, or
//     throwing DP yields a structured {"ok":false,"error":...} response;
//     nothing kills the loop.
//   * Determinism per request: the optimize response payload is a pure
//     function of the request except for the `trace_id` field (a fresh
//     request-unique id on every line; no other timing or cache-state
//     markers), so an identical request answered from cache is
//     byte-identical to the first answer once `trace_id` is stripped.
//     Whether it WAS cached is visible only through the stats op (hit
//     counters, DP invocation counters).
//   * Observability: every response line carries a `trace_id` (16 hex
//     chars) so client logs join server-side traces.  With tracing on
//     (ServerOptions::trace_dir), sampled optimize requests write a
//     Chrome trace-event JSON file (`trace-<id>.json`) of nested
//     server -> cache -> DP-phase spans; per-outcome sliding-window
//     latency histograms feed the stats document's `latency` object.
//   * Ordering: optimize requests fan out onto the pool and respond as
//     they complete (match responses by id); stats/flush/shutdown are
//     barriers — they drain that connection's in-flight optimizes first,
//     so their answers are deterministic.
//   * Concurrency: ServeTcp serves up to `max_connections` connections
//     at once, each on its own thread over this one shared Server (one
//     pool, one cache, one stats registry).  A connection beyond the
//     bound is answered with a single `overloaded` line and closed.  A
//     shutdown op stops the accept loop and drains every connection:
//     their in-flight requests are cancelled (answered `cancelled`),
//     their streams close, and every serve thread is joined before
//     ServeTcp returns — no leaked threads or fds.
//   * Request lifecycle: a request line is *received*, then either
//     *shed* (queue depth or estimated cost over budget -> `overloaded`
//     response, nothing runs), *admitted* to the pool, and finally
//     either *served* (ok / error / pre-start timeout) or *cancelled*
//     mid-flight (deadline expiry or its connection going away).
//   * Deadlines: a request whose deadline passes before it starts is
//     answered {"ok":false,"timeout":true,...} without running.  Once
//     started, the DP polls a cancellation token: a deadline expiring
//     mid-run (or the client disconnecting) abandons the run in bounded
//     time with {"ok":false,"cancelled":true,...}.  Other in-flight
//     requests are untouched either way.
#ifndef MSN_SERVICE_SERVER_H
#define MSN_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "common/cancel.h"
#include "obs/latency.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "service/cache.h"
#include "service/fdbuf.h"
#include "service/persist.h"
#include "tech/tech.h"

namespace msn::service {

/// Classifies an `accept(2)` errno: transient failures (EMFILE and
/// friends — the process or system ran out of a resource that pressure
/// relief will return) deserve a backoff-and-retry; anything else is a
/// programming or socket-layer error the loop must surface.
bool TransientAcceptError(int err);

/// Exponential accept backoff: 2ms doubling per consecutive failure,
/// capped at 100ms, so a stuck EMFILE condition costs retries per
/// second, not a spinning core.  Zero failures -> zero delay.
std::chrono::milliseconds AcceptBackoffDelay(std::size_t consecutive_failures);

struct ServerOptions {
  /// Pool threads serving optimize requests (>= 1).
  std::size_t jobs = 1;
  CacheConfig cache;
  /// On-disk cache persistence; `persist.dir` empty keeps the cache
  /// memory-only (docs/SERVICE.md "Persistence & recovery").
  PersistConfig persist;
  /// Applied to optimize requests that carry no deadline_ms of their
  /// own; <= 0 means no deadline.
  double default_deadline_ms = 0.0;
  /// Concurrent TCP connections served at once; a connection arriving
  /// beyond the bound receives one `overloaded` line and is closed.
  std::size_t max_connections = 32;
  /// Load shedding by backlog: optimize requests received while this
  /// many are already admitted-but-unfinished are answered `overloaded`
  /// without running.  0 disables the gate.
  std::size_t max_queue_depth = 1024;
  /// Load shedding by predicted cost: once the cost model is calibrated
  /// (see Server::CostModel), a cache-missing request whose estimated
  /// `msri.solutions_generated` exceeds this is answered `overloaded`
  /// instead of burning pool time.  Cache hits are always served.
  /// 0 disables the gate.
  double max_estimated_solutions = 0.0;
  /// Injectable accept(2) for fault testing (src/service/fdbuf.h
  /// discipline); null uses the real ::accept.
  FdAcceptFn accept_fn = nullptr;
  /// Request-scoped tracing (docs/OBSERVABILITY.md "Tracing"): when
  /// non-empty, sampled optimize requests record nested spans and write
  /// one Chrome trace-event JSON file (`trace-<trace_id>.json`) into
  /// this directory.  The directory must exist.  Empty (the default)
  /// disables tracing — the hot path then costs one null-pointer
  /// compare per would-be span.
  std::string trace_dir;
  /// Sampling knob: trace 1 in N optimize requests (1 = every request).
  /// Keeps tracing safe under storm load; non-sampled requests still
  /// carry a `trace_id` in their response line.
  std::size_t trace_sample = 1;
};

class Server {
 public:
  Server(const Technology& tech, const ServerOptions& options);

  /// Processes one request line synchronously and returns the response
  /// line (without trailing newline).  Never throws on bad input — the
  /// response carries the error.  Deadlines and the queue-depth gate do
  /// not apply on this path (there is no queue to wait in; the serve
  /// loop enforces both), but the per-request cost gate does.  Safe to
  /// call from many threads at once.
  std::string HandleLine(const std::string& line);

  /// The serve loop: reads request lines from `in` until EOF or a
  /// shutdown op, writing one response line per request to `out`
  /// (completion order; match by id).  Returns true when stopped by
  /// shutdown, false on EOF.  EOF drains in-flight requests to
  /// completion (stdin pipelines must not lose answers); the TCP path
  /// layers disconnect-cancellation on top via ServeTcp.
  bool Serve(std::istream& in, std::ostream& out);

  /// The TCP front: accepts loopback connections on `port` (0 lets the
  /// kernel pick; the choice is logged to `log` and readable via
  /// BoundPort), serving up to `max_connections` concurrently, one
  /// thread per connection over this shared Server.  Transient accept
  /// failures back off exponentially (AcceptBackoffDelay); fatal ones
  /// return 1.  Returns 0 after a shutdown op drains every connection.
  int ServeTcp(std::uint16_t port, std::ostream& log);

  /// The listening port once ServeTcp has bound it (0 before that).
  /// Readable from other threads — tests use it instead of log parsing.
  std::uint16_t BoundPort() const {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// The msn-service-stats-v2 document: service counters, cache
  /// snapshot, per-outcome latency histograms, and the merged
  /// per-request DP registry.
  void WriteStatsJson(std::ostream& os) const;

  const SolutionCache& Cache() const { return cache_.Memory(); }
  const PersistentCache& Persistence() const { return cache_; }

 private:
  struct RequestCounters {
    std::uint64_t received = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t shed_queue = 0;        ///< Overloaded: backlog bound.
    std::uint64_t shed_cost = 0;         ///< Overloaded: cost estimate.
    std::uint64_t shed_connections = 0;  ///< Connections turned away.
    std::uint64_t cancelled = 0;         ///< Abandoned mid-flight.
    std::uint64_t dp_runs = 0;
  };

  /// Predicts a request's DP cost from its node count before running
  /// it.  Li & Shi's O(bn^2) bound (PAPERS.md) makes solutions/node^2 a
  /// stable per-workload ratio; the model keeps a running mean of that
  /// ratio over every outcome it sees — fresh DP runs and cache hits
  /// alike, so a warm restart (persisted summaries carry their
  /// solutions_generated) recalibrates without re-running anything.
  /// Uncalibrated (no samples) it estimates 0, i.e. sheds nothing.
  class CostModel {
   public:
    void Observe(std::size_t nodes, std::uint64_t solutions);
    double Estimate(std::size_t nodes) const;

   private:
    mutable std::mutex mu_;
    double ratio_sum_ = 0.0;
    std::uint64_t samples_ = 0;
  };

  /// Per-outcome latency classes of the stats document's `latency`
  /// object.  `hit` is an ok answer served without running the DP on
  /// this thread (cache hits and coalesced waiters); `miss` paid for
  /// its own DP run; `shed` covers both admission gates; `error`
  /// covers errors and timeouts.
  enum LatencyClass : std::size_t {
    kLatencyHit = 0,
    kLatencyMiss,
    kLatencyCancelled,
    kLatencyShed,
    kLatencyError,
    kNumLatencyClasses,
  };

  /// Cancellation scope of one optimize request: the merged token the
  /// DP polls, plus the connection source for post-hoc wording (was it
  /// the deadline or the peer going away?), plus the request's trace
  /// identity and receive time for tracing/latency accounting.
  struct RequestContext {
    CancellationToken cancel;
    const CancellationSource* conn = nullptr;
    std::uint64_t trace_id = 0;
    /// Sampled for span recording and trace-file export.
    bool traced = false;
    /// When the request line was read; default (epoch) means "now".
    std::chrono::steady_clock::time_point received_at{};
  };

  std::string Dispatch(const std::string& line, bool* shutdown,
                       std::uint64_t trace_id = 0);
  /// The `{"cmd":...}` control verbs (currently just "stats").
  std::string HandleCommand(const std::string& cmd,
                            const std::string& prefix);
  /// Outcome accounting + tracing wrapper around RunOptimize.
  std::string HandleOptimize(const class JsonValue& request,
                             const std::string& prefix,
                             const RequestContext& rctx);
  std::string RunOptimize(const class JsonValue& request,
                          const std::string& prefix,
                          const RequestContext& rctx, obs::Trace* trace,
                          LatencyClass* outcome);
  /// True when this optimize request should record and export a trace.
  bool SampleTrace();
  void ExportTrace(const obs::Trace& trace);
  /// Records one finished request into `latency_[cls]`, measured from
  /// `received_at` (or from now when unset) to now.
  void RecordLatency(LatencyClass cls,
                     std::chrono::steady_clock::time_point received_at);
  std::string ErrorResponse(const std::string& id_field,
                            const std::string& message, bool timeout);
  std::string OverloadedResponse(const std::string& id_field,
                                 const std::string& message, bool cost_shed);
  std::string CancelledResponse(const std::string& id_field,
                                const std::string& message);
  /// Serve with an optional connection cancel scope: when `conn_cancel`
  /// is set (the TCP path), client EOF or a write failure cancels that
  /// connection's in-flight requests before the drain barrier.
  bool ServeLoop(std::istream& in, std::ostream& out,
                 CancellationSource* conn_cancel);

  const Technology tech_;
  const ServerOptions options_;
  PersistentCache cache_;
  runtime::ThreadPool pool_;

  mutable std::mutex stats_mu_;
  obs::RunStats aggregate_;  ///< Merged per-request DP registries.
  RequestCounters counters_;
  /// Per-outcome latency histograms (guarded by stats_mu_, like the
  /// counters whose classes they mirror; counters increment before the
  /// latency record, so class counts never exceed their counters in
  /// any snapshot).
  obs::LatencyHistogram latency_[kNumLatencyClasses];
  /// Optimize requests seen by the trace sampler (1-in-N gate).
  std::atomic<std::uint64_t> trace_seq_{0};

  CostModel cost_model_;
  std::atomic<std::uint16_t> bound_port_{0};
  /// Admitted-but-unfinished optimize requests across all connections
  /// (the load-shedding backlog gauge).
  std::atomic<std::size_t> queue_depth_{0};

  /// In-flight miss coalescing: identical concurrent requests wait for
  /// the first one's insert instead of running the DP in parallel, so
  /// "submit the same net twice" runs the DP exactly once at any --jobs
  /// — including across connections.  Waiters poll their own cancel
  /// token; an owner whose run is cancelled wakes them to elect a new
  /// owner.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> inflight_;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_SERVER_H
