// Canonical, order-independent fingerprinting of optimization requests
// (docs/SERVICE.md).
//
// Two requests that must produce identical MsriResult frontiers get the
// same canonical form; everything that can change the frontier feeds the
// form.  Covered: the rooted net topology, per-terminal electricals
// (R/C/AT/DD, source/sink roles, the default driver option), per-edge
// parasitics, the technology library (wire, repeaters, stage loading),
// and every MsriOptions field that affects results.  Deliberately
// excluded: node ids and edge declaration order (the form is built by a
// rooted traversal with children merged as a sorted multiset), plane
// coordinates (rendering only), instrument hooks (stats / executor /
// set_observer / parallel_min_nodes — they must not change results, by
// the runtime layer's determinism contract), and library entry names.
//
// The fingerprint is a 128-bit hash of the canonical text.  The cache
// never trusts it alone: CanonicalRequest keeps the text, and equality
// compares text too, so a hash collision degrades to a miss instead of
// serving the wrong net's frontier (collision-checked equality).
#ifndef MSN_SERVICE_CANONICAL_H
#define MSN_SERVICE_CANONICAL_H

#include <cstdint>
#include <string>

#include "core/msri.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn::service {

/// 128-bit content fingerprint.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex digits, hi half first.
  std::string Hex() const;
};

/// Hashes an arbitrary byte string to a Fingerprint (two independently
/// seeded FNV-1a streams, finalized with splitmix64 mixing).
Fingerprint HashBytes(const std::string& bytes);

/// A canonicalized request: the fingerprint plus the canonical text it
/// hashes.  Equality is collision-checked (fingerprint AND text).
struct CanonicalRequest {
  Fingerprint fingerprint;
  std::string text;

  bool operator==(const CanonicalRequest& o) const {
    return fingerprint == o.fingerprint && text == o.text;
  }
};

/// Builds the canonical form of optimizing `tree` under `tech` with
/// `options`.  The tree is rooted exactly as RunMsri roots it
/// (options.root, else terminal 0's node); sibling subtrees are ordered
/// by their canonical encodings, so adjacency-list and edge order never
/// leak into the form.  Throws CheckError on the same structural
/// violations RunMsri would reject (via RcTree invariants).
CanonicalRequest Canonicalize(const RcTree& tree, const Technology& tech,
                              const MsriOptions& options);

}  // namespace msn::service

#endif  // MSN_SERVICE_CANONICAL_H
