#include "service/canonical.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace msn::service {
namespace {

/// Exact, locale-free double encoding: the IEEE-754 bit pattern in hex.
/// -0.0 folds into +0.0 and every NaN into one canonical pattern so
/// numerically indistinguishable requests fingerprint identically.
void AppendDouble(std::string* out, double v) {
  if (v == 0.0) v = 0.0;  // +0.0 == -0.0 compares true; store +0.0 bits.
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  if (std::isnan(v)) bits = 0x7ff8000000000000ull;
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHex[(bits >> shift) & 0xF]);
  }
}

void AppendSize(std::string* out, std::size_t v) {
  out->append(std::to_string(v));
}

void AppendBool(std::string* out, bool v) { out->push_back(v ? '1' : '0'); }

/// TerminalOption electricals; the name is display-only and excluded.
void AppendOption(std::string* out, const TerminalOption& opt) {
  out->push_back('o');
  AppendDouble(out, opt.cost);
  AppendDouble(out, opt.arrival_extra_ps);
  AppendDouble(out, opt.driver_res);
  AppendDouble(out, opt.driver_intrinsic_ps);
  AppendDouble(out, opt.pin_cap);
  AppendDouble(out, opt.downstream_extra_ps);
}

std::string RepeaterPayload(const Repeater& r) {
  std::string out = "r";
  AppendDouble(&out, r.intrinsic_ab);
  AppendDouble(&out, r.res_ab);
  AppendDouble(&out, r.intrinsic_ba);
  AppendDouble(&out, r.res_ba);
  AppendDouble(&out, r.cap_a);
  AppendDouble(&out, r.cap_b);
  AppendDouble(&out, r.cost);
  AppendBool(&out, r.inverting);
  return out;
}

std::string OptionPayload(const TerminalOption& opt) {
  std::string out;
  AppendOption(&out, opt);
  return out;
}

/// Node payload: kind plus, for terminals, the full electrical identity.
/// Plane coordinates are rendering-only and excluded.
std::string NodePayload(const RcTree& tree, NodeId v) {
  const RcNode& node = tree.Node(v);
  switch (node.kind) {
    case NodeKind::kSteiner:
      return "S";
    case NodeKind::kInsertion:
      return "I";
    case NodeKind::kTerminal: {
      const TerminalParams& t = tree.Terminal(node.terminal_index);
      std::string out = "T";
      AppendDouble(&out, t.arrival_ps);
      AppendDouble(&out, t.downstream_ps);
      AppendBool(&out, t.is_source);
      AppendBool(&out, t.is_sink);
      AppendOption(&out, t.driver);
      return out;
    }
  }
  return "?";  // Unreachable; kinds are exhaustive.
}

/// Canonical encoding of the tree rooted at `root`: iterative reverse-BFS
/// post-order (insertion-point chains make recursion depth unbounded),
/// children folded as a sorted multiset of (edge payload + child
/// encoding) so adjacency order and edge declaration order vanish.
std::string EncodeRootedTree(const RcTree& tree, NodeId root) {
  const std::size_t n = tree.NumNodes();
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<std::size_t> parent_edge(n, static_cast<std::size_t>(-1));
  std::vector<NodeId> order;
  order.reserve(n);
  order.push_back(root);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (const std::size_t e : tree.AdjacentEdges(v)) {
      const RcEdge& edge = tree.Edge(e);
      const NodeId w = edge.a == v ? edge.b : edge.a;
      if (w == parent[v] || w == root || parent[w] != kNoNode) {
        continue;  // The only visited neighbor of a tree node.
      }
      parent[w] = v;
      parent_edge[w] = e;
      order.push_back(w);
    }
  }
  MSN_CHECK_MSG(order.size() == n,
                "canonicalize: tree is disconnected from the root");

  std::vector<std::string> enc(n);
  std::vector<std::vector<std::string>> child_parts(n);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::vector<std::string>& parts = child_parts[v];
    std::sort(parts.begin(), parts.end());
    std::string s = NodePayload(tree, v);
    s.push_back('(');
    for (const std::string& part : parts) s += part;
    s.push_back(')');
    child_parts[v].clear();
    child_parts[v].shrink_to_fit();
    if (v != root) {
      const RcEdge& edge = tree.Edge(parent_edge[v]);
      std::string up = "E";
      AppendDouble(&up, edge.length_um);
      AppendDouble(&up, edge.res);
      AppendDouble(&up, edge.cap);
      up += s;
      child_parts[parent[v]].push_back(std::move(up));
    } else {
      enc[root] = std::move(s);
    }
  }
  return std::move(enc[root]);
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a(const std::string& bytes, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string Fingerprint::Hex() const {
  static const char kHexDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint64_t half : {hi, lo}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHexDigits[(half >> shift) & 0xF]);
    }
  }
  return out;
}

Fingerprint HashBytes(const std::string& bytes) {
  // Two independently seeded FNV-1a streams, finalized through splitmix64
  // and entangled with the length; collisions are survivable (the cache
  // compares canonical text on hit) but should stay vanishingly rare.
  const std::uint64_t a = Fnv1a(bytes, 0xcbf29ce484222325ull);
  const std::uint64_t b = Fnv1a(bytes, 0x84222325cbf29ce4ull);
  Fingerprint fp;
  fp.hi = SplitMix64(a ^ SplitMix64(bytes.size()));
  fp.lo = SplitMix64(b + 0x9e3779b97f4a7c15ull * (bytes.size() + 1));
  return fp;
}

CanonicalRequest Canonicalize(const RcTree& tree, const Technology& tech,
                              const MsriOptions& options) {
  tree.Validate();
  const NodeId root =
      options.root == kNoNode ? tree.TerminalNode(0) : options.root;

  std::string text = "msn-canonical-v1|net:";
  text += EncodeRootedTree(tree, root);

  // Tree-level wire parameters (insertion-point subdivision derives
  // parasitics from them; edges already carry resolved values, but the
  // pair is part of the request's electrical identity).
  text += "|wire:";
  AppendDouble(&text, tree.Wire().res_per_um);
  AppendDouble(&text, tree.Wire().cap_per_um);

  // Technology: wire, stage loading, and the repeater library as a
  // sorted multiset (library order must not affect the fingerprint; it
  // cannot affect the frontier).
  text += "|tech:";
  AppendDouble(&text, tech.wire.res_per_um);
  AppendDouble(&text, tech.wire.cap_per_um);
  AppendDouble(&text, tech.prev_stage_res);
  AppendDouble(&text, tech.next_stage_cap);
  if (options.insert_repeaters) {
    std::vector<std::string> reps;
    reps.reserve(tech.repeaters.size());
    for (const Repeater& r : tech.repeaters) {
      reps.push_back(RepeaterPayload(r));
    }
    std::sort(reps.begin(), reps.end());
    for (const std::string& r : reps) text += r;
  }

  // Every MsriOptions field that can change the frontier.  Excluded by
  // design: stats / executor / parallel_min_nodes / set_observer
  // (observability and scheduling hooks; the runtime determinism
  // contract guarantees result equality), mfs.base_case (recursion
  // cutover, performance-only), and root (already encoded by rooting
  // the traversal at it).
  text += "|opt:";
  AppendBool(&text, options.insert_repeaters);
  AppendBool(&text, options.size_drivers);
  if (options.size_drivers) {
    std::vector<std::string> lib;
    lib.reserve(options.sizing_library.size());
    for (const TerminalOption& o : options.sizing_library) {
      lib.push_back(OptionPayload(o));
    }
    std::sort(lib.begin(), lib.end());
    for (const std::string& o : lib) text += o;
  }
  AppendBool(&text, options.size_wires);
  if (options.size_wires) {
    std::vector<double> widths = options.wire_width_choices;
    std::sort(widths.begin(), widths.end());
    for (const double w : widths) AppendDouble(&text, w);
    AppendDouble(&text, options.wire_area_cost_per_um);
    AppendDouble(&text, options.wire_cost_quantum);
  }
  AppendDouble(&text, options.max_stage_length_um);
  text += "|mfs:";
  AppendSize(&text, static_cast<std::size_t>(options.mfs.mode));
  AppendDouble(&text, options.mfs.eps);
  AppendDouble(&text, options.mfs.cost_eps);
  AppendDouble(&text, options.mfs.cap_eps);
  AppendDouble(&text, options.mfs.delay_eps);

  CanonicalRequest request;
  request.text = std::move(text);
  request.fingerprint = HashBytes(request.text);
  return request;
}

}  // namespace msn::service
