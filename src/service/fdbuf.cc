#include "service/fdbuf.h"

#include <unistd.h>

#include <cerrno>

namespace msn::service {

bool WriteFully(int fd, const char* data, std::size_t n,
                FdWriteFn write_fn) {
  if (write_fn == nullptr) {
    write_fn = [](int f, const void* buf, std::size_t len) {
      return ::write(f, buf, len);
    };
  }
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = write_fn(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;  // signal mid-write: retry
      return false;
    }
    if (w == 0) return false;  // no progress; avoid spinning forever
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadFully(int fd, char* data, std::size_t n, FdReadFn read_fn) {
  if (read_fn == nullptr) {
    read_fn = [](int f, void* buf, std::size_t len) {
      return ::read(f, buf, len);
    };
  }
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = read_fn(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF short of n
    done += static_cast<std::size_t>(r);
  }
  return true;
}

FdStreamBuf::FdStreamBuf(int fd, FdReadFn read_fn, FdWriteFn write_fn)
    : fd_(fd), read_fn_(read_fn), write_fn_(write_fn) {
  if (read_fn_ == nullptr) {
    read_fn_ = [](int f, void* buf, std::size_t len) {
      return ::read(f, buf, len);
    };
  }
  setg(ibuf_, ibuf_, ibuf_);
  setp(obuf_, obuf_ + sizeof(obuf_));
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  for (;;) {
    const ssize_t n = read_fn_(fd_, ibuf_, sizeof(ibuf_));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return traits_type::eof();
    setg(ibuf_, ibuf_, ibuf_ + n);
    return traits_type::to_int_type(*gptr());
  }
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (FlushOut() != 0) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return FlushOut(); }

int FdStreamBuf::FlushOut() {
  const std::ptrdiff_t n = pptr() - pbase();
  if (n > 0 &&
      !WriteFully(fd_, pbase(), static_cast<std::size_t>(n), write_fn_)) {
    return -1;
  }
  setp(obuf_, obuf_ + sizeof(obuf_));
  return 0;
}

}  // namespace msn::service
