// Minimal JSON value model and recursive-descent parser for the service
// protocol (docs/SERVICE.md).
//
// The serve loop speaks line-delimited JSON; requests are small flat
// objects (op, id, net text, a few numbers), so this parser favors
// simplicity over speed: one pass, no allocation tricks, strict UTF-8
// passthrough.  Scope notes:
//   * numbers parse via strtod (full JSON number grammar accepted);
//   * \uXXXX escapes decode to UTF-8; surrogate pairs are combined,
//     unpaired surrogates are rejected;
//   * duplicate object keys keep the last value (like most parsers);
//   * depth is bounded (kMaxDepth) so hostile input cannot blow the
//     stack — the serve loop feeds untrusted bytes here.
// Malformed input throws msn::CheckError with a byte offset, which the
// server turns into a structured error response.
#ifndef MSN_SERVICE_JSON_H
#define MSN_SERVICE_JSON_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace msn::service {

/// One parsed JSON value (tagged union over the seven JSON kinds, with
/// true/false folded into kBool).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document from `text` (trailing garbage is
  /// an error).  Throws msn::CheckError on malformed input.
  static JsonValue Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  JsonValue() = default;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_JSON_H
