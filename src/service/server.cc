#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <list>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <fstream>

#include "common/check.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "service/fdbuf.h"
#include "service/json.h"

namespace msn::service {
namespace {

/// Renders one frontier point as a [cost, ard_ps, num_repeaters] triple.
void AppendPoint(std::ostream& os, const TradeoffSummary& p) {
  os << '[' << obs::JsonNumber(p.cost) << ',' << obs::JsonNumber(p.ard_ps)
     << ',' << p.num_repeaters << ']';
}

/// The optional leading `"id":<json>,` fragment echoed into every
/// response.  String and number ids are supported; anything else (or no
/// id at all) yields an empty fragment.
std::string IdField(const JsonValue& request) {
  const JsonValue* id = request.Find("id");
  if (id == nullptr) return "";
  if (id->IsString()) {
    return "\"id\":\"" + obs::JsonEscape(id->AsString()) + "\",";
  }
  if (id->IsNumber()) {
    return "\"id\":" + obs::JsonNumber(id->AsNumber()) + ",";
  }
  return "";
}

/// The `"trace_id":"<16 hex>",` fragment every response line carries.
std::string TraceIdField(std::uint64_t trace_id) {
  return "\"trace_id\":\"" + obs::TraceIdHex(trace_id) + "\",";
}

/// TCP writes go through send(MSG_NOSIGNAL) so a response landing on a
/// connection the client already closed yields EPIPE (a failed write the
/// serve loop turns into cancellation) instead of a process-killing
/// SIGPIPE.
ssize_t SendNoSignal(int fd, const void* buf, std::size_t n) {
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

}  // namespace

bool TransientAcceptError(int err) {
  if (err == EWOULDBLOCK) return true;
  switch (err) {
    case EAGAIN:         // listener briefly out of completed connections
    case EMFILE:         // process fd table full
    case ENFILE:         // system fd table full
    case ECONNABORTED:   // peer gave up while queued — not our failure
    case ENOBUFS:
    case ENOMEM:
    case EPROTO:         // protocol hiccup on the aborted connection
    case EPERM:          // firewall rejected the peer
      return true;
    default:
      return false;
  }
}

std::chrono::milliseconds AcceptBackoffDelay(
    std::size_t consecutive_failures) {
  if (consecutive_failures == 0) return std::chrono::milliseconds(0);
  const std::size_t shift = std::min<std::size_t>(consecutive_failures - 1, 6);
  return std::chrono::milliseconds(
      std::min<std::int64_t>(std::int64_t{2} << shift, 100));
}

void Server::CostModel::Observe(std::size_t nodes, std::uint64_t solutions) {
  if (nodes == 0) return;
  const double ratio = static_cast<double>(solutions) /
                       (static_cast<double>(nodes) * static_cast<double>(nodes));
  const std::lock_guard<std::mutex> lock(mu_);
  ratio_sum_ += ratio;
  ++samples_;
}

double Server::CostModel::Estimate(std::size_t nodes) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (samples_ == 0) return 0.0;
  return (ratio_sum_ / static_cast<double>(samples_)) *
         (static_cast<double>(nodes) * static_cast<double>(nodes));
}

Server::Server(const Technology& tech, const ServerOptions& options)
    : tech_(tech),
      options_(options),
      cache_(options.cache, options.persist),
      pool_(std::max<std::size_t>(1, options.jobs)) {
  tech_.Validate();
}

std::string Server::ErrorResponse(const std::string& id_field,
                                  const std::string& message,
                                  bool timeout) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    if (timeout) {
      ++counters_.timeouts;
    } else {
      ++counters_.errors;
    }
  }
  std::string out = "{" + id_field + "\"ok\":false";
  if (timeout) out += ",\"timeout\":true";
  out += ",\"error\":\"" + obs::JsonEscape(message) + "\"}";
  return out;
}

std::string Server::OverloadedResponse(const std::string& id_field,
                                       const std::string& message,
                                       bool cost_shed) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    if (cost_shed) {
      ++counters_.shed_cost;
    } else {
      ++counters_.shed_queue;
    }
  }
  return "{" + id_field + "\"ok\":false,\"overloaded\":true,\"error\":\"" +
         obs::JsonEscape(message) + "\"}";
}

std::string Server::CancelledResponse(const std::string& id_field,
                                      const std::string& message) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.cancelled;
  }
  return "{" + id_field + "\"ok\":false,\"cancelled\":true,\"error\":\"" +
         obs::JsonEscape(message) + "\"}";
}

bool Server::SampleTrace() {
  if (options_.trace_dir.empty()) return false;
  const std::uint64_t n =
      std::max<std::uint64_t>(1, options_.trace_sample);
  return trace_seq_.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

void Server::ExportTrace(const obs::Trace& trace) {
  const std::string path =
      options_.trace_dir + "/trace-" + trace.TraceIdString() + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // Tracing is best-effort; never fails a request.
  trace.WriteChromeTrace(out);
  out << '\n';
}

void Server::RecordLatency(
    LatencyClass cls, std::chrono::steady_clock::time_point received_at) {
  const auto now = std::chrono::steady_clock::now();
  if (received_at == std::chrono::steady_clock::time_point{}) {
    received_at = now;
  }
  const double us =
      std::chrono::duration<double, std::micro>(now - received_at).count();
  const std::lock_guard<std::mutex> lock(stats_mu_);
  latency_[cls].Record(us, now);
}

std::string Server::HandleOptimize(const JsonValue& request,
                                   const std::string& prefix,
                                   const RequestContext& rctx) {
  // Sampled requests record spans into a request-owned, thread-confined
  // buffer (the DP runs inline on this thread; parallel workers trace
  // nothing) and export it after the response is built.  Non-sampled
  // requests carry a null trace: every span site costs one pointer
  // compare, per the obs zero-overhead contract.
  std::optional<obs::Trace> trace_storage;
  if (rctx.traced) trace_storage.emplace(rctx.trace_id);
  obs::Trace* trace =
      trace_storage.has_value() ? &*trace_storage : nullptr;
  if (trace != nullptr &&
      rctx.received_at != std::chrono::steady_clock::time_point{}) {
    trace->RecordSpan("server.queue", rctx.received_at,
                      std::chrono::steady_clock::now());
  }
  LatencyClass outcome = kLatencyError;
  std::string response;
  {
    const obs::ScopedSpan span(trace, "server.request");
    response = RunOptimize(request, prefix, rctx, trace, &outcome);
  }
  RecordLatency(outcome, rctx.received_at);
  if (trace != nullptr) ExportTrace(*trace);
  return response;
}

std::string Server::RunOptimize(const JsonValue& request,
                                const std::string& id_field,
                                const RequestContext& rctx,
                                obs::Trace* trace, LatencyClass* outcome) {
  *outcome = kLatencyError;
  try {
    const JsonValue* net = request.Find("net");
    if (net == nullptr || !net->IsString()) {
      return ErrorResponse(id_field, "optimize requires a string 'net'",
                           false);
    }
    std::istringstream net_stream(net->AsString());
    const RcTree tree = [&] {
      const obs::ScopedSpan parse_span(trace, "server.parse_net");
      return ReadNet(net_stream);
    }();

    // Mode resolution mirrors `msn_cli optimize --mode`.
    std::string mode = "repeaters";
    if (const JsonValue* m = request.Find("mode"); m != nullptr) {
      if (!m->IsString()) {
        return ErrorResponse(id_field, "'mode' must be a string", false);
      }
      mode = m->AsString();
    }
    MsriOptions opt;
    if (mode == "sizing" || mode == "joint") {
      opt.size_drivers = true;
      opt.sizing_library = DriverSizingLibrary(tech_, {1.0, 2.0, 3.0, 4.0});
      opt.insert_repeaters = mode == "joint";
    } else if (mode != "repeaters") {
      return ErrorResponse(id_field, "unknown mode '" + mode + "'", false);
    }

    std::optional<double> spec;
    if (const JsonValue* s = request.Find("spec_ps"); s != nullptr) {
      if (!s->IsNumber()) {
        return ErrorResponse(id_field, "'spec_ps' must be a number", false);
      }
      spec = s->AsNumber();
    }

    const CanonicalRequest canon = [&] {
      const obs::ScopedSpan canon_span(trace, "server.canonicalize");
      return Canonicalize(tree, tech_, opt);
    }();
    const std::pair<std::uint64_t, std::uint64_t> key{canon.fingerprint.hi,
                                                      canon.fingerprint.lo};
    std::optional<MsriSummary> summary;
    bool ran_dp = false;
    for (;;) {
      {
        const obs::ScopedSpan lookup_span(trace, "cache.lookup");
        summary = cache_.Lookup(canon);
      }
      if (summary.has_value()) {
        // A hit is free to serve but still a calibration point: warmed
        // summaries carry the solutions_generated of the run that
        // produced them, so a restarted server regains its cost model
        // without re-running anything.
        cost_model_.Observe(tree.NumNodes(), summary->solutions_generated);
        break;
      }
      {
        std::unique_lock<std::mutex> lock(inflight_mu_);
        if (inflight_.count(key) > 0) {
          // An identical request is mid-DP on another thread: coalesce —
          // wait for its insert, then retry the lookup.  The owner never
          // waits, so every waiter is blocked on running work and this
          // cannot deadlock.  The wait is bounded so a waiter notices
          // its own cancellation (deadline, disconnect) even while the
          // owner keeps running for someone else.
          {
            const obs::ScopedSpan wait_span(trace, "cache.coalesce.wait");
            inflight_cv_.wait_for(lock, std::chrono::milliseconds(20));
          }
          lock.unlock();
          rctx.cancel.Check();
          continue;
        }
        // This thread will run the DP.  Shed first: once the cost model
        // is calibrated, a miss whose predicted work exceeds the budget
        // is refused before it touches the pool.  Hits never shed.
        if (options_.max_estimated_solutions > 0.0) {
          const obs::ScopedSpan gate_span(trace, "server.admission");
          const double est = cost_model_.Estimate(tree.NumNodes());
          if (est > options_.max_estimated_solutions) {
            std::ostringstream msg;
            msg << "estimated cost " << static_cast<std::uint64_t>(est)
                << " solutions exceeds budget "
                << static_cast<std::uint64_t>(
                       options_.max_estimated_solutions);
            *outcome = kLatencyShed;
            return OverloadedResponse(id_field, msg.str(), true);
          }
        }
        inflight_.insert(key);
      }
      try {
        // Thread-confined per-request registry, merged under the stats
        // mutex after the DP — the obs single-threaded contract holds.
        obs::RunStats run;
        obs::StatsSink sink(&run);
        opt.stats = &sink;
        opt.trace = trace;
        opt.cancel = rctx.cancel;
        try {
          const obs::ScopedSpan dp_span(trace, "dp.run");
          const MsriResult result = RunMsri(tree, tech_, opt);
          summary = Summarize(result);
        } catch (const CancelledError&) {
          // The phase timers recorded up to the abandon point are valid
          // work done; merge them exactly once.  No dp_runs increment —
          // that counter means "completed DP executions".
          const std::lock_guard<std::mutex> lock(stats_mu_);
          aggregate_.MergeFrom(run);
          throw;
        }
        {
          const obs::ScopedSpan insert_span(trace, "cache.insert");
          cache_.Insert(canon, *summary);
        }
        cost_model_.Observe(tree.NumNodes(), summary->solutions_generated);
        ran_dp = true;
        const std::lock_guard<std::mutex> lock(stats_mu_);
        aggregate_.MergeFrom(run);
        ++counters_.dp_runs;
      } catch (...) {
        const std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(key);
        inflight_cv_.notify_all();
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(key);
        inflight_cv_.notify_all();
      }
      break;
    }

    // The payload is a pure function of the request: no timing, no
    // hit/miss marker — a cached answer is byte-identical to the first.
    std::ostringstream os;
    os << '{' << id_field << "\"ok\":true,\"fingerprint\":\""
       << canon.fingerprint.Hex() << "\",\"pareto_points\":"
       << summary->pareto.size() << ",\"pareto\":[";
    for (std::size_t i = 0; i < summary->pareto.size(); ++i) {
      if (i > 0) os << ',';
      AppendPoint(os, summary->pareto[i]);
    }
    os << "],\"min_cost\":";
    if (const TradeoffSummary* p = summary->MinCost()) {
      AppendPoint(os, *p);
    } else {
      os << "null";
    }
    os << ",\"min_ard\":";
    if (const TradeoffSummary* p = summary->MinArd()) {
      AppendPoint(os, *p);
    } else {
      os << "null";
    }
    if (spec.has_value()) {
      os << ",\"spec_ps\":" << obs::JsonNumber(*spec) << ",\"pick\":";
      if (const TradeoffSummary* p = summary->MinCostFeasible(*spec)) {
        AppendPoint(os, *p);
      } else {
        os << "null";
      }
    }
    os << '}';
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    *outcome = ran_dp ? kLatencyMiss : kLatencyHit;
    return os.str();
  } catch (const CancelledError&) {
    const bool conn_gone =
        rctx.conn != nullptr && rctx.conn->CancelRequested();
    *outcome = kLatencyCancelled;
    return CancelledResponse(id_field, conn_gone
                                           ? "cancelled: connection closed"
                                           : "cancelled: deadline exceeded"
                                             " mid-run");
  } catch (const std::exception& e) {
    // Containment: a malformed net or throwing DP answers this request
    // only; the loop and every other in-flight request are unaffected.
    return ErrorResponse(id_field, e.what(), false);
  }
}

std::string Server::HandleCommand(const std::string& cmd,
                                  const std::string& prefix) {
  if (cmd == "stats") {
    // Live snapshot: no in-flight drain, no segment sync — the answer
    // reflects the server mid-flight.  The lifecycle inequality still
    // holds at any instant (`received` increments before any resolution
    // counter, and latency class counts lag their counters), so
    // mid-storm snapshots are schema-valid; segment_* counters may lag
    // the write-behind thread.
    std::ostringstream os;
    WriteStatsJson(os);
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return "{" + prefix + os.str().substr(1);
  }
  return ErrorResponse(prefix, "unknown cmd '" + cmd + "'", false);
}

std::string Server::Dispatch(const std::string& line, bool* shutdown,
                             std::uint64_t trace_id) {
  if (trace_id == 0) trace_id = obs::NewTraceId();
  const std::string trace_field = TraceIdField(trace_id);
  JsonValue request;
  std::string id_field;
  try {
    request = JsonValue::Parse(line);
    id_field = IdField(request) + trace_field;
  } catch (const std::exception& e) {
    return ErrorResponse(trace_field, e.what(), false);
  }
  const JsonValue* op = request.Find("op");
  if (op == nullptr || !op->IsString()) {
    if (const JsonValue* cmd = request.Find("cmd");
        op == nullptr && cmd != nullptr && cmd->IsString()) {
      return HandleCommand(cmd->AsString(), id_field);
    }
    return ErrorResponse(id_field, "request requires a string 'op'", false);
  }
  const std::string& name = op->AsString();
  if (name == "optimize") {
    RequestContext rctx;
    rctx.trace_id = trace_id;
    rctx.traced = SampleTrace();
    rctx.received_at = std::chrono::steady_clock::now();
    return HandleOptimize(request, id_field, rctx);
  }
  if (name == "stats") {
    // Settle the write-behind segment first so segment_* counters (and
    // the on-disk state they describe) reflect every prior insert.
    cache_.Sync();
    std::ostringstream os;
    WriteStatsJson(os);
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.ok;
    return "{" + id_field + os.str().substr(1);
  }
  if (name == "flush") {
    cache_.Flush();
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return "{" + id_field + "\"ok\":true,\"flushed\":true}";
  }
  if (name == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return "{" + id_field + "\"ok\":true,\"shutdown\":true}";
  }
  return ErrorResponse(id_field, "unknown op '" + name + "'", false);
}

std::string Server::HandleLine(const std::string& line) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.received;
  }
  bool shutdown = false;
  return Dispatch(line, &shutdown);
}

bool Server::Serve(std::istream& in, std::ostream& out) {
  return ServeLoop(in, out, /*conn_cancel=*/nullptr);
}

bool Server::ServeLoop(std::istream& in, std::ostream& out,
                       CancellationSource* conn_cancel) {
  std::mutex out_mu;
  const auto write_line = [&out, &out_mu, conn_cancel](
                              const std::string& line) {
    const std::lock_guard<std::mutex> lock(out_mu);
    out << line << '\n';
    out.flush();
    // A dead peer cannot receive further answers; stop computing them.
    if (!out.good() && conn_cancel != nullptr) conn_cancel->Cancel();
  };
  const CancellationToken conn_token =
      conn_cancel != nullptr ? conn_cancel->Token() : CancellationToken();

  runtime::TaskGroup group(&pool_);
  bool shutdown = false;
  std::string line;
  while (!shutdown && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.received;
    }
    const auto received_at = std::chrono::steady_clock::now();
    const std::uint64_t trace_id = obs::NewTraceId();
    const std::string trace_field = TraceIdField(trace_id);
    JsonValue request;
    std::string id_field;
    try {
      request = JsonValue::Parse(line);
      id_field = IdField(request) + trace_field;
    } catch (const std::exception& e) {
      write_line(ErrorResponse(trace_field, e.what(), false));
      continue;
    }
    const JsonValue* op = request.Find("op");
    if (op == nullptr || !op->IsString()) {
      if (const JsonValue* cmd = request.Find("cmd");
          op == nullptr && cmd != nullptr && cmd->IsString()) {
        // Control verbs answer inline, before the barrier below — that
        // is the point: a live stats snapshot mid-storm.
        write_line(HandleCommand(cmd->AsString(), id_field));
        continue;
      }
      write_line(
          ErrorResponse(id_field, "request requires a string 'op'", false));
      continue;
    }
    if (op->AsString() == "optimize") {
      // Per-request deadline: an explicit deadline_ms wins, else the
      // server default; absent/<=0 with no explicit field means none.
      bool has_deadline = options_.default_deadline_ms > 0.0;
      double deadline_ms = options_.default_deadline_ms;
      if (const JsonValue* d = request.Find("deadline_ms"); d != nullptr) {
        if (!d->IsNumber() || d->AsNumber() < 0.0) {
          write_line(ErrorResponse(
              id_field, "'deadline_ms' must be a non-negative number",
              false));
          continue;
        }
        has_deadline = true;
        deadline_ms = d->AsNumber();
      }
      // Backlog gate: refuse work the pool is already drowning in.
      if (options_.max_queue_depth > 0 &&
          queue_depth_.load(std::memory_order_relaxed) >=
              options_.max_queue_depth) {
        write_line(OverloadedResponse(
            id_field, "queue depth limit reached", /*cost_shed=*/false));
        RecordLatency(kLatencyShed, received_at);
        continue;
      }
      queue_depth_.fetch_add(1, std::memory_order_relaxed);

      RequestContext rctx;
      rctx.conn = conn_cancel;
      rctx.trace_id = trace_id;
      rctx.traced = SampleTrace();
      rctx.received_at = received_at;
      std::chrono::steady_clock::time_point deadline;
      if (has_deadline) {
        deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(deadline_ms));
        // The deadline token: its source lives only long enough to mint
        // the token (the shared state persists; nobody Cancel()s a
        // deadline explicitly).
        rctx.cancel = CancellationToken::Merged(
            conn_token, CancellationSource(deadline).Token());
      } else {
        rctx.cancel = conn_token;
      }

      auto run = [this, write_line, request = std::move(request), id_field,
                  rctx] {
        write_line(HandleOptimize(request, id_field, rctx));
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      };
      if (has_deadline) {
        group.Run(std::move(run), deadline,
                  [this, write_line, id_field, received_at] {
                    write_line(ErrorResponse(
                        id_field, "deadline exceeded before start", true));
                    RecordLatency(kLatencyError, received_at);
                    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
                  });
      } else {
        group.Run(std::move(run));
      }
      continue;
    }
    // stats / flush / shutdown / unknown are barriers: drain in-flight
    // optimizes so their answers reflect a settled state.
    group.Wait();
    write_line(Dispatch(line, &shutdown, trace_id));
  }
  // A TCP client that vanished (EOF without shutdown, or a failed
  // write) has no use for in-flight answers: cancel them so the drain
  // barrier below is bounded by cancellation latency, not DP runtime.
  // The stdin path (conn_cancel == nullptr) always drains to completion
  // — a pipeline must not lose responses.
  if (!shutdown && conn_cancel != nullptr) conn_cancel->Cancel();
  group.Wait();
  return shutdown;
}

int Server::ServeTcp(std::uint16_t port, std::ostream& log) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    log << "service: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    log << "service: bind/listen 127.0.0.1:" << port << ": "
        << std::strerror(errno) << '\n';
    ::close(listener);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_.store(ntohs(bound.sin_port), std::memory_order_release);
  log << "service: listening on 127.0.0.1:" << ntohs(bound.sin_port)
      << '\n';
  log.flush();

  // One serve thread per live connection over this shared Server.  The
  // serve thread half-closes its write side when done and flags `done`;
  // only this (accept) thread closes connection fds — after joining —
  // so a fd is never closed while another thread might still use it.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Connection> connections;
  std::atomic<bool> shutdown_requested{false};
  std::atomic<std::size_t> live{0};

  const auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        ::close(it->fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  int rc = -1;
  std::size_t accept_failures = 0;
  while (rc < 0) {
    const int conn = options_.accept_fn != nullptr
                         ? options_.accept_fn(listener)
                         : ::accept(listener, nullptr, nullptr);
    if (shutdown_requested.load(std::memory_order_acquire)) {
      // A serve thread saw the shutdown op and woke us by shutting the
      // listener down.  In the tiny window where a connection still got
      // through, it arrived after shutdown: close it unserved.
      if (conn >= 0) ::close(conn);
      rc = 0;
      break;
    }
    if (conn < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (TransientAcceptError(err)) {
        // Resource pressure (EMFILE et al.): retry with exponential
        // backoff instead of spinning hot — finishing connections are
        // what frees the resource, so yield to them.
        ++accept_failures;
        log << "service: accept: " << std::strerror(err)
            << " (transient; backing off)\n";
        log.flush();
        std::this_thread::sleep_for(AcceptBackoffDelay(accept_failures));
        reap_finished();
        continue;
      }
      log << "service: accept: " << std::strerror(err) << '\n';
      rc = 1;
      break;
    }
    accept_failures = 0;
    reap_finished();
    if (live.load(std::memory_order_acquire) >= options_.max_connections) {
      // At capacity: one structured refusal, then close.  The client
      // sees `overloaded` rather than an unexplained hangup.
      {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.shed_connections;
      }
      const std::string refusal =
          "{\"ok\":false,\"overloaded\":true,"
          "\"error\":\"server at connection capacity\"}\n";
      WriteFully(conn, refusal.data(), refusal.size(), &SendNoSignal);
      ::close(conn);
      continue;
    }
    live.fetch_add(1, std::memory_order_acq_rel);
    connections.emplace_back();
    Connection& slot = connections.back();
    slot.fd = conn;
    slot.done = std::make_shared<std::atomic<bool>>(false);
    slot.thread = std::thread([this, conn, listener, done = slot.done,
                               &shutdown_requested, &live] {
      FdStreamBuf buf(conn, /*read_fn=*/nullptr, &SendNoSignal);
      std::istream conn_in(&buf);
      std::ostream conn_out(&buf);
      CancellationSource conn_cancel;
      const bool shutdown = ServeLoop(conn_in, conn_out, &conn_cancel);
      conn_out.flush();
      // Half-close: the client gets EOF after its last response while
      // the fd itself stays valid until the accept thread reaps it.
      ::shutdown(conn, SHUT_WR);
      if (shutdown) {
        shutdown_requested.store(true, std::memory_order_release);
        // Wake the accept thread out of its blocking accept.
        ::shutdown(listener, SHUT_RDWR);
      }
      live.fetch_sub(1, std::memory_order_acq_rel);
      done->store(true, std::memory_order_release);
    });
  }

  // Drain: stop feeding the still-live connections (SHUT_RD EOFs their
  // next read; their ServeLoops cancel in-flight work, answer, and
  // exit), then join every serve thread and close every fd.  Nothing
  // leaks on either exit path.
  for (Connection& c : connections) {
    if (!c.done->load(std::memory_order_acquire)) {
      ::shutdown(c.fd, SHUT_RD);
    }
  }
  for (Connection& c : connections) {
    c.thread.join();
    ::close(c.fd);
  }
  connections.clear();
  ::close(listener);
  return rc;
}

void Server::WriteStatsJson(std::ostream& os) const {
  obs::RunStats registry;
  RequestCounters counters;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    registry.MergeFrom(aggregate_);
    counters = counters_;
  }
  cache_.ExportStats(&registry);
  const CacheStats cache = cache_.Snapshot();
  const SegmentStats segment = cache_.Segment();
  os << "{\"schema\":\"msn-service-stats-v2\",\"jobs\":"
     << pool_.NumThreads() << ",\"cache\":{\"shards\":"
     << cache_.NumShards() << ",\"entries\":" << cache.entries
     << ",\"bytes\":" << cache.bytes << ",\"max_entries\":"
     << cache_.Config().max_entries << ",\"max_bytes\":"
     << cache_.Config().max_bytes << ",\"hits\":" << cache.hits
     << ",\"misses\":" << cache.misses << ",\"evictions\":"
     << cache.evictions << ",\"insertions\":" << cache.insertions
     << ",\"collisions\":" << cache.collisions << ",\"flushes\":"
     << cache.flushes << ",\"segment_enabled\":"
     << (segment.enabled ? 1 : 0) << ",\"segment_bytes\":"
     << segment.file_bytes << ",\"segment_live_bytes\":"
     << segment.live_bytes << ",\"segment_dead_bytes\":"
     << segment.dead_bytes << ",\"segment_appends\":" << segment.appends
     << ",\"segment_append_errors\":" << segment.append_errors
     << ",\"segment_replayed\":" << segment.replayed
     << ",\"segment_skipped\":" << segment.skipped
     << ",\"segment_truncations\":" << segment.truncations
     << ",\"segment_header_resets\":" << segment.header_resets
     << ",\"segment_compactions\":" << segment.compactions
     << "},\"requests\":{\"received\":"
     << counters.received << ",\"ok\":" << counters.ok << ",\"errors\":"
     << counters.errors << ",\"timeouts\":" << counters.timeouts
     << ",\"shed_queue\":" << counters.shed_queue
     << ",\"shed_cost\":" << counters.shed_cost
     << ",\"shed_connections\":" << counters.shed_connections
     << ",\"cancelled\":" << counters.cancelled
     << ",\"dp_runs\":" << counters.dp_runs << "},\"latency\":{";
  {
    // Snapshot quantiles under the same mutex the recorders use; the
    // window is evaluated at one shared `now` so classes are mutually
    // consistent.
    static constexpr const char* kClassNames[kNumLatencyClasses] = {
        "hit", "miss", "cancelled", "shed", "error"};
    const auto now = std::chrono::steady_clock::now();
    const std::lock_guard<std::mutex> lock(stats_mu_);
    for (std::size_t i = 0; i < kNumLatencyClasses; ++i) {
      if (i > 0) os << ',';
      os << '"' << kClassNames[i] << "\":";
      latency_[i].WriteJson(os, now);
    }
  }
  os << "},\"registry\":" << registry.JsonString() << '}';
}

}  // namespace msn::service
