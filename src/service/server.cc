#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "core/msri.h"
#include "io/netfile.h"
#include "service/fdbuf.h"
#include "service/json.h"

namespace msn::service {
namespace {

/// Renders one frontier point as a [cost, ard_ps, num_repeaters] triple.
void AppendPoint(std::ostream& os, const TradeoffSummary& p) {
  os << '[' << obs::JsonNumber(p.cost) << ',' << obs::JsonNumber(p.ard_ps)
     << ',' << p.num_repeaters << ']';
}

/// The optional leading `"id":<json>,` fragment echoed into every
/// response.  String and number ids are supported; anything else (or no
/// id at all) yields an empty fragment.
std::string IdField(const JsonValue& request) {
  const JsonValue* id = request.Find("id");
  if (id == nullptr) return "";
  if (id->IsString()) {
    return "\"id\":\"" + obs::JsonEscape(id->AsString()) + "\",";
  }
  if (id->IsNumber()) {
    return "\"id\":" + obs::JsonNumber(id->AsNumber()) + ",";
  }
  return "";
}

}  // namespace

Server::Server(const Technology& tech, const ServerOptions& options)
    : tech_(tech),
      options_(options),
      cache_(options.cache, options.persist),
      pool_(std::max<std::size_t>(1, options.jobs)) {
  tech_.Validate();
}

std::string Server::ErrorResponse(const std::string& id_field,
                                  const std::string& message,
                                  bool timeout) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    if (timeout) {
      ++counters_.timeouts;
    } else {
      ++counters_.errors;
    }
  }
  std::string out = "{" + id_field + "\"ok\":false";
  if (timeout) out += ",\"timeout\":true";
  out += ",\"error\":\"" + obs::JsonEscape(message) + "\"}";
  return out;
}

std::string Server::HandleOptimize(const JsonValue& request,
                                   const std::string& id_field) {
  try {
    const JsonValue* net = request.Find("net");
    if (net == nullptr || !net->IsString()) {
      return ErrorResponse(id_field, "optimize requires a string 'net'",
                           false);
    }
    std::istringstream net_stream(net->AsString());
    const RcTree tree = ReadNet(net_stream);

    // Mode resolution mirrors `msn_cli optimize --mode`.
    std::string mode = "repeaters";
    if (const JsonValue* m = request.Find("mode"); m != nullptr) {
      if (!m->IsString()) {
        return ErrorResponse(id_field, "'mode' must be a string", false);
      }
      mode = m->AsString();
    }
    MsriOptions opt;
    if (mode == "sizing" || mode == "joint") {
      opt.size_drivers = true;
      opt.sizing_library = DriverSizingLibrary(tech_, {1.0, 2.0, 3.0, 4.0});
      opt.insert_repeaters = mode == "joint";
    } else if (mode != "repeaters") {
      return ErrorResponse(id_field, "unknown mode '" + mode + "'", false);
    }

    std::optional<double> spec;
    if (const JsonValue* s = request.Find("spec_ps"); s != nullptr) {
      if (!s->IsNumber()) {
        return ErrorResponse(id_field, "'spec_ps' must be a number", false);
      }
      spec = s->AsNumber();
    }

    const CanonicalRequest canon = Canonicalize(tree, tech_, opt);
    const std::pair<std::uint64_t, std::uint64_t> key{canon.fingerprint.hi,
                                                      canon.fingerprint.lo};
    std::optional<MsriSummary> summary;
    for (;;) {
      summary = cache_.Lookup(canon);
      if (summary.has_value()) break;
      {
        std::unique_lock<std::mutex> lock(inflight_mu_);
        if (inflight_.count(key) > 0) {
          // An identical request is mid-DP on another thread: coalesce —
          // wait for its insert, then retry the lookup.  The owner never
          // waits, so every waiter is blocked on running work and this
          // cannot deadlock.
          inflight_cv_.wait(lock);
          continue;
        }
        inflight_.insert(key);
      }
      try {
        // Thread-confined per-request registry, merged under the stats
        // mutex after the DP — the obs single-threaded contract holds.
        obs::RunStats run;
        obs::StatsSink sink(&run);
        opt.stats = &sink;
        const MsriResult result = RunMsri(tree, tech_, opt);
        summary = Summarize(result);
        cache_.Insert(canon, *summary);
        const std::lock_guard<std::mutex> lock(stats_mu_);
        aggregate_.MergeFrom(run);
        ++counters_.dp_runs;
      } catch (...) {
        const std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(key);
        inflight_cv_.notify_all();
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(key);
        inflight_cv_.notify_all();
      }
      break;
    }

    // The payload is a pure function of the request: no timing, no
    // hit/miss marker — a cached answer is byte-identical to the first.
    std::ostringstream os;
    os << '{' << id_field << "\"ok\":true,\"fingerprint\":\""
       << canon.fingerprint.Hex() << "\",\"pareto_points\":"
       << summary->pareto.size() << ",\"pareto\":[";
    for (std::size_t i = 0; i < summary->pareto.size(); ++i) {
      if (i > 0) os << ',';
      AppendPoint(os, summary->pareto[i]);
    }
    os << "],\"min_cost\":";
    if (const TradeoffSummary* p = summary->MinCost()) {
      AppendPoint(os, *p);
    } else {
      os << "null";
    }
    os << ",\"min_ard\":";
    if (const TradeoffSummary* p = summary->MinArd()) {
      AppendPoint(os, *p);
    } else {
      os << "null";
    }
    if (spec.has_value()) {
      os << ",\"spec_ps\":" << obs::JsonNumber(*spec) << ",\"pick\":";
      if (const TradeoffSummary* p = summary->MinCostFeasible(*spec)) {
        AppendPoint(os, *p);
      } else {
        os << "null";
      }
    }
    os << '}';
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return os.str();
  } catch (const std::exception& e) {
    // Containment: a malformed net or throwing DP answers this request
    // only; the loop and every other in-flight request are unaffected.
    return ErrorResponse(id_field, e.what(), false);
  }
}

std::string Server::Dispatch(const std::string& line, bool* shutdown) {
  JsonValue request;
  std::string id_field;
  try {
    request = JsonValue::Parse(line);
    id_field = IdField(request);
  } catch (const std::exception& e) {
    return ErrorResponse("", e.what(), false);
  }
  const JsonValue* op = request.Find("op");
  if (op == nullptr || !op->IsString()) {
    return ErrorResponse(id_field, "request requires a string 'op'", false);
  }
  const std::string& name = op->AsString();
  if (name == "optimize") return HandleOptimize(request, id_field);
  if (name == "stats") {
    // Settle the write-behind segment first so segment_* counters (and
    // the on-disk state they describe) reflect every prior insert.
    cache_.Sync();
    std::ostringstream os;
    WriteStatsJson(os);
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.ok;
    return "{" + id_field + os.str().substr(1);
  }
  if (name == "flush") {
    cache_.Flush();
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return "{" + id_field + "\"ok\":true,\"flushed\":true}";
  }
  if (name == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.ok;
    }
    return "{" + id_field + "\"ok\":true,\"shutdown\":true}";
  }
  return ErrorResponse(id_field, "unknown op '" + name + "'", false);
}

std::string Server::HandleLine(const std::string& line) {
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.received;
  }
  bool shutdown = false;
  return Dispatch(line, &shutdown);
}

bool Server::Serve(std::istream& in, std::ostream& out) {
  std::mutex out_mu;
  const auto write_line = [&out, &out_mu](const std::string& line) {
    const std::lock_guard<std::mutex> lock(out_mu);
    out << line << '\n';
    out.flush();
  };

  runtime::TaskGroup group(&pool_);
  bool shutdown = false;
  std::string line;
  while (!shutdown && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.received;
    }
    JsonValue request;
    std::string id_field;
    try {
      request = JsonValue::Parse(line);
      id_field = IdField(request);
    } catch (const std::exception& e) {
      write_line(ErrorResponse("", e.what(), false));
      continue;
    }
    const JsonValue* op = request.Find("op");
    if (op == nullptr || !op->IsString()) {
      write_line(
          ErrorResponse(id_field, "request requires a string 'op'", false));
      continue;
    }
    if (op->AsString() == "optimize") {
      // Per-request deadline: an explicit deadline_ms wins, else the
      // server default; absent/<=0 with no explicit field means none.
      bool has_deadline = options_.default_deadline_ms > 0.0;
      double deadline_ms = options_.default_deadline_ms;
      if (const JsonValue* d = request.Find("deadline_ms"); d != nullptr) {
        if (!d->IsNumber() || d->AsNumber() < 0.0) {
          write_line(ErrorResponse(
              id_field, "'deadline_ms' must be a non-negative number",
              false));
          continue;
        }
        has_deadline = true;
        deadline_ms = d->AsNumber();
      }
      auto run = [this, write_line, request = std::move(request),
                  id_field] {
        write_line(HandleOptimize(request, id_field));
      };
      if (has_deadline) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(deadline_ms));
        group.Run(std::move(run), deadline,
                  [this, write_line, id_field] {
                    write_line(ErrorResponse(
                        id_field, "deadline exceeded before start", true));
                  });
      } else {
        group.Run(std::move(run));
      }
      continue;
    }
    // stats / flush / shutdown / unknown are barriers: drain in-flight
    // optimizes so their answers reflect a settled state.
    group.Wait();
    write_line(Dispatch(line, &shutdown));
  }
  group.Wait();
  return shutdown;
}

int Server::ServeTcp(std::uint16_t port, std::ostream& log) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    log << "service: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    log << "service: bind/listen 127.0.0.1:" << port << ": "
        << std::strerror(errno) << '\n';
    ::close(listener);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  log << "service: listening on 127.0.0.1:" << ntohs(bound.sin_port)
      << '\n';
  log.flush();
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      log << "service: accept: " << std::strerror(errno) << '\n';
      ::close(listener);
      return 1;
    }
    FdStreamBuf buf(conn);
    std::istream conn_in(&buf);
    std::ostream conn_out(&buf);
    const bool shutdown = Serve(conn_in, conn_out);
    conn_out.flush();
    ::close(conn);
    if (shutdown) {
      ::close(listener);
      return 0;
    }
  }
}

void Server::WriteStatsJson(std::ostream& os) const {
  obs::RunStats registry;
  RequestCounters counters;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    registry.MergeFrom(aggregate_);
    counters = counters_;
  }
  cache_.ExportStats(&registry);
  const CacheStats cache = cache_.Snapshot();
  const SegmentStats segment = cache_.Segment();
  os << "{\"schema\":\"msn-service-stats-v1\",\"jobs\":"
     << pool_.NumThreads() << ",\"cache\":{\"shards\":"
     << cache_.NumShards() << ",\"entries\":" << cache.entries
     << ",\"bytes\":" << cache.bytes << ",\"max_entries\":"
     << cache_.Config().max_entries << ",\"max_bytes\":"
     << cache_.Config().max_bytes << ",\"hits\":" << cache.hits
     << ",\"misses\":" << cache.misses << ",\"evictions\":"
     << cache.evictions << ",\"insertions\":" << cache.insertions
     << ",\"collisions\":" << cache.collisions << ",\"flushes\":"
     << cache.flushes << ",\"segment_enabled\":"
     << (segment.enabled ? 1 : 0) << ",\"segment_bytes\":"
     << segment.file_bytes << ",\"segment_live_bytes\":"
     << segment.live_bytes << ",\"segment_dead_bytes\":"
     << segment.dead_bytes << ",\"segment_appends\":" << segment.appends
     << ",\"segment_append_errors\":" << segment.append_errors
     << ",\"segment_replayed\":" << segment.replayed
     << ",\"segment_skipped\":" << segment.skipped
     << ",\"segment_truncations\":" << segment.truncations
     << ",\"segment_header_resets\":" << segment.header_resets
     << ",\"segment_compactions\":" << segment.compactions
     << "},\"requests\":{\"received\":"
     << counters.received << ",\"ok\":" << counters.ok << ",\"errors\":"
     << counters.errors << ",\"timeouts\":" << counters.timeouts
     << ",\"dp_runs\":" << counters.dp_runs << "},\"registry\":"
     << registry.JsonString() << '}';
}

}  // namespace msn::service
