#include "service/cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace msn::service {
namespace {

/// Shard-count ceiling: striping past this buys nothing and the naive
/// round-up loop would overflow for adversarially huge requests.
constexpr std::size_t kMaxShards = std::size_t{1} << 16;
/// Minimum byte-budget slice per shard; splitting finer than this turns
/// every shard into a single-entry cache that evicts on each insert.
constexpr std::size_t kMinShardBytes = 4096;

std::size_t RoundUpPowerOfTwo(std::size_t n) {
  // Caller clamps n <= kMaxShards, so the shift cannot overflow.
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t FloorPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p <= n / 2) p <<= 1;
  return p;
}

}  // namespace

std::size_t SolutionCache::EntryCost(const std::string& text,
                                     const MsriSummary& summary) {
  // Canonical text + summary heap + bookkeeping (list node, map slot).
  return text.size() + summary.ApproxBytes() + 128;
}

SolutionCache::SolutionCache(const CacheConfig& config) : config_(config) {
  MSN_CHECK_MSG(config.max_entries >= 1, "cache max_entries must be >= 1");
  MSN_CHECK_MSG(config.max_bytes >= 1, "cache max_bytes must be >= 1");
  // Clamp the stripe count to what the budgets can feed: never more
  // shards than budgeted entries, and never slices under kMinShardBytes
  // (a config like max_bytes < shards used to hand every shard a ~1-byte
  // budget, evicting everything but the newest entry).
  std::size_t n = RoundUpPowerOfTwo(
      std::clamp<std::size_t>(config.shards, 1, kMaxShards));
  n = std::min(n, FloorPowerOfTwo(config.max_entries));
  n = std::min(n, FloorPowerOfTwo(std::max<std::size_t>(
                      1, config.max_bytes / kMinShardBytes)));
  config_.shards = n;
  per_shard_entries_ = std::max<std::size_t>(1, config.max_entries / n);
  per_shard_bytes_ = std::max<std::size_t>(1, config.max_bytes / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<MsriSummary> SolutionCache::Lookup(
    const CanonicalRequest& request) {
  Shard& shard = ShardFor(request.fingerprint);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(IndexKey(request.fingerprint));
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  const auto entry_it = it->second;
  if (entry_it->first != request.fingerprint ||
      entry_it->second.text != request.text) {
    // 64-bit index-key or full-fingerprint collision: never serve it.
    ++shard.collisions;
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
  return entry_it->second.summary;
}

void SolutionCache::Insert(const CanonicalRequest& request,
                           MsriSummary summary) {
  Shard& shard = ShardFor(request.fingerprint);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const std::uint64_t key = IndexKey(request.fingerprint);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh (same request re-inserted) or collision takeover (a
    // different request hashing to the same slot: latest wins, the old
    // entry could never be served anyway).
    auto entry_it = it->second;
    if (entry_it->first != request.fingerprint ||
        entry_it->second.text != request.text) {
      ++shard.collisions;
    }
    shard.bytes -= entry_it->second.bytes;
    entry_it->first = request.fingerprint;
    entry_it->second.text = request.text;
    entry_it->second.summary = std::move(summary);
    entry_it->second.bytes =
        EntryCost(entry_it->second.text, entry_it->second.summary);
    shard.bytes += entry_it->second.bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
    EvictOverBudgetLocked(shard);
    return;
  }
  Entry entry;
  entry.text = request.text;
  entry.summary = std::move(summary);
  entry.bytes = EntryCost(entry.text, entry.summary);
  shard.bytes += entry.bytes;
  shard.lru.emplace_front(request.fingerprint, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  EvictOverBudgetLocked(shard);
}

void SolutionCache::EvictOverBudgetLocked(Shard& shard) {
  // Keep the newest entry even when it alone exceeds the byte budget —
  // an oversized frontier is still worth one slot.
  while (shard.lru.size() > 1 &&
         (shard.lru.size() > per_shard_entries_ ||
          shard.bytes > per_shard_bytes_)) {
    const auto victim = std::prev(shard.lru.end());
    shard.bytes -= victim->second.bytes;
    shard.index.erase(IndexKey(victim->first));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void SolutionCache::Flush() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
  const std::lock_guard<std::mutex> lock(flush_mu_);
  ++flushes_;
}

std::vector<SolutionCache::DumpedEntry> SolutionCache::Dump() const {
  std::vector<DumpedEntry> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [fp, entry] : shard->lru) {
      out.push_back({fp, entry.text, entry.summary});
    }
  }
  return out;
}

CacheStats SolutionCache::Snapshot() const {
  CacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.insertions += shard->insertions;
    stats.collisions += shard->collisions;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  const std::lock_guard<std::mutex> lock(flush_mu_);
  stats.flushes = flushes_;
  return stats;
}

void SolutionCache::ExportStats(obs::RunStats* registry) const {
  const CacheStats stats = Snapshot();
  registry->GetCounter("service.cache.hits").Add(stats.hits);
  registry->GetCounter("service.cache.misses").Add(stats.misses);
  registry->GetCounter("service.cache.evictions").Add(stats.evictions);
  registry->GetCounter("service.cache.insertions").Add(stats.insertions);
  registry->GetCounter("service.cache.collisions").Add(stats.collisions);
  registry->GetCounter("service.cache.flushes").Add(stats.flushes);
  registry->SetValue("service.cache.entries",
                     static_cast<double>(stats.entries));
  registry->SetValue("service.cache.bytes",
                     static_cast<double>(stats.bytes));
  registry->SetValue("service.cache.max_entries",
                     static_cast<double>(config_.max_entries));
  registry->SetValue("service.cache.max_bytes",
                     static_cast<double>(config_.max_bytes));
  registry->SetValue("service.cache.shards",
                     static_cast<double>(shards_.size()));
}

}  // namespace msn::service
