// EINTR-safe POSIX fd I/O for the service layer: a duplex std::streambuf
// over a connected socket (the TCP serve path) and the WriteFully /
// ReadFully helpers the segment writer shares.
//
// The write path is the reason this exists as its own unit: a signal
// landing mid-response must not drop bytes of a JSON reply, so every
// write loop retries EINTR and continues short writes until the buffer
// is down (the same discipline the accept loop applies to EINTR).  The
// raw I/O functions are injectable so tests can interpose a scripted
// short-writing / EINTR-raising fd without real signals.
#ifndef MSN_SERVICE_FDBUF_H
#define MSN_SERVICE_FDBUF_H

#include <sys/types.h>

#include <cstddef>
#include <streambuf>

namespace msn::service {

/// Signatures of ::read / ::write, injectable for fault testing.
using FdReadFn = ssize_t (*)(int fd, void* buf, std::size_t n);
using FdWriteFn = ssize_t (*)(int fd, const void* buf, std::size_t n);

/// Accept shape the serve loop calls (listener fd in, connection fd or
/// -1 + errno out), injectable so tests can script EMFILE storms and
/// fatal errors without exhausting real fd tables.
using FdAcceptFn = int (*)(int listener_fd);

/// Writes all `n` bytes to `fd`, retrying EINTR and short writes.
/// Returns false on any other error or on a zero-progress write.
bool WriteFully(int fd, const char* data, std::size_t n,
                FdWriteFn write_fn = nullptr);

/// Reads exactly `n` bytes, retrying EINTR.  False on error or EOF
/// before `n` bytes arrived.
bool ReadFully(int fd, char* data, std::size_t n,
               FdReadFn read_fn = nullptr);

/// Duplex streambuf over a connected fd (TCP serve mode).  Reads retry
/// EINTR; writes go through WriteFully, so a signal mid-flush cannot
/// truncate a response line.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd, FdReadFn read_fn = nullptr,
                       FdWriteFn write_fn = nullptr);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  int FlushOut();

  static constexpr std::size_t kBufBytes = 1 << 16;
  int fd_;
  FdReadFn read_fn_;
  FdWriteFn write_fn_;
  char ibuf_[kBufBytes];
  char obuf_[kBufBytes];
};

}  // namespace msn::service

#endif  // MSN_SERVICE_FDBUF_H
