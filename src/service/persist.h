// Crash-safe persistence for the solution cache (docs/SERVICE.md
// "Persistence & recovery").
//
// PersistentCache layers an append-only on-disk segment (segment.h)
// under the in-memory SolutionCache:
//
//   * Inserts are write-behind: the in-memory insert returns
//     immediately and a dedicated writer thread appends the record to
//     the segment; Sync() drains the queue and fsyncs (the server syncs
//     on stats, flush, and shutdown).
//   * Startup replays the segment to warm the LRU, oldest record first,
//     so budget eviction keeps the newest records.  Replay is
//     adversarial-input-safe: a bad header resets the file, a corrupt
//     CRC or undecodable payload is skipped, a truncated tail is cut
//     before appending resumes, and a record larger than the cache's
//     whole byte budget is skipped — each with a counted warning, never
//     a crash.  A warmed entry still verifies canonical-text equality
//     on every hit, so a wrong frontier can never be served.
//   * A re-insert of a fingerprint supersedes its previous record
//     (last-wins on replay); superseded bytes are dead weight, and when
//     they exceed both `compact_min_dead_bytes` and the live bytes the
//     writer compacts: the in-memory entries are rewritten to a fresh
//     segment which atomically renames over the old one.
//   * Flush() drops the in-memory entries AND truncates the segment —
//     durably, so a flushed entry cannot resurrect on restart.
//
// With an empty `dir` the layer is a pass-through around SolutionCache
// (no thread, no file).  One live server per cache dir: the segment is
// flock'd and a second opener fails construction.
#ifndef MSN_SERVICE_PERSIST_H
#define MSN_SERVICE_PERSIST_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/stats.h"
#include "service/cache.h"
#include "service/segment.h"

namespace msn::service {

struct PersistConfig {
  /// Directory holding the segment; empty disables persistence.
  std::string dir;
  /// Compact when dead (superseded/corrupt) bytes exceed this AND the
  /// live bytes — amortized O(1) rewrite work per appended byte.
  std::size_t compact_min_dead_bytes = 1u << 20;
  /// Replay length-field sanity bound; larger is treated as corruption.
  std::size_t max_record_bytes = 64u << 20;
};

/// Point-in-time persistence counters (all zero when disabled).
struct SegmentStats {
  std::uint64_t appends = 0;        ///< Records written behind inserts.
  std::uint64_t append_errors = 0;  ///< Failed/oversized appends (kept serving).
  std::uint64_t replayed = 0;       ///< Records warmed into the LRU at startup.
  std::uint64_t skipped = 0;        ///< Corrupt/oversized records not warmed.
  std::uint64_t truncations = 0;    ///< Corrupt tails cut at startup.
  std::uint64_t header_resets = 0;  ///< Bad-magic files restarted empty.
  std::uint64_t compactions = 0;
  std::uint64_t file_bytes = 0;     ///< Segment size, header included.
  std::uint64_t live_bytes = 0;     ///< Newest record per fingerprint.
  std::uint64_t dead_bytes = 0;     ///< Superseded + skipped bytes.
  bool enabled = false;
};

class PersistentCache {
 public:
  /// Throws CheckError when `persist.dir` is set but unusable (cannot
  /// create, or another live server holds the segment lock).
  PersistentCache(const CacheConfig& cache_config,
                  const PersistConfig& persist_config);
  ~PersistentCache();
  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  std::optional<MsriSummary> Lookup(const CanonicalRequest& request) {
    return cache_.Lookup(request);
  }
  /// In-memory insert plus a write-behind segment append.
  void Insert(const CanonicalRequest& request, MsriSummary summary);
  /// Drops every in-memory entry and durably truncates the segment.
  void Flush();
  /// Drains the write-behind queue and fsyncs the segment.
  void Sync();

  CacheStats Snapshot() const { return cache_.Snapshot(); }
  SegmentStats Segment() const;
  bool PersistenceEnabled() const { return enabled_; }
  const SolutionCache& Memory() const { return cache_; }
  std::size_t NumShards() const { return cache_.NumShards(); }
  const CacheConfig& Config() const { return cache_.Config(); }

  /// Cache counters plus `service.segment.*` instruments.
  void ExportStats(obs::RunStats* registry) const;

  static std::string SegmentPath(const std::string& dir);

 private:
  struct Op {
    bool truncate = false;
    SegmentRecord record;  ///< Valid when !truncate.
  };
  struct PairHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& p) const {
      return static_cast<std::size_t>(p.first ^
                                      (p.second * 0x9e3779b97f4a7c15ull));
    }
  };
  using LiveMap = std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                                     std::uint64_t, PairHash>;

  void WarmFromSegment();
  void WriterLoop();
  bool DoAppend(const SegmentRecord& record);
  void DoTruncate();
  void CompactLocked(std::unique_lock<std::mutex>& lock);
  std::uint64_t DeadBytesLocked() const;

  SolutionCache cache_;
  PersistConfig pconfig_;
  bool enabled_ = false;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes the writer thread.
  std::condition_variable idle_cv_;  ///< Wakes Sync() waiters.
  std::deque<Op> queue_;
  bool stop_ = false;
  bool busy_ = false;   ///< A popped op is mid-I/O (Sync must wait).
  bool dirty_ = false;  ///< Appends since the last fsync.
  SegmentStats counters_;
  std::uint64_t live_sum_ = 0;

  /// Writer-thread-only after construction (no lock needed there).
  SegmentWriter writer_;
  LiveMap live_;

  std::thread worker_;
};

}  // namespace msn::service

#endif  // MSN_SERVICE_PERSIST_H
