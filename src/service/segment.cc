#include "service/segment.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "service/fdbuf.h"

namespace msn::service {
namespace {

// --- little-endian packing --------------------------------------------

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t LoadU32(const char* d) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(d[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t LoadU64(const char* d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(d[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Bounds-checked sequential reader over a payload buffer.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;

  bool U32(std::uint32_t* v) {
    if (size - off < 4) return false;
    *v = LoadU32(data + off);
    off += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (size - off < 8) return false;
    *v = LoadU64(data + off);
    off += 8;
    return true;
  }
  bool Bytes(std::size_t n, std::string* out) {
    if (size - off < n) return false;
    out->assign(data + off, n);
    off += n;
    return true;
  }
};

/// Reads up to n bytes (single attempt semantics with EINTR retry);
/// returns bytes read, 0 on EOF, -1 on error.
ssize_t ReadUpTo(int fd, char* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

}  // namespace

std::uint32_t Crc32(const char* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeFramedRecord(const SegmentRecord& record) {
  std::string payload;
  payload.reserve(40 + record.text.size() +
                  24 * record.summary.pareto.size());
  PutU64(&payload, record.fingerprint.hi);
  PutU64(&payload, record.fingerprint.lo);
  PutU32(&payload, static_cast<std::uint32_t>(record.text.size()));
  payload.append(record.text);
  PutU64(&payload, record.summary.solutions_generated);
  PutU64(&payload, record.summary.max_set_size);
  PutU32(&payload,
         static_cast<std::uint32_t>(record.summary.pareto.size()));
  for (const TradeoffSummary& p : record.summary.pareto) {
    PutU64(&payload, DoubleBits(p.cost));
    PutU64(&payload, DoubleBits(p.ard_ps));
    PutU64(&payload, p.num_repeaters);
  }
  std::string framed;
  framed.reserve(kRecordFrameBytes + payload.size());
  PutU32(&framed, static_cast<std::uint32_t>(payload.size()));
  PutU32(&framed, Crc32(payload.data(), payload.size()));
  framed.append(payload);
  return framed;
}

bool DecodeRecordPayload(const char* data, std::size_t n,
                         SegmentRecord* out) {
  Cursor c{data, n};
  SegmentRecord rec;
  std::uint32_t text_len = 0;
  if (!c.U64(&rec.fingerprint.hi) || !c.U64(&rec.fingerprint.lo) ||
      !c.U32(&text_len) || !c.Bytes(text_len, &rec.text)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!c.U64(&rec.summary.solutions_generated) ||
      !c.U64(&rec.summary.max_set_size) || !c.U32(&count)) {
    return false;
  }
  // Each point is 24 bytes; reject a count the buffer cannot hold before
  // reserving (adversarial length fields must not drive allocation).
  if ((n - c.off) / 24 < count) return false;
  rec.summary.pareto.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t cost = 0, ard = 0, reps = 0;
    if (!c.U64(&cost) || !c.U64(&ard) || !c.U64(&reps)) return false;
    rec.summary.pareto.push_back(
        {BitsDouble(cost), BitsDouble(ard),
         static_cast<std::size_t>(reps)});
  }
  if (c.off != n) return false;  // trailing bytes: not this format
  *out = std::move(rec);
  return true;
}

ReplayStats ReplaySegment(
    const std::string& path, std::size_t max_record_bytes,
    const std::function<void(SegmentRecord&&, std::uint64_t)>& handler) {
  ReplayStats rs;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return rs;
  rs.file_exists = true;
  char magic[kSegmentHeaderBytes];
  if (!ReadFully(fd, magic, sizeof(magic)) ||
      std::memcmp(magic, kSegmentMagic, sizeof(magic)) != 0) {
    ::close(fd);
    return rs;  // bad/short header: the whole file is reset
  }
  rs.header_ok = true;
  rs.valid_bytes = kSegmentHeaderBytes;
  std::string payload;
  for (;;) {
    char frame[kRecordFrameBytes];
    const ssize_t got = ReadUpTo(fd, frame, sizeof(frame));
    if (got == 0) break;  // clean end of file
    if (got < 0 || static_cast<std::size_t>(got) < sizeof(frame)) {
      rs.truncations = 1;  // frame cut mid-write
      break;
    }
    const std::uint32_t len = LoadU32(frame);
    const std::uint32_t crc = LoadU32(frame + 4);
    if (len == 0 || len > max_record_bytes) {
      // A zero or implausible length is indistinguishable from a
      // corrupted frame: everything from here on is untrusted.
      rs.truncations = 1;
      break;
    }
    payload.resize(len);
    if (!ReadFully(fd, payload.data(), len)) {
      rs.truncations = 1;  // payload cut mid-write
      break;
    }
    const std::uint64_t record_end =
        rs.valid_bytes + kRecordFrameBytes + len;
    if (Crc32(payload.data(), len) != crc) {
      ++rs.skipped;  // mid-file damage: skip, keep scanning
      rs.valid_bytes = record_end;
      continue;
    }
    SegmentRecord rec;
    if (!DecodeRecordPayload(payload.data(), len, &rec)) {
      ++rs.skipped;
      rs.valid_bytes = record_end;
      continue;
    }
    handler(std::move(rec), kRecordFrameBytes + len);
    ++rs.replayed;
    rs.valid_bytes = record_end;
  }
  ::close(fd);
  return rs;
}

bool SegmentWriter::Open(const std::string& path,
                         std::uint64_t keep_bytes) {
  Close();
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return false;  // another live writer owns this segment
  }
  char magic[kSegmentHeaderBytes];
  const bool header_ok =
      ReadFully(fd, magic, sizeof(magic)) &&
      std::memcmp(magic, kSegmentMagic, sizeof(magic)) == 0;
  if (!header_ok) {
    // Fresh, short, or foreign file: restart it as an empty segment.
    if (::ftruncate(fd, 0) != 0 ||
        ::lseek(fd, 0, SEEK_SET) < 0 ||
        !WriteFully(fd, kSegmentMagic, sizeof(kSegmentMagic))) {
      ::close(fd);
      return false;
    }
    file_bytes_ = kSegmentHeaderBytes;
  } else {
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      return false;
    }
    file_bytes_ = static_cast<std::uint64_t>(size);
    if (keep_bytes >= kSegmentHeaderBytes && keep_bytes < file_bytes_) {
      // Cut the corrupt tail replay identified before appending again.
      if (::ftruncate(fd, static_cast<off_t>(keep_bytes)) != 0) {
        ::close(fd);
        return false;
      }
      file_bytes_ = keep_bytes;
    }
  }
  fd_ = fd;
  path_ = path;
  return true;
}

bool SegmentWriter::Append(const SegmentRecord& record) {
  return AppendFramed(EncodeFramedRecord(record));
}

bool SegmentWriter::AppendFramed(const std::string& framed) {
  if (fd_ < 0) return false;
  if (::lseek(fd_, static_cast<off_t>(file_bytes_), SEEK_SET) < 0) {
    return false;
  }
  if (!WriteFully(fd_, framed.data(), framed.size())) return false;
  file_bytes_ += framed.size();
  return true;
}

bool SegmentWriter::Sync() {
  if (fd_ < 0) return false;
  return ::fsync(fd_) == 0;
}

bool SegmentWriter::TruncateToHeader() {
  if (fd_ < 0) return false;
  if (::ftruncate(fd_, kSegmentHeaderBytes) != 0) return false;
  file_bytes_ = kSegmentHeaderBytes;
  return ::fsync(fd_) == 0;
}

void SegmentWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);  // releases the flock
    fd_ = -1;
  }
  path_.clear();
  file_bytes_ = 0;
}

}  // namespace msn::service
