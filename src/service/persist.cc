#include "service/persist.h"

#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/check.h"

namespace msn::service {
namespace {

std::pair<std::uint64_t, std::uint64_t> LiveKey(const Fingerprint& fp) {
  return {fp.hi, fp.lo};
}

}  // namespace

std::string PersistentCache::SegmentPath(const std::string& dir) {
  return dir + "/cache.msnseg";
}

PersistentCache::PersistentCache(const CacheConfig& cache_config,
                                 const PersistConfig& persist_config)
    : cache_(cache_config), pconfig_(persist_config) {
  if (pconfig_.dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(pconfig_.dir, ec);
  MSN_CHECK_MSG(!ec, "cannot create cache dir '" << pconfig_.dir << "': "
                                                 << ec.message());
  WarmFromSegment();
  enabled_ = true;
  counters_.enabled = true;
  worker_ = std::thread([this] { WriterLoop(); });
}

PersistentCache::~PersistentCache() {
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();  // drains and fsyncs before exiting
}

void PersistentCache::WarmFromSegment() {
  const std::string path = SegmentPath(pconfig_.dir);
  const ReplayStats rs = ReplaySegment(
      path, pconfig_.max_record_bytes,
      [this](SegmentRecord&& rec, std::uint64_t framed_bytes) {
        // A record bigger than the whole cache budget could never be
        // kept; skip it (it stays on disk as dead weight until the next
        // compaction).
        if (SolutionCache::EntryCost(rec.text, rec.summary) >
            cache_.Config().max_bytes) {
          ++counters_.skipped;
          return;
        }
        const auto key = LiveKey(rec.fingerprint);
        const auto it = live_.find(key);
        if (it != live_.end()) {
          live_sum_ -= it->second;  // superseded: last record wins
        }
        live_[key] = framed_bytes;
        live_sum_ += framed_bytes;
        CanonicalRequest request;
        request.fingerprint = rec.fingerprint;
        request.text = std::move(rec.text);
        // Oldest-first insertion order: LRU eviction under the budget
        // keeps the newest replayed records.
        cache_.Insert(request, std::move(rec.summary));
        ++counters_.replayed;
      });
  counters_.skipped += rs.skipped;
  counters_.truncations += rs.truncations;
  if (rs.file_exists && !rs.header_ok) {
    ++counters_.header_resets;
    live_.clear();
    live_sum_ = 0;
  }
  const std::uint64_t keep =
      rs.truncations > 0 ? rs.valid_bytes : std::uint64_t{0};
  MSN_CHECK_MSG(writer_.Open(path, keep),
                "cannot open cache segment '"
                    << path << "' (already locked by another server?)");
  counters_.file_bytes = writer_.FileBytes();
  counters_.live_bytes = live_sum_;
  counters_.dead_bytes = DeadBytesLocked();
}

std::uint64_t PersistentCache::DeadBytesLocked() const {
  const std::uint64_t used = kSegmentHeaderBytes + live_sum_;
  const std::uint64_t file = writer_.FileBytes();
  return file > used ? file - used : 0;
}

void PersistentCache::Insert(const CanonicalRequest& request,
                             MsriSummary summary) {
  if (!enabled_) {
    cache_.Insert(request, std::move(summary));
    return;
  }
  Op op;
  op.record.fingerprint = request.fingerprint;
  op.record.text = request.text;
  op.record.summary = summary;  // copy: the cache takes the original
  cache_.Insert(request, std::move(summary));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(op));
  }
  work_cv_.notify_all();
}

void PersistentCache::Flush() {
  cache_.Flush();
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();  // pending appends are part of what's being flushed
    Op op;
    op.truncate = true;
    queue_.push_back(std::move(op));
  }
  work_cv_.notify_all();
  Sync();  // flushed entries must not resurrect after a crash
}

void PersistentCache::Sync() {
  if (!enabled_) return;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_all();
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && !busy_ && !dirty_; });
}

void PersistentCache::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!queue_.empty()) {
      Op op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;  // Sync must not observe "idle" mid-append.
      lock.unlock();
      // File I/O off the lock: inserts never wait on the disk.
      if (op.truncate) {
        DoTruncate();
        lock.lock();
        dirty_ = false;  // TruncateToHeader fsyncs
      } else {
        const bool ok = DoAppend(op.record);
        lock.lock();
        if (ok) {
          ++counters_.appends;
          dirty_ = true;
        } else {
          ++counters_.append_errors;  // disk trouble: keep serving
        }
      }
      counters_.file_bytes = writer_.FileBytes();
      counters_.live_bytes = live_sum_;
      counters_.dead_bytes = DeadBytesLocked();
      if (counters_.dead_bytes >= pconfig_.compact_min_dead_bytes &&
          counters_.dead_bytes > counters_.live_bytes) {
        CompactLocked(lock);
      }
      busy_ = false;
      continue;
    }
    if (dirty_) {
      lock.unlock();
      writer_.Sync();
      lock.lock();
      dirty_ = false;
      continue;
    }
    idle_cv_.notify_all();
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

bool PersistentCache::DoAppend(const SegmentRecord& record) {
  const std::string framed = EncodeFramedRecord(record);
  if (!writer_.AppendFramed(framed)) return false;
  const auto key = LiveKey(record.fingerprint);
  const auto it = live_.find(key);
  if (it != live_.end()) live_sum_ -= it->second;
  live_[key] = framed.size();
  live_sum_ += framed.size();
  return true;
}

void PersistentCache::DoTruncate() {
  writer_.TruncateToHeader();
  live_.clear();
  live_sum_ = 0;
}

void PersistentCache::CompactLocked(std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  // Rewrite the in-memory entries (the authoritative live set — budget
  // evictions and supersessions both disappear) to a temp segment, then
  // atomically rename it over the old one.
  const std::string path = SegmentPath(pconfig_.dir);
  const std::string tmp_path = path + ".tmp";
  std::vector<SolutionCache::DumpedEntry> dump = cache_.Dump();
  SegmentWriter tmp;
  bool ok = tmp.Open(tmp_path) && tmp.TruncateToHeader();
  if (ok) {
    // Oldest first, so budget-aware replay keeps the newest again.
    for (auto it = dump.rbegin(); ok && it != dump.rend(); ++it) {
      SegmentRecord rec;
      rec.fingerprint = it->fingerprint;
      rec.text = std::move(it->text);
      rec.summary = std::move(it->summary);
      ok = tmp.Append(rec);
    }
  }
  ok = ok && tmp.Sync();
  if (ok) {
    writer_.Close();
    tmp.Close();
    ok = std::rename(tmp_path.c_str(), path.c_str()) == 0;
  } else {
    tmp.Close();
    std::remove(tmp_path.c_str());
  }
  // Reopen the (new or unchanged) segment for appending; rebuild the
  // live map from what actually got written.
  const bool reopened = writer_.Open(path);
  if (ok && reopened) {
    live_.clear();
    live_sum_ = 0;
    ReplaySegment(path, pconfig_.max_record_bytes,
                  [this](SegmentRecord&& rec, std::uint64_t framed_bytes) {
                    const auto key = LiveKey(rec.fingerprint);
                    const auto it = live_.find(key);
                    if (it != live_.end()) live_sum_ -= it->second;
                    live_[key] = framed_bytes;
                    live_sum_ += framed_bytes;
                  });
  }
  lock.lock();
  if (ok && reopened) {
    ++counters_.compactions;
  } else {
    ++counters_.append_errors;
  }
  counters_.file_bytes = writer_.FileBytes();
  counters_.live_bytes = live_sum_;
  counters_.dead_bytes = DeadBytesLocked();
  dirty_ = false;
}

SegmentStats PersistentCache::Segment() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void PersistentCache::ExportStats(obs::RunStats* registry) const {
  cache_.ExportStats(registry);
  const SegmentStats seg = Segment();
  registry->GetCounter("service.segment.appends").Add(seg.appends);
  registry->GetCounter("service.segment.append_errors")
      .Add(seg.append_errors);
  registry->GetCounter("service.segment.replayed").Add(seg.replayed);
  registry->GetCounter("service.segment.skipped").Add(seg.skipped);
  registry->GetCounter("service.segment.truncations").Add(seg.truncations);
  registry->GetCounter("service.segment.header_resets")
      .Add(seg.header_resets);
  registry->GetCounter("service.segment.compactions").Add(seg.compactions);
  registry->SetValue("service.segment.enabled", seg.enabled ? 1.0 : 0.0);
  registry->SetValue("service.segment.file_bytes",
                     static_cast<double>(seg.file_bytes));
  registry->SetValue("service.segment.live_bytes",
                     static_cast<double>(seg.live_bytes));
  registry->SetValue("service.segment.dead_bytes",
                     static_cast<double>(seg.dead_bytes));
}

}  // namespace msn::service
