#include "obs/latency.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace msn::obs {

std::size_t LatencyHistogram::BucketIndex(double v) {
  std::size_t bucket = 0;
  while (bucket + 1 < kNumBuckets &&
         v > static_cast<double>(std::uint64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

void LatencyHistogram::Record(double us, Clock::time_point now) {
  cumulative_.Record(us);
  const std::int64_t slice_no = SliceNumber(now);
  Slice& slice = slices_[static_cast<std::size_t>(slice_no) % kNumSlices];
  if (slice.slice_no != slice_no) {
    slice.slice_no = slice_no;
    slice.count = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) slice.buckets[i] = 0;
  }
  ++slice.count;
  ++slice.buckets[BucketIndex(us)];
}

double LatencyHistogram::QuantileFromBuckets(const std::uint64_t* buckets,
                                             double q) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) total += buckets[i];
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketBound(i);
  }
  return BucketBound(kNumBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap(
    Clock::time_point now) const {
  Snapshot snap;
  snap.count = cumulative_.Count();
  snap.mean_us = cumulative_.Mean();

  // Merge the slices still inside the window ending at `now`.
  const std::int64_t current = SliceNumber(now);
  std::uint64_t window[kNumBuckets] = {};
  for (const Slice& slice : slices_) {
    if (slice.slice_no < 0 || slice.slice_no > current ||
        slice.slice_no <= current - static_cast<std::int64_t>(kNumSlices)) {
      continue;
    }
    snap.window_count += slice.count;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      window[i] += slice.buckets[i];
    }
  }

  if (snap.window_count > 0) {
    snap.p50_us = QuantileFromBuckets(window, 0.50);
    snap.p95_us = QuantileFromBuckets(window, 0.95);
    snap.p99_us = QuantileFromBuckets(window, 0.99);
  } else if (snap.count > 0) {
    std::uint64_t all[kNumBuckets];
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      all[i] = cumulative_.BucketCount(i);
    }
    snap.p50_us = QuantileFromBuckets(all, 0.50);
    snap.p95_us = QuantileFromBuckets(all, 0.95);
    snap.p99_us = QuantileFromBuckets(all, 0.99);
  }
  return snap;
}

void LatencyHistogram::WriteJson(std::ostream& os,
                                 Clock::time_point now) const {
  const Snapshot snap = Snap(now);
  os << "{\"count\":" << snap.count
     << ",\"window_count\":" << snap.window_count
     << ",\"mean_us\":" << JsonNumber(snap.mean_us)
     << ",\"p50_us\":" << JsonBucketBound(snap.p50_us)
     << ",\"p95_us\":" << JsonBucketBound(snap.p95_us)
     << ",\"p99_us\":" << JsonBucketBound(snap.p99_us) << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (cumulative_.BucketCount(i) == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '[' << JsonBucketBound(cumulative_.BucketBound(i)) << ','
       << cumulative_.BucketCount(i) << ']';
  }
  os << "]}";
}

}  // namespace msn::obs
