// Request-scoped tracing: a thread-confined bounded span buffer plus a
// Chrome trace-event JSON exporter (loadable in Perfetto / about:tracing).
//
// The contract mirrors StatsSink exactly:
//   1. Zero overhead when disabled.  Every producer holds a Trace* that may
//      be null; opening a span through a null trace is exactly one pointer
//      compare — ScopedSpan does not read the clock when its Trace* is null.
//   2. Thread-confined by design; nothing is atomic except the process-wide
//      trace-id generator.  One Trace belongs to one request on one thread.
//      Parallel RunMsri workers receive a null trace, the same way they
//      receive a null StatsSink.
//   3. Bounded memory under storm load.  The span buffer is a fixed-capacity
//      ring-less buffer: once full, further spans are counted as dropped
//      instead of recorded, so a pathological request cannot balloon the
//      server's memory.
//
// Span identity: every Trace carries a 64-bit trace id (rendered as 16 hex
// chars, e.g. "9a0f51c3b2d4e607"); every span a 64-bit span id unique within
// the trace, with parent links forming the nesting tree.  The server echoes
// the trace id in the client-visible response line ("trace_id") so client
// logs join server-side traces.
#ifndef MSN_OBS_TRACE_H
#define MSN_OBS_TRACE_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace msn::obs {

/// Fresh process-unique 64-bit trace id (never zero).  A global atomic
/// counter mixed through splitmix64, so ids are unique, well-spread, and
/// need no locking or entropy source.
std::uint64_t NewTraceId();

/// The canonical textual form of a trace id: 16 lowercase hex characters.
std::string TraceIdHex(std::uint64_t id);

/// One completed span.  `name` must point at a string literal (spans are
/// recorded on hot paths; no allocation per span).
struct TraceSpan {
  const char* name;
  std::uint64_t span_id;
  std::uint64_t parent_id;  ///< 0 for root spans.
  std::chrono::steady_clock::time_point start;
  std::chrono::steady_clock::time_point end;
};

/// The span buffer for one request.  Thread-confined; see file comment.
class Trace {
 public:
  /// Default span capacity.  Generous for one request (a full MSRI run
  /// opens a handful of phase spans per DP), tight enough that a trace is
  /// at most a few hundred KiB.
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit Trace(std::uint64_t trace_id,
                 std::size_t capacity = kDefaultCapacity)
      : trace_id_(trace_id), capacity_(capacity == 0 ? 1 : capacity) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  std::uint64_t TraceId() const { return trace_id_; }
  std::string TraceIdString() const { return TraceIdHex(trace_id_); }

  const std::vector<TraceSpan>& Spans() const { return spans_; }
  /// Spans that arrived after the buffer filled; counted, not recorded.
  std::uint64_t Dropped() const { return dropped_; }

  /// Records a completed span under the current parent.  Used directly for
  /// spans whose start predates the scope that reports them (queue waits);
  /// most call sites use ScopedSpan instead.
  void RecordSpan(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
    Emit(name, NextSpanId(), current_parent_, start, end);
  }

  /// Chrome trace-event JSON: {"traceEvents":[...complete events...]}.
  /// Timestamps are microseconds relative to the earliest span start, so
  /// the file is stable across runs modulo durations.
  void WriteChromeTrace(std::ostream& os) const;
  std::string ChromeTraceString() const;

 private:
  friend class ScopedSpan;

  std::uint64_t NextSpanId() { return ++next_span_id_; }
  /// Makes `span_id` the parent of subsequently opened spans; returns the
  /// previous parent for the caller to restore on scope exit.
  std::uint64_t ExchangeParent(std::uint64_t span_id) {
    const std::uint64_t previous = current_parent_;
    current_parent_ = span_id;
    return previous;
  }
  void RestoreParent(std::uint64_t parent) { current_parent_ = parent; }

  void Emit(const char* name, std::uint64_t span_id, std::uint64_t parent_id,
            std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(TraceSpan{name, span_id, parent_id, start, end});
  }

  std::uint64_t trace_id_;
  std::size_t capacity_;
  std::uint64_t next_span_id_ = 0;
  std::uint64_t current_parent_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
};

/// RAII span: opens on construction, records on destruction.  A null trace
/// disables the span entirely — one pointer compare, no clock read, exactly
/// like ScopedTimer(nullptr).  `name` must be a string literal.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) {
      name_ = name;
      span_id_ = trace_->NextSpanId();
      saved_parent_ = trace_->ExchangeParent(span_id_);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      trace_->RestoreParent(saved_parent_);
      trace_->Emit(name_, span_id_, saved_parent_, start_, end);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  const char* name_ = nullptr;
  std::uint64_t span_id_ = 0;
  std::uint64_t saved_parent_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace msn::obs

#endif  // MSN_OBS_TRACE_H
