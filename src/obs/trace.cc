#include "obs/trace.h"

#include <atomic>
#include <ostream>
#include <sstream>

#include "obs/stats.h"

namespace msn::obs {

namespace {

/// splitmix64 finalizer: bijective on 64-bit, so distinct counter values
/// yield distinct, well-spread ids.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t NewTraceId() {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id = 0;
  while (id == 0) {
    id = Mix64(counter.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  return id;
}

std::string TraceIdHex(std::uint64_t id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xf];
    id >>= 4;
  }
  return out;
}

void Trace::WriteChromeTrace(std::ostream& os) const {
  // Complete ("ph":"X") events; ts/dur in microseconds relative to the
  // earliest span start.  pid/tid are nominal — a Trace is thread-confined,
  // so everything lands on one row per trace.
  std::chrono::steady_clock::time_point epoch;
  bool have_epoch = false;
  for (const TraceSpan& s : spans_) {
    if (!have_epoch || s.start < epoch) {
      epoch = s.start;
      have_epoch = true;
    }
  }
  const std::string trace_hex = TraceIdString();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    const double ts_us =
        std::chrono::duration<double, std::micro>(s.start - epoch).count();
    const double dur_us =
        std::chrono::duration<double, std::micro>(s.end - s.start).count();
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << JsonEscape(s.name)
       << "\",\"cat\":\"msn\",\"ph\":\"X\",\"ts\":" << JsonNumber(ts_us)
       << ",\"dur\":" << JsonNumber(dur_us)
       << ",\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"" << trace_hex
       << "\",\"span_id\":" << s.span_id << ",\"parent_id\":" << s.parent_id
       << "}}";
  }
  os << "],\"otherData\":{\"trace_id\":\"" << trace_hex
     << "\",\"dropped_spans\":" << dropped_ << "}}";
}

std::string Trace::ChromeTraceString() const {
  std::ostringstream os;
  WriteChromeTrace(os);
  return os.str();
}

}  // namespace msn::obs
