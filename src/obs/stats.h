// Lightweight run instrumentation: monotonic counters, scoped wall-clock
// timers, value histograms, and the RunStats registry that renders them as
// human-readable text or a stable JSON document (schema "msn-run-stats-v1",
// documented in docs/OBSERVABILITY.md).
//
// Design goals, in order:
//   1. Zero overhead when disabled.  Every producer holds a StatsSink* that
//      may be null; recording through a null sink is exactly one pointer
//      compare.  ScopedTimer does not even read the clock when its Timer*
//      is null.
//   2. Pre-resolved hot-path handles.  StatsSink registers the pipeline's
//      instruments once at construction, so the DP inner loops never touch
//      the registry's string map.
//   3. Stable, diffable output.  The registry is name-sorted; JSON keys and
//      units never change meaning within a schema version, so BENCH_*.json
//      trajectories stay comparable across PRs.
//
// Everything here is single-threaded by design; nothing is atomic.  The
// parallel batch engine (src/runtime) keeps that contract by giving every
// net its own thread-confined RunStats/StatsSink and folding them into one
// aggregate registry *after* the join barrier via RunStats::MergeFrom —
// never by sharing a sink across threads.  Instrument pointers handed out
// by RunStats stay valid for the registry's lifetime (node-based map
// storage).
#ifndef MSN_OBS_STATS_H
#define MSN_OBS_STATS_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace msn::obs {

/// JSON string escaping shared by every JSON emitter in the tree
/// (RunStats, the batch report, the service responses): control
/// characters, quotes, backslashes.
std::string JsonEscape(const std::string& s);

/// JSON number: fixed-precision round-trip decimal; non-finite becomes
/// null (JSON has no inf/nan).
std::string JsonNumber(double v);

/// JSON number for histogram bucket bounds: exact non-negative integral
/// values up to 2^63 render as plain integers (so every power-of-two
/// bound round-trips exactly and adjacent log buckets can never collide
/// under fixed-precision printing); everything else falls back to
/// JsonNumber.
std::string JsonBucketBound(double v);

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t Value() const { return value_; }
  void MergeFrom(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulated wall time plus invocation count.  Fed by ScopedTimer.
class Timer {
 public:
  void Record(std::uint64_t ns) {
    total_ns_ += ns;
    ++calls_;
  }
  std::uint64_t Calls() const { return calls_; }
  std::uint64_t TotalNs() const { return total_ns_; }
  double TotalMs() const { return static_cast<double>(total_ns_) * 1e-6; }
  double MeanUs() const {
    return calls_ == 0 ? 0.0
                       : static_cast<double>(total_ns_) * 1e-3 /
                             static_cast<double>(calls_);
  }
  void MergeFrom(const Timer& other) {
    total_ns_ += other.total_ns_;
    calls_ += other.calls_;
  }

 private:
  std::uint64_t total_ns_ = 0;
  std::uint64_t calls_ = 0;
};

/// RAII wall-clock span recorded into a Timer on destruction.  A null
/// timer disables the span entirely — no clock read on either end.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_);
      timer_->Record(static_cast<std::uint64_t>(ns.count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Histogram of non-negative values: count/sum/min/max plus power-of-two
/// magnitude buckets (bucket i counts values in (2^(i-1), 2^i]; bucket 0
/// counts values <= 1).  Sized for the set/segment cardinalities the DP
/// produces; values beyond 2^63 clamp into the last bucket.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  void Record(double v);
  void MergeFrom(const Histogram& other);

  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Bucket upper bound (inclusive) and count of the i-th bucket.
  double BucketBound(std::size_t i) const;
  std::uint64_t BucketCount(std::size_t i) const { return buckets_[i]; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kNumBuckets] = {};
};

/// Name-keyed registry of every instrument of one run, plus free-form
/// string labels (context: net, mode, ...) and scalar values (results:
/// pareto points, prune rate, ...).  Renders to text and JSON.
class RunStats {
 public:
  /// The JSON document's "schema" field for this layout.
  static constexpr const char* kSchema = "msn-run-stats-v1";

  /// Returns the instrument registered under `name`, creating it on first
  /// use.  Pointers stay valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Timer& GetTimer(const std::string& name) { return timers_[name]; }
  Histogram& GetHistogram(const std::string& name) {
    return histograms_[name];
  }

  void SetLabel(const std::string& key, std::string value) {
    labels_[key] = std::move(value);
  }
  void SetValue(const std::string& key, double value) {
    values_[key] = value;
  }

  bool Empty() const {
    return counters_.empty() && timers_.empty() && histograms_.empty() &&
           labels_.empty() && values_.empty();
  }

  const std::map<std::string, Counter>& Counters() const { return counters_; }
  const std::map<std::string, Timer>& Timers() const { return timers_; }
  const std::map<std::string, Histogram>& Histograms() const {
    return histograms_;
  }
  const std::map<std::string, std::string>& Labels() const { return labels_; }
  const std::map<std::string, double>& Values() const { return values_; }

  /// Folds `other`'s counters, timers, and histograms into this registry
  /// (same-named instruments accumulate; new names are created).  Labels
  /// and values are per-run context/results with no meaningful sum and
  /// are left untouched.  The batch engine uses this to aggregate
  /// thread-confined per-net registries after its join barrier.
  void MergeFrom(const RunStats& other);

  /// Plain-text summary (one instrument per line, name-sorted).
  void RenderText(std::ostream& os) const;

  /// The stable JSON document (schema kSchema); see docs/OBSERVABILITY.md.
  void RenderJson(std::ostream& os) const;
  std::string JsonString() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> labels_;
  std::map<std::string, double> values_;
};

/// The PWL primitives of eq. (3) whose breakpoint growth we track.
enum class PwlPrimitive : int { kMax = 0, kAddScalar, kAddSlope, kShift };
inline constexpr std::size_t kNumPwlPrimitives = 4;
const char* PwlPrimitiveName(PwlPrimitive p);

/// Write-side handle the pipeline records into: pre-registers the standard
/// instrument schema in a RunStats so hot-path recording never performs a
/// registry lookup.  Producers take a nullable StatsSink* ("disabled" =
/// null) — see MsriOptions::stats and ComputeArd's sink parameter.
class StatsSink {
 public:
  explicit StatsSink(RunStats* registry);

  RunStats& Registry() { return *registry_; }
  const RunStats& Registry() const { return *registry_; }

  // MSRI phase timers (Figs. 6-10): wall time and invocation counts.
  // JoinSets includes its in-loop chunked MFS pruning (inclusive time).
  Timer* msri_leaf;
  Timer* msri_augment;
  Timer* msri_join;
  Timer* msri_repeater;
  Timer* msri_root;
  Timer* msri_total;
  Counter* msri_solutions;     ///< Candidate solutions generated.
  Counter* msri_join_candidates;    ///< (s1, s2) pairs JoinSets visited.
  Counter* msri_join_pruned_early;  ///< Pairs dropped before PWL build.
  Histogram* msri_set_size;    ///< Per-node set sizes after MFS pruning.

  // MFS pruning (Def. 4.3): candidate flow and prune events.
  Timer* mfs_time;
  Counter* mfs_calls;
  Counter* mfs_candidates_in;
  Counter* mfs_candidates_out;
  Counter* mfs_comparisons;
  Counter* mfs_predictive_skipped;  ///< Tests decided by the (cost, cap)
                                    ///< sort alone; always <= comparisons.
  Counter* mfs_pruned_full;     ///< Solutions fully invalidated.
  Counter* mfs_pruned_partial;  ///< Partial-domain prunes (valid shrank).

  // ARD (Section III): the three passes of the linear-time algorithm.
  Timer* ard_total;
  Timer* ard_rooting;
  Timer* ard_caps;
  Timer* ard_combine;

  // PWL breakpoint growth per primitive: one histogram of the result's
  // segment count per invocation, indexed by PwlPrimitive.
  Histogram* pwl_segments[kNumPwlPrimitives];

 private:
  RunStats* registry_;
};

namespace detail {
/// Per-thread recorder the Pwl primitives consult; null when disabled.
/// Installed by PwlStatsScope for the duration of an instrumented run —
/// Pwl is a value type used deep inside the DP, so threading a sink
/// through every call site would contaminate the whole call graph.
struct PwlRecorders {
  Histogram* segments[kNumPwlPrimitives] = {};
};
extern thread_local PwlRecorders* t_pwl_recorders;
}  // namespace detail

/// Hot-path hook called by the Pwl primitives with the result's segment
/// count; one thread-local load and compare when disabled.
inline void RecordPwl(PwlPrimitive p, std::size_t segments_out) {
  detail::PwlRecorders* r = detail::t_pwl_recorders;
  if (r == nullptr) return;
  r->segments[static_cast<int>(p)]->Record(
      static_cast<double>(segments_out));
}

/// Installs `sink`'s PWL histograms as this thread's recorders for the
/// scope's lifetime; restores the previous recorders on exit.  A null sink
/// installs nothing (an enclosing scope, if any, keeps recording).
class PwlStatsScope {
 public:
  explicit PwlStatsScope(StatsSink* sink);
  ~PwlStatsScope();
  PwlStatsScope(const PwlStatsScope&) = delete;
  PwlStatsScope& operator=(const PwlStatsScope&) = delete;

 private:
  detail::PwlRecorders recorders_;
  detail::PwlRecorders* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace msn::obs

#endif  // MSN_OBS_STATS_H
