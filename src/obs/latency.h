// Live latency telemetry: a log-bucketed latency histogram with a
// time-sliced sliding window, giving cheap p50/p95/p99 estimates over the
// recent past ("right now") alongside cumulative totals ("since start").
//
// Buckets follow obs::Histogram's scheme exactly — bucket 0 counts values
// <= 1, bucket i counts (2^(i-1), 2^i] — so the quantile of a latency in
// microseconds is reported as the power-of-two upper bound of its bucket:
// a conservative (upper) estimate that is exact at bucket edges and always
// monotone in q.
//
// The sliding window is kNumSlices time slices of kSliceSeconds each
// (6 x 10s = a 60s window).  Record() lazily resets the slice a value
// lands in when its epoch slice number has moved on; Snapshot() merges
// only the slices that are still inside the window.  `now` is an explicit
// parameter everywhere so unit tests can drive virtual time.
//
// Thread safety: none — like every obs instrument, callers serialize
// access (the server records and snapshots under its stats mutex).
#ifndef MSN_OBS_LATENCY_H
#define MSN_OBS_LATENCY_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "obs/stats.h"

namespace msn::obs {

class LatencyHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kNumBuckets = Histogram::kNumBuckets;
  static constexpr std::size_t kNumSlices = 6;
  static constexpr std::chrono::seconds kSliceSeconds{10};

  /// The log2 bucket a value lands in (same scheme as obs::Histogram).
  static std::size_t BucketIndex(double v);
  /// Inclusive upper bound of bucket i: 1 for bucket 0, else 2^i.
  static double BucketBound(std::size_t i) {
    return static_cast<double>(std::uint64_t{1}
                               << (i < 64 ? i : std::size_t{63}));
  }

  /// Records one latency observation (microseconds) at time `now`.
  void Record(double us, Clock::time_point now);

  struct Snapshot {
    std::uint64_t count = 0;         ///< Cumulative observations.
    std::uint64_t window_count = 0;  ///< Observations inside the window.
    double mean_us = 0.0;            ///< Cumulative mean.
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };

  /// Quantiles come from the sliding window when it holds any samples,
  /// else from the cumulative buckets (so a final shutdown snapshot long
  /// after traffic stopped still reports the run's distribution).
  Snapshot Snap(Clock::time_point now) const;

  std::uint64_t Count() const { return cumulative_.Count(); }
  const Histogram& Cumulative() const { return cumulative_; }

  /// Quantile upper bound from a 64-bucket count array: the bound of the
  /// first bucket whose cumulative count reaches rank ceil(q * total).
  /// Returns 0 when total is 0.  Exposed for unit tests.
  static double QuantileFromBuckets(const std::uint64_t* buckets, double q);

  /// JSON object for the service stats document:
  /// {"count":..,"window_count":..,"mean_us":..,"p50_us":..,"p95_us":..,
  ///  "p99_us":..,"buckets":[[bound,count],...]} — buckets are cumulative,
  /// bounds rendered as exact integers.
  void WriteJson(std::ostream& os, Clock::time_point now) const;

 private:
  /// Epoch slice number of `t` (monotone, one per kSliceSeconds).
  static std::int64_t SliceNumber(Clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::seconds>(
               t.time_since_epoch())
               .count() /
           kSliceSeconds.count();
  }

  struct Slice {
    std::int64_t slice_no = -1;  ///< -1 = never used.
    std::uint64_t count = 0;
    std::uint64_t buckets[kNumBuckets] = {};
  };

  Histogram cumulative_;
  Slice slices_[kNumSlices];
};

}  // namespace msn::obs

#endif  // MSN_OBS_LATENCY_H
