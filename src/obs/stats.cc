#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace msn::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += hex.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

std::string JsonBucketBound(double v) {
  // 2^63 is the largest bucket bound and is exactly representable both as
  // a double and as a uint64_t, so the integral fast path covers every
  // power-of-two bound the histograms emit.
  if (std::isfinite(v) && v >= 0.0 && v <= 9223372036854775808.0 &&
      v == std::floor(v)) {
    std::ostringstream os;
    os << static_cast<std::uint64_t>(v);
    return os.str();
  }
  return JsonNumber(v);
}

namespace {

void JsonHistogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.Count() << ",\"sum\":" << JsonNumber(h.Sum())
     << ",\"min\":" << JsonNumber(h.Min()) << ",\"max\":"
     << JsonNumber(h.Max()) << ",\"mean\":" << JsonNumber(h.Mean())
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.BucketCount(i) == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '[' << JsonBucketBound(h.BucketBound(i)) << ',' << h.BucketCount(i)
       << ']';
  }
  os << "]}";
}

/// Writes `{"k":render(v),...}` for a name-sorted map.
template <typename Map, typename Fn>
void JsonObject(std::ostream& os, const Map& map, Fn&& render) {
  os << '{';
  bool first = true;
  for (const auto& [name, entry] : map) {
    if (!first) os << ',';
    first = false;
    os << '"' << JsonEscape(name) << "\":";
    render(entry);
  }
  os << '}';
}

}  // namespace

void Histogram::Record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  std::size_t bucket = 0;
  // Bucket 0 holds v <= 1; bucket i holds (2^(i-1), 2^i].
  while (bucket + 1 < kNumBuckets &&
         v > static_cast<double>(std::uint64_t{1} << bucket)) {
    ++bucket;
  }
  ++buckets_[bucket];
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::BucketBound(std::size_t i) const {
  return static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(
             i, 63));
}

void RunStats::MergeFrom(const RunStats& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].MergeFrom(c);
  }
  for (const auto& [name, t] : other.timers_) timers_[name].MergeFrom(t);
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].MergeFrom(h);
  }
}

void RunStats::RenderText(std::ostream& os) const {
  for (const auto& [key, value] : labels_) {
    os << "label   " << key << " = " << value << '\n';
  }
  for (const auto& [name, t] : timers_) {
    os << "timer   " << name << ": " << t.Calls() << " calls, "
       << JsonNumber(t.TotalMs()) << " ms total, " << JsonNumber(t.MeanUs())
       << " us/call\n";
  }
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " = " << c.Value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "hist    " << name << ": count " << h.Count() << ", min "
       << JsonNumber(h.Min()) << ", mean " << JsonNumber(h.Mean())
       << ", max " << JsonNumber(h.Max()) << ", sum " << JsonNumber(h.Sum())
       << '\n';
  }
  for (const auto& [key, v] : values_) {
    os << "value   " << key << " = " << JsonNumber(v) << '\n';
  }
}

void RunStats::RenderJson(std::ostream& os) const {
  os << "{\"schema\":\"" << kSchema << "\",";
  os << "\"labels\":";
  JsonObject(os, labels_, [&os](const std::string& v) {
    os << '"' << JsonEscape(v) << '"';
  });
  os << ",\"values\":";
  JsonObject(os, values_, [&os](double v) { os << JsonNumber(v); });
  os << ",\"counters\":";
  JsonObject(os, counters_, [&os](const Counter& c) { os << c.Value(); });
  os << ",\"timers\":";
  JsonObject(os, timers_, [&os](const Timer& t) {
    os << "{\"calls\":" << t.Calls() << ",\"total_ms\":"
       << JsonNumber(t.TotalMs()) << ",\"mean_us\":" << JsonNumber(t.MeanUs())
       << '}';
  });
  os << ",\"histograms\":";
  JsonObject(os, histograms_, [&os](const Histogram& h) {
    JsonHistogram(os, h);
  });
  os << '}';
}

std::string RunStats::JsonString() const {
  std::ostringstream os;
  RenderJson(os);
  return os.str();
}

const char* PwlPrimitiveName(PwlPrimitive p) {
  switch (p) {
    case PwlPrimitive::kMax: return "max";
    case PwlPrimitive::kAddScalar: return "add_scalar";
    case PwlPrimitive::kAddSlope: return "add_slope";
    case PwlPrimitive::kShift: return "shift";
  }
  return "?";
}

StatsSink::StatsSink(RunStats* registry) : registry_(registry) {
  msri_leaf = &registry->GetTimer("msri.leaf");
  msri_augment = &registry->GetTimer("msri.augment");
  msri_join = &registry->GetTimer("msri.join");
  msri_repeater = &registry->GetTimer("msri.repeater");
  msri_root = &registry->GetTimer("msri.root");
  msri_total = &registry->GetTimer("msri.total");
  msri_solutions = &registry->GetCounter("msri.solutions_generated");
  msri_join_candidates = &registry->GetCounter("msri.join_candidates");
  msri_join_pruned_early = &registry->GetCounter("msri.join_pruned_early");
  msri_set_size = &registry->GetHistogram("msri.set_size");

  mfs_time = &registry->GetTimer("mfs.time");
  mfs_calls = &registry->GetCounter("mfs.calls");
  mfs_candidates_in = &registry->GetCounter("mfs.candidates_in");
  mfs_candidates_out = &registry->GetCounter("mfs.candidates_out");
  mfs_comparisons = &registry->GetCounter("mfs.comparisons");
  mfs_predictive_skipped = &registry->GetCounter("mfs.predictive_skipped");
  mfs_pruned_full = &registry->GetCounter("mfs.pruned_full");
  mfs_pruned_partial = &registry->GetCounter("mfs.pruned_partial");

  ard_total = &registry->GetTimer("ard.total");
  ard_rooting = &registry->GetTimer("ard.rooting");
  ard_caps = &registry->GetTimer("ard.caps");
  ard_combine = &registry->GetTimer("ard.combine");

  for (std::size_t i = 0; i < kNumPwlPrimitives; ++i) {
    pwl_segments[i] = &registry->GetHistogram(
        std::string("pwl.") +
        PwlPrimitiveName(static_cast<PwlPrimitive>(static_cast<int>(i))) +
        ".segments");
  }
}

namespace detail {
thread_local PwlRecorders* t_pwl_recorders = nullptr;
}  // namespace detail

PwlStatsScope::PwlStatsScope(StatsSink* sink) {
  if (sink == nullptr) return;
  for (std::size_t i = 0; i < kNumPwlPrimitives; ++i) {
    recorders_.segments[i] = sink->pwl_segments[i];
  }
  previous_ = detail::t_pwl_recorders;
  detail::t_pwl_recorders = &recorders_;
  installed_ = true;
}

PwlStatsScope::~PwlStatsScope() {
  if (installed_) detail::t_pwl_recorders = previous_;
}

}  // namespace msn::obs
