// Seeded multi-net design generation for the timing-closure workload
// (docs/STA.md).
//
// GenerateDesign grows a design one net at a time: each net sinks into
// a freshly created component (whose in→out arcs carry random pin
// delays) and optionally a new primary-output port, and is driven by
// primary inputs or the out pins of *already created* components.
// Every edge therefore points forward in creation order, so the design
// is acyclic by construction; multi-source nets get two forward drivers
// rather than a transceiver loop.  The builder goes through the same
// Design::Add* mutators as the `.msd` parser and is finished with
// Design::Validate, so a generated design is valid by the same rules
// parsed ones are.
//
// Output-port required times are derived from the design's own
// unoptimized critical paths (required = required_factor × initial
// arrival), so `required_factor < 1` yields a design that fails timing
// by a controlled margin — the closure loop's natural test input.
//
// Everything is deterministic in the seed: same config, same Design,
// byte-identical files from WriteDesignFiles.
#ifndef MSN_NETGEN_DESIGN_GEN_H
#define MSN_NETGEN_DESIGN_GEN_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "netgen/netgen.h"
#include "sta/design.h"
#include "tech/tech.h"

namespace msn {

struct DesignConfig {
  std::uint64_t seed = 1;
  std::size_t num_nets = 8;
  /// Terminals per net, drawn uniformly (min >= 2 after clamping).
  std::size_t terminals_min = 3;
  std::size_t terminals_max = 5;
  /// Per-net placement grid handed to BuildExperimentNet.
  NetConfig net;
  /// Fraction of nets given two source terminals (multi-source buses).
  double multi_source_fraction = 0.25;
  /// Fraction of multi-sink nets that also sink into a new primary
  /// output (the last net always does, so every design has endpoints).
  double output_fraction = 0.35;
  /// Component pin-to-pin arc delay range.
  double arc_delay_min_ps = 20.0;
  double arc_delay_max_ps = 120.0;
  /// Primary-input arrival range.
  double arrival_max_ps = 50.0;
  /// Output required time = this × the port's unoptimized arrival;
  /// < 1 generates a design that initially fails timing.
  double required_factor = 0.9;
};

/// Generates the design with every net's topology loaded (ready for
/// CloseTiming without touching disk).  Net `msn_path`s are
/// "net_0000.msn"-style relative names for WriteDesignFiles.
sta::Design GenerateDesign(const DesignConfig& config,
                           const Technology& tech);

/// Writes `<dir>/<name>.msd` plus every net's `.msn` into `dir`
/// (created if missing) and returns the `.msd` path.  Byte-identical
/// for identical designs.
std::string WriteDesignFiles(const sta::Design& design,
                             const std::string& dir,
                             const std::string& name = "design");

}  // namespace msn

#endif  // MSN_NETGEN_DESIGN_GEN_H
