// Workload generation for the paper's experiments (Section VI).
//
// The evaluation uses random point sets on a 1 cm × 1 cm grid (10 nets per
// cardinality), connected by a Steiner tree, with insertion points no more
// than ~800 µm apart and at least one per wire segment.  Everything here
// is deterministic in the seed.
#ifndef MSN_NETGEN_NETGEN_H
#define MSN_NETGEN_NETGEN_H

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Topology generator used by BuildExperimentNet.
enum class TopologyKind {
  kOneSteiner,  ///< Iterated 1-Steiner (fast, near-optimal wirelength).
  kPTree,       ///< The paper's P-Tree interval DP (ref [16]).
};

struct NetConfig {
  std::uint64_t seed = 1;
  std::size_t num_terminals = 10;
  std::int64_t grid_um = 10'000;        ///< 1 cm.
  double insertion_spacing_um = 800.0;  ///< Paper Section VI.
  bool at_least_one_per_wire = true;    ///< Paper footnote 14.
  /// bench_topology shows the two generators produce equivalent
  /// optimized diameters; 1-Steiner is the default for speed.
  TopologyKind topology = TopologyKind::kOneSteiner;
};

/// `n` distinct random points on the [0, grid]² lattice.
std::vector<Point> RandomTerminals(std::uint64_t seed, std::size_t n,
                                   std::int64_t grid_um);

/// `n` distinct points along a horizontal bus spine: x spread over the
/// grid, y jittered within ±`jitter_um` of the centreline — the physical
/// shape of a real board- or die-level bus.
std::vector<Point> BusLikeTerminals(std::uint64_t seed, std::size_t n,
                                    std::int64_t grid_um,
                                    std::int64_t jitter_um = 500);

/// `n` distinct points in `clusters` tight groups (cluster radius
/// `radius_um`) — models agents packed into a few floorplan regions.
std::vector<Point> ClusteredTerminals(std::uint64_t seed, std::size_t n,
                                      std::int64_t grid_um,
                                      std::size_t clusters = 3,
                                      std::int64_t radius_um = 800);

/// Full experiment net: random terminals -> iterated 1-Steiner topology ->
/// RC tree with default (source+sink, AT=DD=0) terminals -> insertion
/// points at the configured spacing.
RcTree BuildExperimentNet(const NetConfig& config, const Technology& tech);

/// The paper's Fig. 11 subject: a fixed 8-pin net (total wirelength
/// ≈ 19.6 kµm) where every pin may drive or receive.
RcTree BuildFig11Net(const Technology& tech);

}  // namespace msn

#endif  // MSN_NETGEN_NETGEN_H
