#include "netgen/netgen.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "steiner/one_steiner.h"
#include "steiner/ptree.h"

namespace msn {

std::vector<Point> RandomTerminals(std::uint64_t seed, std::size_t n,
                                   std::int64_t grid_um) {
  MSN_CHECK_MSG(static_cast<std::int64_t>(n) <= (grid_um + 1) * (grid_um + 1),
                "more terminals than grid positions");
  Rng rng(seed);
  std::unordered_set<Point> used;
  std::vector<Point> points;
  points.reserve(n);
  while (points.size() < n) {
    const Point p{rng.UniformInt(0, grid_um), rng.UniformInt(0, grid_um)};
    if (used.insert(p).second) points.push_back(p);
  }
  return points;
}

std::vector<Point> BusLikeTerminals(std::uint64_t seed, std::size_t n,
                                    std::int64_t grid_um,
                                    std::int64_t jitter_um) {
  Rng rng(seed);
  std::unordered_set<Point> used;
  std::vector<Point> points;
  points.reserve(n);
  const std::int64_t mid = grid_um / 2;
  while (points.size() < n) {
    const Point p{rng.UniformInt(0, grid_um),
                  std::clamp<std::int64_t>(
                      mid + rng.UniformInt(-jitter_um, jitter_um), 0,
                      grid_um)};
    if (used.insert(p).second) points.push_back(p);
  }
  return points;
}

std::vector<Point> ClusteredTerminals(std::uint64_t seed, std::size_t n,
                                      std::int64_t grid_um,
                                      std::size_t clusters,
                                      std::int64_t radius_um) {
  MSN_CHECK_MSG(clusters >= 1, "need at least one cluster");
  Rng rng(seed);
  std::vector<Point> centres;
  for (std::size_t c = 0; c < clusters; ++c) {
    centres.push_back({rng.UniformInt(radius_um, grid_um - radius_um),
                       rng.UniformInt(radius_um, grid_um - radius_um)});
  }
  std::unordered_set<Point> used;
  std::vector<Point> points;
  points.reserve(n);
  while (points.size() < n) {
    const Point& c = centres[points.size() % clusters];
    const Point p{std::clamp<std::int64_t>(
                      c.x + rng.UniformInt(-radius_um, radius_um), 0,
                      grid_um),
                  std::clamp<std::int64_t>(
                      c.y + rng.UniformInt(-radius_um, radius_um), 0,
                      grid_um)};
    if (used.insert(p).second) points.push_back(p);
  }
  return points;
}

RcTree BuildExperimentNet(const NetConfig& config, const Technology& tech) {
  const std::vector<Point> terminals =
      RandomTerminals(config.seed, config.num_terminals, config.grid_um);
  const SteinerTree topo = config.topology == TopologyKind::kPTree
                               ? PTree(terminals)
                               : IteratedOneSteiner(terminals);
  const std::vector<TerminalParams> params(config.num_terminals,
                                           DefaultTerminal(tech));
  RcTree tree = RcTree::FromSteinerTree(topo, tech.wire, params);
  tree.AddInsertionPoints(config.insertion_spacing_um,
                          config.at_least_one_per_wire);
  tree.Validate();
  return tree;
}

RcTree BuildFig11Net(const Technology& tech) {
  // Eight pins on the 1 cm grid; the iterated 1-Steiner topology over
  // these points has total wirelength ~19.6 kµm (paper Fig. 11).
  const std::vector<Point> pins = {
      {600, 800},   {3000, 200},  {5900, 1000}, {1000, 3600},
      {4500, 3200}, {6500, 4400}, {1800, 6300}, {5000, 6600},
  };
  const SteinerTree topo = IteratedOneSteiner(pins);
  const std::vector<TerminalParams> params(pins.size(),
                                           DefaultTerminal(tech));
  RcTree tree = RcTree::FromSteinerTree(topo, tech.wire, params);
  tree.AddInsertionPoints(800.0, true);
  tree.Validate();
  return tree;
}

}  // namespace msn
