#include "netgen/design_gen.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/ard.h"
#include "io/netfile.h"
#include "sta/timing_graph.h"

namespace msn {

namespace {

std::string NetFileName(std::size_t index) {
  std::ostringstream os;
  os << "net_" << std::setw(4) << std::setfill('0') << index << ".msn";
  return os.str();
}

/// A point that can drive a net: a primary input or an out pin of an
/// already created component (always strictly earlier in creation
/// order, which is what keeps the design acyclic).
struct DrivePoint {
  bool is_port = false;
  std::size_t port = sta::kNoIndex;
  std::size_t component = sta::kNoIndex;
  std::string token;  ///< Endpoint token for Design::AddNet.
};

}  // namespace

sta::Design GenerateDesign(const DesignConfig& config,
                           const Technology& tech) {
  MSN_CHECK_MSG(config.num_nets >= 1, "num_nets must be >= 1");
  MSN_CHECK_MSG(config.required_factor > 0.0,
                "required_factor must be positive");
  const std::size_t tmin = std::max<std::size_t>(config.terminals_min, 2);
  const std::size_t tmax = std::max(config.terminals_max, tmin);

  Rng rng(config.seed);
  sta::Design design;
  std::vector<DrivePoint> drivers;  ///< Everything that can source a net.
  std::size_t num_inputs = 0, num_outputs = 0;

  for (std::size_t n = 0; n < config.num_nets; ++n) {
    const std::size_t terminals = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(tmin),
                       static_cast<std::int64_t>(tmax)));
    // Two sources only when a second distinct drive point is available
    // (at most one fresh primary input joins per net, so the second
    // must be an existing driver).
    std::size_t sources = 1;
    if (terminals >= 3 && !drivers.empty() &&
        rng.Chance(config.multi_source_fraction)) {
      sources = 2;
    }
    const std::size_t sinks = terminals - sources;

    // --- Source endpoints: reuse an existing driver or mint a primary
    // input.  The first net has no existing drivers, so it always gets
    // a fresh input.
    std::vector<std::string> tokens;
    std::vector<std::size_t> picked;  ///< Indices into `drivers` reused.
    for (std::size_t s = 0; s < sources; ++s) {
      const bool reuse =
          !drivers.empty() && (s == 1 || rng.Chance(0.6));
      if (reuse) {
        // Second source must differ from the first.
        std::size_t d = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(drivers.size()) - 1));
        if (s == 1 && !picked.empty() && d == picked[0]) {
          d = (d + 1) % drivers.size();
          if (d == picked[0]) {
            // Only one driver exists; fall back to a fresh input.
            const std::string name = "pi" + std::to_string(num_inputs++);
            design.AddInputPort(
                name, rng.UniformReal(0.0, config.arrival_max_ps));
            tokens.push_back(name);
            continue;
          }
        }
        picked.push_back(d);
        tokens.push_back(drivers[d].token);
      } else {
        const std::string name = "pi" + std::to_string(num_inputs++);
        design.AddInputPort(name,
                            rng.UniformReal(0.0, config.arrival_max_ps));
        tokens.push_back(name);
      }
    }

    // --- Sink endpoints: a fresh component takes most of them; the
    // last one may instead be a fresh primary output (always for the
    // final net, so the design has at least one endpoint).
    const bool want_output =
        n + 1 == config.num_nets ||
        (sinks >= 2 && rng.Chance(config.output_fraction));
    const std::size_t comp_sinks = want_output ? sinks - 1 : sinks;
    std::size_t comp = sta::kNoIndex;
    if (comp_sinks > 0) {
      const std::string cname = "u" + std::to_string(n);
      comp = design.AddComponent(cname);
      design.AddPin(comp, "o", sta::PinDir::kOut);
      for (std::size_t i = 0; i < comp_sinks; ++i) {
        const std::string pname = "i" + std::to_string(i);
        design.AddPin(comp, pname, sta::PinDir::kIn);
        design.AddArc(comp, pname, "o",
                      rng.UniformReal(config.arc_delay_min_ps,
                                      config.arc_delay_max_ps));
        tokens.push_back(cname + "." + pname);
      }
      DrivePoint d;
      d.component = comp;
      d.token = cname + ".o";
      drivers.push_back(std::move(d));
    }
    if (want_output) {
      const std::string name = "po" + std::to_string(num_outputs++);
      design.AddOutputPort(name, 0.0);  // Required set after timing.
      tokens.push_back(name);
    }

    // --- Topology: an experiment net re-roled so terminals
    // [0, sources) drive and the rest receive, matching the endpoint
    // token order above.
    NetConfig ncfg = config.net;
    ncfg.seed = config.seed * 0x9e3779b97f4a7c15ull + n + 1;
    ncfg.num_terminals = terminals;
    RcTree tree = BuildExperimentNet(ncfg, tech);
    for (std::size_t t = 0; t < terminals; ++t) {
      TerminalParams& p = tree.MutableTerminal(t);
      p.is_source = t < sources;
      p.is_sink = t >= sources;
    }
    const std::size_t net = design.AddNet(
        "n" + std::to_string(n), NetFileName(n), tokens);
    design.nets[net].tree = std::move(tree);
  }

  // The final net always mints an output port, so every design has at
  // least one constrained endpoint.
  MSN_CHECK_MSG(num_outputs >= 1, "generated design has no output port");

  // --- Derive output required times from the design's own unoptimized
  // arrivals, scaled by required_factor.
  design.Validate();
  sta::TimingGraph graph(design);
  for (std::size_t n = 0; n < design.nets.size(); ++n) {
    graph.SetNetDelayPs(
        n, ComputeArd(*design.nets[n].tree, tech).ard_ps);
  }
  graph.Propagate();
  const std::vector<sta::EndpointSlack> slacks = graph.EndpointSlacks();
  std::size_t e = 0;
  for (sta::DesignPort& port : design.ports) {
    if (port.is_input) continue;
    const double arrival = slacks[e++].arrival_ps;
    port.time_ps = std::isfinite(arrival)
                       ? config.required_factor * arrival
                       : 0.0;
  }
  return design;
}

std::string WriteDesignFiles(const sta::Design& design,
                             const std::string& dir,
                             const std::string& name) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  for (const sta::DesignNet& net : design.nets) {
    MSN_CHECK_MSG(net.tree.has_value(),
                  "net '" << net.name << "' has no loaded topology");
    std::ofstream out(fs::path(dir) / net.msn_path);
    MSN_CHECK_MSG(out.good(), "cannot write '" << net.msn_path << "'");
    WriteNet(out, *net.tree);
  }
  const fs::path msd = fs::path(dir) / (name + ".msd");
  std::ofstream out(msd);
  MSN_CHECK_MSG(out.good(), "cannot write '" << msd.string() << "'");
  sta::WriteDesign(out, design);
  return msd.string();
}

}  // namespace msn
