#include "elmore/pairwise.h"

#include <algorithm>

#include "common/check.h"
#include "common/numeric.h"
#include "elmore/delay.h"

namespace msn {

PairDelayMatrix AllPairDelays(const RcTree& tree,
                              const RepeaterAssignment& repeaters,
                              const DriverAssignment& drivers,
                              const Technology& tech) {
  const std::size_t k = tree.NumTerminals();
  PairDelayMatrix m;
  m.num_terminals = k;
  m.delay_ps.assign(k * k, -kInf);
  for (std::size_t u = 0; u < k; ++u) {
    if (!drivers.Resolve(tree, u).is_source) continue;
    const SourceDelays d =
        ComputeSourceDelays(tree, u, repeaters, drivers, tech);
    for (std::size_t v = 0; v < k; ++v) {
      if (v == u) continue;
      const EffectiveTerminal sink = drivers.Resolve(tree, v);
      if (!sink.is_sink) continue;
      m.delay_ps[u * k + v] =
          d.arrival[tree.TerminalNode(v)] + sink.downstream_ps;
    }
  }
  return m;
}

std::vector<ConstraintViolation> CheckConstraints(
    const RcTree& tree, const RepeaterAssignment& repeaters,
    const DriverAssignment& drivers, const Technology& tech,
    const std::vector<PairConstraint>& constraints) {
  const PairDelayMatrix m =
      AllPairDelays(tree, repeaters, drivers, tech);
  std::vector<ConstraintViolation> violations;
  for (const PairConstraint& c : constraints) {
    MSN_CHECK_MSG(c.source < tree.NumTerminals() &&
                      c.sink < tree.NumTerminals(),
                  "constraint terminal out of range");
    MSN_CHECK_MSG(c.source != c.sink, "self-pair constraint");
    const double actual = m.At(c.source, c.sink);
    MSN_CHECK_MSG(actual != -kInf,
                  "constraint on non-source/non-sink pair ("
                      << c.source << ", " << c.sink << ")");
    if (actual > c.bound_ps + kEps) {
      violations.push_back(ConstraintViolation{c, actual});
    }
  }
  std::sort(violations.begin(), violations.end(),
            [](const ConstraintViolation& a, const ConstraintViolation& b) {
              return a.SlackPs() < b.SlackPs();
            });
  return violations;
}

double ArdImpliedBound(const RcTree& tree, std::size_t source,
                       std::size_t sink, double spec_ps) {
  MSN_CHECK_MSG(source < tree.NumTerminals() && sink < tree.NumTerminals(),
                "terminal out of range");
  // Effective AT/DD (default realizations), consistent with the delay
  // matrix: the remaining budget bounds the driver+wire+repeater path.
  return spec_ps - ResolveTerminal(tree.Terminal(source)).arrival_ps -
         ResolveTerminal(tree.Terminal(sink)).downstream_ps;
}

}  // namespace msn
