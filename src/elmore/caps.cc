#include "elmore/caps.h"

#include "common/check.h"

namespace msn {

std::vector<EffectiveTerminal> ResolveTerminals(
    const RcTree& tree, const DriverAssignment& drivers) {
  MSN_CHECK_MSG(drivers.NumTerminals() == tree.NumTerminals(),
                "driver assignment sized for " << drivers.NumTerminals()
                    << " terminals, tree has " << tree.NumTerminals());
  std::vector<EffectiveTerminal> resolved;
  resolved.reserve(tree.NumTerminals());
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    resolved.push_back(drivers.Resolve(tree, t));
  }
  return resolved;
}

CapAnalysis ComputeCaps(const RootedTree& rooted,
                        const RepeaterAssignment& repeaters,
                        const DriverAssignment& drivers,
                        const Technology& tech) {
  const RcTree& tree = rooted.Tree();
  MSN_CHECK_MSG(repeaters.NumNodes() == tree.NumNodes(),
                "repeater assignment sized for " << repeaters.NumNodes()
                    << " nodes, tree has " << tree.NumNodes());
  const std::vector<EffectiveTerminal> terms =
      ResolveTerminals(tree, drivers);

  CapAnalysis caps;
  caps.cdown.assign(tree.NumNodes(), 0.0);
  caps.cup.assign(tree.NumNodes(), 0.0);
  caps.down_load.assign(tree.NumNodes(), 0.0);

  const std::vector<NodeId>& pre = rooted.Preorder();

  // Bottom-up: cdown and down_load (equation (1) generalization).
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const NodeId v = *it;
    const RcNode& node = tree.Node(v);
    double below = 0.0;
    for (NodeId c : rooted.Children(v)) {
      below += rooted.ParentCap(c) + caps.cdown[c];
    }
    double load = below;
    if (node.kind == NodeKind::kTerminal) {
      load += terms[node.terminal_index].pin_cap;
    }
    caps.down_load[v] = load;

    if (repeaters.Has(v)) {
      MSN_CHECK_MSG(node.kind == NodeKind::kInsertion,
                    "repeater placed on non-insertion node " << v);
      const ResolvedRepeater r = repeaters.Resolve(v, tech);
      const NodeId parent = rooted.Parent(v);
      MSN_CHECK_MSG(parent != kNoNode, "repeater at the root");
      MSN_CHECK_MSG(r.a_side_neighbor == parent ||
                        (rooted.Children(v).size() == 1 &&
                         r.a_side_neighbor == rooted.Children(v)[0]),
                    "repeater orientation does not name a neighbor of node "
                        << v);
      caps.cdown[v] = r.CapToward(parent);
    } else {
      caps.cdown[v] = load;
    }
  }

  // Top-down: cup (equation (2) generalization).  cup[root] stays 0.
  for (const NodeId v : pre) {
    const NodeId p = rooted.Parent(v);
    if (p == kNoNode) continue;
    if (repeaters.Has(p)) {
      caps.cup[v] = repeaters.Resolve(p, tech).CapToward(v);
      continue;
    }
    double beyond = 0.0;
    const RcNode& pnode = tree.Node(p);
    if (pnode.kind == NodeKind::kTerminal) {
      beyond += terms[pnode.terminal_index].pin_cap;
    }
    for (NodeId sib : rooted.Children(p)) {
      if (sib == v) continue;
      beyond += rooted.ParentCap(sib) + caps.cdown[sib];
    }
    if (rooted.Parent(p) != kNoNode) {
      beyond += rooted.ParentCap(p) + caps.cup[p];
    }
    caps.cup[v] = beyond;
  }

  return caps;
}

}  // namespace msn
