// Capacitance recurrences of paper Section III, equations (1) and (2).
//
// For a rooted tree with a repeater assignment, CapAnalysis holds, per node
// v (with parent edge e = (p(v), v)):
//
//   cdown[v] — the capacitance a signal on edge e sees AT node v looking
//              into v's subtree: the up-facing input cap of a repeater at
//              v (decoupling), else pin cap for a leaf terminal, else the
//              sum over child edges of (wire cap + cdown[child]).
//   cup[v]   — the capacitance the signal sees BEYOND p(v) when travelling
//              up edge e: the down-facing input cap of a repeater at p(v),
//              else p's pin cap (if terminal) plus, for every other child
//              edge of p, (wire cap + cdown) plus, unless p is the root,
//              (parent-edge wire cap of p + cup[p]).
//
// With these, every Elmore wire-traversal delay in either direction is a
// local formula — the key to the linear-time ARD computation.
#ifndef MSN_ELMORE_CAPS_H
#define MSN_ELMORE_CAPS_H

#include <vector>

#include "rctree/assignment.h"
#include "rctree/rooted.h"
#include "tech/tech.h"

namespace msn {

struct CapAnalysis {
  std::vector<double> cdown;  ///< Indexed by NodeId; see header comment.
  std::vector<double> cup;    ///< Indexed by NodeId; 0 for the root.

  /// Load a device at `v` drives downward: pin cap (if terminal) plus
  /// Σ_children (wire cap + cdown).  Precomputed during the bottom-up pass.
  std::vector<double> down_load;
};

/// Runs the two recurrences.  `drivers` resolves terminal electricals
/// (pass a default-constructed DriverAssignment for no sizing).
/// Repeaters may only sit on insertion points (checked).
CapAnalysis ComputeCaps(const RootedTree& rooted,
                        const RepeaterAssignment& repeaters,
                        const DriverAssignment& drivers,
                        const Technology& tech);

/// Resolved electricals of every terminal under `drivers`, indexed by
/// terminal ordinal.
std::vector<EffectiveTerminal> ResolveTerminals(
    const RcTree& tree, const DriverAssignment& drivers);

}  // namespace msn

#endif  // MSN_ELMORE_CAPS_H
