#include "elmore/delay.h"

#include <algorithm>

#include "common/check.h"
#include "common/numeric.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"

namespace msn {

SourceDelays ComputeSourceDelays(const RcTree& tree,
                                 std::size_t source_terminal,
                                 const RepeaterAssignment& repeaters,
                                 const DriverAssignment& drivers,
                                 const Technology& tech) {
  MSN_CHECK_MSG(source_terminal < tree.NumTerminals(),
                "source terminal out of range");
  const EffectiveTerminal src = drivers.Resolve(tree, source_terminal);
  MSN_CHECK_MSG(src.is_source,
                "terminal " << source_terminal << " is not a source");

  const NodeId root = tree.TerminalNode(source_terminal);
  const RootedTree rooted(tree, root);
  const CapAnalysis caps = ComputeCaps(rooted, repeaters, drivers, tech);

  SourceDelays out;
  out.source_terminal = source_terminal;
  out.arrival.assign(tree.NumNodes(), -kInf);

  // Arrival *after* any device at the node (what drives the child edges).
  std::vector<double> launched(tree.NumNodes(), -kInf);

  out.arrival[root] = src.arrival_ps;
  launched[root] = src.arrival_ps + src.driver_intrinsic_ps +
                   src.driver_res * caps.down_load[root];

  for (const NodeId v : rooted.Preorder()) {
    for (const NodeId w : rooted.Children(v)) {
      const double wire =
          rooted.ParentRes(w) *
          (rooted.ParentCap(w) / 2.0 + caps.cdown[w]);
      out.arrival[w] = launched[v] + wire;
      if (repeaters.Has(w)) {
        const ResolvedRepeater r = repeaters.Resolve(w, tech);
        launched[w] = out.arrival[w] + r.IntrinsicFrom(v) +
                      r.ResFrom(v) * caps.down_load[w];
      } else {
        launched[w] = out.arrival[w];
      }
    }
  }
  return out;
}

ArdResult SourceRadius(const RcTree& tree, const SourceDelays& delays,
                       const DriverAssignment& drivers) {
  ArdResult best;
  best.ard_ps = -kInf;
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    if (t == delays.source_terminal) continue;
    const EffectiveTerminal term = drivers.Resolve(tree, t);
    if (!term.is_sink) continue;
    const double d =
        delays.arrival[tree.TerminalNode(t)] + term.downstream_ps;
    if (d > best.ard_ps) {
      best.ard_ps = d;
      best.critical_source = delays.source_terminal;
      best.critical_sink = t;
    }
  }
  return best;
}

CriticalPath TraceCriticalPath(const RcTree& tree, const ArdResult& pair,
                               const RepeaterAssignment& repeaters,
                               const DriverAssignment& drivers,
                               const Technology& tech) {
  MSN_CHECK_MSG(pair.HasPair(), "no critical pair to trace");
  const SourceDelays delays = ComputeSourceDelays(
      tree, pair.critical_source, repeaters, drivers, tech);

  // Walk parent pointers of the source-rooted orientation from the sink
  // back to the source.
  const RootedTree rooted(tree, tree.TerminalNode(pair.critical_source));
  CriticalPath path;
  path.source_terminal = pair.critical_source;
  path.sink_terminal = pair.critical_sink;
  for (NodeId v = tree.TerminalNode(pair.critical_sink); v != kNoNode;
       v = rooted.Parent(v)) {
    path.nodes.push_back(v);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  path.arrival_ps.reserve(path.nodes.size());
  for (const NodeId v : path.nodes) {
    path.arrival_ps.push_back(delays.arrival[v]);
  }
  path.total_ps = delays.arrival[tree.TerminalNode(pair.critical_sink)] +
                  drivers.Resolve(tree, pair.critical_sink).downstream_ps;
  return path;
}

ArdResult NaiveArd(const RcTree& tree, const RepeaterAssignment& repeaters,
                   const DriverAssignment& drivers, const Technology& tech) {
  ArdResult best;
  best.ard_ps = -kInf;
  for (std::size_t u = 0; u < tree.NumTerminals(); ++u) {
    if (!drivers.Resolve(tree, u).is_source) continue;
    const SourceDelays delays =
        ComputeSourceDelays(tree, u, repeaters, drivers, tech);
    const ArdResult radius = SourceRadius(tree, delays, drivers);
    if (radius.HasPair() && radius.ard_ps > best.ard_ps) best = radius;
  }
  return best;
}

}  // namespace msn
