#include "elmore/moments.h"

#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "elmore/caps.h"
#include "rctree/rooted.h"

namespace msn {
namespace {

/// Walks one buffered stage (start node to the next repeaters/leaves),
/// computing stage-local m1/m2 on the pi-lumped model and the global D2M
/// arrival estimates; recurses into downstream stages.
struct MomentEngine {
  const RcTree& tree;
  const RootedTree& rooted;
  const RepeaterAssignment& repeaters;
  const Technology& tech;
  const CapAnalysis& caps;
  const std::vector<EffectiveTerminal>& terms;
  SourceMoments& out;

  /// Node capacitance within the stage that starts at `start`: half of
  /// every incident in-stage wire, plus the pin or the facing repeater
  /// input at a stage boundary.
  double CapAt(NodeId v, NodeId start) const {
    double cap = 0.0;
    if (v != start) cap += rooted.ParentCap(v) / 2.0;
    if (repeaters.Has(v) && v != start) {
      // Boundary member: the repeater's input facing its parent.
      return cap + repeaters.Resolve(v, tech).CapToward(rooted.Parent(v));
    }
    const RcNode& node = tree.Node(v);
    if (node.kind == NodeKind::kTerminal) {
      cap += terms[node.terminal_index].pin_cap;
    }
    for (const NodeId c : rooted.Children(v)) {
      cap += rooted.ParentCap(c) / 2.0;
    }
    return cap;
  }

  bool IsBoundary(NodeId v, NodeId start) const {
    return v != start && repeaters.Has(v);
  }

  /// `base_ps` is the accumulated arrival estimate at the stage driver's
  /// output (AT + intrinsics + upstream stage D2M delays).  The start
  /// node's out-entries are written only when `write_start` (the global
  /// source); a buffered stage start keeps the input-side values its
  /// parent stage recorded, matching SourceDelays::arrival semantics.
  void ProcessStage(NodeId start, double driver_res, double base_ps,
                    bool write_start) {
    // Collect the stage members in preorder (DFS stopping at boundaries).
    std::vector<NodeId> members;
    std::vector<NodeId> stack{start};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      members.push_back(v);
      if (IsBoundary(v, start)) continue;
      for (const NodeId c : rooted.Children(v)) stack.push_back(c);
    }

    // Pass 1 (top-down): stage-local m1.  The driver's resistance sees
    // the whole decoupled stage load.
    std::vector<double> m1(tree.NumNodes(), 0.0);  // Sparse over members.
    m1[start] = driver_res * caps.down_load[start];
    for (const NodeId v : members) {
      if (v == start) continue;
      // Members are in preorder, so the parent is already done.
      m1[v] = m1[rooted.Parent(v)] +
              rooted.ParentRes(v) *
                  (rooted.ParentCap(v) / 2.0 + caps.cdown[v]);
    }

    // Pass 2 (bottom-up): mu[v] = sum of C_k * m1(k) over the stage
    // subtree of v (the weight m2 accumulates through each resistance).
    std::vector<double> mu(tree.NumNodes(), 0.0);
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      const NodeId v = *it;
      double acc = CapAt(v, start) * m1[v];
      if (!IsBoundary(v, start)) {
        for (const NodeId c : rooted.Children(v)) acc += mu[c];
      }
      mu[v] = acc;
    }

    // Pass 3 (top-down): stage-local m2 and global delay estimates.
    std::vector<double> m2(tree.NumNodes(), 0.0);
    m2[start] = driver_res * mu[start];
    for (const NodeId v : members) {
      if (v == start) continue;
      m2[v] = m2[rooted.Parent(v)] + rooted.ParentRes(v) * mu[v];
    }
    for (const NodeId v : members) {
      if (v == start && !write_start) continue;
      out.m1[v] = m1[v];
      out.m2[v] = m2[v];
      out.delay_ps[v] = base_ps + D2mDelay(m1[v], m2[v]);
    }

    // Recurse into downstream stages.
    for (const NodeId v : members) {
      if (!IsBoundary(v, start)) continue;
      const ResolvedRepeater r = repeaters.Resolve(v, tech);
      const NodeId from = rooted.Parent(v);
      ProcessStage(v, r.ResFrom(from),
                   out.delay_ps[v] + r.IntrinsicFrom(from),
                   /*write_start=*/false);
    }
  }
};

}  // namespace

double D2mDelay(double m1, double m2) {
  constexpr double kLn2 = 0.6931471805599453;
  if (m2 <= 0.0) return kLn2 * m1;
  return kLn2 * m1 * m1 / std::sqrt(m2);
}

double SlewEstimate(double m1, double m2) {
  constexpr double kLn9 = 2.1972245773362196;
  const double variance = 2.0 * m2 - m1 * m1;
  return kLn9 * std::sqrt(std::max(variance, 0.0));
}

SourceMoments ComputeSourceMoments(const RcTree& tree,
                                   std::size_t source_terminal,
                                   const RepeaterAssignment& repeaters,
                                   const DriverAssignment& drivers,
                                   const Technology& tech) {
  MSN_CHECK_MSG(source_terminal < tree.NumTerminals(),
                "source terminal out of range");
  const EffectiveTerminal src = drivers.Resolve(tree, source_terminal);
  MSN_CHECK_MSG(src.is_source,
                "terminal " << source_terminal << " is not a source");

  const NodeId root = tree.TerminalNode(source_terminal);
  const RootedTree rooted(tree, root);
  const CapAnalysis caps = ComputeCaps(rooted, repeaters, drivers, tech);
  const std::vector<EffectiveTerminal> terms =
      ResolveTerminals(tree, drivers);

  SourceMoments out;
  out.source_terminal = source_terminal;
  out.m1.assign(tree.NumNodes(), 0.0);
  out.m2.assign(tree.NumNodes(), 0.0);
  out.delay_ps.assign(tree.NumNodes(), -kInf);

  MomentEngine engine{tree,  rooted, repeaters, tech,
                      caps,  terms,  out};
  engine.ProcessStage(root, src.driver_res,
                      src.arrival_ps + src.driver_intrinsic_ps,
                      /*write_start=*/true);
  return out;
}

ArdResult ComputeArdD2M(const RcTree& tree,
                        const RepeaterAssignment& repeaters,
                        const DriverAssignment& drivers,
                        const Technology& tech) {
  ArdResult best;
  best.ard_ps = -kInf;
  for (std::size_t u = 0; u < tree.NumTerminals(); ++u) {
    if (!drivers.Resolve(tree, u).is_source) continue;
    const SourceMoments m =
        ComputeSourceMoments(tree, u, repeaters, drivers, tech);
    for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
      if (t == u) continue;
      const EffectiveTerminal term = drivers.Resolve(tree, t);
      if (!term.is_sink) continue;
      const double d =
          m.delay_ps[tree.TerminalNode(t)] + term.downstream_ps;
      if (d > best.ard_ps) {
        best.ard_ps = d;
        best.critical_source = u;
        best.critical_sink = t;
      }
    }
  }
  return best;
}

}  // namespace msn
