// Pairwise-delay analysis (paper Section II's alternative formulation).
//
// The paper contrasts Problem 2.1 (one spec on the ARD) with the
// "arbitrary pair-wise constraints" formulation, which it argues is
// significantly harder: even *checking* k² constraints takes Ω(k²) time
// (footnote 8), the per-subtree critical source is no longer unique
// (footnote 10), and the clean PWL decomposition breaks.  This module
// provides the checking side of that story:
//
//   * AllPairDelays     — the full k×k augmented delay matrix, O(k·n);
//   * CheckConstraints  — evaluate a sparse constraint set;
//   * ArdImpliedBound   — the pairwise bound a single ARD spec implies:
//                         bound(u,v) = spec - AT(u) - DD(v), illustrating
//                         the paper's point that Problem 2.1's implicit
//                         bounds derive from linearly many parameters.
#ifndef MSN_ELMORE_PAIRWISE_H
#define MSN_ELMORE_PAIRWISE_H

#include <vector>

#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Dense matrix of augmented pair delays:
/// delay(u, v) = AT(u) + PD(u,v) + DD(v) for source u, sink v; -inf when
/// u = v or either role is absent.  Row-major, k×k.
struct PairDelayMatrix {
  std::size_t num_terminals = 0;
  std::vector<double> delay_ps;

  double At(std::size_t source, std::size_t sink) const {
    return delay_ps[source * num_terminals + sink];
  }
};

PairDelayMatrix AllPairDelays(const RcTree& tree,
                              const RepeaterAssignment& repeaters,
                              const DriverAssignment& drivers,
                              const Technology& tech);

/// One constraint: delay(source, sink) must be at most bound_ps.
struct PairConstraint {
  std::size_t source = 0;
  std::size_t sink = 0;
  double bound_ps = 0.0;
};

/// A detected violation, with its actual delay.
struct ConstraintViolation {
  PairConstraint constraint;
  double actual_ps = 0.0;

  double SlackPs() const { return constraint.bound_ps - actual_ps; }
};

/// Checks `constraints` against the assignment; violations are returned
/// most-violated first.  Constraints on non-source/non-sink roles or
/// self-pairs are rejected (checked).
std::vector<ConstraintViolation> CheckConstraints(
    const RcTree& tree, const RepeaterAssignment& repeaters,
    const DriverAssignment& drivers, const Technology& tech,
    const std::vector<PairConstraint>& constraints);

/// The pairwise bound implied on (source, sink) by ARD(T) <= spec_ps:
/// PD(u,v) <= spec - AT(u) - DD(v).  (The bound the paper notes is "not
/// arbitrary": it is induced by the linear number of AT/DD parameters.)
double ArdImpliedBound(const RcTree& tree, std::size_t source,
                       std::size_t sink, double spec_ps);

}  // namespace msn

#endif  // MSN_ELMORE_PAIRWISE_H
