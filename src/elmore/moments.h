// First and second moments of RC-tree impulse responses, and the D2M
// delay metric.
//
// The Elmore delay is the first moment m1 of the impulse response — a
// provable *upper bound* on the 50% delay that can be loose near the
// driver.  The second moment m2 sharpens it: for a source driving an RC
// tree,
//
//   m1(v) = Σ_k R(path ∩ path_k) · C_k                  (Elmore)
//   m2(v) = Σ_k R(path ∩ path_k) · C_k · m1(k)
//
// both computable by two linear passes ([21]-style).  The D2M metric
// (Alpert et al.), delay ≈ ln 2 · m1² / √m2, tracks SPICE far better for
// near-driver sinks while matching Elmore asymptotically.
//
// This generalizes the ARD beyond Elmore, as the paper's Section III
// closing remark anticipates: "the ARD is well defined regardless of how
// PD(u,v) is calculated... [and] can easily be computed in linear time
// also by depth-first search."  ComputeArdD2M realizes exactly that (one
// single-source moment pass per source, O(k·n)).
//
// Scope: moments are computed per source with repeater decoupling; a
// repeater stage contributes its intrinsic delay plus the moments of the
// stage it drives (stages are independent first-order systems, the
// standard buffered-path approximation).
#ifndef MSN_ELMORE_MOMENTS_H
#define MSN_ELMORE_MOMENTS_H

#include <vector>

#include "elmore/delay.h"
#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Per-node moments of the response from one source.
struct SourceMoments {
  std::size_t source_terminal = 0;
  /// Stage-local circuit moments at each node's *input* side (a buffered
  /// node reports the values seen at the repeater input; the source node
  /// reports the driver-output moments of the first stage).  m2 uses the
  /// transfer-coefficient convention (E[t²]/2), matching D2mDelay.
  std::vector<double> m1;  ///< ps.
  std::vector<double> m2;  ///< ps².
  /// D2M-based arrival estimate at each node (AT + driver intrinsics +
  /// Σ per-stage D2M delays), comparable with SourceDelays::arrival
  /// (except at the source node, which reports the driver-output value).
  std::vector<double> delay_ps;
};

/// Computes the moment analysis for `source_terminal`.
SourceMoments ComputeSourceMoments(const RcTree& tree,
                                   std::size_t source_terminal,
                                   const RepeaterAssignment& repeaters,
                                   const DriverAssignment& drivers,
                                   const Technology& tech);

/// D2M delay estimate from raw moments: ln2 · m1² / sqrt(m2); falls back
/// to ln2·m1 when m2 is zero (a zero-resistance path).
double D2mDelay(double m1, double m2);

/// 10%-90% output transition-time estimate from the response's standard
/// deviation: slew ≈ ln9 · sqrt(2·m2 - m1²).  Exact for a single-pole
/// stage (σ = τ, 10-90 slew = ln9 · τ); the moment-matching estimate the
/// slew-aware buffer models of the paper's ref [15] build on.
double SlewEstimate(double m1, double m2);

/// Augmented RC-diameter under the D2M metric: max over source/sink pairs
/// of AT(u) + D2M path estimate + DD(v).  O(k·n).
ArdResult ComputeArdD2M(const RcTree& tree,
                        const RepeaterAssignment& repeaters,
                        const DriverAssignment& drivers,
                        const Technology& tech);

}  // namespace msn

#endif  // MSN_ELMORE_MOMENTS_H
