// Single-source Elmore delay evaluation and the naive (multi-pass)
// augmented RC-diameter.
//
// ComputeSourceDelays re-roots the tree at one source terminal and walks
// outward once — the classic linear-time RC-tree delay computation
// ([18],[21],[25] in the paper) generalized with repeater decoupling.
// NaiveArd runs it once per source, costing O(k·n); it is the reference
// implementation the linear-time engine (src/core/ard.*) is validated
// against, and the baseline of the bench_ard_scaling experiment.
#ifndef MSN_ELMORE_DELAY_H
#define MSN_ELMORE_DELAY_H

#include <cstddef>
#include <vector>

#include "rctree/assignment.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Arrival times (ps) from one source terminal to every node.
struct SourceDelays {
  std::size_t source_terminal = 0;
  /// Arrival at each node's *input* (before any repeater at that node),
  /// including the source's AT and its driver delay.  Indexed by NodeId.
  std::vector<double> arrival;
};

/// One-pass Elmore propagation from `source_terminal` (must have
/// is_source — checked).
SourceDelays ComputeSourceDelays(const RcTree& tree,
                                 std::size_t source_terminal,
                                 const RepeaterAssignment& repeaters,
                                 const DriverAssignment& drivers,
                                 const Technology& tech);

/// Critical source/sink pair and its augmented delay.
struct ArdResult {
  double ard_ps = 0.0;
  std::size_t critical_source = static_cast<std::size_t>(-1);
  std::size_t critical_sink = static_cast<std::size_t>(-1);

  bool HasPair() const {
    return critical_source != static_cast<std::size_t>(-1);
  }
};

/// Augmented RC-diameter by k single-source passes: O(k·n).
ArdResult NaiveArd(const RcTree& tree, const RepeaterAssignment& repeaters,
                   const DriverAssignment& drivers, const Technology& tech);

/// Max augmented sink delay (RC-radius analogue) seen from one source:
/// max over sink terminals t ≠ source of arrival(t) + DD(t).
ArdResult SourceRadius(const RcTree& tree, const SourceDelays& delays,
                       const DriverAssignment& drivers);

/// The node sequence of a critical source/sink pair with per-node arrival
/// times — the breakdown behind the paper's Fig. 11 annotations.
struct CriticalPath {
  std::size_t source_terminal = 0;
  std::size_t sink_terminal = 0;
  std::vector<NodeId> nodes;       ///< Source node first, sink node last.
  std::vector<double> arrival_ps;  ///< Arrival at each node's input.
  double total_ps = 0.0;           ///< ARD contribution incl. AT and DD.
};

/// Traces the path of `pair` (which must hold a critical pair — checked)
/// under the given assignment.
CriticalPath TraceCriticalPath(const RcTree& tree, const ArdResult& pair,
                               const RepeaterAssignment& repeaters,
                               const DriverAssignment& drivers,
                               const Technology& tech);

}  // namespace msn

#endif  // MSN_ELMORE_DELAY_H
