#include "io/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "io/table.h"

namespace msn {
namespace {

/// Scales a plane coordinate into canvas cells.
struct CanvasScale {
  BoundingBox box;
  std::size_t width, height;

  std::pair<std::size_t, std::size_t> Map(const Point& p) const {
    const double sx = box.hi.x > box.lo.x
                          ? static_cast<double>(p.x - box.lo.x) /
                                static_cast<double>(box.hi.x - box.lo.x)
                          : 0.0;
    const double sy = box.hi.y > box.lo.y
                          ? static_cast<double>(p.y - box.lo.y) /
                                static_cast<double>(box.hi.y - box.lo.y)
                          : 0.0;
    const auto cx = static_cast<std::size_t>(
        std::llround(sx * static_cast<double>(width - 1)));
    // Canvas rows grow downward; plane y grows upward.
    const auto cy = static_cast<std::size_t>(
        std::llround((1.0 - sy) * static_cast<double>(height - 1)));
    return {cx, cy};
  }
};

void DrawSegment(std::vector<std::string>& canvas, std::size_t x0,
                 std::size_t y0, std::size_t x1, std::size_t y1) {
  // Rectilinear L: horizontal first, then vertical.
  const std::size_t xa = std::min(x0, x1), xb = std::max(x0, x1);
  for (std::size_t x = xa; x <= xb; ++x) {
    if (canvas[y0][x] == ' ') canvas[y0][x] = '-';
  }
  const std::size_t ya = std::min(y0, y1), yb = std::max(y0, y1);
  for (std::size_t y = ya; y <= yb; ++y) {
    if (canvas[y][x1] == ' ') canvas[y][x1] = '|';
  }
}

}  // namespace

void DescribeNet(std::ostream& os, const RcTree& tree) {
  os << "net: " << tree.NumTerminals() << " terminals, " << tree.NumNodes()
     << " nodes, " << tree.InsertionPoints().size()
     << " insertion points, total wirelength "
     << static_cast<long long>(std::llround(tree.TotalLengthUm()))
     << " um\n";
}

void DescribeSolution(std::ostream& os, const RcTree& tree,
                      const Technology& tech, const TradeoffPoint& point,
                      const ArdResult& ard) {
  os << "solution: cost " << point.cost << " (equivalent 1X buffers), ARD "
     << ard.ard_ps << " ps";
  if (ard.HasPair()) {
    os << ", critical source terminal " << ard.critical_source
       << " -> sink terminal " << ard.critical_sink;
  }
  os << "\n  repeaters placed: " << point.num_repeaters << '\n';
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    if (!point.repeaters.Has(v)) continue;
    const PlacedRepeater& r = *point.repeaters.At(v);
    os << "    node " << v << " at " << '(' << tree.Node(v).pos.x << ", "
       << tree.Node(v).pos.y << ") um: "
       << tech.repeaters[r.repeater_index].name << ", A-side toward node "
       << r.a_side_neighbor << '\n';
  }
  for (std::size_t t = 0; t < point.drivers.NumTerminals(); ++t) {
    if (!point.drivers.At(t)) continue;
    os << "    terminal " << t << ": driver option "
       << point.drivers.At(t)->name << '\n';
  }
}

void WriteDot(std::ostream& os, const RcTree& tree,
              const RepeaterAssignment& repeaters,
              const Technology& tech) {
  os << "graph msn_net {\n"
     << "  graph [splines=line];\n"
     << "  node [fontsize=10];\n";
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    const RcNode& n = tree.Node(v);
    // neato -n expects positions in points; scale µm down for a sane page.
    os << "  n" << v << " [pos=\"" << static_cast<double>(n.pos.x) / 20.0
       << ',' << static_cast<double>(n.pos.y) / 20.0 << "\"";
    switch (n.kind) {
      case NodeKind::kTerminal:
        os << ", shape=box, style=filled, fillcolor=lightblue, label=\"t"
           << n.terminal_index << "\"";
        break;
      case NodeKind::kSteiner:
        os << ", shape=point, width=0.06, label=\"\"";
        break;
      case NodeKind::kInsertion:
        if (repeaters.Has(v)) {
          const PlacedRepeater& r = *repeaters.At(v);
          os << ", shape=triangle, style=filled, fillcolor=orange,"
                " label=\"\", tooltip=\""
             << tech.repeaters[r.repeater_index].name << " A->n"
             << r.a_side_neighbor << "\"";
        } else {
          os << ", shape=circle, width=0.08, label=\"\"";
        }
        break;
    }
    os << "];\n";
  }
  for (const RcEdge& e : tree.Edges()) {
    os << "  n" << e.a << " -- n" << e.b << " [label=\""
       << static_cast<long long>(std::llround(e.length_um)) << "\"];\n";
  }
  os << "}\n";
}

std::string RenderAscii(const RcTree& tree,
                        const RepeaterAssignment& repeaters,
                        std::size_t canvas_width, std::size_t canvas_height) {
  MSN_CHECK_MSG(canvas_width >= 2 && canvas_height >= 2,
                "canvas too small");
  std::vector<Point> pts;
  pts.reserve(tree.NumNodes());
  for (NodeId v = 0; v < tree.NumNodes(); ++v) pts.push_back(tree.Node(v).pos);
  const CanvasScale scale{ComputeBoundingBox(pts), canvas_width,
                          canvas_height};

  std::vector<std::string> canvas(canvas_height,
                                  std::string(canvas_width, ' '));
  for (const RcEdge& e : tree.Edges()) {
    const auto [x0, y0] = scale.Map(tree.Node(e.a).pos);
    const auto [x1, y1] = scale.Map(tree.Node(e.b).pos);
    DrawSegment(canvas, x0, y0, x1, y1);
  }
  // Markers drawn after wires so they sit on top.  When several nodes map
  // to one cell, priority is: terminal > repeater > branch > plain
  // insertion point.
  auto priority = [](char c) {
    if (c == '.') return 1;
    if (c == '+') return 2;
    if (c == '#') return 3;
    if (c >= '0' && c <= '9') return 4;
    if (c == 'T') return 4;
    return 0;  // Wires and blanks.
  };
  auto draw = [&](const Point& pos, char mark) {
    const auto [x, y] = scale.Map(pos);
    if (priority(mark) > priority(canvas[y][x])) canvas[y][x] = mark;
  };
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    const RcNode& n = tree.Node(v);
    switch (n.kind) {
      case NodeKind::kInsertion:
        draw(n.pos, repeaters.Has(v) ? '#' : '.');
        break;
      case NodeKind::kSteiner:
        draw(n.pos, '+');
        break;
      case NodeKind::kTerminal:
        draw(n.pos, n.terminal_index < 10
                        ? static_cast<char>('0' + n.terminal_index)
                        : 'T');
        break;
    }
  }

  std::ostringstream os;
  for (const std::string& row : canvas) os << row << '\n';
  return os.str();
}

void DescribeStats(std::ostream& os, const obs::RunStats& stats) {
  for (const auto& [key, value] : stats.Labels()) {
    os << key << ": " << value << '\n';
  }
  if (!stats.Labels().empty()) os << '\n';

  if (!stats.Timers().empty()) {
    TablePrinter t({"timer", "calls", "total (ms)", "mean (us)"});
    for (const auto& [name, timer] : stats.Timers()) {
      t.AddRow({name, std::to_string(timer.Calls()),
                TablePrinter::Num(timer.TotalMs(), 3),
                TablePrinter::Num(timer.MeanUs(), 2)});
    }
    t.Print(os);
    os << '\n';
  }
  if (!stats.Counters().empty()) {
    TablePrinter t({"counter", "value"});
    for (const auto& [name, counter] : stats.Counters()) {
      t.AddRow({name, std::to_string(counter.Value())});
    }
    t.Print(os);
    os << '\n';
  }
  if (!stats.Histograms().empty()) {
    TablePrinter t({"histogram", "count", "min", "mean", "max", "sum"});
    for (const auto& [name, h] : stats.Histograms()) {
      t.AddRow({name, std::to_string(h.Count()),
                TablePrinter::Num(h.Min(), 1), TablePrinter::Num(h.Mean(), 2),
                TablePrinter::Num(h.Max(), 1), TablePrinter::Num(h.Sum(), 0)});
    }
    t.Print(os);
    os << '\n';
  }
  if (!stats.Values().empty()) {
    TablePrinter t({"value", "amount"});
    for (const auto& [name, v] : stats.Values()) {
      t.AddRow({name, TablePrinter::Num(v, 4)});
    }
    t.Print(os);
  }
}

}  // namespace msn
