// Fixed-width text tables for the benchmark harness.
//
// Every bench binary prints its paper table/figure through this printer so
// the output structure matches the paper's rows and columns.
#ifndef MSN_IO_TABLE_H
#define MSN_IO_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace msn {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers (checked).
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule and per-column auto width.
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace msn

#endif  // MSN_IO_TABLE_H
