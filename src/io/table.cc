#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace msn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MSN_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MSN_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells; table has "
                           << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace msn
