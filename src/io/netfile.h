// Text serialization of nets and optimization results.
//
// The `.msn` format is a line-oriented, whitespace-separated description
// of an RcTree plus optional repeater/driver/wire-width assignments, made
// for hand-editing, diffing, and driving the CLI tool:
//
//   msn-net 1
//   wire <res_per_um> <cap_per_um>
//   node <id> terminal|steiner|insertion <x_um> <y_um>
//   terminal <node_id> <arrival_ps> <downstream_ps> <is_source 0|1>
//            <is_sink 0|1> <pin_cap> <driver_res> <driver_intrinsic_ps>
//            <arrival_extra_ps> <downstream_extra_ps> <driver_cost>
//   edge <a> <b> <length_um>
//   end
//
// Node ids must be dense and ascending from 0 (matching NodeId); the
// `terminal` records must appear in terminal-ordinal order.  Comments
// start with '#'.
//
// Assignments append after `end`:
//   repeater <node_id> <library_index> <a_side_neighbor>
//   driver <terminal> <cost> <arrival_extra> <driver_res>
//          <driver_intrinsic> <pin_cap> <downstream_extra> <name>
//   width <edge_index> <factor>
#ifndef MSN_IO_NETFILE_H
#define MSN_IO_NETFILE_H

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>

#include "common/check.h"
#include "core/msri.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// Thrown by ReadNet/ReadSolution on malformed input.  Derives from
/// CheckError (so generic handlers keep working) but carries the offending
/// line number, letting callers produce a precise one-line diagnostic.
/// Line() is 0 for whole-file problems (e.g. a missing `end` record).
class ParseError : public CheckError {
 public:
  ParseError(std::size_t line, const std::string& message);
  std::size_t Line() const { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Writes the net (structure + terminal electricals) in .msn format.
void WriteNet(std::ostream& os, const RcTree& tree);

/// Parses a .msn stream.  Throws msn::ParseError with the offending line
/// number on malformed input; the returned tree is validated (structural
/// violations surface as CheckError from RcTree::Validate).
RcTree ReadNet(std::istream& is);

/// Writes `point`'s assignments (after a WriteNet header) so a solution
/// can be persisted alongside its net.
void WriteSolution(std::ostream& os, const RcTree& tree,
                   const TradeoffPoint& point);

/// Parsed assignment section of a solution file.
struct SolutionFile {
  RepeaterAssignment repeaters;
  DriverAssignment drivers;
  std::vector<double> wire_widths;  ///< Empty when widths were not given.

  explicit SolutionFile(const RcTree& tree)
      : repeaters(tree.NumNodes()), drivers(tree.NumTerminals()) {}
};

/// Reads assignment lines (repeater/driver/width) for `tree` until EOF.
SolutionFile ReadSolution(std::istream& is, const RcTree& tree);

/// Round-trip convenience used by tests: serialize + parse.
RcTree RoundTripNet(const RcTree& tree);

}  // namespace msn

#endif  // MSN_IO_NETFILE_H
