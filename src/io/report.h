// Human-readable reports of nets and optimization results.
//
// Used by the examples and by bench_fig11 to render solutions the way the
// paper's Fig. 11 presents them: topology sketch, repeater locations and
// orientations, resulting ARD and the critical source/sink pair.
#ifndef MSN_IO_REPORT_H
#define MSN_IO_REPORT_H

#include <iosfwd>
#include <string>

#include "core/msri.h"
#include "elmore/delay.h"
#include "obs/stats.h"
#include "rctree/rctree.h"
#include "tech/tech.h"

namespace msn {

/// One-paragraph description of a net (terminals, wirelength, insertion
/// points).
void DescribeNet(std::ostream& os, const RcTree& tree);

/// Lists a tradeoff point: cost, ARD, repeaters with positions and
/// orientations, sized drivers.
void DescribeSolution(std::ostream& os, const RcTree& tree,
                      const Technology& tech, const TradeoffPoint& point,
                      const ArdResult& ard);

/// ASCII rendering of the tree on a character canvas: terminals 'T' (or
/// their index digit), Steiner points '+', insertion points '.', placed
/// repeaters '#'.  Wires are drawn along their L-shaped embeddings.
std::string RenderAscii(const RcTree& tree,
                        const RepeaterAssignment& repeaters,
                        std::size_t canvas_width = 64,
                        std::size_t canvas_height = 32);

/// Tabular rendering of an instrumentation registry (phase timers,
/// counters, histograms, result values) the way `msn_cli optimize --stats`
/// presents it; the JSON twin is RunStats::RenderJson.
void DescribeStats(std::ostream& os, const obs::RunStats& stats);

/// Graphviz DOT export with true coordinates (render with `neato -n`):
/// terminals as labeled boxes, Steiner points as dots, insertion points
/// as small circles, placed repeaters as filled triangles with their
/// orientation in the tooltip.
void WriteDot(std::ostream& os, const RcTree& tree,
              const RepeaterAssignment& repeaters,
              const Technology& tech);

}  // namespace msn

#endif  // MSN_IO_REPORT_H
