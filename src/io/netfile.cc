#include "io/netfile.h"

#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace msn {
namespace {

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTerminal: return "terminal";
    case NodeKind::kSteiner: return "steiner";
    case NodeKind::kInsertion: return "insertion";
  }
  return "?";
}

NodeKind ParseKind(const std::string& token, std::size_t line) {
  if (token == "terminal") return NodeKind::kTerminal;
  if (token == "steiner") return NodeKind::kSteiner;
  if (token == "insertion") return NodeKind::kInsertion;
  MSN_CHECK_MSG(false, "line " << line << ": unknown node kind '" << token
                               << "'");
  return NodeKind::kSteiner;
}

}  // namespace

void WriteNet(std::ostream& os, const RcTree& tree) {
  // Full round-trip precision: re-reading must reproduce the same doubles.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "msn-net 1\n";
  os << "wire " << tree.Wire().res_per_um << ' ' << tree.Wire().cap_per_um
     << '\n';
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    const RcNode& n = tree.Node(v);
    os << "node " << v << ' ' << KindName(n.kind) << ' ' << n.pos.x << ' '
       << n.pos.y << '\n';
  }
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    const TerminalParams& p = tree.Terminal(t);
    os << "terminal " << tree.TerminalNode(t) << ' ' << p.arrival_ps << ' '
       << p.downstream_ps << ' ' << (p.is_source ? 1 : 0) << ' '
       << (p.is_sink ? 1 : 0) << ' ' << p.driver.pin_cap << ' '
       << p.driver.driver_res << ' ' << p.driver.driver_intrinsic_ps << ' '
       << p.driver.arrival_extra_ps << ' ' << p.driver.downstream_extra_ps
       << ' ' << p.driver.cost << '\n';
  }
  for (const RcEdge& e : tree.Edges()) {
    os << "edge " << e.a << ' ' << e.b << ' ' << e.length_um << '\n';
  }
  os << "end\n";
  os.precision(old_precision);
}

RcTree ReadNet(std::istream& is) {
  struct NodeRecord {
    NodeKind kind;
    Point pos;
  };
  struct EdgeRecord {
    NodeId a, b;
    double length;
  };

  std::optional<WireParams> wire;
  std::map<NodeId, NodeRecord> nodes;
  std::map<NodeId, TerminalParams> terminals;
  std::vector<EdgeRecord> edges;
  bool saw_header = false;
  bool saw_end = false;

  std::string line;
  std::size_t line_no = 0;
  while (!saw_end && std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // Blank or comment-only.

    if (tag == "msn-net") {
      int version = 0;
      MSN_CHECK_MSG(static_cast<bool>(ls >> version) && version == 1,
                    "line " << line_no << ": unsupported msn-net version");
      saw_header = true;
      continue;
    }
    MSN_CHECK_MSG(saw_header,
                  "line " << line_no << ": missing 'msn-net 1' header");
    if (tag == "wire") {
      WireParams w;
      MSN_CHECK_MSG(static_cast<bool>(ls >> w.res_per_um >> w.cap_per_um),
                    "line " << line_no << ": malformed wire record");
      wire = w;
    } else if (tag == "node") {
      NodeId id;
      std::string kind;
      NodeRecord rec;
      MSN_CHECK_MSG(static_cast<bool>(ls >> id >> kind >> rec.pos.x >>
                                      rec.pos.y),
                    "line " << line_no << ": malformed node record");
      rec.kind = ParseKind(kind, line_no);
      MSN_CHECK_MSG(nodes.emplace(id, rec).second,
                    "line " << line_no << ": duplicate node " << id);
    } else if (tag == "terminal") {
      NodeId id;
      TerminalParams p;
      int is_source = 1, is_sink = 1;
      MSN_CHECK_MSG(
          static_cast<bool>(
              ls >> id >> p.arrival_ps >> p.downstream_ps >> is_source >>
              is_sink >> p.driver.pin_cap >> p.driver.driver_res >>
              p.driver.driver_intrinsic_ps >> p.driver.arrival_extra_ps >>
              p.driver.downstream_extra_ps >> p.driver.cost),
          "line " << line_no << ": malformed terminal record");
      p.is_source = is_source != 0;
      p.is_sink = is_sink != 0;
      p.driver.name = "from-file";
      MSN_CHECK_MSG(terminals.emplace(id, p).second,
                    "line " << line_no << ": duplicate terminal at node "
                            << id);
    } else if (tag == "edge") {
      EdgeRecord e;
      MSN_CHECK_MSG(static_cast<bool>(ls >> e.a >> e.b >> e.length),
                    "line " << line_no << ": malformed edge record");
      edges.push_back(e);
    } else if (tag == "end") {
      saw_end = true;
    } else {
      MSN_CHECK_MSG(false,
                    "line " << line_no << ": unknown record '" << tag << "'");
    }
  }
  MSN_CHECK_MSG(saw_end, "missing 'end' record");
  MSN_CHECK_MSG(wire.has_value(), "missing wire record");
  MSN_CHECK_MSG(!nodes.empty(), "net has no nodes");

  // Ids must be dense 0..n-1 (std::map iterates in order).
  NodeId expected = 0;
  for (const auto& [id, rec] : nodes) {
    MSN_CHECK_MSG(id == expected, "node ids must be dense; missing node "
                                      << expected);
    ++expected;
  }

  RcTree tree(*wire);
  for (const auto& [id, rec] : nodes) {
    if (rec.kind == NodeKind::kTerminal) {
      const auto it = terminals.find(id);
      MSN_CHECK_MSG(it != terminals.end(),
                    "terminal node " << id << " has no terminal record");
      tree.AddTerminal(it->second, rec.pos);
    } else {
      tree.AddNode(rec.kind, rec.pos);
    }
  }
  MSN_CHECK_MSG(terminals.size() == tree.NumTerminals(),
                "terminal record for a non-terminal node");
  for (const EdgeRecord& e : edges) {
    tree.AddEdge(e.a, e.b, e.length);
  }
  tree.Validate();
  return tree;
}

void WriteSolution(std::ostream& os, const RcTree& tree,
                   const TradeoffPoint& point) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    if (!point.repeaters.Has(v)) continue;
    const PlacedRepeater& r = *point.repeaters.At(v);
    os << "repeater " << v << ' ' << r.repeater_index << ' '
       << r.a_side_neighbor << '\n';
  }
  for (std::size_t t = 0; t < point.drivers.NumTerminals(); ++t) {
    if (!point.drivers.At(t)) continue;
    const TerminalOption& o = *point.drivers.At(t);
    os << "driver " << t << ' ' << o.cost << ' ' << o.arrival_extra_ps
       << ' ' << o.driver_res << ' ' << o.driver_intrinsic_ps << ' '
       << o.pin_cap << ' ' << o.downstream_extra_ps << ' '
       << (o.name.empty() ? "unnamed" : o.name) << '\n';
  }
  for (std::size_t e = 0; e < point.wire_widths.size(); ++e) {
    if (point.wire_widths[e] == 1.0) continue;
    os << "width " << e << ' ' << point.wire_widths[e] << '\n';
  }
  os.precision(old_precision);
}

SolutionFile ReadSolution(std::istream& is, const RcTree& tree) {
  SolutionFile sol(tree);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "repeater") {
      NodeId v, a_side;
      std::size_t index;
      MSN_CHECK_MSG(static_cast<bool>(ls >> v >> index >> a_side),
                    "line " << line_no << ": malformed repeater record");
      MSN_CHECK_MSG(v < tree.NumNodes() &&
                        tree.Node(v).kind == NodeKind::kInsertion,
                    "line " << line_no
                            << ": repeater must sit on an insertion point");
      sol.repeaters.Place(v, PlacedRepeater{index, a_side});
    } else if (tag == "driver") {
      std::size_t t;
      TerminalOption o;
      MSN_CHECK_MSG(
          static_cast<bool>(ls >> t >> o.cost >> o.arrival_extra_ps >>
                            o.driver_res >> o.driver_intrinsic_ps >>
                            o.pin_cap >> o.downstream_extra_ps >> o.name),
          "line " << line_no << ": malformed driver record");
      MSN_CHECK_MSG(t < tree.NumTerminals(),
                    "line " << line_no << ": terminal out of range");
      sol.drivers.Choose(t, std::move(o));
    } else if (tag == "width") {
      std::size_t e;
      double w;
      MSN_CHECK_MSG(static_cast<bool>(ls >> e >> w),
                    "line " << line_no << ": malformed width record");
      MSN_CHECK_MSG(e < tree.NumEdges(),
                    "line " << line_no << ": edge index out of range");
      if (sol.wire_widths.empty()) {
        sol.wire_widths.assign(tree.NumEdges(), 1.0);
      }
      sol.wire_widths[e] = w;
    } else {
      MSN_CHECK_MSG(false,
                    "line " << line_no << ": unknown record '" << tag << "'");
    }
  }
  return sol;
}

RcTree RoundTripNet(const RcTree& tree) {
  std::stringstream ss;
  WriteNet(ss, tree);
  return ReadNet(ss);
}

}  // namespace msn
