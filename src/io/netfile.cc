#include "io/netfile.h"

#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace msn {

ParseError::ParseError(std::size_t line, const std::string& message)
    : CheckError(line == 0
                     ? message
                     : "line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

/// Throws ParseError for malformed input at `line` (0 = whole file).
[[noreturn]] void FailAt(std::size_t line, const std::string& message) {
  throw ParseError(line, message);
}

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTerminal: return "terminal";
    case NodeKind::kSteiner: return "steiner";
    case NodeKind::kInsertion: return "insertion";
  }
  return "?";
}

NodeKind ParseKind(const std::string& token, std::size_t line) {
  if (token == "terminal") return NodeKind::kTerminal;
  if (token == "steiner") return NodeKind::kSteiner;
  if (token == "insertion") return NodeKind::kInsertion;
  FailAt(line, "unknown node kind '" + token + "'");
}

}  // namespace

void WriteNet(std::ostream& os, const RcTree& tree) {
  // Full round-trip precision: re-reading must reproduce the same doubles.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "msn-net 1\n";
  os << "wire " << tree.Wire().res_per_um << ' ' << tree.Wire().cap_per_um
     << '\n';
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    const RcNode& n = tree.Node(v);
    os << "node " << v << ' ' << KindName(n.kind) << ' ' << n.pos.x << ' '
       << n.pos.y << '\n';
  }
  for (std::size_t t = 0; t < tree.NumTerminals(); ++t) {
    const TerminalParams& p = tree.Terminal(t);
    os << "terminal " << tree.TerminalNode(t) << ' ' << p.arrival_ps << ' '
       << p.downstream_ps << ' ' << (p.is_source ? 1 : 0) << ' '
       << (p.is_sink ? 1 : 0) << ' ' << p.driver.pin_cap << ' '
       << p.driver.driver_res << ' ' << p.driver.driver_intrinsic_ps << ' '
       << p.driver.arrival_extra_ps << ' ' << p.driver.downstream_extra_ps
       << ' ' << p.driver.cost << '\n';
  }
  for (const RcEdge& e : tree.Edges()) {
    os << "edge " << e.a << ' ' << e.b << ' ' << e.length_um << '\n';
  }
  os << "end\n";
  os.precision(old_precision);
}

RcTree ReadNet(std::istream& is) {
  struct NodeRecord {
    NodeKind kind;
    Point pos;
  };
  struct EdgeRecord {
    NodeId a, b;
    double length;
  };

  std::optional<WireParams> wire;
  std::map<NodeId, NodeRecord> nodes;
  std::map<NodeId, TerminalParams> terminals;
  std::vector<EdgeRecord> edges;
  bool saw_header = false;
  bool saw_end = false;

  std::string line;
  std::size_t line_no = 0;
  while (!saw_end && std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // Blank or comment-only.

    if (tag == "msn-net") {
      int version = 0;
      if (!(ls >> version) || version != 1) {
        FailAt(line_no, "unsupported msn-net version");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) FailAt(line_no, "missing 'msn-net 1' header");
    if (tag == "wire") {
      WireParams w;
      if (!(ls >> w.res_per_um >> w.cap_per_um)) {
        FailAt(line_no, "malformed wire record");
      }
      wire = w;
    } else if (tag == "node") {
      NodeId id;
      std::string kind;
      NodeRecord rec;
      if (!(ls >> id >> kind >> rec.pos.x >> rec.pos.y)) {
        FailAt(line_no, "malformed node record");
      }
      rec.kind = ParseKind(kind, line_no);
      if (!nodes.emplace(id, rec).second) {
        FailAt(line_no, "duplicate node " + std::to_string(id));
      }
    } else if (tag == "terminal") {
      NodeId id;
      TerminalParams p;
      int is_source = 1, is_sink = 1;
      if (!(ls >> id >> p.arrival_ps >> p.downstream_ps >> is_source >>
            is_sink >> p.driver.pin_cap >> p.driver.driver_res >>
            p.driver.driver_intrinsic_ps >> p.driver.arrival_extra_ps >>
            p.driver.downstream_extra_ps >> p.driver.cost)) {
        FailAt(line_no, "malformed terminal record");
      }
      p.is_source = is_source != 0;
      p.is_sink = is_sink != 0;
      p.driver.name = "from-file";
      if (!terminals.emplace(id, p).second) {
        FailAt(line_no, "duplicate terminal at node " + std::to_string(id));
      }
    } else if (tag == "edge") {
      EdgeRecord e;
      if (!(ls >> e.a >> e.b >> e.length)) {
        FailAt(line_no, "malformed edge record");
      }
      edges.push_back(e);
    } else if (tag == "end") {
      saw_end = true;
    } else {
      FailAt(line_no, "unknown record '" + tag + "'");
    }
  }
  if (!saw_end) FailAt(0, "missing 'end' record");
  if (!wire.has_value()) FailAt(0, "missing wire record");
  if (nodes.empty()) FailAt(0, "net has no nodes");

  // Ids must be dense 0..n-1 (std::map iterates in order).
  NodeId expected = 0;
  for (const auto& [id, rec] : nodes) {
    if (id != expected) {
      FailAt(0, "node ids must be dense; missing node " +
                    std::to_string(expected));
    }
    ++expected;
  }

  RcTree tree(*wire);
  for (const auto& [id, rec] : nodes) {
    if (rec.kind == NodeKind::kTerminal) {
      const auto it = terminals.find(id);
      if (it == terminals.end()) {
        FailAt(0, "terminal node " + std::to_string(id) +
                      " has no terminal record");
      }
      tree.AddTerminal(it->second, rec.pos);
    } else {
      tree.AddNode(rec.kind, rec.pos);
    }
  }
  if (terminals.size() != tree.NumTerminals()) {
    FailAt(0, "terminal record for a non-terminal node");
  }
  for (const EdgeRecord& e : edges) {
    tree.AddEdge(e.a, e.b, e.length);
  }
  tree.Validate();
  return tree;
}

void WriteSolution(std::ostream& os, const RcTree& tree,
                   const TradeoffPoint& point) {
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  for (NodeId v = 0; v < tree.NumNodes(); ++v) {
    if (!point.repeaters.Has(v)) continue;
    const PlacedRepeater& r = *point.repeaters.At(v);
    os << "repeater " << v << ' ' << r.repeater_index << ' '
       << r.a_side_neighbor << '\n';
  }
  for (std::size_t t = 0; t < point.drivers.NumTerminals(); ++t) {
    if (!point.drivers.At(t)) continue;
    const TerminalOption& o = *point.drivers.At(t);
    os << "driver " << t << ' ' << o.cost << ' ' << o.arrival_extra_ps
       << ' ' << o.driver_res << ' ' << o.driver_intrinsic_ps << ' '
       << o.pin_cap << ' ' << o.downstream_extra_ps << ' '
       << (o.name.empty() ? "unnamed" : o.name) << '\n';
  }
  for (std::size_t e = 0; e < point.wire_widths.size(); ++e) {
    if (point.wire_widths[e] == 1.0) continue;
    os << "width " << e << ' ' << point.wire_widths[e] << '\n';
  }
  os.precision(old_precision);
}

SolutionFile ReadSolution(std::istream& is, const RcTree& tree) {
  SolutionFile sol(tree);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "repeater") {
      NodeId v, a_side;
      std::size_t index;
      if (!(ls >> v >> index >> a_side)) {
        FailAt(line_no, "malformed repeater record");
      }
      if (v >= tree.NumNodes() ||
          tree.Node(v).kind != NodeKind::kInsertion) {
        FailAt(line_no, "repeater must sit on an insertion point");
      }
      sol.repeaters.Place(v, PlacedRepeater{index, a_side});
    } else if (tag == "driver") {
      std::size_t t;
      TerminalOption o;
      if (!(ls >> t >> o.cost >> o.arrival_extra_ps >> o.driver_res >>
            o.driver_intrinsic_ps >> o.pin_cap >> o.downstream_extra_ps >>
            o.name)) {
        FailAt(line_no, "malformed driver record");
      }
      if (t >= tree.NumTerminals()) {
        FailAt(line_no, "terminal out of range");
      }
      sol.drivers.Choose(t, std::move(o));
    } else if (tag == "width") {
      std::size_t e;
      double w;
      if (!(ls >> e >> w)) {
        FailAt(line_no, "malformed width record");
      }
      if (e >= tree.NumEdges()) {
        FailAt(line_no, "edge index out of range");
      }
      if (sol.wire_widths.empty()) {
        sol.wire_widths.assign(tree.NumEdges(), 1.0);
      }
      sol.wire_widths[e] = w;
    } else {
      FailAt(line_no, "unknown record '" + tag + "'");
    }
  }
  return sol;
}

RcTree RoundTripNet(const RcTree& tree) {
  std::stringstream ss;
  WriteNet(ss, tree);
  return ReadNet(ss);
}

}  // namespace msn
