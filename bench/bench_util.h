// Shared helpers for the benchmark harness (one binary per paper table or
// figure; see DESIGN.md §3 for the experiment index).
#ifndef MSN_BENCH_BENCH_UTIL_H
#define MSN_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/msri.h"
#include "netgen/netgen.h"
#include "tech/tech.h"

namespace msn::bench {

/// The paper's Section VI workload: 10 random nets per cardinality on a
/// 1 cm grid, insertion spacing <= 800 um, >= 1 point per wire.
inline std::vector<RcTree> ExperimentNets(const Technology& tech,
                                          std::size_t num_terminals,
                                          std::size_t count = 10,
                                          double spacing_um = 800.0) {
  std::vector<RcTree> nets;
  nets.reserve(count);
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    NetConfig cfg;
    cfg.seed = seed;
    cfg.num_terminals = num_terminals;
    cfg.insertion_spacing_um = spacing_um;
    nets.push_back(BuildExperimentNet(cfg, tech));
  }
  return nets;
}

/// The paper's driver-sizing setup: 1X..4X drivers and receivers.
inline MsriOptions SizingOptions(const Technology& tech) {
  MsriOptions opt;
  opt.insert_repeaters = false;
  opt.size_drivers = true;
  opt.sizing_library = DriverSizingLibrary(tech, {1.0, 2.0, 3.0, 4.0});
  return opt;
}

/// Wall-clock seconds consumed by `fn()`.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace msn::bench

#endif  // MSN_BENCH_BENCH_UTIL_H
